package ghostdb

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§6), plus the DESIGN.md ablations. Each benchmark
// regenerates its figure through internal/experiments and reports the
// figure's total *simulated* time (flash I/O + link transfer under the
// Table 1 cost model) as sim-ms/op, so results are machine-independent.
//
// The scale factor defaults to a laptop-friendly 0.005 (the paper's scale
// is 1.0); raise it with:
//
//	GHOSTDB_BENCH_SCALE=0.05 go test -bench=. -benchmem
//
// cmd/ghostdb-bench prints the full series point by point.

import (
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"ghostdb/internal/experiments"
)

var (
	labOnce sync.Once
	lab     *experiments.Lab
)

func benchLab(b *testing.B) *experiments.Lab {
	b.Helper()
	labOnce.Do(func() {
		sf := 0.005
		if env := os.Getenv("GHOSTDB_BENCH_SCALE"); env != "" {
			if v, err := strconv.ParseFloat(env, 64); err == nil && v > 0 {
				sf = v
			}
		}
		lab = experiments.NewLab(sf, 1)
	})
	return lab
}

// reportFigure aggregates the simulated time over all non-skipped points.
func reportFigure(b *testing.B, fig *experiments.Figure) {
	var total time.Duration
	n := 0
	for _, p := range fig.Points {
		if !p.Skipped {
			total += p.Time
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(float64(total.Milliseconds()), "sim-ms/op")
		b.ReportMetric(float64(n), "points/op")
	}
}

func runFigure(b *testing.B, f func() (*experiments.Figure, error)) {
	l := benchLab(b)
	_ = l
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportFigure(b, fig)
		}
	}
}

// BenchmarkTable1Parameters verifies the cost-model constants render.
func BenchmarkTable1Parameters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table1()) < 5 {
			b.Fatal("table 1 incomplete")
		}
	}
}

// BenchmarkFig7IndexStorage regenerates the index storage comparison
// (FullIndex / BasicIndex / StarIndex / JoinIndex vs DBSize).
func BenchmarkFig7IndexStorage(b *testing.B) {
	l := benchLab(b)
	runFigure(b, l.Fig7)
}

// BenchmarkFig8CrossFiltering regenerates the Pre/Cross-Pre and
// Post/Cross-Post comparison over the sV sweep.
func BenchmarkFig8CrossFiltering(b *testing.B) {
	l := benchLab(b)
	runFigure(b, l.Fig8)
}

// BenchmarkFig9CrossPreVsPost regenerates the Cross-Pre vs Cross-Post
// crossover (≈ sV = 0.1).
func BenchmarkFig9CrossPreVsPost(b *testing.B) {
	l := benchLab(b)
	runFigure(b, l.Fig9)
}

// BenchmarkFig10PreVsPost regenerates the no-Cross comparison, where the
// Post-Filter curve stops at sV = 0.5.
func BenchmarkFig10PreVsPost(b *testing.B) {
	l := benchLab(b)
	runFigure(b, l.Fig10)
}

// BenchmarkFig11PostAlternatives regenerates the Bloom vs exact
// Post-Select comparison.
func BenchmarkFig11PostAlternatives(b *testing.B) {
	l := benchLab(b)
	runFigure(b, l.Fig11)
}

// BenchmarkFig12ProjectionPre regenerates the projector comparison under
// a Cross-Pre QEPSJ.
func BenchmarkFig12ProjectionPre(b *testing.B) {
	l := benchLab(b)
	runFigure(b, l.Fig12)
}

// BenchmarkFig13ProjectionPost regenerates the projector comparison under
// a Cross-Post QEPSJ (Bloom false positives present).
func BenchmarkFig13ProjectionPost(b *testing.B) {
	l := benchLab(b)
	runFigure(b, l.Fig13)
}

// BenchmarkFig14Throughput regenerates the communication sweep
// (0.3–10 MBps, 1–3 projected attributes).
func BenchmarkFig14Throughput(b *testing.B) {
	l := benchLab(b)
	runFigure(b, l.Fig14)
}

// BenchmarkFig15CostBreakdownSynthetic regenerates the per-operator
// decomposition on the synthetic dataset.
func BenchmarkFig15CostBreakdownSynthetic(b *testing.B) {
	l := benchLab(b)
	runFigure(b, l.Fig15)
}

// BenchmarkFig16CostBreakdownMedical regenerates the per-operator
// decomposition on the medical dataset (SJoin dominates).
func BenchmarkFig16CostBreakdownMedical(b *testing.B) {
	l := benchLab(b)
	runFigure(b, l.Fig16)
}

// BenchmarkAblationMergeReduction measures the Merge reduction phase as
// the secure RAM shrinks from 128KB to 16KB.
func BenchmarkAblationMergeReduction(b *testing.B) {
	l := benchLab(b)
	runFigure(b, l.AblationMergeReduction)
}

// BenchmarkAblationBloomRatio measures Bloom accuracy degradation from
// m/n = 10 down to 2.
func BenchmarkAblationBloomRatio(b *testing.B) {
	l := benchLab(b)
	runFigure(b, l.AblationBloomRatio)
}

// BenchmarkAblationClimbingVsCascade measures the climbing index against
// cascading per-level lookups (§3.2's motivation).
func BenchmarkAblationClimbingVsCascade(b *testing.B) {
	l := benchLab(b)
	runFigure(b, l.AblationClimbingVsCascade)
}
