package ghostdb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// concurrencyDB builds a two-level schema with enough rows that queries
// genuinely exercise the secure pipeline under the 64KB default budget.
func concurrencyDB(t *testing.T, maxConcurrent int) *DB {
	t.Helper()
	db, err := Create([]string{
		`CREATE TABLE Orders (id int, customer_id int REFERENCES Customers HIDDEN,
		   quarter char(7), amount float HIDDEN)`,
		`CREATE TABLE Customers (id int, company char(30) HIDDEN, region char(20))`,
	}, Options{FlashBlocks: 4096, MaxConcurrentQueries: maxConcurrent})
	if err != nil {
		t.Fatal(err)
	}
	ld := db.Loader()
	regions := []string{"north", "south", "east", "west"}
	for i := 0; i < 40; i++ {
		if err := ld.Append("Customers", R{"company": fmt.Sprintf("corp-%02d", i), "region": regions[i%4]}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 600; i++ {
		if err := ld.Append("Orders", R{"customer_id": i % 40, "quarter": fmt.Sprintf("2006-Q%d", i%4+1), "amount": float64(i % 250)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ld.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestQueryCtxConcurrentSessions drives 16 goroutines of mixed queries
// through the public API: every answer must equal its serial baseline.
func TestQueryCtxConcurrentSessions(t *testing.T) {
	const goroutines = 16
	db := concurrencyDB(t, goroutines)

	queries := []string{
		`SELECT Orders.id, Customers.company FROM Orders, Customers
		   WHERE Orders.customer_id = Customers.id AND Customers.region = 'north' AND Orders.amount >= 200.0`,
		`SELECT Orders.id, Orders.amount FROM Orders, Customers
		   WHERE Orders.customer_id = Customers.id AND Customers.company < 'corp-10' AND Orders.quarter = '2006-Q1'`,
		`SELECT id, region FROM Customers WHERE region = 'south'`,
		`SELECT COUNT(*) FROM Orders, Customers WHERE Orders.customer_id = Customers.id AND Orders.amount < 50.0 AND Customers.region = 'east'`,
	}
	want := make([]*Result, len(queries))
	for i, sql := range queries {
		res, err := db.Query(sql)
		if err != nil {
			t.Fatalf("serial baseline %d: %v", i, err)
		}
		want[i] = res
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 2*len(queries); k++ {
				qi := (g + k) % len(queries)
				// Half the goroutines cap their session's RAM so grants
				// from several sessions overlap on the one Manager.
				var opts []QueryOption
				if g%2 == 0 {
					opts = append(opts, WithRAMBuffers(8, 8))
				}
				res, err := db.QueryCtx(context.Background(), queries[qi], opts...)
				if err != nil {
					t.Errorf("g%d q%d: %v", g, qi, err)
					return
				}
				if len(res.Rows) != len(want[qi].Rows) {
					t.Errorf("g%d q%d: %d rows, want %d", g, qi, len(res.Rows), len(want[qi].Rows))
					return
				}
				for ri := range res.Rows {
					for ci := range res.Rows[ri] {
						if !res.Rows[ri][ci].Equal(want[qi].Rows[ri][ci]) {
							t.Errorf("g%d q%d row %d: diverges from serial answer", g, qi, ri)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()

	if got := db.Internal().RAM.InUse(); got != 0 {
		t.Fatalf("RAM still in use after drain: %d", got)
	}
	if db.Internal().RAM.Leaked() {
		t.Fatal("grants leaked after concurrent drain")
	}
	if got := db.Internal().Sched().Leaks(); got != 0 {
		t.Fatalf("%d private-budget leaks", got)
	}
	if tot := db.Totals(); tot.Queries == 0 || tot.SimTime <= 0 {
		t.Fatalf("totals not accumulated: %+v", tot)
	}
}

// TestQueryCtxPerQueryOptions checks per-query knobs do not disturb the
// DB defaults, and that the newly exported Cross-Post-Select strategy is
// usable from the public API.
func TestQueryCtxPerQueryOptions(t *testing.T) {
	db := patientsDB(t)
	sql := `SELECT name FROM Patients WHERE age = 50 AND bodymassindex = 23.0`
	base, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range [][]QueryOption{
		{WithStrategy(StrategyPreFilter)},
		{WithStrategy(StrategyCrossPostSelect)},
		{WithProjector(ProjectorBruteForce)},
		{WithStrategy(StrategyPostSelect), WithProjector(ProjectorNoBF), WithRAMBuffers(8, 8)},
	} {
		res, err := db.QueryCtx(context.Background(), sql, opt...)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(base.Rows) {
			t.Fatalf("per-query option changed the answer: %d vs %d rows", len(res.Rows), len(base.Rows))
		}
	}
	// Defaults were never touched.
	if cfg := db.Internal().DefaultConfig(); cfg.Strategy != StrategyAuto || cfg.Projector != ProjectorBloom {
		t.Fatalf("per-query options leaked into defaults: %+v", cfg)
	}
}

// TestQueryCtxCancellation covers the public cancellation contract.
func TestQueryCtxCancellation(t *testing.T) {
	db := patientsDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryCtx(ctx, `SELECT id FROM Patients WHERE age = 50`); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The engine is untouched: a live query still answers.
	res, err := db.Query(`SELECT id FROM Patients WHERE age = 50`)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("after cancellation: %v rows=%v", err, res)
	}
}
