package ghostdb

import (
	"errors"
	"fmt"
	"strings"

	"ghostdb/internal/exec"
	"ghostdb/internal/schema"
)

// R is a row literal for Loader.Append: column name (or foreign-key
// column name) to value. Values may be int, int64, float64 or string and
// are coerced to the column type.
type R map[string]any

// Loader accumulates rows and bulk-loads the database: visible columns to
// the untrusted store, hidden columns to the secure flash, and all index
// structures (Subtree Key Tables + climbing indexes) built at Commit.
type Loader struct {
	db     *DB
	rows   map[int][]schema.Row
	fks    map[int]map[int][]uint32
	closed bool
}

// Loader returns a bulk loader. Call Append for every row of every table,
// then Commit exactly once.
func (db *DB) Loader() *Loader {
	return &Loader{
		db:   db,
		rows: map[int][]schema.Row{},
		fks:  map[int]map[int][]uint32{},
	}
}

// Append buffers one row. Foreign-key values reference the 0-based insert
// order of the child table's rows.
func (l *Loader) Append(table string, values R) error {
	if l.closed {
		return errors.New("ghostdb: loader already committed")
	}
	t, ok := l.db.sch.Lookup(table)
	if !ok {
		return fmt.Errorf("ghostdb: unknown table %q", table)
	}
	used := map[string]bool{}
	row := make(schema.Row, len(t.Columns))
	for ci, col := range t.Columns {
		raw, ok := lookupKey(values, col.Name)
		if !ok {
			return fmt.Errorf("ghostdb: %s: missing column %q", table, col.Name)
		}
		used[strings.ToLower(col.Name)] = true
		v, err := convert(raw, col)
		if err != nil {
			return fmt.Errorf("ghostdb: %s.%s: %w", table, col.Name, err)
		}
		row[ci] = v
	}
	if l.fks[t.Index] == nil {
		l.fks[t.Index] = map[int][]uint32{}
	}
	for _, ref := range t.Refs {
		raw, ok := lookupKey(values, ref.FKColumn)
		if !ok {
			return fmt.Errorf("ghostdb: %s: missing foreign key %q", table, ref.FKColumn)
		}
		used[strings.ToLower(ref.FKColumn)] = true
		id, err := toID(raw)
		if err != nil {
			return fmt.Errorf("ghostdb: %s.%s: %w", table, ref.FKColumn, err)
		}
		child, _ := l.db.sch.Lookup(ref.Child)
		l.fks[t.Index][child.Index] = append(l.fks[t.Index][child.Index], id)
	}
	for k := range values {
		if !used[strings.ToLower(k)] {
			return fmt.Errorf("ghostdb: %s: unknown column %q", table, k)
		}
	}
	l.rows[t.Index] = append(l.rows[t.Index], row)
	return nil
}

// Commit encodes the buffered rows and builds the database. After Commit
// the database is queryable and further rows go through INSERT.
func (l *Loader) Commit() error {
	if l.closed {
		return errors.New("ghostdb: loader already committed")
	}
	l.closed = true
	load := map[int]*exec.TableLoad{}
	for _, t := range l.db.sch.Tables {
		rows := l.rows[t.Index]
		ld := &exec.TableLoad{Rows: len(rows), FKs: l.fks[t.Index]}
		if ld.FKs == nil {
			ld.FKs = map[int][]uint32{}
		}
		for ci, col := range t.Columns {
			w := col.EncodedWidth()
			data := make([]byte, len(rows)*w)
			for i, row := range rows {
				if err := schema.EncodeValue(data[i*w:(i+1)*w], row[ci]); err != nil {
					return fmt.Errorf("ghostdb: %s.%s row %d: %w", t.Name, col.Name, i, err)
				}
			}
			ld.Cols = append(ld.Cols, exec.ColData{Width: w, Data: data})
		}
		load[t.Index] = ld
	}
	if err := l.db.inner.Load(load); err != nil {
		return err
	}
	l.db.loaded.Store(true)
	return nil
}

func lookupKey(values R, name string) (any, bool) {
	if v, ok := values[name]; ok {
		return v, true
	}
	for k, v := range values {
		if strings.EqualFold(k, name) {
			return v, true
		}
	}
	return nil, false
}

func convert(raw any, col schema.Column) (schema.Value, error) {
	switch col.Kind {
	case schema.KindInt:
		switch x := raw.(type) {
		case int:
			return schema.IntVal(int64(x)), nil
		case int64:
			return schema.IntVal(x), nil
		case uint32:
			return schema.IntVal(int64(x)), nil
		}
	case schema.KindFloat:
		switch x := raw.(type) {
		case float64:
			return schema.FloatVal(x), nil
		case int:
			return schema.FloatVal(float64(x)), nil
		case int64:
			return schema.FloatVal(float64(x)), nil
		}
	case schema.KindChar:
		if s, ok := raw.(string); ok {
			if len(s) > col.Width {
				return schema.Value{}, fmt.Errorf("string %q exceeds char(%d)", s, col.Width)
			}
			return schema.CharVal(s), nil
		}
	}
	return schema.Value{}, fmt.Errorf("cannot convert %T to %v", raw, col.Kind)
}

func toID(raw any) (uint32, error) {
	switch x := raw.(type) {
	case int:
		if x >= 0 {
			return uint32(x), nil
		}
	case int64:
		if x >= 0 {
			return uint32(x), nil
		}
	case uint32:
		return x, nil
	}
	return 0, fmt.Errorf("foreign key must be a non-negative integer, got %T", raw)
}
