package ghostdb

import (
	"fmt"
	"sync"
	"testing"
)

// shardDDL is a two-tree forest: an Orders tree and an unrelated Logs
// tree, so a 2-shard database places them on different secure tokens.
var shardDDL = []string{
	`CREATE TABLE Orders (id int, customer_id int REFERENCES Customers HIDDEN,
	   amount int, item char(10) HIDDEN)`,
	`CREATE TABLE Customers (id int, company char(10) HIDDEN, region char(10))`,
	`CREATE TABLE Logs (id int, level int, msg char(10) HIDDEN)`,
}

// loadShardData fills both trees deterministically.
func loadShardData(t testing.TB, db *DB, customers, orders, logs int) {
	t.Helper()
	ld := db.Loader()
	for i := 0; i < customers; i++ {
		if err := ld.Append("Customers", R{
			"company": fmt.Sprintf("c%03d", i%37), "region": fmt.Sprintf("r%03d", i%11),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < orders; i++ {
		if err := ld.Append("Orders", R{
			"customer_id": i % customers, "amount": i % 97, "item": fmt.Sprintf("i%03d", i%53),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < logs; i++ {
		if err := ld.Append("Logs", R{
			"level": i % 5, "msg": fmt.Sprintf("m%03d", i%29),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ld.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedOptionsSurface sanity-checks the public sharding surface:
// shard count, table placement, per-shard totals.
func TestShardedOptionsSurface(t *testing.T) {
	db, err := Create(shardDDL, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	loadShardData(t, db, 20, 60, 40)
	if db.Shards() != 2 {
		t.Fatalf("Shards() = %d", db.Shards())
	}
	so, err := db.ShardOf("Orders")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := db.ShardOf("Customers")
	if err != nil {
		t.Fatal(err)
	}
	sl, err := db.ShardOf("Logs")
	if err != nil {
		t.Fatal(err)
	}
	if so != sc {
		t.Fatalf("Orders on shard %d but Customers on %d (tree split)", so, sc)
	}
	if so == sl {
		t.Fatalf("both trees on shard %d", so)
	}
	if _, err := db.Query(`SELECT id, msg FROM Logs WHERE level = 2`); err != nil {
		t.Fatal(err)
	}
	tots := db.ShardTotals()
	if len(tots) != 2 {
		t.Fatalf("ShardTotals len = %d", len(tots))
	}
	if tots[sl].Queries != 1 || tots[so].Queries != 0 {
		t.Fatalf("query landed on the wrong shard: %+v", tots)
	}
	if db.DescribePlacement() == "" {
		t.Fatal("empty placement description")
	}
}

// TestShardedInsertFanoutCacheInvalidation is the satellite property
// test: under concurrent INSERT traffic into one shard, cached results
// whose queries touch only *other* shards must survive (per-shard
// version vector), while queries touching the inserted shard can never
// observe a stale answer — pinned row-by-row to an unsharded, uncached
// reference engine fed the same inserts. Run with -race in CI.
func TestShardedInsertFanoutCacheInvalidation(t *testing.T) {
	const customers, orders, logs = 20, 80, 50
	db, err := Create(shardDDL, Options{Shards: 2, ResultCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	loadShardData(t, db, customers, orders, logs)
	refDB, err := Create(shardDDL, Options{}) // unsharded, uncached
	if err != nil {
		t.Fatal(err)
	}
	loadShardData(t, refDB, customers, orders, logs)

	logsQuery := `SELECT id, msg FROM Logs WHERE level = 3`
	ordersQuery := `SELECT COUNT(*) FROM Orders WHERE item = 'i001'`

	// Warm the Logs-shard cache entry.
	if res, err := db.Query(logsQuery); err != nil {
		t.Fatal(err)
	} else if res.Stats.CacheHit {
		t.Fatal("first Logs query cannot be a hit")
	}

	// Concurrent inserters into the Orders shard + readers of both.
	const inserters, insertsEach = 4, 12
	insertSQL := func(g, i int) string {
		return fmt.Sprintf(`INSERT INTO Orders VALUES (%d, %d, 'i001')`,
			(g*insertsEach+i)%customers, 500+g)
	}
	var wg sync.WaitGroup
	for g := 0; g < inserters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < insertsEach; i++ {
				if err := db.Exec(insertSQL(g, i)); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		}(g)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := db.Query(logsQuery); err != nil {
					t.Errorf("logs query: %v", err)
					return
				}
				if _, err := db.Query(ordersQuery); err != nil {
					t.Errorf("orders query: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Feed the reference the same inserts (serially; order across
	// goroutines does not matter for these queries).
	for g := 0; g < inserters; g++ {
		for i := 0; i < insertsEach; i++ {
			if err := refDB.Exec(insertSQL(g, i)); err != nil {
				t.Fatal(err)
			}
		}
	}

	// The Logs entry must still be cached: Orders inserts bumped only
	// the Orders shard's version.
	res, err := db.Query(logsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.CacheHit && !res.Stats.CacheShared {
		t.Fatal("Logs cache entry was evicted by inserts into the other shard")
	}
	want, err := refDB.Query(logsQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want.Rows) {
		t.Fatalf("Logs rows %d != reference %d", len(res.Rows), len(want.Rows))
	}

	// The Orders shard must serve post-insert answers (never stale).
	res, err = db.Query(ordersQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err = refDB.Query(ordersQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != want.Rows[0][0].I {
		t.Fatalf("Orders count %d != reference %d (stale cache?)",
			res.Rows[0][0].I, want.Rows[0][0].I)
	}

	// And the cache actually worked in between: hits were recorded.
	if cs := db.CacheStats(); cs.Hits == 0 {
		t.Fatalf("no cache hits recorded at all: %+v", cs)
	}
}
