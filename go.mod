module ghostdb

go 1.24
