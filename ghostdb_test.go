package ghostdb

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func patientsDB(t *testing.T) *DB {
	t.Helper()
	db, err := Create([]string{
		`CREATE TABLE Patients (id int, name char(200) HIDDEN,
		   age int, city char(100), bodymassindex float HIDDEN)`,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ld := db.Loader()
	rows := []R{
		{"name": "Durand", "age": 50, "city": "Paris", "bodymassindex": 23.0},
		{"name": "Martin", "age": 50, "city": "Lyon", "bodymassindex": 31.5},
		{"name": "Dubois", "age": 44, "city": "Paris", "bodymassindex": 23.0},
		{"name": "Leroy", "age": 50, "city": "Lille", "bodymassindex": 23.0},
	}
	for _, r := range rows {
		if err := ld.Append("Patients", r); err != nil {
			t.Fatal(err)
		}
	}
	if err := ld.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestPaperQuickstartQuery(t *testing.T) {
	db := patientsDB(t)
	res, err := db.Query(`SELECT * FROM Patients WHERE age = 50 AND bodymassindex = 23.0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[1] != "Patients.name" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.Rows[0][1].S != "Durand" || res.Rows[1][1].S != "Leroy" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Stats.SimTime <= 0 {
		t.Fatal("no cost reported")
	}
}

func TestInsertThroughExec(t *testing.T) {
	db := patientsDB(t)
	if err := db.Exec(`INSERT INTO Patients (name, age, city, bodymassindex)
	    VALUES ('Petit', 50, 'Nantes', 23.0)`); err != nil {
		t.Fatal(err)
	}
	n, err := db.Rows("Patients")
	if err != nil || n != 5 {
		t.Fatalf("rows = %d, %v", n, err)
	}
	res, err := db.Query(`SELECT name FROM Patients WHERE bodymassindex = 23.0 AND age = 50`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows after insert = %v", res.Rows)
	}
}

func TestTreeSchemaThroughPublicAPI(t *testing.T) {
	db, err := Create([]string{
		`CREATE TABLE Orders (id int, customer_id int REFERENCES Customers HIDDEN,
		   quarter char(7), amount float HIDDEN)`,
		`CREATE TABLE Customers (id int, company char(30) HIDDEN, region char(20))`,
	}, Options{RAMBytes: 32 << 10, ThroughputMBps: 2, FlashPageSize: 2048, FlashBlocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ld := db.Loader()
	for i := 0; i < 10; i++ {
		if err := ld.Append("Customers", R{"company": "corp", "region": []string{"north", "south"}[i%2]}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if err := ld.Append("Orders", R{"customer_id": i % 10, "quarter": "2006-Q4", "amount": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ld.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT Orders.id, Customers.company FROM Orders, Customers
	   WHERE Orders.customer_id = Customers.id AND Customers.region = 'north' AND Orders.amount >= 50.0`)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 50; i < 100; i++ {
		if (i%10)%2 == 0 {
			want++
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(res.Rows), want)
	}
	if !strings.Contains(db.Schema(), "customer_id int REFERENCES Customers HIDDEN") {
		t.Fatalf("schema = %s", db.Schema())
	}
}

func TestStrategyKnobs(t *testing.T) {
	db := patientsDB(t)
	db.ForceStrategy(StrategyPreFilter)
	db.SetProjector(ProjectorBruteForce)
	db.SetThroughput(0.5)
	res, err := db.Query(`SELECT name FROM Patients WHERE age = 50 AND bodymassindex = 23.0`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	db.ForceStrategy(StrategyAuto)
	db.SetProjector(ProjectorBloom)
}

func TestCreateErrors(t *testing.T) {
	if _, err := Create([]string{`SELECT 1 FROM x`}, Options{}); err == nil {
		t.Fatal("non-DDL accepted")
	}
	if _, err := Create([]string{`CREATE TABLE A (id int, f int REFERENCES B)`}, Options{}); err == nil {
		t.Fatal("dangling reference accepted")
	}
	if _, err := Create(nil, Options{}); err == nil {
		t.Fatal("empty schema accepted")
	}
	// Cycles rejected.
	_, err := Create([]string{
		`CREATE TABLE A (id int, fb int REFERENCES B)`,
		`CREATE TABLE B (id int, fa int REFERENCES A)`,
	}, Options{})
	if err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestLoaderErrors(t *testing.T) {
	db, err := Create([]string{
		`CREATE TABLE T (id int, a int, b char(3) HIDDEN)`,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Querying before load fails.
	if _, err := db.Query(`SELECT id FROM T`); err == nil {
		t.Fatal("query before load accepted")
	}
	ld := db.Loader()
	cases := []R{
		{"a": 1},                    // missing column
		{"a": 1, "b": "abcd"},       // overlong
		{"a": "x", "b": "ab"},       // type mismatch
		{"a": 1, "b": "ab", "c": 2}, // unknown column
		{"a": 1.5, "b": "ab"},       // float for int
	}
	for i, r := range cases {
		if err := ld.Append("T", r); err == nil {
			t.Fatalf("case %d accepted: %v", i, r)
		}
	}
	if err := ld.Append("Nope", R{}); err == nil {
		t.Fatal("unknown table accepted")
	}
	if err := ld.Append("T", R{"a": 1, "b": "ab"}); err != nil {
		t.Fatal(err)
	}
	if err := ld.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ld.Commit(); err == nil {
		t.Fatal("double commit accepted")
	}
	if err := ld.Append("T", R{"a": 1, "b": "ab"}); err == nil {
		t.Fatal("append after commit accepted")
	}
	// Case-insensitive keys work.
	db2, _ := Create([]string{`CREATE TABLE T (id int, a int)`}, Options{})
	ld2 := db2.Loader()
	if err := ld2.Append("T", R{"A": 7}); err != nil {
		t.Fatal(err)
	}
	if err := ld2.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := db2.Query(`SELECT a FROM T WHERE id = 0`)
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0].I != 7 {
		t.Fatalf("res = %v err = %v", res, err)
	}
}

func TestFKLoaderValidation(t *testing.T) {
	db, err := Create([]string{
		`CREATE TABLE P (id int, fc int REFERENCES C HIDDEN, x int)`,
		`CREATE TABLE C (id int, y int)`,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ld := db.Loader()
	if err := ld.Append("P", R{"x": 1}); err == nil {
		t.Fatal("missing fk accepted")
	}
	if err := ld.Append("P", R{"x": 1, "fc": -3}); err == nil {
		t.Fatal("negative fk accepted")
	}
	if err := ld.Append("C", R{"y": 1}); err != nil {
		t.Fatal(err)
	}
	if err := ld.Append("P", R{"x": 1, "fc": 5}); err != nil {
		t.Fatal(err) // range checked at commit/index-build time
	}
	if err := ld.Commit(); err == nil {
		t.Fatal("dangling fk survived commit")
	}
}

func TestPrepareStmtAndExplain(t *testing.T) {
	db := patientsDB(t)
	sql := `SELECT name FROM Patients WHERE age = 50 AND bodymassindex = 23.0`
	stmt, err := db.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan := stmt.Plan()
	if plan.MinBuffers < 1 || plan.MinBuffers >= 8 {
		t.Fatalf("single-table floor should be small, got %d", plan.MinBuffers)
	}
	if plan.Anchor != "Patients" {
		t.Fatalf("anchor = %q", plan.Anchor)
	}
	out := stmt.Explain()
	if !strings.Contains(out, "admission: min") || !strings.Contains(out, "estimated cost:") {
		t.Fatalf("explain output incomplete:\n%s", out)
	}
	// db.Explain is the prepare-and-render shorthand.
	out2, err := db.Explain(sql)
	if err != nil || out2 != out {
		t.Fatalf("db.Explain diverges: %v\n%s", err, out2)
	}
	// The statement runs repeatedly and matches the one-shot path, with
	// the admission floor exactly the plan's.
	want, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := stmt.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(want.Rows) {
			t.Fatalf("prepared run %d: %d rows, want %d", i, len(res.Rows), len(want.Rows))
		}
		if res.Stats.PlanMinBuffers != plan.MinBuffers {
			t.Fatalf("admission floor %d != plan floor %d", res.Stats.PlanMinBuffers, plan.MinBuffers)
		}
	}
	// Per-run options that change the plan replan for that run only.
	res, err := stmt.Run(context.Background(), WithStrategy(StrategyPreFilter), WithProjector(ProjectorBruteForce))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want.Rows) {
		t.Fatal("forced-strategy run changed the answer")
	}
	if res.Stats.Projector != ProjectorBruteForce {
		t.Fatalf("projector option ignored: %v", res.Stats.Projector)
	}
	// Preparing before load fails cleanly.
	empty, _ := Create([]string{`CREATE TABLE T (id int, a int)`}, Options{})
	if _, err := empty.Prepare(`SELECT a FROM T`); err == nil {
		t.Fatal("prepare before load accepted")
	}
}

func TestPreparedInsertFootprint(t *testing.T) {
	// An insert stages the encoded hidden record plus the table's SKT
	// row; here the two together exceed one 2KB flash buffer, so the
	// INSERT's admission floor must be 2 instead of the old hardcoded 1.
	db, err := Create([]string{
		`CREATE TABLE Blobs (id int, tag_id int REFERENCES Tags HIDDEN,
		   a char(1000) HIDDEN, b char(1000) HIDDEN, c char(45) HIDDEN)`,
		`CREATE TABLE Tags (id int, name char(10))`,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ld := db.Loader()
	if err := ld.Append("Tags", R{"name": "seed"}); err != nil {
		t.Fatal(err)
	}
	if err := ld.Append("Blobs", R{"tag_id": 0, "a": "x", "b": "y", "c": "z"}); err != nil {
		t.Fatal(err)
	}
	if err := ld.Commit(); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare(`INSERT INTO Blobs (tag_id, a, b, c) VALUES (0, 'h', 'i', 'hello')`)
	if err != nil {
		t.Fatal(err)
	}
	if got := stmt.Plan().MinBuffers; got != 2 {
		t.Fatalf("insert floor = %d, want 2 (2045B hidden record + 4B SKT row over 2048B buffers)", got)
	}
	if _, err := stmt.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n, _ := db.Rows("Blobs"); n != 2 {
		t.Fatalf("rows = %d", n)
	}
	res, err := db.Query(`SELECT id, c FROM Blobs WHERE c = 'hello'`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("res = %v err = %v", res, err)
	}
}

func TestBloomInfeasibleSurfaced(t *testing.T) {
	db, err := Create([]string{
		`CREATE TABLE A (id int, fb int REFERENCES B HIDDEN, u char(2))`,
		`CREATE TABLE B (id int, v char(2), h char(2) HIDDEN)`,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ld := db.Loader()
	for i := 0; i < 50; i++ {
		if err := ld.Append("B", R{"v": "xx", "h": "hh"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		if err := ld.Append("A", R{"fb": i % 50, "u": "uu"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ld.Commit(); err != nil {
		t.Fatal(err)
	}
	db.ForceStrategy(StrategyPostFilter)
	_, err = db.Query(`SELECT A.id FROM A, B WHERE A.fb = B.id AND B.v = 'xx' AND B.h = 'hh'`)
	if !errors.Is(err, ErrBloomInfeasible) {
		t.Fatalf("err = %v", err)
	}
	db.ForceStrategy(StrategyAuto)
	res, err := db.Query(`SELECT A.id FROM A, B WHERE A.fb = B.id AND B.v = 'xx' AND B.h = 'hh'`)
	if err != nil || len(res.Rows) != 200 {
		t.Fatalf("auto fallback: %d rows, %v", len(res.Rows), err)
	}
}
