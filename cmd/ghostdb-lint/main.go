// Command ghostdb-lint runs GhostDB's static security analyzers
// (internal/analysis) over the module and prints findings in go-vet
// style. It exits 1 when any rule fires, so CI can make the gate
// mandatory:
//
//	go run ./cmd/ghostdb-lint ./...
//
// The tool is a self-contained stand-in for a go/analysis vettool: it
// loads and type-checks the module with the standard library alone, so
// it builds and runs in hermetic environments without golang.org/x/tools.
// Flags:
//
//	-C dir    lint the module rooted at dir (default ".")
//	-run a,b  run only the named analyzers
//	-list     print the suite and exit
package main

import (
	"flag"
	"fmt"
	"os"

	"ghostdb/internal/analysis"
)

func main() {
	dir := flag.String("C", ".", "module root to lint")
	run := flag.String("run", "", "comma-separated analyzer names (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := analysis.ByName(*run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := analysis.DefaultConfig()
	prog, err := analysis.Load(*dir, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := analysis.Run(prog, cfg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "ghostdb-lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
