// Command ghostdb-server serves one GhostDB instance — one or more
// simulated secure tokens — to many clients over a TCP line protocol
// (and, optionally, HTTP/JSON). It is the deployment shape the paper
// implies, scaled: the secure USB keys sit in one machine, the machine
// serves a crowd, and the only information any observer learns is the
// query stream. With -shards > 1 the demo schema's independent trees
// are placed across several tokens (STATS reports per-shard totals).
//
// The untrusted-side result cache (enabled by default) answers repeated
// queries without touching the token at all: cache hits perform zero
// flash I/O and move zero bytes on the bus, and every INSERT invalidates
// the cache so no client can read a stale answer.
//
// Usage:
//
//	ghostdb-server                          # medical demo on :7333
//	ghostdb-server -listen :9000 -http :9001
//	ghostdb-server -scale 0.05 -cache 33554432 -sessions 16
//	printf 'QUERY SELECT ...\nQUIT\n' | nc localhost 7333
//
// Protocol (see internal/server): QUERY, EXEC, EXPLAIN, STATS, PING,
// QUIT — one command per line, responses terminated by OK/ERR.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ghostdb"
	"ghostdb/internal/server"
)

func main() {
	listen := flag.String("listen", ":7333", "TCP line-protocol listen address")
	httpAddr := flag.String("http", "", "optional HTTP/JSON listen address (e.g. :7334)")
	scale := flag.Float64("scale", 0.01, "demo dataset scale factor (paper's medical DB = 1.0)")
	seed := flag.Int64("seed", 1, "demo dataset seed")
	cacheBytes := flag.Int("cache", 8<<20, "result cache bound in bytes (0 disables caching)")
	pageCacheBytes := flag.Int("page-cache", 4<<20, "untrusted page cache bound in bytes (0 disables it)")
	busAudit := flag.Int("bus-audit", -1, "per-token bus audit trail: -1 off (default for servers), 0 full, n>0 ring of n records")
	sessions := flag.Int("sessions", 8, "max concurrently admitted query sessions")
	ramBytes := flag.Int("ram", 0, "secure RAM budget in bytes (default 65536, the paper's Table 1)")
	shards := flag.Int("shards", 1, "simulated secure tokens to place the demo's trees across")
	metricsOn := flag.Bool("metrics", true, "expose telemetry over HTTP (/metrics, /trace, /slowlog); collection is always on")
	slowMs := flag.Int("slowlog-ms", 250, "slow-query log threshold in simulated milliseconds (0 disables the log)")
	maxQueueWaitMs := flag.Int("max-queue-wait-ms", 0, "shed statements whose predicted admission-queue wait exceeds this many wall milliseconds (0 disables shedding)")
	flag.Parse()

	db, err := buildDemo(*scale, *seed, *cacheBytes, *pageCacheBytes, *busAudit, *sessions, *ramBytes, *shards,
		time.Duration(*slowMs)*time.Millisecond,
		time.Duration(*maxQueueWaitMs)*time.Millisecond)
	if err != nil {
		log.Fatalf("ghostdb-server: %v", err)
	}

	srv := server.New(db, log.Printf)
	srv.SetTelemetry(*metricsOn)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("ghostdb-server: %v", err)
	}
	log.Printf("GhostDB %s serving medical demo (scale %g) on %s — %d secure token(s), %d sessions, %dB result cache",
		ghostdb.Version, *scale, ln.Addr(), db.Shards(), *sessions, *cacheBytes)
	log.Printf(`try: printf 'QUERY SELECT COUNT(*) FROM Patients WHERE zipcode < '\''0000000100'\''\nSTATS\nQUIT\n' | nc %s`, hostPort(ln.Addr().String()))

	var httpSrv *http.Server
	if *httpAddr != "" {
		httpSrv = &http.Server{Addr: *httpAddr, Handler: srv.HTTPHandler()}
		go func() {
			log.Printf("HTTP/JSON facade on %s (/query /exec /explain /stats /healthz /metrics /trace /slowlog)", *httpAddr)
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("http: %v", err)
			}
		}()
	}

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("%v: draining (in-flight queries finish, then exit)", s)
	case err := <-serveDone:
		if err != nil {
			log.Fatalf("ghostdb-server: %v", err)
		}
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	// Drain the engine first: while in-flight commands finish, /healthz
	// keeps answering 503 "draining" so load balancers stop routing here
	// before the HTTP listener goes away.
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("forced shutdown: %v", err)
	}
	if httpSrv != nil {
		httpSrv.Shutdown(ctx)
	}
	tot := db.Totals()
	cs := db.CacheStats()
	log.Printf("served %d queries (%d cache hits, %d shared, %d entries cached); token: %d flash reads, %d B up / %d B down",
		tot.Queries, tot.CacheHits, tot.CacheShared, cs.Entries, tot.Flash.PageReads, tot.BusUp, tot.BusDown)
}

// hostPort renders an address for the "try:" hint, mapping wildcard
// hosts to localhost.
func hostPort(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "localhost"
	}
	return net.JoinHostPort(host, port)
}

// buildDemo constructs the medical-style demo database through the
// public API: Doctors (hidden name), Patients (hidden diagnosis, visible
// zipcode) and Measurements (hidden value), with the paper's §6.2
// cardinality ratios scaled by sf — plus an independent AuditLog tree,
// so multi-shard servers have a second tree to place on its own token.
// Values are zero-padded decimals over a domain of 1000 so range
// predicates can target any selectivity, the same convention as
// internal/datagen.
func buildDemo(sf float64, seed int64, cacheBytes, pageCacheBytes, busAudit, sessions, ramBytes, shards int, slowThreshold, maxQueueWait time.Duration) (*ghostdb.DB, error) {
	if sf <= 0 {
		sf = 0.01
	}
	db, err := ghostdb.Create([]string{
		`CREATE TABLE Doctors (id int, name char(10) HIDDEN, specialty char(10))`,
		`CREATE TABLE Patients (id int, doctor_id int REFERENCES Doctors HIDDEN,
		   zipcode char(10), diagnosis char(10) HIDDEN)`,
		`CREATE TABLE Measurements (id int, patient_id int REFERENCES Patients HIDDEN,
		   week char(10), value float HIDDEN)`,
		`CREATE TABLE AuditLog (id int, day char(10), event char(10) HIDDEN)`,
	}, ghostdb.Options{
		RAMBytes:             ramBytes,
		FlashBlocks:          1 << 14,
		MaxConcurrentQueries: sessions,
		ResultCacheBytes:     cacheBytes,
		PageCacheBytes:       pageCacheBytes,
		BusAuditEntries:      busAudit,
		Shards:               shards,
		SlowQueryThreshold:   slowThreshold,
		MaxQueueWait:         maxQueueWait,
	})
	if err != nil {
		return nil, err
	}

	scaled := func(full int, floor int) int {
		n := int(float64(full) * sf)
		if n < floor {
			n = floor
		}
		return n
	}
	nDoc := scaled(4500, 15)
	nPat := scaled(14000, 45)
	nMeas := scaled(1_300_000, 400)

	rng := rand.New(rand.NewSource(seed))
	pad := func(v int) string { return fmt.Sprintf("%010d", v) }
	ld := db.Loader()
	for i := 0; i < nDoc; i++ {
		if err := ld.Append("Doctors", ghostdb.R{
			"name":      pad(rng.Intn(1000)),
			"specialty": pad(rng.Intn(1000)),
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nPat; i++ {
		if err := ld.Append("Patients", ghostdb.R{
			"doctor_id": rng.Intn(nDoc),
			"zipcode":   pad(rng.Intn(1000)),
			"diagnosis": pad(rng.Intn(1000)),
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < nMeas; i++ {
		if err := ld.Append("Measurements", ghostdb.R{
			"patient_id": rng.Intn(nPat),
			"week":       pad(rng.Intn(1000)),
			"value":      float64(rng.Intn(1000)),
		}); err != nil {
			return nil, err
		}
	}
	for i := 0; i < scaled(40_000, 60); i++ {
		if err := ld.Append("AuditLog", ghostdb.R{
			"day":   pad(rng.Intn(1000)),
			"event": pad(rng.Intn(1000)),
		}); err != nil {
			return nil, err
		}
	}
	if err := ld.Commit(); err != nil {
		return nil, err
	}
	return db, nil
}
