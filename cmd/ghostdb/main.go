// Command ghostdb is an interactive shell over a demo GhostDB instance:
// it loads the medical database of the paper's evaluation (§6.2) — or the
// synthetic tree dataset — and executes SQL from stdin, printing result
// rows and the simulated secure-token cost of every query.
//
// Usage:
//
//	ghostdb                         # medical demo, interactive
//	ghostdb -db synthetic -scale 0.01
//	echo "SELECT ..." | ghostdb -stats
//
// `EXPLAIN SELECT ...` prints the statement's plan — per-table
// strategies, derived RAM footprint and estimated cost — without
// executing it. `EXPLAIN ANALYZE SELECT ...` executes the statement
// with a trace attached and prints the span tree as JSON: parse,
// resolve, plan, admission wait, and the token execution broken down
// into per-operator simulated costs that sum to the query's SimTime.
//
// UPDATE and DELETE statements commit through the secure token's hidden
// delta log; `\compact` folds the accumulated deltas into fresh base
// images on every token and prints the write-path counters.
//
// Shell commands: \schema  \stats  \cache  \shards  \compact  \audit
// \metrics  \slowlog  \quit
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ghostdb/internal/datagen"
	"ghostdb/internal/exec"
	"ghostdb/internal/flash"
	"ghostdb/internal/obs"
)

func main() {
	which := flag.String("db", "medical", "demo database: medical or synthetic")
	scale := flag.Float64("scale", 0.005, "scale factor (paper = 1.0)")
	seed := flag.Int64("seed", 1, "dataset seed")
	stats := flag.Bool("stats", false, "print cost statistics after every query")
	ramBytes := flag.Int("ram", 0, "secure RAM budget in bytes (default 65536, the paper's Table 1)")
	cacheBytes := flag.Int("cache", 4<<20, "untrusted-side result cache bound in bytes (0 disables)")
	shards := flag.Int("shards", 1, "simulated secure tokens to place the schema's trees across")
	metricsOn := flag.Bool("metrics", false, "enable the \\metrics command (Prometheus text dump; collection is always on)")
	slowMs := flag.Int("slowlog-ms", 0, "slow-query log threshold in simulated milliseconds (0 disables the \\slowlog ring)")
	flag.Parse()

	db, err := buildDemo(*which, *scale, *seed, *ramBytes, *cacheBytes, *shards,
		time.Duration(*slowMs)*time.Millisecond)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ghostdb:", err)
		os.Exit(1)
	}
	fmt.Printf("GhostDB %s demo shell — %s dataset at scale %g\n", exec.Version, *which, *scale)
	for _, t := range db.Sch.Tables {
		fmt.Printf("  %-14s %8d tuples\n", t.Name, db.Rows(t.Index))
	}
	fmt.Println(`Type SQL (single line), EXPLAIN [ANALYZE] SELECT ..., or \schema, \stats, \cache, \shards, \compact, \audit, \metrics, \slowlog, \quit.`)

	showStats := *stats
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("ghostdb> ")
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\schema`:
			fmt.Print(db.Sch.String())
			continue
		case line == `\stats`:
			showStats = !showStats
			fmt.Printf("stats: %v\n", showStats)
			continue
		case line == `\cache`:
			cs := db.CacheStats()
			if cs.CapacityBytes == 0 {
				fmt.Println("result cache disabled (run with -cache <bytes>)")
				continue
			}
			tot := db.Totals()
			fmt.Printf("result cache: %d entries, %d of %d bytes (untrusted RAM — not charged to the secure budget)\n",
				cs.Entries, cs.Bytes, cs.CapacityBytes)
			fmt.Printf("  hits %d · singleflight-shared %d · misses %d · evictions %d · invalidations %d\n",
				cs.Hits, cs.SharedHits, cs.Misses, cs.Evictions, cs.Invalidations)
			fmt.Printf("  queries answered without token traffic: %d of %d\n",
				tot.CacheHits+tot.CacheShared, tot.Queries)
			continue
		case line == `\shards`:
			fmt.Printf("placement over %d secure token(s):\n%s", len(db.Tokens()), db.Placement().Describe(db.Sch))
			for i, tot := range db.TokenTotals() {
				fmt.Printf("  token %d totals: %d sessions, %v simulated, %d flash reads / %d writes, %d B down / %d B up\n",
					i, tot.Queries, tot.SimTime, tot.Flash.PageReads, tot.Flash.PageWrites, tot.BusDown, tot.BusUp)
			}
			continue
		case line == `\compact`:
			start := time.Now()
			if err := db.Compact(context.Background()); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("compaction pass done in %v wall time\n", time.Since(start))
			for i, ds := range db.TokenDeltaStats() {
				fmt.Printf("  token %d: delta %d pages, %d DML statements committed, %d compactions\n",
					i, ds.Pages, ds.DMLStatements, ds.Compactions)
			}
			continue
		case line == `\audit`:
			ups := db.Bus.UplinkRecords()
			fmt.Printf("Secure -> Untrusted transfers since the last query: %d\n", len(ups))
			for _, r := range ups {
				fmt.Printf("  [%s] %d bytes: %q\n", r.Kind, r.Bytes, r.Payload)
			}
			continue
		case line == `\metrics`:
			if !*metricsOn {
				fmt.Println("metrics exposure is off (run with -metrics)")
				continue
			}
			if err := db.Metrics().WritePrometheus(os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
			continue
		case line == `\slowlog`:
			sl := db.SlowLog()
			if sl == nil {
				fmt.Println("slow-query log disabled (run with -slowlog-ms <threshold>)")
				continue
			}
			entries := sl.Entries()
			fmt.Printf("slow-query log: %d recorded (threshold %v, ring holds %d)\n",
				sl.Total(), sl.Threshold(), len(entries))
			for _, e := range entries {
				fmt.Printf("  [%s] %s sim %dµs, queue %dµs, grant %d/%d buffers: %s\n",
					e.Time.Format("15:04:05"), e.Kind, e.SimUs, e.QueueWaitUs,
					e.PlanMinBuffers, e.GrantBuffers, e.Query)
				for _, sc := range e.Spans {
					fmt.Printf("      %-12s %8dµs\n", sc.Name, sc.SimUs)
				}
			}
			continue
		case strings.HasPrefix(line, `\`):
			fmt.Println("unknown command:", line)
			continue
		}
		if fields := strings.Fields(line); len(fields) > 1 && strings.EqualFold(fields[0], "EXPLAIN") {
			if len(fields) > 2 && strings.EqualFold(fields[1], "ANALYZE") {
				// EXPLAIN ANALYZE SELECT ... : execute with a trace and
				// print the span tree as JSON.
				sql := strings.TrimSpace(line[strings.Index(strings.ToLower(line), "analyze")+len("analyze"):])
				tr := obs.NewTrace(sql)
				cfg := db.DefaultConfig()
				cfg.Trace = tr
				res, err := db.RunCtx(context.Background(), sql, cfg)
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				tr.Finish()
				blob, err := tr.JSON()
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				os.Stdout.Write(blob)
				fmt.Println()
				fmt.Printf("(%d rows; simulated time %v; queue wait %v; grant %d/%d buffers)\n",
					len(res.Rows), res.Stats.SimTime, res.Stats.QueueWait,
					res.Stats.PlanMinBuffers, res.Stats.GrantBuffers)
				continue
			}
			// EXPLAIN SELECT ... : print the plan (strategies, footprint,
			// estimated cost) without executing anything.
			stmt, err := db.Prepare(strings.TrimSpace(line[len(fields[0]):]), db.DefaultConfig())
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(stmt.Plan().Explain())
			continue
		}
		res, err := db.Run(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		printResult(res)
		if showStats {
			printStats(res)
		}
	}
}

func buildDemo(which string, scale float64, seed int64, ramBytes, cacheBytes, shards int, slowThreshold time.Duration) (*exec.DB, error) {
	var ds *datagen.Dataset
	var err error
	switch which {
	case "medical":
		ds, err = datagen.Medical(scale, seed)
	case "synthetic":
		ds, err = datagen.Synthetic(scale, seed)
	default:
		return nil, fmt.Errorf("unknown demo database %q", which)
	}
	if err != nil {
		return nil, err
	}
	p := flash.DefaultParams()
	p.Blocks = 1 << 14
	if ramBytes != 0 && ramBytes < p.PageSize {
		return nil, fmt.Errorf("-ram %d is smaller than one %d-byte flash buffer", ramBytes, p.PageSize)
	}
	return ds.NewDB(exec.Options{
		FlashParams:        p,
		RAMBudget:          ramBytes,
		ResultCacheBytes:   cacheBytes,
		Shards:             shards,
		SlowQueryThreshold: slowThreshold,
	})
}

func printResult(res *exec.Result) {
	if len(res.Columns) == 0 {
		fmt.Println("ok")
		return
	}
	const maxRows = 25
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	shown := res.Rows
	if len(shown) > maxRows {
		shown = shown[:maxRows]
	}
	cells := make([][]string, len(shown))
	for ri, row := range shown {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	for i, c := range res.Columns {
		fmt.Printf("| %-*s ", widths[i], c)
	}
	fmt.Println("|")
	for i := range res.Columns {
		fmt.Print("|", strings.Repeat("-", widths[i]+2))
	}
	fmt.Println("|")
	for _, row := range cells {
		for ci, s := range row {
			fmt.Printf("| %-*s ", widths[ci], s)
		}
		fmt.Println("|")
	}
	if len(res.Rows) > maxRows {
		fmt.Printf("... (%d rows total)\n", len(res.Rows))
	} else {
		fmt.Printf("(%d rows)\n", len(res.Rows))
	}
}

func printStats(res *exec.Result) {
	s := res.Stats
	if s.CacheHit || s.CacheShared {
		label := "hit"
		if s.CacheShared {
			label = "singleflight-shared"
		}
		fmt.Printf("result cache %s: zero secure-token traffic (no flash I/O, no bus bytes)\n", label)
		return
	}
	fmt.Printf("simulated time: %v (flash %v + link %v)\n", s.SimTime, s.IOTime, s.CommTime)
	fmt.Printf("flash: %d reads, %d writes, %d bytes to RAM; link: %d B down / %d B up; RAM high water: %d B\n",
		s.Flash.PageReads, s.Flash.PageWrites, s.Flash.BytesToRAM, s.BusDown, s.BusUp, s.RAMHigh)
	if len(s.Strategy) > 0 {
		fmt.Print("strategies: ")
		for t, st := range s.Strategy {
			fmt.Printf("%s=%v ", t, st)
		}
		fmt.Println()
	}
}
