// Command ghostdb-bench regenerates the tables and figures of the GhostDB
// paper's evaluation (§6) at a configurable scale factor, printing the
// same series the paper plots.
//
// Usage:
//
//	ghostdb-bench -exp all                 # every table and figure
//	ghostdb-bench -exp fig8 -scale 0.02    # one figure, larger scale
//	ghostdb-bench -exp ablations           # the DESIGN.md ablations
//	ghostdb-bench -exp concurrency         # scheduler sweep -> BENCH_concurrency.json
//	ghostdb-bench -exp planner             # plan-sized vs fixed-floor admission -> BENCH_planner.json
//	ghostdb-bench -exp cache               # result cache: cold vs Zipf -> BENCH_cache.json
//	ghostdb-bench -exp pagecache           # page cache: Zipf with/without -> BENCH_pagecache.json
//	ghostdb-bench -exp sharding            # 1/2/4 secure tokens -> BENCH_sharding.json
//	ghostdb-bench -exp dml                 # OLTP write window vs read-only baseline -> BENCH_dml.json
//	ghostdb-bench -exp slo                 # open-loop rate search under the SLO -> BENCH_slo.json
//	ghostdb-bench -exp slo-gate -in BENCH_slo.json -baseline BENCH_slo_baseline.json
//	                                       # CI perf gate: fail on sustainable-rate regression
//
// The paper's full scale (10M-tuple root table) is -scale 1.0; the
// default keeps laptop runtimes pleasant. Reported times are simulated
// (flash I/O + link transfer under the Table 1 cost model), so they are
// comparable across machines.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"ghostdb/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, fig7..fig16, ablations, concurrency, planner, cache, pagecache, sharding, dml, slo, slo-gate")
	scale := flag.Float64("scale", 0.01, "scale factor (paper = 1.0)")
	seed := flag.Int64("seed", 1, "dataset seed")
	queries := flag.Int("queries", 60, "queries per level in the concurrency/planner sweeps")
	out := flag.String("out", "", "output path for sweep reports (default BENCH_<exp>.json)")
	in := flag.String("in", "BENCH_slo.json", "slo-gate: freshly measured report")
	baseline := flag.String("baseline", "BENCH_slo_baseline.json", "slo-gate: committed baseline report")
	tolerance := flag.Float64("tolerance", 0.10, "slo-gate: allowed relative drop in max sustainable qps")
	flag.Parse()

	lab := experiments.NewLab(*scale, *seed)
	name := strings.ToLower(*exp)
	switch name {
	case "concurrency":
		path := *out
		if path == "" {
			path = "BENCH_concurrency.json"
		}
		if err := runConcurrency(lab, *queries, path); err != nil {
			fmt.Fprintln(os.Stderr, "ghostdb-bench:", err)
			os.Exit(1)
		}
		return
	case "planner":
		path := *out
		if path == "" {
			path = "BENCH_planner.json"
		}
		if err := runPlanner(lab, *queries, path); err != nil {
			fmt.Fprintln(os.Stderr, "ghostdb-bench:", err)
			os.Exit(1)
		}
		return
	case "cache":
		path := *out
		if path == "" {
			path = "BENCH_cache.json"
		}
		if err := runCache(lab, *queries, path); err != nil {
			fmt.Fprintln(os.Stderr, "ghostdb-bench:", err)
			os.Exit(1)
		}
		return
	case "pagecache":
		path := *out
		if path == "" {
			path = "BENCH_pagecache.json"
		}
		if err := runPagecache(lab, *queries, path); err != nil {
			fmt.Fprintln(os.Stderr, "ghostdb-bench:", err)
			os.Exit(1)
		}
		return
	case "sharding":
		path := *out
		if path == "" {
			path = "BENCH_sharding.json"
		}
		if err := runSharding(lab, *queries, path); err != nil {
			fmt.Fprintln(os.Stderr, "ghostdb-bench:", err)
			os.Exit(1)
		}
		return
	case "dml":
		path := *out
		if path == "" {
			path = "BENCH_dml.json"
		}
		if err := runDML(lab, *queries, path); err != nil {
			fmt.Fprintln(os.Stderr, "ghostdb-bench:", err)
			os.Exit(1)
		}
		return
	case "slo":
		path := *out
		if path == "" {
			path = "BENCH_slo.json"
		}
		if err := runSLO(lab, path); err != nil {
			fmt.Fprintln(os.Stderr, "ghostdb-bench:", err)
			os.Exit(1)
		}
		return
	case "slo-gate":
		if err := runSLOGate(*in, *baseline, *tolerance); err != nil {
			fmt.Fprintln(os.Stderr, "ghostdb-bench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(lab, name); err != nil {
		fmt.Fprintln(os.Stderr, "ghostdb-bench:", err)
		os.Exit(1)
	}
}

// runPlanner compares plan-sized admission against the pre-planner fixed
// 8-buffer floor at 1/4/16 sessions and writes the machine-readable
// report.
func runPlanner(lab *experiments.Lab, queries int, out string) error {
	rep, err := lab.PlannerSweep([]int{1, 4, 16}, queries)
	if err != nil {
		return err
	}
	fmt.Printf("== planner: plan-sized vs fixed-floor admission, %d queries per cell (scale %g, %dB secure RAM) ==\n",
		queries, rep.Scale, rep.RAMBudgetBytes)
	fmt.Printf("  %-12s %-12s %10s %12s %12s %12s %14s\n",
		"sessions", "mode", "wall-qps", "sim-p50", "sim-p95", "max-running", "floors-seen")
	for _, p := range rep.Levels {
		fmt.Printf("  %-12d %-12s %10.1f %10.2fms %10.2fms %12d %7d..%d\n",
			p.Concurrency, p.Mode, p.WallQPS, p.SimP50Ms, p.SimP95Ms, p.MaxRunning, p.MinFloorSeen, p.MaxFloorSeen)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  report written to %s\n", out)
	return nil
}

// runCache compares the cold (all-distinct) and Zipf (repeated)
// workloads through the result cache at 1/4/16 sessions and writes the
// machine-readable report. It fails loudly if the Zipf workload is not
// strictly faster than cold, or if any cache hit performed secure-token
// traffic — those are the cache's two contract points.
func runCache(lab *experiments.Lab, queries int, out string) error {
	rep, err := lab.CacheSweep([]int{1, 4, 16}, queries)
	if err != nil {
		return err
	}
	fmt.Printf("== cache: cold vs Zipf-repeated workload, %d queries per cell (scale %g, %dB secure RAM, %dB cache) ==\n",
		queries, rep.Scale, rep.RAMBudgetBytes, rep.CacheCapacityBytes)
	fmt.Printf("  %-10s %-6s %9s %10s %10s %10s %8s %8s %9s\n",
		"sessions", "mode", "distinct", "wall-qps", "sim-p50", "sim-p95", "hits", "shared", "executed")
	for _, p := range rep.Levels {
		fmt.Printf("  %-10d %-6s %9d %10.1f %8.2fms %8.2fms %8d %8d %9d\n",
			p.Concurrency, p.Mode, p.DistinctQueries, p.WallQPS, p.SimP50Ms, p.SimP95Ms,
			p.CacheHits, p.CacheShared, p.Executed)
	}
	fmt.Printf("  zipf strictly faster than cold at every level: %v\n", rep.ZipfSpeedupOK)
	fmt.Printf("  cache hits performed zero token bus/flash traffic: %v\n", rep.HitTrafficZero)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  report written to %s\n", out)
	if !rep.HitTrafficZero {
		return fmt.Errorf("cache contract violated: hits performed secure-token traffic")
	}
	if !rep.ZipfSpeedupOK {
		return fmt.Errorf("cache contract violated: zipf workload not faster than cold")
	}
	return nil
}

// runPagecache compares the cache-off and cache-on arms on the Zipf
// mixed workload and writes the machine-readable report. It fails
// loudly on any of PR 10's contract points: the Down-byte saving floor,
// no-worse simulated latency, byte-identical uplink audit trails, and
// exact answers on both arms.
func runPagecache(lab *experiments.Lab, queries int, out string) error {
	rep, err := lab.PagecacheSweep(queries)
	if err != nil {
		return err
	}
	fmt.Printf("== pagecache: Zipf mixed workload, cache off vs on, %d queries per arm (scale %g, %dB secure RAM, %dB page cache) ==\n",
		queries, rep.Scale, rep.RAMBudgetBytes, rep.PageCacheBytes)
	fmt.Printf("  %-6s %10s %10s %10s %12s %12s %8s %10s %8s\n",
		"mode", "wall-qps", "sim-p50", "sim-total", "bus-down", "flash-reads", "pc-hits", "coalesced", "uplinks")
	for _, p := range []experiments.PagecachePoint{rep.Off, rep.On} {
		fmt.Printf("  %-6s %10.1f %8.2fms %8.2fms %11dB %12d %8d %10d %8d\n",
			p.Mode, p.WallQPS, p.SimP50Ms, p.SimTotalMs, p.BusDownBytes, p.FlashReads,
			p.PagecacheHits, p.BusCoalesced, p.UplinkRecords)
	}
	fmt.Printf("  down-byte drop: %.1f%% (floor %.0f%%): %v\n",
		rep.BusDownDropPct, experiments.MinBusDownDropPct, rep.BusSavingsOK)
	fmt.Printf("  simulated latency no worse (p50) and strictly lower (total): %v\n", rep.LatencyOK)
	fmt.Printf("  uplink audit trails byte-identical across arms: %v\n", rep.UplinkParityOK)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  report written to %s\n", out)
	if !rep.UplinkParityOK {
		return fmt.Errorf("pagecache contract violated: the cache changed the uplink audit trail")
	}
	if rep.Off.AnswerErrors != 0 || rep.On.AnswerErrors != 0 {
		return fmt.Errorf("pagecache contract violated: answers diverged from the fresh-engine baseline")
	}
	if !rep.BusSavingsOK {
		return fmt.Errorf("pagecache contract violated: Down-byte drop %.1f%% below the %.0f%% floor",
			rep.BusDownDropPct, experiments.MinBusDownDropPct)
	}
	if !rep.LatencyOK {
		return fmt.Errorf("pagecache contract violated: cache-on arm was not faster in simulated time")
	}
	if !rep.PrefetchQuiesced {
		return fmt.Errorf("pagecache contract violated: prefetch in-flight gauge nonzero after drain")
	}
	return nil
}

// runSharding sweeps the shard-local workload at 1/2/4 secure tokens ×
// 1/4/16 sessions and writes the machine-readable report. It fails
// loudly if 4 tokens are not strictly faster than 1 at 16 sessions, or
// if the per-shard Totals do not sum to the unsharded engine's byte
// counts — those are sharding's two contract points.
func runSharding(lab *experiments.Lab, queries int, out string) error {
	rep, err := lab.ShardingSweep([]int{1, 2, 4}, []int{1, 4, 16}, queries)
	if err != nil {
		return err
	}
	fmt.Printf("== sharding: shard-local workload over %d trees, %d queries per cell (scale %g, %dB secure RAM per token) ==\n",
		rep.Trees, queries, rep.Scale, rep.RAMBudgetBytes)
	fmt.Printf("  %-8s %-10s %10s %10s %10s %16s\n",
		"tokens", "sessions", "wall-qps", "sim-p50", "sim-p95", "per-shard-queries")
	for _, p := range rep.Levels {
		fmt.Printf("  %-8d %-10d %10.1f %8.2fms %8.2fms %16v\n",
			p.Tokens, p.Concurrency, p.WallQPS, p.SimP50Ms, p.SimP95Ms, p.PerShardQueries)
	}
	fmt.Printf("  4 tokens strictly faster than 1 at 16 sessions: %v\n", rep.ScalingOK)
	fmt.Printf("  per-shard totals sum to the unsharded byte counts: %v (flash ops %v, bus bytes %v)\n",
		rep.ParityOK, rep.ParityFlashOps, rep.ParityBusBytes)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  report written to %s\n", out)
	if !rep.ParityOK {
		return fmt.Errorf("sharding contract violated: per-shard totals diverge from the unsharded run")
	}
	if !rep.ScalingOK {
		return fmt.Errorf("sharding contract violated: 4 tokens not faster than 1 on the shard-local workload")
	}
	return nil
}

// runDML replays the OLTP write window: mixed reads and delta-store
// writes (with concurrent background compaction) against a write-free
// baseline at 1/4/16 sessions, and writes the machine-readable report.
func runDML(lab *experiments.Lab, queries int, out string) error {
	rep, err := lab.DMLSweep([]int{1, 4, 16}, queries)
	if err != nil {
		return err
	}
	fmt.Printf("== dml: write window (4 reads : 1 write) vs read-only baseline, %d reads per cell (scale %g, %dB secure RAM, compaction at %d delta pages) ==\n",
		queries, rep.Scale, rep.RAMBudgetBytes, rep.CompactThreshold)
	fmt.Printf("  %-10s %-10s %10s %10s %10s %10s %12s %12s\n",
		"sessions", "mode", "wall-qps", "sim-p50", "sim-p95", "peak-delta", "compactions", "answer-errs")
	for _, p := range rep.Levels {
		fmt.Printf("  %-10d %-10s %10.1f %8.2fms %8.2fms %9dp %12d %12d\n",
			p.Concurrency, p.Mode, p.WallQPS, p.SimP50Ms, p.SimP95Ms,
			p.PeakDeltaPages, p.Compactions, p.AnswerErrors)
	}
	fmt.Printf("  mixed qps >= 85%% of read-only at max sessions, exact answers: %v\n", rep.MixedOK)
	fmt.Printf("  no admission starvation: %v; compaction ran mid-window: %v\n",
		rep.StarvationOK, rep.CompactionRan)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  report written to %s\n", out)
	if !rep.MixedOK {
		return fmt.Errorf("dml contract violated: mixed write window fell below 85%% of the read-only baseline (or answers drifted)")
	}
	if !rep.StarvationOK {
		return fmt.Errorf("dml contract violated: admission starved under background compaction")
	}
	return nil
}

// runSLO runs the open-loop rate search and writes the machine-readable
// report the CI gate consumes. It fails loudly if the overload probe
// did not degrade gracefully — that is the tentpole contract: past
// capacity the engine sheds, it does not let admitted latency collapse.
func runSLO(lab *experiments.Lab, out string) error {
	rep, err := lab.SLOSweep()
	if err != nil {
		return err
	}
	fmt.Printf("== slo: open-loop Poisson arrivals, mixed matrix over %d tokens (scale %g, SLO %gms wall p99, shed bound %gms queue wait) ==\n",
		rep.Shards, rep.Scale, rep.SLOTargetMs, rep.MaxQueueWaitMs)
	fmt.Printf("  %-10s %9s %8s %6s %10s %10s %10s %10s %12s\n",
		"target-qps", "arrivals", "admitted", "shed", "wall-p50", "wall-p95", "wall-p99", "queue-p99", "sustainable")
	points := rep.Levels
	for _, p := range points {
		fmt.Printf("  %-10.0f %9d %8d %6d %8.2fms %8.2fms %8.2fms %8.2fms %12v\n",
			p.TargetQPS, p.Arrivals, p.Admitted, p.Shed,
			p.WallP50Ms, p.WallP95Ms, p.WallP99Ms, p.QueueP99Ms, p.Sustainable)
	}
	fmt.Printf("  max sustainable rate under the SLO: %.0f qps\n", rep.MaxSustainableQPS)
	if o := rep.Overload; o != nil {
		fmt.Printf("  overload probe at %.0f qps: shed %d/%d (%.1f%%), admitted wall-p99 %.2fms, graceful: %v\n",
			o.TargetQPS, o.Shed, o.Arrivals, 100*o.ShedFraction, o.WallP99Ms, rep.OverloadOK)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  report written to %s\n", out)
	if !rep.OverloadOK {
		return fmt.Errorf("slo contract violated: overload probe did not shed gracefully (sheds and admitted-p99 within SLO expected)")
	}
	return nil
}

// runSLOGate compares a fresh report against the committed baseline and
// fails (non-zero exit, so CI goes red) when the max sustainable rate
// regressed by more than the tolerance.
func runSLOGate(inPath, basePath string, tolerance float64) error {
	read := func(path string) (*experiments.SLOReport, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var rep experiments.SLOReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return &rep, nil
	}
	cur, err := read(inPath)
	if err != nil {
		return err
	}
	base, err := read(basePath)
	if err != nil {
		return err
	}
	if base.MaxSustainableQPS <= 0 {
		return fmt.Errorf("slo-gate: baseline %s has no max_sustainable_qps", basePath)
	}
	floor := (1 - tolerance) * base.MaxSustainableQPS
	fmt.Printf("== slo-gate: measured %.0f qps vs baseline %.0f qps (floor %.0f, tolerance %.0f%%) ==\n",
		cur.MaxSustainableQPS, base.MaxSustainableQPS, floor, 100*tolerance)
	if !cur.OverloadOK {
		return fmt.Errorf("slo-gate: measured run failed the graceful-overload contract")
	}
	if cur.MaxSustainableQPS < floor {
		return fmt.Errorf("slo-gate: max sustainable rate regressed: %.0f qps < %.0f qps floor (baseline %.0f, tolerance %.0f%%)",
			cur.MaxSustainableQPS, floor, base.MaxSustainableQPS, 100*tolerance)
	}
	fmt.Println("  gate passed")
	return nil
}

// runConcurrency sweeps the admission scheduler at 1/4/16 concurrent
// sessions and writes the machine-readable report.
func runConcurrency(lab *experiments.Lab, queries int, out string) error {
	rep, err := lab.ConcurrencySweep([]int{1, 4, 16}, queries)
	if err != nil {
		return err
	}
	fmt.Printf("== concurrency: %d-query mixed workload per level (scale %g, %dB secure RAM) ==\n",
		queries, rep.Scale, rep.RAMBudgetBytes)
	fmt.Printf("  %-12s %8s %12s %12s %12s %12s\n",
		"sessions", "grant", "wall-qps", "sim-p50", "sim-p95", "max-running")
	for _, p := range rep.Levels {
		fmt.Printf("  %-12d %7db %12.1f %10.2fms %10.2fms %12d\n",
			p.Concurrency, p.GrantBuffers, p.WallQPS, p.SimP50Ms, p.SimP95Ms, p.MaxRunning)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  report written to %s\n", out)
	return nil
}

func run(lab *experiments.Lab, exp string) error {
	type entry struct {
		name string
		f    func() (*experiments.Figure, error)
	}
	figures := []entry{
		{"fig7", lab.Fig7}, {"fig8", lab.Fig8}, {"fig9", lab.Fig9},
		{"fig10", lab.Fig10}, {"fig11", lab.Fig11}, {"fig12", lab.Fig12},
		{"fig13", lab.Fig13}, {"fig14", lab.Fig14}, {"fig15", lab.Fig15},
		{"fig16", lab.Fig16},
	}
	ablations := []entry{
		{"ablation-merge", lab.AblationMergeReduction},
		{"ablation-bloom", lab.AblationBloomRatio},
		{"ablation-climb", lab.AblationClimbingVsCascade},
	}

	if exp == "table1" || exp == "all" {
		fmt.Println("== Table 1: Main performance parameters of USB keys ==")
		for _, line := range experiments.Table1() {
			fmt.Println("  " + line)
		}
		fmt.Println()
		if exp == "table1" {
			return nil
		}
	}
	var todo []entry
	switch exp {
	case "all":
		todo = append(figures, ablations...)
	case "ablations":
		todo = ablations
	default:
		for _, e := range append(figures, ablations...) {
			if e.name == exp {
				todo = []entry{e}
			}
		}
		if todo == nil {
			return fmt.Errorf("unknown experiment %q", exp)
		}
	}
	for _, e := range todo {
		fig, err := e.f()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		printFigure(fig)
	}
	return nil
}

func printFigure(fig *experiments.Figure) {
	fmt.Printf("== %s: %s ==\n", fig.Name, fig.Title)
	fmt.Printf("   x-axis: %s\n", fig.XLabel)
	if fig.Name == "fig7" {
		printFig7(fig)
		fmt.Println()
		return
	}
	if fig.Name == "fig15" || fig.Name == "fig16" {
		printBars(fig)
		fmt.Println()
		return
	}
	// Group points by series, ordered by first appearance.
	series := map[string][]experiments.Point{}
	var order []string
	for _, p := range fig.Points {
		if _, ok := series[p.Series]; !ok {
			order = append(order, p.Series)
		}
		series[p.Series] = append(series[p.Series], p)
	}
	sort.Strings(order)
	for _, s := range order {
		fmt.Printf("  %-22s", s)
		pts := series[s]
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		for _, p := range pts {
			if p.Skipped {
				fmt.Printf("  %8s", "-")
				continue
			}
			fmt.Printf("  %8.2fms", float64(p.Time.Microseconds())/1000)
		}
		fmt.Println()
	}
	fmt.Printf("  %-22s", "x =")
	pts := series[order[0]]
	sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
	for _, p := range pts {
		fmt.Printf("  %10.3f", p.X)
	}
	fmt.Println()
	fmt.Println()
}

func printFig7(fig *experiments.Figure) {
	bySeries := map[string]map[float64]float64{}
	var ks []float64
	seen := map[float64]bool{}
	for _, p := range fig.Points {
		if bySeries[p.Series] == nil {
			bySeries[p.Series] = map[float64]float64{}
		}
		bySeries[p.Series][p.X] = experiments.SizeMB(p)
		if p.X >= 0 && !seen[p.X] {
			seen[p.X] = true
			ks = append(ks, p.X)
		}
	}
	sort.Float64s(ks)
	fmt.Printf("  %-14s", "k")
	for _, k := range ks {
		fmt.Printf("  %8.0f", k)
	}
	fmt.Println()
	for _, s := range []string{"FullIndex", "BasicIndex", "StarIndex", "JoinIndex", "DBSize"} {
		fmt.Printf("  %-14s", s)
		for _, k := range ks {
			fmt.Printf("  %6.1fMB", bySeries[s][k])
		}
		fmt.Println()
	}
	fmt.Println("  medical dataset (all hidden attrs indexed):")
	for _, s := range []string{"medical-FullIndex", "medical-BasicIndex", "medical-StarIndex", "medical-JoinIndex", "medical-DBSize"} {
		fmt.Printf("    %-26s %6.1fMB\n", s, bySeries[s][-1])
	}
}

func printBars(fig *experiments.Figure) {
	comps := []string{"Merge", "SJoin", "Store", "Project"}
	fmt.Printf("  %-8s", "case")
	for _, c := range comps {
		fmt.Printf("  %10s", c)
	}
	fmt.Printf("  %10s\n", "total-IO")
	for _, p := range fig.Points {
		if p.Skipped {
			fmt.Printf("  %-8s  skipped: %s\n", p.Series, p.Note)
			continue
		}
		fmt.Printf("  %-8s", p.Series)
		for _, c := range comps {
			fmt.Printf("  %8.2fms", float64(p.Breakdown[c].Microseconds())/1000)
		}
		fmt.Printf("  %8.2fms\n", float64(p.IOTime.Microseconds())/1000)
	}
}
