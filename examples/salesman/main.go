// Salesman: the introduction's motivating scenario. Bob carries sensitive
// corporate data — who his customers are, negotiated discounts, private
// technical notes — on a smart USB key. The public product catalog lives
// on whatever untrusted machine he plugs into. Queries link both worlds;
// plugging the key into a spyware-ridden laptop reveals nothing but the
// SQL he types.
//
// The example also shows the effect of the link throughput (Figure 14):
// the same query is replayed while the modeled USB speed varies.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ghostdb"
)

var ddl = []string{
	// Public product catalog: fully visible.
	`CREATE TABLE Products (id int, name char(30), category char(20),
	   listprice float, specs char(60) HIDDEN)`,
	// Private customer list: identities and terms are hidden.
	`CREATE TABLE Customers (id int, company char(30) HIDDEN,
	   contact char(30) HIDDEN, region char(20), discount float HIDDEN)`,
	// Order lines: the links between customers and products are exactly
	// the relationship Bob must never leak, so both fks are hidden.
	`CREATE TABLE Orders (id int,
	   customer_id int REFERENCES Customers HIDDEN,
	   product_id int REFERENCES Products HIDDEN,
	   quarter char(7), quantity int, amount float HIDDEN)`,
}

func main() {
	db, err := ghostdb.Create(ddl, ghostdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	load(db)

	// Which of Bob's customers bought storage products this quarter, and
	// under what negotiated terms? Visible data: catalog category and the
	// quarter. Hidden: who bought, and the discount.
	sql := `SELECT Customers.company, Customers.discount, Products.name, Orders.quantity
	  FROM Orders, Customers, Products
	  WHERE Orders.customer_id = Customers.id AND Orders.product_id = Products.id
	  AND Products.category = 'storage' AND Orders.quarter = '2006-Q4'
	  AND Customers.discount > 0.2`
	res, err := db.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("confidential Q4 storage deals: %d rows\n", len(res.Rows))
	for i, row := range res.Rows {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Printf("  %v\n", row)
	}
	fmt.Printf("cost %v | strategies %v\n\n", res.Stats.SimTime, res.Stats.Strategy)

	// Figure 14 in miniature: the link becomes the bottleneck below
	// roughly 1.3 MB/s because the catalog rows must cross it untrimmed.
	fmt.Println("same query under varying USB throughput:")
	for _, mbps := range []float64{0.3, 0.8, 1.3, 3, 10} {
		db.SetThroughput(mbps)
		res, err := db.Query(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %5.1f MB/s -> total %8v (flash %v + link %v)\n",
			mbps, res.Stats.SimTime, res.Stats.IOTime, res.Stats.CommTime)
	}
}

func load(db *ghostdb.DB) {
	rng := rand.New(rand.NewSource(7))
	categories := []string{"storage", "network", "compute", "software"}
	regions := []string{"north", "south", "east", "west"}
	ld := db.Loader()
	const nProd, nCust, nOrd = 120, 40, 6000
	for i := 0; i < nProd; i++ {
		if err := ld.Append("Products", ghostdb.R{
			"name":      fmt.Sprintf("Unit-%03d", i),
			"category":  categories[rng.Intn(len(categories))],
			"listprice": 100 + float64(rng.Intn(900)),
			"specs":     fmt.Sprintf("internal spec sheet %03d", i),
		}); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < nCust; i++ {
		if err := ld.Append("Customers", ghostdb.R{
			"company":  fmt.Sprintf("Corp-%02d", i),
			"contact":  fmt.Sprintf("contact-%02d@corp%02d.example", i, i),
			"region":   regions[rng.Intn(len(regions))],
			"discount": float64(rng.Intn(40)) / 100,
		}); err != nil {
			log.Fatal(err)
		}
	}
	quarters := []string{"2006-Q1", "2006-Q2", "2006-Q3", "2006-Q4"}
	for i := 0; i < nOrd; i++ {
		if err := ld.Append("Orders", ghostdb.R{
			"customer_id": rng.Intn(nCust),
			"product_id":  rng.Intn(nProd),
			"quarter":     quarters[rng.Intn(len(quarters))],
			"quantity":    int(1 + rng.Intn(50)),
			"amount":      float64(rng.Intn(100000)) / 100,
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := ld.Commit(); err != nil {
		log.Fatal(err)
	}
}
