// Medical: the hospital scenario that motivates the paper. A clinician
// carries the sensitive part of a diabetes database (who the patients
// are, who treats them, what links a measurement to a person) on the
// secure token, while the voluminous but anonymous measurement stream
// stays visible on the hospital workstation. Queries freely combine both
// sides; identities never leave the token.
//
// The schema is §6.2 of the paper verbatim, expressed in SQL with HIDDEN
// annotations; following the design guideline, every foreign key and
// every identifying attribute is Hidden.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ghostdb"
)

var ddl = []string{
	`CREATE TABLE Doctors (id int, specialty char(20), description char(60),
	   firstname char(20) HIDDEN, name char(20) HIDDEN)`,
	`CREATE TABLE Patients (id int, doctor_id int REFERENCES Doctors HIDDEN,
	   firstname char(20), name char(20) HIDDEN, ssn char(10) HIDDEN,
	   address char(50) HIDDEN, birthdate char(10) HIDDEN,
	   bodymassindex float HIDDEN, age int, sexe char(2), city char(20),
	   zipcode char(6))`,
	`CREATE TABLE Drugs (id int, property char(60), comment char(100) HIDDEN)`,
	`CREATE TABLE Measurements (id int,
	   patient_id int REFERENCES Patients HIDDEN,
	   drug_id int REFERENCES Drugs HIDDEN,
	   time char(10), measurement char(10), comment char(100))`,
}

func main() {
	db, err := ghostdb.Create(ddl, ghostdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	load(db)

	queries := []string{
		// The §3 example: which measurements belong to psychiatric
		// patients with a high body mass index? Links the Visible
		// specialty with the Hidden bmi through two Hidden joins.
		`SELECT Doctors.id, Patients.id, Measurements.id
		   FROM Measurements, Doctors, Patients
		   WHERE Measurements.patient_id = Patients.id AND Patients.doctor_id = Doctors.id
		   AND Doctors.specialty = 'Psychiatrist' AND Patients.bodymassindex > 30.0`,
		// Who are those patients? Hidden names decrypt only on the token.
		`SELECT Patients.name, Patients.firstname, Patients.bodymassindex
		   FROM Patients, Doctors
		   WHERE Patients.doctor_id = Doctors.id
		   AND Doctors.specialty = 'Psychiatrist' AND Patients.bodymassindex > 30.0`,
		// Visible-only queries never touch the token's flash.
		`SELECT id, specialty FROM Doctors WHERE specialty = 'Cardiologist'`,
		// A three-way link with a visible time filter on the root table.
		`SELECT Measurements.id, Measurements.measurement, Patients.name
		   FROM Measurements, Patients
		   WHERE Measurements.patient_id = Patients.id
		   AND Measurements.time >= '2006-11-01' AND Patients.bodymassindex > 38.0`,
	}
	for _, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query: %s\n", oneline(q))
		fmt.Printf("  -> %d rows", len(res.Rows))
		for i, row := range res.Rows {
			if i == 3 {
				fmt.Print(" ...")
				break
			}
			fmt.Printf("  %v", row)
		}
		fmt.Println()
		fmt.Printf("  cost %v | strategies: %v\n\n", res.Stats.SimTime, res.Stats.Strategy)
	}
}

func oneline(q string) string {
	out := ""
	for _, f := range splitFields(q) {
		if out != "" {
			out += " "
		}
		out += f
	}
	if len(out) > 100 {
		out = out[:100] + "..."
	}
	return out
}

func splitFields(q string) []string {
	var fields []string
	cur := ""
	for _, r := range q {
		if r == ' ' || r == '\n' || r == '\t' {
			if cur != "" {
				fields = append(fields, cur)
				cur = ""
			}
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		fields = append(fields, cur)
	}
	return fields
}

func load(db *ghostdb.DB) {
	rng := rand.New(rand.NewSource(2006))
	specialties := []string{"Psychiatrist", "Cardiologist", "Endocrinologist", "Generalist"}
	first := []string{"Alice", "Bob", "Carol", "David", "Emma", "Felix", "Grace", "Hugo"}
	last := []string{"Martin", "Bernard", "Dubois", "Thomas", "Robert", "Petit", "Durand", "Leroy"}
	ld := db.Loader()
	const nDocs, nPats, nDrugs, nMeas = 24, 150, 8, 4000
	for i := 0; i < nDocs; i++ {
		must(ld.Append("Doctors", ghostdb.R{
			"specialty":   specialties[i%len(specialties)],
			"description": fmt.Sprintf("practice since %d", 1975+rng.Intn(30)),
			"firstname":   first[rng.Intn(len(first))],
			"name":        last[rng.Intn(len(last))],
		}))
	}
	for i := 0; i < nPats; i++ {
		must(ld.Append("Patients", ghostdb.R{
			"doctor_id":     rng.Intn(nDocs),
			"firstname":     first[rng.Intn(len(first))],
			"name":          fmt.Sprintf("%s%03d", last[rng.Intn(len(last))], i),
			"ssn":           fmt.Sprintf("%010d", rng.Intn(1_000_000_000)),
			"address":       fmt.Sprintf("%d avenue des Peupliers", 1+rng.Intn(150)),
			"birthdate":     fmt.Sprintf("19%02d-%02d-01", 20+rng.Intn(70), 1+rng.Intn(12)),
			"bodymassindex": 16 + 26*rng.Float64(),
			"age":           int(20 + rng.Intn(70)),
			"sexe":          []string{"M", "F"}[rng.Intn(2)],
			"city":          "Paris",
			"zipcode":       fmt.Sprintf("750%02d", 1+rng.Intn(20)),
		}))
	}
	drugs := []string{"Insulin", "Metformin", "Glipizide", "Acarbose", "Exenatide", "Sitagliptin", "Glimepiride", "Pioglitazone"}
	for i := 0; i < nDrugs; i++ {
		must(ld.Append("Drugs", ghostdb.R{
			"property": drugs[i] + " standard dose",
			"comment":  fmt.Sprintf("trial batch %04d", rng.Intn(10000)),
		}))
	}
	for i := 0; i < nMeas; i++ {
		must(ld.Append("Measurements", ghostdb.R{
			"patient_id":  rng.Intn(nPats),
			"drug_id":     rng.Intn(nDrugs),
			"time":        fmt.Sprintf("2006-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28)),
			"measurement": fmt.Sprintf("%d.%d", 4+rng.Intn(10), rng.Intn(10)),
			"comment":     fmt.Sprintf("glycemia reading %05d", i),
		}))
	}
	must(ld.Commit())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
