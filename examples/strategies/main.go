// Strategies: a miniature of the paper's Figure 8/9 study, runnable in a
// second. The same select-project-join query is executed under every
// forced filtering strategy and both Bloom projection variants, so you
// can watch Pre-Filtering degrade as the visible selection widens while
// Post-Filtering stays flat — and see the planner's automatic choice.
//
// Strategies are forced per query with WithStrategy (the DB-wide
// ForceStrategy knob is deprecated: it cannot be reasoned about under
// concurrent sessions). The planner's own pick is inspected *before*
// running anything via Prepare / Plan / Explain.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"

	"ghostdb"
)

var ddl = []string{
	`CREATE TABLE Readings (id int,
	   sensor_id int REFERENCES Sensors HIDDEN,
	   hour char(13), value float)`,
	`CREATE TABLE Sensors (id int, model char(20), site char(20) HIDDEN,
	   calibration float HIDDEN)`,
}

func main() {
	db, err := ghostdb.Create(ddl, ghostdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	load(db)
	ctx := context.Background()

	strategies := []struct {
		name string
		s    ghostdb.Strategy
	}{
		{"Pre-Filter", ghostdb.StrategyPreFilter},
		{"Cross-Pre-Filter", ghostdb.StrategyCrossPreFilter},
		{"Post-Filter", ghostdb.StrategyPostFilter},
		{"Cross-Post-Filter", ghostdb.StrategyCrossPostFilter},
		{"Post-Select", ghostdb.StrategyPostSelect},
		{"No-Filter", ghostdb.StrategyNoFilter},
	}
	// Visible selectivity grows left to right: model prefixes select
	// 1/20, 1/4 and 1/2 of the sensors.
	preds := []string{"model = 'M-00'", "model < 'M-05'", "model < 'M-10'"}

	for _, pred := range preds {
		sql := fmt.Sprintf(`SELECT Readings.id, Sensors.id, Sensors.site
		  FROM Readings, Sensors
		  WHERE Readings.sensor_id = Sensors.id
		  AND Sensors.%s AND Sensors.calibration < 0.2`, pred)

		// One prepared statement serves every run; forcing a strategy is
		// a per-run option, so nothing mutates the DB.
		stmt, err := db.Prepare(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("visible predicate: %s\n", pred)
		var rows int
		for _, st := range strategies {
			res, err := stmt.Run(ctx, ghostdb.WithStrategy(st.s))
			if err != nil {
				if errors.Is(err, ghostdb.ErrBloomInfeasible) {
					fmt.Printf("  %-18s infeasible (the paper stops this curve at sV=0.5 too)\n", st.name)
					continue
				}
				log.Fatal(err)
			}
			rows = len(res.Rows)
			fmt.Printf("  %-18s %10v  (flash reads %5d, writes %4d, grant %2d buffers)\n",
				st.name, res.Stats.SimTime, res.Stats.Flash.PageReads, res.Stats.Flash.PageWrites,
				res.Stats.GrantBuffers)
		}
		// The planner's automatic choice is visible before execution.
		plan := stmt.Plan()
		res, err := stmt.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if len(res.Rows) != rows {
			log.Fatalf("strategy changed the answer: %d vs %d rows", len(res.Rows), rows)
		}
		fmt.Printf("  planner's choice (min %d buffers, est %v): %v -> %v, %d rows\n\n",
			plan.MinBuffers, plan.EstCost, res.Stats.Strategy, res.Stats.SimTime, len(res.Rows))
	}

	// EXPLAIN without executing: the same text the shell prints.
	out, err := db.Explain(`SELECT Readings.id, Sensors.site FROM Readings, Sensors
	  WHERE Readings.sensor_id = Sensors.id AND Sensors.model = 'M-00' AND Sensors.calibration < 0.2`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}

func load(db *ghostdb.DB) {
	rng := rand.New(rand.NewSource(99))
	ld := db.Loader()
	const nSensors, nReadings = 400, 30000
	for i := 0; i < nSensors; i++ {
		if err := ld.Append("Sensors", ghostdb.R{
			"model":       fmt.Sprintf("M-%02d", i%20),
			"site":        fmt.Sprintf("site-%03d", rng.Intn(50)),
			"calibration": rng.Float64(),
		}); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < nReadings; i++ {
		if err := ld.Append("Readings", ghostdb.R{
			"sensor_id": rng.Intn(nSensors),
			"hour":      fmt.Sprintf("2006-06-%02dT%02d", 1+rng.Intn(28), rng.Intn(24)),
			"value":     20 + 5*rng.Float64(),
		}); err != nil {
			log.Fatal(err)
		}
	}
	if err := ld.Commit(); err != nil {
		log.Fatal(err)
	}
}
