// Quickstart: the smallest possible GhostDB program.
//
// It declares the Patients table from §2.1 of the paper — name and body
// mass index are HIDDEN, everything else is Visible — loads a few rows,
// and runs the paper's example query, which links a Visible selection
// (age) with a Hidden one (bodymassindex). The program then prints the
// audit trail showing that the only bytes that ever left the secure token
// were the query text itself.
package main

import (
	"fmt"
	"log"

	"ghostdb"
)

func main() {
	db, err := ghostdb.Create([]string{
		`CREATE TABLE Patients (id int, name char(200) HIDDEN,
		   age int, city char(100), bodymassindex float HIDDEN)`,
	}, ghostdb.Options{})
	if err != nil {
		log.Fatal(err)
	}

	ld := db.Loader()
	patients := []ghostdb.R{
		{"name": "Durand", "age": 50, "city": "Paris", "bodymassindex": 23.0},
		{"name": "Martin", "age": 50, "city": "Lyon", "bodymassindex": 31.5},
		{"name": "Dubois", "age": 44, "city": "Paris", "bodymassindex": 23.0},
		{"name": "Leroy", "age": 50, "city": "Lille", "bodymassindex": 23.0},
		{"name": "Moreau", "age": 61, "city": "Paris", "bodymassindex": 27.8},
	}
	for _, p := range patients {
		if err := ld.Append("Patients", p); err != nil {
			log.Fatal(err)
		}
	}
	if err := ld.Commit(); err != nil {
		log.Fatal(err)
	}

	// The paper's §2.1 example: a mono-table selection mixing Visible and
	// Hidden predicates. Untrusted resolves age=50 and ships candidate
	// ids; Secure intersects them with the bodymassindex selection.
	sql := `SELECT * FROM Patients WHERE age = 50 AND bodymassindex = 23.0`
	res, err := db.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query:", sql)
	fmt.Println(res.Columns)
	for _, row := range res.Rows {
		fmt.Println(row)
	}
	fmt.Printf("\nsimulated cost: %v (flash %v, link %v)\n",
		res.Stats.SimTime, res.Stats.IOTime, res.Stats.CommTime)

	// Inserts work after load, maintaining every index structure.
	if err := db.Exec(`INSERT INTO Patients (name, age, city, bodymassindex)
	    VALUES ('Petit', 50, 'Nantes', 23.0)`); err != nil {
		log.Fatal(err)
	}
	res, err = db.Query(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter INSERT: %d matching patients\n", len(res.Rows))
}
