# GhostDB developer targets. `make lint` is the pre-merge gate: it runs
# the same checks CI enforces locally (gofmt, go vet, ghostdb-lint and
# the analyzer fixture corpus). See CHANGES.md for the checklist.

GO ?= go

.PHONY: all build test race lint fmt fuzz

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/ghostdb-lint
	$(GO) test -run 'Fixtures|ByName' ./internal/analysis/...

fmt:
	gofmt -w .

fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/sqlparse
