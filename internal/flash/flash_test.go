package flash

import (
	"bytes"
	"errors"
	"testing"
)

func tinyParams() Params {
	return Params{PageSize: 64, PagesPerBlock: 4, Blocks: 8, ReserveBlocks: 2}
}

func TestWriteReadRoundtrip(t *testing.T) {
	d := MustDevice(tinyParams())
	id, err := d.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	data := []byte("hello flash page")
	if err := d.Write(id, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got := make([]byte, len(data))
	if err := d.Read(id, got, len(data)); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("roundtrip mismatch: %q != %q", got, data)
	}
}

func TestWritePadsWithZeros(t *testing.T) {
	d := MustDevice(tinyParams())
	id, _ := d.Alloc()
	if err := d.Write(id, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	full := make([]byte, 64)
	if err := d.ReadFull(id, full); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 64; i++ {
		if full[i] != 0 {
			t.Fatalf("byte %d not zero-padded: %d", i, full[i])
		}
	}
}

func TestReadRange(t *testing.T) {
	d := MustDevice(tinyParams())
	id, _ := d.Alloc()
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	if err := d.Write(id, data); err != nil {
		t.Fatal(err)
	}
	before := d.Counters()
	got := make([]byte, 10)
	if err := d.ReadRange(id, got, 20, 10); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[20:30]) {
		t.Fatalf("range mismatch: %v", got)
	}
	delta := d.Counters().Sub(before)
	if delta.PageReads != 1 || delta.BytesToRAM != 10 {
		t.Fatalf("cost delta = %+v, want 1 read / 10 bytes", delta)
	}
}

func TestReadEdgeAccounting(t *testing.T) {
	d := MustDevice(tinyParams())
	id, _ := d.Alloc()
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	if err := d.Write(id, data); err != nil {
		t.Fatal(err)
	}

	// offset+n landing exactly on the page boundary is legal and charges
	// exactly n transferred bytes.
	before := d.Counters()
	got := make([]byte, 14)
	if err := d.ReadRange(id, got, 50, 14); err != nil {
		t.Fatalf("boundary range: %v", err)
	}
	if !bytes.Equal(got, data[50:64]) {
		t.Fatalf("boundary range mismatch: %v", got)
	}
	if delta := d.Counters().Sub(before); delta.PageReads != 1 || delta.BytesToRAM != 14 {
		t.Fatalf("boundary cost = %+v, want 1 read / 14 bytes", delta)
	}
	// One past the boundary is rejected without counter movement.
	before = d.Counters()
	if err := d.ReadRange(id, got, 51, 14); err == nil {
		t.Fatal("range past page boundary accepted")
	}
	if d.Counters() != before {
		t.Fatal("failed range moved counters")
	}

	// Zero-length reads are validated no-ops: no page load, no bytes.
	before = d.Counters()
	if err := d.Read(id, nil, 0); err != nil {
		t.Fatalf("zero-length Read: %v", err)
	}
	if err := d.ReadRange(id, nil, 64, 0); err != nil {
		t.Fatalf("zero-length ReadRange at boundary: %v", err)
	}
	if err := d.ReadMulti([]ReadReq{{ID: id, N: 0}}); err != nil {
		t.Fatalf("zero-length ReadMulti: %v", err)
	}
	if d.Counters() != before {
		t.Fatalf("zero-length reads moved counters: %+v", d.Counters().Sub(before))
	}
	// ...but an unmapped page still fails even for zero bytes.
	if err := d.Read(PageID(999), nil, 0); !errors.Is(err, ErrBadPage) {
		t.Fatalf("zero-length read of bad page = %v", err)
	}

	// Read-after-Free is ErrBadPage with no counter movement.
	if err := d.Free(id); err != nil {
		t.Fatal(err)
	}
	before = d.Counters()
	if err := d.Read(id, got, 4); !errors.Is(err, ErrBadPage) {
		t.Fatalf("read-after-Free = %v", err)
	}
	if err := d.ReadRange(id, got, 0, 4); !errors.Is(err, ErrBadPage) {
		t.Fatalf("range-after-Free = %v", err)
	}
	if d.Counters() != before {
		t.Fatal("read-after-Free moved counters")
	}
}

func TestReadMultiParity(t *testing.T) {
	// A coalesced batch must charge exactly what the equivalent sequence
	// of Read calls charges, and a batch with any invalid request must
	// leave the counters untouched.
	a := MustDevice(tinyParams())
	b := MustDevice(tinyParams())
	var idsA, idsB []PageID
	for i := 0; i < 3; i++ {
		pa, _ := a.Alloc()
		pb, _ := b.Alloc()
		data := bytes.Repeat([]byte{byte(i + 1)}, 64)
		if err := a.Write(pa, data); err != nil {
			t.Fatal(err)
		}
		if err := b.Write(pb, data); err != nil {
			t.Fatal(err)
		}
		idsA, idsB = append(idsA, pa), append(idsB, pb)
	}
	ns := []int{64, 64, 10} // partial last page, as SeqReader issues
	var reqs []ReadReq
	single := make([][]byte, 3)
	batched := make([][]byte, 3)
	for i := range ns {
		single[i] = make([]byte, ns[i])
		batched[i] = make([]byte, ns[i])
		reqs = append(reqs, ReadReq{ID: idsB[i], Dst: batched[i], N: ns[i]})
	}
	beforeA, beforeB := a.Counters(), b.Counters()
	for i := range ns {
		if err := a.Read(idsA[i], single[i], ns[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.ReadMulti(reqs); err != nil {
		t.Fatal(err)
	}
	dA, dB := a.Counters().Sub(beforeA), b.Counters().Sub(beforeB)
	if dA != dB {
		t.Fatalf("batched cost %+v != sequential cost %+v", dB, dA)
	}
	for i := range ns {
		if !bytes.Equal(single[i], batched[i]) {
			t.Fatalf("page %d content mismatch", i)
		}
	}
	before := b.Counters()
	bad := append(append([]ReadReq(nil), reqs...), ReadReq{ID: PageID(999), N: 1, Dst: make([]byte, 1)})
	if err := b.ReadMulti(bad); !errors.Is(err, ErrBadPage) {
		t.Fatalf("bad batch = %v", err)
	}
	if b.Counters() != before {
		t.Fatal("failed batch moved counters")
	}
}

func TestOutOfPlaceUpdate(t *testing.T) {
	d := MustDevice(tinyParams())
	id, _ := d.Alloc()
	if err := d.Write(id, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(id, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if err := d.Read(id, got, 2); err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("got %q after update", got)
	}
	if d.Counters().PageWrites != 2 {
		t.Fatalf("writes = %d, want 2", d.Counters().PageWrites)
	}
}

func TestGarbageCollectionReclaimsSpace(t *testing.T) {
	d := MustDevice(tinyParams()) // 32 physical pages, capacity 24
	id, _ := d.Alloc()
	// Rewrite the same logical page many more times than there are
	// physical pages; GC must reclaim invalidated pages.
	for i := 0; i < 500; i++ {
		if err := d.Write(id, []byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	got := make([]byte, 1)
	if err := d.Read(id, got, 1); err != nil {
		t.Fatal(err)
	}
	if want := byte(499 % 256); got[0] != want {
		t.Fatalf("final value %d, want %d", got[0], want)
	}
	if d.Counters().BlockErases == 0 {
		t.Fatal("expected block erases under write pressure")
	}
}

func TestGCPreservesOtherPages(t *testing.T) {
	d := MustDevice(tinyParams())
	keep := make(map[PageID]byte)
	for i := 0; i < 10; i++ {
		id, err := d.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Write(id, []byte{byte(100 + i)}); err != nil {
			t.Fatal(err)
		}
		keep[id] = byte(100 + i)
	}
	churn, _ := d.Alloc()
	for i := 0; i < 300; i++ {
		if err := d.Write(churn, []byte{byte(i)}); err != nil {
			t.Fatalf("churn write %d: %v", i, err)
		}
	}
	for id, want := range keep {
		got := make([]byte, 1)
		if err := d.Read(id, got, 1); err != nil {
			t.Fatalf("read %d: %v", id, err)
		}
		if got[0] != want {
			t.Fatalf("page %d corrupted by GC: got %d want %d", id, got[0], want)
		}
	}
	if d.MaxWear() == 0 {
		t.Fatal("expected wear to be recorded")
	}
}

func TestDeviceFull(t *testing.T) {
	d := MustDevice(tinyParams())
	var ids []PageID
	for {
		id, err := d.Alloc()
		if err != nil {
			if !errors.Is(err, ErrDeviceFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		if err := d.Write(id, []byte{1}); err != nil {
			t.Fatalf("write: %v", err)
		}
		ids = append(ids, id)
	}
	if len(ids) != d.Capacity() {
		t.Fatalf("allocated %d pages, capacity %d", len(ids), d.Capacity())
	}
	// Freeing makes room again.
	if err := d.Free(ids[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Alloc(); err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
}

func TestFreeRecyclesLogicalIDs(t *testing.T) {
	d := MustDevice(tinyParams())
	a, _ := d.Alloc()
	if err := d.Write(a, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if err := d.Free(a); err != nil {
		t.Fatal(err)
	}
	b, _ := d.Alloc()
	if a != b {
		t.Fatalf("expected recycled id %d, got %d", a, b)
	}
	// Reading a recycled-but-unwritten page must fail.
	buf := make([]byte, 1)
	if err := d.Read(b, buf, 1); !errors.Is(err, ErrBadPage) {
		t.Fatalf("read of unwritten page: %v", err)
	}
}

func TestInvalidOperations(t *testing.T) {
	d := MustDevice(tinyParams())
	buf := make([]byte, 8)
	if err := d.Read(InvalidPage, buf, 1); !errors.Is(err, ErrBadPage) {
		t.Fatalf("read invalid page: %v", err)
	}
	if err := d.Write(999, []byte{1}); !errors.Is(err, ErrBadPage) {
		t.Fatalf("write unallocated: %v", err)
	}
	id, _ := d.Alloc()
	if err := d.Write(id, make([]byte, 65)); !errors.Is(err, ErrShortWrite) {
		t.Fatalf("oversized write: %v", err)
	}
	d.Close()
	if _, err := d.Alloc(); !errors.Is(err, ErrDeviceClose) {
		t.Fatalf("alloc after close: %v", err)
	}
}

func TestCountersSubAdd(t *testing.T) {
	a := Counters{PageReads: 10, PageWrites: 5, BlockErases: 1, BytesToRAM: 100, GCPageMoves: 2}
	b := Counters{PageReads: 4, PageWrites: 2, BytesToRAM: 40}
	diff := a.Sub(b)
	if diff.PageReads != 6 || diff.PageWrites != 3 || diff.BytesToRAM != 60 {
		t.Fatalf("sub = %+v", diff)
	}
	sum := diff.Add(b)
	if sum != a {
		t.Fatalf("add/sub not inverse: %+v != %+v", sum, a)
	}
}

func TestBadParams(t *testing.T) {
	for _, p := range []Params{
		{},
		{PageSize: 64, PagesPerBlock: 4, Blocks: 2, ReserveBlocks: 2},
		{PageSize: 64, PagesPerBlock: 4, Blocks: 4, ReserveBlocks: 0},
	} {
		if _, err := NewDevice(p); err == nil {
			t.Fatalf("params %+v accepted", p)
		}
	}
}
