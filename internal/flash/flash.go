// Package flash simulates the external NAND flash module of a smart USB
// key, including the Flash Translation Layer (FTL) that GhostDB's cost
// model accounts for: logical-to-physical address translation, out-of-place
// updates, garbage collection and wear leveling.
//
// The simulator is I/O accurate in the sense of the paper (SIGMOD'07 §6.1):
// it delivers the exact number of pages read and written, including FTL
// traffic, and the exact number of bytes transferred between the flash data
// register and RAM. Absolute time is derived from those counters by
// internal/metrics, never from wall-clock time.
package flash

import (
	"errors"
	"fmt"
)

// Default geometry and cost parameters from Table 1 of the paper.
const (
	DefaultPageSize      = 2048
	DefaultPagesPerBlock = 64
	DefaultBlocks        = 1 << 15 // 32768 blocks * 128KB = 4GB address space
)

// Errors returned by Device operations.
var (
	ErrDeviceFull  = errors.New("flash: device full")
	ErrBadPage     = errors.New("flash: invalid logical page")
	ErrShortWrite  = errors.New("flash: write exceeds page size")
	ErrDeviceClose = errors.New("flash: device closed")
)

// PageID identifies a logical flash page. Logical pages survive FTL
// relocation; callers never observe physical placement.
type PageID uint32

// InvalidPage is the zero PageID sentinel; valid pages start at 1.
const InvalidPage PageID = 0

// Params configures the simulated device geometry.
type Params struct {
	PageSize      int // bytes per page (I/O unit)
	PagesPerBlock int // pages per erase block
	Blocks        int // total erase blocks
	ReserveBlocks int // blocks withheld from user capacity for GC headroom
}

// DefaultParams returns the geometry used throughout the paper's
// experiments: 2KB pages in 128KB erase blocks.
func DefaultParams() Params {
	return Params{
		PageSize:      DefaultPageSize,
		PagesPerBlock: DefaultPagesPerBlock,
		Blocks:        DefaultBlocks,
		ReserveBlocks: 8,
	}
}

func (p Params) validate() error {
	if p.PageSize <= 0 || p.PagesPerBlock <= 0 || p.Blocks <= 0 {
		return fmt.Errorf("flash: non-positive geometry %+v", p)
	}
	if p.ReserveBlocks < 1 {
		return fmt.Errorf("flash: need at least 1 reserve block, got %d", p.ReserveBlocks)
	}
	if p.ReserveBlocks >= p.Blocks {
		return fmt.Errorf("flash: reserve %d >= blocks %d", p.ReserveBlocks, p.Blocks)
	}
	return nil
}

// Counters accumulates the raw I/O activity of the device. All GhostDB
// performance numbers derive from these values.
type Counters struct {
	PageReads   uint64 // pages loaded flash -> data register
	PageWrites  uint64 // pages programmed data register -> flash
	BlockErases uint64 // erase-block operations (GC)
	BytesToRAM  uint64 // bytes moved data register -> RAM
	GCPageMoves uint64 // valid-page relocations performed by the FTL
}

// Sub returns c - o component-wise; useful for span deltas.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		PageReads:   c.PageReads - o.PageReads,
		PageWrites:  c.PageWrites - o.PageWrites,
		BlockErases: c.BlockErases - o.BlockErases,
		BytesToRAM:  c.BytesToRAM - o.BytesToRAM,
		GCPageMoves: c.GCPageMoves - o.GCPageMoves,
	}
}

// Add returns c + o component-wise.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		PageReads:   c.PageReads + o.PageReads,
		PageWrites:  c.PageWrites + o.PageWrites,
		BlockErases: c.BlockErases + o.BlockErases,
		BytesToRAM:  c.BytesToRAM + o.BytesToRAM,
		GCPageMoves: c.GCPageMoves + o.GCPageMoves,
	}
}

const (
	physFree = iota
	physValid
	physInvalid
)

// Device is a simulated NAND flash module behind an FTL. It is not safe
// for concurrent use; GhostDB runs a single query at a time on the secure
// token, as the paper's mono-user setting prescribes.
type Device struct {
	params Params

	// FTL mapping.
	l2p      []int32  // logical page -> physical page (-1 = unmapped)
	freeLog  []PageID // recycled logical IDs
	nextLog  PageID   // next never-used logical ID (starts at 1)
	mapped   int      // logical pages currently mapped (= valid physical)
	capacity int      // max mappable pages (user-visible capacity)

	// Physical state.
	state      []uint8  // per physical page: free/valid/invalid
	p2l        []int32  // physical page -> logical owner (for GC)
	data       [][]byte // per block, lazily allocated PagesPerBlock*PageSize
	blockValid []int32  // valid pages per block
	blockInval []int32  // invalid pages per block
	erases     []uint32 // wear: erase count per block
	frontier   int      // physical page cursor for sequential programming
	freePhys   int      // free physical pages remaining

	c      Counters
	closed bool
}

// NewDevice creates a device with the given geometry.
func NewDevice(p Params) (*Device, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	totalPages := p.Blocks * p.PagesPerBlock
	d := &Device{
		params:     p,
		nextLog:    1,
		capacity:   (p.Blocks - p.ReserveBlocks) * p.PagesPerBlock,
		state:      make([]uint8, totalPages),
		p2l:        make([]int32, totalPages),
		data:       make([][]byte, p.Blocks),
		blockValid: make([]int32, p.Blocks),
		blockInval: make([]int32, p.Blocks),
		erases:     make([]uint32, p.Blocks),
		freePhys:   totalPages,
	}
	for i := range d.p2l {
		d.p2l[i] = -1
	}
	return d, nil
}

// MustDevice is NewDevice that panics on configuration errors; convenient
// for tests and examples with static parameters.
func MustDevice(p Params) *Device {
	d, err := NewDevice(p)
	if err != nil {
		panic(err)
	}
	return d
}

// PageSize returns the I/O unit in bytes.
func (d *Device) PageSize() int { return d.params.PageSize }

// Capacity returns the user-visible capacity in pages.
func (d *Device) Capacity() int { return d.capacity }

// PagesUsed returns the number of mapped logical pages.
func (d *Device) PagesUsed() int { return d.mapped }

// Counters returns a snapshot of the accumulated I/O counters.
func (d *Device) Counters() Counters { return d.c }

// ResetCounters zeroes the I/O counters (data is untouched). Experiments
// use this to exclude the load/build phase from query measurements.
func (d *Device) ResetCounters() { d.c = Counters{} }

// MaxWear returns the highest per-block erase count, for wear-leveling
// diagnostics.
func (d *Device) MaxWear() uint32 {
	var m uint32
	for _, e := range d.erases {
		if e > m {
			m = e
		}
	}
	return m
}

// Alloc reserves a fresh logical page. The page has no contents until the
// first Write; reading it before writing is an error.
func (d *Device) Alloc() (PageID, error) {
	if d.closed {
		return InvalidPage, ErrDeviceClose
	}
	if d.mapped >= d.capacity {
		return InvalidPage, ErrDeviceFull
	}
	d.mapped++
	if n := len(d.freeLog); n > 0 {
		id := d.freeLog[n-1]
		d.freeLog = d.freeLog[:n-1]
		return id, nil
	}
	id := d.nextLog
	d.nextLog++
	if int(id) >= len(d.l2p) {
		grown := make([]int32, int(id)*2+16)
		copy(grown, d.l2p)
		for i := len(d.l2p); i < len(grown); i++ {
			grown[i] = -1
		}
		d.l2p = grown
	}
	d.l2p[id] = -1
	return id, nil
}

// Free releases a logical page; its physical page becomes garbage for the
// next GC cycle.
func (d *Device) Free(id PageID) error {
	if err := d.checkMapped(id); err != nil {
		if errors.Is(err, ErrBadPage) && d.isAllocated(id) {
			// Allocated but never written: just recycle the ID.
			d.l2p[id] = -1
			d.freeLog = append(d.freeLog, id)
			d.mapped--
			return nil
		}
		return err
	}
	pp := d.l2p[id]
	d.invalidate(int(pp))
	d.l2p[id] = -1
	d.freeLog = append(d.freeLog, id)
	d.mapped--
	return nil
}

func (d *Device) isAllocated(id PageID) bool {
	if id == InvalidPage || int(id) >= int(d.nextLog) {
		return false
	}
	for _, f := range d.freeLog {
		if f == id {
			return false
		}
	}
	return true
}

func (d *Device) checkMapped(id PageID) error {
	if id == InvalidPage || int(id) >= len(d.l2p) || d.l2p[id] < 0 {
		return fmt.Errorf("%w: %d", ErrBadPage, id)
	}
	return nil
}

// Write programs a full logical page with data (len(data) <= PageSize;
// shorter writes are zero-padded). Updates are out-of-place: the previous
// physical page, if any, is invalidated, exactly as a real FTL behaves
// ("updates are not performed in place in Flash", §6.1).
func (d *Device) Write(id PageID, data []byte) error {
	if d.closed {
		return ErrDeviceClose
	}
	if len(data) > d.params.PageSize {
		return fmt.Errorf("%w: %d > %d", ErrShortWrite, len(data), d.params.PageSize)
	}
	if !d.isAllocated(id) {
		return fmt.Errorf("%w: %d (not allocated)", ErrBadPage, id)
	}
	pp, err := d.program(data)
	if err != nil {
		return err
	}
	if old := d.l2p[id]; old >= 0 {
		d.invalidate(int(old))
	}
	d.l2p[id] = int32(pp)
	d.p2l[pp] = int32(id)
	d.c.PageWrites++
	return nil
}

// Read loads a logical page into the data register and transfers the first
// n bytes into dst. Per the paper's cost model the page load costs a fixed
// latency and the transfer costs 50ns per byte, so reading a fraction of a
// page is cheaper than a full page. n <= PageSize; dst must hold n bytes.
func (d *Device) Read(id PageID, dst []byte, n int) error {
	if d.closed {
		return ErrDeviceClose
	}
	if n < 0 || n > d.params.PageSize {
		return fmt.Errorf("flash: read size %d out of range", n)
	}
	if len(dst) < n {
		return fmt.Errorf("flash: dst too small: %d < %d", len(dst), n)
	}
	if err := d.checkMapped(id); err != nil {
		return err
	}
	if n == 0 {
		// Nothing enters the data register: a zero-length read is a
		// validated no-op and must not charge a page load.
		return nil
	}
	pp := int(d.l2p[id])
	blk, off := pp/d.params.PagesPerBlock, pp%d.params.PagesPerBlock
	src := d.data[blk][off*d.params.PageSize:]
	copy(dst[:n], src[:n])
	d.c.PageReads++
	d.c.BytesToRAM += uint64(n)
	return nil
}

// ReadFull reads an entire page into dst (len(dst) >= PageSize).
func (d *Device) ReadFull(id PageID, dst []byte) error {
	return d.Read(id, dst, d.params.PageSize)
}

// ReadRange loads a logical page into the data register and transfers n
// bytes starting at offset off into dst. Only the n transferred bytes are
// charged at the per-byte rate; the page load is charged once, matching
// the paper's observation that reading a single word of a page costs 25µs
// plus a tiny transfer, versus 125µs for a full 2KB page.
func (d *Device) ReadRange(id PageID, dst []byte, off, n int) error {
	if d.closed {
		return ErrDeviceClose
	}
	if off < 0 || n < 0 || off+n > d.params.PageSize {
		return fmt.Errorf("flash: range [%d,%d) out of page", off, off+n)
	}
	if len(dst) < n {
		return fmt.Errorf("flash: dst too small: %d < %d", len(dst), n)
	}
	if err := d.checkMapped(id); err != nil {
		return err
	}
	if n == 0 {
		// Validated no-op, as in Read: no page load, no transfer.
		return nil
	}
	pp := int(d.l2p[id])
	blk, o := pp/d.params.PagesPerBlock, pp%d.params.PagesPerBlock
	src := d.data[blk][o*d.params.PageSize:]
	copy(dst[:n], src[off:off+n])
	d.c.PageReads++
	d.c.BytesToRAM += uint64(n)
	return nil
}

// ReadReq is one page read inside a coalesced ReadMulti request.
type ReadReq struct {
	ID  PageID
	Dst []byte // must hold N bytes
	N   int    // bytes to transfer from the start of the page
}

// ReadMulti coalesces several page reads into one request, the
// secure-side analogue of bus batching: read-ahead pipelines hand the
// FTL a whole run of (typically adjacent) pages at once instead of
// issuing them one call at a time. The cost model is unchanged —
// counters advance by exactly what the equivalent sequence of Read
// calls would charge (one page load each, per-byte transfers), so
// coalescing is simulated-time-neutral by construction; zero-length
// entries charge nothing, as in Read. All requests are validated before
// any counter moves, so a failed batch leaves the accounting untouched.
func (d *Device) ReadMulti(reqs []ReadReq) error {
	if d.closed {
		return ErrDeviceClose
	}
	for _, r := range reqs {
		if r.N < 0 || r.N > d.params.PageSize {
			return fmt.Errorf("flash: read size %d out of range", r.N)
		}
		if len(r.Dst) < r.N {
			return fmt.Errorf("flash: dst too small: %d < %d", len(r.Dst), r.N)
		}
		if err := d.checkMapped(r.ID); err != nil {
			return err
		}
	}
	for _, r := range reqs {
		if r.N == 0 {
			continue
		}
		pp := int(d.l2p[r.ID])
		blk, off := pp/d.params.PagesPerBlock, pp%d.params.PagesPerBlock
		src := d.data[blk][off*d.params.PageSize:]
		copy(r.Dst[:r.N], src[:r.N])
		d.c.PageReads++
		d.c.BytesToRAM += uint64(r.N)
	}
	return nil
}

// program finds a free physical page, copies data into it and returns it.
// Runs garbage collection when the free pool drops into the reserve.
func (d *Device) program(data []byte) (int, error) {
	if d.freePhys <= d.params.PagesPerBlock {
		if err := d.collect(); err != nil {
			return 0, err
		}
	}
	total := d.params.Blocks * d.params.PagesPerBlock
	for scanned := 0; scanned < total; scanned++ {
		pp := d.frontier
		d.frontier++
		if d.frontier == total {
			d.frontier = 0
		}
		if d.state[pp] != physFree {
			continue
		}
		blk, off := pp/d.params.PagesPerBlock, pp%d.params.PagesPerBlock
		if d.data[blk] == nil {
			d.data[blk] = make([]byte, d.params.PagesPerBlock*d.params.PageSize)
		}
		page := d.data[blk][off*d.params.PageSize : (off+1)*d.params.PageSize]
		copy(page, data)
		for i := len(data); i < len(page); i++ {
			page[i] = 0
		}
		d.state[pp] = physValid
		d.blockValid[blk]++
		d.freePhys--
		return pp, nil
	}
	return 0, ErrDeviceFull
}

func (d *Device) invalidate(pp int) {
	blk := pp / d.params.PagesPerBlock
	d.state[pp] = physInvalid
	d.p2l[pp] = -1
	d.blockValid[blk]--
	d.blockInval[blk]++
}

// collect performs greedy garbage collection: pick the block with the most
// invalid pages, relocate its valid pages (counted as FTL reads+writes),
// then erase it. Repeats until a comfortable amount of space is free.
func (d *Device) collect() error {
	target := 2 * d.params.PagesPerBlock
	guard := d.params.Blocks + 1
	for d.freePhys < target {
		guard--
		if guard == 0 {
			return ErrDeviceFull
		}
		victim := -1
		var best int32 = 0
		for b := 0; b < d.params.Blocks; b++ {
			if d.blockInval[b] > best {
				best = d.blockInval[b]
				victim = b
			}
		}
		if victim < 0 {
			return ErrDeviceFull // nothing reclaimable
		}
		if err := d.eraseBlock(victim); err != nil {
			return err
		}
	}
	return nil
}

func (d *Device) eraseBlock(b int) error {
	ppb, psz := d.params.PagesPerBlock, d.params.PageSize
	start := b * ppb
	// Relocate still-valid pages.
	for off := 0; off < ppb; off++ {
		pp := start + off
		if d.state[pp] != physValid {
			continue
		}
		owner := d.p2l[pp]
		page := d.data[b][off*psz : (off+1)*psz]
		buf := make([]byte, psz)
		copy(buf, page)
		// Mark the source free *before* programming so the destination
		// search can't loop back onto a full device.
		d.state[pp] = physFree
		d.blockValid[b]--
		d.freePhys++
		np, err := d.program(buf)
		if err != nil {
			return err
		}
		d.l2p[owner] = int32(np)
		d.p2l[np] = owner
		d.c.GCPageMoves++
		d.c.PageReads++
		d.c.PageWrites++
	}
	// Erase: every page in the block becomes free.
	for off := 0; off < ppb; off++ {
		pp := start + off
		if d.state[pp] == physInvalid {
			d.freePhys++
		}
		d.state[pp] = physFree
		d.p2l[pp] = -1
	}
	d.blockInval[b] = 0
	d.blockValid[b] = 0
	d.erases[b]++
	d.c.BlockErases++
	return nil
}

// Close marks the device unusable; further operations fail.
func (d *Device) Close() { d.closed = true }
