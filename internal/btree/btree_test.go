package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ghostdb/internal/flash"
)

func testDev(t *testing.T) *flash.Device {
	t.Helper()
	return flash.MustDevice(flash.Params{PageSize: 256, PagesPerBlock: 8, Blocks: 2048, ReserveBlocks: 4})
}

func key8(v uint64) []byte {
	k := make([]byte, 8)
	binary.BigEndian.PutUint64(k, v)
	return k
}

func pay4(v uint32) []byte {
	p := make([]byte, 4)
	binary.BigEndian.PutUint32(p, v)
	return p
}

func bulkOf(t *testing.T, dev *flash.Device, keys []uint64) *Tree {
	t.Helper()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	entries := make([]Entry, len(keys))
	for i, k := range keys {
		entries[i] = Entry{Key: key8(k), Payload: pay4(uint32(k % 1000))}
	}
	tr, err := Bulk(dev, 8, 4, &SliceSource{Entries: entries})
	if err != nil {
		t.Fatalf("Bulk: %v", err)
	}
	return tr
}

func TestBulkAndLookup(t *testing.T) {
	dev := testDev(t)
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = uint64(i * 3)
	}
	tr := bulkOf(t, dev, keys)
	if tr.Count() != 5000 {
		t.Fatalf("count = %d", tr.Count())
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d, expected multi-level", tr.Height())
	}
	for _, k := range []uint64{0, 3, 7497, 14997} {
		p, err := tr.Lookup(key8(k))
		if err != nil {
			t.Fatalf("Lookup(%d): %v", k, err)
		}
		if binary.BigEndian.Uint32(p) != uint32(k%1000) {
			t.Fatalf("payload(%d) = %d", k, binary.BigEndian.Uint32(p))
		}
	}
	if _, err := tr.Lookup(key8(4)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if _, err := tr.Lookup(key8(1 << 60)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("beyond max: %v", err)
	}
}

func TestSeekRangeScan(t *testing.T) {
	dev := testDev(t)
	keys := make([]uint64, 1000)
	for i := range keys {
		keys[i] = uint64(i * 10)
	}
	tr := bulkOf(t, dev, keys)
	// Scan [995, 2000]: first key >= 995 is 1000.
	cur, err := tr.Seek(key8(995))
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for {
		k, _, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok || binary.BigEndian.Uint64(k) > 2000 {
			break
		}
		got = append(got, binary.BigEndian.Uint64(k))
	}
	if len(got) != 101 || got[0] != 1000 || got[100] != 2000 {
		t.Fatalf("range scan got %d keys, first %v", len(got), got[:min(3, len(got))])
	}
}

func TestFullScanSorted(t *testing.T) {
	dev := testDev(t)
	rng := rand.New(rand.NewSource(3))
	keys := make([]uint64, 3000)
	for i := range keys {
		keys[i] = uint64(rng.Intn(1 << 30))
	}
	tr := bulkOf(t, dev, keys)
	cur, err := tr.First()
	if err != nil {
		t.Fatal(err)
	}
	var prev []byte
	n := 0
	for {
		k, _, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if prev != nil && bytes.Compare(prev, k) > 0 {
			t.Fatal("scan not sorted")
		}
		prev = append(prev[:0], k...)
		n++
	}
	if n != len(keys) {
		t.Fatalf("scanned %d of %d", n, len(keys))
	}
}

func TestInsertIntoBulk(t *testing.T) {
	dev := testDev(t)
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = uint64(i * 4)
	}
	tr := bulkOf(t, dev, keys)
	// Insert odd keys, forcing splits.
	for i := 0; i < 2000; i++ {
		k := uint64(i*4 + 1)
		if err := tr.Insert(key8(k), pay4(uint32(k%1000))); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if tr.Count() != 4000 {
		t.Fatalf("count = %d", tr.Count())
	}
	for _, k := range []uint64{1, 4001, 7997, 0, 7996} {
		p, err := tr.Lookup(key8(k))
		if err != nil {
			t.Fatalf("Lookup(%d) after inserts: %v", k, err)
		}
		if binary.BigEndian.Uint32(p) != uint32(k%1000) {
			t.Fatalf("payload(%d) wrong", k)
		}
	}
}

func TestInsertFromEmpty(t *testing.T) {
	dev := testDev(t)
	tr, err := New(dev, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	want := map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(10000))
		_ = tr.Insert(key8(k), pay4(uint32(k)))
		want[k] = true
	}
	// Every inserted key findable; full scan sorted with correct count.
	for k := range want {
		if _, err := tr.Lookup(key8(k)); err != nil {
			t.Fatalf("Lookup(%d): %v", k, err)
		}
	}
	cur, _ := tr.First()
	n := 0
	var prev uint64
	for {
		k, _, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		v := binary.BigEndian.Uint64(k)
		if n > 0 && v < prev {
			t.Fatal("unsorted after inserts")
		}
		prev = v
		n++
	}
	if n != 3000 {
		t.Fatalf("scan count = %d (duplicates must be kept)", n)
	}
}

func TestDuplicateKeys(t *testing.T) {
	dev := testDev(t)
	entries := []Entry{
		{Key: key8(5), Payload: pay4(1)},
		{Key: key8(5), Payload: pay4(2)},
		{Key: key8(5), Payload: pay4(3)},
		{Key: key8(9), Payload: pay4(4)},
	}
	tr, err := Bulk(dev, 8, 4, &SliceSource{Entries: entries})
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := tr.Seek(key8(5))
	count := 0
	for {
		k, _, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok || binary.BigEndian.Uint64(k) != 5 {
			break
		}
		count++
	}
	if count != 3 {
		t.Fatalf("duplicates seen = %d", count)
	}
}

func TestBulkRejectsUnsorted(t *testing.T) {
	dev := testDev(t)
	entries := []Entry{{Key: key8(5), Payload: pay4(1)}, {Key: key8(3), Payload: pay4(2)}}
	if _, err := Bulk(dev, 8, 4, &SliceSource{Entries: entries}); err == nil {
		t.Fatal("unsorted bulk accepted")
	}
}

func TestBulkEmpty(t *testing.T) {
	dev := testDev(t)
	tr, err := Bulk(dev, 8, 4, &SliceSource{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Count() != 0 || tr.Height() != 1 {
		t.Fatalf("empty tree: count=%d height=%d", tr.Count(), tr.Height())
	}
	if _, err := tr.Lookup(key8(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("lookup in empty: %v", err)
	}
	cur, _ := tr.First()
	if _, _, ok, _ := cur.Next(); ok {
		t.Fatal("empty tree yielded an entry")
	}
}

func TestZeroPayload(t *testing.T) {
	dev := testDev(t)
	tr, err := Bulk(dev, 4, 0, &SliceSource{Entries: []Entry{{Key: pay4(1), Payload: nil}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Lookup(pay4(1)); err != nil {
		t.Fatal(err)
	}
}

func TestGeometryErrors(t *testing.T) {
	dev := testDev(t)
	if _, err := New(dev, 0, 4); err == nil {
		t.Fatal("zero key width accepted")
	}
	if _, err := New(dev, 200, 200); err == nil {
		t.Fatal("entries larger than half a page accepted")
	}
	tr, _ := New(dev, 8, 4)
	if err := tr.Insert(key8(1), make([]byte, 9)); err == nil {
		t.Fatal("bad payload width accepted")
	}
}

func TestBulkMatchesSortedReferenceProperty(t *testing.T) {
	// Property: for arbitrary key multisets, a bulk-built tree scan
	// reproduces the sorted input and every key is findable.
	f := func(raw []uint16) bool {
		dev := flash.MustDevice(flash.Params{PageSize: 256, PagesPerBlock: 8, Blocks: 1024, ReserveBlocks: 4})
		keys := make([]uint64, len(raw))
		for i, r := range raw {
			keys[i] = uint64(r)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		entries := make([]Entry, len(keys))
		for i, k := range keys {
			entries[i] = Entry{Key: key8(k), Payload: pay4(uint32(i))}
		}
		tr, err := Bulk(dev, 8, 4, &SliceSource{Entries: entries})
		if err != nil {
			return false
		}
		cur, err := tr.First()
		if err != nil {
			return false
		}
		i := 0
		for {
			k, _, ok, err := cur.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			if i >= len(keys) || binary.BigEndian.Uint64(k) != keys[i] {
				return false
			}
			i++
		}
		return i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSeekLandsBeforeDuplicateRunAcrossLeaves(t *testing.T) {
	// Regression: a duplicate run spanning a leaf split must be fully
	// visible from Seek (read-mode descent uses strict less-than).
	dev := testDev(t)
	tr, err := New(dev, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Fill one leaf, then insert many duplicates of a middle key to
	// force splits with equal keys on both sides.
	for i := 0; i < 15; i++ {
		_ = tr.Insert(key8(uint64(i*10)), pay4(uint32(i)))
	}
	for i := 0; i < 40; i++ {
		if err := tr.Insert(key8(70), pay4(uint32(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := tr.Seek(key8(70))
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		k, _, ok, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok || binary.BigEndian.Uint64(k) != 70 {
			break
		}
		count++
	}
	if count != 41 { // 1 original + 40 duplicates
		t.Fatalf("duplicates visible from Seek = %d, want 41", count)
	}
}
