// Package btree implements the B+-tree used by GhostDB's selection and
// climbing indexes (§3.2: "All indexes in CI are implemented by means of
// B+-Trees, so that CI requires at most one buffer per B+-Tree level").
//
// Keys and payloads are fixed-width byte strings; keys use the
// order-preserving encodings of internal/schema so byte comparison equals
// value comparison. Duplicate keys are permitted (a climbing index entry
// inserted after bulk load adds a new duplicate-key entry rather than
// rewriting packed sublists). Trees are built by bulk loading from sorted
// input and support single-entry inserts afterwards.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"ghostdb/internal/flash"
)

const (
	nodeLeaf     = 1
	nodeInternal = 2

	hdrType  = 0 // 1 byte
	hdrCount = 1 // 2 bytes
	hdrNext  = 3 // 4 bytes (leaf only: next-leaf page)
	leafHdr  = 7
	intHdr   = 3

	childWidth = 4
)

// ErrNotFound is returned by Lookup when no entry matches.
var ErrNotFound = errors.New("btree: key not found")

// Tree is a B+-tree on a flash device. Not safe for concurrent use.
type Tree struct {
	dev    *flash.Device
	keyW   int
	payW   int
	root   flash.PageID
	height int // 1 = root is a leaf
	count  int
	pages  int
}

// New creates an empty tree with the given key and payload widths.
func New(dev *flash.Device, keyWidth, payloadWidth int) (*Tree, error) {
	t := &Tree{dev: dev, keyW: keyWidth, payW: payloadWidth}
	if err := t.validate(); err != nil {
		return nil, err
	}
	// Empty root leaf.
	pg, err := t.newPage()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, t.dev.PageSize())
	t.initLeaf(buf, 0, flash.InvalidPage)
	if err := t.dev.Write(pg, buf[:leafHdr]); err != nil {
		return nil, err
	}
	t.root = pg
	t.height = 1
	return t, nil
}

func (t *Tree) validate() error {
	if t.keyW <= 0 || t.payW < 0 {
		return fmt.Errorf("btree: bad widths key=%d payload=%d", t.keyW, t.payW)
	}
	if t.leafCap() < 2 || t.intCap() < 2 {
		return fmt.Errorf("btree: page too small for key width %d payload %d", t.keyW, t.payW)
	}
	return nil
}

func (t *Tree) leafCap() int { return (t.dev.PageSize() - leafHdr) / (t.keyW + t.payW) }
func (t *Tree) intCap() int  { return (t.dev.PageSize() - intHdr) / (t.keyW + childWidth) }

// KeyWidth and PayloadWidth report the entry geometry.
func (t *Tree) KeyWidth() int     { return t.keyW }
func (t *Tree) PayloadWidth() int { return t.payW }

// Count returns the number of entries.
func (t *Tree) Count() int { return t.count }

// Height returns the number of levels (1 = root leaf). CI operators
// reserve one RAM buffer per level.
func (t *Tree) Height() int { return t.height }

// Pages returns the number of flash pages owned by the tree.
func (t *Tree) Pages() int { return t.pages }

func (t *Tree) newPage() (flash.PageID, error) {
	pg, err := t.dev.Alloc()
	if err != nil {
		return flash.InvalidPage, err
	}
	t.pages++
	return pg, nil
}

func (t *Tree) initLeaf(buf []byte, n int, next flash.PageID) {
	buf[hdrType] = nodeLeaf
	binary.BigEndian.PutUint16(buf[hdrCount:], uint16(n))
	binary.BigEndian.PutUint32(buf[hdrNext:], uint32(next))
}

func (t *Tree) initInternal(buf []byte, n int) {
	buf[hdrType] = nodeInternal
	binary.BigEndian.PutUint16(buf[hdrCount:], uint16(n))
}

func nodeCount(buf []byte) int { return int(binary.BigEndian.Uint16(buf[hdrCount:])) }

func (t *Tree) leafEntry(buf []byte, i int) (key, pay []byte) {
	off := leafHdr + i*(t.keyW+t.payW)
	return buf[off : off+t.keyW], buf[off+t.keyW : off+t.keyW+t.payW]
}

func (t *Tree) intEntry(buf []byte, i int) (key []byte, child flash.PageID) {
	off := intHdr + i*(t.keyW+childWidth)
	key = buf[off : off+t.keyW]
	child = flash.PageID(binary.BigEndian.Uint32(buf[off+t.keyW:]))
	return key, child
}

func (t *Tree) setIntEntry(buf []byte, i int, key []byte, child flash.PageID) {
	off := intHdr + i*(t.keyW+childWidth)
	copy(buf[off:], key)
	binary.BigEndian.PutUint32(buf[off+t.keyW:], uint32(child))
}

func (t *Tree) leafBytes(n int) int { return leafHdr + n*(t.keyW+t.payW) }
func (t *Tree) intBytes(n int) int  { return intHdr + n*(t.keyW+childWidth) }

func (t *Tree) readNode(pg flash.PageID, buf []byte) error {
	// Read the full page; we cannot know the entry count beforehand.
	// Cost model: one page read plus a full transfer, matching "one
	// buffer per B+-Tree level".
	return t.dev.ReadFull(pg, buf)
}

// Entry is a key/payload pair produced by bulk loading or scans.
type Entry struct {
	Key     []byte
	Payload []byte
}

// EntrySource supplies entries in non-decreasing key order for bulk load.
type EntrySource interface {
	// NextEntry returns ok=false at the end of the input.
	NextEntry() (Entry, bool, error)
}

// SliceSource adapts a sorted []Entry to an EntrySource.
type SliceSource struct {
	Entries []Entry
	i       int
}

// NextEntry implements EntrySource.
func (s *SliceSource) NextEntry() (Entry, bool, error) {
	if s.i >= len(s.Entries) {
		return Entry{}, false, nil
	}
	e := s.Entries[s.i]
	s.i++
	return e, true, nil
}

// Bulk builds a tree from a sorted entry source, writing each page once.
func Bulk(dev *flash.Device, keyWidth, payloadWidth int, src EntrySource) (*Tree, error) {
	t := &Tree{dev: dev, keyW: keyWidth, payW: payloadWidth}
	if err := t.validate(); err != nil {
		return nil, err
	}
	type levelEntry struct {
		firstKey []byte
		page     flash.PageID
	}
	var level []levelEntry

	// Fill leaves to ~90% so post-load inserts don't split immediately.
	fill := t.leafCap() * 9 / 10
	if fill < 2 {
		fill = t.leafCap()
	}
	// Entries are assembled directly into the leaf image. A completed
	// leaf is held in RAM until its successor's page is allocated, so the
	// next-leaf pointer is set without re-reading: each page is written
	// exactly once during bulk load.
	cur := make([]byte, dev.PageSize())
	held := make([]byte, dev.PageSize())
	var heldPg flash.PageID
	var heldN int
	haveHeld := false
	curN := 0
	var lastKey []byte

	completeLeaf := func(final bool) error {
		if curN == 0 && !final {
			return nil
		}
		pg, err := t.newPage()
		if err != nil {
			return err
		}
		if haveHeld {
			binary.BigEndian.PutUint32(held[hdrNext:], uint32(pg))
			if err := t.dev.Write(heldPg, held[:t.leafBytes(heldN)]); err != nil {
				return err
			}
		}
		t.initLeaf(cur, curN, flash.InvalidPage)
		k, _ := t.leafEntry(cur, 0)
		level = append(level, levelEntry{firstKey: append([]byte(nil), k...), page: pg})
		cur, held = held, cur
		heldPg, heldN = pg, curN
		haveHeld = true
		curN = 0
		return nil
	}

	for {
		e, ok, err := src.NextEntry()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if len(e.Key) != keyWidth || len(e.Payload) != payloadWidth {
			return nil, fmt.Errorf("btree: entry widths %d/%d, want %d/%d",
				len(e.Key), len(e.Payload), keyWidth, payloadWidth)
		}
		if lastKey != nil && bytes.Compare(e.Key, lastKey) < 0 {
			return nil, fmt.Errorf("btree: bulk input not sorted")
		}
		lastKey = append(lastKey[:0], e.Key...)
		k, p := t.leafEntry(cur, curN)
		copy(k, e.Key)
		copy(p, e.Payload)
		curN++
		t.count++
		if curN == fill {
			if err := completeLeaf(false); err != nil {
				return nil, err
			}
		}
	}
	if curN > 0 {
		if err := completeLeaf(false); err != nil {
			return nil, err
		}
	}
	if haveHeld {
		if err := t.dev.Write(heldPg, held[:t.leafBytes(heldN)]); err != nil {
			return nil, err
		}
	}
	buf := cur // leaf assembly buffer is free now; reuse for upper levels
	if len(level) == 0 {
		// Empty input: single empty leaf root.
		pg, err := t.newPage()
		if err != nil {
			return nil, err
		}
		t.initLeaf(buf, 0, flash.InvalidPage)
		if err := t.dev.Write(pg, buf[:leafHdr]); err != nil {
			return nil, err
		}
		t.root = pg
		t.height = 1
		return t, nil
	}

	// Build internal levels bottom-up.
	t.height = 1
	intFill := t.intCap() * 9 / 10
	if intFill < 2 {
		intFill = t.intCap()
	}
	for len(level) > 1 {
		var upper []levelEntry
		for i := 0; i < len(level); i += intFill {
			end := i + intFill
			if end > len(level) {
				end = len(level)
			}
			group := level[i:end]
			pg, err := t.newPage()
			if err != nil {
				return nil, err
			}
			t.initInternal(buf, len(group))
			for j, le := range group {
				t.setIntEntry(buf, j, le.firstKey, le.page)
			}
			if err := t.dev.Write(pg, buf[:t.intBytes(len(group))]); err != nil {
				return nil, err
			}
			upper = append(upper, levelEntry{firstKey: group[0].firstKey, page: pg})
		}
		level = upper
		t.height++
	}
	t.root = level[0].page
	return t, nil
}

// descend returns the leaf page whose key range may contain key, along
// with the path of (page, childIndex) visited, for Insert.
//
// Internal entries hold the minimum key of their subtree. Two descent
// modes keep that invariant useful with duplicate keys:
//
//   - read mode ("leftmost"): follow the rightmost child whose key is
//     strictly below the target, so a Seek lands before any run of
//     duplicates, wherever the run starts;
//   - insert mode: follow the rightmost child whose key is <= the target
//     (appending new duplicates at the end of their run), and *lower* the
//     first entry's key when inserting below the current minimum, so
//     separators always stay sorted and <= their subtree minimum.
type pathStep struct {
	page flash.PageID
	idx  int
}

func (t *Tree) descend(key []byte, buf []byte, insert bool) (flash.PageID, []pathStep, error) {
	var path []pathStep
	pg := t.root
	for {
		if err := t.readNode(pg, buf); err != nil {
			return flash.InvalidPage, nil, err
		}
		if buf[hdrType] == nodeLeaf {
			return pg, path, nil
		}
		n := nodeCount(buf)
		if insert {
			if k0, c0 := t.intEntry(buf, 0); bytes.Compare(key, k0) < 0 {
				// New global minimum for this subtree: lower the bound.
				t.setIntEntry(buf, 0, key, c0)
				if err := t.dev.Write(pg, buf[:t.intBytes(n)]); err != nil {
					return flash.InvalidPage, nil, err
				}
			}
		}
		lo, hi := 0, n-1
		idx := 0
		for lo <= hi {
			mid := (lo + hi) / 2
			k, _ := t.intEntry(buf, mid)
			var follow bool
			if insert {
				follow = bytes.Compare(k, key) <= 0
			} else {
				follow = bytes.Compare(k, key) < 0
			}
			if follow {
				idx = mid
				lo = mid + 1
			} else {
				hi = mid - 1
			}
		}
		_, child := t.intEntry(buf, idx)
		if insert {
			path = append(path, pathStep{page: pg, idx: idx})
		}
		pg = child
	}
}

// Lookup returns the payload of the first entry with exactly this key.
func (t *Tree) Lookup(key []byte) ([]byte, error) {
	cur, err := t.Seek(key)
	if err != nil {
		return nil, err
	}
	k, p, ok, err := cur.Next()
	if err != nil {
		return nil, err
	}
	if !ok || !bytes.Equal(k, key) {
		return nil, ErrNotFound
	}
	return p, nil
}

// Cursor iterates leaf entries in key order.
type Cursor struct {
	t   *Tree
	buf []byte
	pg  flash.PageID
	i   int
	n   int
}

// Seek positions a cursor at the first entry with key >= the given key.
func (t *Tree) Seek(key []byte) (*Cursor, error) {
	buf := make([]byte, t.dev.PageSize())
	leaf, _, err := t.descend(key, buf, false)
	if err != nil {
		return nil, err
	}
	n := nodeCount(buf)
	lo, hi, pos := 0, n-1, n
	for lo <= hi {
		mid := (lo + hi) / 2
		k, _ := t.leafEntry(buf, mid)
		if bytes.Compare(k, key) >= 0 {
			pos = mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	c := &Cursor{t: t, buf: buf, pg: leaf, i: pos, n: n}
	// Because internal first-keys equal their subtree minimum, an exact
	// lower bound never requires stepping back; but an absent key can
	// leave us at the end of a leaf whose successor holds the answer.
	return c, nil
}

// First positions a cursor at the smallest entry.
func (t *Tree) First() (*Cursor, error) {
	buf := make([]byte, t.dev.PageSize())
	pg := t.root
	for {
		if err := t.readNode(pg, buf); err != nil {
			return nil, err
		}
		if buf[hdrType] == nodeLeaf {
			return &Cursor{t: t, buf: buf, pg: pg, i: 0, n: nodeCount(buf)}, nil
		}
		_, child := t.intEntry(buf, 0)
		pg = child
	}
}

// Next returns the current entry and advances. Returned slices are views
// into the cursor buffer, valid until the next call.
func (c *Cursor) Next() (key, payload []byte, ok bool, err error) {
	for c.i >= c.n {
		next := flash.PageID(binary.BigEndian.Uint32(c.buf[hdrNext:]))
		if next == flash.InvalidPage {
			return nil, nil, false, nil
		}
		if err := c.t.readNode(next, c.buf); err != nil {
			return nil, nil, false, err
		}
		c.pg = next
		c.i = 0
		c.n = nodeCount(c.buf)
	}
	k, p := c.t.leafEntry(c.buf, c.i)
	c.i++
	return k, p, true, nil
}

// Insert adds an entry (duplicates allowed), splitting nodes as needed.
func (t *Tree) Insert(key, payload []byte) error {
	if len(key) != t.keyW || len(payload) != t.payW {
		return fmt.Errorf("btree: entry widths %d/%d, want %d/%d", len(key), len(payload), t.keyW, t.payW)
	}
	buf := make([]byte, t.dev.PageSize())
	leaf, path, err := t.descend(key, buf, true)
	if err != nil {
		return err
	}
	n := nodeCount(buf)
	// Insert position: before the first entry > key.
	pos := n
	for i := 0; i < n; i++ {
		k, _ := t.leafEntry(buf, i)
		if bytes.Compare(k, key) > 0 {
			pos = i
			break
		}
	}
	ew := t.keyW + t.payW
	if n < t.leafCap() {
		copy(buf[leafHdr+(pos+1)*ew:leafHdr+(n+1)*ew], buf[leafHdr+pos*ew:leafHdr+n*ew])
		k, p := t.leafEntry(buf, pos)
		copy(k, key)
		copy(p, payload)
		binary.BigEndian.PutUint16(buf[hdrCount:], uint16(n+1))
		t.count++
		return t.dev.Write(leaf, buf[:t.leafBytes(n+1)])
	}
	// Split the leaf.
	entries := make([]Entry, 0, n+1)
	for i := 0; i < n; i++ {
		k, p := t.leafEntry(buf, i)
		entries = append(entries, Entry{Key: append([]byte(nil), k...), Payload: append([]byte(nil), p...)})
	}
	entries = append(entries[:pos:pos], append([]Entry{{Key: append([]byte(nil), key...), Payload: append([]byte(nil), payload...)}}, entries[pos:]...)...)
	mid := len(entries) / 2
	next := flash.PageID(binary.BigEndian.Uint32(buf[hdrNext:]))
	rightPg, err := t.newPage()
	if err != nil {
		return err
	}
	// Left half stays on the existing page; right half on the new page.
	writeLeaf := func(pg flash.PageID, es []Entry, nxt flash.PageID) error {
		t.initLeaf(buf, len(es), nxt)
		for i, e := range es {
			k, p := t.leafEntry(buf, i)
			copy(k, e.Key)
			copy(p, e.Payload)
		}
		return t.dev.Write(pg, buf[:t.leafBytes(len(es))])
	}
	if err := writeLeaf(rightPg, entries[mid:], next); err != nil {
		return err
	}
	if err := writeLeaf(leaf, entries[:mid], rightPg); err != nil {
		return err
	}
	t.count++
	return t.insertUp(path, entries[mid].Key, rightPg)
}

// insertUp inserts a separator (key -> child) into the parent chain.
func (t *Tree) insertUp(path []pathStep, key []byte, child flash.PageID) error {
	buf := make([]byte, t.dev.PageSize())
	for lvl := len(path) - 1; lvl >= 0; lvl-- {
		step := path[lvl]
		if err := t.readNode(step.page, buf); err != nil {
			return err
		}
		n := nodeCount(buf)
		pos := step.idx + 1
		ew := t.keyW + childWidth
		if n < t.intCap() {
			copy(buf[intHdr+(pos+1)*ew:intHdr+(n+1)*ew], buf[intHdr+pos*ew:intHdr+n*ew])
			t.setIntEntry(buf, pos, key, child)
			binary.BigEndian.PutUint16(buf[hdrCount:], uint16(n+1))
			return t.dev.Write(step.page, buf[:t.intBytes(n+1)])
		}
		// Split internal node.
		type ic struct {
			key   []byte
			child flash.PageID
		}
		ents := make([]ic, 0, n+1)
		for i := 0; i < n; i++ {
			k, c := t.intEntry(buf, i)
			ents = append(ents, ic{key: append([]byte(nil), k...), child: c})
		}
		ents = append(ents[:pos:pos], append([]ic{{key: append([]byte(nil), key...), child: child}}, ents[pos:]...)...)
		mid := len(ents) / 2
		rightPg, err := t.newPage()
		if err != nil {
			return err
		}
		writeInt := func(pg flash.PageID, es []ic) error {
			t.initInternal(buf, len(es))
			for i, e := range es {
				t.setIntEntry(buf, i, e.key, e.child)
			}
			return t.dev.Write(pg, buf[:t.intBytes(len(es))])
		}
		if err := writeInt(rightPg, ents[mid:]); err != nil {
			return err
		}
		if err := writeInt(step.page, ents[:mid]); err != nil {
			return err
		}
		key = ents[mid].key
		child = rightPg
	}
	// Root split: new root with two children.
	oldRoot := t.root
	// Recover the first key of the old root.
	if err := t.readNode(oldRoot, buf); err != nil {
		return err
	}
	var firstKey []byte
	if buf[hdrType] == nodeLeaf {
		k, _ := t.leafEntry(buf, 0)
		firstKey = append([]byte(nil), k...)
	} else {
		k, _ := t.intEntry(buf, 0)
		firstKey = append([]byte(nil), k...)
	}
	rootPg, err := t.newPage()
	if err != nil {
		return err
	}
	t.initInternal(buf, 2)
	t.setIntEntry(buf, 0, firstKey, oldRoot)
	t.setIntEntry(buf, 1, key, child)
	if err := t.dev.Write(rootPg, buf[:t.intBytes(2)]); err != nil {
		return err
	}
	t.root = rootPg
	t.height++
	return nil
}
