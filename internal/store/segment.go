// Package store provides the on-flash storage primitives of the Secure
// USB key: page segments, fixed-width row files addressed by dense
// surrogate identifiers, and packed sorted ID-list segments — the physical
// substrate beneath tables, Subtree Key Tables and climbing indexes.
//
// A note on accounting: readers and writers use small Go byte slices as
// their working area, but the *simulated* RAM budget is enforced by the
// operators in internal/exec through internal/ram grants. This keeps the
// accounting model (what the paper charges) separate from the host
// implementation details.
package store

import (
	"fmt"

	"ghostdb/internal/flash"
)

// Segment is an ordered collection of flash pages with an append cursor.
// It underlies row files, list segments and temporary spill areas.
type Segment struct {
	dev   *flash.Device
	pages []flash.PageID

	buf      []byte // page assembly buffer
	bufUsed  int
	lastUsed int // meaningful bytes in the final page, valid once sealed
	sealed   bool
}

// NewSegment creates an empty segment on dev.
func NewSegment(dev *flash.Device) *Segment {
	return &Segment{dev: dev, buf: make([]byte, dev.PageSize())}
}

// PageSize returns the device page size.
func (s *Segment) PageSize() int { return s.dev.PageSize() }

// Pages returns the number of flash pages held.
func (s *Segment) Pages() int { return len(s.pages) }

// Bytes returns the total byte size of the committed content.
func (s *Segment) Bytes() int {
	if len(s.pages) == 0 {
		return s.bufUsed
	}
	if s.sealed {
		return (len(s.pages)-1)*s.dev.PageSize() + s.lastUsed
	}
	return len(s.pages)*s.dev.PageSize() + s.bufUsed
}

// Append adds raw bytes, packing them across page boundaries. Call Seal
// when done to flush the final partial page.
func (s *Segment) Append(data []byte) error {
	if s.sealed {
		return fmt.Errorf("store: append to sealed segment")
	}
	for len(data) > 0 {
		n := copy(s.buf[s.bufUsed:], data)
		s.bufUsed += n
		data = data[n:]
		if s.bufUsed == len(s.buf) {
			if err := s.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Segment) flush() error {
	id, err := s.dev.Alloc()
	if err != nil {
		return err
	}
	if err := s.dev.Write(id, s.buf[:s.bufUsed]); err != nil {
		return err
	}
	s.pages = append(s.pages, id)
	s.bufUsed = 0
	return nil
}

// Seal flushes the trailing partial page (if any) and freezes the segment.
func (s *Segment) Seal() error {
	if s.sealed {
		return nil
	}
	if s.bufUsed > 0 {
		s.lastUsed = s.bufUsed
		if err := s.flush(); err != nil {
			return err
		}
	} else {
		s.lastUsed = s.dev.PageSize()
	}
	s.sealed = true
	return nil
}

// Reopen makes a sealed segment appendable again: the trailing partial
// page (if any) is pulled back into the assembly buffer and released, so
// previously committed byte offsets remain stable.
func (s *Segment) Reopen() error {
	if !s.sealed {
		return nil
	}
	s.sealed = false
	if len(s.pages) == 0 {
		s.bufUsed = 0
		return nil
	}
	if s.lastUsed == s.dev.PageSize() {
		s.bufUsed = 0
		return nil
	}
	last := s.pages[len(s.pages)-1]
	if err := s.dev.Read(last, s.buf, s.lastUsed); err != nil {
		return err
	}
	if err := s.dev.Free(last); err != nil {
		return err
	}
	s.pages = s.pages[:len(s.pages)-1]
	s.bufUsed = s.lastUsed
	return nil
}

// Free releases every page back to the device. The segment is unusable
// afterwards.
func (s *Segment) Free() error {
	for _, p := range s.pages {
		if err := s.dev.Free(p); err != nil {
			return err
		}
	}
	s.pages = nil
	s.bufUsed = 0
	s.sealed = true
	return nil
}

// ReadAt reads n bytes at absolute byte offset off within the segment's
// content into dst, issuing one flash page read per touched page.
func (s *Segment) ReadAt(dst []byte, off, n int) error {
	ps := s.dev.PageSize()
	if off < 0 || n < 0 {
		return fmt.Errorf("store: bad range off=%d n=%d", off, n)
	}
	for n > 0 {
		pi := off / ps
		po := off % ps
		if pi >= len(s.pages) {
			return fmt.Errorf("store: read past end of segment (page %d of %d)", pi, len(s.pages))
		}
		chunk := ps - po
		if chunk > n {
			chunk = n
		}
		if err := s.dev.ReadRange(s.pages[pi], dst[:chunk], po, chunk); err != nil {
			return err
		}
		dst = dst[chunk:]
		off += chunk
		n -= chunk
	}
	return nil
}

// Device exposes the underlying device (index builders need it).
func (s *Segment) Device() *flash.Device { return s.dev }
