package store

import (
	"encoding/binary"
	"fmt"

	"ghostdb/internal/flash"
)

// IDBytes is the encoded width of one tuple identifier (Table 1).
const IDBytes = 4

// Run locates one packed sorted ID sublist within a ListSegment: Count
// identifiers starting at byte offset Off.
type Run struct {
	Off   int
	Count int
}

// Pages returns how many flash pages a sequential scan of the run touches.
func (r Run) Pages(pageSize int) int {
	if r.Count == 0 {
		return 0
	}
	first := r.Off / pageSize
	last := (r.Off + r.Count*IDBytes - 1) / pageSize
	return last - first + 1
}

// ListSegment stores packed sorted runs of 4-byte identifiers. Climbing
// index sublists, temporary intermediate ID lists and Merge spill areas
// are all ListSegments.
type ListSegment struct {
	seg *Segment

	runOpen  bool
	runStart int
	runCount int
	scratch  [IDBytes]byte
}

// NewListSegment creates an empty list segment.
func NewListSegment(dev *flash.Device) *ListSegment {
	return &ListSegment{seg: NewSegment(dev)}
}

// BeginRun starts a new sublist at the current append position.
func (l *ListSegment) BeginRun() error {
	if l.runOpen {
		return fmt.Errorf("store: run already open")
	}
	l.runOpen = true
	l.runStart = l.seg.Bytes()
	l.runCount = 0
	return nil
}

// Add appends one identifier to the open run. Identifiers within a run
// must be added in ascending order; this is checked cheaply at read time
// by the operators, not here, to keep the hot path tight.
func (l *ListSegment) Add(id uint32) error {
	if !l.runOpen {
		return fmt.Errorf("store: Add outside a run")
	}
	binary.BigEndian.PutUint32(l.scratch[:], id)
	if err := l.seg.Append(l.scratch[:]); err != nil {
		return err
	}
	l.runCount++
	return nil
}

// EndRun closes the open run and returns its descriptor.
func (l *ListSegment) EndRun() (Run, error) {
	if !l.runOpen {
		return Run{}, fmt.Errorf("store: EndRun without BeginRun")
	}
	l.runOpen = false
	return Run{Off: l.runStart, Count: l.runCount}, nil
}

// AppendRun writes a whole sorted slice as one run.
func (l *ListSegment) AppendRun(ids []uint32) (Run, error) {
	if err := l.BeginRun(); err != nil {
		return Run{}, err
	}
	for _, id := range ids {
		if err := l.Add(id); err != nil {
			return Run{}, err
		}
	}
	return l.EndRun()
}

// Seal flushes the trailing partial page.
func (l *ListSegment) Seal() error { return l.seg.Seal() }

// Reopen makes a sealed list segment appendable again (post-load insert
// maintenance appends tiny runs).
func (l *ListSegment) Reopen() error { return l.seg.Reopen() }

// Free releases all pages.
func (l *ListSegment) Free() error { return l.seg.Free() }

// Pages returns the flash footprint in pages.
func (l *ListSegment) Pages() int { return l.seg.Pages() }

// Bytes returns the number of content bytes appended so far.
func (l *ListSegment) Bytes() int { return l.seg.Bytes() }

// RunReader streams a run's identifiers in order, reading each underlying
// flash page exactly once. It consumes one RAM buffer's worth of working
// space (the caller accounts for it with a ram.Grant).
type RunReader struct {
	l    *ListSegment
	run  Run
	next int // ids consumed

	buf    []byte
	bufLo  int // absolute byte offset of buf[0]
	bufLen int
}

// NewRunReader opens a streaming reader over run.
func (l *ListSegment) NewRunReader(run Run) *RunReader {
	return &RunReader{l: l, run: run, buf: make([]byte, l.seg.PageSize()), bufLo: -1}
}

// Remaining returns how many identifiers have not been consumed yet.
func (r *RunReader) Remaining() int { return r.run.Count - r.next }

// Next returns the next identifier, or ok=false at the end of the run.
func (r *RunReader) Next() (uint32, bool, error) {
	if r.next >= r.run.Count {
		return 0, false, nil
	}
	off := r.run.Off + r.next*IDBytes
	if r.bufLo < 0 || off < r.bufLo || off+IDBytes > r.bufLo+r.bufLen {
		// Refill: read from off to the end of its flash page (or run).
		ps := r.l.seg.PageSize()
		pageEnd := (off/ps + 1) * ps
		runEnd := r.run.Off + r.run.Count*IDBytes
		end := pageEnd
		if runEnd < end {
			end = runEnd
		}
		n := end - off
		if err := r.l.seg.ReadAt(r.buf[:n], off, n); err != nil {
			return 0, false, err
		}
		r.bufLo = off
		r.bufLen = n
	}
	v := binary.BigEndian.Uint32(r.buf[off-r.bufLo:])
	r.next++
	return v, true, nil
}

// ReadAll materializes the whole run into a slice (used by small-list fast
// paths and by tests).
func (l *ListSegment) ReadAll(run Run) ([]uint32, error) {
	out := make([]uint32, 0, run.Count)
	rd := l.NewRunReader(run)
	for {
		v, ok, err := rd.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, v)
	}
}
