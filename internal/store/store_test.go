package store

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"ghostdb/internal/flash"
	"ghostdb/internal/schema"
)

func testDev(t *testing.T) *flash.Device {
	t.Helper()
	return flash.MustDevice(flash.Params{PageSize: 256, PagesPerBlock: 8, Blocks: 512, ReserveBlocks: 4})
}

func TestSegmentAppendReadAt(t *testing.T) {
	dev := testDev(t)
	s := NewSegment(dev)
	var all []byte
	for i := 0; i < 100; i++ {
		chunk := bytes.Repeat([]byte{byte(i)}, 37)
		if err := s.Append(chunk); err != nil {
			t.Fatal(err)
		}
		all = append(all, chunk...)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() != len(all) {
		t.Fatalf("Bytes = %d, want %d", s.Bytes(), len(all))
	}
	// Read a range spanning several pages.
	got := make([]byte, 700)
	if err := s.ReadAt(got, 100, 700); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, all[100:800]) {
		t.Fatal("cross-page ReadAt mismatch")
	}
	if err := s.Append([]byte{1}); err == nil {
		t.Fatal("append after seal accepted")
	}
	used := dev.PagesUsed()
	if err := s.Free(); err != nil {
		t.Fatal(err)
	}
	if dev.PagesUsed() != used-(len(all)+255)/256 {
		t.Fatalf("pages not freed: %d -> %d", used, dev.PagesUsed())
	}
}

func TestSegmentReadPastEnd(t *testing.T) {
	dev := testDev(t)
	s := NewSegment(dev)
	_ = s.Append(make([]byte, 10))
	_ = s.Seal()
	if err := s.ReadAt(make([]byte, 300), 0, 300); err == nil {
		t.Fatal("read past end accepted")
	}
}

func TestCodecRoundtripProperty(t *testing.T) {
	cols := []schema.Column{
		{Name: "a", Kind: schema.KindInt},
		{Name: "b", Kind: schema.KindFloat},
		{Name: "c", Kind: schema.KindChar, Width: 12},
	}
	c := NewCodec(cols)
	if c.Width() != 8+8+12 {
		t.Fatalf("width = %d", c.Width())
	}
	f := func(i int64, fl float64, raw uint64) bool {
		if fl != fl { // NaN
			return true
		}
		s := ""
		for raw > 0 && len(s) < 12 {
			s += string(rune('a' + raw%26))
			raw /= 26
		}
		row := schema.Row{schema.IntVal(i), schema.FloatVal(fl), schema.CharVal(s)}
		buf := make([]byte, c.Width())
		if err := c.Encode(buf, row); err != nil {
			return false
		}
		back, err := c.Decode(buf)
		if err != nil {
			return false
		}
		return back[0].I == i && back[1].F == fl && back[2].S == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodecErrors(t *testing.T) {
	c := NewCodec([]schema.Column{{Name: "a", Kind: schema.KindInt}})
	buf := make([]byte, c.Width())
	if err := c.Encode(buf, schema.Row{}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := c.DecodeColumn(buf[:2], 0); err == nil {
		t.Fatal("short record accepted")
	}
	off, w := c.ColumnRange(0)
	if off != 0 || w != 8 {
		t.Fatalf("column range = %d,%d", off, w)
	}
}

func TestRowFileRoundtrip(t *testing.T) {
	dev := testDev(t)
	const rowW = 20
	f, err := NewRowFile(dev, rowW)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		rec := make([]byte, rowW)
		binary.BigEndian.PutUint32(rec, uint32(i*7))
		if err := f.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}
	// Random access.
	rec := make([]byte, rowW)
	for _, id := range []uint32{0, 13, 99} {
		if err := f.ReadRow(id, rec); err != nil {
			t.Fatal(err)
		}
		if got := binary.BigEndian.Uint32(rec); got != id*7 {
			t.Fatalf("row %d = %d", id, got)
		}
	}
	if err := f.ReadRow(n, rec); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	// Sequential scan sees every row once, in order.
	sr := f.NewSeqReader()
	count := 0
	for {
		r, id, ok, err := sr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if got := binary.BigEndian.Uint32(r); got != id*7 {
			t.Fatalf("seq row %d = %d", id, got)
		}
		count++
	}
	if count != n {
		t.Fatalf("seq count = %d", count)
	}
}

func TestRowFileSortedReaderPageEconomy(t *testing.T) {
	dev := testDev(t)
	f, _ := NewRowFile(dev, 16) // 16 rows per 256B page
	for i := 0; i < 160; i++ {
		f.Append(make([]byte, 16))
	}
	f.Seal()
	dev.ResetCounters()
	r := f.NewSortedReader()
	buf := make([]byte, 16)
	// 10 ids on the same page: one page read only.
	for i := 0; i < 10; i++ {
		if err := r.Read(uint32(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := dev.Counters().PageReads; got != 1 {
		t.Fatalf("page reads = %d, want 1", got)
	}
	// Descending access must be rejected.
	if err := r.Read(5, buf); err == nil {
		t.Fatal("descending id accepted")
	}
}

func TestRowFileInsertAfterSeal(t *testing.T) {
	dev := testDev(t)
	f, _ := NewRowFile(dev, 16)
	for i := 0; i < 20; i++ {
		rec := make([]byte, 16)
		binary.BigEndian.PutUint32(rec, uint32(i))
		f.Append(rec)
	}
	f.Seal()
	for i := 20; i < 40; i++ {
		rec := make([]byte, 16)
		binary.BigEndian.PutUint32(rec, uint32(i))
		if err := f.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	rec := make([]byte, 16)
	for i := uint32(0); i < 40; i++ {
		if err := f.ReadRow(i, rec); err != nil {
			t.Fatal(err)
		}
		if got := binary.BigEndian.Uint32(rec); got != i {
			t.Fatalf("row %d = %d after inserts", i, got)
		}
	}
}

func TestRowFileBadWidths(t *testing.T) {
	dev := testDev(t)
	if _, err := NewRowFile(dev, 0); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := NewRowFile(dev, 1000); err == nil {
		t.Fatal("over-page width accepted")
	}
	f, _ := NewRowFile(dev, 8)
	if err := f.Append(make([]byte, 7)); err == nil {
		t.Fatal("short record accepted")
	}
}

func TestIDListRunsAndReaders(t *testing.T) {
	dev := testDev(t)
	l := NewListSegment(dev)
	rng := rand.New(rand.NewSource(7))
	var runs []Run
	var want [][]uint32
	for r := 0; r < 10; r++ {
		n := rng.Intn(300)
		ids := make([]uint32, n)
		v := uint32(0)
		for i := range ids {
			v += uint32(rng.Intn(5) + 1)
			ids[i] = v
		}
		run, err := l.AppendRun(ids)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run)
		want = append(want, ids)
	}
	if err := l.Seal(); err != nil {
		t.Fatal(err)
	}
	for i, run := range runs {
		got, err := l.ReadAll(run)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want[i]) {
			t.Fatalf("run %d: len %d != %d", i, len(got), len(want[i]))
		}
		for j := range got {
			if got[j] != want[i][j] {
				t.Fatalf("run %d[%d]: %d != %d", i, j, got[j], want[i][j])
			}
		}
	}
}

func TestRunReaderPageEconomy(t *testing.T) {
	dev := testDev(t) // 256B pages -> 64 ids per page
	l := NewListSegment(dev)
	ids := make([]uint32, 640)
	for i := range ids {
		ids[i] = uint32(i)
	}
	run, _ := l.AppendRun(ids)
	l.Seal()
	dev.ResetCounters()
	rd := l.NewRunReader(run)
	for {
		_, ok, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if got := dev.Counters().PageReads; got != 10 {
		t.Fatalf("page reads = %d, want 10", got)
	}
	if run.Pages(256) != 10 {
		t.Fatalf("Run.Pages = %d", run.Pages(256))
	}
}

func TestListSegmentStateErrors(t *testing.T) {
	dev := testDev(t)
	l := NewListSegment(dev)
	if err := l.Add(1); err == nil {
		t.Fatal("Add outside run accepted")
	}
	if _, err := l.EndRun(); err == nil {
		t.Fatal("EndRun without BeginRun accepted")
	}
	if err := l.BeginRun(); err != nil {
		t.Fatal(err)
	}
	if err := l.BeginRun(); err == nil {
		t.Fatal("nested BeginRun accepted")
	}
}

func TestEmptyRun(t *testing.T) {
	dev := testDev(t)
	l := NewListSegment(dev)
	run, err := l.AppendRun(nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.Count != 0 || run.Pages(256) != 0 {
		t.Fatalf("empty run = %+v", run)
	}
	got, err := l.ReadAll(run)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty run read = %v, %v", got, err)
	}
}

func TestSegmentReopenPreservesOffsets(t *testing.T) {
	dev := testDev(t)
	s := NewSegment(dev)
	if err := s.Append(bytes.Repeat([]byte{7}, 300)); err != nil { // 1.2 pages
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := s.Reopen(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(bytes.Repeat([]byte{9}, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() != 400 {
		t.Fatalf("bytes = %d", s.Bytes())
	}
	got := make([]byte, 400)
	if err := s.ReadAt(got, 0, 400); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if got[i] != 7 {
			t.Fatalf("byte %d = %d, want 7", i, got[i])
		}
	}
	for i := 300; i < 400; i++ {
		if got[i] != 9 {
			t.Fatalf("byte %d = %d, want 9", i, got[i])
		}
	}
	// Reopen of an exactly-page-aligned segment.
	s2 := NewSegment(dev)
	_ = s2.Append(make([]byte, 256))
	_ = s2.Seal()
	if err := s2.Reopen(); err != nil {
		t.Fatal(err)
	}
	_ = s2.Append([]byte{1})
	_ = s2.Seal()
	if s2.Bytes() != 257 {
		t.Fatalf("aligned reopen bytes = %d", s2.Bytes())
	}
}

func TestSeqReaderReadAheadParity(t *testing.T) {
	// A read-ahead scan must return the same records and charge exactly
	// the same counters as the classic one-page-at-a-time scan,
	// including the partial last page.
	mk := func() (*flash.Device, *RowFile) {
		dev := testDev(t)
		f, _ := NewRowFile(dev, 24) // 10 rows per 256B page
		for i := 0; i < 157; i++ {  // partial last page
			rec := make([]byte, 24)
			binary.BigEndian.PutUint32(rec, uint32(i*3))
			if err := f.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Seal(); err != nil {
			t.Fatal(err)
		}
		dev.ResetCounters()
		return dev, f
	}
	devA, fA := mk()
	devB, fB := mk()
	plain := fA.NewSeqReader()
	var inflight atomic.Int64
	ahead := fB.NewSeqReader()
	staging := [][]byte{make([]byte, 256), make([]byte, 256), make([]byte, 256)}
	ahead.SetReadAhead(3, staging, &inflight)
	for i := 0; ; i++ {
		ra, ida, oka, erra := plain.Next()
		rb, idb, okb, errb := ahead.Next()
		if erra != nil || errb != nil {
			t.Fatal(erra, errb)
		}
		if oka != okb || ida != idb || !bytes.Equal(ra, rb) {
			t.Fatalf("row %d diverged: ok %v/%v id %d/%d", i, oka, okb, ida, idb)
		}
		if !oka {
			break
		}
	}
	if devA.Counters() != devB.Counters() {
		t.Fatalf("read-ahead counters %+v != plain %+v", devB.Counters(), devA.Counters())
	}
	if inflight.Load() != 0 {
		t.Fatalf("inflight gauge = %d after full drain", inflight.Load())
	}
	// Depth below 2 or undersized staging must leave classic mode on.
	r := fB.NewSeqReader()
	r.SetReadAhead(1, staging, nil)
	if r.ra != nil {
		t.Fatal("depth 1 should not enable read-ahead")
	}
	r.SetReadAhead(2, [][]byte{make([]byte, 8), make([]byte, 8)}, nil)
	if r.ra != nil {
		t.Fatal("undersized staging should not enable read-ahead")
	}
}
