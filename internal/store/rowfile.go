package store

import (
	"fmt"
	"sync/atomic"

	"ghostdb/internal/flash"
)

// RowFile stores fixed-width records addressed by their dense surrogate
// identifier: record i lives at page i/rowsPerPage, slot i%rowsPerPage.
// Records never span pages, so a row access is exactly one page read with
// a rowWidth-byte transfer. Tables, hidden images and Subtree Key Tables
// are all RowFiles kept in ID order, which is what makes the paper's
// merge-based operators possible.
type RowFile struct {
	dev         *flash.Device
	rowWidth    int
	rowsPerPage int
	pages       []flash.PageID
	count       int

	buf     []byte
	bufRows int
	sealed  bool
}

// NewRowFile creates an empty row file for records of rowWidth bytes.
func NewRowFile(dev *flash.Device, rowWidth int) (*RowFile, error) {
	if rowWidth <= 0 || rowWidth > dev.PageSize() {
		return nil, fmt.Errorf("store: row width %d out of range (page=%d)", rowWidth, dev.PageSize())
	}
	return &RowFile{
		dev:         dev,
		rowWidth:    rowWidth,
		rowsPerPage: dev.PageSize() / rowWidth,
		buf:         make([]byte, dev.PageSize()),
	}, nil
}

// RowWidth returns the record width in bytes.
func (f *RowFile) RowWidth() int { return f.rowWidth }

// Count returns the number of records.
func (f *RowFile) Count() int { return f.count }

// Pages returns the flash footprint in pages.
func (f *RowFile) Pages() int { return len(f.pages) }

// Bytes returns the flash footprint in bytes (whole pages).
func (f *RowFile) Bytes() int { return len(f.pages) * f.dev.PageSize() }

// Append adds one record; its ID is the previous Count(). Records are
// buffered one page at a time during bulk load.
func (f *RowFile) Append(rec []byte) error {
	if f.sealed {
		return fmt.Errorf("store: append to sealed row file")
	}
	if len(rec) != f.rowWidth {
		return fmt.Errorf("store: record is %d bytes, want %d", len(rec), f.rowWidth)
	}
	copy(f.buf[f.bufRows*f.rowWidth:], rec)
	f.bufRows++
	f.count++
	if f.bufRows == f.rowsPerPage {
		return f.flush()
	}
	return nil
}

func (f *RowFile) flush() error {
	id, err := f.dev.Alloc()
	if err != nil {
		return err
	}
	if err := f.dev.Write(id, f.buf[:f.bufRows*f.rowWidth]); err != nil {
		return err
	}
	f.pages = append(f.pages, id)
	f.bufRows = 0
	return nil
}

// Seal flushes the final partial page and freezes the file for reading.
// Appending after Seal reopens nothing: inserts go through Insert.
func (f *RowFile) Seal() error {
	if f.sealed {
		return nil
	}
	if f.bufRows > 0 {
		if err := f.flush(); err != nil {
			return err
		}
	}
	f.sealed = true
	return nil
}

// Insert appends a record to a sealed file (single-tuple updates, §2.3):
// it rewrites the final partial page or allocates a new one.
func (f *RowFile) Insert(rec []byte) error {
	if !f.sealed {
		return f.Append(rec)
	}
	if len(rec) != f.rowWidth {
		return fmt.Errorf("store: record is %d bytes, want %d", len(rec), f.rowWidth)
	}
	slot := f.count % f.rowsPerPage
	if slot == 0 {
		// New page needed.
		id, err := f.dev.Alloc()
		if err != nil {
			return err
		}
		if err := f.dev.Write(id, rec); err != nil {
			return err
		}
		f.pages = append(f.pages, id)
		f.count++
		return nil
	}
	// Read-modify-write the last page (out-of-place at the FTL level).
	last := f.pages[len(f.pages)-1]
	used := slot * f.rowWidth
	if err := f.dev.Read(last, f.buf, used); err != nil {
		return err
	}
	copy(f.buf[used:], rec)
	if err := f.dev.Write(last, f.buf[:used+f.rowWidth]); err != nil {
		return err
	}
	f.count++
	return nil
}

// ReadRow reads record id into dst (len(dst) >= RowWidth()). Exactly one
// page read, transferring rowWidth bytes.
func (f *RowFile) ReadRow(id uint32, dst []byte) error {
	i := int(id)
	if i >= f.count {
		return fmt.Errorf("store: row %d out of range (count=%d)", id, f.count)
	}
	pi := i / f.rowsPerPage
	slot := i % f.rowsPerPage
	return f.dev.ReadRange(f.pages[pi], dst, slot*f.rowWidth, f.rowWidth)
}

// PageOf returns the page index holding record id.
func (f *RowFile) PageOf(id uint32) int { return int(id) / f.rowsPerPage }

// SeqReader streams records in ID order, reading each page once.
type SeqReader struct {
	f    *RowFile
	next int
	page int
	buf  []byte
	n    int // rows in buf
	pos  int // next row within buf

	// Read-ahead pipeline (SetReadAhead): ra holds the staging window,
	// pages raBase..raBase+raN-1 are resident, inflight gauges the pages
	// staged ahead of the consumer. Nil ra = classic one-page reads.
	ra       [][]byte
	raBase   int
	raN      int
	inflight *atomic.Int64
}

// NewSeqReader returns a sequential reader positioned at record 0.
func (f *RowFile) NewSeqReader() *SeqReader {
	return &SeqReader{f: f, page: -1, buf: make([]byte, f.dev.PageSize())}
}

// SetReadAhead double-buffers the scan: whenever the reader crosses into
// an unstaged page it fetches a window of up to len(staging) pages in
// one coalesced flash.ReadMulti request, so the scan drains one page
// while the next ones are already in untrusted-of-the-FTL staging RAM.
// Each staging buffer must hold a full flash page, and the buffers must
// be accounted against the session's RAM grant by the caller. The
// window depth MUST be grant-derived (Binding.PrefetchPages) — never a
// function of hidden match counts — which the prefetchdepth leaklint
// check enforces at every call site; depth is clamped to len(staging).
// Counter parity with the plain scan is exact by construction: the
// batched request charges precisely what the per-page reads it replaces
// would. inflight, when non-nil, gauges staged-but-unconsumed pages
// (the ghostdb_prefetch_inflight metric). Depths below 2 leave the
// reader in classic one-page mode.
func (r *SeqReader) SetReadAhead(depth int, staging [][]byte, inflight *atomic.Int64) {
	if depth > len(staging) {
		depth = len(staging)
	}
	if depth < 2 || r.page >= 0 {
		return // nothing to gain, or the scan already started
	}
	for _, b := range staging[:depth] {
		if len(b) < r.f.dev.PageSize() {
			return // undersized staging: stay in classic mode
		}
	}
	r.ra, r.raBase, r.raN = staging[:depth], -1, 0
	r.inflight = inflight
}

// loadPage makes page pi's rows resident in r.buf, through the
// read-ahead window when one is configured.
func (r *SeqReader) loadPage(pi int) error {
	rows := r.f.rowsPerPage
	if remaining := r.f.count - pi*rows; remaining < rows {
		rows = remaining
	}
	if r.ra == nil {
		if err := r.f.dev.Read(r.f.pages[pi], r.buf, rows*r.f.rowWidth); err != nil {
			return err
		}
	} else {
		if pi < r.raBase || pi >= r.raBase+r.raN {
			n := len(r.ra)
			if rest := len(r.f.pages) - pi; rest < n {
				n = rest
			}
			reqs := make([]flash.ReadReq, n)
			for j := 0; j < n; j++ {
				rj := r.f.rowsPerPage
				if remaining := r.f.count - (pi+j)*r.f.rowsPerPage; remaining < rj {
					rj = remaining
				}
				reqs[j] = flash.ReadReq{ID: r.f.pages[pi+j], Dst: r.ra[j], N: rj * r.f.rowWidth}
			}
			if err := r.f.dev.ReadMulti(reqs); err != nil {
				return err
			}
			r.raBase, r.raN = pi, n
			if r.inflight != nil {
				r.inflight.Add(int64(n - 1))
			}
		} else if r.inflight != nil {
			r.inflight.Add(-1)
		}
		r.buf = r.ra[pi-r.raBase]
	}
	r.page = pi
	r.n = rows
	return nil
}

// Next returns the next record (a view valid until the following call) or
// ok=false at end of file.
func (r *SeqReader) Next() (rec []byte, id uint32, ok bool, err error) {
	if r.next >= r.f.count {
		return nil, 0, false, nil
	}
	pi := r.next / r.f.rowsPerPage
	if pi != r.page {
		if err := r.loadPage(pi); err != nil {
			return nil, 0, false, err
		}
	}
	slot := r.next % r.f.rowsPerPage
	rec = r.buf[slot*r.f.rowWidth : (slot+1)*r.f.rowWidth]
	id = uint32(r.next)
	r.next++
	return rec, id, true, nil
}

// SortedReader reads records for an ascending sequence of IDs, touching
// each page at most once (the SJoin access pattern: low-selectivity inputs
// touch few pages, and above ~10% selectivity every page is read, which is
// exactly the effect Figure 9 discusses).
type SortedReader struct {
	f    *RowFile
	page int
	buf  []byte
	last int64
}

// NewSortedReader returns a reader for ascending ID access.
func (f *RowFile) NewSortedReader() *SortedReader {
	return &SortedReader{f: f, page: -1, buf: make([]byte, f.dev.PageSize()), last: -1}
}

// Read fetches record id; ids must be non-decreasing across calls.
func (r *SortedReader) Read(id uint32, dst []byte) error {
	if int64(id) < r.last {
		return fmt.Errorf("store: sorted reader got id %d after %d", id, r.last)
	}
	r.last = int64(id)
	i := int(id)
	if i >= r.f.count {
		return fmt.Errorf("store: row %d out of range (count=%d)", id, r.f.count)
	}
	pi := i / r.f.rowsPerPage
	if pi != r.page {
		rows := r.f.rowsPerPage
		if remaining := r.f.count - pi*rows; remaining < rows {
			rows = remaining
		}
		if err := r.f.dev.Read(r.f.pages[pi], r.buf, rows*r.f.rowWidth); err != nil {
			return err
		}
		r.page = pi
	}
	slot := i % r.f.rowsPerPage
	copy(dst, r.buf[slot*r.f.rowWidth:(slot+1)*r.f.rowWidth])
	return nil
}

// Free releases all pages.
func (f *RowFile) Free() error {
	for _, p := range f.pages {
		if err := f.dev.Free(p); err != nil {
			return err
		}
	}
	f.pages = nil
	f.count = 0
	f.sealed = true
	return nil
}
