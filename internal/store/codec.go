package store

import (
	"fmt"

	"ghostdb/internal/schema"
)

// Codec encodes and decodes fixed-width records for a given column list.
// Every column occupies a fixed byte range (order-preserving encoding, see
// schema.EncodeValue), so records are directly addressable on flash.
type Codec struct {
	cols    []schema.Column
	offsets []int
	width   int
}

// NewCodec builds a codec over the given columns.
func NewCodec(cols []schema.Column) *Codec {
	c := &Codec{cols: cols, offsets: make([]int, len(cols))}
	for i, col := range cols {
		c.offsets[i] = c.width
		c.width += col.EncodedWidth()
	}
	return c
}

// Width returns the record width in bytes (possibly 0 for no columns).
func (c *Codec) Width() int { return c.width }

// Columns returns the column layout.
func (c *Codec) Columns() []schema.Column { return c.cols }

// Encode writes row into dst (len(dst) >= Width()).
func (c *Codec) Encode(dst []byte, row schema.Row) error {
	if len(row) != len(c.cols) {
		return fmt.Errorf("store: row has %d values, codec wants %d", len(row), len(c.cols))
	}
	for i, col := range c.cols {
		w := col.EncodedWidth()
		if err := schema.EncodeValue(dst[c.offsets[i]:c.offsets[i]+w], row[i]); err != nil {
			return fmt.Errorf("store: column %q: %w", col.Name, err)
		}
	}
	return nil
}

// Decode parses a full record.
func (c *Codec) Decode(src []byte) (schema.Row, error) {
	row := make(schema.Row, len(c.cols))
	for i := range c.cols {
		v, err := c.DecodeColumn(src, i)
		if err != nil {
			return nil, err
		}
		row[i] = v
	}
	return row, nil
}

// DecodeColumn parses the i-th column out of a record.
func (c *Codec) DecodeColumn(src []byte, i int) (schema.Value, error) {
	col := c.cols[i]
	w := col.EncodedWidth()
	if len(src) < c.offsets[i]+w {
		return schema.Value{}, fmt.Errorf("store: record too short for column %q", col.Name)
	}
	return schema.DecodeValue(src[c.offsets[i]:c.offsets[i]+w], col.Kind)
}

// ColumnRange returns the byte range of the i-th column within a record.
func (c *Codec) ColumnRange(i int) (off, width int) {
	return c.offsets[i], c.cols[i].EncodedWidth()
}
