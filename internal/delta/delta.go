// Package delta is the secure-side write path: a per-table LSM-style
// delta log that turns UPDATE and DELETE into append-only work on the
// write-once flash the paper's NAND model already imposes.
//
// The base image of a table (its hidden-column RowFile) is immutable
// once loaded; every DML statement appends fixed-width delta records —
// tombstones and whole-row upserts — to a per-table log RowFile, and
// keeps an in-RAM overlay (latest row image per updated id, plus the
// tombstone set) that readers consult after every base-image access.
// Row ids are dense and positional, so a tombstone never frees an id
// and an upsert never moves a row: the merge at read time is a pure
// per-id lookup, which is what keeps the multi-pass exec operators'
// access patterns (and therefore their cost model) intact.
//
// Leak argument. The untrusted observer sees flash traffic volume, not
// content. Delta segments are fixed-size: every record of a table's log
// is the same width (tombstones and pads carry a zeroed row image, so
// record kinds are indistinguishable by size), and every statement's
// commit pads its final page with pad records so the statement writes a
// whole number of pages — at least one, even for a statement that
// matched nothing. The only thing write volume reveals is the page
// count of the statement's delta batch, a coarse bound the statement
// text (which GhostDB's model already reveals) gives away anyway; it
// never reveals *which* rows matched. Reads replay the whole log per
// touching query (Refresh), a data-independent sequential scan.
package delta

import (
	"encoding/binary"

	"ghostdb/internal/flash"
	"ghostdb/internal/store"
)

// Record kinds. A pad record fills the tail of a statement's final page
// so commits are page-aligned; it carries no data.
const (
	kindPad       = 0
	kindTombstone = 1
	kindUpsert    = 2
)

// headerBytes is the fixed per-record header: 1 kind byte + 4 id bytes.
const headerBytes = 1 + store.IDBytes

// Table is the live delta state of one table: the flash-resident log
// and the in-RAM merge overlay rebuilt from it. All methods must run
// with the owning token's execution slot held; the type is hidden state
// and must never be mentioned by untrusted-side packages.
//
//ghostdb:hidden
type Table struct {
	dev  *flash.Device
	rowW int // hidden image row width; 0 for tables with no hidden columns

	// log is the append-only delta log. It is kept unsealed: Commit
	// pads every statement's batch to a page boundary, so the RowFile's
	// one-page append buffer is always empty between statements and the
	// log flushes exactly the batch's whole pages, once.
	log *store.RowFile

	dirty map[uint32][]byte // id -> latest upserted hidden row image
	tombs map[uint32]bool   // id -> deleted

	// checkpoint persists the tombstone set across compactions: the log
	// is recreated empty, but deletions are forever (ids are positional
	// and never reused), so the surviving tombstones move here.
	checkpoint *store.RowFile
	staged     int // records staged by the current statement
}

// NewTable creates an empty delta log for a table whose hidden image
// rows are rowWidth bytes (0 when the table has no hidden columns).
func NewTable(dev *flash.Device, rowWidth int) (*Table, error) {
	t := &Table{
		dev:   dev,
		rowW:  rowWidth,
		dirty: make(map[uint32][]byte),
		tombs: make(map[uint32]bool),
	}
	if err := t.resetLog(); err != nil {
		return nil, err
	}
	return t, nil
}

// recWidth is the fixed on-flash record width: header plus a full row
// image (zeroed for tombstones and pads, so every record of a table's
// log is the same size).
func (t *Table) recWidth() int { return headerBytes + t.rowW }

func (t *Table) resetLog() error {
	f, err := store.NewRowFile(t.dev, t.recWidth())
	if err != nil {
		return err
	}
	t.log = f
	t.staged = 0
	return nil
}

// StageTombstone appends a tombstone for id to the current statement's
// batch and marks the overlay. Idempotent per id.
func (t *Table) StageTombstone(id uint32) error {
	if t.tombs[id] {
		return nil
	}
	t.tombs[id] = true
	delete(t.dirty, id)
	return t.stage(kindTombstone, id, nil)
}

// StageUpsert appends a whole-row upsert for id (rec is the new hidden
// row image, copied) and installs it in the overlay.
func (t *Table) StageUpsert(id uint32, rec []byte) error {
	cp := make([]byte, t.rowW)
	copy(cp, rec)
	t.dirty[id] = cp
	return t.stage(kindUpsert, id, cp)
}

func (t *Table) stage(kind byte, id uint32, image []byte) error {
	rec := make([]byte, t.recWidth())
	rec[0] = kind
	binary.BigEndian.PutUint32(rec[1:], id)
	copy(rec[headerBytes:], image)
	t.staged++
	return t.log.Append(rec)
}

// Commit ends the current statement's batch: pad records fill the rest
// of the final page, so the batch hits flash as a whole number of pages
// — at least one, even for a statement that staged nothing.
func (t *Table) Commit() error {
	perPage := t.dev.PageSize() / t.recWidth()
	pad := (perPage - t.log.Count()%perPage) % perPage
	if t.staged == 0 {
		pad = perPage // zero-match statements still write one full page
	}
	for i := 0; i < pad; i++ {
		if err := t.stage(kindPad, 0, nil); err != nil {
			return err
		}
	}
	t.staged = 0
	return nil
}

// Depth reports the live log depth in flash pages — the read
// amplification every touching query pays until the next compaction.
func (t *Table) Depth() int { return t.log.Pages() }

// DirtyCount reports how many ids currently carry an upsert overlay.
func (t *Table) DirtyCount() int { return len(t.dirty) }

// TombCount reports how many ids are tombstoned.
func (t *Table) TombCount() int { return len(t.tombs) }

// Lookup returns the overlay row image for id, if the id was upserted
// since the last compaction.
func (t *Table) Lookup(id uint32) ([]byte, bool) {
	rec, ok := t.dirty[id]
	return rec, ok
}

// Dead reports whether id is tombstoned.
func (t *Table) Dead(id uint32) bool { return t.tombs[id] }

// Refresh replays the whole delta log through a sequential metered read
// — the per-query price of the LSM merge. The overlay is already
// memory-resident; what Refresh models (and charges to the session's
// cost) is the read amplification a real token would pay to rebuild it.
func (t *Table) Refresh() error {
	rd := t.log.NewSeqReader()
	for {
		_, _, ok, err := rd.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// Reset is the compaction epilogue: the overlay has been folded into a
// fresh base image, so upserts are dropped, the old log's pages are
// freed, and the surviving tombstone set is checkpointed to flash (ids
// never revive, so tombstones outlive every compaction).
func (t *Table) Reset() error {
	if err := t.log.Free(); err != nil {
		return err
	}
	if t.checkpoint != nil {
		if err := t.checkpoint.Free(); err != nil {
			return err
		}
		t.checkpoint = nil
	}
	if len(t.tombs) > 0 {
		ck, err := store.NewRowFile(t.dev, headerBytes)
		if err != nil {
			return err
		}
		rec := make([]byte, headerBytes)
		for id := range t.tombs {
			rec[0] = kindTombstone
			binary.BigEndian.PutUint32(rec[1:], id)
			if err := ck.Append(rec); err != nil {
				return err
			}
		}
		if err := ck.Seal(); err != nil {
			return err
		}
		t.checkpoint = ck
	}
	t.dirty = make(map[uint32][]byte)
	return t.resetLog()
}
