package delta

import (
	"bytes"
	"testing"

	"ghostdb/internal/flash"
)

func newDev(t *testing.T) *flash.Device {
	t.Helper()
	dev, err := flash.NewDevice(flash.Params{PageSize: 512, PagesPerBlock: 8, Blocks: 256, ReserveBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	return dev
}

// TestCommitPadsToWholePages: every statement's batch lands as a whole
// number of pages, and a statement that staged nothing still writes one
// full pad page — the write volume depends on the batch's record count,
// never on what the records say.
func TestCommitPadsToWholePages(t *testing.T) {
	const rowW = 30
	dl, err := NewTable(newDev(t), rowW)
	if err != nil {
		t.Fatal(err)
	}
	if got := dl.Depth(); got != 0 {
		t.Fatalf("fresh log depth = %d, want 0", got)
	}

	// Zero-match statement: one full pad page.
	if err := dl.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := dl.Depth(); got != 1 {
		t.Fatalf("zero-match commit depth = %d, want 1", got)
	}

	// A one-record statement and a statement filling several pages pad
	// to the same boundary rule: ceil(staged/perPage) pages each.
	perPage := 512 / (headerBytes + rowW)
	if err := dl.StageTombstone(7); err != nil {
		t.Fatal(err)
	}
	if err := dl.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := dl.Depth(); got != 2 {
		t.Fatalf("one-record commit depth = %d, want 2", got)
	}
	row := bytes.Repeat([]byte{0xab}, rowW)
	for i := 0; i < perPage+1; i++ {
		if err := dl.StageUpsert(uint32(100+i), row); err != nil {
			t.Fatal(err)
		}
	}
	if err := dl.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := dl.Depth(); got != 4 {
		t.Fatalf("perPage+1 records commit depth = %d, want 4", got)
	}
}

// TestOverlaySemantics: upserts are visible via Lookup until a tombstone
// hides the id; tombstones are idempotent and permanent across Reset,
// while upsert overlays (folded into the base by compaction) are not.
func TestOverlaySemantics(t *testing.T) {
	const rowW = 16
	dl, err := NewTable(newDev(t), rowW)
	if err != nil {
		t.Fatal(err)
	}
	row := bytes.Repeat([]byte{0x11}, rowW)
	if err := dl.StageUpsert(3, row); err != nil {
		t.Fatal(err)
	}
	got, ok := dl.Lookup(3)
	if !ok || !bytes.Equal(got, row) {
		t.Fatalf("Lookup(3) = %v,%v after upsert", got, ok)
	}
	// The stored image is a copy: mutating the caller's slice must not
	// reach the overlay.
	row[0] = 0x99
	if got, _ := dl.Lookup(3); got[0] != 0x11 {
		t.Fatal("overlay aliases the caller's row slice")
	}

	if err := dl.StageTombstone(3); err != nil {
		t.Fatal(err)
	}
	if err := dl.StageTombstone(3); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, ok := dl.Lookup(3); ok {
		t.Fatal("tombstoned id still has an upsert overlay")
	}
	if !dl.Dead(3) || dl.TombCount() != 1 {
		t.Fatalf("Dead(3)=%v TombCount=%d, want true/1", dl.Dead(3), dl.TombCount())
	}
	if err := dl.StageUpsert(5, bytes.Repeat([]byte{0x22}, rowW)); err != nil {
		t.Fatal(err)
	}
	if err := dl.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := dl.Refresh(); err != nil {
		t.Fatal(err)
	}

	if err := dl.Reset(); err != nil {
		t.Fatal(err)
	}
	if got := dl.Depth(); got != 0 {
		t.Fatalf("post-Reset depth = %d, want 0", got)
	}
	if dl.DirtyCount() != 0 {
		t.Fatal("upsert overlay survived compaction Reset")
	}
	if !dl.Dead(3) {
		t.Fatal("tombstone lost across compaction Reset")
	}
	// Ids never revive: re-tombstoning after Reset stays consistent.
	if err := dl.StageTombstone(3); err != nil {
		t.Fatal(err)
	}
	if dl.TombCount() != 1 {
		t.Fatalf("TombCount = %d after re-tombstone, want 1", dl.TombCount())
	}
}
