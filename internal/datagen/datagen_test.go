package datagen

import (
	"testing"

	"ghostdb/internal/schema"
)

func TestSyntheticCardinalityRatios(t *testing.T) {
	cards := SyntheticCardinalities(0.01)
	if cards["T0"] != 100_000 || cards["T1"] != 10_000 || cards["T11"] != 1000 {
		t.Fatalf("cards = %v", cards)
	}
	// Floors keep tiny scales usable.
	tiny := SyntheticCardinalities(0.00001)
	for n, v := range tiny {
		if v < 20 {
			t.Fatalf("%s floor broken: %d", n, v)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := Synthetic(0.0005, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(0.0005, 7)
	if err != nil {
		t.Fatal(err)
	}
	ta := a.Sch.Tables[0]
	la, lb := a.Load[ta.Index], b.Load[ta.Index]
	if la.Rows != lb.Rows {
		t.Fatalf("row mismatch")
	}
	for ci := range la.Cols {
		if string(la.Cols[ci].Data) != string(lb.Cols[ci].Data) {
			t.Fatalf("column %d differs between runs", ci)
		}
	}
	c, err := Synthetic(0.0005, 8)
	if err != nil {
		t.Fatal(err)
	}
	if string(c.Load[ta.Index].Cols[0].Data) == string(la.Cols[0].Data) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSelValueGranularity(t *testing.T) {
	if SelValue(0.1) != "0000000100" || SelValue(0) != "0000000000" || SelValue(2) != "0000001000" {
		t.Fatalf("SelValue: %q %q %q", SelValue(0.1), SelValue(0), SelValue(2))
	}
	if PadValue(42) != "0000000042" {
		t.Fatalf("PadValue = %q", PadValue(42))
	}
}

func TestSyntheticSelectivityApproximation(t *testing.T) {
	ds, err := Synthetic(0.001, 3)
	if err != nil {
		t.Fatal(err)
	}
	t1, _ := ds.Sch.Lookup("T1")
	ld := ds.Load[t1.Index]
	_, v1, _ := t1.Column("v1")
	w := t1.Columns[v1].EncodedWidth()
	threshold := SelValue(0.2)
	count := 0
	for i := 0; i < ld.Rows; i++ {
		v, err := schema.DecodeValue(ld.Cols[v1].Data[i*w:(i+1)*w], schema.KindChar)
		if err != nil {
			t.Fatal(err)
		}
		if v.S < threshold {
			count++
		}
	}
	got := float64(count) / float64(ld.Rows)
	if got < 0.15 || got > 0.25 {
		t.Fatalf("selectivity %.3f for target 0.2 (n=%d)", got, ld.Rows)
	}
}

func TestRefEngineRoundTrip(t *testing.T) {
	ds, err := Synthetic(0.0003, 5)
	if err != nil {
		t.Fatal(err)
	}
	re, err := ds.RefEngine()
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range ds.Sch.Tables {
		if re.Rows(tb.Index) != ds.Load[tb.Index].Rows {
			t.Fatalf("%s: %d vs %d rows", tb.Name, re.Rows(tb.Index), ds.Load[tb.Index].Rows)
		}
	}
}

func TestMedicalShape(t *testing.T) {
	ds, err := Medical(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Sch.Root().Name != "Measurements" {
		t.Fatalf("medical root = %s", ds.Sch.Root().Name)
	}
	m := ds.Rows["Measurements"]
	p := ds.Rows["Patients"]
	ratio := float64(m) / float64(p)
	// The paper's Measurements/Patients ≈ 92 drives Figure 16.
	if ratio < 60 || ratio > 120 {
		t.Fatalf("measurements/patients = %.1f", ratio)
	}
	// All fks hidden per the design guideline.
	for _, tb := range ds.Sch.Tables {
		for _, r := range tb.Refs {
			if !r.Hidden {
				t.Fatalf("%s.%s is a visible fk", tb.Name, r.FKColumn)
			}
		}
	}
	// Patients hidden identifying columns.
	pats, _ := ds.Sch.Lookup("Patients")
	for _, name := range []string{"name", "ssn", "address", "birthdate", "bodymassindex"} {
		col, _, ok := pats.Column(name)
		if !ok || !col.Hidden {
			t.Fatalf("Patients.%s should be hidden", name)
		}
	}
	for _, name := range []string{"firstname", "age", "sexe", "city", "zipcode"} {
		col, _, ok := pats.Column(name)
		if !ok || col.Hidden {
			t.Fatalf("Patients.%s should be visible", name)
		}
	}
}

func TestMedicalQueryable(t *testing.T) {
	ds, err := Medical(0.002, 2)
	if err != nil {
		t.Fatal(err)
	}
	db, err := ds.NewDB(defaultTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	re, err := ds.RefEngine()
	if err != nil {
		t.Fatal(err)
	}
	sql := `SELECT Measurements.id, Patients.id FROM Measurements, Patients ` +
		`WHERE Measurements.patient_id = Patients.id AND Patients.bodymassindex > 30.0 ` +
		`AND Measurements.time >= '2006-06-01'`
	res, err := db.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	want := refRows(t, ds, re, sql)
	if len(res.Rows) != len(want) {
		t.Fatalf("rows %d vs ref %d", len(res.Rows), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if !res.Rows[i][j].Equal(want[i][j]) {
				t.Fatalf("row %d mismatch: %v vs %v", i, res.Rows[i], want[i])
			}
		}
	}
}
