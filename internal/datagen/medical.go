package datagen

import (
	"fmt"
	"math/rand"

	"ghostdb/internal/exec"
	"ghostdb/internal/schema"
)

// MedicalDefs returns the diabetes database schema of §6.2. Following the
// paper's design guideline, all foreign keys are hidden, along with every
// attribute that could identify an individual; the superscripts in the
// paper map to the Hidden flags below. Measurements is the root (largest,
// central) table; Patients and Drugs are its children and Doctors hangs
// below Patients.
func MedicalDefs() []schema.TableDef {
	return []schema.TableDef{
		{Name: "Measurements", Columns: []schema.Column{
			{Name: "time", Kind: schema.KindChar, Width: 10},
			{Name: "measurement", Kind: schema.KindChar, Width: 10},
			{Name: "comment", Kind: schema.KindChar, Width: 100},
		}, Refs: []schema.Ref{
			{FKColumn: "patient_id", Child: "Patients", Hidden: true},
			{FKColumn: "drug_id", Child: "Drugs", Hidden: true},
		}},
		{Name: "Patients", Columns: []schema.Column{
			{Name: "firstname", Kind: schema.KindChar, Width: 20},
			{Name: "name", Kind: schema.KindChar, Width: 20, Hidden: true},
			{Name: "ssn", Kind: schema.KindChar, Width: 10, Hidden: true},
			{Name: "address", Kind: schema.KindChar, Width: 50, Hidden: true},
			{Name: "birthdate", Kind: schema.KindChar, Width: 10, Hidden: true},
			{Name: "bodymassindex", Kind: schema.KindFloat, Hidden: true},
			{Name: "age", Kind: schema.KindInt},
			{Name: "sexe", Kind: schema.KindChar, Width: 2},
			{Name: "city", Kind: schema.KindChar, Width: 20},
			{Name: "zipcode", Kind: schema.KindChar, Width: 6},
		}, Refs: []schema.Ref{
			{FKColumn: "doctor_id", Child: "Doctors", Hidden: true},
		}},
		{Name: "Doctors", Columns: []schema.Column{
			{Name: "specialty", Kind: schema.KindChar, Width: 20},
			{Name: "description", Kind: schema.KindChar, Width: 60},
			{Name: "firstname", Kind: schema.KindChar, Width: 20, Hidden: true},
			{Name: "name", Kind: schema.KindChar, Width: 20, Hidden: true},
		}},
		{Name: "Drugs", Columns: []schema.Column{
			{Name: "property", Kind: schema.KindChar, Width: 60},
			{Name: "comment", Kind: schema.KindChar, Width: 100, Hidden: true},
		}},
	}
}

// MedicalCardinalities returns the paper's table sizes scaled by sf
// (Doctors 4.5K, Patients 14K, Measurements 1.3M, Drugs 45).
func MedicalCardinalities(sf float64) map[string]int {
	card := func(n int, min int) int {
		v := int(float64(n) * sf)
		if v < min {
			v = min
		}
		return v
	}
	return map[string]int{
		"Measurements": card(1_300_000, 50),
		"Patients":     card(14_000, 10),
		"Doctors":      card(4_500, 5),
		"Drugs":        card(45, 3),
	}
}

var (
	firstnames  = []string{"Alice", "Bob", "Carol", "David", "Emma", "Felix", "Grace", "Hugo", "Iris", "Jules", "Karim", "Lea", "Marc", "Nora", "Oscar", "Paula"}
	surnames    = []string{"Martin", "Bernard", "Dubois", "Thomas", "Robert", "Richard", "Petit", "Durand", "Leroy", "Moreau", "Simon", "Laurent", "Lefebvre", "Michel", "Garcia", "Fournier"}
	cities      = []string{"Paris", "Versailles", "Lyon", "Lille", "Nantes", "Rennes", "Rouen", "Dijon", "Tours", "Nancy"}
	specialties = []string{"Psychiatrist", "Cardiologist", "Endocrinologist", "Generalist", "Nutritionist", "Ophthalmologist", "Nephrologist", "Podiatrist"}
	drugNames   = []string{"Insulin", "Metformin", "Glipizide", "Acarbose", "Exenatide", "Sitagliptin", "Glimepiride", "Pioglitazone", "Repaglinide"}
)

// Medical generates the medical dataset at scale sf. Data is synthetic
// but structured: real-looking names and specialties for the example
// applications, plus uniform padded attributes (Patients.zipcode and
// Doctors.name carry the Domain-graduated values used by the Figure 16
// selectivity sweep).
func Medical(sf float64, seed int64) (*Dataset, error) {
	sch, err := schema.New(MedicalDefs())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	cards := MedicalCardinalities(sf)
	ds := &Dataset{Sch: sch, Load: map[int]*exec.TableLoad{}, Rows: cards}

	set := func(t *schema.Table, ld *exec.TableLoad, row int, name string, v schema.Value) error {
		_, ci, ok := t.Column(name)
		if !ok {
			return fmt.Errorf("datagen: no column %s.%s", t.Name, name)
		}
		w := t.Columns[ci].EncodedWidth()
		return schema.EncodeValue(ld.Cols[ci].Data[row*w:(row+1)*w], v)
	}
	blank := func(t *schema.Table, n int) *exec.TableLoad {
		ld := &exec.TableLoad{Rows: n, FKs: map[int][]uint32{}}
		for _, col := range t.Columns {
			ld.Cols = append(ld.Cols, exec.ColData{Width: col.EncodedWidth(), Data: make([]byte, n*col.EncodedWidth())})
		}
		return ld
	}

	// Drugs.
	drugs, _ := sch.Lookup("Drugs")
	nDrugs := cards["Drugs"]
	dl := blank(drugs, nDrugs)
	for i := 0; i < nDrugs; i++ {
		if err := set(drugs, dl, i, "property", schema.CharVal(drugNames[i%len(drugNames)]+fmt.Sprintf(" form %d", i))); err != nil {
			return nil, err
		}
		if err := set(drugs, dl, i, "comment", schema.CharVal(fmt.Sprintf("batch %04d trial notes", rng.Intn(10000)))); err != nil {
			return nil, err
		}
	}
	ds.Load[drugs.Index] = dl

	// Doctors: the hidden name carries the graduated domain value.
	docs, _ := sch.Lookup("Doctors")
	nDocs := cards["Doctors"]
	dol := blank(docs, nDocs)
	for i := 0; i < nDocs; i++ {
		if err := set(docs, dol, i, "specialty", schema.CharVal(specialties[rng.Intn(len(specialties))])); err != nil {
			return nil, err
		}
		if err := set(docs, dol, i, "description", schema.CharVal(fmt.Sprintf("practice since %d", 1970+rng.Intn(35)))); err != nil {
			return nil, err
		}
		if err := set(docs, dol, i, "firstname", schema.CharVal(firstnames[rng.Intn(len(firstnames))])); err != nil {
			return nil, err
		}
		if err := set(docs, dol, i, "name", schema.CharVal(PadValue(rng.Intn(Domain)))); err != nil {
			return nil, err
		}
	}
	ds.Load[docs.Index] = dol

	// Patients: zipcode carries the graduated domain value.
	pats, _ := sch.Lookup("Patients")
	nPats := cards["Patients"]
	pl := blank(pats, nPats)
	pl.FKs[docs.Index] = make([]uint32, nPats)
	for i := 0; i < nPats; i++ {
		pl.FKs[docs.Index][i] = uint32(rng.Intn(nDocs))
		vals := map[string]schema.Value{
			"firstname":     schema.CharVal(firstnames[rng.Intn(len(firstnames))]),
			"name":          schema.CharVal(surnames[rng.Intn(len(surnames))] + fmt.Sprintf("%03d", i%1000)),
			"ssn":           schema.CharVal(fmt.Sprintf("%010d", rng.Intn(1_000_000_000))),
			"address":       schema.CharVal(fmt.Sprintf("%d rue de la Gare", 1+rng.Intn(200))),
			"birthdate":     schema.CharVal(fmt.Sprintf("19%02d-%02d-%02d", rng.Intn(90), 1+rng.Intn(12), 1+rng.Intn(28))),
			"bodymassindex": schema.FloatVal(15 + 25*rng.Float64()),
			"age":           schema.IntVal(int64(rng.Intn(100))),
			"sexe":          schema.CharVal([]string{"M", "F"}[rng.Intn(2)]),
			"city":          schema.CharVal(cities[rng.Intn(len(cities))]),
			"zipcode":       schema.CharVal(fmt.Sprintf("%06d", rng.Intn(Domain))),
		}
		for name, v := range vals {
			if err := set(pats, pl, i, name, v); err != nil {
				return nil, err
			}
		}
	}
	ds.Load[pats.Index] = pl

	// Measurements.
	meas, _ := sch.Lookup("Measurements")
	nMeas := cards["Measurements"]
	ml := blank(meas, nMeas)
	ml.FKs[pats.Index] = make([]uint32, nMeas)
	ml.FKs[drugs.Index] = make([]uint32, nMeas)
	for i := 0; i < nMeas; i++ {
		ml.FKs[pats.Index][i] = uint32(rng.Intn(nPats))
		ml.FKs[drugs.Index][i] = uint32(rng.Intn(nDrugs))
		if err := set(meas, ml, i, "time", schema.CharVal(fmt.Sprintf("2006-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28)))); err != nil {
			return nil, err
		}
		if err := set(meas, ml, i, "measurement", schema.CharVal(fmt.Sprintf("%d.%d", 4+rng.Intn(12), rng.Intn(10)))); err != nil {
			return nil, err
		}
		if err := set(meas, ml, i, "comment", schema.CharVal(fmt.Sprintf("glycemia reading %06d", i))); err != nil {
			return nil, err
		}
	}
	ds.Load[meas.Index] = ml
	return ds, nil
}

// MedicalZipSelValue returns the literal x such that `zipcode < x`
// selects fraction sel of Patients (zipcodes are uniform over Domain).
func MedicalZipSelValue(sel float64) string {
	v := int(sel * Domain)
	if v < 0 {
		v = 0
	}
	if v > Domain {
		v = Domain
	}
	return fmt.Sprintf("%06d", v)
}
