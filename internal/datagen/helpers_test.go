package datagen

import (
	"testing"

	"ghostdb/internal/exec"
	"ghostdb/internal/flash"
	"ghostdb/internal/query"
	"ghostdb/internal/ref"
	"ghostdb/internal/schema"
	"ghostdb/internal/sqlparse"
)

func defaultTestOpts() exec.Options {
	return exec.Options{FlashParams: flash.Params{
		PageSize: 2048, PagesPerBlock: 16, Blocks: 8192, ReserveBlocks: 4}}
}

func refRows(t *testing.T, ds *Dataset, re *ref.Engine, sql string) []schema.Row {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.Resolve(ds.Sch, stmt.(*sqlparse.Select), sql)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := re.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}
