// Package datagen produces the two datasets of the paper's evaluation
// (§6.2): the synthetic uniform dataset over the tree schema of Figure 3
// (T0 … T12, 10M/1M/1M/100K/100K tuples at scale 1.0), and a synthetic
// stand-in for the sanitized diabetes medical dataset (Doctors, Patients,
// Measurements, Drugs at 4.5K/14K/1.3M/45 tuples), which we cannot obtain
// — the substitution preserves the schema, the cardinalities and the
// Measurements/Patients ≈ 92 ratio that drive Figure 16.
//
// Attribute values are uniform zero-padded decimals over a domain of 1000
// distinct values, so range predicates hit any target selectivity with
// 0.001 granularity — exactly how the evaluation sweeps sV and sH.
package datagen

import (
	"fmt"
	"math/rand"

	"ghostdb/internal/exec"
	"ghostdb/internal/ref"
	"ghostdb/internal/schema"
)

// Domain is the number of distinct values per generated attribute.
const Domain = 1000

// Dataset is a generated database ready for loading.
type Dataset struct {
	Sch  *schema.Schema
	Load map[int]*exec.TableLoad
	Rows map[string]int
}

// PadWidth is the width of generated char attributes.
const PadWidth = 10

// PadValue renders domain value v as a zero-padded char(10) literal, the
// form used by generated attributes ("0000000042").
func PadValue(v int) string { return fmt.Sprintf("%0*d", PadWidth, v) }

// SelValue returns the literal x such that `attr < x` selects fraction
// sel of a uniform attribute.
func SelValue(sel float64) string {
	v := int(sel * Domain)
	if v < 0 {
		v = 0
	}
	if v > Domain {
		v = Domain
	}
	return PadValue(v)
}

// SyntheticDefs returns the Figure 3 schema: five visible and five hidden
// char(10) attributes per table, hidden foreign keys.
func SyntheticDefs() []schema.TableDef {
	attrs := func() []schema.Column {
		var cols []schema.Column
		for i := 1; i <= 5; i++ {
			cols = append(cols, schema.Column{Name: fmt.Sprintf("v%d", i), Kind: schema.KindChar, Width: PadWidth})
		}
		for i := 1; i <= 5; i++ {
			cols = append(cols, schema.Column{Name: fmt.Sprintf("h%d", i), Kind: schema.KindChar, Width: PadWidth, Hidden: true})
		}
		return cols
	}
	return []schema.TableDef{
		{Name: "T0", Columns: attrs(), Refs: []schema.Ref{
			{FKColumn: "fk1", Child: "T1", Hidden: true},
			{FKColumn: "fk2", Child: "T2", Hidden: true}}},
		{Name: "T1", Columns: attrs(), Refs: []schema.Ref{
			{FKColumn: "fk11", Child: "T11", Hidden: true},
			{FKColumn: "fk12", Child: "T12", Hidden: true}}},
		{Name: "T2", Columns: attrs()},
		{Name: "T11", Columns: attrs()},
		{Name: "T12", Columns: attrs()},
	}
}

// SyntheticCardinalities returns the paper's table sizes scaled by sf,
// with a small floor so tiny test scales stay meaningful.
func SyntheticCardinalities(sf float64) map[string]int {
	base := map[string]int{"T0": 10_000_000, "T1": 1_000_000, "T2": 1_000_000, "T11": 100_000, "T12": 100_000}
	out := make(map[string]int, len(base))
	for k, v := range base {
		n := int(float64(v) * sf)
		if n < 20 {
			n = 20
		}
		out[k] = n
	}
	return out
}

// Synthetic generates the uniform synthetic dataset at scale sf.
func Synthetic(sf float64, seed int64) (*Dataset, error) {
	sch, err := schema.New(SyntheticDefs())
	if err != nil {
		return nil, err
	}
	cards := SyntheticCardinalities(sf)
	return generate(sch, cards, seed)
}

// generate fills every table with uniform attribute values and uniform
// foreign keys.
func generate(sch *schema.Schema, cards map[string]int, seed int64) (*Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{Sch: sch, Load: map[int]*exec.TableLoad{}, Rows: cards}
	for _, t := range sch.Tables {
		n, ok := cards[t.Name]
		if !ok {
			return nil, fmt.Errorf("datagen: no cardinality for %q", t.Name)
		}
		ld := &exec.TableLoad{Rows: n, FKs: map[int][]uint32{}}
		for _, col := range t.Columns {
			w := col.EncodedWidth()
			data := make([]byte, n*w)
			for i := 0; i < n; i++ {
				v := genValue(rng, col)
				if err := schema.EncodeValue(data[i*w:(i+1)*w], v); err != nil {
					return nil, err
				}
			}
			ld.Cols = append(ld.Cols, exec.ColData{Width: w, Data: data})
		}
		for _, ci := range t.Children() {
			child := sch.Tables[ci]
			cn := cards[child.Name]
			fk := make([]uint32, n)
			for i := range fk {
				fk[i] = uint32(rng.Intn(cn))
			}
			ld.FKs[ci] = fk
		}
		ds.Load[t.Index] = ld
	}
	return ds, nil
}

func genValue(rng *rand.Rand, col schema.Column) schema.Value {
	switch col.Kind {
	case schema.KindInt:
		return schema.IntVal(int64(rng.Intn(Domain)))
	case schema.KindFloat:
		return schema.FloatVal(float64(rng.Intn(Domain)) + 0.5)
	default:
		v := rng.Intn(Domain)
		if col.Width < PadWidth {
			return schema.CharVal(fmt.Sprintf("%0*d", col.Width, v%pow10(col.Width)))
		}
		return schema.CharVal(PadValue(v))
	}
}

func pow10(n int) int {
	p := 1
	for i := 0; i < n && i < 9; i++ {
		p *= 10
	}
	return p
}

// RefEngine decodes the generated load into a naive reference engine for
// differential testing.
func (d *Dataset) RefEngine() (*ref.Engine, error) {
	e := ref.New(d.Sch)
	for _, t := range d.Sch.Tables {
		ld := d.Load[t.Index]
		rows := make([]schema.Row, ld.Rows)
		for i := 0; i < ld.Rows; i++ {
			row := make(schema.Row, len(t.Columns))
			for ci, col := range t.Columns {
				w := col.EncodedWidth()
				v, err := schema.DecodeValue(ld.Cols[ci].Data[i*w:(i+1)*w], col.Kind)
				if err != nil {
					return nil, err
				}
				row[ci] = v
			}
			rows[i] = row
		}
		e.Load(t.Index, rows, ld.FKs)
	}
	return e, nil
}

// NewDB builds and loads an exec.DB over this dataset.
func (d *Dataset) NewDB(opts exec.Options) (*exec.DB, error) {
	db, err := exec.NewDB(d.Sch, opts)
	if err != nil {
		return nil, err
	}
	if err := db.Load(d.Load); err != nil {
		return nil, err
	}
	return db, nil
}

// ForestDefs returns nTrees independent two-table trees S<k> -> C<k>,
// each with the synthetic attribute set (five visible + five hidden
// char(10) columns, hidden foreign key). Independent trees are the unit
// cross-token sharding places: a k-tree forest spread over k tokens
// gives every token its own private workload.
func ForestDefs(nTrees int) []schema.TableDef {
	attrs := func() []schema.Column {
		var cols []schema.Column
		for i := 1; i <= 5; i++ {
			cols = append(cols, schema.Column{Name: fmt.Sprintf("v%d", i), Kind: schema.KindChar, Width: PadWidth})
		}
		for i := 1; i <= 5; i++ {
			cols = append(cols, schema.Column{Name: fmt.Sprintf("h%d", i), Kind: schema.KindChar, Width: PadWidth, Hidden: true})
		}
		return cols
	}
	var defs []schema.TableDef
	for k := 0; k < nTrees; k++ {
		defs = append(defs,
			schema.TableDef{Name: fmt.Sprintf("S%d", k), Columns: attrs(), Refs: []schema.Ref{
				{FKColumn: fmt.Sprintf("fkc%d", k), Child: fmt.Sprintf("C%d", k), Hidden: true}}},
			schema.TableDef{Name: fmt.Sprintf("C%d", k), Columns: attrs()},
		)
	}
	return defs
}

// ForestCardinalities scales each tree's sizes by sf (roots 200K, leaves
// 20K at sf = 1, floored for tiny test scales).
func ForestCardinalities(sf float64, nTrees int) map[string]int {
	out := make(map[string]int, 2*nTrees)
	scale := func(base int) int {
		n := int(float64(base) * sf)
		if n < 20 {
			n = 20
		}
		return n
	}
	for k := 0; k < nTrees; k++ {
		out[fmt.Sprintf("S%d", k)] = scale(200_000)
		out[fmt.Sprintf("C%d", k)] = scale(20_000)
	}
	return out
}

// Forest generates the nTrees-tree dataset at scale sf.
func Forest(sf float64, seed int64, nTrees int) (*Dataset, error) {
	sch, err := schema.New(ForestDefs(nTrees))
	if err != nil {
		return nil, err
	}
	return generate(sch, ForestCardinalities(sf, nTrees), seed)
}
