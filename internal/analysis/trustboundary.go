package analysis

import (
	"go/ast"
	"go/types"
)

// TrustBoundary enforces the paper's confidentiality invariant: hidden
// data lives on the secure token and nothing derived from it may become
// observable to the untrusted side. Three concrete rules:
//
//  1. Untrusted-side packages must not mention a //ghostdb:hidden type
//     at all — not in a value, a field, a parameter or a conversion.
//  2. No expression that mentions hidden data (including derived
//     scalars such as len(hiddenRows) — exactly what volume-based
//     attacks exploit) may reach a fmt/log/errors formatting call
//     anywhere in the module: error strings and log lines end up on the
//     untrusted side.
//  3. No call into an untrusted-side package may carry a hidden-derived
//     argument, with a small intraprocedural taint walk chasing local
//     assignments.
var TrustBoundary = &Analyzer{
	Name: "trustboundary",
	Doc:  "hidden-data types must never flow to the untrusted side, nor into error/log strings",
	Run:  runTrustBoundary,
}

func runTrustBoundary(pass *Pass) error {
	hidden := pass.Prog.hiddenTypes()
	if len(hidden) == 0 {
		return nil
	}
	if contains(pass.Cfg.UntrustedPkgs, pass.Pkg.Path) {
		reportHiddenMentions(pass, hidden)
		return nil
	}
	reportHiddenSinks(pass, hidden)
	return nil
}

// reportHiddenMentions flags every top-most expression in an untrusted
// package whose type involves a hidden type.
func reportHiddenMentions(pass *Pass, hidden map[*types.TypeName]bool) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			tv, ok := info.Types[e]
			if !ok {
				return true
			}
			if typeIsHidden(tv.Type, hidden) {
				pass.Reportf(e.Pos(), "hidden type %s crosses the trust boundary into untrusted-side package %s",
					tv.Type, pass.Pkg.Path)
				return false // one report per outermost mention
			}
			return true
		})
	}
}

// reportHiddenSinks flags hidden-derived expressions reaching format/log
// sinks (rule 2) or untrusted-package callees (rule 3).
func reportHiddenSinks(pass *Pass, hidden map[*types.TypeName]bool) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		declassified := lineMarkers(pass.Prog.Fset, f, MarkPublic)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			tainted := taintedVars(info, fd.Body, hidden)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(info, call)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				if declassified[pass.Prog.Fset.Position(call.Pos()).Line] {
					return true
				}
				pkgPath := callee.Pkg().Path()
				switch {
				case pkgPath == "fmt" || pkgPath == "log" || pkgPath == "errors":
					for _, arg := range call.Args {
						if exprMentionsHidden(info, arg, hidden, tainted) {
							pass.Reportf(arg.Pos(),
								"hidden data reaches %s.%s: error/log strings are observable by the untrusted side",
								pkgPath, callee.Name())
						}
					}
				case contains(pass.Cfg.UntrustedPkgs, pkgPath):
					for _, arg := range call.Args {
						// A function literal is code the callee runs, not
						// data it receives; what the callee can observe of
						// it is covered by the other rules.
						if _, isLit := ast.Unparen(arg).(*ast.FuncLit); isLit {
							continue
						}
						if exprMentionsHidden(info, arg, hidden, tainted) {
							pass.Reportf(arg.Pos(),
								"hidden-derived argument crosses the trust boundary into %s.%s",
								pkgPath, callee.Name())
						}
					}
				}
				return true
			})
		}
	}
}

// calleeFunc resolves the static callee of a call, or nil for dynamic
// calls and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
