package analysis

// Config names the packages and types each rule keys on. The defaults
// describe the real GhostDB module; the fixture corpus under testdata/
// substitutes its own miniature module so the analyzers themselves stay
// free of hard-coded paths.
type Config struct {
	// ModulePath overrides the module path when no go.mod is present at
	// the load root (fixture trees).
	ModulePath string

	// UntrustedPkgs are the untrusted-side packages: hidden-data types
	// must never be mentioned there, and calls into them must never
	// carry hidden-derived arguments.
	UntrustedPkgs []string

	// FlashPkg and DeviceType identify the raw flash device; its
	// DeviceDataMethods (the data-path operations that move or remap
	// bytes) may only be called from MeteredPkgs, the storage substrate
	// whose readers and writers are what the cost accounting charges.
	FlashPkg          string
	DeviceType        string
	DeviceDataMethods []string
	MeteredPkgs       []string

	// BusPkg, ChannelType and TransferMethods identify the metered link;
	// only BusCallerPkgs may invoke a raw transfer (single or batched),
	// so no operator can move bytes across the boundary outside the
	// audited path.
	BusPkg          string
	ChannelType     string
	TransferMethods []string
	BusCallerPkgs   []string

	// ExecPkg scopes the grantsize and slotdiscipline rules to the
	// query-execution package.
	ExecPkg string
	// GrantSizeMin is the smallest constant make() size/capacity (in
	// elements) that grantsize flags inside ExecPkg; tiny fixed scratch
	// buffers below it are allowed.
	GrantSizeMin int64

	// TokenOwnerTypes are the ExecPkg types whose TokenHotFields hold
	// per-token secure state (flash device, hidden images); touching
	// those fields requires an admitted session.
	TokenOwnerTypes []string
	TokenHotFields  []string
	// SchedPkg, SessionType and ExclusiveMethod identify the admission
	// scheduler: a function literal passed to Session.Exclusive runs
	// with the token slot held.
	SchedPkg        string
	SessionType     string
	ExclusiveMethod string

	// PrefetchMethods are the method names that arm a read-ahead window
	// (the depth is their first argument); prefetchdepth requires that
	// depth to be a constant or a field of ExecPkg's BindingType.
	PrefetchMethods []string
	// BindingType is the ExecPkg type whose fields are all derived from
	// the admission grant (the per-session operator binding); selectors
	// on it are legitimate read-ahead depths.
	BindingType string

	// DocPkgs are the packages whose exported identifiers exportdoc
	// requires doc comments on.
	DocPkgs []string
}

// DefaultConfig returns the rule configuration for the GhostDB module
// itself.
func DefaultConfig() *Config {
	return &Config{
		UntrustedPkgs: []string{
			"ghostdb/internal/untrusted",
			"ghostdb/internal/cache",
			"ghostdb/internal/pagecache",
			"ghostdb/internal/server",
			"ghostdb/internal/metrics",
			"ghostdb/internal/obs",
		},
		FlashPkg:          "ghostdb/internal/flash",
		DeviceType:        "Device",
		DeviceDataMethods: []string{"Read", "ReadFull", "ReadRange", "ReadMulti", "Write", "Alloc", "Free"},
		MeteredPkgs: []string{
			"ghostdb/internal/flash",
			"ghostdb/internal/store",
			"ghostdb/internal/btree",
			"ghostdb/internal/bus",
		},
		BusPkg:          "ghostdb/internal/bus",
		ChannelType:     "Channel",
		TransferMethods: []string{"Transfer", "TransferBatch"},
		BusCallerPkgs: []string{
			"ghostdb/internal/untrusted",
			"ghostdb/internal/exec",
		},
		ExecPkg:         "ghostdb/internal/exec",
		GrantSizeMin:    8,
		TokenOwnerTypes: []string{"Token", "DB"},
		TokenHotFields:  []string{"Dev", "Hidden"},
		SchedPkg:        "ghostdb/internal/sched",
		SessionType:     "Session",
		ExclusiveMethod: "Exclusive",
		PrefetchMethods: []string{"SetReadAhead"},
		BindingType:     "Binding",
		DocPkgs: []string{
			"ghostdb",
			"ghostdb/internal/delta",
			"ghostdb/internal/shard",
			"ghostdb/internal/analysis",
			"ghostdb/internal/analysis/analysistest",
			"ghostdb/internal/obs",
			"ghostdb/internal/pagecache",
		},
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
