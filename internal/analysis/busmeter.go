package analysis

import (
	"go/ast"
)

// BusMeter enforces byte accounting: every observable transfer is
// counted exactly once, by the layer whose job that is.
//
//   - The raw flash device's data-path methods (Read/Write/Alloc/Free
//     and friends) may only be called from the metered storage substrate
//     (internal/store, internal/btree, internal/bus, internal/flash
//     itself). An operator that touched the device directly would move
//     bytes the cost model, and therefore the leak analysis, never sees.
//   - The bus channel's raw Transfer may only be called from the
//     packages that implement the audited protocol (internal/untrusted
//     for Down traffic, internal/exec for the single query-text Up
//     record); anything else could ship bytes across the trust boundary
//     outside the audit trail.
var BusMeter = &Analyzer{
	Name: "busmeter",
	Doc:  "flash reads and bus transfers must go through the metered/audited layers",
	Run:  runBusMeter,
}

func runBusMeter(pass *Pass) error {
	cfg := pass.Cfg
	info := pass.Pkg.Info
	checkDevice := !contains(cfg.MeteredPkgs, pass.Pkg.Path)
	checkBus := !contains(cfg.BusCallerPkgs, pass.Pkg.Path) && pass.Pkg.Path != cfg.BusPkg
	if !checkDevice && !checkBus {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := info.TypeOf(sel.X)
			if recv == nil {
				return true
			}
			if checkDevice && isPkgType(recv, cfg.FlashPkg, cfg.DeviceType) &&
				contains(cfg.DeviceDataMethods, sel.Sel.Name) {
				pass.Reportf(call.Pos(),
					"raw flash %s.%s bypasses the metered storage layer; go through the store/btree readers",
					cfg.DeviceType, sel.Sel.Name)
			}
			if checkBus && isPkgType(recv, cfg.BusPkg, cfg.ChannelType) &&
				contains(cfg.TransferMethods, sel.Sel.Name) {
				pass.Reportf(call.Pos(),
					"raw bus %s.%s outside the audited protocol layers moves unaccounted bytes across the trust boundary",
					cfg.ChannelType, sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
