package analysis

import (
	"go/ast"
	"go/types"
)

// PrefetchDepth enforces the read-ahead sizing rule: the depth handed
// to a prefetch entry point (store.SeqReader.SetReadAhead and any other
// method named in Config.PrefetchMethods) must be a compile-time
// constant or derive from the session's operator Binding — whose every
// field is computed from the admission grant, a public quantity. A
// depth computed from data (a match count, a hidden cardinality, a
// result length) would modulate the shape of flash traffic with hidden
// state, re-opening exactly the side channel the grant discipline
// closed.
//
// Accepted depth expressions: integer literals, named constants,
// selectors on a Binding-typed value (b.PrefetchPages), and
// parenthesized, binary or builtin min/max combinations of those.
var PrefetchDepth = &Analyzer{
	Name: "prefetchdepth",
	Doc:  "read-ahead depths must be constants or grant-derived Binding fields",
	Run:  runPrefetchDepth,
}

func runPrefetchDepth(pass *Pass) error {
	cfg := pass.Cfg
	if len(cfg.PrefetchMethods) == 0 {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !contains(cfg.PrefetchMethods, sel.Sel.Name) || len(call.Args) == 0 {
				return true
			}
			if info.TypeOf(sel.X) == nil {
				return true // a package selector, not a method call
			}
			if !grantDerivedDepth(pass, call.Args[0]) {
				pass.Reportf(call.Args[0].Pos(),
					"read-ahead depth must be a constant or a grant-derived %s field; a data-dependent depth modulates flash traffic with hidden state",
					cfg.BindingType)
			}
			return true
		})
	}
	return nil
}

// grantDerivedDepth reports whether e is an allowed depth expression:
// constant, Binding field, or a paren/binary/min/max composition of
// allowed parts.
func grantDerivedDepth(pass *Pass, e ast.Expr) bool {
	cfg := pass.Cfg
	info := pass.Pkg.Info
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return true // any constant expression, named or literal
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.Ident:
		_, isConst := info.Uses[e].(*types.Const)
		return isConst
	case *ast.SelectorExpr:
		return isPkgType(info.TypeOf(e.X), cfg.ExecPkg, cfg.BindingType)
	case *ast.BinaryExpr:
		return grantDerivedDepth(pass, e.X) && grantDerivedDepth(pass, e.Y)
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || (id.Name != "min" && id.Name != "max") {
			return false
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return false
		}
		for _, a := range e.Args {
			if !grantDerivedDepth(pass, a) {
				return false
			}
		}
		return len(e.Args) > 0
	}
	return false
}
