package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Load parses and type-checks every non-test package under root (a
// module directory) and returns the checked Program. It is a miniature,
// dependency-free stand-in for go/packages: module packages are checked
// in topological order against each other, and imports that leave the
// module (the standard library) resolve through the compiler's source
// importer, so the loader needs neither export data nor a network.
func Load(root string, cfg *Config) (*Program, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(abs, cfg)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	parsed := map[string]*rawPkg{} // import path -> sources
	if err := walkPackages(abs, abs, module, fset, parsed); err != nil {
		return nil, err
	}
	order, err := topoSort(parsed, module)
	if err != nil {
		return nil, err
	}

	prog := &Program{Fset: fset, ByPath: map[string]*Package{}, Module: module}
	checked := map[string]*types.Package{}
	imp := &moduleImporter{
		module:   module,
		checked:  checked,
		fallback: importer.ForCompiler(fset, "source", nil),
	}
	for _, path := range order {
		raw := parsed[path]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		tconf := types.Config{Importer: imp}
		tpkg, err := tconf.Check(path, fset, raw.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
		}
		checked[path] = tpkg
		pkg := &Package{Path: path, Files: raw.files, Types: tpkg, Info: info}
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.ByPath[path] = pkg
	}
	return prog, nil
}

type rawPkg struct {
	dir     string
	files   []*ast.File
	imports []string
}

// modulePath reads the module path from root/go.mod, falling back to
// cfg.ModulePath for fixture trees without one.
func modulePath(root string, cfg *Config) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		if cfg != nil && cfg.ModulePath != "" {
			return cfg.ModulePath, nil
		}
		return "", fmt.Errorf("analysis: no go.mod under %s and no ModulePath configured", root)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// walkPackages recursively parses every package directory below dir.
func walkPackages(root, dir, module string, fset *token.FileSet, out map[string]*rawPkg) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []*ast.File
	var imports []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "vendor" {
				continue
			}
			if err := walkPackages(root, filepath.Join(dir, name), module, fset, out); err != nil {
				return err
			}
			continue
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return err
			}
			imports = append(imports, p)
		}
	}
	if len(files) == 0 {
		return nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return err
	}
	path := module
	if rel != "." {
		path = module + "/" + filepath.ToSlash(rel)
	}
	out[path] = &rawPkg{dir: dir, files: files, imports: imports}
	return nil
}

// topoSort orders the module packages so each is checked after its
// in-module dependencies.
func topoSort(pkgs map[string]*rawPkg, module string) ([]string, error) {
	const (
		unseen = iota
		visiting
		done
	)
	state := map[string]int{}
	var order []string
	var visit func(path string, stack []string) error
	visit = func(path string, stack []string) error {
		switch state[path] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle: %s", strings.Join(append(stack, path), " -> "))
		}
		state[path] = visiting
		raw := pkgs[path]
		deps := append([]string(nil), raw.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if _, ok := pkgs[dep]; !ok {
				continue // outside the module (stdlib)
			}
			if err := visit(dep, append(stack, path)); err != nil {
				return err
			}
		}
		state[path] = done
		order = append(order, path)
		return nil
	}
	var all []string
	for p := range pkgs {
		all = append(all, p)
	}
	sort.Strings(all)
	for _, p := range all {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves in-module imports to the packages this load
// already checked (so type identity is shared across the program) and
// delegates everything else to the source importer.
type moduleImporter struct {
	module   string
	checked  map[string]*types.Package
	fallback types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.module || strings.HasPrefix(path, m.module+"/") {
		if pkg, ok := m.checked[path]; ok {
			return pkg, nil
		}
		return nil, fmt.Errorf("analysis: module package %s not yet checked (import cycle?)", path)
	}
	return m.fallback.Import(path)
}
