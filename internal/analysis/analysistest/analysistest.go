// Package analysistest replays analyzer fixtures: it loads a miniature
// module from a testdata directory, runs a set of analyzers over it,
// and checks the reported diagnostics against "want" annotations in the
// fixture sources. It is a standard-library stand-in for
// golang.org/x/tools/go/analysis/analysistest, adapted to the
// module-at-once loader in internal/analysis.
//
// A want annotation is a line comment on the line the diagnostic is
// expected on, naming the analyzer and a regular expression the
// diagnostic message must match:
//
//	err := dev.Read(p, buf) // want busmeter:"bypasses the metered storage layer"
//
// One comment may carry several analyzer:"re" pairs when different
// rules fire on the same line, and the pattern may be backquoted
// instead of double-quoted. Annotations naming analyzers outside the
// running set are ignored, so per-analyzer test functions can replay
// one shared fixture tree without seeing each other's expectations.
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"ghostdb/internal/analysis"
)

// wantRx matches one analyzer:"regexp" (or analyzer:`regexp`) pair at
// the start of the unparsed remainder of a want comment.
var wantRx = regexp.MustCompile(`^([a-zA-Z0-9_-]+):("(?:[^"\\]|\\.)*"` + "|`[^`]*`)")

// want is one expectation: analyzer a must report a message matching rx
// at file:line.
type want struct {
	file     string
	line     int
	analyzer string
	rx       *regexp.Regexp
	raw      string
	matched  bool
}

// Run loads the fixture module at root using cfg, applies the
// analyzers, and fails t once per unexpected diagnostic and once per
// want annotation no diagnostic matched.
func Run(t *testing.T, root string, cfg *analysis.Config, analyzers ...*analysis.Analyzer) {
	t.Helper()
	prog, err := analysis.Load(root, cfg)
	if err != nil {
		t.Fatalf("analysistest: load %s: %v", root, err)
	}
	RunProgram(t, prog, cfg, analyzers...)
}

// RunProgram is Run for an already-loaded program, letting a test suite
// share one type-checked load across per-analyzer test functions.
func RunProgram(t *testing.T, prog *analysis.Program, cfg *analysis.Config, analyzers ...*analysis.Analyzer) {
	t.Helper()
	running := map[string]bool{}
	for _, a := range analyzers {
		running[a.Name] = true
	}
	wants := collectWants(t, prog, running)
	diags, err := analysis.Run(prog, cfg, analyzers)
	if err != nil {
		t.Fatalf("analysistest: run: %v", err)
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %s diagnostic matched %q", w.file, w.line, w.analyzer, w.raw)
		}
	}
}

// claim marks the first open expectation the diagnostic satisfies.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.analyzer != d.Analyzer || !w.rx.MatchString(d.Message) {
			continue
		}
		w.matched = true
		return true
	}
	return false
}

// collectWants parses every want annotation in the program's sources,
// keeping only those that name an analyzer in the running set.
func collectWants(t *testing.T, prog *analysis.Program, running map[string]bool) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, "//") {
						continue // block comments cannot carry wants
					}
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
						m := wantRx.FindStringSubmatch(rest)
						if m == nil {
							t.Fatalf("%s: malformed want annotation near %q", pos, rest)
						}
						pat, err := strconv.Unquote(m[2])
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, m[2], err)
						}
						rx, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						if running[m[1]] {
							wants = append(wants, &want{
								file:     pos.Filename,
								line:     pos.Line,
								analyzer: m[1],
								rx:       rx,
								raw:      pat,
							})
						}
						rest = rest[len(m[0]):]
					}
				}
			}
		}
	}
	return wants
}
