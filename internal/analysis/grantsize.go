package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// GrantSize enforces the RAM-grant discipline inside the execution
// package: buffers allocated on the query path must size themselves
// from the admission grant (a ram.Plan / Binding derived value), never
// from a hard-coded literal. A literal-sized buffer silently consumes
// secure RAM the admission floor never accounted for — exactly the bug
// class that reintroduces mid-run exhaustion under crowded budgets.
//
// Concretely: inside ExecPkg, any make() whose size or capacity is a
// compile-time constant of GrantSizeMin elements or more is flagged.
// Tiny fixed scratch (a 4-byte length prefix, a pair of cursors) is
// allowed below the threshold, and genuinely data-independent buffers
// can be annotated //ghostdb:fixedsize with a justification.
var GrantSize = &Analyzer{
	Name: "grantsize",
	Doc:  "exec-path make() sizes must derive from the admission grant, not literals",
	Run:  runGrantSize,
}

func runGrantSize(pass *Pass) error {
	if pass.Pkg.Path != pass.Cfg.ExecPkg {
		return nil
	}
	info := pass.Pkg.Info
	min := pass.Cfg.GrantSizeMin
	for _, f := range pass.Pkg.Files {
		exempt := lineMarkers(pass.Prog.Fset, f, MarkFixedSize)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" || len(call.Args) < 2 {
				return true
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if exempt[pass.Prog.Fset.Position(call.Pos()).Line] {
				return true
			}
			for _, arg := range call.Args[1:] {
				tv, ok := info.Types[arg]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
					continue
				}
				v, ok := constant.Int64Val(tv.Value)
				if !ok || v < min {
					continue
				}
				pass.Reportf(arg.Pos(),
					"make with constant size %d on the exec path: derive the capacity from the session's RAM grant (ram.Plan/Binding) or annotate //%s",
					v, MarkFixedSize)
			}
			return true
		})
	}
	return nil
}
