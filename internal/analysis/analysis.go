// Package analysis is GhostDB's static security linter: a suite of
// analyzers that machine-check the invariants the paper argues
// informally — hidden data never crosses the trust boundary, every
// flash byte is metered, secure-RAM allocations derive from admission
// grants, and token state is only touched under an admitted session.
//
// The suite is deliberately shaped like golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic), but is built on the standard library
// alone (go/parser + go/types with the source importer), so the linter
// compiles in a hermetic environment with no module downloads. The
// cmd/ghostdb-lint binary drives it with go-vet-style output, and the
// analysistest subpackage replays the fixture corpus under testdata/.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one static rule. Run is invoked once per loaded package
// with a fresh Pass; it reports findings through the Pass and returns an
// error only for internal failures (a finding is not an error).
type Analyzer struct {
	// Name is the short rule identifier shown in diagnostics.
	Name string
	// Doc is a one-paragraph description of what the rule enforces.
	Doc string
	// Run applies the rule to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding: a position, the rule that fired, and a
// human-readable message.
type Diagnostic struct {
	// Pos locates the finding in the analyzed source.
	Pos token.Position
	// Analyzer is the name of the rule that produced the finding.
	Analyzer string
	// Message explains the violation.
	Message string
}

// String renders the finding in go-vet style: position, rule, message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package plus the module-wide
// context (the Program and the Config).
type Pass struct {
	// Prog is the fully loaded and type-checked module.
	Prog *Program
	// Cfg holds the package paths and type names the rules key on.
	Cfg *Config
	// Pkg is the package under analysis.
	Pkg *Package

	analyzer string
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression in the package under
// analysis, or nil when the checker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// Package is one parsed and type-checked package of the module.
type Package struct {
	// Path is the full import path.
	Path string
	// Files are the package's parsed non-test sources.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the checker's expression, definition and use maps.
	Info *types.Info
}

// Program is a loaded module: every package parsed, type-checked and
// topologically ordered, sharing one FileSet.
type Program struct {
	// Fset positions every parsed file.
	Fset *token.FileSet
	// Pkgs lists the module's packages in dependency order.
	Pkgs []*Package
	// ByPath indexes Pkgs by import path.
	ByPath map[string]*Package
	// Module is the module path from go.mod.
	Module string

	hiddenOnce sync.Once
	hidden     map[*types.TypeName]bool
}

// Run applies each analyzer to each package of the program and returns
// every finding sorted by position.
func Run(prog *Program, cfg *Config, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Pkgs {
			pass := &Pass{
				Prog:     prog,
				Cfg:      cfg,
				Pkg:      pkg,
				analyzer: a.Name,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		TrustBoundary,
		BusMeter,
		GrantSize,
		SlotDiscipline,
		PrefetchDepth,
		ExportDoc,
	}
}

// ByName resolves a comma-separated list of analyzer names against the
// suite; an empty list selects every analyzer.
func ByName(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
