package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SlotDiscipline enforces session admission around token state: the
// flash device and the hidden images of a Token (or of the DB's
// token-0 aliases) may only be touched while the token's execution slot
// is held by an admitted sched.Session.
//
// A function "holds the slot" when it is (a) a function literal passed
// to Session.Exclusive, (b) annotated //ghostdb:requires-slot (meaning
// its callers must hold it — and calling such a function from a
// non-holder is itself a violation), (c) a method of a type annotated
// //ghostdb:requires-slot, or (d) part of the bulk-load path, annotated
// //ghostdb:load-phase, which runs single-threaded before the database
// accepts queries. Exported functions may not simply assume the slot:
// an exported entry point annotated requires-slot is flagged, because
// outside callers have no session to hold.
var SlotDiscipline = &Analyzer{
	Name: "slotdiscipline",
	Doc:  "token flash/hidden state may only be touched under an admitted session",
	Run:  runSlotDiscipline,
}

func runSlotDiscipline(pass *Pass) error {
	if pass.Pkg.Path != pass.Cfg.ExecPkg {
		return nil
	}
	info := pass.Pkg.Info

	markedTypes := markedTypeNames(pass, MarkRequiresSlot)
	loadTypes := markedTypeNames(pass, MarkLoadPhase)
	slotFuncs := map[*types.Func]bool{}
	exemptFuncs := map[*types.Func]bool{} // requires-slot or load-phase

	// Pass 1: classify every declared function.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			requires := hasMarker(fd.Doc, MarkRequiresSlot) || markedTypes[recvTypeName(info, fd)]
			load := hasMarker(fd.Doc, MarkLoadPhase) || loadTypes[recvTypeName(info, fd)]
			if requires {
				slotFuncs[fn] = true
				if fd.Name.IsExported() && exportedRecv(info, fd) {
					pass.Reportf(fd.Name.Pos(),
						"exported function %s must acquire an admitted session itself; //%s is only for internal helpers",
						fd.Name.Name, MarkRequiresSlot)
				}
			}
			if requires || load {
				exemptFuncs[fn] = true
			}
		}
	}

	// Pass 2: walk bodies with a holding flag.
	exclusive := exclusiveClosures(pass)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			checkSlotBody(pass, fd.Body, exemptFuncs[fn], exclusive, slotFuncs)
		}
	}
	return nil
}

// checkSlotBody inspects one function body, recursing into function
// literals with an updated holding state.
func checkSlotBody(pass *Pass, body ast.Node, holding bool, exclusive map[*ast.FuncLit]bool, slotFuncs map[*types.Func]bool) {
	info := pass.Pkg.Info
	cfg := pass.Cfg
	ast.Inspect(body, func(n ast.Node) bool {
		switch m := n.(type) {
		case *ast.FuncLit:
			checkSlotBody(pass, m.Body, holding || exclusive[m], exclusive, slotFuncs)
			return false
		case *ast.SelectorExpr:
			if holding || !contains(cfg.TokenHotFields, m.Sel.Name) {
				return true
			}
			recv := info.TypeOf(m.X)
			named := namedOrPointee(recv)
			if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != cfg.ExecPkg {
				return true
			}
			if !contains(cfg.TokenOwnerTypes, named.Obj().Name()) {
				return true
			}
			// Only flag field accesses, not same-named methods.
			if sel, ok := info.Selections[m]; !ok || sel.Kind() != types.FieldVal {
				return true
			}
			pass.Reportf(m.Pos(),
				"token state %s.%s touched without an admitted session: run inside %s.%s or annotate //%s",
				named.Obj().Name(), m.Sel.Name, cfg.SessionType, cfg.ExclusiveMethod, MarkRequiresSlot)
		case *ast.CallExpr:
			if holding {
				return true
			}
			if fn := calleeFunc(info, m); fn != nil && slotFuncs[fn] {
				pass.Reportf(m.Pos(),
					"%s requires the token slot (//%s) but the caller does not hold an admitted session",
					fn.Name(), MarkRequiresSlot)
			}
		}
		return true
	})
}

// exclusiveClosures finds every function literal passed directly to
// sched.Session.Exclusive: those run with the token slot held.
func exclusiveClosures(pass *Pass) map[*ast.FuncLit]bool {
	info := pass.Pkg.Info
	cfg := pass.Cfg
	out := map[*ast.FuncLit]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != cfg.ExclusiveMethod {
				return true
			}
			if !isPkgType(info.TypeOf(sel.X), cfg.SchedPkg, cfg.SessionType) {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					out[lit] = true
				}
			}
			return true
		})
	}
	return out
}

// markedTypeNames collects the package's type declarations carrying the
// given //ghostdb:... marker.
func markedTypeNames(pass *Pass, marker string) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !hasMarker(ts.Doc, marker) && !(len(gd.Specs) == 1 && hasMarker(gd.Doc, marker)) {
					continue
				}
				if obj, ok := pass.Pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// recvTypeName resolves a method declaration's receiver type object, or
// nil for plain functions.
func recvTypeName(info *types.Info, fd *ast.FuncDecl) *types.TypeName {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = ix.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return nil
	}
	tn, _ := info.Uses[id].(*types.TypeName)
	return tn
}

// exportedRecv reports whether fd is reachable from outside the
// package: a plain function, or a method on an exported type.
func exportedRecv(info *types.Info, fd *ast.FuncDecl) bool {
	tn := recvTypeName(info, fd)
	if fd.Recv == nil {
		return true
	}
	return tn != nil && tn.Exported()
}
