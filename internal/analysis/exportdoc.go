package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ExportDoc requires a doc comment on every exported identifier of the
// configured packages (the public facade and the packages whose API
// other builders extend): exported functions, methods on exported
// types, and each exported type, var and const declaration. Grouped
// var/const declarations may share the group's doc comment.
var ExportDoc = &Analyzer{
	Name: "exportdoc",
	Doc:  "exported identifiers in the configured packages need doc comments",
	Run:  runExportDoc,
}

func runExportDoc(pass *Pass) error {
	if !contains(pass.Cfg.DocPkgs, pass.Pkg.Path) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil && !exportedRecv(pass.Pkg.Info, d) {
					continue
				}
				if !docNames(d.Doc, d.Name.Name) {
					pass.Reportf(d.Name.Pos(), "exported %s %s needs a doc comment starting with its name",
						funcKind(d), d.Name.Name)
				}
			case *ast.GenDecl:
				checkGenDecl(pass, d)
			}
		}
	}
	return nil
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func checkGenDecl(pass *Pass, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !docNames(s.Doc, s.Name.Name) && !(len(d.Specs) == 1 && docNames(d.Doc, s.Name.Name)) {
				pass.Reportf(s.Name.Pos(), "exported type %s needs a doc comment starting with its name", s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if !name.IsExported() {
					continue
				}
				// A doc on the spec or on the grouped declaration both
				// satisfy the rule (grouped constants share one doc).
				if s.Doc == nil && s.Comment == nil && d.Doc == nil {
					pass.Reportf(name.Pos(), "exported %s %s needs a doc comment", valueKind(d.Tok), name.Name)
				}
			}
		}
	}
}

func valueKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// docNames reports whether the comment group is a real doc comment for
// the identifier: non-empty and mentioning the name in its first
// sentence (the classic golint "should start with the name" rule,
// relaxed to containment so idiomatic forms like "A Foo is ..." pass).
func docNames(cg *ast.CommentGroup, name string) bool {
	if cg == nil {
		return false
	}
	text := strings.TrimSpace(cg.Text())
	if text == "" {
		return false
	}
	first := text
	if i := strings.IndexAny(text, ".\n"); i > 0 {
		first = text[:i]
	}
	return strings.Contains(first, name)
}
