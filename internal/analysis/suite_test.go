package analysis_test

import (
	"path/filepath"
	"sync"
	"testing"

	"ghostdb/internal/analysis"
	"ghostdb/internal/analysis/analysistest"
)

// fixtureConfig mirrors DefaultConfig onto the miniature module under
// testdata/src, proving the analyzers carry no hard-coded paths.
func fixtureConfig() *analysis.Config {
	return &analysis.Config{
		ModulePath:        "fixture",
		UntrustedPkgs:     []string{"fixture/untrusted", "fixture/pagecache"},
		FlashPkg:          "fixture/flash",
		DeviceType:        "Device",
		DeviceDataMethods: []string{"Read", "ReadFull", "ReadRange", "ReadMulti", "Write", "Alloc", "Free"},
		MeteredPkgs:       []string{"fixture/flash", "fixture/store", "fixture/bus"},
		BusPkg:            "fixture/bus",
		ChannelType:       "Channel",
		TransferMethods:   []string{"Transfer", "TransferBatch"},
		BusCallerPkgs:     []string{"fixture/exec"},
		ExecPkg:           "fixture/exec",
		GrantSizeMin:      8,
		TokenOwnerTypes:   []string{"Token"},
		TokenHotFields:    []string{"Dev", "Hidden"},
		SchedPkg:          "fixture/sched",
		SessionType:       "Session",
		ExclusiveMethod:   "Exclusive",
		PrefetchMethods:   []string{"SetReadAhead"},
		BindingType:       "Binding",
		DocPkgs:           []string{"fixture/docpkg"},
	}
}

var (
	fixtureOnce sync.Once
	fixtureProg *analysis.Program
	fixtureErr  error
)

// fixtureProgram loads the fixture module once and shares the
// type-checked program across the per-analyzer tests.
func fixtureProgram(t *testing.T) *analysis.Program {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureProg, fixtureErr = analysis.Load(filepath.Join("testdata", "src"), fixtureConfig())
	})
	if fixtureErr != nil {
		t.Fatalf("load fixture module: %v", fixtureErr)
	}
	return fixtureProg
}

func TestTrustBoundaryFixtures(t *testing.T) {
	analysistest.RunProgram(t, fixtureProgram(t), fixtureConfig(), analysis.TrustBoundary)
}

func TestBusMeterFixtures(t *testing.T) {
	analysistest.RunProgram(t, fixtureProgram(t), fixtureConfig(), analysis.BusMeter)
}

func TestGrantSizeFixtures(t *testing.T) {
	analysistest.RunProgram(t, fixtureProgram(t), fixtureConfig(), analysis.GrantSize)
}

func TestSlotDisciplineFixtures(t *testing.T) {
	analysistest.RunProgram(t, fixtureProgram(t), fixtureConfig(), analysis.SlotDiscipline)
}

func TestPrefetchDepthFixtures(t *testing.T) {
	analysistest.RunProgram(t, fixtureProgram(t), fixtureConfig(), analysis.PrefetchDepth)
}

func TestExportDocFixtures(t *testing.T) {
	analysistest.RunProgram(t, fixtureProgram(t), fixtureConfig(), analysis.ExportDoc)
}

func TestWholeSuiteFixtures(t *testing.T) {
	analysistest.RunProgram(t, fixtureProgram(t), fixtureConfig(), analysis.All()...)
}

func TestByName(t *testing.T) {
	got, err := analysis.ByName(" busmeter, grantsize ")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if len(got) != 2 || got[0].Name != "busmeter" || got[1].Name != "grantsize" {
		t.Fatalf("ByName selected %v", got)
	}
	if all, err := analysis.ByName(""); err != nil || len(all) != len(analysis.All()) {
		t.Fatalf("empty ByName = %d analyzers, err %v", len(all), err)
	}
	if _, err := analysis.ByName("nope"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

// TestRepoIsLintClean runs the full suite over the real module: the
// same gate CI enforces through cmd/ghostdb-lint.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide type check is slow")
	}
	cfg := analysis.DefaultConfig()
	prog, err := analysis.Load(filepath.Join("..", ".."), cfg)
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	diags, err := analysis.Run(prog, cfg, analysis.All())
	if err != nil {
		t.Fatalf("run suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
