// Package sched is the fixture stand-in for the admission scheduler.
package sched

// Session is an admitted session; a function literal passed to
// Exclusive runs with the token's execution slot held.
type Session struct {
	admitted bool
}

// Exclusive runs fn while holding the token slot.
func (s *Session) Exclusive(fn func() error) error {
	s.admitted = true
	defer func() { s.admitted = false }()
	return fn()
}
