// Package store is the fixture metered storage layer: the one place a
// raw flash read is legitimate, proving busmeter stays silent on the
// audited substrate.
package store

import "fixture/flash"

// Reader reads pages through the metered layer.
type Reader struct {
	dev *flash.Device
}

// ReadPage returns one page; the raw device call is fine here because
// store is in MeteredPkgs, and the constant make is fine because store
// is not the exec package.
func (r *Reader) ReadPage(page int) ([]byte, error) {
	buf := make([]byte, 4096)
	if err := r.dev.Read(page, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
