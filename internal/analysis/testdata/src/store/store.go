// Package store is the fixture metered storage layer: the one place a
// raw flash read is legitimate, proving busmeter stays silent on the
// audited substrate.
package store

import "fixture/flash"

// Reader reads pages through the metered layer.
type Reader struct {
	dev *flash.Device
}

// ReadPage returns one page; the raw device call is fine here because
// store is in MeteredPkgs, and the constant make is fine because store
// is not the exec package.
func (r *Reader) ReadPage(page int) ([]byte, error) {
	buf := make([]byte, 4096)
	if err := r.dev.Read(page, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// SeqReader streams pages sequentially with an optional read-ahead
// window.
type SeqReader struct {
	dev   *flash.Device
	depth int
}

// SetReadAhead arms the read-ahead window; the depth must be
// grant-derived, which the prefetchdepth rule enforces at call sites.
func (r *SeqReader) SetReadAhead(depth int, staging [][]byte) {
	r.depth = depth
	_ = staging
}

// fill stages the next window through the batched device read — a
// legitimate raw call, store being a metered package.
func (r *SeqReader) fill(pages []int, staging [][]byte) error {
	return r.dev.ReadMulti(pages, staging)
}
