// Package docpkg exercises the exportdoc analyzer: documented exports
// stay silent, undocumented or mis-documented ones fire.
package docpkg

// Width is a documented constant.
const Width = 8

// Good is a documented type.
type Good struct{}

// Do performs the documented operation.
func (g *Good) Do() {}

// String implements fmt.Stringer on an unexported type, which is
// exempt from the rule.
func (p *private) String() string { return "p" }

type private struct{}

func helper() {} // unexported functions need no doc

type Bad struct{} // want exportdoc:"exported type Bad needs a doc comment"

func Orphan() {} // want exportdoc:"exported function Orphan needs a doc comment"

// This comment never names its subject.
func Mismatch() {} // want exportdoc:"exported function Mismatch needs a doc comment starting with its name"

var Hanging = map[string]int{ // want exportdoc:"exported var Hanging needs a doc comment"
	"fixture": 1,
}
