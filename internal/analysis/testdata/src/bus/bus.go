// Package bus is the fixture stand-in for the metered token link.
package bus

// Channel is the metered link between the terminal and the token.
type Channel struct {
	up, down int
}

// Transfer moves one payload across the link; only the audited
// protocol packages may call it.
func (c *Channel) Transfer(dir int, payload []byte) error {
	if dir == 0 {
		c.up += len(payload)
	} else {
		c.down += len(payload)
	}
	return nil
}

// Counters is a statistics accessor, callable from anywhere.
func (c *Channel) Counters() (up, down int) {
	return c.up, c.down
}

// TransferBatch moves several payloads in one accounted round-trip;
// like Transfer, only the audited protocol packages may call it.
func (c *Channel) TransferBatch(dir int, payloads [][]byte) error {
	for _, p := range payloads {
		if err := c.Transfer(dir, p); err != nil {
			return err
		}
	}
	return nil
}
