// Package hidden declares the fixture hidden-data types.
package hidden

// Image is the hidden tuple image living on the secure token.
//
//ghostdb:hidden
type Image struct {
	Rows [][]byte
}

// Count returns the hidden cardinality — a value that must never reach
// the untrusted side.
func (im *Image) Count() int {
	return len(im.Rows)
}

// Delta is the hidden write-side delta log: tombstones and upserted row
// images staged on the secure token between compactions.
//
//ghostdb:hidden
type Delta struct {
	Tombs map[uint32]bool
}

// Depth returns the delta log's depth — the hidden write volume, which
// would reveal the workload's update pattern if it ever left the token.
func (d *Delta) Depth() int {
	return len(d.Tombs)
}

// Meta is visible schema metadata, deliberately unmarked: mentioning it
// anywhere is legitimate.
type Meta struct {
	Cols int
}
