// Package hidden declares the fixture hidden-data types.
package hidden

// Image is the hidden tuple image living on the secure token.
//
//ghostdb:hidden
type Image struct {
	Rows [][]byte
}

// Count returns the hidden cardinality — a value that must never reach
// the untrusted side.
func (im *Image) Count() int {
	return len(im.Rows)
}

// Meta is visible schema metadata, deliberately unmarked: mentioning it
// anywhere is legitimate.
type Meta struct {
	Cols int
}
