// Package rogue is a fixture package outside every allow list: not
// metered, not an audited bus caller, not the exec package.
package rogue

import (
	"fixture/bus"
	"fixture/flash"
)

// Sniff is a seeded violation: a raw bus transfer outside the audited
// protocol layers.
func Sniff(c *bus.Channel) error {
	return c.Transfer(1, []byte("x")) // want busmeter:"outside the audited protocol layers"
}

// Peek is a seeded violation on the read, while its constant make is
// fine because grantsize only applies to the exec package.
func Peek(d *flash.Device) ([]byte, error) {
	buf := make([]byte, 64)
	if err := d.Read(0, buf); err != nil { // want busmeter:"bypasses the metered storage layer"
		return nil, err
	}
	return buf, nil
}

// Poll reads statistics, which is not a data-path call and stays
// silent.
func Poll(c *bus.Channel, d *flash.Device) int {
	up, down := c.Counters()
	return up + down + d.PageCount()
}

// Batch is a seeded violation: the batched transfer is as raw as the
// single one.
func Batch(c *bus.Channel) error {
	return c.TransferBatch(1, [][]byte{[]byte("x")}) // want busmeter:"outside the audited protocol layers"
}

// Slurp is a seeded violation: the batched read bypasses the metered
// storage layer the same way the single read does.
func Slurp(d *flash.Device) error {
	return d.ReadMulti([]int{0}, [][]byte{make([]byte, 64)}) // want busmeter:"bypasses the metered storage layer"
}
