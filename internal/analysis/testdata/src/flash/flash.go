// Package flash is the fixture stand-in for the raw flash device.
package flash

// Device is the raw flash device; its data-path methods may only be
// called from the metered storage packages.
type Device struct {
	pages [][]byte
}

// Read copies one page into dst.
func (d *Device) Read(page int, dst []byte) error {
	copy(dst, d.pages[page])
	return nil
}

// Write replaces one page.
func (d *Device) Write(page int, src []byte) error {
	d.pages[page] = append([]byte(nil), src...)
	return nil
}

// Alloc reserves n fresh pages and returns the first index.
func (d *Device) Alloc(n int) int {
	first := len(d.pages)
	for i := 0; i < n; i++ {
		d.pages = append(d.pages, nil)
	}
	return first
}

// Free releases a page.
func (d *Device) Free(page int) {
	d.pages[page] = nil
}

// PageCount is a statistics accessor, not a data-path method: calling
// it from anywhere is fine.
func (d *Device) PageCount() int {
	return len(d.pages)
}

// ReadMulti copies a batch of pages in one request; as a data-path
// method it is restricted to the metered packages like Read is.
func (d *Device) ReadMulti(pages []int, dst [][]byte) error {
	for i, p := range pages {
		copy(dst[i], d.pages[p])
	}
	return nil
}
