// Package untrusted is the fixture untrusted-side engine: hidden types
// must never appear here, and calls into it must never carry
// hidden-derived arguments.
package untrusted

import "fixture/hidden"

// Stats is visible bookkeeping — untrusted code handling visible
// counts is legitimate.
type Stats struct {
	VisRows int
}

// Observe records a visible-side measurement.
func Observe(n int) {
	_ = n
}

// Span times a closure; the closure is code the untrusted side runs,
// not data it receives.
func Span(name string, fn func()) {
	fn()
	_ = name
}

// Describe mentions unmarked schema metadata, which is fine.
func Describe(m hidden.Meta) int {
	return m.Cols
}

// Leak is a seeded violation: an untrusted-side function that receives
// a hidden image. Both the parameter type and the use fire.
func Leak(im *hidden.Image) int { // want trustboundary:"crosses the trust boundary into untrusted-side package"
	return im.Count() // want trustboundary:"crosses the trust boundary into untrusted-side package"
}
