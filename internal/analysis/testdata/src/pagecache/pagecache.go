// Package pagecache is the fixture untrusted-side buffer pool: it
// lives in host RAM, so hidden types must never appear in it.
package pagecache

import "fixture/hidden"

// Cache caches visible runs in untrusted host RAM under public keys.
type Cache struct {
	frames map[string][]byte
}

// PutVisible stores one visible run under its canonical key.
func (c *Cache) PutVisible(key string, run []byte) {
	if c.frames == nil {
		c.frames = map[string][]byte{}
	}
	c.frames[key] = run
}

// CacheHidden is a seeded violation: a hidden image handed to the
// untrusted-side pool. Both the parameter type and the use fire.
func CacheHidden(im *hidden.Image) int { // want trustboundary:"crosses the trust boundary into untrusted-side package"
	return im.Count() // want trustboundary:"crosses the trust boundary into untrusted-side package"
}
