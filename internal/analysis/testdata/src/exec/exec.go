// Package exec is the fixture execution engine: the only package the
// grantsize and slotdiscipline rules apply to, and an audited bus
// caller.
package exec

import (
	"fmt"

	"fixture/bus"
	"fixture/flash"
	"fixture/hidden"
	"fixture/sched"
	"fixture/store"
	"fixture/untrusted"
)

// Token owns one secure token's state; Dev and Hidden are the hot
// fields slotdiscipline guards.
type Token struct {
	Dev    *flash.Device
	Hidden map[int]*hidden.Image
	Link   *bus.Channel
}

// Plan is the admission grant buffers derive their sizes from.
type Plan struct {
	BufferBytes int
}

// Run is the correct shape of a query entry point: token state and
// grant-derived buffers only inside the session's Exclusive closure,
// and the bus transfer from an audited caller. Every rule stays silent.
func Run(s *sched.Session, t *Token, p Plan) error {
	return s.Exclusive(func() error {
		img := t.Hidden[0]
		buf := make([]byte, p.BufferBytes)
		if img != nil && len(img.Rows) > 0 {
			copy(buf, img.Rows[0])
		}
		return t.Link.Transfer(0, []byte("query"))
	})
}

// stepOn advances one operator over the token's hidden image; its
// callers must already hold the slot.
//
//ghostdb:requires-slot
func stepOn(t *Token) *hidden.Image {
	return t.Hidden[0]
}

// loadAll is the bulk-load path, which runs single-threaded before the
// database accepts queries, so touching token state is legitimate.
//
//ghostdb:load-phase
func loadAll(t *Token, dev *flash.Device) {
	t.Dev = dev
	t.Hidden = map[int]*hidden.Image{}
}

// smallScratch is fixed scratch below the grantsize threshold.
func smallScratch() []byte {
	return make([]byte, 4)
}

// header allocates the wire header, a reviewed data-independent size.
func header() []byte {
	//ghostdb:fixedsize — the wire header width is protocol-fixed
	return make([]byte, 64)
}

// meterQuery hands a closure to the untrusted side: code the callee
// runs, not data it receives, so trustboundary stays silent.
func meterQuery(img *hidden.Image) {
	untrusted.Span("scan", func() {
		_ = img.Count()
	})
}

// arityErr formats a count under a reviewed //ghostdb:public
// declassification, which must stay silent.
func arityErr(img *hidden.Image, cols int) error {
	//ghostdb:public — arity is schema metadata, not data content
	return fmt.Errorf("image has %d rows, want %d columns", img.Count(), cols)
}

// leakCount is a seeded violation: a hidden-derived cardinality
// formatted into an error string.
func leakCount(img *hidden.Image) error {
	return fmt.Errorf("scan produced %d rows", img.Count()) // want trustboundary:"error/log strings are observable"
}

// leakViaLocal is a seeded violation: taint flows through a local
// variable into an untrusted-side call.
func leakViaLocal(img *hidden.Image) {
	n := img.Count()
	untrusted.Observe(n) // want trustboundary:"hidden-derived argument crosses the trust boundary"
}

// leakDeltaDepth is a seeded violation: the write path's delta-log
// depth is hidden write volume, and formatting it into an error string
// would hand the untrusted side the table's update rate.
func leakDeltaDepth(d *hidden.Delta) error {
	return fmt.Errorf("delta log at depth %d", d.Depth()) // want trustboundary:"error/log strings are observable"
}

// rawRead is a seeded violation: exec is not a metered layer, so a raw
// device read bypasses the byte accounting.
func rawRead(d *flash.Device, page int) error {
	return d.Read(page, header()) // want busmeter:"bypasses the metered storage layer"
}

// oversized is a seeded violation twice over: literal-sized buffers on
// the exec path instead of grant-derived capacities.
func oversized() ([]byte, []uint32) {
	buf := make([]byte, 4096)     // want grantsize:"make with constant size 4096"
	ids := make([]uint32, 0, 512) // want grantsize:"make with constant size 512"
	return buf, ids
}

// touchOutside is a seeded violation: token state outside any session.
func touchOutside(t *Token) *flash.Device {
	return t.Dev // want slotdiscipline:"touched without an admitted session"
}

// callOutside is a seeded violation: it calls a requires-slot helper
// without holding the slot.
func callOutside(t *Token) {
	stepOn(t) // want slotdiscipline:"requires the token slot"
}

// Expose is a seeded violation: an exported entry point cannot merely
// assume the slot, because outside callers hold no session.
//
//ghostdb:requires-slot
func Expose(t *Token) *hidden.Image { // want slotdiscipline:"exported function Expose must acquire an admitted session"
	return t.Hidden[0]
}

// Binding is the session's operator binding: every field derives from
// the admission grant, a public quantity, so selectors on it are
// legitimate read-ahead depths.
type Binding struct {
	PrefetchPages int
}

// scanAhead arms read-ahead from grant-derived depths only: a Binding
// field, a constant and a builtin min over both all stay silent.
func scanAhead(r *store.SeqReader, b *Binding, staging [][]byte) {
	r.SetReadAhead(b.PrefetchPages, staging)
	r.SetReadAhead(2, staging)
	r.SetReadAhead(min(b.PrefetchPages, 4), staging)
}

// leakDepth is a seeded violation: a hidden-derived cardinality as the
// read-ahead depth would let the scan's flash traffic encode data.
func leakDepth(r *store.SeqReader, img *hidden.Image, staging [][]byte) {
	r.SetReadAhead(img.Count(), staging) // want prefetchdepth:"read-ahead depth must be a constant"
}
