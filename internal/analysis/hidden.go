package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Marker comments recognized on declarations. They are directives, not
// documentation: each one widens or narrows what the analyzers accept,
// so every use is part of the reviewed security surface.
const (
	// MarkHidden marks a type declaration as hidden data: values of the
	// type (and anything derived from them) must stay on the secure side.
	MarkHidden = "ghostdb:hidden"
	// MarkRequiresSlot marks a function (or a type, covering all its
	// methods) as assuming the token's execution slot is already held by
	// an admitted session somewhere up the call chain.
	MarkRequiresSlot = "ghostdb:requires-slot"
	// MarkLoadPhase marks a function (or type) as part of the bulk-load
	// path, which runs single-threaded before the database accepts
	// queries and therefore outside session admission.
	MarkLoadPhase = "ghostdb:load-phase"
	// MarkFixedSize marks a make() whose constant size is genuinely
	// data-independent (fixed-width scratch), exempting it from
	// grantsize.
	MarkFixedSize = "ghostdb:fixedsize"
	// MarkPublic marks a statement as a reviewed declassification: the
	// hidden-derived expressions on the line are schema metadata (an
	// arity, a declared width), not data content, and may appear in an
	// error string. Every use widens the leak surface and is part of
	// review.
	MarkPublic = "ghostdb:public"
)

// hiddenTypes collects every type marked //ghostdb:hidden across the
// module, keyed by its *types.TypeName.
func (p *Program) hiddenTypes() map[*types.TypeName]bool {
	p.hiddenOnce.Do(func() {
		p.hidden = map[*types.TypeName]bool{}
		for _, pkg := range p.Pkgs {
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					gd, ok := decl.(*ast.GenDecl)
					if !ok || gd.Tok != token.TYPE {
						continue
					}
					for _, spec := range gd.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if !hasMarker(ts.Doc, MarkHidden) && !(len(gd.Specs) == 1 && hasMarker(gd.Doc, MarkHidden)) {
							continue
						}
						if obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
							p.hidden[obj] = true
						}
					}
				}
			}
		}
	})
	return p.hidden
}

// hasMarker reports whether a comment group contains the //ghostdb:...
// directive.
func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		text = strings.TrimSpace(text)
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

// typeIsHidden reports whether t is a marked hidden type or a direct
// composite over one (pointer, slice, array, map, channel). It does not
// descend into the fields of unmarked named structs: a wrapper type is a
// boundary whose API mediates access, and taint restarts at the field
// selector that extracts the hidden part.
func typeIsHidden(t types.Type, hidden map[*types.TypeName]bool) bool {
	seen := map[types.Type]bool{}
	var walk func(t types.Type) bool
	walk = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		switch tt := t.(type) {
		case *types.Named:
			if hidden[tt.Obj()] {
				return true
			}
			return false
		case *types.Alias:
			return walk(types.Unalias(tt))
		case *types.Pointer:
			return walk(tt.Elem())
		case *types.Slice:
			return walk(tt.Elem())
		case *types.Array:
			return walk(tt.Elem())
		case *types.Map:
			return walk(tt.Key()) || walk(tt.Elem())
		case *types.Chan:
			return walk(tt.Elem())
		}
		return false
	}
	return walk(t)
}

// exprMentionsHidden reports whether any subexpression of e has a
// hidden type or names a tainted variable. This is deliberately
// syntactic containment, not value flow: len(hiddenRows), hidden.Count()
// and string(hiddenRec) all "mention" hidden data, which is exactly the
// class of derived scalars that volume-leak attacks exploit.
func exprMentionsHidden(info *types.Info, e ast.Expr, hidden map[*types.TypeName]bool, tainted map[*types.Var]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		ex, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[ex]; ok && tv.IsValue() && typeIsHidden(tv.Type, hidden) {
			found = true
			return false
		}
		if id, ok := ex.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && tainted[v] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// taintedVars runs a small intraprocedural fixpoint over a function
// body: a local variable assigned from an expression that mentions
// hidden data (directly or through an already-tainted variable) is
// itself tainted. It is the assignment-chasing half of the taint walk;
// exprMentionsHidden is the per-expression half.
func taintedVars(info *types.Info, body *ast.BlockStmt, hidden map[*types.TypeName]bool) map[*types.Var]bool {
	tainted := map[*types.Var]bool{}
	if body == nil {
		return tainted
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			anyRHS := false
			for _, rhs := range as.Rhs {
				if exprMentionsHidden(info, rhs, hidden, tainted) {
					anyRHS = true
					break
				}
			}
			if !anyRHS {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var v *types.Var
				if def, ok := info.Defs[id].(*types.Var); ok {
					v = def
				} else if use, ok := info.Uses[id].(*types.Var); ok {
					v = use
				}
				if v != nil && !tainted[v] {
					tainted[v] = true
					changed = true
				}
			}
			return true
		})
	}
	return tainted
}

// lineMarkers indexes, per file line, whether a //ghostdb:... directive
// comment sits on that line or the line immediately above it.
func lineMarkers(fset *token.FileSet, f *ast.File, marker string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == marker || strings.HasPrefix(text, marker+" ") {
				line := fset.Position(c.Pos()).Line
				lines[line] = true
				lines[line+1] = true
			}
		}
	}
	return lines
}

// namedOrPointee unwraps pointers and aliases down to a named type.
func namedOrPointee(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isPkgType reports whether t (after pointer unwrap) is the named type
// pkgPath.name.
func isPkgType(t types.Type, pkgPath, name string) bool {
	n := namedOrPointee(t)
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}
