package untrusted

import (
	"encoding/binary"
	"testing"

	"ghostdb/internal/bus"
	"ghostdb/internal/query"
	"ghostdb/internal/schema"
	"ghostdb/internal/sqlparse"
)

func testEngine(t *testing.T) (*Engine, *bus.Channel, *schema.Schema) {
	t.Helper()
	defs := []schema.TableDef{{Name: "T", Columns: []schema.Column{
		{Name: "v1", Kind: schema.KindChar, Width: 4},
		{Name: "num", Kind: schema.KindInt},
		{Name: "h1", Kind: schema.KindChar, Width: 4, Hidden: true},
	}}}
	sch, err := schema.New(defs)
	if err != nil {
		t.Fatal(err)
	}
	ch := bus.NewChannel(1.5)
	return NewEngine(sch, ch), ch, sch
}

func loadRows(t *testing.T, e *Engine, sch *schema.Schema, vals []string, nums []int64) {
	t.Helper()
	tb := sch.Tables[0]
	n := len(vals)
	v1 := make([]byte, n*4)
	for i, s := range vals {
		if err := schema.EncodeValue(v1[i*4:(i+1)*4], schema.CharVal(s)); err != nil {
			t.Fatal(err)
		}
	}
	num := make([]byte, n*8)
	for i, x := range nums {
		if err := schema.EncodeValue(num[i*8:(i+1)*8], schema.IntVal(x)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.LoadColumn(tb.Index, 0, 4, v1); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadColumn(tb.Index, 1, 8, num); err != nil {
		t.Fatal(err)
	}
	if err := e.SetRows(tb.Index, n); err != nil {
		t.Fatal(err)
	}
}

func TestVisSelectionAndTransfer(t *testing.T) {
	e, ch, sch := testEngine(t)
	loadRows(t, e, sch, []string{"aa", "bb", "cc", "bb", "dd"}, []int64{1, 2, 3, 4, 5})
	preds := []query.Pred{{Table: 0, ColIdx: 0, Op: sqlparse.OpEq, Lo: schema.CharVal("bb")}}
	vr, err := e.Vis(0, preds, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vr.IDs) != 2 || vr.IDs[0] != 1 || vr.IDs[1] != 3 {
		t.Fatalf("ids = %v", vr.IDs)
	}
	down, up := ch.Counters()
	if down != uint64(4+2*4) || up != 0 {
		t.Fatalf("transfer = %d/%d", down, up)
	}
	if vr.Bytes != 12 {
		t.Fatalf("bytes = %d", vr.Bytes)
	}
}

func TestVisWithProjectedValues(t *testing.T) {
	e, _, sch := testEngine(t)
	loadRows(t, e, sch, []string{"aa", "bb", "cc"}, []int64{10, 20, 30})
	preds := []query.Pred{{Table: 0, ColIdx: 1, Op: sqlparse.OpGe, Lo: schema.IntVal(20)}}
	vr, err := e.Vis(0, preds, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(vr.IDs) != 2 || vr.RowWidth != 4+4+8 {
		t.Fatalf("vr = %+v", vr)
	}
	// First shipped row: id 1, "bb", 20.
	if got := binary.BigEndian.Uint32(vr.Rows[:4]); got != 1 {
		t.Fatalf("row id = %d", got)
	}
	v, err := schema.DecodeValue(vr.Rows[4:8], schema.KindChar)
	if err != nil || v.S != "bb" {
		t.Fatalf("row v1 = %v %v", v, err)
	}
	n, err := schema.DecodeValue(vr.Rows[8:16], schema.KindInt)
	if err != nil || n.I != 20 {
		t.Fatalf("row num = %v %v", n, err)
	}
}

func TestVisOperators(t *testing.T) {
	e, _, sch := testEngine(t)
	loadRows(t, e, sch, []string{"aa", "bb", "cc", "dd"}, []int64{1, 2, 3, 4})
	cases := []struct {
		op   sqlparse.CompareOp
		lo   int64
		hi   int64
		want int
	}{
		{sqlparse.OpEq, 2, 0, 1},
		{sqlparse.OpNe, 2, 0, 3},
		{sqlparse.OpLt, 3, 0, 2},
		{sqlparse.OpLe, 3, 0, 3},
		{sqlparse.OpGt, 3, 0, 1},
		{sqlparse.OpGe, 3, 0, 2},
		{sqlparse.OpBetween, 2, 3, 2},
	}
	for _, c := range cases {
		p := query.Pred{Table: 0, ColIdx: 1, Op: c.op, Lo: schema.IntVal(c.lo), Hi: schema.IntVal(c.hi)}
		vr, err := e.Vis(0, []query.Pred{p}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(vr.IDs) != c.want {
			t.Fatalf("op %v: %d ids, want %d", c.op, len(vr.IDs), c.want)
		}
	}
	// id predicates work on the untrusted side too.
	p := query.Pred{Table: 0, ColIdx: query.IDCol, Op: sqlparse.OpLe, Lo: schema.IntVal(1)}
	vr, err := e.Vis(0, []query.Pred{p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vr.IDs) != 2 {
		t.Fatalf("id pred ids = %v", vr.IDs)
	}
}

func TestRefusesHiddenData(t *testing.T) {
	e, _, sch := testEngine(t)
	tb := sch.Tables[0]
	if err := e.LoadColumn(tb.Index, 2, 4, make([]byte, 4)); err == nil {
		t.Fatal("hidden column load accepted")
	}
	loadRows(t, e, sch, []string{"aa"}, []int64{1})
	hp := []query.Pred{{Table: 0, ColIdx: 2, Hidden: true, Op: sqlparse.OpEq, Lo: schema.CharVal("x")}}
	if _, err := e.Vis(0, hp, nil); err == nil {
		t.Fatal("hidden predicate accepted")
	}
	if _, err := e.Vis(0, nil, []int{2}); err == nil {
		t.Fatal("hidden projection accepted")
	}
}

func TestInsertRow(t *testing.T) {
	e, _, sch := testEngine(t)
	loadRows(t, e, sch, []string{"aa"}, []int64{1})
	if err := e.InsertRow(0, []schema.Value{schema.CharVal("zz"), schema.IntVal(9)}); err != nil {
		t.Fatal(err)
	}
	if e.Rows(0) != 2 {
		t.Fatalf("rows = %d", e.Rows(0))
	}
	v, err := e.Value(0, 0, 1)
	if err != nil || v.S != "zz" {
		t.Fatalf("value = %v %v", v, err)
	}
	// Arity errors.
	if err := e.InsertRow(0, []schema.Value{schema.CharVal("x")}); err == nil {
		t.Fatal("short insert accepted")
	}
}

func TestLoadValidation(t *testing.T) {
	e, _, sch := testEngine(t)
	tb := sch.Tables[0]
	if err := e.LoadColumn(tb.Index, 0, 5, make([]byte, 5)); err == nil {
		t.Fatal("wrong width accepted")
	}
	if err := e.LoadColumn(tb.Index, 0, 4, make([]byte, 6)); err == nil {
		t.Fatal("ragged column accepted")
	}
	if err := e.LoadColumn(tb.Index, 0, 4, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadColumn(tb.Index, 1, 8, make([]byte, 8)); err == nil {
		t.Fatal("row count mismatch accepted")
	}
	// Unloaded column predicate.
	p := []query.Pred{{Table: 0, ColIdx: 1, Op: sqlparse.OpEq, Lo: schema.IntVal(1)}}
	if _, err := e.Vis(0, p, nil); err == nil {
		t.Fatal("predicate on unloaded column accepted")
	}
}
