// Package untrusted implements the powerful-but-insecure side of GhostDB:
// the personal computer (or remote server) holding the Visible partition
// of every table. It evaluates the Visible conjuncts of a query and ships
// the resulting identifier lists — and any projected visible attribute
// values — down to the Secure USB key over the bus.
//
// Security model (§2.1): Untrusted sees only the query text and its own
// Visible data. It cannot filter what it sends using Hidden information
// (it has none), so the lists it produces may contain many irrelevant
// tuples; Secure must filter them out quickly (design rule 2, §2.3).
// Untrusted compute is modeled as free — the paper's costs are dominated
// by Secure-side I/O and the link.
package untrusted

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"ghostdb/internal/bus"
	"ghostdb/internal/pagecache"
	"ghostdb/internal/query"
	"ghostdb/internal/schema"
	"ghostdb/internal/sqlparse"
	"ghostdb/internal/store"
)

// Engine is the untrusted visible-data processor. It is safe for
// concurrent use: the query planner reads selectivity counts outside the
// secure token's serial execution slot, so reads and inserts may overlap.
type Engine struct {
	sch    *schema.Schema
	ch     *bus.Channel
	mu     sync.RWMutex
	tables []*tableStore
	// pc, when set, caches encoded Vis runs keyed on canonical per-table
	// predicate text (VisKey). Cached values are shared *VisResult
	// pointers and immutable by contract; pcShard is the shard whose
	// version vector stamps and invalidates this engine's frames.
	pc      *pagecache.Cache
	pcShard int
}

type tableStore struct {
	rows int
	cols []colStore // aligned with schema Columns; hidden slots empty
}

type colStore struct {
	width   int
	data    []byte
	present bool
}

// NewEngine creates an empty untrusted store for the schema.
func NewEngine(sch *schema.Schema, ch *bus.Channel) *Engine {
	e := &Engine{sch: sch, ch: ch, tables: make([]*tableStore, len(sch.Tables))}
	for i, t := range sch.Tables {
		e.tables[i] = &tableStore{cols: make([]colStore, len(t.Columns))}
	}
	return e
}

// LoadColumn installs the encoded values of one visible column (width
// bytes per row). Hidden columns must never be loaded here.
func (e *Engine) LoadColumn(table, colIdx int, width int, data []byte) error {
	t := e.sch.Tables[table]
	if colIdx < 0 || colIdx >= len(t.Columns) {
		return fmt.Errorf("untrusted: bad column %d for %q", colIdx, t.Name)
	}
	col := t.Columns[colIdx]
	if col.Hidden {
		return fmt.Errorf("untrusted: refusing hidden column %s.%s", t.Name, col.Name)
	}
	if width != col.EncodedWidth() {
		return fmt.Errorf("untrusted: width %d != %d for %s.%s", width, col.EncodedWidth(), t.Name, col.Name)
	}
	if len(data)%width != 0 {
		return fmt.Errorf("untrusted: ragged column data for %s.%s", t.Name, col.Name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ts := e.tables[table]
	n := len(data) / width
	if ts.rows == 0 {
		ts.rows = n
	} else if ts.rows != n {
		return fmt.Errorf("untrusted: column %s.%s has %d rows, table has %d", t.Name, col.Name, n, ts.rows)
	}
	ts.cols[colIdx] = colStore{width: width, data: data, present: true}
	return nil
}

// SetRows fixes the row count for tables with no visible columns.
func (e *Engine) SetRows(table, rows int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	ts := e.tables[table]
	if ts.rows != 0 && ts.rows != rows {
		return fmt.Errorf("untrusted: row count mismatch: %d vs %d", ts.rows, rows)
	}
	ts.rows = rows
	return nil
}

// Rows returns the visible row count of a table.
func (e *Engine) Rows(table int) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.tables[table].rows
}

// InsertRow appends the visible values of a new tuple (aligned with the
// table's visible columns, in declaration order).
func (e *Engine) InsertRow(table int, visible []schema.Value) error {
	t := e.sch.Tables[table]
	e.mu.Lock()
	defer e.mu.Unlock()
	ts := e.tables[table]
	vi := 0
	for ci, col := range t.Columns {
		if col.Hidden {
			continue
		}
		if vi >= len(visible) {
			return fmt.Errorf("untrusted: missing value for %s.%s", t.Name, col.Name)
		}
		w := col.EncodedWidth()
		if !ts.cols[ci].present {
			ts.cols[ci] = colStore{width: w, present: true}
		}
		buf := make([]byte, w)
		if err := schema.EncodeValue(buf, visible[vi]); err != nil {
			return fmt.Errorf("untrusted: %s.%s: %w", t.Name, col.Name, err)
		}
		ts.cols[ci].data = append(ts.cols[ci].data, buf...)
		vi++
	}
	if vi != len(visible) {
		return fmt.Errorf("untrusted: %d visible values for %d visible columns", len(visible), vi)
	}
	ts.rows++
	return nil
}

// UpdateRows overwrites one visible column of the listed rows in place.
// The caller (the resolver's write-path rule) guarantees ids were
// derived from visible predicates or id arithmetic only — public data —
// so handing the matched set to the untrusted store reveals nothing a
// spy could not compute itself from the statement text.
func (e *Engine) UpdateRows(table, colIdx int, ids []uint32, v schema.Value) error {
	t := e.sch.Tables[table]
	if colIdx < 0 || colIdx >= len(t.Columns) || t.Columns[colIdx].Hidden {
		return fmt.Errorf("untrusted: bad visible column %d for %q", colIdx, t.Name)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	ts := e.tables[table]
	c := ts.cols[colIdx]
	if !c.present {
		return fmt.Errorf("untrusted: column %s.%s not loaded", t.Name, t.Columns[colIdx].Name)
	}
	buf := make([]byte, c.width)
	if err := schema.EncodeValue(buf, v); err != nil {
		return fmt.Errorf("untrusted: %s.%s: %w", t.Name, t.Columns[colIdx].Name, err)
	}
	for _, id := range ids {
		if int(id) >= ts.rows {
			return fmt.Errorf("untrusted: row %d out of range for %q", id, t.Name)
		}
		copy(c.data[int(id)*c.width:(int(id)+1)*c.width], buf)
	}
	return nil
}

// matches evaluates one resolved predicate against a row.
func (ts *tableStore) matches(p query.Pred, row int, lo, hi []byte) bool {
	if p.ColIdx == query.IDCol {
		id := int64(row)
		switch p.Op {
		case sqlparse.OpEq:
			return id == p.Lo.I
		case sqlparse.OpNe:
			return id != p.Lo.I
		case sqlparse.OpLt:
			return id < p.Lo.I
		case sqlparse.OpLe:
			return id <= p.Lo.I
		case sqlparse.OpGt:
			return id > p.Lo.I
		case sqlparse.OpGe:
			return id >= p.Lo.I
		case sqlparse.OpBetween:
			return id >= p.Lo.I && id <= p.Hi.I
		}
		return false
	}
	c := ts.cols[p.ColIdx]
	v := c.data[row*c.width : (row+1)*c.width]
	cmp := bytes.Compare(v, lo)
	switch p.Op {
	case sqlparse.OpEq:
		return cmp == 0
	case sqlparse.OpNe:
		return cmp != 0
	case sqlparse.OpLt:
		return cmp < 0
	case sqlparse.OpLe:
		return cmp <= 0
	case sqlparse.OpGt:
		return cmp > 0
	case sqlparse.OpGe:
		return cmp >= 0
	case sqlparse.OpBetween:
		return cmp >= 0 && bytes.Compare(v, hi) <= 0
	}
	return false
}

// VisResult is the product of the Vis operator (§3.3): the sorted list of
// identifiers of tuples satisfying every Visible predicate of the query
// on one table, together with the projected visible attribute values.
type VisResult struct {
	Table    int
	IDs      []uint32 // ascending
	ProjCols []int    // visible column positions shipped with each id
	RowWidth int      // bytes per shipped row: 4 (id) + Σ col widths
	Rows     []byte   // len(IDs) rows of RowWidth bytes (empty if no cols)
	Bytes    int      // bytes that crossed the link
}

// encodePredBounds validates the visible predicates of one table and
// pre-encodes their comparison bounds. The caller holds at least a read
// lock.
func (e *Engine) encodePredBounds(table int, preds []query.Pred) (los, his [][]byte, err error) {
	t := e.sch.Tables[table]
	ts := e.tables[table]
	los = make([][]byte, len(preds))
	his = make([][]byte, len(preds))
	for i, p := range preds {
		// Identifier predicates are acceptable even though the resolver
		// routes them to Secure by default: ids are replicated on both
		// sides (§2.1) and reveal nothing.
		if p.ColIdx == query.IDCol {
			continue
		}
		if p.Hidden {
			return nil, nil, fmt.Errorf("untrusted: refusing hidden predicate on %s", t.Name)
		}
		col := t.Columns[p.ColIdx]
		if col.Hidden {
			return nil, nil, fmt.Errorf("untrusted: refusing hidden column %s.%s", t.Name, col.Name)
		}
		if !ts.cols[p.ColIdx].present {
			return nil, nil, fmt.Errorf("untrusted: column %s.%s not loaded", t.Name, col.Name)
		}
		w := col.EncodedWidth()
		los[i] = make([]byte, w)
		if err := schema.EncodeValue(los[i], p.Lo); err != nil {
			return nil, nil, err
		}
		if p.Op == sqlparse.OpBetween {
			his[i] = make([]byte, w)
			if err := schema.EncodeValue(his[i], p.Hi); err != nil {
				return nil, nil, err
			}
		}
	}
	return los, his, nil
}

// CountVis counts the rows of one table satisfying the visible
// conjunction without shipping anything: the planner's selectivity
// source. Untrusted compute is free in the paper's cost model and the
// count travels alongside the query exchange, so nothing is metered.
func (e *Engine) CountVis(table int, preds []query.Pred) (int, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ts := e.tables[table]
	los, his, err := e.encodePredBounds(table, preds)
	if err != nil {
		return 0, err
	}
	n := 0
	for row := 0; row < ts.rows; row++ {
		ok := true
		for i, p := range preds {
			if !ts.matches(p, row, los[i], his[i]) {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n, nil
}

// SetPageCache attaches the untrusted-side page cache: ComputeVis will
// serve repeated canonical keys from it instead of rescanning and
// re-encoding. shard is the secure token this engine fronts, so
// committed writes invalidate exactly this engine's frames via
// pagecache.BumpShard.
func (e *Engine) SetPageCache(pc *pagecache.Cache, shard int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pc, e.pcShard = pc, shard
}

// VisKey canonicalizes one table's Vis computation: table name, each
// resolved predicate's column/operator/bounds, and the projected
// columns. It is a deterministic function of the resolved query text —
// the one thing GhostDB's model already reveals — so using it as a
// cache key leaks nothing (hit-or-miss is predictable from the public
// query history alone).
func (e *Engine) VisKey(table int, preds []query.Pred, projCols []int) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "vis|%s", e.sch.Tables[table].Name)
	for _, p := range preds {
		fmt.Fprintf(&b, "|p%d.%d:%v:%v", p.ColIdx, p.Op, p.Lo, p.Hi)
	}
	b.WriteString("|c")
	for _, ci := range projCols {
		fmt.Fprintf(&b, ".%d", ci)
	}
	return b.String()
}

// VisHeaderBytes is the size of the fixed control header shipped in
// place of a full Vis payload when the token already retains the
// identical spool from an earlier execution: a 4-byte row count, a
// 4-byte row width and an 8-byte version stamp. Its size is a constant
// of the protocol — never a function of data — so header shipments are
// indistinguishable from one another on the wire.
const VisHeaderBytes = 16

// ShipVisHeader meters the fixed header telling the token to reuse its
// retained, still-valid spool for this table instead of receiving the
// full run again. Returns the bus.Req so callers can coalesce several
// per-table shipments into one TransferBatch instead.
func (e *Engine) ShipVisHeader(table int) bus.Req {
	return bus.Req{Kind: "vis-hdr:" + e.sch.Tables[table].Name, Bytes: VisHeaderBytes}
}

// ShipVisReq describes the full Down shipment of a computed VisResult
// as a bus.Req, for coalescing with other tables' shipments.
func (e *Engine) ShipVisReq(res *VisResult) bus.Req {
	return bus.Req{Kind: "vis:" + e.sch.Tables[res.Table].Name, Bytes: res.Bytes}
}

// Ship meters one prepared request on the Down link.
func (e *Engine) Ship(req bus.Req) error {
	return e.ch.Transfer(bus.Down, req.Kind, req.Bytes, "")
}

// ShipBatch meters several prepared requests as one coalesced Down
// round-trip.
func (e *Engine) ShipBatch(reqs []bus.Req) error {
	return e.ch.TransferBatch(bus.Down, reqs)
}

// ComputeVis evaluates the visible conjunction for one table without
// metering anything: untrusted compute is free in the paper's cost
// model, and the caller decides how the result reaches the token
// (ShipVisReq for the full payload, ShipVisHeader when the token
// retains the identical spool). Repeated canonical keys are served from
// the page cache when one is attached — the returned *VisResult is then
// shared and must be treated as immutable, which every reader in
// internal/exec already does.
func (e *Engine) ComputeVis(table int, preds []query.Pred, projCols []int) (*VisResult, error) {
	if e.pc == nil {
		return e.computeVis(table, preds, projCols)
	}
	key := e.VisKey(table, preds, projCols)
	if v, ok := e.pc.Get(key); ok {
		return v.(*VisResult), nil
	}
	stamp := e.pc.Stamp([]int{e.pcShard})
	res, err := e.computeVis(table, preds, projCols)
	if err != nil {
		return nil, err
	}
	size := int64(len(res.Rows) + len(res.IDs)*store.IDBytes + 64)
	e.pc.Put(key, res, size, []int{e.pcShard}, stamp)
	return res, nil
}

// Vis evaluates the visible conjunction for one table and transfers the
// result down to Secure, accounting every byte on the channel. projCols
// lists the visible columns whose values the projection will need.
func (e *Engine) Vis(table int, preds []query.Pred, projCols []int) (*VisResult, error) {
	res, err := e.ComputeVis(table, preds, projCols)
	if err != nil {
		return nil, err
	}
	if err := e.Ship(e.ShipVisReq(res)); err != nil {
		return nil, err
	}
	return res, nil
}

// computeVis is the uncached scan-and-encode: every row satisfying the
// visible conjunction yields its id (and, with projCols, its encoded
// visible values).
func (e *Engine) computeVis(table int, preds []query.Pred, projCols []int) (*VisResult, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t := e.sch.Tables[table]
	ts := e.tables[table]
	los, his, err := e.encodePredBounds(table, preds)
	if err != nil {
		return nil, err
	}
	res := &VisResult{Table: table, ProjCols: projCols, RowWidth: store.IDBytes}
	for _, ci := range projCols {
		col := t.Columns[ci]
		if col.Hidden {
			return nil, fmt.Errorf("untrusted: cannot project hidden column %s.%s", t.Name, col.Name)
		}
		if !ts.cols[ci].present {
			return nil, fmt.Errorf("untrusted: column %s.%s not loaded", t.Name, col.Name)
		}
		res.RowWidth += col.EncodedWidth()
	}
	for row := 0; row < ts.rows; row++ {
		ok := true
		for i, p := range preds {
			if !ts.matches(p, row, los[i], his[i]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		res.IDs = append(res.IDs, uint32(row))
		if len(projCols) > 0 {
			var idb [store.IDBytes]byte
			binary.BigEndian.PutUint32(idb[:], uint32(row))
			res.Rows = append(res.Rows, idb[:]...)
			for _, ci := range projCols {
				c := ts.cols[ci]
				res.Rows = append(res.Rows, c.data[row*c.width:(row+1)*c.width]...)
			}
		}
	}
	// Account the transfer size: a 4-byte count header, then either bare
	// ids or full (id, values) rows. The bytes are metered at ship time.
	res.Bytes = 4
	if len(projCols) > 0 {
		res.Bytes += len(res.Rows)
	} else {
		res.Bytes += len(res.IDs) * store.IDBytes
	}
	return res, nil
}

// Value decodes one stored visible value (final result assembly of
// visible-only queries, and tests).
func (e *Engine) Value(table, colIdx int, id uint32) (schema.Value, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	t := e.sch.Tables[table]
	ts := e.tables[table]
	c := ts.cols[colIdx]
	if !c.present {
		return schema.Value{}, fmt.Errorf("untrusted: column %s.%s not loaded", t.Name, t.Columns[colIdx].Name)
	}
	return schema.DecodeValue(c.data[int(id)*c.width:(int(id)+1)*c.width], t.Columns[colIdx].Kind)
}
