// Package index implements GhostDB's indexation model (§3.2): Subtree Key
// Tables (SKT) — multidimensional join indexes that precompute every
// key/foreign-key join below a table — and climbing indexes, whose entries
// carry one sorted ID sublist per ancestor table so that a selection on
// any table reaches any ancestor (including the root) in a single step.
//
// The package also builds the reduced variants compared in Figure 7
// (BasicIndex, StarIndex, JoinIndex) for storage accounting and for the
// climbing-vs-cascading ablation.
package index

import (
	"encoding/binary"
	"fmt"

	"ghostdb/internal/flash"
	"ghostdb/internal/store"
)

// SKT is the Subtree Key Table of a non-leaf table T: row i (implicitly
// keyed by idT = i, which is not stored — the file is sorted on it, §3.2)
// holds the IDs of the tuples of every descendant table joined with tuple
// i. Child foreign keys are therefore materialized here and nowhere else.
//
// SKT rows are hidden data: the join structure they encode must never
// leave the secure token (ghostdb-lint trustboundary).
//
//ghostdb:hidden
type SKT struct {
	table int
	desc  []int // descendant table indexes, preorder
	cols  map[int]int
	file  *store.RowFile
}

// NewSKT creates an empty SKT for table with the given descendant layout.
func NewSKT(dev *flash.Device, table int, desc []int) (*SKT, error) {
	if len(desc) == 0 {
		return nil, fmt.Errorf("index: SKT needs at least one descendant")
	}
	f, err := store.NewRowFile(dev, len(desc)*store.IDBytes)
	if err != nil {
		return nil, err
	}
	cols := make(map[int]int, len(desc))
	for i, d := range desc {
		cols[d] = i
	}
	return &SKT{table: table, desc: desc, cols: cols, file: f}, nil
}

// Table returns the owning table index.
func (s *SKT) Table() int { return s.table }

// Descendants returns the descendant table indexes in column order.
func (s *SKT) Descendants() []int { return s.desc }

// ColumnOf returns the column position of a descendant table.
func (s *SKT) ColumnOf(table int) (int, bool) {
	c, ok := s.cols[table]
	return c, ok
}

// File exposes the underlying row file (SJoin streams it directly).
func (s *SKT) File() *store.RowFile { return s.file }

// Rows returns the number of SKT rows (= table cardinality).
func (s *SKT) Rows() int { return s.file.Count() }

// Pages returns the flash footprint.
func (s *SKT) Pages() int { return s.file.Pages() }

// Append adds the descendant IDs for the next tuple during bulk load.
func (s *SKT) Append(ids []uint32) error {
	if len(ids) != len(s.desc) {
		// Descendant arity is schema metadata, not data content — a
		// reviewed declassification.
		//ghostdb:public
		return fmt.Errorf("index: SKT row has %d ids, want %d", len(ids), len(s.desc))
	}
	rec := make([]byte, len(ids)*store.IDBytes)
	for i, id := range ids {
		binary.BigEndian.PutUint32(rec[i*store.IDBytes:], id)
	}
	return s.file.Append(rec)
}

// Seal freezes the SKT after bulk load.
func (s *SKT) Seal() error { return s.file.Seal() }

// Insert appends a row after load (single-tuple updates).
func (s *SKT) Insert(ids []uint32) error {
	if len(ids) != len(s.desc) {
		// Descendant arity is schema metadata, not data content — a
		// reviewed declassification.
		//ghostdb:public
		return fmt.Errorf("index: SKT row has %d ids, want %d", len(ids), len(s.desc))
	}
	rec := make([]byte, len(ids)*store.IDBytes)
	for i, id := range ids {
		binary.BigEndian.PutUint32(rec[i*store.IDBytes:], id)
	}
	return s.file.Insert(rec)
}

// ReadRow decodes the descendant IDs of tuple id (one page read).
func (s *SKT) ReadRow(id uint32, dst []uint32) error {
	if len(dst) < len(s.desc) {
		return fmt.Errorf("index: dst too small")
	}
	rec := make([]byte, s.file.RowWidth())
	if err := s.file.ReadRow(id, rec); err != nil {
		return err
	}
	for i := range s.desc {
		dst[i] = binary.BigEndian.Uint32(rec[i*store.IDBytes:])
	}
	return nil
}

// DecodeRow extracts descendant IDs from a raw SKT record.
func (s *SKT) DecodeRow(rec []byte, dst []uint32) {
	for i := range s.desc {
		dst[i] = binary.BigEndian.Uint32(rec[i*store.IDBytes:])
	}
}
