package index

import (
	"fmt"

	"ghostdb/internal/flash"
	"ghostdb/internal/schema"
	"ghostdb/internal/store"
)

// Variant selects the indexation scheme compared in Figure 7.
type Variant int

const (
	// VariantFull is the paper's proposal: an SKT at every non-leaf table
	// and climbing indexes referencing every ancestor level.
	VariantFull Variant = iota
	// VariantBasic keeps a single SKT (root) and climbing indexes that
	// reference the root directly (self + root levels).
	VariantBasic
	// VariantStar keeps the root SKT but traditional selection indexes
	// (self level only), enabling star-join strategies à la O'Neil-Graefe.
	VariantStar
	// VariantJoin drops the SKT; traditional indexes on all attributes
	// plus binary join indexes (child id -> parent ids), à la Valduriez.
	VariantJoin
)

func (v Variant) String() string {
	switch v {
	case VariantFull:
		return "FullIndex"
	case VariantBasic:
		return "BasicIndex"
	case VariantStar:
		return "StarIndex"
	case VariantJoin:
		return "JoinIndex"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// AttrData carries the encoded values of one hidden attribute of a table,
// packed Width bytes per row, used to build its climbing index.
type AttrData struct {
	ColIdx int // column position within the table's Columns
	Width  int
	Data   []byte
}

// TableInput is the transient, build-time image of one table.
type TableInput struct {
	Rows  int
	FKs   map[int][]uint32 // child table index -> per-row referenced id
	Attrs []AttrData       // attributes to index (the hidden ones)
}

// Catalog holds every index structure of the hidden database.
type Catalog struct {
	Sch     *schema.Schema
	Variant Variant

	skts  map[int]*SKT
	attrs map[[2]int]*Climbing // (table, colIdx)
	ids   map[int]*Climbing    // table -> id index (non-root tables)
}

// Build constructs all SKTs and climbing indexes for the given variant.
// inputs must contain an entry for every table of every tree it touches:
// a tree is either fully present or fully absent (absent trees belong to
// other secure tokens — each token's catalog covers exactly the trees
// placed on it, and index structures never cross trees).
func Build(dev *flash.Device, sch *schema.Schema, inputs map[int]*TableInput, variant Variant) (*Catalog, error) {
	cat := &Catalog{
		Sch:     sch,
		Variant: variant,
		skts:    make(map[int]*SKT),
		attrs:   make(map[[2]int]*Climbing),
		ids:     make(map[int]*Climbing),
	}
	owned := func(ti int) bool { return inputs[ti] != nil }
	for _, t := range sch.Tables {
		if owned(t.Index) != owned(sch.RootOf(t.Index)) {
			return nil, fmt.Errorf("index: tree of %q is only partially present in the inputs",
				t.Name)
		}
	}

	desc, err := descendantIDs(sch, inputs)
	if err != nil {
		return nil, err
	}

	// Subtree Key Tables.
	for _, t := range sch.Tables {
		if !owned(t.Index) || len(t.Children()) == 0 {
			continue
		}
		switch variant {
		case VariantFull:
			// every non-leaf table
		case VariantBasic, VariantStar:
			if !sch.IsRoot(t.Index) {
				continue
			}
		case VariantJoin:
			continue
		}
		skt, err := NewSKT(dev, t.Index, t.Descendants())
		if err != nil {
			return nil, err
		}
		in := inputs[t.Index]
		row := make([]uint32, len(t.Descendants()))
		for i := 0; i < in.Rows; i++ {
			for di, d := range t.Descendants() {
				row[di] = desc[t.Index][d][i]
			}
			if err := skt.Append(row); err != nil {
				return nil, err
			}
		}
		if err := skt.Seal(); err != nil {
			return nil, err
		}
		cat.skts[t.Index] = skt
	}

	// Attribute climbing indexes.
	for _, t := range sch.Tables {
		if !owned(t.Index) {
			continue
		}
		in := inputs[t.Index]
		levels := attrLevels(sch, t, variant)
		for _, a := range in.Attrs {
			ci, err := buildClimbing(dev, climbingInput{
				table:     t.Index,
				colIdx:    a.ColIdx,
				keyW:      a.Width,
				vals:      a.Data,
				rows:      in.Rows,
				levels:    levels,
				descOfLvl: descPerLevel(levels, t.Index, desc),
			})
			if err != nil {
				return nil, fmt.Errorf("index: building climbing index %s.%d: %w", t.Name, a.ColIdx, err)
			}
			cat.attrs[[2]int{t.Index, a.ColIdx}] = ci
		}
	}

	// ID climbing indexes (join acceleration).
	for _, t := range sch.Tables {
		if !owned(t.Index) || sch.IsRoot(t.Index) {
			continue
		}
		var levels []int
		switch variant {
		case VariantFull:
			levels = append(levels, t.Ancestors()...)
		case VariantBasic:
			levels = []int{sch.RootOf(t.Index)}
		case VariantStar:
			continue // star joins go through the root SKT only
		case VariantJoin:
			levels = []int{t.ParentIndex} // binary join index
		}
		ci, err := buildClimbing(dev, climbingInput{
			table:     t.Index,
			colIdx:    -1,
			keyW:      store.IDBytes,
			rows:      inputs[t.Index].Rows,
			levels:    levels,
			descOfLvl: descPerLevel(levels, t.Index, desc),
		})
		if err != nil {
			return nil, fmt.Errorf("index: building id index %s: %w", t.Name, err)
		}
		cat.ids[t.Index] = ci
	}
	return cat, nil
}

// attrLevels returns the level set of an attribute index under a variant.
func attrLevels(sch *schema.Schema, t *schema.Table, variant Variant) []int {
	switch variant {
	case VariantFull:
		return append([]int{t.Index}, t.Ancestors()...)
	case VariantBasic:
		if sch.IsRoot(t.Index) {
			return []int{t.Index}
		}
		return []int{t.Index, sch.RootOf(t.Index)}
	default:
		return []int{t.Index}
	}
}

// descPerLevel maps each level to its descendant-row array (nil for self).
func descPerLevel(levels []int, table int, desc map[int]map[int][]uint32) [][]uint32 {
	out := make([][]uint32, len(levels))
	for i, l := range levels {
		if l == table {
			continue
		}
		out[i] = desc[l][table]
	}
	return out
}

// descendantIDs computes, for every table A and descendant D, the D-row
// referenced (transitively) by each A-row, validating referential
// integrity along the way.
func descendantIDs(sch *schema.Schema, inputs map[int]*TableInput) (map[int]map[int][]uint32, error) {
	desc := make(map[int]map[int][]uint32, len(sch.Tables))
	// Children before parents: process by decreasing depth.
	order := make([]*schema.Table, len(sch.Tables))
	copy(order, sch.Tables)
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j].Depth > order[i].Depth {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for _, t := range order {
		in := inputs[t.Index]
		if in == nil {
			continue // tree placed on another token
		}
		desc[t.Index] = make(map[int][]uint32)
		for _, ci := range t.Children() {
			fk := in.FKs[ci]
			if len(fk) != in.Rows {
				return nil, fmt.Errorf("index: table %q fk->%q has %d values, want %d",
					t.Name, sch.Tables[ci].Name, len(fk), in.Rows)
			}
			childRows := inputs[ci].Rows
			for i, v := range fk {
				if int(v) >= childRows {
					return nil, fmt.Errorf("index: table %q row %d references %q id %d (only %d rows)",
						t.Name, i, sch.Tables[ci].Name, v, childRows)
				}
			}
			desc[t.Index][ci] = fk
			for _, dd := range sch.Tables[ci].Descendants() {
				inner := desc[ci][dd]
				arr := make([]uint32, in.Rows)
				for i, v := range fk {
					arr[i] = inner[v]
				}
				desc[t.Index][dd] = arr
			}
		}
	}
	return desc, nil
}

// SKTOf returns the Subtree Key Table of a table, if built.
func (c *Catalog) SKTOf(table int) (*SKT, bool) {
	s, ok := c.skts[table]
	return s, ok
}

// AttrIndex returns the climbing index on (table, colIdx), if built.
func (c *Catalog) AttrIndex(table, colIdx int) (*Climbing, bool) {
	ci, ok := c.attrs[[2]int{table, colIdx}]
	return ci, ok
}

// IDIndex returns the id climbing index of a table, if built.
func (c *Catalog) IDIndex(table int) (*Climbing, bool) {
	ci, ok := c.ids[table]
	return ci, ok
}

// StorageBreakdown reports the flash footprint in pages.
type StorageBreakdown struct {
	SKTPages  int
	AttrPages int
	IDPages   int
}

// Total returns the combined page count.
func (b StorageBreakdown) Total() int { return b.SKTPages + b.AttrPages + b.IDPages }

// Storage computes the current footprint of all structures.
func (c *Catalog) Storage() StorageBreakdown {
	var b StorageBreakdown
	for _, s := range c.skts {
		b.SKTPages += s.Pages()
	}
	for _, a := range c.attrs {
		b.AttrPages += a.Pages()
	}
	for _, i := range c.ids {
		b.IDPages += i.Pages()
	}
	return b
}
