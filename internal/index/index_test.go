package index

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"ghostdb/internal/flash"
	"ghostdb/internal/schema"
	"ghostdb/internal/store"
)

// fixture is a small instance of the paper's Figure 3 schema with fully
// known contents, so index lookups can be checked against naive scans.
type fixture struct {
	sch    *schema.Schema
	dev    *flash.Device
	inputs map[int]*TableInput
	// vals[table][row] is the single indexed attribute value (1 byte).
	vals map[int][]byte
	// fk chains for naive reference computations.
	fks map[int]map[int][]uint32
}

func buildFixture(t *testing.T, seed int64, t0, t1, t2, t11, t12 int) *fixture {
	t.Helper()
	defs := []schema.TableDef{
		{Name: "T0", Columns: cols(), Refs: []schema.Ref{
			{FKColumn: "fk1", Child: "T1", Hidden: true},
			{FKColumn: "fk2", Child: "T2", Hidden: true}}},
		{Name: "T1", Columns: cols(), Refs: []schema.Ref{
			{FKColumn: "fk11", Child: "T11", Hidden: true},
			{FKColumn: "fk12", Child: "T12", Hidden: true}}},
		{Name: "T2", Columns: cols()},
		{Name: "T11", Columns: cols()},
		{Name: "T12", Columns: cols()},
	}
	sch, err := schema.New(defs)
	if err != nil {
		t.Fatal(err)
	}
	dev := flash.MustDevice(flash.Params{PageSize: 256, PagesPerBlock: 8, Blocks: 4096, ReserveBlocks: 4})
	rng := rand.New(rand.NewSource(seed))
	rows := map[string]int{"T0": t0, "T1": t1, "T2": t2, "T11": t11, "T12": t12}
	f := &fixture{sch: sch, dev: dev,
		inputs: map[int]*TableInput{},
		vals:   map[int][]byte{},
		fks:    map[int]map[int][]uint32{},
	}
	for _, tb := range sch.Tables {
		n := rows[tb.Name]
		vals := make([]byte, n)
		for i := range vals {
			vals[i] = byte(rng.Intn(16)) // small domain -> many duplicates
		}
		f.vals[tb.Index] = vals
		in := &TableInput{
			Rows:  n,
			FKs:   map[int][]uint32{},
			Attrs: []AttrData{{ColIdx: 0, Width: 1, Data: vals}},
		}
		f.fks[tb.Index] = map[int][]uint32{}
		for _, ci := range tb.Children() {
			fk := make([]uint32, n)
			for i := range fk {
				fk[i] = uint32(rng.Intn(rows[sch.Tables[ci].Name]))
			}
			in.FKs[ci] = fk
			f.fks[tb.Index][ci] = fk
		}
		f.inputs[tb.Index] = in
	}
	return f
}

func cols() []schema.Column {
	return []schema.Column{{Name: "h1", Kind: schema.KindChar, Width: 1, Hidden: true}}
}

// chaseTo returns, for each row of `from`, the id of its row in ancestor
// table `to`, computed naively... actually downward: for each row of
// ancestor A, the referenced row in descendant D.
func (f *fixture) chase(a, d int) []uint32 {
	if a == d {
		n := f.inputs[a].Rows
		out := make([]uint32, n)
		for i := range out {
			out[i] = uint32(i)
		}
		return out
	}
	// Find the child of a on the path to d.
	for _, c := range f.sch.Tables[a].Children() {
		if c == d || contains(f.sch.Tables[c].Descendants(), d) {
			inner := f.chase(c, d)
			fk := f.fks[a][c]
			out := make([]uint32, len(fk))
			for i, v := range fk {
				out[i] = inner[v]
			}
			return out
		}
	}
	panic("no path")
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func idx(t *testing.T, f *fixture, name string) int {
	tb, ok := f.sch.Lookup(name)
	if !ok {
		t.Fatalf("no table %s", name)
	}
	return tb.Index
}

func runsToIDs(t *testing.T, c *Climbing, runs []store.Run) []uint32 {
	t.Helper()
	var all []uint32
	for _, r := range runs {
		ids, err := c.Lists().ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		// each run must be internally sorted
		for i := 1; i < len(ids); i++ {
			if ids[i] < ids[i-1] {
				t.Fatalf("run not sorted: %v", ids)
			}
		}
		all = append(all, ids...)
	}
	return all
}

func sortedEq(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[uint32]int{}
	for _, x := range a {
		m[x]++
	}
	for _, x := range b {
		m[x]--
	}
	for _, v := range m {
		if v != 0 {
			return false
		}
	}
	return true
}

func TestSKTMatchesFKChains(t *testing.T) {
	f := buildFixture(t, 1, 500, 60, 40, 20, 20)
	cat, err := Build(f.dev, f.sch, f.inputs, VariantFull)
	if err != nil {
		t.Fatal(err)
	}
	t0 := idx(t, f, "T0")
	skt, ok := cat.SKTOf(t0)
	if !ok {
		t.Fatal("no SKT on root")
	}
	if skt.Rows() != 500 {
		t.Fatalf("skt rows = %d", skt.Rows())
	}
	want := map[int][]uint32{}
	for _, d := range f.sch.Tables[t0].Descendants() {
		want[d] = f.chase(t0, d)
	}
	got := make([]uint32, len(skt.Descendants()))
	for i := uint32(0); i < 500; i++ {
		if err := skt.ReadRow(i, got); err != nil {
			t.Fatal(err)
		}
		for di, d := range skt.Descendants() {
			if got[di] != want[d][i] {
				t.Fatalf("SKT row %d col %s: %d != %d", i, f.sch.Tables[d].Name, got[di], want[d][i])
			}
		}
	}
	// T1's own SKT exists under FullIndex and covers T11, T12.
	t1 := idx(t, f, "T1")
	skt1, ok := cat.SKTOf(t1)
	if !ok {
		t.Fatal("no SKT on T1 under FullIndex")
	}
	if len(skt1.Descendants()) != 2 {
		t.Fatalf("T1 SKT descendants = %v", skt1.Descendants())
	}
}

func TestClimbingEqAllLevels(t *testing.T) {
	f := buildFixture(t, 2, 400, 50, 30, 15, 15)
	cat, err := Build(f.dev, f.sch, f.inputs, VariantFull)
	if err != nil {
		t.Fatal(err)
	}
	t12 := idx(t, f, "T12")
	ci, ok := cat.AttrIndex(t12, 0)
	if !ok {
		t.Fatal("no index on T12.h1")
	}
	if len(ci.Levels()) != 3 {
		t.Fatalf("T12 index levels = %v", ci.Levels())
	}
	for _, lvlTable := range ci.Levels() {
		slot, _ := ci.LevelOf(lvlTable)
		down := f.chase(lvlTable, t12) // per-A-row referenced T12 id
		for v := 0; v < 16; v++ {
			key := []byte{byte(v)}
			runs, err := ci.RunsEq(key, slot)
			if err != nil {
				t.Fatal(err)
			}
			got := runsToIDs(t, ci, runs)
			var want []uint32
			for a, ti := range down {
				if f.vals[t12][ti] == byte(v) {
					want = append(want, uint32(a))
				}
			}
			if !sortedEq(got, want) {
				t.Fatalf("level %s value %d: got %d ids, want %d",
					f.sch.Tables[lvlTable].Name, v, len(got), len(want))
			}
		}
	}
}

func TestClimbingRange(t *testing.T) {
	f := buildFixture(t, 3, 300, 40, 20, 10, 10)
	cat, err := Build(f.dev, f.sch, f.inputs, VariantFull)
	if err != nil {
		t.Fatal(err)
	}
	t1 := idx(t, f, "T1")
	t0 := idx(t, f, "T0")
	ci, _ := cat.AttrIndex(t1, 0)
	slot, ok := ci.LevelOf(t0)
	if !ok {
		t.Fatal("T1 index lacks T0 level")
	}
	down := f.chase(t0, t1)
	cases := []struct {
		lo, hi   int
		loI, hiI bool
	}{
		{3, 9, true, true},
		{3, 9, false, true},
		{3, 9, true, false},
		{0, 15, true, true},
		{7, 7, true, true},
		{9, 3, true, true}, // empty
	}
	for _, cse := range cases {
		runs, err := ci.RunsRange([]byte{byte(cse.lo)}, []byte{byte(cse.hi)}, cse.loI, cse.hiI, slot)
		if err != nil {
			t.Fatal(err)
		}
		got := runsToIDs(t, ci, runs)
		var want []uint32
		for a, ti := range down {
			v := int(f.vals[t1][ti])
			okLo := v > cse.lo || (cse.loI && v == cse.lo)
			okHi := v < cse.hi || (cse.hiI && v == cse.hi)
			if okLo && okHi {
				want = append(want, uint32(a))
			}
		}
		if !sortedEq(got, want) {
			t.Fatalf("range [%d,%d] inc(%v,%v): got %d want %d",
				cse.lo, cse.hi, cse.loI, cse.hiI, len(got), len(want))
		}
	}
	// Open bounds.
	runs, err := ci.RunsRange(nil, nil, true, true, slot)
	if err != nil {
		t.Fatal(err)
	}
	if got := runsToIDs(t, ci, runs); len(got) != 300 {
		t.Fatalf("full range got %d ids", len(got))
	}
}

func TestIDIndex(t *testing.T) {
	f := buildFixture(t, 4, 300, 40, 20, 10, 10)
	cat, err := Build(f.dev, f.sch, f.inputs, VariantFull)
	if err != nil {
		t.Fatal(err)
	}
	t1, t0 := idx(t, f, "T1"), idx(t, f, "T0")
	ci, ok := cat.IDIndex(t1)
	if !ok {
		t.Fatal("no id index on T1")
	}
	if _, ok := cat.IDIndex(t0); ok {
		t.Fatal("root must not have an id index")
	}
	slot, _ := ci.LevelOf(t0)
	fk := f.fks[t0][t1]
	for id := uint32(0); id < 40; id++ {
		runs, err := ci.RunsForID(id, slot)
		if err != nil {
			t.Fatal(err)
		}
		got := runsToIDs(t, ci, runs)
		var want []uint32
		for a, v := range fk {
			if v == id {
				want = append(want, uint32(a))
			}
		}
		if !sortedEq(got, want) {
			t.Fatalf("id %d: got %v want %v", id, got, want)
		}
	}
	// Attribute index rejects RunsForID.
	ai, _ := cat.AttrIndex(t1, 0)
	if _, err := ai.RunsForID(1, 0); err == nil {
		t.Fatal("RunsForID on attr index accepted")
	}
}

func TestVariantsLevelsAndStorage(t *testing.T) {
	sizes := map[Variant]int{}
	for _, v := range []Variant{VariantFull, VariantBasic, VariantStar, VariantJoin} {
		// Paper-like cardinality ratios (root much larger than nodes) so
		// the SKT-vs-join-index storage ordering of Figure 7 is visible.
		f := buildFixture(t, 5, 3000, 100, 60, 30, 30)
		cat, err := Build(f.dev, f.sch, f.inputs, v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		sizes[v] = cat.Storage().Total()
		t12 := idx(t, f, "T12")
		ci, _ := cat.AttrIndex(t12, 0)
		switch v {
		case VariantFull:
			if len(ci.Levels()) != 3 {
				t.Fatalf("full levels = %v", ci.Levels())
			}
			if _, ok := cat.SKTOf(idx(t, f, "T1")); !ok {
				t.Fatal("full: missing T1 SKT")
			}
		case VariantBasic:
			if len(ci.Levels()) != 2 {
				t.Fatalf("basic levels = %v", ci.Levels())
			}
			if _, ok := cat.SKTOf(idx(t, f, "T1")); ok {
				t.Fatal("basic: unexpected T1 SKT")
			}
			if _, ok := cat.SKTOf(idx(t, f, "T0")); !ok {
				t.Fatal("basic: missing root SKT")
			}
		case VariantStar:
			if len(ci.Levels()) != 1 {
				t.Fatalf("star levels = %v", ci.Levels())
			}
			if _, ok := cat.IDIndex(t12); ok {
				t.Fatal("star: unexpected id index")
			}
		case VariantJoin:
			if len(ci.Levels()) != 1 {
				t.Fatalf("join levels = %v", ci.Levels())
			}
			if _, ok := cat.SKTOf(idx(t, f, "T0")); ok {
				t.Fatal("join: unexpected SKT")
			}
			idi, ok := cat.IDIndex(t12)
			if !ok || len(idi.Levels()) != 1 || idi.Levels()[0] != idx(t, f, "T1") {
				t.Fatal("join: id index should map to parent only")
			}
		}
	}
	// Figure 7 ordering: Full >= Basic >= Star >= Join.
	if !(sizes[VariantFull] >= sizes[VariantBasic] &&
		sizes[VariantBasic] > sizes[VariantStar] &&
		sizes[VariantStar] > sizes[VariantJoin]) {
		t.Fatalf("storage ordering violated: %v", sizes)
	}
}

func TestInsertEntryMaintenance(t *testing.T) {
	f := buildFixture(t, 6, 200, 30, 15, 8, 8)
	cat, err := Build(f.dev, f.sch, f.inputs, VariantFull)
	if err != nil {
		t.Fatal(err)
	}
	t12, t0 := idx(t, f, "T12"), idx(t, f, "T0")
	ci, _ := cat.AttrIndex(t12, 0)
	slot, _ := ci.LevelOf(t0)
	slotSelf, _ := ci.LevelOf(t12)
	key := []byte{7}
	before := runsToIDs(t, ci, mustRuns(t, ci, key, slot))
	// Simulate a new T0 tuple (id 999) whose T12 descendant has value 7.
	perLevel := make([]int64, len(ci.Levels()))
	for i := range perLevel {
		perLevel[i] = -1
	}
	perLevel[slot] = 999
	if err := ci.InsertEntry(key, perLevel); err != nil {
		t.Fatal(err)
	}
	after := runsToIDs(t, ci, mustRuns(t, ci, key, slot))
	if len(after) != len(before)+1 {
		t.Fatalf("after insert: %d ids, want %d", len(after), len(before)+1)
	}
	found := false
	for _, id := range after {
		if id == 999 {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted id not returned")
	}
	// Self level untouched by this entry.
	selfAfter := runsToIDs(t, ci, mustRuns(t, ci, key, slotSelf))
	for _, id := range selfAfter {
		if id == 999 {
			t.Fatal("self level polluted")
		}
	}
	// Arity check.
	if err := ci.InsertEntry(key, []int64{1}); err == nil {
		t.Fatal("bad arity accepted")
	}
}

func mustRuns(t *testing.T, c *Climbing, key []byte, slot int) []store.Run {
	t.Helper()
	runs, err := c.RunsEq(key, slot)
	if err != nil {
		t.Fatal(err)
	}
	return runs
}

func TestBuildValidation(t *testing.T) {
	f := buildFixture(t, 7, 50, 10, 5, 3, 3)
	// Break referential integrity.
	t0, t1 := idx(t, f, "T0"), idx(t, f, "T1")
	f.inputs[t0].FKs[t1][0] = 9999
	if _, err := Build(f.dev, f.sch, f.inputs, VariantFull); err == nil {
		t.Fatal("dangling fk accepted")
	}
	f.inputs[t0].FKs[t1] = f.inputs[t0].FKs[t1][:5] // wrong length
	if _, err := Build(f.dev, f.sch, f.inputs, VariantFull); err == nil {
		t.Fatal("short fk column accepted")
	}
	delete(f.inputs, t1)
	if _, err := Build(f.dev, f.sch, f.inputs, VariantFull); err == nil {
		t.Fatal("missing table input accepted")
	}
}

func TestRunPagesArithmetic(t *testing.T) {
	// Guard against run descriptor encoding drift: offsets round-trip.
	f := buildFixture(t, 8, 100, 20, 10, 5, 5)
	cat, err := Build(f.dev, f.sch, f.inputs, VariantFull)
	if err != nil {
		t.Fatal(err)
	}
	ci, _ := cat.AttrIndex(idx(t, f, "T1"), 0)
	var total int
	for v := 0; v < 16; v++ {
		runs, err := ci.RunsEq([]byte{byte(v)}, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range runs {
			total += r.Count
		}
	}
	if total != 20 {
		t.Fatalf("self-level ids across all values = %d, want 20", total)
	}
	_ = binary.BigEndian
}
