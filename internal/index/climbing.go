package index

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"

	"ghostdb/internal/btree"
	"ghostdb/internal/flash"
	"ghostdb/internal/store"
)

// runDescWidth is the encoded width of one per-level run descriptor in a
// climbing index payload: byte offset (4) + count (4).
const runDescWidth = 8

// Climbing is a climbing index on one attribute of one table (§3.2). Each
// distinct attribute value maps to one sorted ID sublist *per level*,
// where a level is the table itself or one of its ancestors up to the
// root. For root-table attributes (single level) it degenerates to a
// plain B+-tree, exactly as the paper notes.
//
// An index with colIdx < 0 is the table's ID index ("Climbing Index on
// T1.id" in Figure 4): keys are tuple identifiers and levels contain
// ancestor IDs only.
//
// The index keys and ID sublists are hidden data (they enumerate hidden
// attribute values); nothing derived from them may reach the untrusted
// side or an error/log string (ghostdb-lint trustboundary).
//
//ghostdb:hidden
type Climbing struct {
	table  int
	colIdx int // data-column position, or -1 for the id index
	keyW   int
	levels []int // table index per payload slot
	tree   *btree.Tree
	lists  *store.ListSegment
	dist   *keyDist // secure-side key distribution (attribute indexes)
}

// distSampleSize bounds the equi-depth boundary sample kept per
// attribute index: 128 boundaries of a char(10) key are ~1.3KB of token
// metadata — small against the index itself.
const distSampleSize = 128

// distExtraCap bounds the post-load inserted keys tracked exactly;
// beyond it, inserts still count toward the total (slightly diluting
// the per-key resolution, never the total-row denominator).
const distExtraCap = 4096

// keyDist is the secure-side distribution summary of one indexed
// attribute: equi-depth boundaries sampled from the bulk build plus the
// post-load inserted keys. It lives with the index on the token and is
// consulted only at plan time; the raw boundaries are never shipped to
// the untrusted side — only the derived scalar selectivity estimate
// appears in plans and EXPLAIN output.
//
// mu guards extra/extraN: planning deliberately runs outside the
// token's execution slot, so a concurrent INSERT (which holds the slot
// and calls add) would otherwise race the estimator's reads. The bulk
// fields (sample, bulkTotal, distinct) are written only during Build,
// before the index is published.
type keyDist struct {
	mu        sync.Mutex
	bulkTotal int
	distinct  int
	sample    [][]byte // ascending equi-depth boundaries (≤ distSampleSize)
	extra     [][]byte // sorted post-load keys (≤ distExtraCap)
	extraN    int      // all post-load inserts, tracked or not
}

func (d *keyDist) totalLocked() int { return d.bulkTotal + d.extraN }

func (d *keyDist) add(key []byte) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.extraN++
	if len(d.extra) >= distExtraCap {
		return
	}
	k := append([]byte(nil), key...)
	i := sort.Search(len(d.extra), func(i int) bool { return bytes.Compare(d.extra[i], k) >= 0 })
	d.extra = append(d.extra, nil)
	copy(d.extra[i+1:], d.extra[i:])
	d.extra[i] = k
}

// fracBelow estimates the fraction of rows whose key sorts strictly
// before key.
func (d *keyDist) fracBelow(key []byte) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.totalLocked() == 0 {
		return 0
	}
	var est float64
	if d.bulkTotal > 0 && len(d.sample) > 0 {
		i := sort.Search(len(d.sample), func(i int) bool { return bytes.Compare(d.sample[i], key) >= 0 })
		est += float64(i) / float64(len(d.sample)+1) * float64(d.bulkTotal)
	}
	if len(d.extra) > 0 {
		i := sort.Search(len(d.extra), func(i int) bool { return bytes.Compare(d.extra[i], key) >= 0 })
		// Scale tracked extras up to all extras.
		est += float64(i) / float64(len(d.extra)) * float64(d.extraN)
	}
	f := est / float64(d.totalLocked())
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// fracEq estimates the fraction of rows carrying exactly one key value:
// the average bucket, 1/distinct.
func (d *keyDist) fracEq() float64 {
	if d.distinct <= 0 {
		return 0
	}
	return 1 / float64(d.distinct)
}

// EstimateFracBelow estimates the fraction of the table's rows whose
// indexed value sorts strictly below the encoded key, from the
// statistics kept on the token. ok=false when the index keeps none (id
// indexes — their key space is dense and exact math beats sampling).
func (c *Climbing) EstimateFracBelow(key []byte) (float64, bool) {
	if c.dist == nil {
		return 0, false
	}
	return c.dist.fracBelow(key), true
}

// EstimateFracEq estimates the fraction of rows equal to any one key.
func (c *Climbing) EstimateFracEq() (float64, bool) {
	if c.dist == nil {
		return 0, false
	}
	return c.dist.fracEq(), true
}

// ErrNoLevel is returned when an index does not carry the requested level.
var ErrNoLevel = errors.New("index: level not present in climbing index")

// Table returns the indexed table.
func (c *Climbing) Table() int { return c.table }

// ColIdx returns the indexed column position, or -1 for an ID index.
func (c *Climbing) ColIdx() int { return c.colIdx }

// Levels returns the table index carried at each payload slot.
func (c *Climbing) Levels() []int { return c.levels }

// KeyWidth returns the encoded key width.
func (c *Climbing) KeyWidth() int { return c.keyW }

// Tree exposes the underlying B+-tree (its height bounds the RAM buffers
// a CI operator must reserve).
func (c *Climbing) Tree() *btree.Tree { return c.tree }

// Lists exposes the run store backing the sublists.
func (c *Climbing) Lists() *store.ListSegment { return c.lists }

// Pages returns the flash footprint of tree plus sublists.
func (c *Climbing) Pages() int { return c.tree.Pages() + c.lists.Pages() }

// LevelOf maps a table index to its payload slot.
func (c *Climbing) LevelOf(table int) (int, bool) {
	for i, t := range c.levels {
		if t == table {
			return i, true
		}
	}
	return 0, false
}

func (c *Climbing) decodeRun(payload []byte, slot int) store.Run {
	off := slot * runDescWidth
	return store.Run{
		Off:   int(binary.BigEndian.Uint32(payload[off:])),
		Count: int(binary.BigEndian.Uint32(payload[off+4:])),
	}
}

// RunsEq returns the sublists at the given level slot for all entries
// whose key equals key (bulk entries plus any post-load insert entries).
func (c *Climbing) RunsEq(key []byte, slot int) ([]store.Run, error) {
	if slot < 0 || slot >= len(c.levels) {
		return nil, ErrNoLevel
	}
	cur, err := c.tree.Seek(key)
	if err != nil {
		return nil, err
	}
	var runs []store.Run
	for {
		k, p, ok, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if !ok || !bytes.Equal(k, key) {
			return runs, nil
		}
		if r := c.decodeRun(p, slot); r.Count > 0 {
			runs = append(runs, r)
		}
	}
}

// RunsRange returns the sublists at the given level slot for all entries
// with lo <= key <= hi (nil bound = open). Bounds are encoded keys;
// strictness is handled by the caller nudging bounds, or via the loInc /
// hiInc flags.
func (c *Climbing) RunsRange(lo, hi []byte, loInc, hiInc bool, slot int) ([]store.Run, error) {
	if slot < 0 || slot >= len(c.levels) {
		return nil, ErrNoLevel
	}
	var cur *btree.Cursor
	var err error
	if lo == nil {
		cur, err = c.tree.First()
	} else {
		cur, err = c.tree.Seek(lo)
	}
	if err != nil {
		return nil, err
	}
	var runs []store.Run
	for {
		k, p, ok, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return runs, nil
		}
		if lo != nil && !loInc && bytes.Equal(k, lo) {
			continue
		}
		if hi != nil {
			cmp := bytes.Compare(k, hi)
			if cmp > 0 || (cmp == 0 && !hiInc) {
				return runs, nil
			}
		}
		if r := c.decodeRun(p, slot); r.Count > 0 {
			runs = append(runs, r)
		}
	}
}

// RunsForID is the ID-index lookup: one full tree descent per identifier,
// which is precisely why Pre-Filter degrades at low selectivity ("as many
// lookups on the T1.id index as there are tuples resulting from the
// Visible selection", §3.3).
func (c *Climbing) RunsForID(id uint32, slot int) ([]store.Run, error) {
	if c.colIdx >= 0 {
		return nil, fmt.Errorf("index: RunsForID on attribute index")
	}
	var key [4]byte
	binary.BigEndian.PutUint32(key[:], id)
	return c.RunsEq(key[:], slot)
}

// InsertEntry adds a post-load entry mapping key to one ID per level
// (levels without a contribution may pass no id via a negative sentinel).
// The new sublists are tiny runs appended to the list segment; lookups
// union them with the bulk runs.
func (c *Climbing) InsertEntry(key []byte, perLevel []int64) error {
	if len(perLevel) != len(c.levels) {
		// The level count is schema arity (ancestor chain length), not
		// data content — a reviewed declassification.
		//ghostdb:public
		return fmt.Errorf("index: InsertEntry has %d levels, want %d", len(perLevel), len(c.levels))
	}
	if err := c.lists.Reopen(); err != nil {
		return err
	}
	payload := make([]byte, len(c.levels)*runDescWidth)
	for i, v := range perLevel {
		if v < 0 {
			continue // empty run: Count stays 0
		}
		run, err := c.lists.AppendRun([]uint32{uint32(v)})
		if err != nil {
			return err
		}
		binary.BigEndian.PutUint32(payload[i*runDescWidth:], uint32(run.Off))
		binary.BigEndian.PutUint32(payload[i*runDescWidth+4:], uint32(run.Count))
	}
	if err := c.lists.Seal(); err != nil {
		return err
	}
	// Keep the token-side distribution current: a self-level
	// contribution is one new row carrying this key.
	if c.dist != nil {
		if slot, ok := c.LevelOf(c.table); ok && perLevel[slot] >= 0 {
			c.dist.add(key)
		}
	}
	return c.tree.Insert(key, payload)
}

// climbingInput is everything needed to build one climbing index.
type climbingInput struct {
	table  int
	colIdx int // -1 for id index
	keyW   int
	vals   []byte // encoded values, keyW bytes per row of the table (nil for id index)
	rows   int
	// perLevel[i] is nil for the self level; for ancestor level A it maps
	// each A-row to its descendant row in the indexed table.
	levels    []int
	descOfLvl [][]uint32
}

// buildClimbing constructs the index: it assigns an ordinal to each
// distinct value, sorts (ordinal, id) pairs per level, packs the sorted
// groups as runs in a list segment and bulk-loads the B+-tree.
func buildClimbing(dev *flash.Device, in climbingInput) (*Climbing, error) {
	c := &Climbing{
		table:  in.table,
		colIdx: in.colIdx,
		keyW:   in.keyW,
		levels: in.levels,
		lists:  store.NewListSegment(dev),
	}
	var distinct [][]byte // ascending encoded keys
	var ordOfRow []uint32 // row -> ordinal
	if in.colIdx >= 0 {
		order := make([]uint32, in.rows)
		for i := range order {
			order[i] = uint32(i)
		}
		sort.Slice(order, func(a, b int) bool {
			ra, rb := order[a], order[b]
			cmp := bytes.Compare(in.vals[int(ra)*in.keyW:int(ra+1)*in.keyW],
				in.vals[int(rb)*in.keyW:int(rb+1)*in.keyW])
			if cmp != 0 {
				return cmp < 0
			}
			return ra < rb
		})
		ordOfRow = make([]uint32, in.rows)
		for _, r := range order {
			v := in.vals[int(r)*in.keyW : int(r+1)*in.keyW]
			if len(distinct) == 0 || !bytes.Equal(distinct[len(distinct)-1], v) {
				distinct = append(distinct, v)
			}
			ordOfRow[r] = uint32(len(distinct) - 1)
		}
		// Equi-depth boundary sample over the sorted rows: the token-side
		// statistics the planner's hidden-selectivity estimates come from.
		if in.rows > 0 {
			d := &keyDist{bulkTotal: in.rows}
			n := distSampleSize
			if n > in.rows {
				n = in.rows
			}
			for s := 1; s <= n; s++ {
				row := order[(s*in.rows/(n+1))%in.rows]
				// Copy the boundary key: aliasing in.vals would pin the
				// whole transient build column in memory for the DB's life.
				d.sample = append(d.sample,
					append([]byte(nil), in.vals[int(row)*in.keyW:int(row+1)*in.keyW]...))
			}
			c.dist = d
		}
	} else {
		// ID index: the key of row i is i itself; every id is distinct.
		distinct = make([][]byte, in.rows)
		keys := make([]byte, in.rows*4)
		for i := 0; i < in.rows; i++ {
			binary.BigEndian.PutUint32(keys[i*4:], uint32(i))
			distinct[i] = keys[i*4 : i*4+4]
		}
		// ordOfRow is the identity; represented implicitly below.
	}
	nvals := len(distinct)
	if c.dist != nil {
		c.dist.distinct = nvals
	}

	// Sorted (ordinal, id) pairs per level, composite-encoded in uint64.
	sorted := make([][]uint64, len(in.levels))
	for li, lvlTable := range in.levels {
		if lvlTable == in.table {
			// Self level: group rows by ordinal.
			comp := make([]uint64, in.rows)
			for i := 0; i < in.rows; i++ {
				ord := uint64(uint32(i))
				if in.colIdx >= 0 {
					ord = uint64(ordOfRow[i])
				}
				comp[i] = ord<<32 | uint64(uint32(i))
			}
			slices.Sort(comp)
			sorted[li] = comp
			continue
		}
		descTi := in.descOfLvl[li]
		comp := make([]uint64, len(descTi))
		for a, ti := range descTi {
			ord := uint64(ti)
			if in.colIdx >= 0 {
				ord = uint64(ordOfRow[ti])
			}
			comp[a] = ord<<32 | uint64(uint32(a))
		}
		slices.Sort(comp)
		sorted[li] = comp
	}

	// Pack runs value by value and assemble the tree entries.
	entries := make([]btree.Entry, 0, nvals)
	pos := make([]int, len(in.levels))
	payloadW := len(in.levels) * runDescWidth
	for ord := 0; ord < nvals; ord++ {
		payload := make([]byte, payloadW)
		for li := range in.levels {
			comp := sorted[li]
			p := pos[li]
			if err := c.lists.BeginRun(); err != nil {
				return nil, err
			}
			n := 0
			for p < len(comp) && int(comp[p]>>32) == ord {
				if err := c.lists.Add(uint32(comp[p])); err != nil {
					return nil, err
				}
				p++
				n++
			}
			pos[li] = p
			run, err := c.lists.EndRun()
			if err != nil {
				return nil, err
			}
			binary.BigEndian.PutUint32(payload[li*runDescWidth:], uint32(run.Off))
			binary.BigEndian.PutUint32(payload[li*runDescWidth+4:], uint32(n))
		}
		entries = append(entries, btree.Entry{Key: distinct[ord], Payload: payload})
	}
	if err := c.lists.Seal(); err != nil {
		return nil, err
	}
	tree, err := btree.Bulk(dev, in.keyW, payloadW, &btree.SliceSource{Entries: entries})
	if err != nil {
		return nil, err
	}
	c.tree = tree
	return c, nil
}
