// Package ram enforces the secure chip's tiny RAM budget (64KB in the
// paper, i.e. 32 buffers of 2KB — the flash I/O unit). Security dictates a
// small silicon die, hence the small RAM; every GhostDB operator must
// acquire its working memory here and fail over to multi-pass algorithms
// when the budget is tight, exactly as the paper's operators do (§3.4).
//
// # Reservation protocol
//
// Operators never compute "what is left" with Available() arithmetic —
// that pattern races against grants held by other pipeline stages and
// turns a small budget into a hard error. Instead they declare needs and
// receive what the budget can actually give:
//
//   - Reserve(min, want) / ReserveBuffers(min, want) grant the largest
//     feasible allocation in [min, want]. An operator sizes its chunking
//     (staging area, batch capacity) from the grant it received and runs
//     more passes when min is all it gets. Reserve fails (wrapping
//     ErrExhausted) only when even min does not fit.
//
//   - Plan(claims...) admits a set of named sub-reservations atomically:
//     every pipeline stage (QEPSJ stream, merge writer, post-select
//     staging, ...) declares its buffer needs up front as a Claim
//     {Name, Min, Want}. Either every claim gets at least Min buffers or
//     the whole plan fails with ErrExhausted; leftover budget then tops
//     claims up toward Want in declaration order. Stages read their
//     actual allotment with Reservation.Buffers(name) and the operator
//     releases the whole pipeline with one Reservation.Release().
//
// # Concurrency
//
// A Manager is safe for concurrent use: reservation and release from
// multiple query sessions are serialized by an internal mutex, and every
// Reserve/Plan decision is atomic (no interleaving between the "what is
// free" check and the allocation). This is what lets internal/sched run
// several admitted sessions against one budget. Grants and Reservations
// themselves still belong to a single query: only their Release may be
// called from another goroutine.
//
// # Per-operator minimums
//
// With the reservation protocol the executor's operators degrade to
// multi-pass variants instead of erroring; each needs only a small fixed
// number of free buffers to make progress (its plan minimum):
//
//   - Merge sublist reduction: 3 buffers (2 input streams + 1 spill
//     writer); each reduction pass unions as many sublists as fit.
//   - QEPSJ pipeline (Merge→SJoin→ProbeBF→Store): 1 writer per stored
//     column + 1 anchor writer + 1 SKT reader, reserved up front so the
//     merge reduction above never eats them.
//   - Post-select: 3 buffers (1 id-staging chunk + 1 column reader + 1
//     position writer); a smaller staging grant only means the result
//     column is re-scanned more times (Figure 11's cost model).
//   - Column sort (σVH without visible data): 3 buffers (1 sort chunk +
//     1 reader + 1 writer); small chunks produce more runs, which are
//     consolidated by multi-pass unions.
//   - MJoin: 1 buffer per open reader/writer (σVH reader, spool cursor,
//     hidden-image reader, QEPSJ column reader, output writer — only
//     those the table shape needs) + 1 batch buffer; a minimal batch
//     grant only means more passes over the QEPSJ column.
//   - Final join: 1 buffer per fixed reader (anchor column, anchor spool,
//     anchor hidden image, one per projected id column) + 1 tuple-cursor
//     buffer per joined table; MJoin batch runs are consolidated first so
//     one cursor buffer per table always suffices.
//   - Bloom filters (Post-Filter, σVH) are pure optimizations: when no
//     RAM is left for a useful filter the operator proceeds unfiltered
//     instead of failing.
//
// Tests assert Manager.Leaked() after every query to catch operators that
// forget to release grants on error paths.
package ram

import (
	"errors"
	"fmt"
	"sync"
)

// DefaultBudget is the paper's secure-chip RAM size (Table 1).
const DefaultBudget = 65536

// ErrExhausted is returned when an allocation does not fit in the
// remaining budget.
var ErrExhausted = errors.New("ram: budget exhausted")

// Manager tracks the secure RAM budget. The zero value is unusable; use
// NewManager. All methods are safe for concurrent use.
type Manager struct {
	budget  int
	bufSize int

	mu        sync.Mutex
	inUse     int
	highWater int
	grants    int
}

// NewManager creates a manager with a total byte budget and the buffer
// granularity (the flash page size).
func NewManager(budget, bufSize int) *Manager {
	if budget <= 0 || bufSize <= 0 || budget < bufSize {
		panic(fmt.Sprintf("ram: invalid budget %d / buffer %d", budget, bufSize))
	}
	return &Manager{budget: budget, bufSize: bufSize}
}

// Budget returns the total byte budget.
func (m *Manager) Budget() int { return m.budget }

// BufferSize returns the allocation granularity in bytes.
func (m *Manager) BufferSize() int { return m.bufSize }

// Buffers returns the total budget expressed in whole buffers.
func (m *Manager) Buffers() int { return m.budget / m.bufSize }

// Available returns the bytes currently free.
func (m *Manager) Available() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.budget - m.inUse
}

// AvailableBuffers returns the number of whole buffers currently free.
func (m *Manager) AvailableBuffers() int { return m.Available() / m.bufSize }

// InUse returns the bytes currently allocated.
func (m *Manager) InUse() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inUse
}

// HighWater returns the maximum bytes ever simultaneously allocated.
func (m *Manager) HighWater() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.highWater
}

// Grant is a live RAM reservation. Release it exactly once.
type Grant struct {
	m        *Manager
	bytes    int
	released bool
}

// allocLocked reserves n bytes; the caller holds m.mu.
func (m *Manager) allocLocked(n int) (*Grant, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ram: non-positive allocation %d", n)
	}
	if m.inUse+n > m.budget {
		return nil, fmt.Errorf("%w: want %d, free %d of %d", ErrExhausted, n, m.budget-m.inUse, m.budget)
	}
	m.inUse += n
	m.grants++
	if m.inUse > m.highWater {
		m.highWater = m.inUse
	}
	return &Grant{m: m, bytes: n}, nil
}

// Alloc reserves n bytes, or fails with ErrExhausted.
func (m *Manager) Alloc(n int) (*Grant, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.allocLocked(n)
}

// AllocBuffers reserves n whole buffers.
func (m *Manager) AllocBuffers(n int) (*Grant, error) {
	return m.Alloc(n * m.bufSize)
}

// Reserve grants the largest feasible allocation in [min, want] bytes:
// want when it fits, whatever is free otherwise, and an ErrExhausted
// failure only when even min does not fit. Operators size their chunking
// from the grant they actually received and fall back to more passes
// when min is all they get. The clamp-and-allocate step is atomic with
// respect to concurrent reservations.
func (m *Manager) Reserve(min, want int) (*Grant, error) {
	if min <= 0 || want < min {
		return nil, fmt.Errorf("ram: invalid reservation [%d, %d]", min, want)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := want
	if free := m.budget - m.inUse; n > free {
		n = free
	}
	if n < min {
		return nil, fmt.Errorf("%w: need at least %d, free %d of %d",
			ErrExhausted, min, m.budget-m.inUse, m.budget)
	}
	return m.allocLocked(n)
}

// ReserveBuffers grants between min and want whole buffers, preferring
// want.
func (m *Manager) ReserveBuffers(min, want int) (*Grant, error) {
	if min <= 0 || want < min {
		return nil, fmt.Errorf("ram: invalid reservation [%d, %d] buffers", min, want)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := want
	if free := (m.budget - m.inUse) / m.bufSize; n > free {
		n = free
	}
	if n < min {
		return nil, fmt.Errorf("%w: need at least %d buffers, %d free of %d",
			ErrExhausted, min, (m.budget-m.inUse)/m.bufSize, m.Buffers())
	}
	return m.allocLocked(n * m.bufSize)
}

// Bytes returns the size of the reservation.
func (g *Grant) Bytes() int { return g.bytes }

// Buffers returns the reservation size in whole buffers.
func (g *Grant) Buffers() int { return g.bytes / g.m.bufSize }

// Release returns the reservation to the pool. Releasing twice panics:
// that is a bookkeeping bug, not a runtime condition.
func (g *Grant) Release() {
	if g == nil {
		return
	}
	g.m.mu.Lock()
	defer g.m.mu.Unlock()
	if g.released {
		panic("ram: double release")
	}
	g.released = true
	g.m.inUse -= g.bytes
	g.m.grants--
}

// Resize grows or shrinks the reservation in place, failing with
// ErrExhausted when growth does not fit.
func (g *Grant) Resize(n int) error {
	g.m.mu.Lock()
	defer g.m.mu.Unlock()
	if g.released {
		panic("ram: resize after release")
	}
	if n <= 0 {
		return fmt.Errorf("ram: non-positive resize %d", n)
	}
	delta := n - g.bytes
	if delta > 0 && g.m.inUse+delta > g.m.budget {
		return fmt.Errorf("%w: grow by %d, free %d", ErrExhausted, delta, g.m.budget-g.m.inUse)
	}
	g.m.inUse += delta
	g.bytes = n
	if g.m.inUse > g.m.highWater {
		g.m.highWater = g.m.inUse
	}
	return nil
}

// Claim declares one pipeline stage's buffer needs for a Plan: at least
// Min whole buffers (the stage cannot run with less), up to Want (what it
// can profitably use).
type Claim struct {
	Name string
	Min  int
	Want int
}

// Reservation is the live result of a Plan: one sub-grant per named
// claim. Release it exactly once to return the whole pipeline's memory.
// A Reservation belongs to the query that planned it; unlike the Manager
// it is not safe for concurrent use.
type Reservation struct {
	m     *Manager
	parts map[string]*Grant
	order []string
}

// Plan admits a set of named sub-reservations atomically. Every claim
// receives at least Min buffers or the whole plan fails with ErrExhausted
// (nothing is allocated on failure); leftover budget then tops claims up
// toward Want in declaration order. This lets the stages of one pipeline
// declare their needs up front instead of racing each other for
// leftovers. The whole plan is admitted under one lock, so concurrent
// sessions can never observe a half-allocated plan.
func (m *Manager) Plan(claims ...Claim) (*Reservation, error) {
	need := 0
	seen := make(map[string]bool, len(claims))
	for _, c := range claims {
		if c.Name == "" || c.Min < 0 || c.Want < c.Min {
			return nil, fmt.Errorf("ram: invalid claim %+v", c)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("ram: duplicate claim %q", c.Name)
		}
		seen[c.Name] = true
		need += c.Min
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	free := (m.budget - m.inUse) / m.bufSize
	if need > free {
		return nil, fmt.Errorf("%w: plan needs %d buffers, %d free of %d",
			ErrExhausted, need, free, m.Buffers())
	}
	// Distribute: mins first, then top up toward wants in order.
	give := make([]int, len(claims))
	spare := free - need
	for i, c := range claims {
		give[i] = c.Min
		if extra := c.Want - c.Min; extra > 0 {
			if extra > spare {
				extra = spare
			}
			give[i] += extra
			spare -= extra
		}
	}
	r := &Reservation{m: m, parts: make(map[string]*Grant, len(claims))}
	for i, c := range claims {
		if give[i] == 0 {
			r.parts[c.Name] = nil
			r.order = append(r.order, c.Name)
			continue
		}
		g, err := m.allocLocked(give[i] * m.bufSize)
		if err != nil {
			// Unreachable: the mins were checked against free above and
			// the lock is held; unwind defensively all the same.
			for _, name := range r.order {
				if pg := r.parts[name]; pg != nil {
					pg.released = true
					m.inUse -= pg.bytes
					m.grants--
				}
			}
			return nil, err
		}
		r.parts[c.Name] = g
		r.order = append(r.order, c.Name)
	}
	return r, nil
}

// Buffers returns the whole buffers granted to a named claim (0 for a
// zero-min claim that got nothing, or an unknown name).
func (r *Reservation) Buffers(name string) int {
	g := r.parts[name]
	if g == nil {
		return 0
	}
	return g.Buffers()
}

// Bytes returns the byte size granted to a named claim.
func (r *Reservation) Bytes(name string) int {
	g := r.parts[name]
	if g == nil {
		return 0
	}
	return g.Bytes()
}

// Release returns every sub-grant to the pool. Safe on a nil
// reservation, and idempotent — unlike Grant.Release — so an operator
// can return a pipeline's memory early and still keep a deferred
// Release for its error paths.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	for _, name := range r.order {
		if g := r.parts[name]; g != nil {
			g.Release()
			r.parts[name] = nil
		}
	}
}

// Leaked reports whether any grants are outstanding; tests use this to
// catch operators that forget to release buffers.
func (m *Manager) Leaked() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.grants != 0
}
