// Package ram enforces the secure chip's tiny RAM budget (64KB in the
// paper, i.e. 32 buffers of 2KB — the flash I/O unit). Security dictates a
// small silicon die, hence the small RAM; every GhostDB operator must
// acquire its working memory here and fails over to multi-pass algorithms
// when the budget is exhausted, exactly as the paper's operators do (§3.4).
package ram

import (
	"errors"
	"fmt"
)

// DefaultBudget is the paper's secure-chip RAM size (Table 1).
const DefaultBudget = 65536

// ErrExhausted is returned when an allocation does not fit in the
// remaining budget.
var ErrExhausted = errors.New("ram: budget exhausted")

// Manager tracks the secure RAM budget. The zero value is unusable; use
// NewManager.
type Manager struct {
	budget    int
	bufSize   int
	inUse     int
	highWater int
	grants    int
}

// NewManager creates a manager with a total byte budget and the buffer
// granularity (the flash page size).
func NewManager(budget, bufSize int) *Manager {
	if budget <= 0 || bufSize <= 0 || budget < bufSize {
		panic(fmt.Sprintf("ram: invalid budget %d / buffer %d", budget, bufSize))
	}
	return &Manager{budget: budget, bufSize: bufSize}
}

// Budget returns the total byte budget.
func (m *Manager) Budget() int { return m.budget }

// BufferSize returns the allocation granularity in bytes.
func (m *Manager) BufferSize() int { return m.bufSize }

// Buffers returns the total budget expressed in whole buffers.
func (m *Manager) Buffers() int { return m.budget / m.bufSize }

// Available returns the bytes currently free.
func (m *Manager) Available() int { return m.budget - m.inUse }

// AvailableBuffers returns the number of whole buffers currently free.
func (m *Manager) AvailableBuffers() int { return m.Available() / m.bufSize }

// InUse returns the bytes currently allocated.
func (m *Manager) InUse() int { return m.inUse }

// HighWater returns the maximum bytes ever simultaneously allocated.
func (m *Manager) HighWater() int { return m.highWater }

// Grant is a live RAM reservation. Release it exactly once.
type Grant struct {
	m        *Manager
	bytes    int
	released bool
}

// Alloc reserves n bytes, or fails with ErrExhausted.
func (m *Manager) Alloc(n int) (*Grant, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ram: non-positive allocation %d", n)
	}
	if m.inUse+n > m.budget {
		return nil, fmt.Errorf("%w: want %d, free %d of %d", ErrExhausted, n, m.Available(), m.budget)
	}
	m.inUse += n
	m.grants++
	if m.inUse > m.highWater {
		m.highWater = m.inUse
	}
	return &Grant{m: m, bytes: n}, nil
}

// AllocBuffers reserves n whole buffers.
func (m *Manager) AllocBuffers(n int) (*Grant, error) {
	return m.Alloc(n * m.bufSize)
}

// Bytes returns the size of the reservation.
func (g *Grant) Bytes() int { return g.bytes }

// Release returns the reservation to the pool. Releasing twice panics:
// that is a bookkeeping bug, not a runtime condition.
func (g *Grant) Release() {
	if g == nil {
		return
	}
	if g.released {
		panic("ram: double release")
	}
	g.released = true
	g.m.inUse -= g.bytes
	g.m.grants--
}

// Resize grows or shrinks the reservation in place, failing with
// ErrExhausted when growth does not fit.
func (g *Grant) Resize(n int) error {
	if g.released {
		panic("ram: resize after release")
	}
	if n <= 0 {
		return fmt.Errorf("ram: non-positive resize %d", n)
	}
	delta := n - g.bytes
	if delta > 0 && g.m.inUse+delta > g.m.budget {
		return fmt.Errorf("%w: grow by %d, free %d", ErrExhausted, delta, g.m.Available())
	}
	g.m.inUse += delta
	g.bytes = n
	if g.m.inUse > g.m.highWater {
		g.m.highWater = g.m.inUse
	}
	return nil
}

// Leaked reports whether any grants are outstanding; tests use this to
// catch operators that forget to release buffers.
func (m *Manager) Leaked() bool { return m.grants != 0 }
