package ram

import (
	"errors"
	"testing"
)

func TestBudgetEnforced(t *testing.T) {
	m := NewManager(65536, 2048)
	if m.Buffers() != 32 {
		t.Fatalf("buffers = %d, want 32", m.Buffers())
	}
	g, err := m.AllocBuffers(30)
	if err != nil {
		t.Fatal(err)
	}
	if m.AvailableBuffers() != 2 {
		t.Fatalf("available = %d, want 2", m.AvailableBuffers())
	}
	if _, err := m.AllocBuffers(3); !errors.Is(err, ErrExhausted) {
		t.Fatalf("over-allocation: %v", err)
	}
	g2, err := m.AllocBuffers(2)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	g2.Release()
	if m.InUse() != 0 || m.Leaked() {
		t.Fatalf("leak: inUse=%d", m.InUse())
	}
	if m.HighWater() != 65536 {
		t.Fatalf("high water = %d, want 65536", m.HighWater())
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	m := NewManager(4096, 2048)
	g, _ := m.Alloc(100)
	g.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	g.Release()
}

func TestResize(t *testing.T) {
	m := NewManager(4096, 2048)
	g, _ := m.Alloc(1000)
	if err := g.Resize(2000); err != nil {
		t.Fatal(err)
	}
	if m.InUse() != 2000 {
		t.Fatalf("inUse = %d", m.InUse())
	}
	if err := g.Resize(8000); !errors.Is(err, ErrExhausted) {
		t.Fatalf("oversize resize: %v", err)
	}
	if err := g.Resize(500); err != nil {
		t.Fatal(err)
	}
	if m.InUse() != 500 {
		t.Fatalf("inUse after shrink = %d", m.InUse())
	}
	g.Release()
}

func TestReserveGrantsLargestFeasible(t *testing.T) {
	m := NewManager(8192, 2048) // 4 buffers
	// Everything free: want is honored.
	g, err := m.Reserve(2048, 6144)
	if err != nil {
		t.Fatal(err)
	}
	if g.Bytes() != 6144 || g.Buffers() != 3 {
		t.Fatalf("got %d bytes / %d buffers", g.Bytes(), g.Buffers())
	}
	// Less than want free: the grant shrinks to what is there.
	g2, err := m.Reserve(1024, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Bytes() != 2048 {
		t.Fatalf("elastic grant = %d, want 2048", g2.Bytes())
	}
	// Less than min free: ErrExhausted.
	if _, err := m.Reserve(1024, 1024); !errors.Is(err, ErrExhausted) {
		t.Fatalf("reserve under min: %v", err)
	}
	g.Release()
	g2.Release()
	if m.Leaked() {
		t.Fatal("leak")
	}
	// Invalid ranges.
	if _, err := m.Reserve(0, 100); err == nil {
		t.Fatal("zero min accepted")
	}
	if _, err := m.Reserve(200, 100); err == nil {
		t.Fatal("want < min accepted")
	}
}

func TestReserveBuffers(t *testing.T) {
	m := NewManager(8192, 2048)
	g, err := m.ReserveBuffers(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Buffers() != 4 {
		t.Fatalf("got %d buffers, want all 4", g.Buffers())
	}
	if _, err := m.ReserveBuffers(1, 1); !errors.Is(err, ErrExhausted) {
		t.Fatalf("over-reserve: %v", err)
	}
	g.Release()
}

func TestPlanDistributesMinsThenWants(t *testing.T) {
	m := NewManager(16384, 2048) // 8 buffers
	r, err := m.Plan(
		Claim{Name: "writers", Min: 3, Want: 3},
		Claim{Name: "stage", Min: 1, Want: 10},
		Claim{Name: "reader", Min: 1, Want: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Buffers("writers"); got != 3 {
		t.Fatalf("writers = %d", got)
	}
	// stage gets its min plus all the spare (8 - 5 mins = 3 spare).
	if got := r.Buffers("stage"); got != 4 {
		t.Fatalf("stage = %d, want 4", got)
	}
	if got := r.Buffers("reader"); got != 1 {
		t.Fatalf("reader = %d", got)
	}
	if r.Bytes("stage") != 4*2048 {
		t.Fatalf("stage bytes = %d", r.Bytes("stage"))
	}
	if m.AvailableBuffers() != 0 {
		t.Fatalf("available = %d, want 0", m.AvailableBuffers())
	}
	r.Release()
	if m.Leaked() || m.InUse() != 0 {
		t.Fatalf("leak after release: %d in use", m.InUse())
	}
}

func TestPlanFailsAtomically(t *testing.T) {
	m := NewManager(8192, 2048) // 4 buffers
	held, err := m.AllocBuffers(2)
	if err != nil {
		t.Fatal(err)
	}
	// Mins total 3 but only 2 are free: whole plan refused, nothing kept.
	if _, err := m.Plan(
		Claim{Name: "a", Min: 2, Want: 2},
		Claim{Name: "b", Min: 1, Want: 1},
	); !errors.Is(err, ErrExhausted) {
		t.Fatalf("infeasible plan: %v", err)
	}
	if m.InUse() != 2*2048 {
		t.Fatalf("failed plan kept memory: %d in use", m.InUse())
	}
	held.Release()
	if m.Leaked() {
		t.Fatal("leak")
	}
	// Duplicate names are a caller bug, and must not leak either.
	if _, err := m.Plan(Claim{Name: "x", Min: 1, Want: 1}, Claim{Name: "x", Min: 1, Want: 1}); err == nil {
		t.Fatal("duplicate claim accepted")
	}
	if m.Leaked() {
		t.Fatal("duplicate-claim failure leaked")
	}
}

func TestPlanZeroMinClaim(t *testing.T) {
	m := NewManager(4096, 2048) // 2 buffers
	r, err := m.Plan(
		Claim{Name: "must", Min: 2, Want: 2},
		Claim{Name: "nice", Min: 0, Want: 4},
	)
	if err != nil {
		t.Fatal(err)
	}
	if r.Buffers("nice") != 0 {
		t.Fatalf("nice = %d, want 0", r.Buffers("nice"))
	}
	if r.Buffers("nosuch") != 0 {
		t.Fatal("unknown claim should read as 0")
	}
	r.Release()
	if m.Leaked() {
		t.Fatal("leak")
	}
}

func TestInvalidAlloc(t *testing.T) {
	m := NewManager(4096, 2048)
	if _, err := m.Alloc(0); err == nil {
		t.Fatal("zero alloc accepted")
	}
	if _, err := m.Alloc(-5); err == nil {
		t.Fatal("negative alloc accepted")
	}
}
