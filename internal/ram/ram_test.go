package ram

import (
	"errors"
	"testing"
)

func TestBudgetEnforced(t *testing.T) {
	m := NewManager(65536, 2048)
	if m.Buffers() != 32 {
		t.Fatalf("buffers = %d, want 32", m.Buffers())
	}
	g, err := m.AllocBuffers(30)
	if err != nil {
		t.Fatal(err)
	}
	if m.AvailableBuffers() != 2 {
		t.Fatalf("available = %d, want 2", m.AvailableBuffers())
	}
	if _, err := m.AllocBuffers(3); !errors.Is(err, ErrExhausted) {
		t.Fatalf("over-allocation: %v", err)
	}
	g2, err := m.AllocBuffers(2)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	g2.Release()
	if m.InUse() != 0 || m.Leaked() {
		t.Fatalf("leak: inUse=%d", m.InUse())
	}
	if m.HighWater() != 65536 {
		t.Fatalf("high water = %d, want 65536", m.HighWater())
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	m := NewManager(4096, 2048)
	g, _ := m.Alloc(100)
	g.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	g.Release()
}

func TestResize(t *testing.T) {
	m := NewManager(4096, 2048)
	g, _ := m.Alloc(1000)
	if err := g.Resize(2000); err != nil {
		t.Fatal(err)
	}
	if m.InUse() != 2000 {
		t.Fatalf("inUse = %d", m.InUse())
	}
	if err := g.Resize(8000); !errors.Is(err, ErrExhausted) {
		t.Fatalf("oversize resize: %v", err)
	}
	if err := g.Resize(500); err != nil {
		t.Fatal(err)
	}
	if m.InUse() != 500 {
		t.Fatalf("inUse after shrink = %d", m.InUse())
	}
	g.Release()
}

func TestInvalidAlloc(t *testing.T) {
	m := NewManager(4096, 2048)
	if _, err := m.Alloc(0); err == nil {
		t.Fatal("zero alloc accepted")
	}
	if _, err := m.Alloc(-5); err == nil {
		t.Fatal("negative alloc accepted")
	}
}
