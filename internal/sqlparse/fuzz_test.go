package sqlparse

import (
	"strings"
	"testing"
)

// FuzzParse drives the lexer and parser with arbitrary input: Parse
// must either return a statement or an error, and must never panic.
// The seed corpus covers every statement kind the query tests use plus
// classic lexer edge cases (unterminated strings, huge widths, stray
// operators, deep clause nesting).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		" ",
		"CREATE TABLE Patients (id int, name char(200) HIDDEN, age int)",
		"CREATE TABLE Measurements (id int, value float HIDDEN, doctor_id int REFERENCES Doctors)",
		"SELECT D.id, P.id, M.id FROM Doctors D, Patients P, Measurements M WHERE M.doctor_id = D.id AND M.patient_id = P.id",
		"SELECT * FROM Patients WHERE age = 50 AND bodymassindex = 23",
		"SELECT T0.*, T1.id FROM T0, T1 WHERE T0.fk1 = T1.id",
		"INSERT INTO Patients VALUES (1, 'bob', 42)",
		"INSERT INTO t (a, b) VALUES (1.5, 'x')",
		"SELECT a FROM t WHERE b >= 10 AND b <= 20",
		"SELECT a FROM t WHERE name = 'O''Brien'",
		"SELECT",
		"INSERT INTO t VALUES",
		"CREATE TABLE t (",
		"SELECT * FROM t WHERE a = 'unterminated",
		"CREATE TABLE t (c char(99999999999999999999))",
		"SELECT a FROM t WHERE a <> <> <>",
		"INSERT INTO t VALUES (-1, +2, --3)",
		"SELECT a FROM t WHERE a = 1e309",
		"UPDATE Patients SET age = 51 WHERE id = 7",
		"UPDATE t SET a = 'x', b = 2.5 WHERE c BETWEEN 1 AND 9 AND d < 'zz'",
		"UPDATE t SET name = 'O''Brien' WHERE name = 'O''Brien'",
		"UPDATE t SET",
		"UPDATE t SET a = b",
		"DELETE FROM Patients WHERE id >= 100 AND id < 200",
		"DELETE FROM t",
		"DELETE FROM t WHERE a = 'unterminated",
		"DELETE FROM t WHERE a = b.c",
		"DELETE t WHERE",
		"\x00\xff;DROP TABLE t",
		strings.Repeat("(", 1000),
		"SELECT " + strings.Repeat("a,", 500) + "a FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err == nil && stmt == nil {
			t.Fatalf("Parse(%q) = nil statement, nil error", src)
		}
	})
}
