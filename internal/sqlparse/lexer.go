// Package sqlparse implements the SQL subset GhostDB exposes: CREATE
// TABLE with the paper's HIDDEN annotation (§2.1), select-project-join
// queries with conjunctive predicates (§3), and INSERT for updates.
// "Users issue completely standard SQL, so application logic is
// unchanged" (§7) — the grammar is ordinary SQL; HIDDEN is the only
// extension, and it appears solely in the schema definition.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , ; . *
	tokOp     // = < > <= >= <> !=
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes a SQL string.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
		case c >= '0' && c <= '9' || c == '-' && l.peekDigit():
			l.pos++
			for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		case c == '\'':
			l.pos++
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, fmt.Errorf("sql: unterminated string at %d", start)
				}
				if l.src[l.pos] == '\'' {
					if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
						sb.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				sb.WriteByte(l.src[l.pos])
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
		case strings.ContainsRune("(),;.*", rune(c)):
			l.pos++
			l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		case c == '=' || c == '<' || c == '>' || c == '!':
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '=' || (c == '<' && l.src[l.pos] == '>')) {
				l.pos++
			}
			op := l.src[start:l.pos]
			if op == "!" {
				return nil, fmt.Errorf("sql: stray '!' at %d", start)
			}
			l.toks = append(l.toks, token{kind: tokOp, text: op, pos: start})
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, start)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// -- line comments
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func (l *lexer) peekDigit() bool {
	return l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }

func isIdentPart(r rune) bool { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }
