package sqlparse

import (
	"fmt"
	"strings"

	"ghostdb/internal/schema"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// CreateTable declares a table; HIDDEN columns and foreign keys are
// captured in the embedded schema definition.
type CreateTable struct {
	Def schema.TableDef
}

// Insert adds one tuple.
type Insert struct {
	Table   string
	Columns []string // optional explicit column list (fk names included)
	Values  []schema.Value
}

// CompareOp enumerates predicate comparison operators.
type CompareOp int

const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpBetween // value in [Lo, Hi]
)

func (o CompareOp) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpBetween:
		return "BETWEEN"
	}
	return "?"
}

// ColRef references a column, optionally qualified by table name.
type ColRef struct {
	Table  string // may be empty (resolved against FROM tables)
	Column string
}

func (c ColRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// Predicate is one conjunct `col op literal` (or BETWEEN lo AND hi).
type Predicate struct {
	Col ColRef
	Op  CompareOp
	Lo  schema.Value
	Hi  schema.Value // only for OpBetween
}

func (p Predicate) String() string {
	if p.Op == OpBetween {
		return fmt.Sprintf("%s BETWEEN %s AND %s", p.Col, p.Lo, p.Hi)
	}
	return fmt.Sprintf("%s %s %s", p.Col, p.Op, quoted(p.Lo))
}

func quoted(v schema.Value) string {
	if v.Kind == schema.KindChar {
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	return v.String()
}

// JoinPred is an equi-join conjunct `a.x = b.y`.
type JoinPred struct {
	Left, Right ColRef
}

// TableRef is a FROM-clause table, optionally aliased (FROM Patients P).
type TableRef struct {
	Name  string
	Alias string // empty when not aliased
}

func (t TableRef) String() string {
	if t.Alias == "" {
		return t.Name
	}
	return t.Name + " " + t.Alias
}

// Select is a select-project-join query with a conjunctive WHERE clause.
// Count marks a SELECT COUNT(*) query (the only aggregate supported — the
// paper leaves aggregates as future work; counting falls out of the exact
// SPJ pipeline for free).
type Select struct {
	Star        bool
	Count       bool
	Projections []ColRef // empty iff Star or Count
	From        []TableRef
	Preds       []Predicate
	Joins       []JoinPred
}

// Assign is one `col = literal` clause of an UPDATE's SET list.
type Assign struct {
	Column string
	Value  schema.Value
}

// Update modifies existing tuples in place: every matching row gets the
// SET values. The WHERE clause is a conjunction of single-table
// predicates (no joins — DML is single-table by design).
type Update struct {
	Table string
	Sets  []Assign
	Preds []Predicate
}

// Delete tombstones matching tuples. The surrogate ids of deleted rows
// are never reused.
type Delete struct {
	Table string
	Preds []Predicate
}

func (CreateTable) stmt() {}
func (Insert) stmt()      {}
func (*Select) stmt()     {}
func (*Update) stmt()     {}
func (*Delete) stmt()     {}
