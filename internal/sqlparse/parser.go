package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"ghostdb/internal/schema"
)

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	return text == "" || strings.EqualFold(t.text, text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		t := p.cur()
		p.i++
		return t, nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: pos %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) keyword(kw string) bool { return p.accept(tokIdent, kw) }

func (p *parser) statement() (Statement, error) {
	switch {
	case p.keyword("CREATE"):
		return p.createTable()
	case p.keyword("SELECT"):
		return p.selectStmt()
	case p.keyword("INSERT"):
		return p.insertStmt()
	case p.keyword("UPDATE"):
		return p.updateStmt()
	case p.keyword("DELETE"):
		return p.deleteStmt()
	}
	return nil, p.errf("expected CREATE, SELECT, INSERT, UPDATE or DELETE, found %q", p.cur().text)
}

// updateStmt parses UPDATE t SET c1 = v1 [, c2 = v2 ...] [WHERE preds].
func (p *parser) updateStmt() (Statement, error) {
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "SET"); err != nil {
		return nil, err
	}
	upd := &Update{Table: name.text}
	for {
		c, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		upd.Sets = append(upd.Sets, Assign{Column: c.text, Value: v})
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	upd.Preds, err = p.wherePreds()
	if err != nil {
		return nil, err
	}
	return upd, nil
}

// deleteStmt parses DELETE FROM t [WHERE preds].
func (p *parser) deleteStmt() (Statement, error) {
	if _, err := p.expect(tokIdent, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: name.text}
	del.Preds, err = p.wherePreds()
	if err != nil {
		return nil, err
	}
	return del, nil
}

// wherePreds parses an optional DML WHERE clause: selection conjuncts
// only (col op literal, col BETWEEN lo AND hi) — joins are a SELECT
// concept and are rejected here.
func (p *parser) wherePreds() ([]Predicate, error) {
	if !p.keyword("WHERE") {
		return nil, nil
	}
	var preds []Predicate
	for {
		left, err := p.colRef()
		if err != nil {
			return nil, err
		}
		if p.keyword("BETWEEN") {
			lo, err := p.literal()
			if err != nil {
				return nil, err
			}
			if !p.keyword("AND") {
				return nil, p.errf("BETWEEN needs AND")
			}
			hi, err := p.literal()
			if err != nil {
				return nil, err
			}
			preds = append(preds, Predicate{Col: left, Op: OpBetween, Lo: lo, Hi: hi})
		} else {
			opTok, err := p.expect(tokOp, "")
			if err != nil {
				return nil, err
			}
			op, err := compareOp(opTok.text)
			if err != nil {
				return nil, err
			}
			if p.at(tokIdent, "") && !isKeywordLiteral(p.cur().text) {
				return nil, p.errf("DML predicates compare against literals, found column %q", p.cur().text)
			}
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			preds = append(preds, Predicate{Col: left, Op: op, Lo: v})
		}
		if !p.keyword("AND") {
			break
		}
	}
	return preds, nil
}

// createTable parses
//
//	CREATE TABLE name (id int, col type [HIDDEN], fk int REFERENCES T [HIDDEN], ...)
func (p *parser) createTable() (Statement, error) {
	if _, err := p.expect(tokIdent, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	def := schema.TableDef{Name: name.text}
	for {
		colName, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		kind, width, err := p.columnType()
		if err != nil {
			return nil, err
		}
		if p.keyword("REFERENCES") {
			child, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if kind != schema.KindInt {
				return nil, p.errf("foreign key %q must be int", colName.text)
			}
			hidden := p.keyword("HIDDEN")
			def.Refs = append(def.Refs, schema.Ref{FKColumn: colName.text, Child: child.text, Hidden: hidden})
		} else if strings.EqualFold(colName.text, "id") {
			// The surrogate identifier is implicit; accept and drop the
			// declaration, as in the paper's CREATE TABLE examples.
			if kind != schema.KindInt {
				return nil, p.errf("surrogate id must be int")
			}
			if p.keyword("HIDDEN") {
				return nil, p.errf("the id is replicated on both sides and cannot be HIDDEN")
			}
		} else {
			hidden := p.keyword("HIDDEN")
			def.Columns = append(def.Columns, schema.Column{
				Name: colName.text, Kind: kind, Width: width, Hidden: hidden,
			})
		}
		if p.accept(tokSymbol, ",") {
			continue
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		break
	}
	return CreateTable{Def: def}, nil
}

func (p *parser) columnType() (schema.Kind, int, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return 0, 0, err
	}
	switch strings.ToLower(t.text) {
	case "int", "integer", "bigint":
		return schema.KindInt, 0, nil
	case "float", "real", "double":
		return schema.KindFloat, 0, nil
	case "char", "varchar":
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return 0, 0, err
		}
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return 0, 0, err
		}
		w, err := strconv.Atoi(n.text)
		if err != nil || w <= 0 {
			return 0, 0, p.errf("bad char width %q", n.text)
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return 0, 0, err
		}
		return schema.KindChar, w, nil
	}
	return 0, 0, p.errf("unknown type %q", t.text)
}

// insertStmt parses INSERT INTO t [(c1, c2, ...)] VALUES (v1, v2, ...).
func (p *parser) insertStmt() (Statement, error) {
	if _, err := p.expect(tokIdent, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	ins := Insert{Table: name.text}
	if p.accept(tokSymbol, "(") {
		for {
			c, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c.text)
			if p.accept(tokSymbol, ",") {
				continue
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if _, err := p.expect(tokIdent, "VALUES"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		ins.Values = append(ins.Values, v)
		if p.accept(tokSymbol, ",") {
			continue
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		break
	}
	return ins, nil
}

// selectStmt parses SELECT cols FROM tables [WHERE conjuncts].
func (p *parser) selectStmt() (Statement, error) {
	sel := &Select{}
	if p.accept(tokSymbol, "*") {
		sel.Star = true
	} else if p.at(tokIdent, "COUNT") && p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
		p.i += 2
		if _, err := p.expect(tokSymbol, "*"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		sel.Count = true
	} else {
		for {
			ref, err := p.colRef()
			if err != nil {
				return nil, err
			}
			sel.Projections = append(sel.Projections, ref)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokIdent, "FROM"); err != nil {
		return nil, err
	}
	for {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ref := TableRef{Name: t.text}
		// Optional alias: a bare identifier that is not a clause keyword.
		if p.at(tokIdent, "") && !isClauseKeyword(p.cur().text) {
			ref.Alias = p.cur().text
			p.i++
		}
		sel.From = append(sel.From, ref)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.keyword("WHERE") {
		for {
			if err := p.conjunct(sel); err != nil {
				return nil, err
			}
			if !p.keyword("AND") {
				break
			}
		}
	}
	return sel, nil
}

// conjunct parses one WHERE conjunct: a join (a.x = b.y), a comparison
// (col op literal, in either order) or col BETWEEN lo AND hi.
func (p *parser) conjunct(sel *Select) error {
	left, err := p.colRef()
	if err != nil {
		return err
	}
	if p.keyword("BETWEEN") {
		lo, err := p.literal()
		if err != nil {
			return err
		}
		if !p.keyword("AND") {
			return p.errf("BETWEEN needs AND")
		}
		hi, err := p.literal()
		if err != nil {
			return err
		}
		sel.Preds = append(sel.Preds, Predicate{Col: left, Op: OpBetween, Lo: lo, Hi: hi})
		return nil
	}
	opTok, err := p.expect(tokOp, "")
	if err != nil {
		return err
	}
	op, err := compareOp(opTok.text)
	if err != nil {
		return err
	}
	// Right-hand side: column (join) or literal (selection).
	if p.at(tokIdent, "") && !isKeywordLiteral(p.cur().text) {
		right, err := p.colRef()
		if err != nil {
			return err
		}
		if op != OpEq {
			return p.errf("only equi-joins are supported, found %q", opTok.text)
		}
		sel.Joins = append(sel.Joins, JoinPred{Left: left, Right: right})
		return nil
	}
	v, err := p.literal()
	if err != nil {
		return err
	}
	sel.Preds = append(sel.Preds, Predicate{Col: left, Op: op, Lo: v})
	return nil
}

func isClauseKeyword(s string) bool {
	switch strings.ToUpper(s) {
	case "WHERE", "AND", "FROM", "SELECT", "ORDER", "GROUP", "LIMIT":
		return true
	}
	return false
}

func isKeywordLiteral(s string) bool {
	switch strings.ToUpper(s) {
	case "TRUE", "FALSE", "NULL":
		return true
	}
	return false
}

func compareOp(s string) (CompareOp, error) {
	switch s {
	case "=":
		return OpEq, nil
	case "<>", "!=":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	}
	return 0, fmt.Errorf("sql: unknown operator %q", s)
}

func (p *parser) colRef() (ColRef, error) {
	first, err := p.expect(tokIdent, "")
	if err != nil {
		return ColRef{}, err
	}
	if p.accept(tokSymbol, ".") {
		if p.accept(tokSymbol, "*") {
			return ColRef{Table: first.text, Column: "*"}, nil
		}
		second, err := p.expect(tokIdent, "")
		if err != nil {
			return ColRef{}, err
		}
		return ColRef{Table: first.text, Column: second.text}, nil
	}
	return ColRef{Column: first.text}, nil
}

func (p *parser) literal() (schema.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.i++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return schema.Value{}, p.errf("bad float %q", t.text)
			}
			return schema.FloatVal(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return schema.Value{}, p.errf("bad int %q", t.text)
		}
		return schema.IntVal(n), nil
	case tokString:
		p.i++
		return schema.CharVal(t.text), nil
	}
	return schema.Value{}, p.errf("expected literal, found %q", t.text)
}
