package sqlparse

import (
	"strings"
	"testing"

	"ghostdb/internal/schema"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestCreateTablePaperExample(t *testing.T) {
	// Verbatim from §2.1 of the paper.
	stmt := mustParse(t, `CREATE TABLE Patients (id int, name char(200) HIDDEN,
	  age int, city char(100), bodymassindex float HIDDEN)`)
	ct, ok := stmt.(CreateTable)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ct.Def.Name != "Patients" {
		t.Fatalf("name = %q", ct.Def.Name)
	}
	if len(ct.Def.Columns) != 4 { // id is implicit
		t.Fatalf("columns = %d", len(ct.Def.Columns))
	}
	byName := map[string]schema.Column{}
	for _, c := range ct.Def.Columns {
		byName[c.Name] = c
	}
	if !byName["name"].Hidden || byName["name"].Width != 200 {
		t.Fatalf("name column = %+v", byName["name"])
	}
	if byName["age"].Hidden || byName["age"].Kind != schema.KindInt {
		t.Fatalf("age column = %+v", byName["age"])
	}
	if !byName["bodymassindex"].Hidden || byName["bodymassindex"].Kind != schema.KindFloat {
		t.Fatalf("bmi column = %+v", byName["bodymassindex"])
	}
}

func TestCreateTableWithReferences(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE Measurements (id int,
	  patient_id int REFERENCES Patients HIDDEN,
	  drug_id int REFERENCES Drugs HIDDEN,
	  time char(10), measurement char(10), comment char(100));`)
	ct := stmt.(CreateTable)
	if len(ct.Def.Refs) != 2 {
		t.Fatalf("refs = %+v", ct.Def.Refs)
	}
	if ct.Def.Refs[0].Child != "Patients" || !ct.Def.Refs[0].Hidden {
		t.Fatalf("ref[0] = %+v", ct.Def.Refs[0])
	}
	if len(ct.Def.Columns) != 3 {
		t.Fatalf("columns = %d", len(ct.Def.Columns))
	}
}

func TestSelectPaperQuery(t *testing.T) {
	// The psychiatrist query from §3.
	stmt := mustParse(t, `SELECT D.id, P.id, M.id
	  FROM Measurements M, Doctors D, Patients P
	  WHERE M.pid = P.id AND P.did = D.id
	  AND D.specialty = 'Psychiatrist'
	  AND P.bodymassindex > 25`)
	sel := stmt.(*Select)
	if len(sel.Projections) != 3 || sel.Projections[0].String() != "D.id" {
		t.Fatalf("projections = %v", sel.Projections)
	}
	if len(sel.From) != 3 {
		t.Fatalf("from = %v", sel.From)
	}
	if sel.From[0].Name != "Measurements" || sel.From[0].Alias != "M" {
		t.Fatalf("from[0] = %+v", sel.From[0])
	}
	if len(sel.Joins) != 2 || len(sel.Preds) != 2 {
		t.Fatalf("joins=%d preds=%d", len(sel.Joins), len(sel.Preds))
	}
	if sel.Preds[0].Op != OpEq || sel.Preds[0].Lo.S != "Psychiatrist" {
		t.Fatalf("pred[0] = %+v", sel.Preds[0])
	}
	if sel.Preds[1].Op != OpGt || sel.Preds[1].Lo.I != 25 {
		t.Fatalf("pred[1] = %+v", sel.Preds[1])
	}
}

func TestSelectStarAndTableStar(t *testing.T) {
	sel := mustParse(t, `SELECT * FROM Patients WHERE age = 50 AND bodymassindex = 23`).(*Select)
	if !sel.Star || len(sel.Preds) != 2 {
		t.Fatalf("star=%v preds=%d", sel.Star, len(sel.Preds))
	}
	sel2 := mustParse(t, `SELECT T0.*, T1.id FROM T0, T1 WHERE T0.fk1 = T1.id`).(*Select)
	if sel2.Projections[0].Column != "*" || sel2.Projections[0].Table != "T0" {
		t.Fatalf("table star = %v", sel2.Projections[0])
	}
	if len(sel2.Joins) != 1 {
		t.Fatalf("joins = %v", sel2.Joins)
	}
}

func TestSelectOperatorsAndBetween(t *testing.T) {
	sel := mustParse(t, `SELECT id FROM T WHERE a <= 3 AND b >= 4 AND c <> 'x'
	  AND d != 5 AND e BETWEEN 10 AND 20 AND f < 1.5`).(*Select)
	ops := []CompareOp{OpLe, OpGe, OpNe, OpNe, OpBetween, OpLt}
	if len(sel.Preds) != len(ops) {
		t.Fatalf("preds = %d", len(sel.Preds))
	}
	for i, op := range ops {
		if sel.Preds[i].Op != op {
			t.Fatalf("pred %d op = %v, want %v", i, sel.Preds[i].Op, op)
		}
	}
	if sel.Preds[4].Lo.I != 10 || sel.Preds[4].Hi.I != 20 {
		t.Fatalf("between = %+v", sel.Preds[4])
	}
	if sel.Preds[5].Lo.Kind != schema.KindFloat {
		t.Fatalf("float literal = %+v", sel.Preds[5].Lo)
	}
}

func TestStringEscapes(t *testing.T) {
	sel := mustParse(t, `SELECT id FROM T WHERE name = 'O''Brien'`).(*Select)
	if sel.Preds[0].Lo.S != "O'Brien" {
		t.Fatalf("escaped string = %q", sel.Preds[0].Lo.S)
	}
}

func TestNegativeNumbers(t *testing.T) {
	sel := mustParse(t, `SELECT id FROM T WHERE a = -42`).(*Select)
	if sel.Preds[0].Lo.I != -42 {
		t.Fatalf("negative literal = %+v", sel.Preds[0].Lo)
	}
}

func TestInsert(t *testing.T) {
	ins := mustParse(t, `INSERT INTO Patients (fk1, name, age) VALUES (7, 'Bob', 52)`).(Insert)
	if ins.Table != "Patients" || len(ins.Columns) != 3 || len(ins.Values) != 3 {
		t.Fatalf("insert = %+v", ins)
	}
	if ins.Values[1].S != "Bob" || ins.Values[2].I != 52 {
		t.Fatalf("values = %v", ins.Values)
	}
	ins2 := mustParse(t, `INSERT INTO T VALUES (1, 2.5)`).(Insert)
	if len(ins2.Columns) != 0 || len(ins2.Values) != 2 {
		t.Fatalf("insert2 = %+v", ins2)
	}
}

func TestLineComments(t *testing.T) {
	sel := mustParse(t, `SELECT id FROM T -- trailing comment
	  WHERE a = 1 -- another`).(*Select)
	if len(sel.Preds) != 1 {
		t.Fatalf("preds = %v", sel.Preds)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE x",
		"SELECT FROM T",
		"SELECT id FROM",
		"SELECT id FROM T WHERE",
		"SELECT id FROM T WHERE a",
		"SELECT id FROM T WHERE a = ",
		"SELECT id FROM T WHERE a BETWEEN 1",
		"SELECT id FROM T WHERE a < b", // non-equi join
		"CREATE TABLE",
		"CREATE TABLE x",
		"CREATE TABLE x (a blob)",
		"CREATE TABLE x (a char)",
		"CREATE TABLE x (a char(0))",
		"CREATE TABLE x (id char(3))",
		"CREATE TABLE x (id int HIDDEN)",
		"CREATE TABLE x (f char(3) REFERENCES y)",
		"INSERT INTO t",
		"INSERT INTO t VALUES 1",
		"SELECT id FROM T WHERE name = 'unterminated",
		"SELECT id FROM T; SELECT id FROM T",
		"SELECT id FROM T WHERE a ! 3",
		"SELECT id FROM T @",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("accepted %q", src)
		}
	}
}

func TestPredicateString(t *testing.T) {
	p := Predicate{Col: ColRef{Table: "T", Column: "a"}, Op: OpBetween,
		Lo: schema.IntVal(1), Hi: schema.IntVal(2)}
	if !strings.Contains(p.String(), "BETWEEN") {
		t.Fatalf("String = %q", p.String())
	}
	q := Predicate{Col: ColRef{Column: "n"}, Op: OpEq, Lo: schema.CharVal("a'b")}
	if q.String() != "n = 'a''b'" {
		t.Fatalf("String = %q", q.String())
	}
}

func TestCountStarParse(t *testing.T) {
	sel := mustParse(t, `SELECT COUNT(*) FROM T WHERE a = 1`).(*Select)
	if !sel.Count || sel.Star || len(sel.Projections) != 0 {
		t.Fatalf("count select = %+v", sel)
	}
	// A column named count still works as an identifier.
	sel2 := mustParse(t, `SELECT count FROM T`).(*Select)
	if sel2.Count || len(sel2.Projections) != 1 {
		t.Fatalf("bare count column = %+v", sel2)
	}
	for _, bad := range []string{
		`SELECT COUNT(*) , id FROM T`,
		`SELECT COUNT(id) FROM T`,
		`SELECT COUNT( FROM T`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}
