package query

import (
	"errors"
	"strings"
	"testing"

	"ghostdb/internal/schema"
	"ghostdb/internal/sqlparse"
)

func testSchema(t *testing.T) *schema.Schema {
	t.Helper()
	attrs := []schema.Column{
		{Name: "v1", Kind: schema.KindChar, Width: 10},
		{Name: "num", Kind: schema.KindInt},
		{Name: "ratio", Kind: schema.KindFloat, Hidden: true},
		{Name: "h1", Kind: schema.KindChar, Width: 10, Hidden: true},
	}
	defs := []schema.TableDef{
		{Name: "T0", Columns: attrs, Refs: []schema.Ref{
			{FKColumn: "fk1", Child: "T1", Hidden: true},
			{FKColumn: "fk2", Child: "T2", Hidden: true}}},
		{Name: "T1", Columns: attrs, Refs: []schema.Ref{
			{FKColumn: "fk12", Child: "T12", Hidden: true}}},
		{Name: "T2", Columns: attrs},
		{Name: "T12", Columns: attrs},
	}
	s, err := schema.New(defs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func resolve(t *testing.T, sch *schema.Schema, sql string) (*Query, error) {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return Resolve(sch, stmt.(*sqlparse.Select), sql)
}

func mustResolve(t *testing.T, sch *schema.Schema, sql string) *Query {
	t.Helper()
	q, err := resolve(t, sch, sql)
	if err != nil {
		t.Fatalf("resolve %q: %v", sql, err)
	}
	return q
}

func TestAnchorComputation(t *testing.T) {
	sch := testSchema(t)
	cases := []struct {
		sql    string
		anchor string
	}{
		{`SELECT T0.id FROM T0, T1 WHERE T0.fk1 = T1.id`, "T0"},
		{`SELECT T1.id FROM T1, T12 WHERE T1.fk12 = T12.id`, "T1"},
		{`SELECT id FROM T12 WHERE h1 = 'x'`, "T12"},
		{`SELECT T0.id FROM T0, T1, T12, T2 WHERE T0.fk1 = T1.id AND T1.fk12 = T12.id AND T0.fk2 = T2.id`, "T0"},
	}
	for _, c := range cases {
		q := mustResolve(t, sch, c.sql)
		if got := sch.Tables[q.Anchor].Name; got != c.anchor {
			t.Fatalf("%s: anchor %s, want %s", c.sql, got, c.anchor)
		}
	}
}

func TestPredicateClassification(t *testing.T) {
	sch := testSchema(t)
	q := mustResolve(t, sch,
		`SELECT T0.id FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.v1 = 'a' AND T1.h1 = 'b' AND T0.num < 5 AND T1.id = 3`)
	hidden := q.HiddenPreds()
	if len(hidden) != 2 { // h1 and the id predicate
		t.Fatalf("hidden preds = %d", len(hidden))
	}
	vis := q.VisiblePreds()
	t1, _ := sch.Lookup("T1")
	t0, _ := sch.Lookup("T0")
	if len(vis[t1.Index]) != 1 || len(vis[t0.Index]) != 1 {
		t.Fatalf("visible preds = %v", vis)
	}
	if !hidden[0].Hidden || hidden[0].ColIdx != 3 {
		t.Fatalf("hidden[0] = %+v", hidden[0])
	}
	// id predicates are routed to Secure.
	var idPred *Pred
	for i := range hidden {
		if hidden[i].ColIdx == IDCol {
			idPred = &hidden[i]
		}
	}
	if idPred == nil || !idPred.Hidden {
		t.Fatalf("id predicate not classified hidden: %+v", hidden)
	}
}

func TestProjectionExpansion(t *testing.T) {
	sch := testSchema(t)
	q := mustResolve(t, sch, `SELECT * FROM T12 WHERE v1 = 'x'`)
	// id + 4 columns.
	if len(q.Projections) != 5 || q.Projections[0].ColIdx != IDCol {
		t.Fatalf("star projections = %v", q.Projections)
	}
	q = mustResolve(t, sch, `SELECT T1.*, T0.id FROM T0, T1 WHERE T0.fk1 = T1.id`)
	if len(q.Projections) != 6 {
		t.Fatalf("table-star projections = %v", q.Projections)
	}
	tables := q.ProjTables()
	if len(tables) != 2 {
		t.Fatalf("proj tables = %v", tables)
	}
}

func TestLiteralCoercion(t *testing.T) {
	sch := testSchema(t)
	// Int literal for float column is fine.
	q := mustResolve(t, sch, `SELECT id FROM T2 WHERE ratio > 3`)
	if q.Preds[0].Lo.Kind != schema.KindFloat || q.Preds[0].Lo.F != 3 {
		t.Fatalf("coerced literal = %+v", q.Preds[0].Lo)
	}
	// Float literal for int column is not.
	if _, err := resolve(t, sch, `SELECT id FROM T2 WHERE num > 3.5`); err == nil {
		t.Fatal("float->int accepted")
	}
	// Overlong strings rejected.
	if _, err := resolve(t, sch, `SELECT id FROM T2 WHERE v1 = '12345678901'`); err == nil {
		t.Fatal("overlong string accepted")
	}
	// String for numeric rejected.
	if _, err := resolve(t, sch, `SELECT id FROM T2 WHERE num = 'x'`); err == nil {
		t.Fatal("string->int accepted")
	}
}

func TestAliases(t *testing.T) {
	sch := testSchema(t)
	q := mustResolve(t, sch, `SELECT a.id, b.v1 FROM T0 a, T1 b WHERE a.fk1 = b.id AND b.h1 = 'z'`)
	t1, _ := sch.Lookup("T1")
	if q.Projections[1].Table != t1.Index {
		t.Fatalf("alias projection resolved to %d", q.Projections[1].Table)
	}
	if _, err := resolve(t, sch, `SELECT x.id FROM T0 a, T1 a WHERE a.fk1 = a.id`); err == nil {
		t.Fatal("duplicate alias accepted")
	}
}

func TestUnqualifiedResolution(t *testing.T) {
	sch := testSchema(t)
	// v1 exists in both tables: ambiguous.
	if _, err := resolve(t, sch, `SELECT v1 FROM T0, T1 WHERE T0.fk1 = T1.id`); err == nil {
		t.Fatal("ambiguous column accepted")
	}
	// Unique fk name resolves unqualified.
	q := mustResolve(t, sch, `SELECT T0.id FROM T0, T1 WHERE fk1 = T1.id`)
	if len(q.Tables) != 2 {
		t.Fatalf("tables = %v", q.Tables)
	}
}

func TestJoinValidation(t *testing.T) {
	sch := testSchema(t)
	bad := []string{
		`SELECT T0.id FROM T0, T2 WHERE T0.fk1 = T2.id`,         // fk points elsewhere
		`SELECT T0.id FROM T0, T1 WHERE T0.id = T1.id`,          // id=id
		`SELECT T0.id FROM T0, T1 WHERE T0.v1 = T1.v1`,          // non-key
		`SELECT T0.id FROM T0, T1`,                              // disconnected
		`SELECT T1.id, T2.id FROM T1, T2 WHERE T1.fk12 = T2.id`, // wrong edge
		`SELECT T12.id, T2.id FROM T12, T2`,                     // no common anchor in FROM
		`SELECT T0.fk1 FROM T0`,                                 // fk projection
		`SELECT T0.id FROM T0, T0 WHERE T0.fk1 = T0.id`,         // self join
	}
	for _, sql := range bad {
		if _, err := resolve(t, sch, sql); err == nil {
			t.Fatalf("accepted %q", sql)
		}
	}
	// Both join orientations accepted.
	mustResolve(t, sch, `SELECT T0.id FROM T0, T1 WHERE T1.id = T0.fk1`)
}

func TestUnsupportedErrs(t *testing.T) {
	sch := testSchema(t)
	_, err := resolve(t, sch, `SELECT T0.id FROM T0, T0 WHERE T0.fk1 = T0.id`)
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("self-join error = %v", err)
	}
	if _, err := resolve(t, sch, `SELECT id FROM Nope`); err == nil ||
		!strings.Contains(err.Error(), "unknown table") {
		t.Fatalf("unknown table error = %v", err)
	}
}

func TestBetweenResolution(t *testing.T) {
	sch := testSchema(t)
	q := mustResolve(t, sch, `SELECT id FROM T2 WHERE num BETWEEN 3 AND 9`)
	p := q.Preds[0]
	if p.Op != sqlparse.OpBetween || p.Lo.I != 3 || p.Hi.I != 9 {
		t.Fatalf("between = %+v", p)
	}
	q = mustResolve(t, sch, `SELECT id FROM T2 WHERE id BETWEEN 1 AND 5`)
	if q.Preds[0].ColIdx != IDCol || q.Preds[0].Hi.I != 5 {
		t.Fatalf("id between = %+v", q.Preds[0])
	}
}

// TestCanonicalNormalization: surface variants of one query must share a
// canonical key; genuinely different queries must not.
func TestCanonicalNormalization(t *testing.T) {
	sch := testSchema(t)
	base := mustResolve(t, sch, `SELECT T1.v1, T1.id FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.num = 5 AND T0.v1 < 'mmm'`).Canonical()
	same := []string{
		"select   t1.V1 ,T1.ID  from T0 , T1 where t0.FK1=T1.id AND T1.num=5 AND T0.v1<'mmm'",
		`SELECT P.v1, P.id FROM T0 Q, T1 P WHERE Q.fk1 = P.id AND P.num = 5 AND Q.v1 < 'mmm'`,
		`SELECT T1.v1, T1.id FROM T0, T1 WHERE T0.v1 < 'mmm' AND T1.num = 5 AND T0.fk1 = T1.id`,
	}
	for _, sql := range same {
		if got := mustResolve(t, sch, sql).Canonical(); got != base {
			t.Errorf("%q canonicalizes to\n  %q\nwant\n  %q", sql, got, base)
		}
	}
	different := []string{
		`SELECT T1.v1, T1.id FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.num = 6 AND T0.v1 < 'mmm'`,
		`SELECT T1.id, T1.v1 FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.num = 5 AND T0.v1 < 'mmm'`,
		`SELECT T1.v1, T1.id FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.num <= 5 AND T0.v1 < 'mmm'`,
		`SELECT COUNT(*) FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.num = 5 AND T0.v1 < 'mmm'`,
	}
	seen := map[string]string{base: "base"}
	for _, sql := range different {
		key := mustResolve(t, sch, sql).Canonical()
		if prev, dup := seen[key]; dup {
			t.Errorf("%q collides with %q on key %q", sql, prev, key)
		}
		seen[key] = sql
	}
	// Typed literals must not alias across kinds, and equivalent float
	// spellings must normalize.
	f1 := mustResolve(t, sch, `SELECT T2.id FROM T2 WHERE T2.ratio = 1.5`).Canonical()
	f2 := mustResolve(t, sch, `SELECT T2.id FROM T2 WHERE T2.ratio = 1.50`).Canonical()
	if f1 != f2 {
		t.Errorf("float literal spellings diverge: %q vs %q", f1, f2)
	}
	s1 := mustResolve(t, sch, `SELECT T2.id FROM T2 WHERE T2.v1 = '5'`).Canonical()
	i1 := mustResolve(t, sch, `SELECT T2.id FROM T2 WHERE T2.num = 5`).Canonical()
	if s1 == i1 {
		t.Error("char and int literals alias in the canonical form")
	}
	// Star expansion shares the spelled-out key.
	st := mustResolve(t, sch, `SELECT * FROM T2 WHERE T2.num = 5`).Canonical()
	sp := mustResolve(t, sch, `SELECT T2.id, T2.v1, T2.num, T2.ratio, T2.h1 FROM T2 WHERE T2.num = 5`).Canonical()
	if st != sp {
		t.Errorf("star vs spelled-out diverge: %q vs %q", st, sp)
	}
}
