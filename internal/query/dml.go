package query

import (
	"fmt"
	"sort"
	"strings"

	"ghostdb/internal/schema"
	"ghostdb/internal/sqlparse"
)

// SetCol is one resolved SET clause of an UPDATE.
type SetCol struct {
	ColIdx int // column position (never IDCol, never a foreign key)
	Hidden bool
	Val    schema.Value
}

// DML is a resolved UPDATE or DELETE: single-table by design (the
// tree-structured schema's fk edges are immutable, so multi-table DML
// has no meaning here), with the same conjunctive predicate class as
// SELECT restricted to that table.
type DML struct {
	SQL    string
	Table  int
	Delete bool     // true for DELETE, false for UPDATE
	Sets   []SetCol // UPDATE only
	Preds  []Pred
}

// HiddenSets reports whether any SET clause targets a hidden column.
func (d *DML) HiddenSets() bool {
	for _, s := range d.Sets {
		if s.Hidden {
			return true
		}
	}
	return false
}

// VisibleSets reports whether any SET clause targets a visible column.
func (d *DML) VisibleSets() bool {
	for _, s := range d.Sets {
		if !s.Hidden {
			return true
		}
	}
	return false
}

// HiddenAttrPreds reports whether any predicate tests a hidden data
// attribute (id predicates excluded: identifiers are public).
func (d *DML) HiddenAttrPreds() bool {
	for _, p := range d.Preds {
		if p.Hidden && p.ColIdx != IDCol {
			return true
		}
	}
	return false
}

// ResolveUpdate binds an UPDATE against the schema. Beyond binding, it
// enforces the write-path security invariant: an UPDATE that touches
// *visible* columns must be derivable from public data alone — every
// WHERE predicate on a visible column or on the id — because applying
// it tells the untrusted store exactly which rows matched. A hidden
// predicate may only drive hidden-column writes (which stay on the
// token) and deletes (tombstones, which never reach the untrusted
// side).
func ResolveUpdate(sch *schema.Schema, upd *sqlparse.Update, sql string) (*DML, error) {
	d, err := resolveDMLTarget(sch, upd.Table, upd.Preds, sql)
	if err != nil {
		return nil, err
	}
	if len(upd.Sets) == 0 {
		return nil, fmt.Errorf("%w: UPDATE without SET", ErrUnsupported)
	}
	t := sch.Tables[d.Table]
	seen := map[int]bool{}
	for _, a := range upd.Sets {
		ci, err := colIndex(t, a.Column)
		if err != nil {
			return nil, err
		}
		if ci == IDCol {
			return nil, fmt.Errorf("%w: the surrogate id is immutable", ErrUnsupported)
		}
		if seen[ci] {
			return nil, fmt.Errorf("query: column %q set twice", a.Column)
		}
		seen[ci] = true
		col := t.Columns[ci]
		v, err := coerce(a.Value, col)
		if err != nil {
			return nil, fmt.Errorf("query: SET %s.%s: %w", t.Name, col.Name, err)
		}
		d.Sets = append(d.Sets, SetCol{ColIdx: ci, Hidden: col.Hidden, Val: v})
	}
	if d.VisibleSets() && d.HiddenAttrPreds() {
		return nil, fmt.Errorf("%w: an UPDATE of visible columns cannot be qualified by hidden "+
			"predicates (the matched row set would reach the untrusted store)", ErrUnsupported)
	}
	return d, nil
}

// ResolveDelete binds a DELETE against the schema. Deletes become
// secure-side tombstones, so any predicate class is allowed.
func ResolveDelete(sch *schema.Schema, del *sqlparse.Delete, sql string) (*DML, error) {
	d, err := resolveDMLTarget(sch, del.Table, del.Preds, sql)
	if err != nil {
		return nil, err
	}
	d.Delete = true
	return d, nil
}

// resolveDMLTarget binds the target table and the WHERE conjuncts of a
// DML statement.
func resolveDMLTarget(sch *schema.Schema, table string, preds []sqlparse.Predicate, sql string) (*DML, error) {
	t, ok := sch.Lookup(table)
	if !ok {
		return nil, fmt.Errorf("query: unknown table %q", table)
	}
	d := &DML{SQL: sql, Table: t.Index}
	for _, p := range preds {
		if p.Col.Table != "" && !strings.EqualFold(p.Col.Table, table) {
			return nil, fmt.Errorf("%w: DML predicate references table %q (single-table only)",
				ErrUnsupported, p.Col.Table)
		}
		ci, err := colIndex(t, p.Col.Column)
		if err != nil {
			return nil, err
		}
		rp := Pred{Table: t.Index, ColIdx: ci, Op: p.Op}
		col := schema.Column{Kind: schema.KindInt}
		if ci == IDCol {
			rp.Hidden = true
		} else {
			col = t.Columns[ci]
			rp.Hidden = col.Hidden
		}
		rp.Lo, err = coerce(p.Lo, col)
		if err != nil {
			return nil, fmt.Errorf("query: predicate on %s.%s: %w", t.Name, p.Col.Column, err)
		}
		if p.Op == sqlparse.OpBetween {
			rp.Hi, err = coerce(p.Hi, col)
			if err != nil {
				return nil, err
			}
		}
		d.Preds = append(d.Preds, rp)
	}
	return d, nil
}

// Canonical renders the resolved statement as normalized text: like
// Query.Canonical it collapses surface variants, and like it, the text
// reveals nothing beyond the submitted SQL. DML results are never
// cached, but the canonical form is what traces, the slow log and
// Explain display.
func (d *DML) Canonical() string {
	var b strings.Builder
	if d.Delete {
		fmt.Fprintf(&b, "delete from t%d", d.Table)
	} else {
		fmt.Fprintf(&b, "update t%d set ", d.Table)
		sets := make([]string, len(d.Sets))
		for i, s := range d.Sets {
			sets[i] = fmt.Sprintf("c%d=%s", s.ColIdx, canonValue(s.Val))
		}
		sort.Strings(sets)
		b.WriteString(strings.Join(sets, ","))
	}
	if len(d.Preds) > 0 {
		conj := make([]string, len(d.Preds))
		for i, p := range d.Preds {
			conj[i] = canonPred(p)
		}
		sort.Strings(conj)
		b.WriteString(" where ")
		b.WriteString(strings.Join(conj, " and "))
	}
	return b.String()
}
