// Package query resolves parsed SQL statements against a GhostDB schema:
// it binds column references, checks that join predicates follow the
// tree-structured schema's key/foreign-key edges (§3), classifies
// predicates as Visible or Hidden, and computes the query's *anchor* — the
// topmost referenced table, whose tuples drive the whole evaluation (the
// root table T0 in all of the paper's examples, but any subtree root
// works thanks to the FullIndex variant).
package query

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ghostdb/internal/schema"
	"ghostdb/internal/sqlparse"
)

// IDCol is the pseudo column index denoting the surrogate identifier.
const IDCol = -1

// ErrUnsupported marks queries outside the supported SPJ class.
var ErrUnsupported = errors.New("query: unsupported construct")

// Pred is a resolved selection conjunct.
type Pred struct {
	Table  int // table index in the schema
	ColIdx int // column position, or IDCol
	Hidden bool
	Op     sqlparse.CompareOp
	Lo     schema.Value
	Hi     schema.Value // for OpBetween
}

// Proj is one resolved projection item.
type Proj struct {
	Table  int
	ColIdx int // column position, or IDCol
}

// Query is a fully resolved select-project-join query.
type Query struct {
	SQL         string
	Tables      []int // referenced tables (FROM order, deduplicated)
	Anchor      int   // topmost table; ancestor-or-self of every other
	Preds       []Pred
	Projections []Proj
	CountOnly   bool // SELECT COUNT(*): project nothing, return the cardinality

	// Parts is set when the FROM set spans several schema trees (a
	// forest query): one self-contained single-tree sub-query per tree,
	// in FROM order of each tree's first table. The overall answer is the
	// cross product of the parts' answers — fk joins cannot cross trees,
	// so no join predicate can relate them. Single-tree queries (all of
	// the paper's) have Parts nil, and Anchor/Preds/Projections describe
	// the whole query.
	Parts []*Query
	// PartProj maps each top-level projection to its source: Part is the
	// index into Parts, Col the column position within that part's
	// projection list. nil when Parts is nil.
	PartProj []PartCol
}

// PartCol locates one top-level projection inside a part's result.
type PartCol struct {
	Part int
	Col  int
}

// HiddenPreds returns the predicates on Hidden attributes (id predicates
// included: identifiers are replicated but their evaluation is free on
// Secure, so they are processed there).
func (q *Query) HiddenPreds() []Pred {
	var out []Pred
	for _, p := range q.Preds {
		if p.Hidden {
			out = append(out, p)
		}
	}
	return out
}

// VisiblePreds returns the predicates evaluated on Untrusted, grouped per
// table (Untrusted computes each table's visible conjunction and ships a
// single ID list per table, §3.3).
func (q *Query) VisiblePreds() map[int][]Pred {
	out := make(map[int][]Pred)
	for _, p := range q.Preds {
		if !p.Hidden {
			out[p.Table] = append(out[p.Table], p)
		}
	}
	return out
}

// ProjTables returns the set of tables contributing projected attributes.
func (q *Query) ProjTables() []int {
	seen := map[int]bool{}
	var out []int
	for _, pr := range q.Projections {
		if !seen[pr.Table] {
			seen[pr.Table] = true
			out = append(out, pr.Table)
		}
	}
	return out
}

// Resolve binds sel against the schema.
func Resolve(sch *schema.Schema, sel *sqlparse.Select, sql string) (*Query, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("%w: empty FROM", ErrUnsupported)
	}
	q := &Query{SQL: sql}

	// Bind FROM entries; aliases and names map to table indexes.
	binding := map[string]int{} // lowercased alias or name -> table index
	seen := map[int]bool{}
	for _, tr := range sel.From {
		t, ok := sch.Lookup(tr.Name)
		if !ok {
			return nil, fmt.Errorf("query: unknown table %q", tr.Name)
		}
		if seen[t.Index] {
			return nil, fmt.Errorf("%w: table %q appears twice (self-joins)", ErrUnsupported, tr.Name)
		}
		seen[t.Index] = true
		q.Tables = append(q.Tables, t.Index)
		binding[strings.ToLower(tr.Name)] = t.Index
		if tr.Alias != "" {
			low := strings.ToLower(tr.Alias)
			if _, dup := binding[low]; dup {
				return nil, fmt.Errorf("query: ambiguous alias %q", tr.Alias)
			}
			binding[low] = t.Index
		}
	}

	resolveCol := func(ref sqlparse.ColRef) (int, int, error) {
		if ref.Table != "" {
			ti, ok := binding[strings.ToLower(ref.Table)]
			if !ok {
				return 0, 0, fmt.Errorf("query: unknown table or alias %q", ref.Table)
			}
			ci, err := colIndex(sch.Tables[ti], ref.Column)
			if err != nil {
				return 0, 0, err
			}
			return ti, ci, nil
		}
		// Unqualified: must be unambiguous across FROM tables.
		found := -1
		foundCol := 0
		for _, ti := range q.Tables {
			if ci, err := colIndex(sch.Tables[ti], ref.Column); err == nil {
				if found >= 0 {
					return 0, 0, fmt.Errorf("query: ambiguous column %q", ref.Column)
				}
				found, foundCol = ti, ci
			}
		}
		if found < 0 {
			return 0, 0, fmt.Errorf("query: unknown column %q", ref.Column)
		}
		return found, foundCol, nil
	}

	// Joins must follow fk edges and connect the FROM set into one tree.
	// A join side is either <table>.id or a foreign-key column.
	type joinSide struct {
		table int
		fkTo  int // child table index if this side is a fk; -1 if id
	}
	resolveJoinSide := func(ref sqlparse.ColRef) (joinSide, error) {
		tryTable := func(ti int) (joinSide, bool) {
			t := sch.Tables[ti]
			if strings.EqualFold(ref.Column, "id") {
				return joinSide{table: ti, fkTo: -1}, true
			}
			for _, r := range t.Refs {
				if strings.EqualFold(r.FKColumn, ref.Column) {
					child, _ := sch.Lookup(r.Child)
					return joinSide{table: ti, fkTo: child.Index}, true
				}
			}
			return joinSide{}, false
		}
		if ref.Table != "" {
			ti, ok := binding[strings.ToLower(ref.Table)]
			if !ok {
				return joinSide{}, fmt.Errorf("query: unknown table or alias %q", ref.Table)
			}
			s, ok := tryTable(ti)
			if !ok {
				return joinSide{}, fmt.Errorf("query: %q is neither id nor a foreign key of %q",
					ref.Column, sch.Tables[ti].Name)
			}
			return s, nil
		}
		var found *joinSide
		for _, ti := range q.Tables {
			if s, ok := tryTable(ti); ok && s.fkTo >= 0 {
				// Unqualified fk names must be unique; "id" alone is
				// always ambiguous in a multi-table query.
				if found != nil {
					return joinSide{}, fmt.Errorf("query: ambiguous join column %q", ref.Column)
				}
				cp := s
				found = &cp
			}
		}
		if found == nil {
			return joinSide{}, fmt.Errorf("query: cannot resolve join column %q", ref.Column)
		}
		return *found, nil
	}
	type edge struct{ parent, child int }
	edges := map[edge]bool{}
	for _, j := range sel.Joins {
		ls, err := resolveJoinSide(j.Left)
		if err != nil {
			return nil, err
		}
		rs, err := resolveJoinSide(j.Right)
		if err != nil {
			return nil, err
		}
		fk, id := ls, rs
		if fk.fkTo < 0 {
			fk, id = rs, ls
		}
		if fk.fkTo < 0 || id.fkTo >= 0 {
			return nil, fmt.Errorf("%w: join must be of the form parent.fk = child.id", ErrUnsupported)
		}
		if fk.fkTo != id.table {
			return nil, fmt.Errorf("query: fk of %q references %q, not %q",
				sch.Tables[fk.table].Name, sch.Tables[fk.fkTo].Name, sch.Tables[id.table].Name)
		}
		edges[edge{fk.table, id.table}] = true
	}
	// Group the FROM set by schema tree: fk edges never cross trees, so
	// each tree's tables must form a rooted, fully-joined subtree on
	// their own; several trees make a forest query (evaluated as the
	// cross product of its per-tree parts).
	var groups [][]int // FROM order of first appearance
	groupOf := map[int]int{}
	for _, ti := range q.Tables {
		root := sch.RootOf(ti)
		gi, ok := groupOf[root]
		if !ok {
			gi = len(groups)
			groupOf[root] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], ti)
	}
	joined := map[int]bool{}
	for e := range edges {
		if !seen[e.parent] || !seen[e.child] {
			return nil, fmt.Errorf("query: join references table outside FROM")
		}
		if joined[e.child] {
			return nil, fmt.Errorf("%w: table joined twice", ErrUnsupported)
		}
		joined[e.child] = true
	}
	edgesWanted := 0
	for _, g := range groups {
		edgesWanted += len(g) - 1
	}
	if len(edges) != edgesWanted {
		return nil, fmt.Errorf("%w: %d join predicates cannot connect %d tables across %d trees",
			ErrUnsupported, len(edges), len(q.Tables), len(groups))
	}
	anchors := make([]int, len(groups))
	for gi, g := range groups {
		a := sch.CommonAncestor(g)
		if a < 0 || !seen[a] {
			return nil, fmt.Errorf("%w: tables %v do not form a rooted subtree",
				ErrUnsupported, g)
		}
		for _, ti := range g {
			if !sch.IsAncestorOf(a, ti) {
				return nil, fmt.Errorf("%w: %q is not under anchor %q",
					ErrUnsupported, sch.Tables[ti].Name, sch.Tables[a].Name)
			}
		}
		anchors[gi] = a
	}
	q.Anchor = anchors[0]

	// Predicates.
	for _, p := range sel.Preds {
		ti, ci, err := resolveCol(p.Col)
		if err != nil {
			return nil, err
		}
		rp := Pred{Table: ti, ColIdx: ci, Op: p.Op}
		if ci == IDCol {
			rp.Hidden = true // evaluated on Secure; ids leak nothing extra
			var err error
			rp.Lo, err = coerce(p.Lo, schema.Column{Kind: schema.KindInt})
			if err != nil {
				return nil, fmt.Errorf("query: id predicate: %w", err)
			}
			if p.Op == sqlparse.OpBetween {
				rp.Hi, err = coerce(p.Hi, schema.Column{Kind: schema.KindInt})
				if err != nil {
					return nil, err
				}
			}
		} else {
			col := sch.Tables[ti].Columns[ci]
			rp.Hidden = col.Hidden
			rp.Lo, err = coerce(p.Lo, col)
			if err != nil {
				return nil, fmt.Errorf("query: predicate on %s.%s: %w",
					sch.Tables[ti].Name, col.Name, err)
			}
			if p.Op == sqlparse.OpBetween {
				rp.Hi, err = coerce(p.Hi, col)
				if err != nil {
					return nil, err
				}
			}
		}
		q.Preds = append(q.Preds, rp)
	}

	// Projections. COUNT(*) projects the anchor id internally: the exact
	// SPJ pipeline yields one tuple per qualifying anchor row, so the
	// count is the result cardinality.
	if sel.Count {
		q.CountOnly = true
		q.Projections = []Proj{{Table: q.Anchor, ColIdx: IDCol}}
	} else if sel.Star {
		for _, ti := range q.Tables {
			q.Projections = append(q.Projections, expandStar(sch.Tables[ti])...)
		}
	} else {
		for _, ref := range sel.Projections {
			if ref.Column == "*" {
				ti, ok := binding[strings.ToLower(ref.Table)]
				if !ok {
					return nil, fmt.Errorf("query: unknown table %q", ref.Table)
				}
				q.Projections = append(q.Projections, expandStar(sch.Tables[ti])...)
				continue
			}
			ti, ci, err := resolveCol(ref)
			if err != nil {
				return nil, err
			}
			q.Projections = append(q.Projections, Proj{Table: ti, ColIdx: ci})
		}
	}
	if len(groups) > 1 {
		q.buildParts(groups, anchors, groupOfTable(groups))
	}
	return q, nil
}

// groupOfTable inverts the FROM grouping: table index -> group index.
func groupOfTable(groups [][]int) map[int]int {
	out := map[int]int{}
	for gi, g := range groups {
		for _, ti := range g {
			out[ti] = gi
		}
	}
	return out
}

// buildParts splits a forest query into one self-contained sub-query per
// schema tree. Each part carries the predicates and projections of its
// tree; a part whose tables only filter (no projections of its own)
// becomes a COUNT(*) sub-query — its count is the multiplicity its tree
// contributes to the cross product. Part SQL is the part's canonical
// text: derived entirely from the submitted query, so shipping it to the
// part's token reveals nothing the original statement did not.
func (q *Query) buildParts(groups [][]int, anchors []int, groupOf map[int]int) {
	q.Parts = make([]*Query, len(groups))
	for gi := range groups {
		q.Parts[gi] = &Query{
			Tables:    append([]int(nil), groups[gi]...),
			Anchor:    anchors[gi],
			CountOnly: q.CountOnly,
		}
	}
	for _, p := range q.Preds {
		part := q.Parts[groupOf[p.Table]]
		part.Preds = append(part.Preds, p)
	}
	if q.CountOnly {
		// COUNT(*) over a cross product is the product of the parts'
		// counts; every part counts its own qualifying tuples.
		for gi := range q.Parts {
			q.Parts[gi].Projections = []Proj{{Table: anchors[gi], ColIdx: IDCol}}
		}
	} else {
		q.PartProj = make([]PartCol, len(q.Projections))
		for i, pr := range q.Projections {
			gi := groupOf[pr.Table]
			part := q.Parts[gi]
			q.PartProj[i] = PartCol{Part: gi, Col: len(part.Projections)}
			part.Projections = append(part.Projections, pr)
		}
		// A tree that only filters contributes its qualifying-row count
		// as a multiplicity.
		for gi, part := range q.Parts {
			if len(part.Projections) == 0 {
				q.Parts[gi].CountOnly = true
				q.Parts[gi].Projections = []Proj{{Table: anchors[gi], ColIdx: IDCol}}
			}
		}
	}
	for _, part := range q.Parts {
		part.SQL = part.Canonical()
	}
}

// Canonical renders the resolved query as a normalized text, the result
// cache's key. Because it is derived from the *resolved* form, every
// surface variant of the same query — whitespace, keyword and identifier
// case, table aliases, qualified vs. unqualified columns, `SELECT *` vs.
// the spelled-out column list, conjunct order, equivalent literal
// spellings (`1.50` vs `1.5`) — collapses onto one key. Join predicates
// need no rendering: in GhostDB's tree schemas the FROM set fixes them
// (Resolve enforces exactly the subtree's fk edges). FROM order is
// preserved deliberately: projections and row production are resolved
// against it, so reordered FROM lists stay distinct keys.
//
// The canonical text is itself "query text" in the security model's
// sense: it contains nothing beyond what the submitted SQL already
// revealed to the untrusted side.
func (q *Query) Canonical() string {
	var b strings.Builder
	b.WriteString("select ")
	if q.CountOnly {
		b.WriteString("count(*)")
	} else {
		for i, p := range q.Projections {
			if i > 0 {
				b.WriteByte(',')
			}
			writeCanonCol(&b, p.Table, p.ColIdx)
		}
	}
	b.WriteString(" from ")
	for i, ti := range q.Tables {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "t%d", ti)
	}
	if len(q.Preds) > 0 {
		conj := make([]string, len(q.Preds))
		for i, p := range q.Preds {
			conj[i] = canonPred(p)
		}
		sort.Strings(conj)
		b.WriteString(" where ")
		b.WriteString(strings.Join(conj, " and "))
	}
	return b.String()
}

func writeCanonCol(b *strings.Builder, table, col int) {
	if col == IDCol {
		fmt.Fprintf(b, "t%d.id", table)
	} else {
		fmt.Fprintf(b, "t%d.c%d", table, col)
	}
}

// canonPred renders one conjunct with kind-tagged literals so values of
// different types can never alias.
func canonPred(p Pred) string {
	var b strings.Builder
	writeCanonCol(&b, p.Table, p.ColIdx)
	if p.Op == sqlparse.OpBetween {
		fmt.Fprintf(&b, " between %s and %s", canonValue(p.Lo), canonValue(p.Hi))
		return b.String()
	}
	fmt.Fprintf(&b, " %s %s", p.Op, canonValue(p.Lo))
	return b.String()
}

func canonValue(v schema.Value) string {
	switch v.Kind {
	case schema.KindInt:
		return "i:" + v.String()
	case schema.KindFloat:
		return "f:" + v.String()
	case schema.KindChar:
		return "c:" + strconv.Quote(v.S)
	}
	return "?:" + v.String()
}

func expandStar(t *schema.Table) []Proj {
	out := []Proj{{Table: t.Index, ColIdx: IDCol}}
	for i := range t.Columns {
		out = append(out, Proj{Table: t.Index, ColIdx: i})
	}
	return out
}

// colIndex resolves a column name within a table; "id" maps to IDCol.
// Foreign-key columns are not addressable: they are materialized in the
// Subtree Key Tables and joined through them.
func colIndex(t *schema.Table, name string) (int, error) {
	if strings.EqualFold(name, "id") {
		return IDCol, nil
	}
	if _, i, ok := t.Column(name); ok {
		return i, nil
	}
	for _, r := range t.Refs {
		if strings.EqualFold(r.FKColumn, name) {
			return 0, fmt.Errorf("%w: foreign key %s.%s can only appear in join predicates",
				ErrUnsupported, t.Name, name)
		}
	}
	return 0, fmt.Errorf("query: no column %q in table %q", name, t.Name)
}

func coerce(v schema.Value, col schema.Column) (schema.Value, error) {
	switch col.Kind {
	case schema.KindInt:
		switch v.Kind {
		case schema.KindInt:
			return v, nil
		case schema.KindFloat:
			return schema.Value{}, fmt.Errorf("float literal for int column")
		}
	case schema.KindFloat:
		switch v.Kind {
		case schema.KindFloat:
			return v, nil
		case schema.KindInt:
			return schema.FloatVal(float64(v.I)), nil
		}
	case schema.KindChar:
		if v.Kind == schema.KindChar {
			if len(v.S) > col.Width {
				return schema.Value{}, fmt.Errorf("string %q exceeds char(%d)", v.S, col.Width)
			}
			return v, nil
		}
	}
	return schema.Value{}, fmt.Errorf("literal %s incompatible with %v column", v, col.Kind)
}
