package exec

import (
	"fmt"
	"strings"
	"testing"

	"ghostdb/internal/flash"
	"ghostdb/internal/ref"
	"ghostdb/internal/schema"
)

// forestDefs is synthDefs plus a second, independent tree U0 -> U1: the
// smallest schema on which placement can split tables across tokens and
// queries can span them.
func forestDefs() []schema.TableDef {
	attrs := func() []schema.Column {
		var cols []schema.Column
		for i := 1; i <= 3; i++ {
			cols = append(cols, schema.Column{Name: fmt.Sprintf("v%d", i), Kind: schema.KindChar, Width: 10})
		}
		for i := 1; i <= 3; i++ {
			cols = append(cols, schema.Column{Name: fmt.Sprintf("h%d", i), Kind: schema.KindChar, Width: 10, Hidden: true})
		}
		return cols
	}
	defs := synthDefs()
	defs = append(defs,
		schema.TableDef{Name: "U0", Columns: attrs(), Refs: []schema.Ref{
			{FKColumn: "fku1", Child: "U1", Hidden: true}}},
		schema.TableDef{Name: "U1", Columns: attrs()},
	)
	return defs
}

// newForestFixture loads the two-tree dataset into a DB with the given
// token count, plus a matching reference engine.
func newForestFixture(t testing.TB, seed uint64, cards map[string]int, shards int) *fixture {
	t.Helper()
	return newForestFixtureOpts(t, seed, cards, Options{
		FlashParams: flash.Params{PageSize: 2048, PagesPerBlock: 16, Blocks: 8192, ReserveBlocks: 4},
		Shards:      shards,
	})
}

// newForestFixtureOpts is newForestFixture with full control over the
// engine options (result cache, compaction threshold, ...).
func newForestFixtureOpts(t testing.TB, seed uint64, cards map[string]int, opts Options) *fixture {
	t.Helper()
	sch, err := schema.New(forestDefs())
	if err != nil {
		t.Fatal(err)
	}
	rng := &lcg{s: seed}
	load := map[int]*TableLoad{}
	re := ref.New(sch)
	for _, tb := range sch.Tables {
		n := cards[tb.Name]
		ld := &TableLoad{Rows: n, FKs: map[int][]uint32{}}
		rows := make([]schema.Row, n)
		for ci, col := range tb.Columns {
			w := col.EncodedWidth()
			data := make([]byte, n*w)
			for i := 0; i < n; i++ {
				v := schema.CharVal(pad(rng.next(testDomain)))
				if rows[i] == nil {
					rows[i] = make(schema.Row, len(tb.Columns))
				}
				rows[i][ci] = v
				if err := schema.EncodeValue(data[i*w:(i+1)*w], v); err != nil {
					t.Fatal(err)
				}
			}
			ld.Cols = append(ld.Cols, ColData{Width: w, Data: data})
		}
		for _, ci := range tb.Children() {
			cn := cards[sch.Tables[ci].Name]
			fk := make([]uint32, n)
			for i := range fk {
				fk[i] = uint32(rng.next(cn))
			}
			ld.FKs[ci] = fk
		}
		load[tb.Index] = ld
		re.Load(tb.Index, rows, ld.FKs)
	}
	db, err := NewDB(sch, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Load(load); err != nil {
		t.Fatal(err)
	}
	return &fixture{db: db, ref: re, sch: sch}
}

func forestCards() map[string]int {
	return map[string]int{
		"T0": 600, "T1": 150, "T2": 120, "T11": 40, "T12": 40,
		"U0": 300, "U1": 50,
	}
}

// TestShardedPlacementSplitsTrees: with two tokens, the two trees land
// on different tokens, whole.
func TestShardedPlacementSplitsTrees(t *testing.T) {
	f := newForestFixture(t, 7, forestCards(), 2)
	place := f.db.Placement()
	tTree, _ := f.sch.Lookup("T0")
	uTree, _ := f.sch.Lookup("U0")
	if place.Of(tTree.Index) == place.Of(uTree.Index) {
		t.Fatalf("both trees on token %d", place.Of(tTree.Index))
	}
	for _, tb := range f.sch.Tables {
		root := f.sch.RootOf(tb.Index)
		if place.Of(tb.Index) != place.Of(root) {
			t.Fatalf("table %s split from its root", tb.Name)
		}
	}
}

// TestShardedSingleTreeRouting: in-tree queries (including joins) run as
// one session on the owning token and answer exactly like the reference.
func TestShardedSingleTreeRouting(t *testing.T) {
	f := newForestFixture(t, 7, forestCards(), 2)
	queries := []string{
		`SELECT T0.id, T0.v1 FROM T0 WHERE T0.h1 < '0000000300'`,
		`SELECT T0.id, T1.v2 FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.v1 < '0000000400' AND T1.h2 < '0000000500'`,
		`SELECT U0.id, U1.v1 FROM U0, U1 WHERE U0.fku1 = U1.id AND U1.h1 < '0000000400'`,
		`SELECT U1.id, U1.h2 FROM U1 WHERE U1.v2 < '0000000250'`,
	}
	for _, sql := range queries {
		res, err := f.db.Run(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		want := f.refAnswer(t, sql)
		if !rowsEqual(res.Rows, want) {
			t.Fatalf("%s: %d rows, want %d", sql, len(res.Rows), len(want))
		}
		if res.Stats.Scatter != 0 {
			t.Fatalf("%s: single-tree query scattered", sql)
		}
		first, _ := f.sch.Lookup(sql[7:9]) // harmless when lookup fails
		if first != nil {
			if want := f.db.Placement().Of(first.Index); res.Stats.Shard != want {
				t.Fatalf("%s: ran on token %d, placed on %d", sql, res.Stats.Shard, want)
			}
		}
	}
}

// TestScatterCrossProduct: forest queries fan out per-token sub-plans
// and the untrusted-side merge reproduces the reference cross product —
// including filter-only multiplicity parts and COUNT(*).
func TestScatterCrossProduct(t *testing.T) {
	cards := map[string]int{
		"T0": 120, "T1": 40, "T2": 30, "T11": 12, "T12": 12,
		"U0": 60, "U1": 10,
	}
	f := newForestFixture(t, 11, cards, 2)
	queries := []string{
		// Straight cross product of two selective sub-queries.
		`SELECT T12.id, U1.v1 FROM T12, U1 WHERE T12.h1 < '0000000200' AND U1.h2 < '0000000300'`,
		// Projections interleave tables from both trees.
		`SELECT U1.id, T12.v1, U1.h1, T12.id FROM T12, U1 WHERE T12.v2 < '0000000300' AND U1.v1 < '0000000500'`,
		// A filter-only tree contributes its count as a multiplicity.
		`SELECT U1.id FROM U1, T12 WHERE T12.h1 < '0000000150' AND U1.h1 < '0000000400'`,
		// Joins inside each tree, crossed between trees.
		`SELECT T0.id, U0.id, U1.v1 FROM T0, T1, U0, U1 ` +
			`WHERE T0.fk1 = T1.id AND U0.fku1 = U1.id ` +
			`AND T1.h1 < '0000000150' AND U1.h2 < '0000000200'`,
		// COUNT(*) over the cross product is the product of counts.
		`SELECT COUNT(*) FROM T12, U1 WHERE T12.h1 < '0000000200' AND U1.h2 < '0000000300'`,
	}
	for _, sql := range queries {
		res, err := f.db.Run(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		want := f.refAnswer(t, sql)
		if !rowsEqual(res.Rows, want) {
			t.Fatalf("%s: %d rows, want %d", sql, len(res.Rows), len(want))
		}
		if res.Stats.Scatter != 2 || res.Stats.Shard != -1 {
			t.Fatalf("%s: Scatter=%d Shard=%d, want fan-out over 2 tokens",
				sql, res.Stats.Scatter, res.Stats.Shard)
		}
	}
	// No leaked grants anywhere.
	for _, u := range f.db.Tokens() {
		tok := f.db.tokens[u.TokenID()]
		if tok.RAM.InUse() != 0 {
			t.Fatalf("token %d holds %d bytes after queries", u.TokenID(), tok.RAM.InUse())
		}
	}
	// Scatter plans explain themselves: per-token sub-plans and the
	// untrusted-side merge.
	stmt, err := f.db.Prepare(queries[0], QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	out := stmt.Plan().Explain()
	for _, frag := range []string{"scatter: 2 per-token sub-plans", "part 0 (token", "part 1 (token"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("scatter EXPLAIN misses %q:\n%s", frag, out)
		}
	}
}

// TestShardedInsertRouting: an INSERT bumps exactly the owning token's
// data version and leaves the other token untouched.
func TestShardedInsertRouting(t *testing.T) {
	f := newForestFixture(t, 7, forestCards(), 2)
	u1, _ := f.sch.Lookup("U1")
	uTok := f.db.Placement().Of(u1.Index)
	before := make([]uint64, 2)
	for _, u := range f.db.Tokens() {
		before[u.TokenID()] = u.DataVersion()
	}
	rows := f.db.Rows(u1.Index)
	sql := `INSERT INTO U1 VALUES ('0000000001','0000000002','0000000003','0000000004','0000000005','0000000006')`
	if _, err := f.db.Run(sql); err != nil {
		t.Fatal(err)
	}
	if got := f.db.Rows(u1.Index); got != rows+1 {
		t.Fatalf("U1 rows = %d, want %d", got, rows+1)
	}
	for _, u := range f.db.Tokens() {
		want := before[u.TokenID()]
		if u.TokenID() == uTok {
			want++
		}
		if got := u.DataVersion(); got != want {
			t.Fatalf("token %d version = %d, want %d", u.TokenID(), got, want)
		}
	}
}

// TestShardedTotalsParity: the same serial query set on a 1-token and a
// 2-token database moves exactly the same flash pages and bus bytes —
// summed across tokens, sharding adds zero secure-side work.
func TestShardedTotalsParity(t *testing.T) {
	cards := forestCards()
	queries := []string{
		`SELECT T0.id, T1.v2 FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.v1 < '0000000400' AND T1.h2 < '0000000500'`,
		`SELECT U0.id, U1.v1 FROM U0, U1 WHERE U0.fku1 = U1.id AND U1.h1 < '0000000400'`,
		`SELECT T11.id, T11.h1 FROM T11 WHERE T11.v1 < '0000000600'`,
		`SELECT U1.id, U1.h2 FROM U1 WHERE U1.v2 < '0000000250'`,
	}
	sum := func(shards int) (flashOps, busBytes uint64, tokens int) {
		f := newForestFixture(t, 7, cards, shards)
		for _, sql := range queries {
			if _, err := f.db.Run(sql); err != nil {
				t.Fatalf("shards=%d %s: %v", shards, sql, err)
			}
		}
		for _, tot := range f.db.TokenTotals() {
			flashOps += tot.Flash.PageReads + tot.Flash.PageWrites
			busBytes += tot.BusDown + tot.BusUp
			tokens++
		}
		return
	}
	f1, b1, _ := sum(1)
	f2, b2, n2 := sum(2)
	if n2 != 2 {
		t.Fatalf("expected 2 token totals, got %d", n2)
	}
	if f1 != f2 || b1 != b2 {
		t.Fatalf("sharded totals diverge: flash %d vs %d, bus %d vs %d", f1, f2, b1, b2)
	}
}
