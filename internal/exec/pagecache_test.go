package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"ghostdb/internal/bus"
	"ghostdb/internal/flash"
)

// pcTestOpts are the engine options the page-cache parity tests share;
// the cache-off arm uses them verbatim, the cache-on arm adds
// PageCacheBytes.
func pcTestOpts() Options {
	return Options{
		FlashParams: flash.Params{PageSize: 2048, PagesPerBlock: 16, Blocks: 8192, ReserveBlocks: 4},
	}
}

// pcTestQueries mixes spool-eligible shapes (projected visible values,
// hidden predicates forcing exact id work) with streamed-only ones, so
// both the header-reuse path and the always-ship path are exercised.
var pcTestQueries = []string{
	"SELECT T0.v1, T0.h1 FROM T0 WHERE T0.v2 < '0000000500'",
	"SELECT T0.id, T0.h2 FROM T0 WHERE T0.v3 BETWEEN '0000000100' AND '0000000700'",
	"SELECT T1.v1, T1.h2 FROM T0, T1 WHERE T0.fk1 = T1.id AND T0.v1 < '0000000400' AND T1.h1 < '0000000600'",
	"SELECT T0.v2 FROM T0 WHERE T0.h1 < '0000000300'",
	"SELECT T0.v1, T1.v2 FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.v3 < '0000000500'",
}

// TestPageCacheByteParityAndSavings runs the identical statement
// sequence against a cache-on and a cache-off engine over the same
// data. The contract of PR 10: answers are identical, the uplink audit
// trail is byte-for-byte identical (the cache must add no new Up
// traffic — the query text remains the only leak), and the cache-on
// arm moves strictly fewer Down bytes in no more simulated time.
func TestPageCacheByteParityAndSavings(t *testing.T) {
	cards := map[string]int{"T0": 1200, "T1": 150, "T2": 120, "T11": 40, "T12": 40}
	cold := newFixtureOpts(t, 99, cards, pcTestOpts())
	warmOpts := pcTestOpts()
	warmOpts.PageCacheBytes = 8 << 20
	warm := newFixtureOpts(t, 99, cards, warmOpts)

	// The per-query cost collector resets the channel audit trail at
	// each query start, so the full trails are stitched together run by
	// run.
	var uw, uc []bus.Record
	for round := 0; round < 3; round++ {
		for qi, sql := range pcTestQueries {
			rw, err := warm.db.Run(sql)
			if err != nil {
				t.Fatalf("round %d warm %q: %v", round, sql, err)
			}
			uw = append(uw, warm.db.Bus.UplinkRecords()...)
			rc, err := cold.db.Run(sql)
			if err != nil {
				t.Fatalf("round %d cold %q: %v", round, sql, err)
			}
			uc = append(uc, cold.db.Bus.UplinkRecords()...)
			if !rowsEqual(rw.Rows, rc.Rows) {
				t.Fatalf("round %d query %d: cached answer has %d rows, cold %d",
					round, qi, len(rw.Rows), len(rc.Rows))
			}
		}
	}

	if len(uw) != len(uc) {
		t.Fatalf("uplink record counts differ: cached %d vs cold %d", len(uw), len(uc))
	}
	for i := range uw {
		if uw[i].Kind != uc[i].Kind || uw[i].Bytes != uc[i].Bytes || uw[i].Payload != uc[i].Payload {
			t.Fatalf("uplink record %d differs: cached %+v vs cold %+v", i, uw[i], uc[i])
		}
	}

	wt, ct := warm.db.Totals(), cold.db.Totals()
	if wt.BusDown >= ct.BusDown {
		t.Fatalf("page cache saved no Down bytes: cached %d vs cold %d", wt.BusDown, ct.BusDown)
	}
	if wt.SimTime > ct.SimTime {
		t.Fatalf("page cache raised simulated time: cached %v vs cold %v", wt.SimTime, ct.SimTime)
	}
	if hits := warm.db.PageCacheStats().Hits; hits == 0 {
		t.Fatal("page cache recorded no hits over a repeating workload")
	}
	if got := warm.db.PrefetchInflight(); got != 0 {
		t.Fatalf("prefetch inflight gauge = %d after quiesce, want 0", got)
	}
	if warm.db.RAM.InUse() != 0 || cold.db.RAM.InUse() != 0 {
		t.Fatal("RAM grant leak after page-cache workload")
	}
}

// TestPageCacheInvalidationStaysExact interleaves inserts with repeated
// queries on a cache-on engine: every committed write bumps the shard
// version, so no repeat may ever be answered from a stale frame or a
// stale retained spool.
func TestPageCacheInvalidationStaysExact(t *testing.T) {
	cards := map[string]int{"T0": 400, "T1": 80, "T2": 60, "T11": 20, "T12": 20}
	opts := pcTestOpts()
	opts.PageCacheBytes = 4 << 20
	f := newFixtureOpts(t, 7, cards, opts)
	rng := rand.New(rand.NewSource(41))
	nT1, nT2 := cards["T1"], cards["T2"]

	sqls := []string{
		"SELECT T0.v1, T0.h1 FROM T0 WHERE T0.v2 < '0000000500'",
		"SELECT T0.id, T0.v3 FROM T0 WHERE T0.h2 < '0000000400'",
	}
	check := func(when string) {
		for _, sql := range sqls {
			want := f.refAnswer(t, sql)
			res, err := f.db.Run(sql)
			if err != nil {
				t.Fatalf("%s: %s: %v", when, sql, err)
			}
			if !rowsEqual(res.Rows, want) {
				t.Fatalf("%s: %s: %d rows, want %d", when, sql, len(res.Rows), len(want))
			}
		}
	}

	check("cold")
	check("warm") // repeats may reuse retained spools now
	t0, _ := f.sch.Lookup("T0")
	t1, _ := f.sch.Lookup("T1")
	t2, _ := f.sch.Lookup("T2")
	for i := 0; i < 6; i++ {
		fk1, fk2 := rng.Intn(nT1), rng.Intn(nT2)
		var row []string
		for j := 0; j < 6; j++ {
			row = append(row, fmt.Sprintf("%010d", rng.Intn(1000)))
		}
		sql := fmt.Sprintf(
			"INSERT INTO T0 (fk1, fk2, v1, v2, v3, h1, h2, h3) VALUES (%d, %d, '%s', '%s', '%s', '%s', '%s', '%s')",
			fk1, fk2, row[0], row[1], row[2], row[3], row[4], row[5])
		if _, err := f.db.Run(sql); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		f.ref.Insert(t0.Index, mkRow(row...), map[int]uint32{
			t1.Index: uint32(fk1),
			t2.Index: uint32(fk2),
		})
		check(fmt.Sprintf("after insert %d", i))
	}
	if f.db.PageCacheStats().Invalidations == 0 {
		t.Fatal("inserts drove no page-cache invalidations")
	}
}
