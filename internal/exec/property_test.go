package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"ghostdb/internal/schema"
)

// Property test: randomly generated SPJ queries over the tree schema
// produce exactly the reference engine's answer, regardless of forced
// strategy and projector. This exercises the whole operator zoo — merge
// reduction, cross absorption, Bloom false-positive elimination, MJoin
// batching — against arbitrary predicate/projection combinations.

// subtreeShapes enumerates rooted connected table sets with their join
// clauses.
var subtreeShapes = []struct {
	tables []string
	joins  string
}{
	{[]string{"T0"}, ""},
	{[]string{"T1"}, ""},
	{[]string{"T12"}, ""},
	{[]string{"T0", "T1"}, "T0.fk1 = T1.id"},
	{[]string{"T0", "T2"}, "T0.fk2 = T2.id"},
	{[]string{"T1", "T12"}, "T1.fk12 = T12.id"},
	{[]string{"T1", "T11"}, "T1.fk11 = T11.id"},
	{[]string{"T0", "T1", "T12"}, "T0.fk1 = T1.id AND T1.fk12 = T12.id"},
	{[]string{"T0", "T1", "T2"}, "T0.fk1 = T1.id AND T0.fk2 = T2.id"},
	{[]string{"T1", "T11", "T12"}, "T1.fk11 = T11.id AND T1.fk12 = T12.id"},
	{[]string{"T0", "T1", "T11", "T12", "T2"},
		"T0.fk1 = T1.id AND T0.fk2 = T2.id AND T1.fk11 = T11.id AND T1.fk12 = T12.id"},
}

var propOps = []string{"=", "<", "<=", ">", ">=", "<>"}

// randomQuery builds a random supported query from an rng.
func randomQuery(rng *rand.Rand) string {
	shape := subtreeShapes[rng.Intn(len(subtreeShapes))]
	var conjuncts []string
	if shape.joins != "" {
		conjuncts = append(conjuncts, shape.joins)
	}
	// 1..3 selection predicates on random tables/columns.
	nPred := 1 + rng.Intn(3)
	for i := 0; i < nPred; i++ {
		tb := shape.tables[rng.Intn(len(shape.tables))]
		kind := rng.Intn(7)
		switch {
		case kind == 0: // id predicate
			conjuncts = append(conjuncts, fmt.Sprintf("%s.id %s %d",
				tb, propOps[rng.Intn(len(propOps))], rng.Intn(400)))
		case kind == 1: // BETWEEN
			lo := rng.Intn(900)
			hi := lo + rng.Intn(1000-lo)
			col := randomCol(rng)
			conjuncts = append(conjuncts, fmt.Sprintf("%s.%s BETWEEN '%010d' AND '%010d'", tb, col, lo, hi))
		default:
			col := randomCol(rng)
			op := propOps[rng.Intn(len(propOps))]
			conjuncts = append(conjuncts, fmt.Sprintf("%s.%s %s '%010d'", tb, col, op, rng.Intn(1000)))
		}
	}
	// 1..4 projections.
	var projs []string
	nProj := 1 + rng.Intn(4)
	for i := 0; i < nProj; i++ {
		tb := shape.tables[rng.Intn(len(shape.tables))]
		switch rng.Intn(3) {
		case 0:
			projs = append(projs, tb+".id")
		default:
			projs = append(projs, tb+"."+randomCol(rng))
		}
	}
	sql := fmt.Sprintf("SELECT %s FROM %s", strings.Join(projs, ", "), strings.Join(shape.tables, ", "))
	if len(conjuncts) > 0 {
		sql += " WHERE " + strings.Join(conjuncts, " AND ")
	}
	return sql
}

func randomCol(rng *rand.Rand) string {
	if rng.Intn(2) == 0 {
		return fmt.Sprintf("v%d", 1+rng.Intn(3))
	}
	return fmt.Sprintf("h%d", 1+rng.Intn(3))
}

func TestRandomQueriesMatchReferenceProperty(t *testing.T) {
	f := newFixture(t, 77, map[string]int{"T0": 1200, "T1": 150, "T2": 120, "T11": 40, "T12": 40})
	strategies := []Strategy{StratAuto, StratPre, StratCrossPre, StratPost,
		StratCrossPost, StratPostSelect, StratNoFilter}
	projectors := []Projector{ProjectBloom, ProjectNoBF, ProjectBruteForce}

	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sql := randomQuery(rng)
		want := f.refAnswer(t, sql)
		s := strategies[rng.Intn(len(strategies))]
		pj := projectors[rng.Intn(len(projectors))]
		f.db.SetForceStrategy(s)
		f.db.SetProjector(pj)
		res, err := f.db.Run(sql)
		if err != nil {
			if errors.Is(err, ErrBloomInfeasible) {
				return true
			}
			t.Logf("seed %d [%v/%v] %s: %v", seed, s, pj, sql, err)
			return false
		}
		if !rowsEqual(res.Rows, want) {
			t.Logf("seed %d [%v/%v]: %d rows vs %d\nsql: %s", seed, s, pj, len(res.Rows), len(want), sql)
			return false
		}
		if f.db.RAM.InUse() != 0 {
			t.Logf("seed %d: RAM leak", seed)
			return false
		}
		ups := f.db.Bus.UplinkRecords()
		if len(ups) != 1 || ups[0].Kind != "query" {
			t.Logf("seed %d: leak: %+v", seed, ups)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 120}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRandomInsertsProperty(t *testing.T) {
	f := newFixture(t, 5, map[string]int{"T0": 300, "T1": 60, "T2": 50, "T11": 20, "T12": 20})
	rng := rand.New(rand.NewSource(31))
	rows := map[string]int{"T0": 300, "T1": 60, "T2": 50, "T11": 20, "T12": 20}
	pad10 := func(v int) string { return fmt.Sprintf("%010d", v) }

	insert := func(tb string, fkCols []string, fkTargets []string) {
		var cols, vals []string
		for i, fc := range fkCols {
			cols = append(cols, fc)
			vals = append(vals, fmt.Sprintf("%d", rng.Intn(rows[fkTargets[i]])))
		}
		var refFKs = map[int]uint32{}
		for i, tgt := range fkTargets {
			tt, _ := f.sch.Lookup(tgt)
			v := vals[i]
			var x int
			fmt.Sscanf(v, "%d", &x)
			refFKs[tt.Index] = uint32(x)
		}
		var row []string
		for i := 0; i < 6; i++ {
			row = append(row, pad10(rng.Intn(1000)))
		}
		for i, c := range []string{"v1", "v2", "v3", "h1", "h2", "h3"} {
			cols = append(cols, c)
			vals = append(vals, "'"+row[i]+"'")
		}
		sql := fmt.Sprintf("INSERT INTO %s (%s) VALUES (%s)", tb, strings.Join(cols, ", "), strings.Join(vals, ", "))
		if _, err := f.db.Run(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		tt, _ := f.sch.Lookup(tb)
		refRow := mkRow(row...)
		f.ref.Insert(tt.Index, refRow, refFKs)
		rows[tb]++
	}

	for i := 0; i < 30; i++ {
		switch rng.Intn(5) {
		case 0:
			insert("T12", nil, nil)
		case 1:
			insert("T11", nil, nil)
		case 2:
			insert("T2", nil, nil)
		case 3:
			insert("T1", []string{"fk11", "fk12"}, []string{"T11", "T12"})
		default:
			insert("T0", []string{"fk1", "fk2"}, []string{"T1", "T2"})
		}
		if i%5 != 4 {
			continue
		}
		// Every few inserts, verify a random query still matches.
		sql := randomQuery(rng)
		want := f.refAnswer(t, sql)
		f.db.SetForceStrategy(StratAuto)
		f.db.SetProjector(ProjectBloom)
		res, err := f.db.Run(sql)
		if err != nil {
			t.Fatalf("after %d inserts: %s: %v", i+1, sql, err)
		}
		if !rowsEqual(res.Rows, want) {
			t.Fatalf("after %d inserts: %s: %d rows vs %d", i+1, sql, len(res.Rows), len(want))
		}
	}
}

func mkRow(vals ...string) schema.Row {
	row := make(schema.Row, len(vals))
	for i, v := range vals {
		row[i] = schema.CharVal(v)
	}
	return row
}
