package exec

import (
	"encoding/binary"
	"fmt"
	"strings"

	"ghostdb/internal/query"
	"ghostdb/internal/schema"
	"ghostdb/internal/sqlparse"
)

// Insert adds one tuple, maintaining the vertical partitioning and every
// index structure. Updates are deliberately simple — the paper's setting
// is mono-user with rare updates (§2.3) — but they are complete: the SKT
// of the table gains a row, its climbing indexes gain the new tuple, and
// the climbing indexes of every referenced descendant gain the new
// tuple's id at this table's level.
//
// Without an explicit column list, values are expected as the foreign
// keys (in declaration order) followed by the data columns (in
// declaration order).
//
// insertOn runs against the token owning the table (the caller routed
// it); every structure it maintains — untrusted store, hidden image,
// SKT, climbing indexes, row counts, the data version — is that token's,
// so the caller must hold that token's admitted session.
//
//ghostdb:requires-slot
func (db *DB) insertOn(tok *Token, ins sqlparse.Insert) error {
	t, ok := db.Sch.Lookup(ins.Table)
	if !ok {
		return fmt.Errorf("exec: unknown table %q", ins.Table)
	}
	fks, vals, err := db.bindInsert(t, ins)
	if err != nil {
		return err
	}
	id := uint32(tok.rows[t.Index])

	// Referential integrity.
	for _, ref := range t.Refs {
		child, _ := db.Sch.Lookup(ref.Child)
		cid, ok := fks[child.Index]
		if !ok {
			return fmt.Errorf("exec: missing foreign key %s", ref.FKColumn)
		}
		if int(cid) >= tok.rows[child.Index] {
			return fmt.Errorf("exec: %s=%d references missing %s row", ref.FKColumn, cid, ref.Child)
		}
	}

	// Visible partition.
	var visible []schema.Value
	for ci, col := range t.Columns {
		if !col.Hidden {
			visible = append(visible, vals[ci])
		}
	}
	if err := tok.Untr.InsertRow(t.Index, visible); err != nil {
		return err
	}

	// Hidden image.
	img := tok.Hidden[t.Index]
	var hidRec []byte
	if img != nil {
		var hidden schema.Row
		for ci, col := range t.Columns {
			if col.Hidden {
				hidden = append(hidden, vals[ci])
			}
		}
		hidRec = make([]byte, img.Codec.Width())
		if err := img.Codec.Encode(hidRec, hidden); err != nil {
			return err
		}
		if err := img.File.Insert(hidRec); err != nil {
			return err
		}
	}

	// SKT row: descendant ids via the children's SKT rows.
	descIDs := map[int]uint32{}
	if len(t.Children()) > 0 {
		for _, c := range t.Children() {
			cid := fks[c]
			descIDs[c] = cid
			if cskt, ok := tok.Cat.SKTOf(c); ok {
				row := make([]uint32, len(cskt.Descendants()))
				if err := cskt.ReadRow(cid, row); err != nil {
					return err
				}
				for i, d := range cskt.Descendants() {
					descIDs[d] = row[i]
				}
			}
		}
		if skt, ok := tok.Cat.SKTOf(t.Index); ok {
			row := make([]uint32, len(skt.Descendants()))
			for i, d := range skt.Descendants() {
				row[i] = descIDs[d]
			}
			if err := skt.Insert(row); err != nil {
				return err
			}
		}
	}

	// Own attribute indexes: the new tuple at the self level.
	for ci, col := range t.Columns {
		if !col.Hidden {
			continue
		}
		cidx, ok := tok.Cat.AttrIndex(t.Index, ci)
		if !ok {
			continue
		}
		key := make([]byte, col.EncodedWidth())
		if err := schema.EncodeValue(key, vals[ci]); err != nil {
			return err
		}
		perLevel := make([]int64, len(cidx.Levels()))
		for i, lvl := range cidx.Levels() {
			if lvl == t.Index {
				perLevel[i] = int64(id)
			} else {
				perLevel[i] = -1
			}
		}
		if err := cidx.InsertEntry(key, perLevel); err != nil {
			return err
		}
	}

	// Descendant indexes gain the new tuple's id at this table's level.
	for d, did := range descIDs {
		dt := db.Sch.Tables[d]
		dimg := tok.Hidden[d]
		var drec []byte
		for ci, col := range dt.Columns {
			if !col.Hidden {
				continue
			}
			cidx, ok := tok.Cat.AttrIndex(d, ci)
			if !ok {
				continue
			}
			slot, ok := cidx.LevelOf(t.Index)
			if !ok {
				continue
			}
			if drec == nil {
				if dimg == nil {
					return fmt.Errorf("exec: no hidden image for %s", dt.Name)
				}
				drec = make([]byte, dimg.File.RowWidth())
				if err := dimg.File.ReadRow(did, drec); err != nil {
					return err
				}
			}
			o, w := dimg.Codec.ColumnRange(dimg.ColPos[ci])
			key := make([]byte, w)
			copy(key, drec[o:o+w])
			perLevel := make([]int64, len(cidx.Levels()))
			for i := range perLevel {
				perLevel[i] = -1
			}
			perLevel[slot] = int64(id)
			if err := cidx.InsertEntry(key, perLevel); err != nil {
				return err
			}
			_ = col
		}
		if idIdx, ok := tok.Cat.IDIndex(d); ok {
			if slot, ok := idIdx.LevelOf(t.Index); ok {
				var key [4]byte
				binary.BigEndian.PutUint32(key[:], did)
				perLevel := make([]int64, len(idIdx.Levels()))
				for i := range perLevel {
					perLevel[i] = -1
				}
				perLevel[slot] = int64(id)
				if err := idIdx.InsertEntry(key[:], perLevel); err != nil {
					return err
				}
			}
		}
	}

	tok.mu.Lock()
	tok.rows[t.Index]++
	tok.mu.Unlock()
	// The update is committed: bump this shard's data version so no later
	// query touching the shard can be answered from a pre-insert entry.
	// (Queries whose execution is already in flight are prevented from
	// *storing* their results by the same version stamp.) Entries whose
	// queries touch only other shards are untouched — that is the point
	// of the per-shard vector.
	tok.bumpVersion()
	if db.cache != nil {
		db.cache.BumpShard(tok.id)
	}
	if db.pages != nil {
		db.pages.BumpShard(tok.id)
	}
	return nil
}

// bindInsert maps the INSERT's values onto foreign keys and data columns.
func (db *DB) bindInsert(t *schema.Table, ins sqlparse.Insert) (map[int]uint32, []schema.Value, error) {
	fks := map[int]uint32{}
	vals := make([]schema.Value, len(t.Columns))
	bound := make([]bool, len(t.Columns))

	bindFK := func(ref schema.Ref, v schema.Value) error {
		if v.Kind != schema.KindInt || v.I < 0 {
			return fmt.Errorf("exec: foreign key %s needs a non-negative int, got %s", ref.FKColumn, v)
		}
		child, _ := db.Sch.Lookup(ref.Child)
		fks[child.Index] = uint32(v.I)
		return nil
	}
	bindCol := func(ci int, v schema.Value) error {
		cv, err := coerceInsert(v, t.Columns[ci])
		if err != nil {
			return fmt.Errorf("exec: column %s: %w", t.Columns[ci].Name, err)
		}
		vals[ci] = cv
		bound[ci] = true
		return nil
	}

	if len(ins.Columns) > 0 {
		if len(ins.Columns) != len(ins.Values) {
			return nil, nil, fmt.Errorf("exec: %d columns but %d values", len(ins.Columns), len(ins.Values))
		}
		for i, name := range ins.Columns {
			matched := false
			for _, ref := range t.Refs {
				if strings.EqualFold(ref.FKColumn, name) {
					if err := bindFK(ref, ins.Values[i]); err != nil {
						return nil, nil, err
					}
					matched = true
					break
				}
			}
			if matched {
				continue
			}
			if _, ci, ok := t.Column(name); ok {
				if err := bindCol(ci, ins.Values[i]); err != nil {
					return nil, nil, err
				}
				continue
			}
			return nil, nil, fmt.Errorf("exec: unknown column %q in INSERT", name)
		}
	} else {
		want := len(t.Refs) + len(t.Columns)
		if len(ins.Values) != want {
			return nil, nil, fmt.Errorf("exec: INSERT into %s needs %d values (fks then columns), got %d",
				t.Name, want, len(ins.Values))
		}
		for i, ref := range t.Refs {
			if err := bindFK(ref, ins.Values[i]); err != nil {
				return nil, nil, err
			}
		}
		for ci := range t.Columns {
			if err := bindCol(ci, ins.Values[len(t.Refs)+ci]); err != nil {
				return nil, nil, err
			}
		}
	}
	for ci := range t.Columns {
		if !bound[ci] {
			return nil, nil, fmt.Errorf("exec: column %s has no value (defaults are not supported)", t.Columns[ci].Name)
		}
	}
	if len(fks) != len(t.Refs) {
		return nil, nil, fmt.Errorf("exec: INSERT into %s must provide all foreign keys", t.Name)
	}
	return fks, vals, nil
}

func coerceInsert(v schema.Value, col schema.Column) (schema.Value, error) {
	switch col.Kind {
	case schema.KindInt:
		if v.Kind == schema.KindInt {
			return v, nil
		}
	case schema.KindFloat:
		if v.Kind == schema.KindFloat {
			return v, nil
		}
		if v.Kind == schema.KindInt {
			return schema.FloatVal(float64(v.I)), nil
		}
	case schema.KindChar:
		if v.Kind == schema.KindChar {
			if len(v.S) > col.Width {
				return schema.Value{}, fmt.Errorf("string %q exceeds char(%d)", v.S, col.Width)
			}
			return v, nil
		}
	}
	return schema.Value{}, fmt.Errorf("value %s incompatible with %v", v, col.Kind)
}

var _ = query.IDCol // keep the import while insert uses only sibling files
