package exec

import (
	"fmt"
	"slices"

	"ghostdb/internal/ram"
	"ghostdb/internal/store"
)

// applyPostSelect implements the Post-Select strategy of Figure 11: an
// *exact* selection on the materialized QEPSJ result. The visible id list
// is staged in RAM; when it does not fit the grant received, the result
// column is re-scanned once per chunk — which is precisely why the paper
// dismisses Post-Select as a relevant strategy. The operator never fails
// while its 3-buffer minimum (staging chunk + column reader + position
// writer) is free: a smaller staging grant only means more re-scans.
func (r *queryRun) applyPostSelect(tv int, visIDs []uint32) error {
	db := r.db
	return r.col.Span(spanPostSelect, func() error {
		col, ok := r.resCols[tv]
		if !ok {
			return fmt.Errorf("exec: post-select table %s has no result column", db.Sch.Tables[tv].Name)
		}
		// Stage the id list in chunks. The staging cap was bound from the
		// session's grant at admission time (grant minus the fixed reader
		// and writer); the data's own size can only shrink it.
		bufSize := r.ram.BufferSize()
		wantStage := (len(visIDs)*store.IDBytes + bufSize - 1) / bufSize
		if wantStage < 1 {
			wantStage = 1
		}
		if wantStage > r.bind.PostSelectStage {
			wantStage = r.bind.PostSelectStage
		}
		resv, err := r.ram.Plan(
			ram.Claim{Name: "stage", Min: 1, Want: wantStage},
			ram.Claim{Name: "scan", Min: 1, Want: 1},
			ram.Claim{Name: "out", Min: 1, Want: 1},
		)
		if err != nil {
			return fmt.Errorf("exec: post-select: %w", err)
		}
		chunkCap := resv.Bytes("stage") / store.IDBytes
		posSeg := r.newTemp()
		var posRuns []store.Run
		selErr := func() error {
			for start := 0; start < len(visIDs); start += chunkCap {
				end := start + chunkCap
				if end > len(visIDs) {
					end = len(visIDs)
				}
				chunk := visIDs[start:end]
				if err := posSeg.BeginRun(); err != nil {
					return err
				}
				rd := col.seg.NewRunReader(col.run)
				pos := uint32(0)
				for {
					v, ok, err := rd.Next()
					if err != nil {
						return err
					}
					if !ok {
						break
					}
					if _, found := slices.BinarySearch(chunk, v); found {
						if err := posSeg.Add(pos); err != nil {
							return err
						}
					}
					pos++
				}
				run, err := posSeg.EndRun()
				if err != nil {
					return err
				}
				posRuns = append(posRuns, run)
			}
			return posSeg.Seal()
		}()
		resv.Release()
		if selErr != nil {
			return selErr
		}

		// Rebuild every result column, keeping only selected positions.
		// The chunk runs hold disjoint position ranges; consolidate them
		// first when there are more than the stream buffers left after
		// the per-column reader and writer.
		posSegs := sameSegs(posSeg, len(posRuns))
		posSegs, posRuns, err = r.consolidateRuns(posSegs, posRuns,
			r.ram.AvailableBuffers()-2, spanPostSelect)
		if err != nil {
			return err
		}
		rw, err := r.ram.Plan(
			ram.Claim{Name: "scan", Min: 1, Want: 1},
			ram.Claim{Name: "out", Min: 1, Want: 1},
		)
		if err != nil {
			return fmt.Errorf("exec: post-select: %w", err)
		}
		defer rw.Release()

		newCols := make(map[int]resCol, len(r.resCols))
		newN := 0
		for ti, c := range r.resCols {
			srcs := make([]idStream, 0, len(posRuns))
			for i, run := range posRuns {
				s, err := newRunStream(posSegs[i], run, r.ram)
				if err != nil {
					for _, s2 := range srcs {
						s2.close()
					}
					return err
				}
				srcs = append(srcs, s)
			}
			var ps idStream = emptyStream{}
			if len(srcs) > 0 {
				u, err := newUnionStream(srcs)
				if err != nil {
					return err
				}
				ps = u
			}
			out := r.newTemp()
			if err := out.BeginRun(); err != nil {
				ps.close()
				return err
			}
			rd := c.seg.NewRunReader(c.run)
			nextSel, selOK, err := ps.next()
			if err != nil {
				ps.close()
				return err
			}
			pos := uint32(0)
			kept := 0
			for selOK {
				v, ok, err := rd.Next()
				if err != nil {
					ps.close()
					return err
				}
				if !ok {
					break
				}
				if pos == nextSel {
					if err := out.Add(v); err != nil {
						ps.close()
						return err
					}
					kept++
					nextSel, selOK, err = ps.next()
					if err != nil {
						ps.close()
						return err
					}
				}
				pos++
			}
			ps.close()
			run, err := out.EndRun()
			if err != nil {
				return err
			}
			if err := out.Seal(); err != nil {
				return err
			}
			newCols[ti] = resCol{seg: out, run: run}
			newN = kept
		}
		r.resCols = newCols
		r.resN = newN
		return nil
	})
}
