package exec

import (
	"fmt"
	"slices"

	"ghostdb/internal/store"
)

// applyPostSelect implements the Post-Select strategy of Figure 11: an
// *exact* selection on the materialized QEPSJ result. The visible id list
// is staged in RAM; when it does not fit, the result column is re-scanned
// once per chunk — which is precisely why the paper dismisses Post-Select
// as a relevant strategy.
func (r *queryRun) applyPostSelect(tv int, visIDs []uint32) error {
	db := r.db
	return db.Col.Span(spanPostSelect, func() error {
		col, ok := r.resCols[tv]
		if !ok {
			return fmt.Errorf("exec: post-select table %s has no result column", db.Sch.Tables[tv].Name)
		}
		// Stage the id list in RAM chunks.
		avail := db.RAM.Available() - 4*db.RAM.BufferSize()
		if avail < db.RAM.BufferSize() {
			return fmt.Errorf("exec: not enough RAM for post-select")
		}
		grant, err := db.RAM.Alloc(avail)
		if err != nil {
			return err
		}
		chunkCap := avail / 4
		posSeg := r.newTemp()
		var posRuns []store.Run
		for start := 0; start < len(visIDs); start += chunkCap {
			end := start + chunkCap
			if end > len(visIDs) {
				end = len(visIDs)
			}
			chunk := visIDs[start:end]
			if err := posSeg.BeginRun(); err != nil {
				grant.Release()
				return err
			}
			rd := col.seg.NewRunReader(col.run)
			pos := uint32(0)
			for {
				v, ok, err := rd.Next()
				if err != nil {
					grant.Release()
					return err
				}
				if !ok {
					break
				}
				if _, found := slices.BinarySearch(chunk, v); found {
					if err := posSeg.Add(pos); err != nil {
						grant.Release()
						return err
					}
				}
				pos++
			}
			run, err := posSeg.EndRun()
			if err != nil {
				grant.Release()
				return err
			}
			posRuns = append(posRuns, run)
		}
		grant.Release()
		if err := posSeg.Seal(); err != nil {
			return err
		}

		// Rebuild every result column, keeping only selected positions.
		newCols := make(map[int]resCol, len(r.resCols))
		newN := 0
		for ti, c := range r.resCols {
			srcs := make([]idStream, 0, len(posRuns))
			for _, run := range posRuns {
				s, err := newRunStream(posSeg, run, db.RAM)
				if err != nil {
					for _, s2 := range srcs {
						s2.close()
					}
					return err
				}
				srcs = append(srcs, s)
			}
			var ps idStream = emptyStream{}
			if len(srcs) > 0 {
				u, err := newUnionStream(srcs)
				if err != nil {
					return err
				}
				ps = u
			}
			out := r.newTemp()
			if err := out.BeginRun(); err != nil {
				ps.close()
				return err
			}
			rd := c.seg.NewRunReader(c.run)
			nextSel, selOK, err := ps.next()
			if err != nil {
				ps.close()
				return err
			}
			pos := uint32(0)
			kept := 0
			for selOK {
				v, ok, err := rd.Next()
				if err != nil {
					ps.close()
					return err
				}
				if !ok {
					break
				}
				if pos == nextSel {
					if err := out.Add(v); err != nil {
						ps.close()
						return err
					}
					kept++
					nextSel, selOK, err = ps.next()
					if err != nil {
						ps.close()
						return err
					}
				}
				pos++
			}
			ps.close()
			run, err := out.EndRun()
			if err != nil {
				return err
			}
			if err := out.Seal(); err != nil {
				return err
			}
			newCols[ti] = resCol{seg: out, run: run}
			newN = kept
		}
		r.resCols = newCols
		r.resN = newN
		return nil
	})
}
