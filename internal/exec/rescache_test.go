package exec

import (
	"context"
	"sync"
	"testing"

	"ghostdb/internal/flash"
	"ghostdb/internal/schema"
)

// newCachedFixture builds the synthetic fixture with the result cache
// enabled (everything else identical to newFixture).
func newCachedFixture(t testing.TB, seed uint64, cards map[string]int, cacheBytes int) *fixture {
	t.Helper()
	return newFixtureOpts(t, seed, cards, Options{
		FlashParams:      flash.Params{PageSize: 2048, PagesPerBlock: 16, Blocks: 8192, ReserveBlocks: 4},
		ResultCacheBytes: cacheBytes,
	})
}

// TestCacheHitZeroTokenTraffic: the second identical query is served
// from the cache with byte-identical rows and zero secure-token work.
func TestCacheHitZeroTokenTraffic(t *testing.T) {
	f := newCachedFixture(t, 7, map[string]int{"T0": 600, "T1": 80, "T2": 60, "T11": 20, "T12": 20}, 1<<20)
	sql := `SELECT T0.id, T1.v1, T1.h1 FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.v1 < '0000000500' AND T1.h2 < '0000000100'`

	first, err := f.db.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.CacheHit || first.Stats.CacheShared {
		t.Fatal("first run must execute, not hit")
	}
	if first.Stats.BusUp == 0 {
		t.Fatal("executed query should have shipped its text on the bus")
	}

	// Whitespace/case/alias variant of the same query: must hit. The
	// zero-traffic claim is checked against the engine's own counters —
	// the hit's Stats are zero by construction, so they prove nothing;
	// the device and bus counters move (or reset) on *any* token
	// activity, so their perfect stillness is the real evidence.
	devBefore := f.db.Dev.Counters()
	downBefore, upBefore := f.db.Bus.Counters()
	variant := `select   t0.ID, X.v1, X.h1 from T0, T1 X where T0.FK1 = x.id and X.v1 < '0000000500' AND x.h2<'0000000100'`
	second, err := f.db.Run(variant)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.CacheHit {
		t.Fatalf("variant did not hit: %+v", second.Stats)
	}
	devAfter := f.db.Dev.Counters()
	downAfter, upAfter := f.db.Bus.Counters()
	if devBefore != devAfter || downBefore != downAfter || upBefore != upAfter {
		t.Fatalf("cache hit moved the secure token's counters: flash %+v -> %+v, bus %d/%d -> %d/%d",
			devBefore, devAfter, downBefore, upBefore, downAfter, upAfter)
	}
	if s := second.Stats; s.SimTime != 0 || s.BusUp != 0 || s.BusDown != 0 {
		t.Fatalf("hit Stats should report zero cost: %+v", s)
	}
	if len(second.Rows) != len(first.Rows) || len(second.Columns) != len(first.Columns) {
		t.Fatalf("hit shape differs: %dx%d vs %dx%d",
			len(second.Rows), len(second.Columns), len(first.Rows), len(first.Columns))
	}
	for ri := range second.Rows {
		for ci := range second.Rows[ri] {
			if !second.Rows[ri][ci].Equal(first.Rows[ri][ci]) {
				t.Fatalf("row %d col %d differs on hit", ri, ci)
			}
		}
	}

	tot := f.db.Totals()
	if tot.CacheHits != 1 || tot.Queries != 2 {
		t.Fatalf("totals: %+v, want 2 queries / 1 hit", tot)
	}
}

// TestCacheInsertInvalidates: INSERT-then-query never serves a stale
// result.
func TestCacheInsertInvalidates(t *testing.T) {
	f := newCachedFixture(t, 11, map[string]int{"T0": 300, "T1": 50, "T2": 40, "T11": 15, "T12": 15}, 1<<20)
	sql := `SELECT T2.id, T2.h1 FROM T2 WHERE T2.v1 >= '0000000000'` // all rows
	before, err := f.db.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := f.db.Run(sql); res == nil || !res.Stats.CacheHit {
		t.Fatal("warm query should hit before the insert")
	}
	ins := `INSERT INTO T2 (v1, v2, v3, h1, h2, h3) VALUES ('0000000001','0000000002','0000000003','0000000004','0000000005','0000000006')`
	if _, err := f.db.Run(ins); err != nil {
		t.Fatal(err)
	}
	after, err := f.db.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	if after.Stats.CacheHit || after.Stats.CacheShared {
		t.Fatal("post-insert query served from the stale cache")
	}
	if len(after.Rows) != len(before.Rows)+1 {
		t.Fatalf("post-insert rows = %d, want %d", len(after.Rows), len(before.Rows)+1)
	}
	// And the fresh answer is cached again.
	if res, _ := f.db.Run(sql); res == nil || !res.Stats.CacheHit {
		t.Fatal("fresh answer was not re-cached")
	}
}

// TestCacheKeySeparatesForcedStrategies: a forced-strategy run must not
// alias with the planner's default entry (their Stats mean different
// things in experiments).
func TestCacheKeySeparatesForcedStrategies(t *testing.T) {
	f := newCachedFixture(t, 13, map[string]int{"T0": 400, "T1": 60, "T2": 50, "T11": 15, "T12": 15}, 1<<20)
	sql := `SELECT T0.id, T1.v1 FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.v1 < '0000000200'`
	if _, err := f.db.Run(sql); err != nil { // planner default, cached
		t.Fatal(err)
	}
	forced, err := f.db.RunCtx(context.Background(), sql, QueryConfig{Strategy: StratPostSelect})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Stats.CacheHit || forced.Stats.CacheShared {
		t.Fatal("forced-strategy run aliased with the default-strategy entry")
	}
	again, err := f.db.RunCtx(context.Background(), sql, QueryConfig{Strategy: StratPostSelect})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Stats.CacheHit {
		t.Fatal("repeated forced-strategy run should hit its own entry")
	}
}

// TestCacheConcurrentIdenticalQueries: N concurrent identical queries
// resolve to exactly one executed session; the rest are hits or
// singleflight-shared, all with identical answers.
func TestCacheConcurrentIdenticalQueries(t *testing.T) {
	f := newCachedFixture(t, 17, map[string]int{"T0": 900, "T1": 120, "T2": 90, "T11": 25, "T12": 25}, 1<<20)
	sql := `SELECT T0.id, T1.v1, T1.h1 FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.v1 < '0000000400' AND T1.h2 < '0000000100'`

	const n = 12
	results := make([]*Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := f.db.RunCtx(context.Background(), sql, QueryConfig{})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			results[i] = res
		}()
	}
	wg.Wait()

	var want []schema.Row
	for i, res := range results {
		if res == nil {
			t.Fatalf("worker %d got no result", i)
		}
		if want == nil {
			want = res.Rows
			continue
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("worker %d: %d rows, want %d", i, len(res.Rows), len(want))
		}
	}
	tot := f.db.Totals()
	executed := tot.Queries - tot.CacheHits - tot.CacheShared
	if tot.Queries != n {
		t.Fatalf("totals.Queries = %d, want %d", tot.Queries, n)
	}
	if executed != 1 {
		t.Fatalf("%d sessions executed, want exactly 1 (hits=%d shared=%d)",
			executed, tot.CacheHits, tot.CacheShared)
	}
	for i, res := range results {
		if s := res.Stats; (s.CacheHit || s.CacheShared) && (s.BusUp != 0 || s.BusDown != 0 || s.Flash.PageReads != 0) {
			t.Fatalf("worker %d: cached answer with token traffic: %+v", i, s)
		}
	}
}
