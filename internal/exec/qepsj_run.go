package exec

import (
	"fmt"
	"sort"

	"ghostdb/internal/bloom"
	"ghostdb/internal/query"
	"ghostdb/internal/ram"
	"ghostdb/internal/schema"
	"ghostdb/internal/sqlparse"
	"ghostdb/internal/store"
)

// qepsj evaluates the selection/join part of the query (§3.3): it builds
// one Merge group per conjunct at the anchor level, reduces sublists to
// fit the RAM budget, and pipelines Merge → SJoin → ProbeBF → Store.
func (r *queryRun) qepsj() error {
	q, db := r.q, r.db
	anchor := q.Anchor

	var groups []*mergeGroup
	hidden := q.HiddenPreds()
	absorbed := make([]bool, len(hidden))

	// ---- Visible strategies (non-anchor tables).
	type bfPlanned struct {
		table int
		ids   []uint32
	}
	var bfPlans []bfPlanned
	// Deepest tables first, so cross absorption picks the tightest level.
	var visTables []int
	for tv := range r.strategies {
		visTables = append(visTables, tv)
	}
	sort.Slice(visTables, func(i, j int) bool {
		a, b := visTables[i], visTables[j]
		if db.Sch.Tables[a].Depth != db.Sch.Tables[b].Depth {
			return db.Sch.Tables[a].Depth > db.Sch.Tables[b].Depth
		}
		return a < b
	})
	for _, tv := range visTables {
		strat := r.strategies[tv]
		vr := r.vis[tv]
		crossPreds, crossIdx := r.crossingPreds(tv, hidden, absorbed)

		// Degrade cross strategies when every crossing predicate has
		// already been absorbed by a deeper table.
		if len(crossPreds) == 0 {
			switch strat {
			case StratCrossPre:
				strat = StratPre
			case StratCrossPost:
				strat = StratPost
			case StratCrossPostSelect:
				strat = StratPostSelect
			}
			r.strategies[tv] = strat
		}

		switch strat {
		case StratPre:
			g, err := r.preFilterGroup(tv, vr.IDs)
			if err != nil {
				return err
			}
			groups = append(groups, g)
		case StratCrossPre:
			l, err := r.crossedList(tv, crossPreds)
			if err != nil {
				return err
			}
			for _, i := range crossIdx {
				absorbed[i] = true // exact: no need to re-apply at anchor
			}
			g, err := r.preFilterGroup(tv, l)
			if err != nil {
				return err
			}
			groups = append(groups, g)
		case StratPost:
			bfPlans = append(bfPlans, bfPlanned{table: tv, ids: vr.IDs})
		case StratCrossPost:
			l, err := r.crossedList(tv, crossPreds)
			if err != nil {
				return err
			}
			bfPlans = append(bfPlans, bfPlanned{table: tv, ids: l})
		case StratPostSelect:
			r.postSelect[tv] = vr.IDs
		case StratCrossPostSelect:
			l, err := r.crossedList(tv, crossPreds)
			if err != nil {
				return err
			}
			r.postSelect[tv] = l
		case StratNoFilter:
			// postponed entirely to projection time
		default:
			return fmt.Errorf("exec: unexpected strategy %v", strat)
		}
		if r.needsExact(tv) {
			r.exactAtProject[tv] = true
		}
	}

	// ---- Hidden predicates (not absorbed) at the anchor level.
	for i, p := range hidden {
		if absorbed[i] {
			continue
		}
		if p.Table == anchor && p.ColIdx == query.IDCol {
			r.anchorPred = append(r.anchorPred, p)
			continue
		}
		g := &mergeGroup{label: fmt.Sprintf("hidden:%s", db.Sch.Tables[p.Table].Name)}
		// An upsert overlay makes the table's climbing indexes stale for
		// attribute keys (entries are never removed when a row's value
		// changes): force the overlay-corrected scan. Id keys are exempt
		// — ids never move, so id-index entries cannot go stale.
		dirty := false
		if p.ColIdx != query.IDCol {
			if dl := r.tok.deltaOf(p.Table); dl != nil && dl.DirtyCount() > 0 {
				dirty = true
			}
		}
		ci := r.indexFor(p)
		if ci == nil || dirty {
			if err := r.scanFallback(g, p); err != nil {
				return err
			}
			groups = append(groups, g)
			continue
		}
		slot, ok := ci.LevelOf(anchor)
		if !ok {
			if err := r.scanFallback(g, p); err != nil {
				return err
			}
			groups = append(groups, g)
			continue
		}
		var runs []store.Run
		err := r.col.Span(spanCI, func() error {
			var err error
			runs, err = r.runsForHiddenPred(p, ci, slot)
			return err
		})
		if err != nil {
			return err
		}
		for _, run := range runs {
			g.addRun(ci.Lists(), run)
		}
		groups = append(groups, g)
	}

	// ---- Anchor-table visible selection: its id list is already at the
	// anchor level, so it joins the Merge directly (always exact).
	if vr := r.vis[anchor]; vr != nil && len(q.VisiblePreds()[anchor]) > 0 {
		groups = append(groups, &mergeGroup{
			label:   "vis:anchor",
			streams: []idStream{newSliceStream(vr.IDs)},
		})
	}

	// ---- Which tables need a column in the QEPSJ result?
	neededSet := map[int]bool{}
	for _, ti := range q.ProjTables() {
		if ti != anchor {
			neededSet[ti] = true
		}
	}
	for ti := range r.exactAtProject {
		neededSet[ti] = true
	}
	for ti := range r.postSelect {
		neededSet[ti] = true
	}
	// bfPlans tables are already covered: Post / Cross-Post strategies
	// are exact-at-project, so the loop above picked them up.
	var needed []int
	for ti := range neededSet {
		needed = append(needed, ti)
	}
	sort.Ints(needed)

	// ---- Reserve the store pipeline's buffers up front as named
	// sub-reservations, so the Bloom filters and the Merge reduction can
	// only spend what is genuinely left instead of racing the writers
	// for it. Under a tight grant (Binding.StoreDirect false) the column
	// writers share one staged spill buffer instead of holding one each;
	// the survivors are distributed into per-column segments by an extra
	// pass after the pipeline releases.
	var claims []ram.Claim
	if r.bind.StoreDirect || len(needed) == 0 {
		claims = []ram.Claim{{Name: "store-writers", Min: len(needed) + 1, Want: len(needed) + 1}}
	} else {
		claims = []ram.Claim{{Name: "store-stage", Min: 1, Want: 1}}
	}
	// The SKT reader claim mirrors the plan's data-independent floor
	// condition exactly: every multi-table query reserves it, because the
	// join may need to chase anchor tuples to joined tables and drop
	// those referencing a tombstoned row. Whether tombstones actually
	// exist is hidden state — neither the claim set nor any admission
	// error may depend on it.
	if len(needed) > 0 || len(q.Tables) > 1 {
		claims = append(claims, ram.Claim{Name: "skt-reader", Min: 1, Want: 1})
	}
	// Joined non-anchor tables with live tombstones (consumed in-slot by
	// joinAndStore's chase; never reaches untrusted-observable output).
	var tombChecks []int
	for _, ti := range q.Tables {
		if ti == anchor {
			continue
		}
		if dl := r.tok.deltaOf(ti); dl != nil && dl.TombCount() > 0 {
			tombChecks = append(tombChecks, ti)
		}
	}
	pipe, err := r.ram.Plan(claims...)
	if err != nil {
		return fmt.Errorf("exec: QEPSJ pipeline: %w", err)
	}
	// Release is idempotent: the defer covers error paths, the explicit
	// release after joinAndStore returns the memory before Post-Select.
	defer pipe.Release()

	// ---- Build Bloom filters (they live in RAM through the pipeline).
	var bfs []*bfFilter
	releaseBFs := func() {
		for _, f := range bfs {
			if f.grant != nil {
				f.grant.Release()
				f.grant = nil
			}
		}
	}
	defer releaseBFs()
	for _, plan := range bfPlans {
		n := len(plan.ids)
		rows := r.tok.rows[plan.table]
		if rows > 0 && float64(n)/float64(rows) > 0.5 {
			if r.cfg.Strategy != StratAuto {
				return fmt.Errorf("%w: table %s selects %d of %d rows",
					ErrBloomInfeasible, db.Sch.Tables[plan.table].Name, n, rows)
			}
			r.strategies[plan.table] = StratNoFilter
			continue
		}
		budget := r.ram.Budget() / 2
		if len(bfPlans) > 1 {
			budget /= len(bfPlans)
		}
		// The filter must leave the Merge its bound reserve: one stream
		// buffer per planned sublist group plus the reduction workspace,
		// fixed at admission time. The old hardcoded 3-buffer slack could
		// starve a Merge with more groups than that under a floor-sized
		// grant.
		if free := r.ram.Available() - r.bind.MergeReserve*r.ram.BufferSize(); budget > free {
			budget = free
		}
		bp, err := bloom.PlanFor(n, budget)
		if err != nil {
			if r.cfg.Strategy != StratAuto {
				return fmt.Errorf("%w: %v", ErrBloomInfeasible, err)
			}
			r.strategies[plan.table] = StratNoFilter
			continue
		}
		grant, err := r.ram.Alloc(bp.Bytes)
		if err != nil {
			// The filter is an optimization: under RAM pressure fall back
			// to exact verification at projection time.
			if r.cfg.Strategy != StratAuto {
				return fmt.Errorf("%w: %v", ErrBloomInfeasible, err)
			}
			r.strategies[plan.table] = StratNoFilter
			continue
		}
		f := bloom.New(bp, n)
		err = r.col.Span(spanBF, func() error {
			for _, id := range plan.ids {
				f.Add(id)
			}
			return nil
		})
		if err != nil {
			grant.Release()
			return err
		}
		bfs = append(bfs, &bfFilter{table: plan.table, filter: f, grant: grant})
	}

	// ---- Reduce sublists to fit the Merge's stream buffers, then open
	// the merged stream (fan-in bound at admission: the grant minus the
	// pipeline's fixed claims).
	if err := r.reduceGroups(groups, r.bind.MergeFanIn); err != nil {
		return err
	}
	merged, err := r.openMerged(groups)
	if err != nil {
		return err
	}
	for _, p := range r.anchorPred {
		merged = &filterStream{src: merged, keep: idPredFilter(p)}
	}
	// Anchor tombstones: deleted anchor rows are dropped from the merged
	// stream before the join (their index entries survive a DELETE).
	merged = r.dropDeadAnchors(q.Anchor, merged)

	// ---- Pipeline: Merge -> SJoin -> ProbeBF -> Store.
	err = r.joinAndStore(merged, needed, tombChecks, bfs)
	merged.close()
	pipe.Release()
	if err != nil {
		return err
	}
	// The filters are dead once the pipeline has stored its columns;
	// return their RAM before the distribution pass and the exact
	// Post-Select re-scans.
	releaseBFs()

	// ---- Shared-stage mode: distribute the spilled survivor tuples
	// into the per-column segments the projection operators expect.
	if r.spill != nil {
		if err := r.distributeSpill(); err != nil {
			return err
		}
	}

	// ---- Exact Post-Select passes, if any (Figure 11).
	for ti, ids := range r.postSelect {
		if err := r.applyPostSelect(ti, ids); err != nil {
			return err
		}
	}
	return nil
}

// idPredFilter compiles an anchor id predicate into a keep function.
func idPredFilter(p query.Pred) func(uint32) bool {
	lo, hi := p.Lo.I, p.Hi.I
	switch p.Op {
	case sqlparse.OpEq:
		return func(id uint32) bool { return int64(id) == lo }
	case sqlparse.OpNe:
		return func(id uint32) bool { return int64(id) != lo }
	case sqlparse.OpLt:
		return func(id uint32) bool { return int64(id) < lo }
	case sqlparse.OpLe:
		return func(id uint32) bool { return int64(id) <= lo }
	case sqlparse.OpGt:
		return func(id uint32) bool { return int64(id) > lo }
	case sqlparse.OpGe:
		return func(id uint32) bool { return int64(id) >= lo }
	case sqlparse.OpBetween:
		return func(id uint32) bool { return int64(id) >= lo && int64(id) <= hi }
	}
	return func(uint32) bool { return false }
}

// crossingPreds returns the hidden predicates usable for the Cross
// optimization at table tv, with their positions in the hidden list.
func (r *queryRun) crossingPreds(tv int, hidden []query.Pred, absorbed []bool) ([]query.Pred, []int) {
	var preds []query.Pred
	var idx []int
	for i, p := range hidden {
		if absorbed[i] {
			continue
		}
		if p.ColIdx != query.IDCol {
			if dl := r.tok.deltaOf(p.Table); dl != nil && dl.DirtyCount() > 0 {
				// Upserts make the attribute index stale: the predicate
				// must go through the overlay-corrected scan at the
				// anchor level instead of being crossed here.
				continue
			}
		}
		if p.Table == tv {
			if p.ColIdx == query.IDCol {
				continue // id predicate on tv itself: cheap at anchor level
			}
			preds = append(preds, p)
			idx = append(idx, i)
			continue
		}
		if r.db.Sch.IsAncestorOf(tv, p.Table) {
			if ci := r.indexFor(p); ci != nil {
				if _, ok := ci.LevelOf(tv); ok {
					preds = append(preds, p)
					idx = append(idx, i)
				}
			}
		}
	}
	return preds, idx
}

// crossedList intersects a table's Visible id list with the same-level
// hidden selections (the Cross optimization, §3.3): the result is both
// smaller and exact at level tv.
func (r *queryRun) crossedList(tv int, preds []query.Pred) ([]uint32, error) {
	vr := r.vis[tv]
	srcs := []idStream{newSliceStream(vr.IDs)}
	cleanup := func() {
		for _, s := range srcs {
			s.close()
		}
	}
	var groups []*mergeGroup
	for _, p := range preds {
		ci := r.indexFor(p)
		slot, _ := ci.LevelOf(tv)
		var runs []store.Run
		err := r.col.Span(spanCI, func() error {
			var err error
			runs, err = r.runsForHiddenPred(p, ci, slot)
			return err
		})
		if err != nil {
			cleanup()
			return nil, err
		}
		g := &mergeGroup{label: "cross"}
		for _, run := range runs {
			g.addRun(ci.Lists(), run)
		}
		groups = append(groups, g)
	}
	// The cross intersection runs before the QEPSJ pipeline is reserved,
	// so its reduction passes use the full-grant fan-in binding.
	if err := r.reduceGroups(groups, r.bind.CrossFanIn); err != nil {
		cleanup()
		return nil, err
	}
	for _, g := range groups {
		u, err := r.openGroup(g)
		if err != nil {
			cleanup()
			return nil, err
		}
		srcs = append(srcs, u)
	}
	var out []uint32
	err := r.col.Span(spanMerge, func() error {
		var err error
		out, err = drain(newIntersectStream(srcs))
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// preFilterGroup performs the Pre-Filter climb: one id-index lookup per
// visible id, collecting anchor-level sublists (§3.3: "as many lookups on
// the T1.id index as there are tuples resulting from the Visible
// selection").
func (r *queryRun) preFilterGroup(tv int, ids []uint32) (*mergeGroup, error) {
	g := &mergeGroup{label: "pre:" + r.db.Sch.Tables[tv].Name}
	ci, ok := r.tok.Cat.IDIndex(tv)
	if !ok {
		return nil, fmt.Errorf("exec: no id index on %s", r.db.Sch.Tables[tv].Name)
	}
	slot, ok := ci.LevelOf(r.q.Anchor)
	if !ok {
		return nil, fmt.Errorf("exec: id index on %s lacks level %s",
			r.db.Sch.Tables[tv].Name, r.db.Sch.Tables[r.q.Anchor].Name)
	}
	err := r.col.Span(spanCI, func() error {
		for _, id := range ids {
			runs, err := ci.RunsForID(id, slot)
			if err != nil {
				return err
			}
			for _, run := range runs {
				g.addRun(ci.Lists(), run)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return g, nil
}

// dropDeadAnchors wraps the merged stream with the anchor's tombstone
// filter when the table has deletions: a DELETE leaves the row's index
// entries in place, so the dead ids must be screened out here, on the
// secure side, before the join ever sees them. Kept as its own function
// so the hidden delta state it touches stays away from the pipeline's
// error paths.
func (r *queryRun) dropDeadAnchors(anchor int, src idStream) idStream {
	dl := r.tok.deltaOf(anchor)
	if dl == nil || dl.TombCount() == 0 {
		return src
	}
	return &filterStream{src: src, keep: func(id uint32) bool { return !dl.Dead(id) }}
}

// scanFallback evaluates a hidden predicate without an index by scanning
// the hidden image (only reachable with reduced index variants).
func (r *queryRun) scanFallback(g *mergeGroup, p query.Pred) error {
	db := r.db
	img := r.tok.Hidden[p.Table]
	if img == nil || p.ColIdx == query.IDCol {
		return fmt.Errorf("exec: no index and no hidden image for predicate on %s",
			db.Sch.Tables[p.Table].Name)
	}
	pos, ok := img.ColPos[p.ColIdx]
	if !ok {
		return fmt.Errorf("exec: column %d of %s is not hidden", p.ColIdx, db.Sch.Tables[p.Table].Name)
	}
	dl := r.tok.deltaOf(p.Table)
	matches := r.newTemp()
	err := r.col.Span(spanScan, func() error {
		rd := img.File.NewSeqReader()
		defer r.prefetch(rd)()
		if err := matches.BeginRun(); err != nil {
			return err
		}
		for {
			rec, id, ok, err := rd.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if dl != nil {
				if dl.Dead(id) {
					continue
				}
				if ov, ok := dl.Lookup(id); ok {
					rec = ov
				}
			}
			v, err := img.Codec.DecodeColumn(rec, pos)
			if err != nil {
				return err
			}
			if matchValue(p, v) {
				if err := matches.Add(id); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	run, err := matches.EndRun()
	if err != nil {
		return err
	}
	if err := matches.Seal(); err != nil {
		return err
	}
	if p.Table == r.q.Anchor {
		g.addRun(matches, run)
		return nil
	}
	// Climb per id through the id index (expensive, like Pre-Filter).
	ci, ok := r.tok.Cat.IDIndex(p.Table)
	if !ok {
		return fmt.Errorf("exec: no id index to climb from %s", db.Sch.Tables[p.Table].Name)
	}
	slot, ok := ci.LevelOf(r.q.Anchor)
	if !ok {
		return fmt.Errorf("exec: id index on %s lacks the anchor level", db.Sch.Tables[p.Table].Name)
	}
	ids, err := matches.ReadAll(run)
	if err != nil {
		return err
	}
	return r.col.Span(spanCI, func() error {
		for _, id := range ids {
			runs, err := ci.RunsForID(id, slot)
			if err != nil {
				return err
			}
			for _, rn := range runs {
				g.addRun(ci.Lists(), rn)
			}
		}
		return nil
	})
}

// matchValue evaluates a predicate against a decoded value.
func matchValue(p query.Pred, v schema.Value) bool {
	cmp := v.Compare(p.Lo)
	switch p.Op {
	case sqlparse.OpEq:
		return cmp == 0
	case sqlparse.OpNe:
		return cmp != 0
	case sqlparse.OpLt:
		return cmp < 0
	case sqlparse.OpLe:
		return cmp <= 0
	case sqlparse.OpGt:
		return cmp > 0
	case sqlparse.OpGe:
		return cmp >= 0
	case sqlparse.OpBetween:
		return cmp >= 0 && v.Compare(p.Hi) <= 0
	}
	return false
}
