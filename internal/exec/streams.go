// Package exec is GhostDB's secure-side query executor: the operators of
// §3.3–§4 (Vis, CI, Merge, SJoin, BuildBF, ProbeBF, MJoin, Project), the
// per-predicate filtering strategies (Pre, Post, Cross-Pre, Cross-Post,
// Post-Select, NoFilter) and the selectivity-driven planner that chooses
// among them, all operating under the smart USB key's RAM budget and
// I/O-accurate flash cost model.
package exec

import (
	"fmt"

	"ghostdb/internal/ram"
	"ghostdb/internal/store"
)

// idStream produces identifiers in strictly ascending order.
type idStream interface {
	// next returns the next id; ok=false at end of stream.
	next() (uint32, bool, error)
	// close releases any RAM buffers held by the stream.
	close()
}

// emptyStream yields nothing.
type emptyStream struct{}

func (emptyStream) next() (uint32, bool, error) { return 0, false, nil }
func (emptyStream) close()                      {}

// sliceStream yields ids from a host-memory slice. It models data arriving
// over the communication channel, which has a dedicated buffer on the key
// ("the download from Untrusted to Secure can be processed with no RAM
// consumption", §3.4) — so it holds no RAM grant.
type sliceStream struct {
	ids []uint32
	i   int
}

func newSliceStream(ids []uint32) *sliceStream { return &sliceStream{ids: ids} }

func (s *sliceStream) next() (uint32, bool, error) {
	if s.i >= len(s.ids) {
		return 0, false, nil
	}
	v := s.ids[s.i]
	s.i++
	return v, true, nil
}

func (s *sliceStream) close() {}

// seqStream yields 0..n-1 (the degenerate "no selective predicate" case:
// every anchor tuple qualifies so far).
type seqStream struct {
	n, i uint32
}

func (s *seqStream) next() (uint32, bool, error) {
	if s.i >= s.n {
		return 0, false, nil
	}
	v := s.i
	s.i++
	return v, true, nil
}

func (s *seqStream) close() {}

// runStream streams one sorted sublist from flash, holding one RAM buffer.
type runStream struct {
	rd    *store.RunReader
	grant *ram.Grant
}

func newRunStream(seg *store.ListSegment, run store.Run, mem *ram.Manager) (*runStream, error) {
	g, err := mem.AllocBuffers(1)
	if err != nil {
		return nil, fmt.Errorf("exec: run buffer: %w", err)
	}
	return &runStream{rd: seg.NewRunReader(run), grant: g}, nil
}

func (s *runStream) next() (uint32, bool, error) { return s.rd.Next() }

func (s *runStream) close() {
	if s.grant != nil {
		s.grant.Release()
		s.grant = nil
	}
}

// unionStream merges k ascending streams into one ascending, deduplicated
// stream (the ∪ of the Merge operator).
type unionStream struct {
	srcs []idStream
	head []int64 // current head per source; -1 = exhausted
	last int64
}

func newUnionStream(srcs []idStream) (*unionStream, error) {
	u := &unionStream{srcs: srcs, head: make([]int64, len(srcs)), last: -1}
	for i, s := range srcs {
		v, ok, err := s.next()
		if err != nil {
			u.close()
			return nil, err
		}
		if !ok {
			u.head[i] = -1
		} else {
			u.head[i] = int64(v)
		}
	}
	return u, nil
}

func (u *unionStream) next() (uint32, bool, error) {
	for {
		min := int64(-1)
		minI := -1
		for i, h := range u.head {
			if h >= 0 && (min < 0 || h < min) {
				min, minI = h, i
			}
		}
		if minI < 0 {
			return 0, false, nil
		}
		v, ok, err := u.srcs[minI].next()
		if err != nil {
			return 0, false, err
		}
		if !ok {
			u.head[minI] = -1
		} else {
			if int64(v) <= u.head[minI] {
				return 0, false, fmt.Errorf("exec: unsorted sublist (id %d after %d)", v, u.head[minI])
			}
			u.head[minI] = int64(v)
		}
		if min != u.last { // dedup across sources
			u.last = min
			return uint32(min), true, nil
		}
	}
}

func (u *unionStream) close() {
	for _, s := range u.srcs {
		s.close()
	}
}

// intersectStream intersects k ascending streams (the ∩ of Merge). Each
// source keeps an explicit head so no value can be skipped while the
// streams are being aligned.
type intersectStream struct {
	srcs   []idStream
	head   []int64 // current head per source; -1 = exhausted
	primed bool
	done   bool
}

func newIntersectStream(srcs []idStream) *intersectStream {
	return &intersectStream{srcs: srcs, head: make([]int64, len(srcs))}
}

func (s *intersectStream) advance(i int) error {
	v, ok, err := s.srcs[i].next()
	if err != nil {
		return err
	}
	if !ok {
		s.head[i] = -1
		s.done = true
		return nil
	}
	s.head[i] = int64(v)
	return nil
}

func (s *intersectStream) next() (uint32, bool, error) {
	if len(s.srcs) == 0 || s.done {
		return 0, false, nil
	}
	if !s.primed {
		s.primed = true
		for i := range s.srcs {
			if err := s.advance(i); err != nil {
				return 0, false, err
			}
			if s.done {
				return 0, false, nil
			}
		}
	}
	for {
		// Target: the maximum head. All sources must reach it.
		max := s.head[0]
		for _, h := range s.head[1:] {
			if h > max {
				max = h
			}
		}
		aligned := true
		for i := range s.srcs {
			for s.head[i] < max {
				if err := s.advance(i); err != nil {
					return 0, false, err
				}
				if s.done {
					return 0, false, nil
				}
			}
			if s.head[i] > max {
				aligned = false
			}
		}
		if !aligned {
			continue
		}
		out := uint32(max)
		for i := range s.srcs {
			if err := s.advance(i); err != nil {
				return 0, false, err
			}
		}
		return out, true, nil
	}
}

func (s *intersectStream) close() {
	for _, src := range s.srcs {
		src.close()
	}
}

// filterStream applies a predicate (used for anchor id predicates, which
// cost no I/O: the ids are flowing by anyway).
type filterStream struct {
	src  idStream
	keep func(uint32) bool
}

func (f *filterStream) next() (uint32, bool, error) {
	for {
		v, ok, err := f.src.next()
		if err != nil || !ok {
			return 0, false, err
		}
		if f.keep(v) {
			return v, true, nil
		}
	}
}

func (f *filterStream) close() { f.src.close() }

// drain reads a stream to completion into a slice (small results only).
func drain(s idStream) ([]uint32, error) {
	defer s.close()
	var out []uint32
	for {
		v, ok, err := s.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, v)
	}
}
