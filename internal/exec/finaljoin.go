package exec

import (
	"encoding/binary"
	"fmt"
	"slices"
	"sort"

	"ghostdb/internal/query"
	"ghostdb/internal/ram"
	"ghostdb/internal/schema"
	"ghostdb/internal/store"
)

// segReader streams fixed-width tuples out of a tuple segment run.
type segReader struct {
	seg    *store.Segment
	off    int
	end    int
	tupleW int
	buf    []byte
	bufLo  int
	bufLen int
}

func newSegReader(seg *store.Segment, run segRun, tupleW int) *segReader {
	return &segReader{
		seg:    seg,
		off:    run.off,
		end:    run.off + run.count*tupleW,
		tupleW: tupleW,
		buf:    make([]byte, 2*seg.PageSize()),
		bufLo:  -1,
	}
}

func (s *segReader) next() ([]byte, bool, error) {
	if s.off >= s.end {
		return nil, false, nil
	}
	if s.bufLo < 0 || s.off < s.bufLo || s.off+s.tupleW > s.bufLo+s.bufLen {
		ps := s.seg.PageSize()
		// Read from off to the end of the page containing the tuple's
		// last byte (each flash page is touched once per pass).
		last := s.off + s.tupleW - 1
		wend := (last/ps + 1) * ps
		if wend > s.end {
			wend = s.end
		}
		n := wend - s.off
		if err := s.seg.ReadAt(s.buf[:n], s.off, n); err != nil {
			return nil, false, err
		}
		s.bufLo = s.off
		s.bufLen = n
	}
	t := s.buf[s.off-s.bufLo : s.off-s.bufLo+s.tupleW]
	s.off += s.tupleW
	return t, true, nil
}

// tupleCursor merges the pos-sorted batch runs of one table's MJoin
// output. Positions are disjoint across runs (each result position's id
// belongs to exactly one σVH batch), so a simple min-head scan suffices.
type tupleCursor struct {
	readers []*segReader
	heads   [][]byte
	poss    []int64
}

func newTupleCursor(tp *tableProj) (*tupleCursor, error) {
	c := &tupleCursor{}
	for _, run := range tp.outRuns {
		if run.count == 0 {
			continue
		}
		c.readers = append(c.readers, newSegReader(run.seg, run, tp.tupleW))
		c.heads = append(c.heads, nil)
		c.poss = append(c.poss, -1)
	}
	for i := range c.readers {
		if err := c.advance(i); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (c *tupleCursor) advance(i int) error {
	t, ok, err := c.readers[i].next()
	if err != nil {
		return err
	}
	if !ok {
		c.poss[i] = -1
		c.heads[i] = nil
		return nil
	}
	// Copy: the reader reuses its window buffer across next() calls.
	c.heads[i] = append(c.heads[i][:0], t...)
	c.poss[i] = int64(binary.BigEndian.Uint32(c.heads[i]))
	return nil
}

// take returns the tuple at position pos, if any run holds it. Ownership
// of the returned slice passes to the caller (valid until the next take
// for the same table).
func (c *tupleCursor) take(pos uint32) ([]byte, bool, error) {
	for i := range c.readers {
		if c.poss[i] == int64(pos) {
			t := c.heads[i]
			c.heads[i] = nil // relinquish; advance allocates a fresh head
			if err := c.advance(i); err != nil {
				return nil, false, err
			}
			return t, true, nil
		}
	}
	return nil, false, nil
}

// takeMin returns the tuple with the smallest pending position across
// all runs (positions are disjoint across runs). Used by the run
// consolidation passes to rewrite many batch runs as one.
func (c *tupleCursor) takeMin() ([]byte, bool, error) {
	min := -1
	for i, p := range c.poss {
		if p >= 0 && (min < 0 || p < c.poss[min]) {
			min = i
		}
	}
	if min < 0 {
		return nil, false, nil
	}
	t := c.heads[min]
	c.heads[min] = nil
	if err := c.advance(min); err != nil {
		return nil, false, err
	}
	return t, true, nil
}

// valueGetter decodes one projection item from the final-join state.
type valueGetter func() (schema.Value, error)

// finalJoin is step 7 of the Project algorithm (§4): all operands are
// sorted by position (equivalently by anchor id), so one synchronized
// sequential pass assembles the final tuples and drops the remaining
// false positives. Its buffer needs are declared up front as one plan:
// the fixed readers (anchor column, anchor spool, anchor hidden image,
// projected id columns) plus one cursor buffer per joined table — MJoin
// batch runs are consolidated first so that minimum always suffices.
func (r *queryRun) finalJoin(res *Result, tps []*tableProj) error {
	db, q := r.db, r.q
	anchor := q.Anchor

	projVis := r.projectedVisibleCols()
	aImg := r.tok.Hidden[anchor]
	anchorHidden := false
	for _, p := range q.Projections {
		if p.Table == anchor && p.ColIdx != query.IDCol && db.Sch.Tables[anchor].Columns[p.ColIdx].Hidden {
			anchorHidden = true
		}
	}
	var idTables []int
	for _, p := range q.Projections {
		if p.Table == anchor || p.ColIdx != query.IDCol || slices.Contains(idTables, p.Table) {
			continue
		}
		idTables = append(idTables, p.Table)
	}

	// Fixed reader buffers this pass cannot do without, declared once so
	// the consolidation budget below and the Plan stay in lockstep.
	claims := []ram.Claim{{Name: "anchor", Min: 1, Want: 1}}
	if len(projVis[anchor]) > 0 {
		claims = append(claims, ram.Claim{Name: "anchor-spool", Min: 1, Want: 1})
	}
	if anchorHidden {
		claims = append(claims, ram.Claim{Name: "anchor-hidden", Min: 1, Want: 1})
	}
	if len(idTables) > 0 {
		claims = append(claims, ram.Claim{Name: "id-readers", Min: len(idTables), Want: len(idTables)})
	}
	fixed := 0
	for _, c := range claims {
		fixed += c.Min
	}

	// Drop empty batch runs, then consolidate each remaining table's
	// runs to its share of the free buffers so the cursors below always
	// fit.
	liveTables := 0
	for _, tp := range tps {
		live := tp.outRuns[:0]
		for _, run := range tp.outRuns {
			if run.count > 0 {
				live = append(live, run)
			}
		}
		tp.outRuns = live
		if len(tp.outRuns) > 0 {
			liveTables++
		}
	}
	if liveTables > 0 {
		// Fail before consolidating when even one cursor per table cannot
		// fit next to the fixed readers: the plan below would refuse
		// anyway, and the consolidation rewrites are not free.
		if fixed+liveTables > r.ram.AvailableBuffers() {
			return fmt.Errorf("exec: final join needs %d buffers, %d free: %w",
				fixed+liveTables, r.ram.AvailableBuffers(), ram.ErrExhausted)
		}
		budget := r.ram.AvailableBuffers() - fixed
		// Waterfill: satisfy run-light tables first so run-heavy ones get
		// the leftovers instead of consolidating against a flat share.
		order := make([]*tableProj, 0, liveTables)
		for _, tp := range tps {
			if len(tp.outRuns) > 0 {
				order = append(order, tp)
			}
		}
		sort.Slice(order, func(a, b int) bool { return len(order[a].outRuns) < len(order[b].outRuns) })
		left := liveTables
		for _, tp := range order {
			share := budget / left
			if share < 1 {
				share = 1
			}
			give := len(tp.outRuns)
			if give > share {
				give = share
				if err := r.consolidateTupleRuns(tp, give); err != nil {
					return err
				}
			}
			budget -= give
			left--
		}
	}

	for _, tp := range tps {
		if n := len(tp.outRuns); n > 0 {
			claims = append(claims, ram.Claim{
				Name: fmt.Sprintf("cursors:%s", db.Sch.Tables[tp.table].Name), Min: n, Want: n})
		}
	}
	resv, err := r.ram.Plan(claims...)
	if err != nil {
		return fmt.Errorf("exec: final join: %w", err)
	}
	defer resv.Release()

	anchorCol := r.resCols[anchor]
	anchorRd := anchorCol.seg.NewRunReader(anchorCol.run)

	// Anchor visible values (spooled, id-sorted).
	var aCur *spoolCursor
	aColOff := map[int]int{}
	if cols := projVis[anchor]; len(cols) > 0 {
		sp := r.spool[anchor]
		if sp == nil {
			return fmt.Errorf("exec: anchor visible values not spooled")
		}
		aCur = newSpoolCursor(sp.file)
		off := store.IDBytes
		for _, c := range sp.cols {
			aColOff[c] = off
			off += db.Sch.Tables[anchor].Columns[c].EncodedWidth()
		}
	}

	// Anchor hidden values.
	var aHidRd *store.SortedReader
	var aHidRec []byte
	if anchorHidden {
		if aImg == nil {
			return fmt.Errorf("exec: no hidden image for anchor")
		}
		aHidRd = aImg.File.NewSortedReader()
		aHidRec = make([]byte, aImg.File.RowWidth())
	}

	// Non-anchor id columns.
	idRd := map[int]*store.RunReader{}
	idVal := map[int]uint32{}
	for _, ti := range idTables {
		col, ok := r.resCols[ti]
		if !ok {
			return fmt.Errorf("exec: missing QEPSJ column for %s", db.Sch.Tables[ti].Name)
		}
		idRd[ti] = col.seg.NewRunReader(col.run)
	}

	// Per-table tuple cursors and value layouts.
	curs := map[int]*tupleCursor{}
	tupleOff := map[[2]int]int{} // (table, colIdx) -> byte offset within tuple
	for _, tp := range tps {
		c, err := newTupleCursor(tp)
		if err != nil {
			return err
		}
		curs[tp.table] = c
		off := 4
		for _, ci := range tp.visCols {
			tupleOff[[2]int{tp.table, ci}] = off
			off += db.Sch.Tables[tp.table].Columns[ci].EncodedWidth()
		}
		for _, ci := range tp.hidCols {
			tupleOff[[2]int{tp.table, ci}] = off
			off += db.Sch.Tables[tp.table].Columns[ci].EncodedWidth()
		}
	}

	tuples := map[int][]byte{}
	var aid uint32
	var aHidLoaded bool

	// Build one getter per projection item.
	getters := make([]valueGetter, len(q.Projections))
	for i, p := range q.Projections {
		p := p
		t := db.Sch.Tables[p.Table]
		switch {
		case p.Table == anchor && p.ColIdx == query.IDCol:
			getters[i] = func() (schema.Value, error) { return schema.IntVal(int64(aid)), nil }
		case p.Table != anchor && p.ColIdx == query.IDCol:
			getters[i] = func() (schema.Value, error) { return schema.IntVal(int64(idVal[p.Table])), nil }
		case p.Table == anchor && !t.Columns[p.ColIdx].Hidden:
			col := t.Columns[p.ColIdx]
			getters[i] = func() (schema.Value, error) {
				rec, err := aCur.seek(aid)
				if err != nil {
					return schema.Value{}, err
				}
				if rec == nil {
					return schema.Value{}, fmt.Errorf("exec: anchor id %d missing from its Vis spool", aid)
				}
				off := aColOff[p.ColIdx]
				return schema.DecodeValue(rec[off:off+col.EncodedWidth()], col.Kind)
			}
		case p.Table == anchor:
			col := t.Columns[p.ColIdx]
			aDl := r.tok.deltaOf(anchor)
			getters[i] = func() (schema.Value, error) {
				if !aHidLoaded {
					if err := aHidRd.Read(aid, aHidRec); err != nil {
						return schema.Value{}, err
					}
					// Delta overlay: upserted rows carry their latest
					// values in the overlay, not the base image.
					if aDl != nil {
						if ov, ok := aDl.Lookup(aid); ok {
							copy(aHidRec, ov)
						}
					}
					aHidLoaded = true
				}
				o, w := aImg.Codec.ColumnRange(aImg.ColPos[p.ColIdx])
				return schema.DecodeValue(aHidRec[o:o+w], col.Kind)
			}
		default:
			col := t.Columns[p.ColIdx]
			off, ok := tupleOff[[2]int{p.Table, p.ColIdx}]
			if !ok {
				return fmt.Errorf("exec: no value source for %s.%s", t.Name, col.Name)
			}
			getters[i] = func() (schema.Value, error) {
				tup := tuples[p.Table]
				return schema.DecodeValue(tup[off:off+col.EncodedWidth()], col.Kind)
			}
		}
	}

	for pos := uint32(0); int(pos) < r.resN; pos++ {
		var ok bool
		var err error
		aid, ok, err = anchorRd.Next()
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("exec: anchor column shorter than result count")
		}
		aHidLoaded = false
		for ti, rd := range idRd {
			v, ok, err := rd.Next()
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("exec: id column of %s exhausted early", db.Sch.Tables[ti].Name)
			}
			idVal[ti] = v
		}
		keep := true
		for _, tp := range tps {
			tup, found, err := curs[tp.table].take(pos)
			if err != nil {
				return err
			}
			if !found {
				keep = false // exact filter: a required table lacks this position
				continue
			}
			tuples[tp.table] = tup
		}
		if !keep {
			continue
		}
		row := make(schema.Row, len(getters))
		for i, g := range getters {
			v, err := g()
			if err != nil {
				return err
			}
			row[i] = v
		}
		res.Rows = append(res.Rows, row)
	}
	return nil
}
