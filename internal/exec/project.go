package exec

import (
	"encoding/binary"
	"fmt"
	"slices"
	"sort"

	"ghostdb/internal/bloom"
	"ghostdb/internal/delta"
	"ghostdb/internal/query"
	"ghostdb/internal/ram"
	"ghostdb/internal/schema"
	"ghostdb/internal/store"
)

// segRun locates one pos-sorted tuple run inside a tuple segment.
type segRun struct {
	seg   *store.Segment
	off   int
	count int
}

// tableProj is the projection work for one non-anchor table (§4: the
// Project algorithm works "on a table-by-table basis").
type tableProj struct {
	table    int
	visCols  []int // projected visible columns (spool layout order)
	hidCols  []int // projected hidden columns (table column indexes)
	presence bool  // exact visible verification required (post/no-filter)

	visW, hidW int
	tupleW     int // 4 (pos) + visW + hidW

	outSeg  *store.Segment
	outRuns []segRun
}

func (tp *tableProj) hasValues() bool { return tp.visW+tp.hidW > 0 }

// project runs QEPP: σVH computation, MJoin batches and the final
// positional join, producing the result rows.
func (r *queryRun) project() (*Result, error) {
	db, q := r.db, r.q
	res := &Result{}
	for _, p := range q.Projections {
		res.Columns = append(res.Columns, db.columnLabel(p))
	}
	if r.resN == 0 {
		res.Rows = []schema.Row{}
		return res, nil
	}
	if r.cfg.Projector == ProjectBruteForce {
		err := r.col.Span(spanProject, func() error { return r.bruteForce(res) })
		return res, err
	}

	// ---- Per-table preparation.
	var tps []*tableProj
	projVis := r.projectedVisibleCols()
	hidProj := map[int][]int{}
	for _, p := range q.Projections {
		if p.ColIdx == query.IDCol || p.Table == q.Anchor {
			continue
		}
		col := db.Sch.Tables[p.Table].Columns[p.ColIdx]
		if col.Hidden && !slices.Contains(hidProj[p.Table], p.ColIdx) {
			hidProj[p.Table] = append(hidProj[p.Table], p.ColIdx)
		}
	}
	tables := map[int]bool{}
	for _, ti := range q.ProjTables() {
		if ti != q.Anchor {
			tables[ti] = true
		}
	}
	for ti := range r.exactAtProject {
		tables[ti] = true
	}
	var order []int
	for ti := range tables {
		order = append(order, ti)
	}
	sort.Ints(order)
	for _, ti := range order {
		tp := &tableProj{table: ti, presence: r.exactAtProject[ti]}
		if sp := r.spool[ti]; sp != nil {
			for _, c := range sp.cols {
				if slices.Contains(projVis[ti], c) {
					tp.visCols = append(tp.visCols, c)
					tp.visW += db.Sch.Tables[ti].Columns[c].EncodedWidth()
				}
			}
		}
		for _, c := range hidProj[ti] {
			tp.hidCols = append(tp.hidCols, c)
			tp.hidW += db.Sch.Tables[ti].Columns[c].EncodedWidth()
		}
		tp.tupleW = 4 + tp.visW + tp.hidW
		if !tp.hasValues() && !tp.presence {
			continue // id-only projection: read the QEPSJ column directly
		}
		tps = append(tps, tp)
	}

	err := r.col.Span(spanProject, func() error {
		for _, tp := range tps {
			if err := r.mjoinTable(tp); err != nil {
				return err
			}
		}
		return r.finalJoin(res, tps)
	})
	return res, err
}

// sigmaVH computes σVH(Ti): the visible ids that can possibly appear in
// the result, per §4 — a Bloom filter over the QEPSJ.Ti.id column probed
// with the ids sent by Untrusted. Returns a temp run of sorted ids.
func (r *queryRun) sigmaVH(tp *tableProj) (*store.ListSegment, store.Run, error) {
	col := r.resCols[tp.table]
	sp := r.spool[tp.table]
	out := r.newTemp()
	if err := out.BeginRun(); err != nil {
		return nil, store.Run{}, err
	}

	if sp == nil {
		// No visible data for this table: derive the sorted distinct ids
		// of the column by chunked in-RAM sorting.
		if err := r.sortColumn(col, out); err != nil {
			return nil, store.Run{}, err
		}
	} else {
		var f *bloom.Filter
		var grant *ram.Grant
		defer func() {
			if grant != nil {
				grant.Release()
			}
		}()
		if r.cfg.Projector == ProjectBloom {
			// "The Bloom filter is calibrated by default to occupy the
			// entire RAM" (§5), minus working buffers. The filter is a pure
			// optimization: when RAM is too tight for a useful one, σVH
			// proceeds unfiltered instead of failing.
			budget := r.ram.Available() - 4*r.ram.BufferSize()
			if bp, err := bloom.PlanFor(r.resN, budget); err == nil {
				if g, err := r.ram.Alloc(bp.Bytes); err == nil {
					grant = g
					f = bloom.New(bp, r.resN)
					rd := col.seg.NewRunReader(col.run)
					for {
						v, ok, err := rd.Next()
						if err != nil {
							return nil, store.Run{}, err
						}
						if !ok {
							break
						}
						f.Add(v)
					}
				}
			}
		}
		// Probe the spooled visible ids (sequential flash scan).
		srd := sp.file.NewSeqReader()
		defer r.prefetch(srd)()
		for {
			rec, _, ok, err := srd.Next()
			if err != nil {
				return nil, store.Run{}, err
			}
			if !ok {
				break
			}
			id := binary.BigEndian.Uint32(rec)
			if f == nil || f.MayContain(id) {
				if err := out.Add(id); err != nil {
					return nil, store.Run{}, err
				}
			}
		}
	}
	run, err := out.EndRun()
	if err != nil {
		return nil, store.Run{}, err
	}
	if err := out.Seal(); err != nil {
		return nil, store.Run{}, err
	}
	return out, run, nil
}

// prefetch arms a full-file sequential scan with the session's
// grant-derived read-ahead window (Binding.PrefetchPages — never a
// function of hidden match counts; the prefetchdepth leaklint check
// holds every SetReadAhead call site to that). The staging buffers are
// accounted against the session's own RAM grant; when the grant cannot
// cover the window, or the bound depth is below 2, the scan stays in
// classic one-page mode. The returned release must run once the scan
// is done.
func (r *queryRun) prefetch(rd *store.SeqReader) func() {
	if r.bind == nil || r.bind.PrefetchPages < 2 {
		return func() {}
	}
	g, err := r.ram.AllocBuffers(r.bind.PrefetchPages)
	if err != nil {
		return func() {}
	}
	staging := make([][]byte, g.Buffers())
	for i := range staging {
		staging[i] = make([]byte, r.ram.BufferSize())
	}
	rd.SetReadAhead(r.bind.PrefetchPages, staging, &r.db.prefetchInflight)
	return g.Release
}

// sortColumn writes the sorted distinct ids of a result column into an
// open run, using grant-sized chunks and a union merge. A small grant
// only means more chunks, consolidated by multi-pass unions; the minimum
// is 3 free buffers (chunk + reader + writer).
func (r *queryRun) sortColumn(col resCol, out *store.ListSegment) error {
	bufSize := r.ram.BufferSize()
	want := (col.run.Count*store.IDBytes + bufSize - 1) / bufSize
	if want < 1 {
		want = 1
	}
	if want > r.bind.SortChunk {
		want = r.bind.SortChunk // chunk cap bound from the grant at admission
	}
	resv, err := r.ram.Plan(
		ram.Claim{Name: "chunk", Min: 1, Want: want},
		ram.Claim{Name: "scan", Min: 1, Want: 1},
		ram.Claim{Name: "write", Min: 1, Want: 1},
	)
	if err != nil {
		return fmt.Errorf("exec: column sort: %w", err)
	}
	cap := resv.Bytes("chunk") / store.IDBytes
	chunks := r.newTemp()
	var runs []store.Run
	chunkErr := func() error {
		rd := col.seg.NewRunReader(col.run)
		buf := make([]uint32, 0, cap)
		flush := func() error {
			if len(buf) == 0 {
				return nil
			}
			slices.Sort(buf)
			buf = slices.Compact(buf)
			run, err := chunks.AppendRun(buf)
			if err != nil {
				return err
			}
			runs = append(runs, run)
			buf = buf[:0]
			return nil
		}
		for {
			v, ok, err := rd.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			buf = append(buf, v)
			if len(buf) == cap {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		if err := flush(); err != nil {
			return err
		}
		return chunks.Seal()
	}()
	resv.Release()
	if chunkErr != nil {
		return chunkErr
	}
	if len(runs) == 0 {
		return nil
	}

	// Union the chunk runs into the caller's open output run, reducing
	// first when more chunks exist than stream buffers (one is kept back
	// for the output writer).
	segs := sameSegs(chunks, len(runs))
	segs, runs, err = r.consolidateRuns(segs, runs, r.ram.AvailableBuffers()-1, spanProject)
	if err != nil {
		return err
	}
	wg, err := r.ram.ReserveBuffers(1, 1) // output writer
	if err != nil {
		return fmt.Errorf("exec: column sort: %w", err)
	}
	defer wg.Release()
	srcs := make([]idStream, 0, len(runs))
	for i, run := range runs {
		s, err := newRunStream(segs[i], run, r.ram)
		if err != nil {
			for _, s2 := range srcs {
				s2.close()
			}
			return err
		}
		srcs = append(srcs, s)
	}
	u, err := newUnionStream(srcs)
	if err != nil {
		return err
	}
	defer u.close()
	for {
		v, ok, err := u.next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := out.Add(v); err != nil {
			return err
		}
	}
}

// mjoinTable runs the MJoin of §4 for one table: σVH ids and their
// attribute values are staged in RAM batches; for each batch the
// QEPSJ.Ti.id column is scanned once and matching positions emit
// <pos, vlist, hlist> tuples to flash.
func (r *queryRun) mjoinTable(tp *tableProj) error {
	db := r.db
	sigSeg, sigRun, err := r.sigmaVH(tp)
	if err != nil {
		return err
	}

	// Declare the pipeline's buffer needs up front: one buffer per open
	// reader/writer the table shape requires, and a batch staging area
	// capped by the binding derived from the session's grant at admission
	// ("RAM capacity minus two buffers" in the paper, generalized to the
	// table's true reader set). A minimal batch grant only means more
	// passes over the QEPSJ column.
	memTuple := 4 + tp.visW + tp.hidW
	bufSize := r.ram.BufferSize()
	minBatch := (memTuple + bufSize - 1) / bufSize
	wantBatch := (sigRun.Count*memTuple + bufSize - 1) / bufSize
	if wantBatch < minBatch {
		wantBatch = minBatch
	}
	if bound, ok := r.bind.MJoinBatch[tp.table]; ok && wantBatch > bound {
		wantBatch = bound
	}
	claims := []ram.Claim{
		{Name: "sig", Min: 1, Want: 1}, // σVH run reader
		{Name: "col", Min: 1, Want: 1}, // QEPSJ column reader
		{Name: "out", Min: 1, Want: 1}, // batch output writer
		{Name: "batch", Min: minBatch, Want: wantBatch},
	}
	if tp.visW > 0 {
		claims = append(claims, ram.Claim{Name: "spool", Min: 1, Want: 1})
	}
	if tp.hidW > 0 {
		claims = append(claims, ram.Claim{Name: "hidden", Min: 1, Want: 1})
	}
	resv, err := r.ram.Plan(claims...)
	if err != nil {
		return fmt.Errorf("exec: MJoin: %w", err)
	}
	defer resv.Release()
	batchCap := resv.Bytes("batch") / memTuple
	if batchCap < 1 {
		batchCap = 1
	}

	tp.outSeg = store.NewSegment(r.tok.Dev)
	defer func() { r.tempSegs = append(r.tempSegs, tp.outSeg) }()

	sig := sigSeg.NewRunReader(sigRun)
	var spoolCur *spoolCursor
	var sp *visSpool
	if tp.visW > 0 {
		sp = r.spool[tp.table]
		spoolCur = newSpoolCursor(sp.file)
	}
	var hidRd *store.SortedReader
	var img *HiddenImage
	var hidRec []byte
	var dl *delta.Table
	if tp.hidW > 0 {
		img = r.tok.Hidden[tp.table]
		if img == nil {
			return fmt.Errorf("exec: no hidden image for %s", db.Sch.Tables[tp.table].Name)
		}
		hidRd = img.File.NewSortedReader()
		hidRec = make([]byte, img.File.RowWidth())
		dl = r.tok.deltaOf(tp.table)
	}

	col := r.resCols[tp.table]
	batchIDs := make([]uint32, 0, batchCap)
	batchVals := make([]byte, 0, batchCap*(tp.visW+tp.hidW))
	valW := tp.visW + tp.hidW
	posBuf := make([]byte, 4)

	// Lay out the visible columns of the spool row once.
	var visOffsets []int
	var visWidths []int
	if sp != nil {
		off := store.IDBytes
		for _, c := range sp.cols {
			w := db.Sch.Tables[tp.table].Columns[c].EncodedWidth()
			if slices.Contains(tp.visCols, c) {
				visOffsets = append(visOffsets, off)
				visWidths = append(visWidths, w)
			}
			off += w
		}
	}

	for {
		// Fill one batch from σVH.
		batchIDs = batchIDs[:0]
		batchVals = batchVals[:0]
		for len(batchIDs) < batchCap {
			id, ok, err := sig.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			batchIDs = append(batchIDs, id)
			if tp.visW > 0 {
				rec, err := spoolCur.seek(id)
				if err != nil {
					return err
				}
				if rec == nil {
					return fmt.Errorf("exec: σVH id %d missing from spool of %s",
						id, db.Sch.Tables[tp.table].Name)
				}
				for i, off := range visOffsets {
					batchVals = append(batchVals, rec[off:off+visWidths[i]]...)
				}
			}
			if tp.hidW > 0 {
				if err := hidRd.Read(id, hidRec); err != nil {
					return err
				}
				// Delta overlay: the base image is immutable, so an
				// upserted row's latest values live in the overlay.
				if dl != nil {
					if ov, ok := dl.Lookup(id); ok {
						copy(hidRec, ov)
					}
				}
				for _, c := range tp.hidCols {
					o, w := img.Codec.ColumnRange(img.ColPos[c])
					batchVals = append(batchVals, hidRec[o:o+w]...)
				}
			}
		}
		if len(batchIDs) == 0 {
			break
		}
		// Scan the QEPSJ.Ti.id column and emit matches.
		start := tp.outSeg.Bytes()
		count := 0
		rd := col.seg.NewRunReader(col.run)
		pos := uint32(0)
		for {
			v, ok, err := rd.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			if i, found := slices.BinarySearch(batchIDs, v); found {
				binary.BigEndian.PutUint32(posBuf, pos)
				if err := tp.outSeg.Append(posBuf); err != nil {
					return err
				}
				if valW > 0 {
					if err := tp.outSeg.Append(batchVals[i*valW : (i+1)*valW]); err != nil {
						return err
					}
				}
				count++
			}
			pos++
		}
		tp.outRuns = append(tp.outRuns, segRun{seg: tp.outSeg, off: start, count: count})
	}
	return tp.outSeg.Seal()
}

// spoolCursor is a sequential cursor over an id-sorted spool file with
// one-record pushback, so overshooting a missing id never loses a row.
type spoolCursor struct {
	rd   *store.SeqReader
	rec  []byte
	have bool
}

func newSpoolCursor(f *store.RowFile) *spoolCursor {
	return &spoolCursor{rd: f.NewSeqReader()}
}

// seek returns the row with the given id, or nil if absent. Requested ids
// must be non-decreasing across calls.
func (c *spoolCursor) seek(id uint32) ([]byte, error) {
	for {
		if !c.have {
			rec, _, ok, err := c.rd.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, nil
			}
			// Copy: the SeqReader reuses its page buffer.
			c.rec = append(c.rec[:0], rec...)
			c.have = true
		}
		got := binary.BigEndian.Uint32(c.rec)
		switch {
		case got == id:
			// Do not consume: several columns of the same row may be
			// fetched with repeated seeks to the same id.
			return c.rec, nil
		case got > id:
			return nil, nil // keep the record for the next seek
		default:
			c.have = false
		}
	}
}
