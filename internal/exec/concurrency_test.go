package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ghostdb/internal/flash"
	"ghostdb/internal/ram"
	"ghostdb/internal/sched"
	"ghostdb/internal/schema"
)

// concurrencyFixture is the stress fixture: the paper's 64KB budget with
// room for the full concurrency limit under test.
func concurrencyFixture(t testing.TB, maxConcurrent int) *fixture {
	t.Helper()
	return newFixtureOpts(t, 42, defaultCards(), Options{
		RAMBudget:            ram.DefaultBudget,
		FlashParams:          flash.Params{PageSize: 2048, PagesPerBlock: 16, Blocks: 8192, ReserveBlocks: 4},
		MaxConcurrentQueries: maxConcurrent,
	})
}

// checkDrained asserts the engine is pristine after a concurrent batch:
// no session running, no grant held anywhere, no private-budget leak,
// and nothing but query text on the uplink audit trail.
func checkDrained(t *testing.T, f *fixture) {
	t.Helper()
	if f.db.RAM.Leaked() {
		t.Fatal("shared RAM grants leaked after drain")
	}
	if got := f.db.RAM.InUse(); got != 0 {
		t.Fatalf("shared RAM in use after drain: %d bytes", got)
	}
	if got := f.db.Sched().Leaks(); got != 0 {
		t.Fatalf("%d sessions released with leaked private grants", got)
	}
	if got := f.db.Sched().Running(); got != 0 {
		t.Fatalf("%d sessions still running after drain", got)
	}
	if got := f.db.Sched().QueueLen(); got != 0 {
		t.Fatalf("%d requests still queued after drain", got)
	}
	for _, rec := range f.db.Bus.UplinkRecords() {
		if rec.Kind != "query" {
			t.Fatalf("non-query uplink record after concurrent run: %+v", rec)
		}
	}
}

// TestConcurrentQueriesMatchReference is the acceptance stress test: 16
// goroutines fire the full mixed query set through RunCtx against one
// 64KB-budget DB and every answer must be reference-equal to serial
// execution, with zero leaked grants once the batch drains. It runs the
// sweep twice: once with the default admission (each session targets the
// whole budget, so RAM holds serialize) and once with capped grants so
// up to four 8-buffer sessions genuinely hold RAM at the same time and
// compete over one Manager.
func TestConcurrentQueriesMatchReference(t *testing.T) {
	const goroutines = 16
	f := concurrencyFixture(t, goroutines)

	want := make([][]schema.Row, len(testQueries))
	for i, sql := range testQueries {
		want[i] = f.refAnswer(t, sql)
	}

	for _, mode := range []struct {
		name string
		cfg  QueryConfig
	}{
		{"default-admission", QueryConfig{}},
		{"overlapping-8-buffer-grants", QueryConfig{MinBuffers: 8, WantBuffers: 8}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Rotate the start query per goroutine so different
					// queries are in flight together.
					for k := 0; k < len(testQueries); k++ {
						qi := (g + k) % len(testQueries)
						res, err := f.db.RunCtx(context.Background(), testQueries[qi], mode.cfg)
						if err != nil {
							t.Errorf("g%d q%d: %v", g, qi, err)
							return
						}
						if !rowsEqual(res.Rows, want[qi]) {
							t.Errorf("g%d q%d: %d rows, want %d (answers diverge from serial)",
								g, qi, len(res.Rows), len(want[qi]))
							return
						}
						if res.Stats.RAMHigh > f.db.RAM.Budget() {
							t.Errorf("g%d q%d: session high water %d exceeds budget", g, qi, res.Stats.RAMHigh)
							return
						}
					}
				}()
			}
			wg.Wait()
			checkDrained(t, f)
		})
	}

	// The totals accumulator must have seen every completed query.
	if got := f.db.Totals().Queries; got < uint64(2*goroutines*len(testQueries)) {
		t.Fatalf("totals recorded %d queries, want >= %d", got, 2*goroutines*len(testQueries))
	}
}

// TestConcurrentPerQueryConfigIsolation runs conflicting forced
// strategies and projectors simultaneously: per-query configs must never
// bleed into each other (the bug class this PR removes by making the
// knobs immutable per query).
func TestConcurrentPerQueryConfigIsolation(t *testing.T) {
	f := concurrencyFixture(t, 8)
	sql := testQueries[0]
	want := f.refAnswer(t, sql)

	combos := []QueryConfig{
		{Strategy: StratPre, Projector: ProjectBloom},
		{Strategy: StratCrossPre, Projector: ProjectNoBF},
		{Strategy: StratPostSelect, Projector: ProjectBruteForce},
		{Strategy: StratCrossPostSelect, Projector: ProjectBloom},
		{Strategy: StratNoFilter, Projector: ProjectBruteForce},
		{Strategy: StratAuto, Projector: ProjectBloom},
	}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		for _, cfg := range combos {
			cfg := cfg
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := f.db.RunCtx(context.Background(), sql, cfg)
				if err != nil {
					if errors.Is(err, ErrBloomInfeasible) {
						return // legitimate for forced Post variants
					}
					t.Errorf("[%v/%v]: %v", cfg.Strategy, cfg.Projector, err)
					return
				}
				if !rowsEqual(res.Rows, want) {
					t.Errorf("[%v/%v]: %d rows, want %d", cfg.Strategy, cfg.Projector, len(res.Rows), len(want))
					return
				}
				// The stats must reflect this query's own config, not a
				// neighbour's.
				if res.Stats.Projector != cfg.Projector {
					t.Errorf("projector bled across sessions: got %v, want %v", res.Stats.Projector, cfg.Projector)
				}
			}()
		}
	}
	wg.Wait()
	checkDrained(t, f)
}

// TestCancelledQueuedQueryReleasesNothing saturates admission, cancels a
// queued query, and asserts the engine keeps working with no budget
// disturbance — the satellite cancellation contract.
func TestCancelledQueuedQueryReleasesNothing(t *testing.T) {
	f := concurrencyFixture(t, 2)

	// Saturate both concurrency slots (and the whole budget) directly.
	bufs := f.db.RAM.Buffers()
	hogA, err := f.db.Sched().Acquire(context.Background(), sched.Request{MinBuffers: bufs / 2, WantBuffers: bufs / 2})
	if err != nil {
		t.Fatal(err)
	}
	hogB, err := f.db.Sched().Acquire(context.Background(), sched.Request{MinBuffers: bufs / 2, WantBuffers: bufs / 2})
	if err != nil {
		t.Fatal(err)
	}
	inUseBefore := f.db.RAM.InUse()

	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan error, 1)
	go func() {
		_, err := f.db.RunCtx(ctx, testQueries[0], QueryConfig{})
		queued <- err
	}()
	// Wait until the query is actually sitting in the admission queue.
	deadlineWait(t, "query queued", func() bool { return f.db.Sched().QueueLen() == 1 })
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued query err = %v, want context.Canceled", err)
	}
	if got := f.db.RAM.InUse(); got != inUseBefore {
		t.Fatalf("cancelled query changed the budget: %d -> %d", inUseBefore, got)
	}
	if f.db.Sched().QueueLen() != 0 {
		t.Fatal("cancelled query still queued")
	}

	// A pre-cancelled context never enters the queue at all.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := f.db.RunCtx(done, testQueries[0], QueryConfig{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v", err)
	}

	hogA.Release()
	hogB.Release()
	res, err := f.db.RunCtx(context.Background(), testQueries[0], QueryConfig{})
	if err != nil {
		t.Fatalf("engine wedged after cancellation: %v", err)
	}
	if !rowsEqual(res.Rows, f.refAnswer(t, testQueries[0])) {
		t.Fatal("wrong answer after cancellation churn")
	}
	checkDrained(t, f)
}

// TestConcurrentInsertsAndQueries interleaves INSERTs with SELECTs that
// do not touch the inserted table: updates serialize behind the token,
// queries keep answering correctly, and the row count lands exactly.
func TestConcurrentInsertsAndQueries(t *testing.T) {
	f := concurrencyFixture(t, 8)
	t2, _ := f.sch.Lookup("T2")
	baseRows := f.db.Rows(t2.Index)

	// Queries over T0/T1/T11/T12 only, so concurrent T2 inserts cannot
	// change their answers.
	queries := []string{
		testQueries[0], // T0/T1/T12
		testQueries[2], // T11
		testQueries[4], // T1/T12
	}
	want := make([][]schema.Row, len(queries))
	for i, sql := range queries {
		want[i] = f.refAnswer(t, sql)
	}

	const inserts = 12
	var wg sync.WaitGroup
	for i := 0; i < inserts; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sql := fmt.Sprintf(`INSERT INTO T2 VALUES ('%010d','%010d','%010d','%010d','%010d','%010d')`,
				i, i, i, i, i, i)
			if _, err := f.db.RunCtx(context.Background(), sql, QueryConfig{}); err != nil {
				t.Errorf("insert %d: %v", i, err)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			qi := i % len(queries)
			res, err := f.db.RunCtx(context.Background(), queries[qi], QueryConfig{})
			if err != nil {
				t.Errorf("query %d: %v", qi, err)
				return
			}
			if !rowsEqual(res.Rows, want[qi]) {
				t.Errorf("query %d: answer changed under concurrent inserts", qi)
			}
		}()
	}
	wg.Wait()
	if got := f.db.Rows(t2.Index); got != baseRows+inserts {
		t.Fatalf("T2 rows = %d, want %d", got, baseRows+inserts)
	}
	checkDrained(t, f)
}

// deadlineWait polls cond until it holds (bounded).
func deadlineWait(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
