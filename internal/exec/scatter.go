package exec

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ghostdb/internal/query"
	"ghostdb/internal/schema"
)

// This file is the cross-token fan-out path: forest queries — FROM sets
// spanning several schema trees, and therefore several secure tokens —
// decompose into one single-tree sub-query per tree (query.Resolve built
// the parts), run each part as an ordinary session on its own token, and
// compose the cross product on the untrusted side.
//
// Two properties make this composition safe and exact:
//
//   - Joins follow fk edges and fk edges never cross trees, so the
//     relational semantics of a forest FROM set *is* the cross product
//     of the per-tree sub-queries. No hidden data relates the trees.
//   - Each part is a complete, independently-admitted session on its
//     token (ObliDB-style up-front grant), so per-token behaviour —
//     leak surface included — is exactly the mono-token engine's. The
//     merge is pure untrusted-side computation over results the
//     untrusted side was handed anyway: no token work, no bus bytes.

// planScatter builds the cross-token plan of a forest query: one
// sub-plan per part, each on the token its tree is placed on. The
// top-level plan is a pure composition record — admission happens per
// part, on each part's own token.
func (db *DB) planScatter(q *query.Query, cfg QueryConfig) (*Plan, error) {
	p := &Plan{
		SQL:       q.SQL,
		Anchor:    db.Sch.Tables[q.Anchor].Name,
		CountOnly: q.CountOnly,
		Projector: cfg.Projector,
		Shard:     -1,
	}
	for _, part := range q.Parts {
		sub, err := db.PlanQuery(part, cfg)
		if err != nil {
			return nil, fmt.Errorf("exec: scatter part %q: %w", part.SQL, err)
		}
		p.Parts = append(p.Parts, sub)
		p.Tables = append(p.Tables, sub.Tables...)
		p.HiddenSel = append(p.HiddenSel, sub.HiddenSel...)
		if sub.MinBuffers > p.MinBuffers {
			p.MinBuffers = sub.MinBuffers
		}
		if sub.WantBuffers > p.WantBuffers {
			p.WantBuffers = sub.WantBuffers
		}
		if sub.TotalBuffers > p.TotalBuffers {
			p.TotalBuffers = sub.TotalBuffers
		}
		p.BufferBytes = sub.BufferBytes
		p.EstPageReads += sub.EstPageReads
		p.EstPageWrites += sub.EstPageWrites
		// Tokens run in parallel: the estimated critical path is the
		// slowest part, not the sum.
		if sub.EstCost > p.EstCost {
			p.EstCost = sub.EstCost
		}
	}
	return p, nil
}

// shardsOf returns the distinct token ordinals a resolved query touches,
// ascending — the result cache's version-vector key set. It is a pure
// function of the query text and the placement (itself a pure function
// of the schema), so using it in cache bookkeeping leaks nothing.
func (db *DB) shardsOf(q *query.Query) []int {
	seen := map[int]bool{}
	var out []int
	for _, ti := range q.Tables {
		s := db.place.Of(ti)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}

// runScatter executes a cross-token plan: every part runs as a normal
// admitted session on its own token, in parallel (that is the whole
// point of sharding — the tokens' flash and bus pipelines genuinely
// overlap), and the untrusted side composes the cross product.
func (db *DB) runScatter(ctx context.Context, q *query.Query, plan *Plan, cfg QueryConfig) (*Result, error) {
	// One part failing dooms the whole query: cancel the siblings so
	// still-queued sub-sessions abandon their admission slots instead of
	// running to completion for an answer nobody will see.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	parent := cfg.traceParent()
	parts := make([]*Result, len(plan.Parts))
	errs := make([]error, len(plan.Parts))
	var wg sync.WaitGroup
	for i := range plan.Parts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			legCfg := cfg
			legCfg.span = parent.Start("scatter")
			legCfg.span.SetNote(fmt.Sprintf("part %d", i))
			parts[i], errs[i] = db.runSelectOn(ctx, q.Parts[i], plan.Parts[i], legCfg)
			legCfg.span.End()
			if errs[i] != nil {
				cancel()
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			db.inst.queryErrs.Inc()
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			db.inst.queryErrs.Inc()
			return nil, err
		}
	}
	mergeSp := parent.Start("merge")
	res, err := db.mergeScatter(q, parts)
	mergeSp.End()
	if err != nil {
		db.inst.queryErrs.Inc()
		return nil, err
	}
	db.mergeTotals(res.Stats)
	db.observeSelect(q, res.Stats)
	return res, nil
}

// mergeScatter composes the per-part results into the forest query's
// answer: the cross product of the parts' row sets, with COUNT(*) parts
// contributing their count as a row multiplicity. Pure untrusted-side
// work over data the untrusted side already holds.
func (db *DB) mergeScatter(q *query.Query, parts []*Result) (*Result, error) {
	res := &Result{}

	// Row multiplicity from filter-only (COUNT) parts; row sets from the
	// projecting parts.
	mult := 1
	rowsets := make([][]schema.Row, len(parts))
	for gi, pr := range parts {
		if q.Parts[gi].CountOnly && !q.CountOnly {
			if len(pr.Rows) != 1 || len(pr.Rows[0]) != 1 {
				return nil, fmt.Errorf("exec: scatter count part returned %d rows", len(pr.Rows))
			}
			mult *= int(pr.Rows[0][0].I)
		} else {
			rowsets[gi] = pr.Rows
		}
	}

	if q.CountOnly {
		n := int64(1)
		for _, pr := range parts {
			n *= pr.Rows[0][0].I
		}
		res.Columns = []string{"count(*)"}
		res.Rows = []schema.Row{{schema.IntVal(n)}}
	} else {
		for _, p := range q.Projections {
			res.Columns = append(res.Columns, db.columnLabel(p))
		}
		res.Rows = crossRows(q, rowsets, mult)
	}
	res.Stats = mergeScatterStats(parts)
	return res, nil
}

// crossRows materializes the cross product: one output row per
// combination of part rows, repeated mult times, columns picked via the
// resolver's PartProj mapping.
func crossRows(q *query.Query, rowsets [][]schema.Row, mult int) []schema.Row {
	if mult <= 0 {
		return []schema.Row{}
	}
	var active []int // parts that contribute rows
	total := mult
	for gi, rs := range rowsets {
		if rs == nil {
			continue
		}
		active = append(active, gi)
		total *= len(rs)
	}
	out := make([]schema.Row, 0, total)
	if total == 0 {
		return out
	}
	idx := make([]int, len(rowsets))
	for {
		row := make(schema.Row, len(q.Projections))
		for i, pc := range q.PartProj {
			row[i] = rowsets[pc.Part][idx[pc.Part]][pc.Col]
		}
		for m := 0; m < mult; m++ {
			out = append(out, row)
		}
		// Odometer over the active parts (last part varies fastest).
		k := len(active) - 1
		for ; k >= 0; k-- {
			gi := active[k]
			idx[gi]++
			if idx[gi] < len(rowsets[gi]) {
				break
			}
			idx[gi] = 0
		}
		if k < 0 {
			return out
		}
	}
}

// mergeScatterStats folds the parts' session costs into the client-level
// view: byte and I/O counters sum (they really happened, once each, on
// their tokens — per-token Totals already hold them shard by shard), the
// simulated time is the slowest part (the tokens ran in parallel), and
// Scatter records the fan-out width.
func mergeScatterStats(parts []*Result) Stats {
	st := Stats{
		Shard:     -1,
		Scatter:   len(parts),
		Breakdown: map[string]time.Duration{},
		Strategy:  map[string]Strategy{},
		opSims:    map[string]time.Duration{},
	}
	for _, pr := range parts {
		ps := pr.Stats
		st.IOTime += ps.IOTime
		st.CommTime += ps.CommTime
		if ps.SimTime > st.SimTime {
			st.SimTime = ps.SimTime
		}
		// Wall-clock waits overlapped (the legs queued in parallel), so
		// the client-visible wait is the slowest leg's, like SimTime.
		if ps.QueueWait > st.QueueWait {
			st.QueueWait = ps.QueueWait
		}
		for k, v := range ps.opSims {
			st.opSims[k] += v
		}
		st.Flash = st.Flash.Add(ps.Flash)
		st.BusDown += ps.BusDown
		st.BusUp += ps.BusUp
		if ps.RAMHigh > st.RAMHigh {
			st.RAMHigh = ps.RAMHigh
		}
		if ps.PlanMinBuffers > st.PlanMinBuffers {
			st.PlanMinBuffers = ps.PlanMinBuffers
		}
		if ps.GrantBuffers > st.GrantBuffers {
			st.GrantBuffers = ps.GrantBuffers
		}
		for k, v := range ps.Breakdown {
			st.Breakdown[k] += v
		}
		for k, v := range ps.Strategy {
			st.Strategy[k] = v
		}
		st.Projector = ps.Projector
	}
	return st
}
