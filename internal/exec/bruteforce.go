package exec

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ghostdb/internal/query"
	"ghostdb/internal/ram"
	"ghostdb/internal/schema"
	"ghostdb/internal/store"
)

// bruteForce is the strawman projector of Figures 12–13: stream the QEPSJ
// result and fetch every attribute value with *random* flash accesses — a
// binary search over the spooled visible rows and a direct row read in
// the hidden image, per tuple, per table. Visible-selection false
// positives are discarded when the binary search misses.
func (r *queryRun) bruteForce(res *Result) error {
	db, q := r.db, r.q
	anchor := q.Anchor

	// Column readers: anchor plus every table we must look at. Their
	// buffers are declared up front as one plan (the operator's
	// documented minimum: one buffer per open column reader).
	tables := map[int]bool{}
	for _, ti := range q.ProjTables() {
		if ti != anchor {
			tables[ti] = true
		}
	}
	for ti := range r.exactAtProject {
		tables[ti] = true
	}
	var order []int
	for ti := range tables {
		order = append(order, ti)
	}
	sort.Ints(order)

	resv, err := r.ram.Plan(ram.Claim{Name: "column-readers", Min: 1 + len(order), Want: 1 + len(order)})
	if err != nil {
		return fmt.Errorf("exec: brute-force projection: %w", err)
	}
	defer resv.Release()

	anchorCol := r.resCols[anchor]
	anchorRd := anchorCol.seg.NewRunReader(anchorCol.run)
	colRd := map[int]*store.RunReader{}
	for _, ti := range order {
		c, ok := r.resCols[ti]
		if !ok {
			return fmt.Errorf("exec: missing QEPSJ column for %s", db.Sch.Tables[ti].Name)
		}
		colRd[ti] = c.seg.NewRunReader(c.run)
	}

	projVis := r.projectedVisibleCols()
	spoolOff := map[int]map[int]int{} // table -> colIdx -> offset in spool row
	for ti, sp := range r.spool {
		offs := map[int]int{}
		off := store.IDBytes
		for _, c := range sp.cols {
			offs[c] = off
			off += db.Sch.Tables[ti].Columns[c].EncodedWidth()
		}
		spoolOff[ti] = offs
	}

	ids := map[int]uint32{}
	visRec := map[int][]byte{}
	hidRec := map[int][]byte{}

	for pos := 0; pos < r.resN; pos++ {
		aid, ok, err := anchorRd.Next()
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("exec: anchor column exhausted early")
		}
		ids[anchor] = aid
		for _, ti := range order {
			v, ok, err := colRd[ti].Next()
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("exec: column of %s exhausted early", db.Sch.Tables[ti].Name)
			}
			ids[ti] = v
		}
		// Exact visible verification by random binary search.
		keep := true
		for ti := range visRec {
			delete(visRec, ti)
		}
		for ti := range hidRec {
			delete(hidRec, ti)
		}
		check := append([]int{anchor}, order...)
		for _, ti := range check {
			sp := r.spool[ti]
			needVis := len(projVis[ti]) > 0
			needExact := r.exactAtProject[ti]
			if sp == nil || (!needVis && !needExact) {
				continue
			}
			rec, found, err := spoolSearch(sp.file, ids[ti])
			if err != nil {
				return err
			}
			if !found {
				if needExact {
					keep = false
					break
				}
				return fmt.Errorf("exec: id %d of %s missing from Vis spool", ids[ti], db.Sch.Tables[ti].Name)
			}
			visRec[ti] = rec
		}
		if !keep {
			continue
		}
		// Assemble the row with random hidden-image reads.
		row := make(schema.Row, 0, len(q.Projections))
		for _, p := range q.Projections {
			if p.ColIdx == query.IDCol {
				row = append(row, schema.IntVal(int64(ids[p.Table])))
				continue
			}
			col := db.Sch.Tables[p.Table].Columns[p.ColIdx]
			if !col.Hidden {
				rec := visRec[p.Table]
				if rec == nil {
					return fmt.Errorf("exec: no visible record for %s", db.Sch.Tables[p.Table].Name)
				}
				off := spoolOff[p.Table][p.ColIdx]
				v, err := schema.DecodeValue(rec[off:off+col.EncodedWidth()], col.Kind)
				if err != nil {
					return err
				}
				row = append(row, v)
				continue
			}
			img := r.tok.Hidden[p.Table]
			if img == nil {
				return fmt.Errorf("exec: no hidden image for %s", db.Sch.Tables[p.Table].Name)
			}
			rec := hidRec[p.Table]
			if rec == nil {
				rec = make([]byte, img.File.RowWidth())
				if err := img.File.ReadRow(ids[p.Table], rec); err != nil {
					return err
				}
				// Delta overlay: upserted rows carry their latest values
				// in the overlay, not the immutable base image.
				if dl := r.tok.deltaOf(p.Table); dl != nil {
					if ov, ok := dl.Lookup(ids[p.Table]); ok {
						copy(rec, ov)
					}
				}
				hidRec[p.Table] = rec
			}
			o, w := img.Codec.ColumnRange(img.ColPos[p.ColIdx])
			v, err := schema.DecodeValue(rec[o:o+w], col.Kind)
			if err != nil {
				return err
			}
			row = append(row, v)
		}
		res.Rows = append(res.Rows, row)
	}
	return nil
}

// spoolSearch binary-searches an id-sorted spool file; every probe is one
// random page read, the defining cost of the brute-force projector.
func spoolSearch(f *store.RowFile, id uint32) ([]byte, bool, error) {
	rec := make([]byte, f.RowWidth())
	lo, hi := 0, f.Count()-1
	for lo <= hi {
		mid := (lo + hi) / 2
		if err := f.ReadRow(uint32(mid), rec); err != nil {
			return nil, false, err
		}
		got := binary.BigEndian.Uint32(rec)
		switch {
		case got == id:
			return rec, true, nil
		case got < id:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return nil, false, nil
}
