package exec

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"ghostdb/internal/flash"
	"ghostdb/internal/ram"
)

// These tests pin the planner's central contract: the plan derived
// before admission is *sufficient*. An admitted query — one whose floor
// fits the budget — must never hit ram.ErrExhausted mid-run, and must
// never allocate beyond its grant. Queries whose floor exceeds the
// budget are rejected cleanly, up front, with ErrBudgetTooSmall.

// TestPlanMatchesAdmissionRequest asserts the acceptance criterion that
// Prepare is the single planning path: the admission request a query
// session makes is exactly the plan's derived floor.
func TestPlanMatchesAdmissionRequest(t *testing.T) {
	f := newFixture(t, 42, defaultCards())
	for qi, sql := range testQueries {
		stmt, err := f.db.Prepare(sql, QueryConfig{})
		if err != nil {
			t.Fatalf("q%d prepare: %v", qi, err)
		}
		plan := stmt.Plan()
		if plan.MinBuffers < 1 || plan.MinBuffers > f.db.RAM.Buffers() {
			t.Fatalf("q%d: implausible floor %d", qi, plan.MinBuffers)
		}
		req := f.db.sessionRequest(plan, QueryConfig{})
		if req.MinBuffers != plan.MinBuffers {
			t.Fatalf("q%d: admission min %d != plan floor %d", qi, req.MinBuffers, plan.MinBuffers)
		}
		res, err := stmt.RunCtx(context.Background(), QueryConfig{})
		if err != nil {
			t.Fatalf("q%d run: %v", qi, err)
		}
		if res.Stats.PlanMinBuffers != plan.MinBuffers {
			t.Fatalf("q%d: session floor %d != plan floor %d", qi, res.Stats.PlanMinBuffers, plan.MinBuffers)
		}
		if !rowsEqual(res.Rows, f.refAnswer(t, sql)) {
			t.Fatalf("q%d: prepared run diverges from reference", qi)
		}
		// A caller-raised floor is honored; a caller-lowered one is not.
		if req := f.db.sessionRequest(plan, QueryConfig{MinBuffers: plan.MinBuffers + 3}); req.MinBuffers != plan.MinBuffers+3 {
			t.Fatalf("q%d: raised floor ignored", qi)
		}
		if req := f.db.sessionRequest(plan, QueryConfig{MinBuffers: 1}); req.MinBuffers != plan.MinBuffers {
			t.Fatalf("q%d: floor lowered below the plan minimum", qi)
		}
	}
}

// TestPlanFloorsSufficientProperty drives the random query corpus with
// random forced strategies and projectors at the default budget: every
// plan's floor must be honored by the run (no mid-run exhaustion, high
// water within the grant, floor == admission request).
func TestPlanFloorsSufficientProperty(t *testing.T) {
	f := newFixture(t, 77, map[string]int{"T0": 1200, "T1": 150, "T2": 120, "T11": 40, "T12": 40})
	strategies := []Strategy{StratAuto, StratPre, StratCrossPre, StratPost,
		StratCrossPost, StratPostSelect, StratCrossPostSelect, StratNoFilter}
	projectors := []Projector{ProjectBloom, ProjectNoBF, ProjectBruteForce}
	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 150; i++ {
		sql := randomQuery(rng)
		cfg := QueryConfig{
			Strategy:  strategies[rng.Intn(len(strategies))],
			Projector: projectors[rng.Intn(len(projectors))],
		}
		stmt, err := f.db.Prepare(sql, cfg)
		if err != nil {
			t.Fatalf("%s: prepare: %v", sql, err)
		}
		plan := stmt.Plan()
		res, err := stmt.RunCtx(context.Background(), cfg)
		if err != nil {
			if errors.Is(err, ErrBloomInfeasible) {
				continue // forced Post beyond sV=0.5, as in the paper
			}
			t.Fatalf("[%v/%v] %s: floor %d at %d-buffer budget, but run failed: %v",
				cfg.Strategy, cfg.Projector, sql, plan.MinBuffers, f.db.RAM.Buffers(), err)
		}
		if res.Stats.PlanMinBuffers != plan.MinBuffers {
			t.Fatalf("%s: admission floor %d != plan floor %d", sql, res.Stats.PlanMinBuffers, plan.MinBuffers)
		}
		if res.Stats.RAMHigh > res.Stats.GrantBuffers*f.db.RAM.BufferSize() {
			t.Fatalf("%s: high water %d exceeds the %d-buffer grant", sql, res.Stats.RAMHigh, res.Stats.GrantBuffers)
		}
		if !rowsEqual(res.Rows, f.refAnswer(t, sql)) {
			t.Fatalf("[%v/%v] %s: wrong answer", cfg.Strategy, cfg.Projector, sql)
		}
		if f.db.RAM.Leaked() {
			t.Fatalf("%s: grants leaked", sql)
		}
	}
}

// TestPlanFloorSweepNoMidRunExhaustion is the satellite property test:
// across the RAM-budget sweep (the paper's 64KB down to the 7-buffer
// minimum and beyond, to 2), an admitted query may never hit
// ram.ErrExhausted mid-run — a floor above the budget must be rejected
// *before* admission with ErrBudgetTooSmall, and a floor within it must
// run to the exact answer with Stats.RAMHigh inside the grant.
func TestPlanFloorSweepNoMidRunExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	var randoms []string
	for i := 0; i < 15; i++ {
		randoms = append(randoms, randomQuery(rng))
	}
	for buffers := ram.DefaultBudget / 2048; buffers >= 2; buffers-- {
		f := sweepFixture(t, buffers)
		for _, sql := range append(append([]string{}, testQueries...), randoms...) {
			stmt, err := f.db.Prepare(sql, QueryConfig{})
			if err != nil {
				t.Fatalf("%d buffers: %s: prepare: %v", buffers, sql, err)
			}
			plan := stmt.Plan()
			res, err := stmt.RunCtx(context.Background(), QueryConfig{})
			if plan.MinBuffers > buffers {
				if err == nil {
					t.Fatalf("%d buffers: %s: floor %d admitted anyway", buffers, sql, plan.MinBuffers)
				}
				if !errors.Is(err, ErrBudgetTooSmall) {
					t.Fatalf("%d buffers: %s: want clean admission denial, got: %v", buffers, sql, err)
				}
			} else {
				if err != nil {
					t.Fatalf("%d buffers: %s: floor %d fits but run failed mid-run: %v",
						buffers, sql, plan.MinBuffers, err)
				}
				if !rowsEqual(res.Rows, f.refAnswer(t, sql)) {
					t.Fatalf("%d buffers: %s: wrong answer", buffers, sql)
				}
				if res.Stats.RAMHigh > res.Stats.GrantBuffers*f.db.RAM.BufferSize() {
					t.Fatalf("%d buffers: %s: high water %d exceeds grant", buffers, sql, res.Stats.RAMHigh)
				}
			}
			if f.db.RAM.Leaked() {
				t.Fatalf("%d buffers: %s: grants leaked", buffers, sql)
			}
			if f.db.RAM.HighWater() > f.db.RAM.Budget() {
				t.Fatalf("%d buffers: %s: budget exceeded", buffers, sql)
			}
		}
	}
}

// TestNarrowFloorsOverlapUnderCrowdedBudget pins the scheduling win the
// planner unlocks: queries with floors below the old 8-buffer default
// are admitted concurrently into a budget the fixed floor would have
// serialized.
func TestNarrowFloorsOverlapUnderCrowdedBudget(t *testing.T) {
	// 8-buffer budget: the old DefaultSessionMinBuffers equals the whole
	// budget, so at most one fixed-floor session could ever hold RAM.
	f := newFixtureOpts(t, 42, defaultCards(), Options{
		RAMBudget:            8 * 2048,
		FlashParams:          flash.Params{PageSize: 2048, PagesPerBlock: 16, Blocks: 8192, ReserveBlocks: 4},
		MaxConcurrentQueries: 4,
	})
	sql := `SELECT id, v1, h1 FROM T11 WHERE v1 < '0000000500' AND h2 >= '0000000800'`
	stmt, err := f.db.Prepare(sql, QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	plan := stmt.Plan()
	if plan.MinBuffers >= DefaultSessionMinBuffers {
		t.Fatalf("narrow query floor %d is not below the old %d-buffer default",
			plan.MinBuffers, DefaultSessionMinBuffers)
	}
	// With want clamped to the floor, two floor-sized sessions fit the
	// 8-buffer budget side by side — admission must grant both without
	// blocking.
	req := f.db.sessionRequest(plan, QueryConfig{WantBuffers: 1})
	acquire := func() chan error {
		done := make(chan error, 1)
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			sess, err := f.db.Sched().Acquire(ctx, req)
			if err != nil {
				done <- err
				return
			}
			done <- nil
			<-time.After(50 * time.Millisecond)
			sess.Release()
		}()
		return done
	}
	a, b := acquire(), acquire()
	if err := <-a; err != nil {
		t.Fatalf("first narrow session not admitted: %v", err)
	}
	if err := <-b; err != nil {
		t.Fatalf("second narrow session not admitted concurrently: %v", err)
	}
	// And the query itself still answers correctly at its tight grant.
	res, err := stmt.RunCtx(context.Background(), QueryConfig{WantBuffers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(res.Rows, f.refAnswer(t, sql)) {
		t.Fatal("narrow query wrong at floor-sized grant")
	}
	if res.Stats.GrantBuffers != plan.MinBuffers {
		t.Fatalf("grant %d != floor %d despite want=1", res.Stats.GrantBuffers, plan.MinBuffers)
	}
}

// TestExplainRendersPlan sanity-checks the EXPLAIN text: strategies,
// footprint and admission lines must all be present without executing.
func TestExplainRendersPlan(t *testing.T) {
	f := newFixture(t, 42, defaultCards())
	stmt, err := f.db.Prepare(testQueries[0], QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	out := stmt.Plan().Explain()
	for _, frag := range []string{"plan:", "anchor: T0", "visible selections:", "T1",
		"footprint (buffers):", "admission: min", "estimated cost:"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("EXPLAIN output missing %q:\n%s", frag, out)
		}
	}
	// Nothing ran: preparing and explaining must leave no trace on the
	// uplink audit trail or the RAM budget.
	if got := f.db.RAM.InUse(); got != 0 {
		t.Fatalf("explain reserved RAM: %d", got)
	}
	if ups := f.db.Bus.UplinkRecords(); len(ups) != 0 {
		t.Fatalf("explain leaked onto the bus: %+v", ups)
	}
	// INSERT plans are derived from the hidden codec width, not
	// hardcoded to one buffer.
	ins, err := f.db.Prepare(`INSERT INTO T12 VALUES ('a','b','c','d','e','f')`, QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !ins.Plan().Insert || ins.Plan().MinBuffers < 1 {
		t.Fatalf("insert plan = %+v", ins.Plan())
	}
}
