package exec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"ghostdb/internal/flash"
	"ghostdb/internal/ram"
)

// These tests pin the planner's central contract: the plan derived
// before admission is *sufficient*. An admitted query — one whose floor
// fits the budget — must never hit ram.ErrExhausted mid-run, and must
// never allocate beyond its grant. Queries whose floor exceeds the
// budget are rejected cleanly, up front, with ErrBudgetTooSmall.

// TestPlanMatchesAdmissionRequest asserts the acceptance criterion that
// Prepare is the single planning path: the admission request a query
// session makes is exactly the plan's derived floor.
func TestPlanMatchesAdmissionRequest(t *testing.T) {
	f := newFixture(t, 42, defaultCards())
	for qi, sql := range testQueries {
		stmt, err := f.db.Prepare(sql, QueryConfig{})
		if err != nil {
			t.Fatalf("q%d prepare: %v", qi, err)
		}
		plan := stmt.Plan()
		if plan.MinBuffers < 1 || plan.MinBuffers > f.db.RAM.Buffers() {
			t.Fatalf("q%d: implausible floor %d", qi, plan.MinBuffers)
		}
		req := f.db.sessionRequest(plan, QueryConfig{})
		if req.MinBuffers != plan.MinBuffers {
			t.Fatalf("q%d: admission min %d != plan floor %d", qi, req.MinBuffers, plan.MinBuffers)
		}
		res, err := stmt.RunCtx(context.Background(), QueryConfig{})
		if err != nil {
			t.Fatalf("q%d run: %v", qi, err)
		}
		if res.Stats.PlanMinBuffers != plan.MinBuffers {
			t.Fatalf("q%d: session floor %d != plan floor %d", qi, res.Stats.PlanMinBuffers, plan.MinBuffers)
		}
		if !rowsEqual(res.Rows, f.refAnswer(t, sql)) {
			t.Fatalf("q%d: prepared run diverges from reference", qi)
		}
		// A caller-raised floor is honored; a caller-lowered one is not.
		if req := f.db.sessionRequest(plan, QueryConfig{MinBuffers: plan.MinBuffers + 3}); req.MinBuffers != plan.MinBuffers+3 {
			t.Fatalf("q%d: raised floor ignored", qi)
		}
		if req := f.db.sessionRequest(plan, QueryConfig{MinBuffers: 1}); req.MinBuffers != plan.MinBuffers {
			t.Fatalf("q%d: floor lowered below the plan minimum", qi)
		}
	}
}

// TestPlanFloorsSufficientProperty drives the random query corpus with
// random forced strategies and projectors at the default budget: every
// plan's floor must be honored by the run (no mid-run exhaustion, high
// water within the grant, floor == admission request).
func TestPlanFloorsSufficientProperty(t *testing.T) {
	f := newFixture(t, 77, map[string]int{"T0": 1200, "T1": 150, "T2": 120, "T11": 40, "T12": 40})
	strategies := []Strategy{StratAuto, StratPre, StratCrossPre, StratPost,
		StratCrossPost, StratPostSelect, StratCrossPostSelect, StratNoFilter}
	projectors := []Projector{ProjectBloom, ProjectNoBF, ProjectBruteForce}
	rng := rand.New(rand.NewSource(2024))
	for i := 0; i < 150; i++ {
		sql := randomQuery(rng)
		cfg := QueryConfig{
			Strategy:  strategies[rng.Intn(len(strategies))],
			Projector: projectors[rng.Intn(len(projectors))],
		}
		stmt, err := f.db.Prepare(sql, cfg)
		if err != nil {
			t.Fatalf("%s: prepare: %v", sql, err)
		}
		plan := stmt.Plan()
		res, err := stmt.RunCtx(context.Background(), cfg)
		if err != nil {
			if errors.Is(err, ErrBloomInfeasible) {
				continue // forced Post beyond sV=0.5, as in the paper
			}
			t.Fatalf("[%v/%v] %s: floor %d at %d-buffer budget, but run failed: %v",
				cfg.Strategy, cfg.Projector, sql, plan.MinBuffers, f.db.RAM.Buffers(), err)
		}
		if res.Stats.PlanMinBuffers != plan.MinBuffers {
			t.Fatalf("%s: admission floor %d != plan floor %d", sql, res.Stats.PlanMinBuffers, plan.MinBuffers)
		}
		if res.Stats.RAMHigh > res.Stats.GrantBuffers*f.db.RAM.BufferSize() {
			t.Fatalf("%s: high water %d exceeds the %d-buffer grant", sql, res.Stats.RAMHigh, res.Stats.GrantBuffers)
		}
		if !rowsEqual(res.Rows, f.refAnswer(t, sql)) {
			t.Fatalf("[%v/%v] %s: wrong answer", cfg.Strategy, cfg.Projector, sql)
		}
		if f.db.RAM.Leaked() {
			t.Fatalf("%s: grants leaked", sql)
		}
	}
}

// TestConcurrentInsertAndPlanNoRace pins the keyDist locking: planning
// reads the token-side index statistics *outside* the token's execution
// slot while concurrent INSERTs (holding the slot) mutate them — run
// under -race in CI.
func TestConcurrentInsertAndPlanNoRace(t *testing.T) {
	f := newFixture(t, 77, map[string]int{"T0": 200, "T1": 60, "T2": 50, "T11": 20, "T12": 20})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			sql := fmt.Sprintf(`INSERT INTO T12 VALUES ('%010d','%010d','%010d','%010d','%010d','%010d')`,
				i, i+1, i+2, i+3, i+4, i+5)
			if _, err := f.db.Run(sql); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 60; i++ {
		if _, err := f.db.Prepare(`SELECT id FROM T12 WHERE h1 < '0000000400'`, QueryConfig{}); err != nil {
			t.Fatalf("prepare: %v", err)
		}
	}
	<-done
}

// TestHiddenSelEstimateFromIndexStats pins the token-side statistics
// satellite: the planner's hidden-selectivity estimates come from the
// per-index key distribution instead of the fixed 10% guess, track the
// true uniform selectivity, and surface in EXPLAIN.
func TestHiddenSelEstimateFromIndexStats(t *testing.T) {
	f := newFixture(t, 77, map[string]int{"T0": 1200, "T1": 150, "T2": 120, "T11": 40, "T12": 40})
	cases := []struct {
		sql  string
		want float64 // true selectivity of the hidden predicate (uniform domain)
	}{
		{`SELECT T0.id FROM T0 WHERE T0.h1 < '0000000300'`, 0.3},
		{`SELECT T0.id FROM T0 WHERE T0.h1 >= '0000000800'`, 0.2},
		{`SELECT T0.id FROM T0 WHERE T0.h2 BETWEEN '0000000100' AND '0000000600'`, 0.5},
	}
	for _, tc := range cases {
		stmt, err := f.db.Prepare(tc.sql, QueryConfig{})
		if err != nil {
			t.Fatalf("%s: %v", tc.sql, err)
		}
		plan := stmt.Plan()
		if len(plan.HiddenSel) != 1 {
			t.Fatalf("%s: %d hidden estimates, want 1", tc.sql, len(plan.HiddenSel))
		}
		h := plan.HiddenSel[0]
		if !h.FromIndex {
			t.Fatalf("%s: estimate fell back to the fixed guess", tc.sql)
		}
		if h.Sel < tc.want-0.12 || h.Sel > tc.want+0.12 {
			t.Fatalf("%s: estimated sel %.3f, true %.2f (off by more than the histogram resolution)",
				tc.sql, h.Sel, tc.want)
		}
		if out := plan.Explain(); !strings.Contains(out, "hidden selectivity estimates") ||
			!strings.Contains(out, "index stats") {
			t.Fatalf("%s: EXPLAIN misses the estimate:\n%s", tc.sql, out)
		}
	}
	// Id predicates are exact: dense identifiers make the fraction pure
	// arithmetic on the literal.
	stmt, err := f.db.Prepare(`SELECT T0.id FROM T0 WHERE T0.id < 300`, QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if h := stmt.Plan().HiddenSel[0]; !h.FromIndex || h.Sel != 0.25 {
		t.Fatalf("id predicate estimate = %+v, want exact 0.25", h)
	}
}

// TestSharedStageLowersWideFloors pins the shared-staged-buffer win: the
// widest 3-table mix shapes used to floor at 7 buffers (QEPSJ writers
// each holding one); with the column writers collapsed into one staged
// spill buffer the floor drops below 7, and the query still runs to the
// exact answer in a budget of exactly that floor (where the session
// necessarily binds the spill variant, StoreDirect=false).
func TestSharedStageLowersWideFloors(t *testing.T) {
	wide := []string{
		`SELECT T0.id, T1.id, T12.id, T1.v1 FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND T1.fk12 = T12.id AND T1.v1 < '0000000300' AND T12.h2 < '0000000100'`,
		`SELECT T0.id, T1.h1, T12.v2, T0.h3, T0.v1 FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND T1.fk12 = T12.id AND T1.v1 < '0000000400' AND T12.h2 < '0000000200'`,
		`SELECT T1.id, T11.id FROM T1, T11, T12 WHERE T1.fk11 = T11.id AND T1.fk12 = T12.id AND T11.h1 < '0000000300' AND T1.v1 < '0000000400'`,
	}
	probe := newFixture(t, 77, map[string]int{"T0": 1200, "T1": 150, "T2": 120, "T11": 40, "T12": 40})
	for _, sql := range wide {
		stmt, err := probe.db.Prepare(sql, QueryConfig{})
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		plan := stmt.Plan()
		if plan.MinBuffers >= 7 {
			t.Fatalf("%s: floor %d, want < 7 (shared staged buffer)", sql, plan.MinBuffers)
		}
		if plan.Footprint.QEPSJShared >= plan.Footprint.QEPSJ {
			t.Fatalf("%s: shared footprint %d not below direct %d",
				sql, plan.Footprint.QEPSJShared, plan.Footprint.QEPSJ)
		}
		// Run in a budget of exactly the floor: the binding must choose
		// the spill variant and the answer must stay exact.
		f := sweepFixture(t, plan.MinBuffers)
		stmt2, err := f.db.Prepare(sql, QueryConfig{})
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if got := stmt2.Plan().MinBuffers; got != plan.MinBuffers {
			t.Fatalf("%s: floor drifted across fixtures: %d vs %d", sql, got, plan.MinBuffers)
		}
		if b := stmt2.Plan().Bind(plan.MinBuffers); b.StoreDirect {
			t.Fatalf("%s: floor-sized grant bound direct writers", sql)
		}
		res, err := stmt2.RunCtx(context.Background(), QueryConfig{})
		if err != nil {
			t.Fatalf("%s at %d buffers: %v", sql, plan.MinBuffers, err)
		}
		if !rowsEqual(res.Rows, f.refAnswer(t, sql)) {
			t.Fatalf("%s at %d buffers: wrong answer via spill store", sql, plan.MinBuffers)
		}
		if f.db.RAM.Leaked() {
			t.Fatalf("%s: grants leaked", sql)
		}
	}
}

// TestPlanFloorSweepNoMidRunExhaustion is the satellite property test:
// across the RAM-budget sweep (the paper's 64KB down to the 7-buffer
// minimum and beyond, to 2), an admitted query may never hit
// ram.ErrExhausted mid-run — a floor above the budget must be rejected
// *before* admission with ErrBudgetTooSmall, and a floor within it must
// run to the exact answer with Stats.RAMHigh inside the grant.
func TestPlanFloorSweepNoMidRunExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	var randoms []string
	for i := 0; i < 15; i++ {
		randoms = append(randoms, randomQuery(rng))
	}
	for buffers := ram.DefaultBudget / 2048; buffers >= 2; buffers-- {
		f := sweepFixture(t, buffers)
		for _, sql := range append(append([]string{}, testQueries...), randoms...) {
			stmt, err := f.db.Prepare(sql, QueryConfig{})
			if err != nil {
				t.Fatalf("%d buffers: %s: prepare: %v", buffers, sql, err)
			}
			plan := stmt.Plan()
			res, err := stmt.RunCtx(context.Background(), QueryConfig{})
			if plan.MinBuffers > buffers {
				if err == nil {
					t.Fatalf("%d buffers: %s: floor %d admitted anyway", buffers, sql, plan.MinBuffers)
				}
				if !errors.Is(err, ErrBudgetTooSmall) {
					t.Fatalf("%d buffers: %s: want clean admission denial, got: %v", buffers, sql, err)
				}
			} else {
				if err != nil {
					t.Fatalf("%d buffers: %s: floor %d fits but run failed mid-run: %v",
						buffers, sql, plan.MinBuffers, err)
				}
				if !rowsEqual(res.Rows, f.refAnswer(t, sql)) {
					t.Fatalf("%d buffers: %s: wrong answer", buffers, sql)
				}
				if res.Stats.RAMHigh > res.Stats.GrantBuffers*f.db.RAM.BufferSize() {
					t.Fatalf("%d buffers: %s: high water %d exceeds grant", buffers, sql, res.Stats.RAMHigh)
				}
			}
			if f.db.RAM.Leaked() {
				t.Fatalf("%d buffers: %s: grants leaked", buffers, sql)
			}
			if f.db.RAM.HighWater() > f.db.RAM.Budget() {
				t.Fatalf("%d buffers: %s: budget exceeded", buffers, sql)
			}
		}
	}
}

// TestNarrowFloorsOverlapUnderCrowdedBudget pins the scheduling win the
// planner unlocks: queries with floors below the old 8-buffer default
// are admitted concurrently into a budget the fixed floor would have
// serialized.
func TestNarrowFloorsOverlapUnderCrowdedBudget(t *testing.T) {
	// 8-buffer budget: the old DefaultSessionMinBuffers equals the whole
	// budget, so at most one fixed-floor session could ever hold RAM.
	f := newFixtureOpts(t, 42, defaultCards(), Options{
		RAMBudget:            8 * 2048,
		FlashParams:          flash.Params{PageSize: 2048, PagesPerBlock: 16, Blocks: 8192, ReserveBlocks: 4},
		MaxConcurrentQueries: 4,
	})
	sql := `SELECT id, v1, h1 FROM T11 WHERE v1 < '0000000500' AND h2 >= '0000000800'`
	stmt, err := f.db.Prepare(sql, QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	plan := stmt.Plan()
	if plan.MinBuffers >= DefaultSessionMinBuffers {
		t.Fatalf("narrow query floor %d is not below the old %d-buffer default",
			plan.MinBuffers, DefaultSessionMinBuffers)
	}
	// With want clamped to the floor, two floor-sized sessions fit the
	// 8-buffer budget side by side — admission must grant both without
	// blocking.
	req := f.db.sessionRequest(plan, QueryConfig{WantBuffers: 1})
	acquire := func() chan error {
		done := make(chan error, 1)
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			sess, err := f.db.Sched().Acquire(ctx, req)
			if err != nil {
				done <- err
				return
			}
			done <- nil
			<-time.After(50 * time.Millisecond)
			sess.Release()
		}()
		return done
	}
	a, b := acquire(), acquire()
	if err := <-a; err != nil {
		t.Fatalf("first narrow session not admitted: %v", err)
	}
	if err := <-b; err != nil {
		t.Fatalf("second narrow session not admitted concurrently: %v", err)
	}
	// And the query itself still answers correctly at its tight grant.
	res, err := stmt.RunCtx(context.Background(), QueryConfig{WantBuffers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(res.Rows, f.refAnswer(t, sql)) {
		t.Fatal("narrow query wrong at floor-sized grant")
	}
	if res.Stats.GrantBuffers != plan.MinBuffers {
		t.Fatalf("grant %d != floor %d despite want=1", res.Stats.GrantBuffers, plan.MinBuffers)
	}
}

// TestExplainRendersPlan sanity-checks the EXPLAIN text: strategies,
// footprint and admission lines must all be present without executing.
func TestExplainRendersPlan(t *testing.T) {
	f := newFixture(t, 42, defaultCards())
	stmt, err := f.db.Prepare(testQueries[0], QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	out := stmt.Plan().Explain()
	for _, frag := range []string{"plan:", "anchor: T0", "visible selections:", "T1",
		"footprint (buffers):", "admission: min", "estimated cost:"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("EXPLAIN output missing %q:\n%s", frag, out)
		}
	}
	// Nothing ran: preparing and explaining must leave no trace on the
	// uplink audit trail or the RAM budget.
	if got := f.db.RAM.InUse(); got != 0 {
		t.Fatalf("explain reserved RAM: %d", got)
	}
	if ups := f.db.Bus.UplinkRecords(); len(ups) != 0 {
		t.Fatalf("explain leaked onto the bus: %+v", ups)
	}
	// INSERT plans are derived from the hidden codec width, not
	// hardcoded to one buffer.
	ins, err := f.db.Prepare(`INSERT INTO T12 VALUES ('a','b','c','d','e','f')`, QueryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !ins.Plan().Insert || ins.Plan().MinBuffers < 1 {
		t.Fatalf("insert plan = %+v", ins.Plan())
	}
}
