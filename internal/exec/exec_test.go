package exec

import (
	"errors"
	"fmt"
	"testing"

	"ghostdb/internal/flash"
	"ghostdb/internal/query"
	"ghostdb/internal/ref"
	"ghostdb/internal/schema"
	"ghostdb/internal/sqlparse"
)

// Test fixtures live in exec to avoid an import cycle with datagen, which
// depends on exec for the load types. The dataset mirrors the synthetic
// generator: uniform padded decimals over a domain of 1000.

const testDomain = 1000

func pad(v int) string { return fmt.Sprintf("%010d", v) }

type fixture struct {
	db  *DB
	ref *ref.Engine
	sch *schema.Schema
}

func synthDefs() []schema.TableDef {
	attrs := func() []schema.Column {
		var cols []schema.Column
		for i := 1; i <= 3; i++ {
			cols = append(cols, schema.Column{Name: fmt.Sprintf("v%d", i), Kind: schema.KindChar, Width: 10})
		}
		for i := 1; i <= 3; i++ {
			cols = append(cols, schema.Column{Name: fmt.Sprintf("h%d", i), Kind: schema.KindChar, Width: 10, Hidden: true})
		}
		return cols
	}
	return []schema.TableDef{
		{Name: "T0", Columns: attrs(), Refs: []schema.Ref{
			{FKColumn: "fk1", Child: "T1", Hidden: true},
			{FKColumn: "fk2", Child: "T2", Hidden: true}}},
		{Name: "T1", Columns: attrs(), Refs: []schema.Ref{
			{FKColumn: "fk11", Child: "T11", Hidden: true},
			{FKColumn: "fk12", Child: "T12", Hidden: true}}},
		{Name: "T2", Columns: attrs()},
		{Name: "T11", Columns: attrs()},
		{Name: "T12", Columns: attrs()},
	}
}

// lcg is a tiny deterministic generator so the fixture is stable.
type lcg struct{ s uint64 }

func (l *lcg) next(n int) int {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return int((l.s >> 33) % uint64(n))
}

func newFixture(t testing.TB, seed uint64, cards map[string]int) *fixture {
	t.Helper()
	sch, err := schema.New(synthDefs())
	if err != nil {
		t.Fatal(err)
	}
	rng := &lcg{s: seed}
	load := map[int]*TableLoad{}
	re := ref.New(sch)
	for _, tb := range sch.Tables {
		n := cards[tb.Name]
		ld := &TableLoad{Rows: n, FKs: map[int][]uint32{}}
		rows := make([]schema.Row, n)
		for ci, col := range tb.Columns {
			w := col.EncodedWidth()
			data := make([]byte, n*w)
			for i := 0; i < n; i++ {
				v := schema.CharVal(pad(rng.next(testDomain)))
				if rows[i] == nil {
					rows[i] = make(schema.Row, len(tb.Columns))
				}
				rows[i][ci] = v
				if err := schema.EncodeValue(data[i*w:(i+1)*w], v); err != nil {
					t.Fatal(err)
				}
			}
			ld.Cols = append(ld.Cols, ColData{Width: w, Data: data})
		}
		for _, ci := range tb.Children() {
			cn := cards[sch.Tables[ci].Name]
			fk := make([]uint32, n)
			for i := range fk {
				fk[i] = uint32(rng.next(cn))
			}
			ld.FKs[ci] = fk
		}
		load[tb.Index] = ld
		re.Load(tb.Index, rows, ld.FKs)
	}
	db, err := NewDB(sch, Options{
		FlashParams: flash.Params{PageSize: 2048, PagesPerBlock: 16, Blocks: 8192, ReserveBlocks: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Load(load); err != nil {
		t.Fatal(err)
	}
	return &fixture{db: db, ref: re, sch: sch}
}

func defaultCards() map[string]int {
	return map[string]int{"T0": 2500, "T1": 300, "T2": 250, "T11": 60, "T12": 60}
}

// refAnswer evaluates sql on the reference engine.
func (f *fixture) refAnswer(t testing.TB, sql string) []schema.Row {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	q, err := query.Resolve(f.sch, stmt.(*sqlparse.Select), sql)
	if err != nil {
		t.Fatalf("resolve %q: %v", sql, err)
	}
	rows, err := f.ref.Evaluate(q)
	if err != nil {
		t.Fatalf("ref %q: %v", sql, err)
	}
	return rows
}

func rowsEqual(a, b []schema.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// checkNoLeak asserts the security invariant: nothing but the query text
// ever crossed Secure -> Untrusted.
func checkNoLeak(t testing.TB, db *DB, sql string) {
	t.Helper()
	ups := db.Bus.UplinkRecords()
	if len(ups) != 1 {
		t.Fatalf("%d uplink transfers (want 1: the query): %+v", len(ups), ups)
	}
	if ups[0].Kind != "query" || ups[0].Payload != sql {
		t.Fatalf("unexpected uplink payload: %+v", ups[0])
	}
}

var testQueries = []string{
	// The paper's query Q (§6.4) with a projection on T1.v1.
	`SELECT T0.id, T1.id, T12.id, T1.v1 FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND T1.fk12 = T12.id AND T1.v1 < '0000000300' AND T12.h2 < '0000000100'`,
	// Hidden and visible value projections across levels.
	`SELECT T0.id, T1.h1, T12.v2, T0.h3, T0.v1 FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND T1.fk12 = T12.id AND T1.v1 < '0000000400' AND T12.h2 < '0000000200'`,
	// Mono-table mixed visible/hidden selection (the §2.1 example shape).
	`SELECT id, v1, h1 FROM T11 WHERE v1 < '0000000500' AND h2 >= '0000000800'`,
	// Hidden-only query: no visible selection at all.
	`SELECT T0.id FROM T0, T2 WHERE T0.fk2 = T2.id AND T2.h1 = '0000000003'`,
	// BETWEEN and <> operators.
	`SELECT T1.id FROM T1, T12 WHERE T1.fk12 = T12.id AND T12.h1 BETWEEN '0000000100' AND '0000000200' AND T1.v2 <> '0000000042'`,
	// Identifier predicates (free anchor filter + id-index range).
	`SELECT T0.id, T1.id FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.id < 50 AND T0.h1 < '0000000500'`,
	`SELECT T0.id FROM T0, T1 WHERE T0.fk1 = T1.id AND T0.id BETWEEN 100 AND 300 AND T1.h1 < '0000000500'`,
	// Anchor-table visible selection combined with a deep hidden one.
	`SELECT T0.id, T0.v1 FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND T1.fk12 = T12.id AND T0.v1 < '0000000100' AND T12.h2 < '0000000100'`,
	// Subtree query that never touches the root (FullIndex benefit).
	`SELECT T1.id, T11.id FROM T1, T11, T12 WHERE T1.fk11 = T11.id AND T1.fk12 = T12.id AND T11.h1 < '0000000300' AND T1.v1 < '0000000400'`,
	// SELECT * on a leaf table, hidden equality.
	`SELECT * FROM T12 WHERE h1 = '0000000007'`,
	// Join with no selections at all.
	`SELECT T0.id, T2.id FROM T0, T2 WHERE T0.fk2 = T2.id AND T2.h1 < '0000000050'`,
	// Empty result.
	`SELECT T0.id FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.v1 < '0000000000' AND T1.h1 < '0000000100'`,
	// Aliases, as in the paper's own example text.
	`SELECT a.id, b.v1 FROM T0 a, T1 b WHERE a.fk1 = b.id AND b.v1 < '0000000200' AND b.h1 < '0000000300'`,
	// Two visible selections on different tables plus hidden selections.
	`SELECT T0.id, T1.v1, T2.v2 FROM T0, T1, T2 WHERE T0.fk1 = T1.id AND T0.fk2 = T2.id AND T1.v1 < '0000000300' AND T2.v2 < '0000000400' AND T1.h1 < '0000000500'`,
	// Visible-only single table (untrusted fast path).
	`SELECT id, v1 FROM T2 WHERE v2 < '0000000200'`,
	// Float/int coercions are exercised by the medical tests.
}

func TestQueriesMatchReferenceAcrossStrategies(t *testing.T) {
	f := newFixture(t, 42, defaultCards())
	strategies := []Strategy{StratAuto, StratPre, StratCrossPre, StratPost,
		StratCrossPost, StratPostSelect, StratCrossPostSelect, StratNoFilter}
	projectors := []Projector{ProjectBloom, ProjectNoBF, ProjectBruteForce}
	for qi, sql := range testQueries {
		want := f.refAnswer(t, sql)
		for _, s := range strategies {
			for _, pj := range projectors {
				f.db.SetForceStrategy(s)
				f.db.SetProjector(pj)
				res, err := f.db.Run(sql)
				if err != nil {
					if errors.Is(err, ErrBloomInfeasible) {
						continue // the paper stops Post curves there too
					}
					t.Fatalf("q%d [%v/%v] %s: %v", qi, s, pj, sql, err)
				}
				if !rowsEqual(res.Rows, want) {
					t.Fatalf("q%d [%v/%v]: got %d rows, want %d\nsql: %s\ngot:  %v\nwant: %v",
						qi, s, pj, len(res.Rows), len(want), sql, sample(res.Rows), sample(want))
				}
				checkNoLeak(t, f.db, sql)
				if f.db.RAM.InUse() != 0 {
					t.Fatalf("q%d [%v/%v]: RAM leak: %d bytes", qi, s, pj, f.db.RAM.InUse())
				}
			}
		}
	}
}

func sample(rows []schema.Row) []schema.Row {
	if len(rows) > 5 {
		return rows[:5]
	}
	return rows
}

func TestAutoPlannerPicksSaneStrategies(t *testing.T) {
	f := newFixture(t, 7, defaultCards())
	f.db.SetForceStrategy(StratAuto)
	// Selective visible selection with cross opportunity -> Cross-Pre.
	res, err := f.db.Run(`SELECT T0.id FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND T1.fk12 = T12.id AND T1.v1 < '0000000020' AND T12.h2 < '0000000100'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.Strategy["T1"]; got != StratCrossPre {
		t.Fatalf("selective+cross: %v", got)
	}
	// Unselective with cross -> Cross-Post.
	res, err = f.db.Run(`SELECT T0.id FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND T1.fk12 = T12.id AND T1.v1 < '0000000900' AND T12.h2 < '0000000100'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.Strategy["T1"]; got != StratCrossPost {
		t.Fatalf("unselective+cross: %v", got)
	}
	// No cross, selective -> Pre.
	res, err = f.db.Run(`SELECT T0.id FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.v1 < '0000000020' AND T0.h1 < '0000000500'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.Strategy["T1"]; got != StratPre {
		t.Fatalf("no-cross selective: %v", got)
	}
	// No cross, sV around 0.3 -> Post; around 0.9 -> NoFilter.
	res, err = f.db.Run(`SELECT T0.id FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.v1 < '0000000300' AND T0.h1 < '0000000500'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.Strategy["T1"]; got != StratPost {
		t.Fatalf("no-cross mid: %v", got)
	}
	res, err = f.db.Run(`SELECT T0.id FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.v1 < '0000000900' AND T0.h1 < '0000000500'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats.Strategy["T1"]; got != StratNoFilter {
		t.Fatalf("no-cross wide: %v", got)
	}
}

func TestInsertThenQuery(t *testing.T) {
	f := newFixture(t, 11, map[string]int{"T0": 400, "T1": 80, "T2": 60, "T11": 20, "T12": 20})
	ins := []string{
		// T12 leaf insert (fks: none; columns v1..v3, h1..h3).
		`INSERT INTO T12 VALUES ('0000000001','0000000002','0000000003','0000000007','0000000005','0000000006')`,
		// T1 insert referencing existing T11/T12 rows (fk11, fk12, then columns).
		`INSERT INTO T1 VALUES (3, 20, '0000000011','0000000012','0000000013','0000000014','0000000015','0000000016')`,
		// T0 insert referencing the new T1 row (id 80) and an existing T2 row.
		`INSERT INTO T0 (fk1, fk2, v1, v2, v3, h1, h2, h3) VALUES (80, 5, '0000000021','0000000022','0000000023','0000000024','0000000025','0000000026')`,
	}
	for _, sql := range ins {
		if _, err := f.db.Run(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	// Mirror into the reference engine.
	mk := func(vals ...string) schema.Row {
		row := make(schema.Row, len(vals))
		for i, v := range vals {
			row[i] = schema.CharVal(v)
		}
		return row
	}
	t12, _ := f.sch.Lookup("T12")
	t11, _ := f.sch.Lookup("T11")
	t2, _ := f.sch.Lookup("T2")
	t1, _ := f.sch.Lookup("T1")
	f.ref.Insert(t12.Index, mk("0000000001", "0000000002", "0000000003", "0000000007", "0000000005", "0000000006"), nil)
	f.ref.Insert(t1.Index, mk("0000000011", "0000000012", "0000000013", "0000000014", "0000000015", "0000000016"),
		map[int]uint32{t11.Index: 3, t12.Index: 20})
	t0тbl, _ := f.sch.Lookup("T0")
	f.ref.Insert(t0тbl.Index, mk("0000000021", "0000000022", "0000000023", "0000000024", "0000000025", "0000000026"),
		map[int]uint32{t1.Index: 80, t2.Index: 5})

	queries := []string{
		// Must see the new T0 row via the new T1 and new T12 rows.
		`SELECT T0.id, T1.id, T12.id FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND T1.fk12 = T12.id AND T12.h1 = '0000000007' AND T1.v1 < '0000000999'`,
		`SELECT T0.id, T0.h1 FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.h1 = '0000000014'`,
		`SELECT id, h1 FROM T12 WHERE h1 = '0000000007'`,
		`SELECT T1.id, T1.v1 FROM T1, T12 WHERE T1.fk12 = T12.id AND T12.h1 = '0000000007' AND T1.v1 >= '0000000000'`,
	}
	for _, sql := range queries {
		want := f.refAnswer(t, sql)
		res, err := f.db.Run(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if !rowsEqual(res.Rows, want) {
			t.Fatalf("%s:\ngot:  %v\nwant: %v", sql, sample(res.Rows), sample(want))
		}
	}
	// Insert validation errors.
	bad := []string{
		`INSERT INTO T0 VALUES (99999, 5, '0000000021','0000000022','0000000023','0000000024','0000000025','0000000026')`, // dangling fk
		`INSERT INTO T12 VALUES ('0000000001')`, // arity
		`INSERT INTO Nope VALUES (1)`,
		`INSERT INTO T12 (v1, v2, v3, h1, h2, nosuch) VALUES ('a','b','c','d','e','f')`,
	}
	for _, sql := range bad {
		if _, err := f.db.Run(sql); err == nil {
			t.Fatalf("accepted %q", sql)
		}
	}
}

func TestVisibleOnlyFastPathStaysOffFlash(t *testing.T) {
	f := newFixture(t, 5, defaultCards())
	res, err := f.db.Run(`SELECT id, v1 FROM T2 WHERE v2 < '0000000200'`)
	if err != nil {
		t.Fatal(err)
	}
	want := f.refAnswer(t, `SELECT id, v1 FROM T2 WHERE v2 < '0000000200'`)
	if !rowsEqual(res.Rows, want) {
		t.Fatalf("fast path wrong: %d vs %d rows", len(res.Rows), len(want))
	}
	if res.Stats.Flash.PageReads != 0 || res.Stats.Flash.PageWrites != 0 {
		t.Fatalf("visible-only query touched flash: %+v", res.Stats.Flash)
	}
	if res.Stats.BusDown == 0 {
		t.Fatal("expected downlink transfer")
	}
}

func TestStatsBreakdownCoversCost(t *testing.T) {
	f := newFixture(t, 9, defaultCards())
	f.db.SetForceStrategy(StratCrossPre)
	sql := `SELECT T0.id, T1.id, T12.id, T1.v1 FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND T1.fk12 = T12.id AND T1.v1 < '0000000100' AND T12.h2 < '0000000100'`
	res, err := f.db.Run(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SimTime <= 0 || res.Stats.IOTime <= 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	var sum int64
	for _, d := range res.Stats.Breakdown {
		sum += int64(d)
	}
	if sum <= 0 || sum > int64(res.Stats.IOTime) {
		t.Fatalf("breakdown sum %d vs io %d", sum, int64(res.Stats.IOTime))
	}
	if res.Stats.RAMHigh > f.db.RAM.Budget() {
		t.Fatalf("RAM high water %d exceeds budget", res.Stats.RAMHigh)
	}
}

func TestUnsupportedQueries(t *testing.T) {
	f := newFixture(t, 3, map[string]int{"T0": 100, "T1": 30, "T2": 30, "T11": 10, "T12": 10})
	bad := []string{
		`SELECT T0.id FROM T0, T0 WHERE T0.fk1 = T0.id`,         // self join
		`SELECT T0.id FROM T0, T11 WHERE T0.fk1 = T11.id`,       // wrong fk target
		`SELECT T0.id FROM T0, T2 WHERE T0.v1 = T2.v1`,          // non-key join
		`SELECT T1.id, T2.id FROM T1, T2 WHERE T1.fk11 = T2.id`, // fk mismatch
		`SELECT T0.id FROM T0, T1`,                              // missing join
		`SELECT nosuch FROM T0`,                                 // unknown col
		`SELECT T0.fk1 FROM T0`,                                 // fk projection
		`SELECT T11.id, T12.id FROM T11, T12`,                   // anchor absent
		`SELECT T0.id FROM T0 WHERE v1 < 3`,                     // type mismatch
	}
	for _, sql := range bad {
		if _, err := f.db.Run(sql); err == nil {
			t.Fatalf("accepted %q", sql)
		}
	}
}

func TestCountStar(t *testing.T) {
	f := newFixture(t, 19, defaultCards())
	cases := []string{
		`SELECT COUNT(*) FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND T1.fk12 = T12.id AND T1.v1 < '0000000300' AND T12.h2 < '0000000100'`,
		`SELECT COUNT(*) FROM T12 WHERE h1 = '0000000007'`,
		`SELECT COUNT(*) FROM T2 WHERE v2 < '0000000200'`, // visible-only path
		`SELECT COUNT(*) FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.v1 < '0000000000'`,
	}
	for _, sql := range cases {
		// Reference count: strip COUNT(*) down to the anchor projection.
		ref := f.refAnswer(t, sql)
		res, err := f.db.Run(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		if len(res.Rows) != 1 || res.Columns[0] != "count(*)" {
			t.Fatalf("%s: result shape %v %v", sql, res.Columns, res.Rows)
		}
		if res.Rows[0][0].I != int64(len(ref)) {
			t.Fatalf("%s: count %d, want %d", sql, res.Rows[0][0].I, len(ref))
		}
		checkNoLeak(t, f.db, sql)
	}
	// COUNT(*) with other projections is rejected by the grammar.
	if _, err := f.db.Run(`SELECT COUNT(*), id FROM T2`); err == nil {
		t.Fatal("COUNT with projections accepted")
	}
}
