package exec

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"ghostdb/internal/flash"
	"ghostdb/internal/query"
	"ghostdb/internal/sqlparse"
)

// applyDML runs one UPDATE/DELETE on the engine and mirrors it on the
// reference oracle, failing the test if the affected counts diverge.
func (f *fixture) applyDML(t testing.TB, sql string) int {
	t.Helper()
	res, err := f.db.Run(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("%s: DML result shape %v", sql, res.Rows)
	}
	got := int(res.Rows[0][0].I)
	want := f.refDML(t, sql)
	if got != want {
		t.Fatalf("%s: affected %d rows, reference says %d", sql, got, want)
	}
	return got
}

// refDML applies one UPDATE/DELETE to the reference oracle only.
func (f *fixture) refDML(t testing.TB, sql string) int {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	switch st := stmt.(type) {
	case *sqlparse.Update:
		d, err := query.ResolveUpdate(f.sch, st, sql)
		if err != nil {
			t.Fatalf("resolve %q: %v", sql, err)
		}
		return f.ref.Update(d)
	case *sqlparse.Delete:
		d, err := query.ResolveDelete(f.sch, st, sql)
		if err != nil {
			t.Fatalf("resolve %q: %v", sql, err)
		}
		return f.ref.Delete(d)
	}
	t.Fatalf("%q is not a DML statement", sql)
	return 0
}

// checkQuery compares one SELECT against the reference oracle.
func (f *fixture) checkQuery(t testing.TB, sql, when string) {
	t.Helper()
	want := f.refAnswer(t, sql)
	res, err := f.db.Run(sql)
	if err != nil {
		t.Fatalf("%s: %s: %v", when, sql, err)
	}
	if !rowsEqual(res.Rows, want) {
		t.Fatalf("%s: %s: %d rows vs reference %d", when, sql, len(res.Rows), len(want))
	}
}

// randomDML builds a random supported UPDATE or DELETE over the
// synthetic tree. Predicates stay narrow so the fixture is not drained
// of rows halfway through a run.
func randomDML(rng *rand.Rand, cards map[string]int) string {
	tables := []string{"T0", "T1", "T2", "T11", "T12"}
	tb := tables[rng.Intn(len(tables))]
	idPred := func() string {
		lo := rng.Intn(cards[tb])
		return fmt.Sprintf("%s.id >= %d AND %s.id <= %d", tb, lo, tb, lo+rng.Intn(8))
	}
	attrPred := func(col string) string {
		lo := rng.Intn(990)
		return fmt.Sprintf("%s.%s BETWEEN '%010d' AND '%010d'", tb, col, lo, lo+rng.Intn(25))
	}
	val := func() string { return fmt.Sprintf("'%010d'", rng.Intn(testDomain)) }
	switch rng.Intn(6) {
	case 0: // DELETE by id range
		return fmt.Sprintf("DELETE FROM %s WHERE %s", tb, idPred())
	case 1: // DELETE by hidden attribute
		return fmt.Sprintf("DELETE FROM %s WHERE %s", tb, attrPred("h1"))
	case 2: // hidden SET driven by hidden predicate
		return fmt.Sprintf("UPDATE %s SET h2 = %s WHERE %s", tb, val(), attrPred("h3"))
	case 3: // hidden SET driven by id range
		return fmt.Sprintf("UPDATE %s SET h1 = %s, h3 = %s WHERE %s", tb, val(), val(), idPred())
	case 4: // visible SET driven by visible predicate
		return fmt.Sprintf("UPDATE %s SET v1 = %s WHERE %s", tb, val(), attrPred("v2"))
	default: // mixed SET driven by id range (public qualification)
		return fmt.Sprintf("UPDATE %s SET v3 = %s, h1 = %s WHERE %s", tb, val(), val(), idPred())
	}
}

// TestRandomDMLMatchesReference interleaves random UPDATE/DELETE
// statements with random SELECTs, requiring reference-equal answers
// throughout, then compacts every token and requires the same answers
// again from the rebuilt base images.
func TestRandomDMLMatchesReference(t *testing.T) {
	cards := map[string]int{"T0": 900, "T1": 140, "T2": 110, "T11": 40, "T12": 40}
	f := newFixture(t, 97, cards)
	rng := rand.New(rand.NewSource(41))

	var lastChecks []string
	for i := 0; i < 60; i++ {
		f.applyDML(t, randomDML(rng, cards))
		if i%4 != 3 {
			continue
		}
		sql := randomQuery(rng)
		if len(lastChecks) < 8 {
			lastChecks = append(lastChecks, sql)
		}
		f.checkQuery(t, sql, fmt.Sprintf("after %d statements", i+1))
		if f.db.RAM.InUse() != 0 {
			t.Fatalf("after %d statements: secure RAM leak", i+1)
		}
	}

	tok := f.db.Tokens()[0].(*Token)
	if tok.DeltaPages() == 0 {
		t.Fatal("60 DML statements left no delta pages")
	}
	if err := f.db.Compact(context.Background()); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if got := tok.DeltaPages(); got != 0 {
		t.Fatalf("delta still %d pages after compaction", got)
	}
	if tok.Compactions() == 0 {
		t.Fatal("compaction counter did not advance")
	}
	for _, sql := range lastChecks {
		f.checkQuery(t, sql, "post-compaction")
	}
	// And writes keep working against the rebuilt catalog.
	for i := 0; i < 10; i++ {
		f.applyDML(t, randomDML(rng, cards))
	}
	f.checkQuery(t, randomQuery(rng), "post-compaction DML")
}

// TestVisibleUpdateWithHiddenPredicateRejected pins the write-path
// security invariant: applying a visible-column UPDATE tells the
// untrusted store which rows matched, so hidden predicates may not
// qualify it.
func TestVisibleUpdateWithHiddenPredicateRejected(t *testing.T) {
	f := newFixture(t, 7, map[string]int{"T0": 50, "T1": 20, "T2": 20, "T11": 10, "T12": 10})
	_, err := f.db.Run("UPDATE T0 SET v1 = '0000000001' WHERE T0.h1 = '0000000002'")
	if err == nil {
		t.Fatal("visible SET qualified by a hidden predicate was accepted")
	}
	if !errors.Is(err, query.ErrUnsupported) {
		t.Fatalf("unexpected error class: %v", err)
	}
	// The same statement with a public (id) qualification is fine.
	if _, err := f.db.Run("UPDATE T0 SET v1 = '0000000001' WHERE T0.id <= 3"); err != nil {
		t.Fatalf("id-qualified visible UPDATE: %v", err)
	}
	// And so is the hidden-set form of the rejected statement.
	if _, err := f.db.Run("UPDATE T0 SET h2 = '0000000001' WHERE T0.h1 = '0000000002'"); err != nil {
		t.Fatalf("hidden-qualified hidden UPDATE: %v", err)
	}
}

// TestZeroMatchDMLWritesOnePadPage pins the leak argument for write
// volumes: a secure-side statement matching nothing still appends one
// full pad page, so the flash write count cannot reveal the match
// count. A visible-only UPDATE never touches the delta log at all.
func TestZeroMatchDMLWritesOnePadPage(t *testing.T) {
	f := newFixture(t, 3, map[string]int{"T0": 80, "T1": 30, "T2": 30, "T11": 10, "T12": 10})
	tok := f.db.Tokens()[0].(*Token)

	before := tok.DeltaPages()
	res, err := f.db.Run("DELETE FROM T2 WHERE T2.id >= 5000")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].I; n != 0 {
		t.Fatalf("deleted %d rows, want 0", n)
	}
	if got := tok.DeltaPages(); got != before+1 {
		t.Fatalf("zero-match DELETE moved delta from %d to %d pages, want +1", before, got)
	}

	// A one-match hidden UPDATE costs exactly the same one page.
	before = tok.DeltaPages()
	if _, err := f.db.Run("UPDATE T2 SET h1 = '0000000009' WHERE T2.id = 1"); err != nil {
		t.Fatal(err)
	}
	if got := tok.DeltaPages(); got != before+1 {
		t.Fatalf("one-match UPDATE moved delta from %d to %d pages, want +1", before, got)
	}

	// Visible-only DML stays off the token flash entirely.
	before = tok.DeltaPages()
	if _, err := f.db.Run("UPDATE T2 SET v1 = '0000000004' WHERE T2.id <= 2"); err != nil {
		t.Fatal(err)
	}
	if got := tok.DeltaPages(); got != before {
		t.Fatalf("visible-only UPDATE moved delta from %d to %d pages", before, got)
	}
}

// TestConcurrentDMLShardCacheInvalidation races writers on both schema
// trees of a two-token database against readers hammering cacheable
// SELECTs, then checks every read against the reference oracle once the
// writers settle. The two writers touch disjoint trees, so the final
// state is order-independent and the oracle can replay their statements
// sequentially. A stale per-shard version vector — a cached answer
// surviving a write to its shard — shows up as a reference mismatch.
// Run under -race this also exercises the delta/commit/cache paths for
// data races.
func TestConcurrentDMLShardCacheInvalidation(t *testing.T) {
	cards := map[string]int{"T0": 400, "T1": 80, "T2": 60, "T11": 20, "T12": 20, "U0": 300, "U1": 50}
	f := newForestFixtureOpts(t, 23, cards, Options{
		FlashParams:      flash.Params{PageSize: 2048, PagesPerBlock: 16, Blocks: 8192, ReserveBlocks: 4},
		Shards:           2,
		ResultCacheBytes: 1 << 20,
	})

	queries := []string{
		"SELECT T0.id, T0.h1 FROM T0 WHERE T0.h2 < '0000000100'",
		"SELECT T1.v1, T1.h3 FROM T1 WHERE T1.id <= 40",
		"SELECT T0.h2, T1.h1 FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.h2 < '0000000150'",
		"SELECT U0.id, U0.h1 FROM U0 WHERE U0.h3 < '0000000120'",
		"SELECT U0.h2, U1.h1 FROM U0, U1 WHERE U0.fku1 = U1.id AND U1.h1 < '0000000200'",
	}

	tWrites := []string{
		"UPDATE T0 SET h1 = '0000000111' WHERE T0.h2 < '0000000050'",
		"DELETE FROM T1 WHERE T1.id >= 70 AND T1.id <= 74",
		"UPDATE T1 SET h2 = '0000000222' WHERE T1.id >= 10 AND T1.id <= 30",
		"DELETE FROM T0 WHERE T0.h3 BETWEEN '0000000000' AND '0000000020'",
		"UPDATE T0 SET h2 = '0000000033' WHERE T0.id >= 100 AND T0.id <= 160",
	}
	uWrites := []string{
		"UPDATE U0 SET h3 = '0000000444' WHERE U0.h1 < '0000000060'",
		"DELETE FROM U1 WHERE U1.id >= 40 AND U1.id <= 44",
		"UPDATE U1 SET h1 = '0000000555' WHERE U1.id >= 5 AND U1.id <= 25",
		"DELETE FROM U0 WHERE U0.h2 BETWEEN '0000000000' AND '0000000015'",
	}

	var wg sync.WaitGroup
	errc := make(chan error, 2+len(queries))
	for _, writes := range [][]string{tWrites, uWrites} {
		wg.Add(1)
		go func(stmts []string) {
			defer wg.Done()
			for _, sql := range stmts {
				if _, err := f.db.Run(sql); err != nil {
					errc <- fmt.Errorf("%s: %w", sql, err)
					return
				}
			}
		}(writes)
	}
	for _, sql := range queries {
		wg.Add(1)
		go func(sql string) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if _, err := f.db.Run(sql); err != nil {
					errc <- fmt.Errorf("%s: %w", sql, err)
					return
				}
			}
		}(sql)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Replay the writers on the oracle (disjoint trees commute) and
	// require the settled answers — cached or not — to match it.
	for _, sql := range append(append([]string{}, tWrites...), uWrites...) {
		f.refDML(t, sql)
	}
	for _, sql := range queries {
		f.checkQuery(t, sql, "after concurrent writers")
	}
	if inv := f.db.CacheStats().Invalidations; inv == 0 {
		t.Fatal("concurrent writers never invalidated a cached result")
	}

	// Compaction on both tokens must not change any settled answer.
	if err := f.db.Compact(context.Background()); err != nil {
		t.Fatalf("compact: %v", err)
	}
	for _, sql := range queries {
		f.checkQuery(t, sql, "post-compaction")
	}
}

// TestExplainDML renders a DML plan without executing it.
func TestExplainDML(t *testing.T) {
	f := newFixture(t, 9, map[string]int{"T0": 50, "T1": 20, "T2": 20, "T11": 10, "T12": 10})
	stmt, err := f.db.Prepare("DELETE FROM T1 WHERE T1.h1 = '0000000004'", f.db.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := stmt.Plan().Explain()
	if !strings.Contains(out, "delete from") {
		t.Fatalf("DML explain missing canonical text:\n%s", out)
	}
	if f.db.Totals().Queries != 0 {
		t.Fatal("EXPLAIN executed the statement")
	}
}
