package exec

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"ghostdb/internal/flash"
	"ghostdb/internal/index"
	"ghostdb/internal/metrics"
	"ghostdb/internal/query"
	"ghostdb/internal/sched"
	"ghostdb/internal/schema"
	"ghostdb/internal/sqlparse"
	"ghostdb/internal/store"
)

// This file is the plan phase of the executor: everything that can be
// decided *before* a query session is admitted. GhostDB's security model
// makes plan time the only safe place to commit to a memory footprint —
// once a session holds its grant, degrading mid-run would either fail the
// query (the old `DefaultSessionMinBuffers` floor could die with
// ram.ErrExhausted) or leak timing back into admission. So, ObliDB-style,
// the planner selects every operator variant and derives the plan's true
// minimum RAM footprint up front; admission then requests exactly that
// floor and the session binds its chunk sizes from the grant it actually
// received.

// ErrBudgetTooSmall marks a plan whose derived minimum footprint exceeds
// the configured secure-RAM budget: the query is rejected cleanly at
// admission time, before anything has run. It wraps the scheduler's
// sentinel, which in turn wraps ram.ErrExhausted.
var ErrBudgetTooSmall = errors.New("exec: plan footprint exceeds the RAM budget")

// ErrOverloaded is the scheduler's load-shed sentinel re-exported at the
// engine boundary: a statement rejected at arrival because its token's
// predicted admission wait exceeded Options.MaxQueueWait. The statement
// held nothing and can simply be retried later; servers surface it as
// HTTP 429.
var ErrOverloaded = sched.ErrOverloaded

// TablePlan is the planned treatment of one table carrying a visible
// selection.
type TablePlan struct {
	Table    string
	TableIdx int
	// Strategy is the chosen visible/hidden combination strategy. For the
	// anchor table Direct is set instead: its id list joins the Merge
	// directly and needs no strategy.
	Strategy Strategy
	Direct   bool
	// VisCount / Rows / SV are the visible selection's cardinality,
	// the table cardinality and their ratio (the selectivity that drove
	// the strategy choice), counted on Untrusted at plan time.
	VisCount int
	Rows     int
	SV       float64
	// Cross reports whether the Cross optimization (§3.3) applies.
	Cross bool
}

// Footprint is the plan's RAM needs in whole buffers, broken down by
// pipeline phase. Phases run one after the other, so the plan's floor is
// the maximum phase footprint, not the sum.
type Footprint struct {
	// QEPSJ phase, direct mode: one writer per stored column + one anchor
	// writer, one SKT reader when descendant columns are stored, and the
	// Merge's stream/reduction buffers, all held simultaneously.
	StoreWriters int
	SKTReader    int
	Merge        int
	QEPSJ        int // StoreWriters + SKTReader + Merge (direct mode)
	// Shared-stage mode: under a tight grant the column writers collapse
	// into ONE staged spill buffer (survivor tuples written row-major),
	// and a post-pipeline distribution pass rewrites them column by
	// column. QEPSJShared = 1 + SKTReader + Merge is the pipeline's
	// shared-mode footprint; Distribute (3: spill reader spanning a page
	// boundary + one column writer) is the pass that follows. The floor
	// uses these; a session granted the direct footprint binds direct
	// writers and skips the extra pass.
	QEPSJShared int
	Distribute  int
	// Cross phase: stream buffers for intersecting a visible id list
	// with same-level hidden sublists (runs before the QEPSJ pipeline is
	// reserved).
	Cross int
	// PostSelect phase: staging chunk + column reader + position writer
	// (runs after the QEPSJ pipeline is released).
	PostSelect int
	// MJoin / FinalJoin are the projection phase peaks; Projection is
	// their maximum (or the brute-force reader plan when forced).
	MJoin      int
	FinalJoin  int
	Projection int
}

// Plan is the inspectable product of Prepare: per-table strategies, the
// projector, the derived admission floor and a coarse cost estimate. A
// Plan is immutable once built.
type Plan struct {
	SQL    string
	Anchor string
	// FastPath marks single-table all-visible queries, which execute
	// entirely on Untrusted and touch no secure RAM beyond the session
	// minimum of one buffer.
	FastPath  bool
	CountOnly bool
	Insert    bool // non-SELECT plan (INSERT admission sizing)
	DML       bool // UPDATE/DELETE plan (delta-log admission sizing)
	Tables    []TablePlan
	Projector Projector
	Footprint Footprint
	// MinBuffers is the derived admission floor: the smallest grant under
	// which every operator of this plan can run to completion (with more
	// passes, never with a mid-run ram.ErrExhausted). WantBuffers is the
	// elastic admission target the plan can profitably use.
	MinBuffers   int
	WantBuffers  int
	TotalBuffers int // the configured budget, for context
	BufferBytes  int
	// EstPageReads/EstPageWrites/EstCost form a coarse, plan-time cost
	// estimate (simulated time under the Table 1 model). It exists to
	// rank plans and feed EXPLAIN; measured Stats are the ground truth.
	EstPageReads  int
	EstPageWrites int
	EstCost       time.Duration
	// HiddenSel lists the per-hidden-predicate selectivity estimates the
	// cost model used, from the secure-side index statistics kept on the
	// token (never shipped; only this derived scalar appears here and in
	// EXPLAIN). Falls back to the paper's fixed 10% when no index covers
	// a predicate.
	HiddenSel []HiddenSelEst

	// Shard is the token ordinal this plan runs on (-1 for a cross-token
	// scatter plan). Parts holds the per-token sub-plans of a scatter
	// plan, in sub-query order; it is nil for single-token plans.
	Shard int
	Parts []*Plan

	// Execution-side bindings (not part of the public surface).
	tok         *Token
	strategies  map[int]Strategy
	mjoinFixed  map[int]int // per-table fixed reader buffers in MJoin
	mjoinMinVal map[int]int // per-table minimum batch buffers
}

// HiddenSelEst is one hidden predicate's estimated selectivity in the
// plan's cost model.
type HiddenSelEst struct {
	Table string
	Col   string
	// Sel is the estimated fraction of the table the predicate keeps.
	Sel float64
	// FromIndex reports whether the estimate came from the secure-side
	// index statistics (false = the fixed 10% fallback).
	FromIndex bool
}

// Strategies returns a fresh copy of the planned per-table strategies,
// keyed by table index; the executor mutates its copy when operators
// degrade (e.g. an infeasible Bloom filter falling back to No-Filter).
func (p *Plan) Strategies() map[int]Strategy {
	out := make(map[int]Strategy, len(p.strategies))
	for ti, s := range p.strategies {
		out[ti] = s
	}
	return out
}

// Binding fixes one admitted session's operator variants from the grant
// it actually received: staging chunk counts, batch sizes and fan-ins are
// picked here, once, instead of being discovered through mid-run
// reservation outcomes. All values are whole buffers.
type Binding struct {
	GrantBuffers int
	// StoreDirect selects the store pipeline variant: true binds one
	// writer per result column (no extra pass); false binds the shared
	// staged spill buffer plus the distribution pass — chosen when the
	// grant cannot hold the direct writer set.
	StoreDirect bool
	// MergeFanIn caps the streams one QEPSJ sublist-reduction pass opens
	// (the pipeline's writers and SKT reader are already spoken for).
	MergeFanIn int
	// CrossFanIn caps reduction passes that run before the pipeline is
	// reserved (cross intersections), when the whole grant is free.
	CrossFanIn int
	// MergeReserve is kept free of Bloom filters so the Merge always has
	// its reduction workspace: max(planned run groups, 3).
	MergeReserve int
	// PostSelectStage / SortChunk are the staging areas of Post-Select
	// and the column sort: the grant minus their fixed reader/writer.
	PostSelectStage int
	SortChunk       int
	// MJoinBatch is the per-table batch staging cap: the grant minus the
	// table's fixed readers ("RAM capacity minus two buffers" in §4,
	// generalized to the table's true reader set).
	MJoinBatch map[int]int
	// StoreBatch is the number of anchor ids the Store pipeline stages
	// per batch: one RAM buffer's worth of ids, so the staging area is
	// covered by the pipeline's reserved buffer instead of a literal.
	StoreBatch int
	// PrefetchPages is the read-ahead window full-file spool scans may
	// double-buffer (store.SeqReader.SetReadAhead): the grant buffers
	// left once the scan's fixed reader and writer are spoken for,
	// capped at 4. Purely grant-derived — by design it can never encode
	// a hidden match count, which the prefetchdepth leaklint check
	// enforces at every SetReadAhead call site. Below 2 the scans stay
	// in classic one-page mode.
	PrefetchPages int
}

// Bind derives the session's operator binding from its actual grant.
func (p *Plan) Bind(grant int) *Binding {
	b := &Binding{GrantBuffers: grant, MJoinBatch: map[int]int{}}
	// Direct column writers when the grant can hold them alongside the
	// Merge; otherwise the shared staged spill buffer (whose existence is
	// what pushed the floor below the direct footprint).
	b.StoreDirect = p.Footprint.Distribute == 0 || grant >= p.Footprint.QEPSJ
	pipe := p.Footprint.StoreWriters + p.Footprint.SKTReader
	if !b.StoreDirect {
		pipe = 1 + p.Footprint.SKTReader
	}
	b.MergeFanIn = maxInt(grant-pipe-1, 2)
	b.CrossFanIn = maxInt(grant-1, 2)
	b.MergeReserve = p.Footprint.Merge
	b.PostSelectStage = maxInt(grant-2, 1)
	b.SortChunk = maxInt(grant-2, 1)
	for ti, fixed := range p.mjoinFixed {
		b.MJoinBatch[ti] = maxInt(grant-fixed, p.mjoinMinVal[ti])
	}
	b.StoreBatch = maxInt(p.BufferBytes/store.IDBytes, 16)
	b.PrefetchPages = maxInt(grant-2, 0)
	if b.PrefetchPages > 4 {
		b.PrefetchPages = 4
	}
	return b
}

// visibleOnly reports whether a query touches no hidden data at all: a
// single-table query whose predicates and projections are all visible
// executes entirely on Untrusted (Secure only relays).
func visibleOnly(sch *schema.Schema, q *query.Query) bool {
	if len(q.Tables) != 1 {
		return false
	}
	t := sch.Tables[q.Tables[0]]
	for _, p := range q.Preds {
		if p.ColIdx == query.IDCol {
			continue
		}
		if t.Columns[p.ColIdx].Hidden {
			return false
		}
	}
	for _, p := range q.Projections {
		if p.ColIdx != query.IDCol && t.Columns[p.ColIdx].Hidden {
			return false
		}
	}
	return true
}

// projectedVisibleColsOf returns, per table, the visible column positions
// in the projection list (sorted, deduplicated).
func projectedVisibleColsOf(sch *schema.Schema, q *query.Query) map[int][]int {
	out := map[int][]int{}
	seen := map[[2]int]bool{}
	for _, p := range q.Projections {
		if p.ColIdx == query.IDCol {
			continue
		}
		col := sch.Tables[p.Table].Columns[p.ColIdx]
		if col.Hidden || seen[[2]int{p.Table, p.ColIdx}] {
			continue
		}
		seen[[2]int{p.Table, p.ColIdx}] = true
		// Keep declaration order (stable within a table).
		lst := out[p.Table]
		pos := len(lst)
		for i, c := range lst {
			if c > p.ColIdx {
				pos = i
				break
			}
		}
		lst = append(lst[:pos:pos], append([]int{p.ColIdx}, lst[pos:]...)...)
		out[p.Table] = lst
	}
	return out
}

// projectedHiddenColsOf returns, per non-anchor table, the hidden column
// positions the projection needs (declaration order, deduplicated).
func projectedHiddenColsOf(sch *schema.Schema, q *query.Query) map[int][]int {
	out := map[int][]int{}
	for _, p := range q.Projections {
		if p.ColIdx == query.IDCol || p.Table == q.Anchor {
			continue
		}
		col := sch.Tables[p.Table].Columns[p.ColIdx]
		if col.Hidden && !containsInt(out[p.Table], p.ColIdx) {
			out[p.Table] = append(out[p.Table], p.ColIdx)
		}
	}
	return out
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// indexForPred returns the climbing index evaluating a hidden predicate
// (the token's: index structures live on the token owning the table).
// The catalog is read through the mu-guarded accessor because compaction
// swaps it and plan-time callers run outside the execution slot.
func (tok *Token) indexForPred(p query.Pred) *index.Climbing {
	cat := tok.catalog()
	if p.ColIdx == query.IDCol {
		ci, _ := cat.IDIndex(p.Table)
		return ci
	}
	ci, _ := cat.AttrIndex(p.Table, p.ColIdx)
	return ci
}

// crossAvailableFor reports whether the Cross optimization applies to a
// table: a hidden selection on the same table or on one of its
// descendants (whose climbing index carries this table's level), §3.3.
func (db *DB) crossAvailableFor(tok *Token, q *query.Query, ti int) bool {
	return db.crossCandidates(tok, q, ti) > 0
}

// crossCandidates counts the hidden predicates that could participate in
// the Cross optimization at table ti (an upper bound on the sublist
// groups the cross intersection opens at once).
func (db *DB) crossCandidates(tok *Token, q *query.Query, ti int) int {
	n := 0
	for _, p := range q.HiddenPreds() {
		if p.Table == ti {
			if p.ColIdx == query.IDCol {
				continue // id predicate on ti itself: cheap at anchor level
			}
			n++
			continue
		}
		if db.Sch.IsAncestorOf(ti, p.Table) {
			if ci := tok.indexForPred(p); ci != nil {
				if _, ok := ci.LevelOf(ti); ok {
					n++
				}
			}
		}
	}
	return n
}

// strategyNeedsExact reports whether a strategy defers exact visible
// verification to projection time.
func strategyNeedsExact(s Strategy) bool {
	switch s {
	case StratPost, StratCrossPost, StratNoFilter:
		return true
	}
	return false
}

// PlanQuery builds the execution plan for a resolved query under a
// per-query configuration: it chooses per-table strategies from
// plan-time selectivity counts, derives the plan's true minimum RAM
// footprint (the admission floor) and estimates its cost. Nothing is
// admitted, metered or transferred; counts come from Untrusted's own
// data, which the query text already exposes.
func (db *DB) PlanQuery(q *query.Query, cfg QueryConfig) (*Plan, error) {
	if !db.loaded {
		return nil, errors.New("exec: database not loaded")
	}
	if len(q.Parts) > 0 {
		return db.planScatter(q, cfg)
	}
	tok, err := db.tokenForTables(q.Tables)
	if err != nil {
		return nil, err
	}
	bufSize := tok.RAM.BufferSize()
	p := &Plan{
		SQL:          q.SQL,
		Anchor:       db.Sch.Tables[q.Anchor].Name,
		CountOnly:    q.CountOnly,
		Projector:    cfg.Projector,
		TotalBuffers: tok.RAM.Buffers(),
		BufferBytes:  bufSize,
		Shard:        tok.id,
		tok:          tok,
		strategies:   map[int]Strategy{},
		mjoinFixed:   map[int]int{},
		mjoinMinVal:  map[int]int{},
	}
	if visibleOnly(db.Sch, q) {
		// Untrusted answers alone; the session needs only the nominal
		// one-buffer minimum and holds no RAM worth speaking of.
		p.FastPath = true
		p.MinBuffers = 1
		p.WantBuffers = 1
		p.estimate(db, q)
		return p, nil
	}
	p.WantBuffers = p.TotalBuffers // Bloom filters calibrate to spare RAM (§5)

	// ---- Per-table strategies from plan-time selectivity counts.
	visPreds := q.VisiblePreds()
	var visTables []int
	for ti := range visPreds {
		visTables = append(visTables, ti)
	}
	sort.Ints(visTables)
	for _, ti := range visTables {
		n, err := tok.Untr.CountVis(ti, visPreds[ti])
		if err != nil {
			return nil, err
		}
		rows := tok.Rows(ti)
		sV := 1.0
		if rows > 0 {
			sV = float64(n) / float64(rows)
		}
		tp := TablePlan{
			Table:    db.Sch.Tables[ti].Name,
			TableIdx: ti,
			VisCount: n,
			Rows:     rows,
			SV:       sV,
		}
		if ti == q.Anchor {
			tp.Direct = true // anchor id lists merge directly: always exact
			p.Tables = append(p.Tables, tp)
			continue
		}
		cross := db.crossAvailableFor(tok, q, ti)
		s := cfg.Strategy
		if s == StratAuto {
			// The selectivity thresholds observed in §6.
			switch {
			case cross && sV <= 0.1:
				s = StratCrossPre
			case cross:
				s = StratCrossPost
			case sV <= 0.05:
				s = StratPre
			case sV <= 0.5:
				s = StratPost
			default:
				s = StratNoFilter
			}
		}
		// Forced cross strategies degrade gracefully when no same-level
		// hidden selection exists.
		if !cross {
			switch s {
			case StratCrossPre:
				s = StratPre
			case StratCrossPost:
				s = StratPost
			case StratCrossPostSelect:
				s = StratPostSelect
			}
		}
		tp.Strategy, tp.Cross = s, cross
		p.strategies[ti] = s
		p.Tables = append(p.Tables, tp)
	}

	// ---- Derived sets: which tables need a QEPSJ result column, which
	// are verified exactly at projection time, which get a Post-Select
	// pass. These mirror the executor, so the floor below is the memory
	// the run will actually claim.
	needed := map[int]bool{}
	for _, ti := range q.ProjTables() {
		if ti != q.Anchor {
			needed[ti] = true
		}
	}
	exact := map[int]bool{}
	postSel := map[int]bool{}
	for ti, s := range p.strategies {
		if strategyNeedsExact(s) {
			exact[ti] = true
			needed[ti] = true
		}
		if s == StratPostSelect || s == StratCrossPostSelect {
			postSel[ti] = true
			needed[ti] = true
		}
	}

	// ---- QEPSJ phase footprint: writers + SKT reader + Merge.
	//
	// Merge run groups (upper bound — cross absorption only removes
	// groups): one per Pre/Cross-Pre table, one per hidden predicate that
	// is not a free anchor-id filter. Each group can be reduced to a
	// single sublist but never below it, so the Merge needs one stream
	// buffer per group and, when any reduction may be required, the
	// 3-buffer reduction workspace (2 streams + 1 spill writer).
	nGroups := 0
	for _, s := range p.strategies {
		if s == StratPre || s == StratCrossPre {
			nGroups++
		}
	}
	for _, hp := range q.HiddenPreds() {
		if hp.Table == q.Anchor && hp.ColIdx == query.IDCol {
			continue // free filter on the ids flowing by
		}
		nGroups++
	}
	fp := &p.Footprint
	fp.StoreWriters = len(needed) + 1
	// The SKT reader is reserved for every multi-table query, not only
	// when descendant columns are stored: the join may need it to check
	// non-anchor tombstones after a DELETE. The floor must stay a pure
	// function of the query shape — reserving it only when tombstones
	// exist would make admission data-dependent (a leak) and could
	// exhaust a floor-sized grant mid-run.
	if len(needed) > 0 || len(q.Tables) > 1 {
		fp.SKTReader = 1
	}
	if nGroups > 0 {
		fp.Merge = maxInt(nGroups, 3)
	}
	fp.QEPSJ = fp.StoreWriters + fp.SKTReader + fp.Merge
	// Shared-stage floor: with stored columns the writers can collapse
	// into one staged spill buffer; the post-pipeline distribution pass
	// needs a 2-buffer spill reader (tuples may span a page boundary)
	// plus one column writer.
	fp.QEPSJShared = fp.QEPSJ
	if len(needed) > 0 {
		fp.QEPSJShared = 1 + fp.SKTReader + fp.Merge
		fp.Distribute = 3
	}

	// ---- Cross phase (runs before the pipeline is reserved): one stream
	// per crossing sublist group plus the reduction workspace.
	for ti, s := range p.strategies {
		switch s {
		case StratCrossPre, StratCrossPost, StratCrossPostSelect:
			if f := maxInt(db.crossCandidates(tok, q, ti), 3); f > fp.Cross {
				fp.Cross = f
			}
		}
	}

	// ---- Post-Select phase (runs after the pipeline is released):
	// staging chunk + column reader + position writer; smaller staging
	// only means more re-scans (Figure 11).
	if len(postSel) > 0 {
		fp.PostSelect = 3
	}

	// ---- Projection phase.
	projVis := projectedVisibleColsOf(db.Sch, q)
	hidProj := projectedHiddenColsOf(db.Sch, q)
	projTables := map[int]bool{}
	for _, ti := range q.ProjTables() {
		if ti != q.Anchor {
			projTables[ti] = true
		}
	}
	for ti := range exact {
		projTables[ti] = true
	}
	if cfg.Projector == ProjectBruteForce {
		// One buffer per open column reader: the anchor plus every table
		// that must be looked at.
		fp.Projection = 1 + len(projTables)
	} else {
		anchorHidden := false
		for _, pr := range q.Projections {
			if pr.Table == q.Anchor && pr.ColIdx != query.IDCol &&
				db.Sch.Tables[q.Anchor].Columns[pr.ColIdx].Hidden {
				anchorHidden = true
			}
		}
		idTables := map[int]bool{}
		for _, pr := range q.Projections {
			if pr.Table != q.Anchor && pr.ColIdx == query.IDCol {
				idTables[pr.Table] = true
			}
		}
		nTps := 0
		for ti := range projTables {
			visW, hidW := 0, 0
			for _, c := range projVis[ti] {
				visW += db.Sch.Tables[ti].Columns[c].EncodedWidth()
			}
			for _, c := range hidProj[ti] {
				hidW += db.Sch.Tables[ti].Columns[c].EncodedWidth()
			}
			if visW+hidW == 0 && !exact[ti] {
				continue // id-only projection: the QEPSJ column is enough
			}
			nTps++
			// MJoin fixed readers: σVH run + QEPSJ column + output writer,
			// plus the spool cursor and hidden-image reader the widths
			// require; the batch staging area takes what is left.
			fixed := 3
			if visW > 0 {
				fixed++
			}
			if hidW > 0 {
				fixed++
			}
			minBatch := (4 + visW + hidW + bufSize - 1) / bufSize
			p.mjoinFixed[ti] = fixed
			p.mjoinMinVal[ti] = minBatch
			if f := fixed + minBatch; f > fp.MJoin {
				fp.MJoin = f
			}
		}
		// Final join fixed readers: anchor column, anchor spool, anchor
		// hidden image, one per projected id column — plus one tuple
		// cursor per joined table (batch runs are consolidated first, a
		// pass that needs the 3-buffer reduction workspace).
		fixed := 1
		if len(projVis[q.Anchor]) > 0 {
			fixed++
		}
		if anchorHidden {
			fixed++
		}
		fixed += len(idTables)
		fp.FinalJoin = fixed + nTps
		if nTps > 0 {
			fp.FinalJoin = maxInt(fp.FinalJoin, 3)
		}
		fp.Projection = maxInt(fp.MJoin, fp.FinalJoin)
	}

	p.MinBuffers = 1
	for _, f := range []int{fp.QEPSJShared, fp.Distribute, fp.Cross, fp.PostSelect, fp.Projection} {
		if f > p.MinBuffers {
			p.MinBuffers = f
		}
	}
	p.estimate(db, q)
	return p, nil
}

// planInsert sizes the admission request of an INSERT from its actual
// footprint: the encoded hidden record plus the SKT row it stages while
// maintaining the partitions and indexes (instead of the old hardcoded
// 1-buffer request, which under-declared wide hidden codecs).
func (db *DB) planInsert(ins sqlparse.Insert) (*Plan, error) {
	if !db.loaded {
		return nil, errors.New("exec: database not loaded")
	}
	t, ok := db.Sch.Lookup(ins.Table)
	if !ok {
		return nil, fmt.Errorf("exec: unknown table %q", ins.Table)
	}
	tok := db.TokenOf(t.Index)
	// The footprint was derived at load time: plan-time code must not
	// touch the hidden images (slotdiscipline — planning runs outside
	// the token's execution slot).
	bytes := tok.insertFootprint(t.Index)
	bufSize := tok.RAM.BufferSize()
	min := (bytes + bufSize - 1) / bufSize
	if min < 1 {
		min = 1
	}
	return &Plan{
		SQL:          ins.Table, // no SELECT text; table name for display
		Insert:       true,
		MinBuffers:   min,
		WantBuffers:  min,
		TotalBuffers: tok.RAM.Buffers(),
		BufferBytes:  bufSize,
		Shard:        tok.id,
		tok:          tok,
	}, nil
}

// estimate fills the plan's coarse cost model: expected page traffic
// under the Table 1 parameters. It exists to rank plans in EXPLAIN
// output; measured Stats remain the ground truth. Hidden selectivities
// come from the per-index statistics each token keeps beside its
// climbing indexes (equi-depth key boundaries, maintained at build and
// insert time): the raw statistics never leave the token — the planner
// receives only the derived scalar per predicate, which EXPLAIN then
// shows. Predicates with no covering index fall back to the paper's
// fixed 10% sH.
func (p *Plan) estimate(db *DB, q *query.Query) {
	idsPerPage := p.BufferBytes / store.IDBytes
	if idsPerPage < 1 {
		idsPerPage = 1
	}
	anchorRows := float64(db.Rows(q.Anchor))
	sel := 1.0
	reads, writes := 0.0, 0.0
	for _, tp := range p.Tables {
		sel *= tp.SV
		switch tp.Strategy {
		case StratPre, StratCrossPre:
			// One id-index climb per visible id (≈ the tree height).
			reads += float64(tp.VisCount) * 3
		}
	}
	for _, hp := range q.HiddenPreds() {
		rows := float64(db.Rows(hp.Table))
		hs := p.hiddenSelOf(db, hp)
		sel *= hs
		// Index descent plus the matching sublist pages.
		reads += 3 + rows*hs/float64(idsPerPage)
	}
	est := anchorRows * sel
	if p.FastPath {
		p.EstCost = 0
		return
	}
	cols := float64(p.Footprint.StoreWriters)
	// SJoin reads one SKT row per surviving anchor id (random access);
	// Store writes the materialized columns; Project re-reads them.
	if p.Footprint.SKTReader > 0 {
		reads += est
	}
	writes += est * cols / float64(idsPerPage)
	reads += 2 * est * cols / float64(idsPerPage)
	p.EstPageReads = int(reads)
	p.EstPageWrites = int(writes)
	model := db.opts.Model
	if model == (metrics.Model{}) {
		model = metrics.DefaultModel()
	}
	p.EstCost = model.IOTime(metrics.Sample{Flash: flash.Counters{
		PageReads:  uint64(p.EstPageReads),
		PageWrites: uint64(p.EstPageWrites),
	}})
}

// hiddenSelOf estimates one hidden predicate's selectivity for the cost
// model and records the estimate (and its provenance) on the plan. Id
// predicates are computed exactly — identifiers are dense 0..rows-1, so
// the literal fixes the fraction; attribute predicates consult the
// token-side index statistics; anything uncovered falls back to the
// paper's fixed 10%.
func (p *Plan) hiddenSelOf(db *DB, hp query.Pred) float64 {
	const fallback = 0.1
	t := db.Sch.Tables[hp.Table]
	est := HiddenSelEst{Table: t.Name, Sel: fallback}
	if hp.ColIdx == query.IDCol {
		est.Col = "id"
		if rows := db.Rows(hp.Table); rows > 0 {
			est.Sel, est.FromIndex = idPredSel(hp, rows), true
		}
	} else {
		est.Col = t.Columns[hp.ColIdx].Name
		if sel, ok := attrPredSel(p.tok, hp, t.Columns[hp.ColIdx]); ok {
			est.Sel, est.FromIndex = sel, true
		}
	}
	if est.Sel < 0 {
		est.Sel = 0
	}
	if est.Sel > 1 {
		est.Sel = 1
	}
	p.HiddenSel = append(p.HiddenSel, est)
	return est.Sel
}

// idPredSel computes an id predicate's exact selectivity over the dense
// identifier space 0..rows-1.
func idPredSel(hp query.Pred, rows int) float64 {
	n := float64(rows)
	clamp := func(v int64) float64 {
		if v < 0 {
			return 0
		}
		if v > int64(rows) {
			return n
		}
		return float64(v)
	}
	switch hp.Op {
	case sqlparse.OpLt:
		return clamp(hp.Lo.I) / n
	case sqlparse.OpLe:
		return clamp(hp.Lo.I+1) / n
	case sqlparse.OpGt:
		return (n - clamp(hp.Lo.I+1)) / n
	case sqlparse.OpGe:
		return (n - clamp(hp.Lo.I)) / n
	case sqlparse.OpEq:
		if hp.Lo.I >= 0 && hp.Lo.I < int64(rows) {
			return 1 / n
		}
		return 0
	case sqlparse.OpNe:
		if hp.Lo.I >= 0 && hp.Lo.I < int64(rows) {
			return (n - 1) / n
		}
		return 1
	case sqlparse.OpBetween:
		lo, hi := clamp(hp.Lo.I), clamp(hp.Hi.I+1)
		if hi < lo {
			return 0
		}
		return (hi - lo) / n
	}
	return 0.1
}

// attrPredSel estimates an attribute predicate from the statistics the
// token keeps beside the attribute's climbing index.
func attrPredSel(tok *Token, hp query.Pred, col schema.Column) (float64, bool) {
	ci, ok := tok.catalog().AttrIndex(hp.Table, hp.ColIdx)
	if !ok {
		return 0, false
	}
	w := col.EncodedWidth()
	lo, err := encodePredKey(w, hp.Lo)
	if err != nil {
		return 0, false
	}
	below, ok := ci.EstimateFracBelow(lo)
	if !ok {
		return 0, false
	}
	eq, _ := ci.EstimateFracEq()
	switch hp.Op {
	case sqlparse.OpLt:
		return below, true
	case sqlparse.OpLe:
		return below + eq, true
	case sqlparse.OpGt:
		return 1 - below - eq, true
	case sqlparse.OpGe:
		return 1 - below, true
	case sqlparse.OpEq:
		return eq, true
	case sqlparse.OpNe:
		return 1 - eq, true
	case sqlparse.OpBetween:
		hi, err := encodePredKey(w, hp.Hi)
		if err != nil {
			return 0, false
		}
		belowHi, ok := ci.EstimateFracBelow(hi)
		if !ok {
			return 0, false
		}
		return belowHi + eq - below, true
	}
	return 0, false
}

// Explain renders the plan for humans: per-table strategies, the
// footprint derivation, the admission request and the cost estimate.
func (p *Plan) Explain() string {
	var b strings.Builder
	if p.Insert {
		fmt.Fprintf(&b, "plan: INSERT INTO %s\n", p.SQL)
		fmt.Fprintf(&b, "  admission: min %d of %d buffers (%d B each) — hidden record + SKT row staging\n",
			p.MinBuffers, p.TotalBuffers, p.BufferBytes)
		return b.String()
	}
	if p.DML {
		fmt.Fprintf(&b, "plan: %s\n", p.SQL)
		fmt.Fprintf(&b, "  token: %d\n", p.Shard)
		fmt.Fprintf(&b, "  admission: min %d of %d buffers (%d B each) — match scan + row staging + delta append\n",
			p.MinBuffers, p.TotalBuffers, p.BufferBytes)
		return b.String()
	}
	fmt.Fprintf(&b, "plan: %s\n", p.SQL)
	if len(p.Parts) > 0 {
		fmt.Fprintf(&b, "  scatter: %d per-token sub-plans, cross-product merge on the untrusted side\n",
			len(p.Parts))
		for i, sub := range p.Parts {
			fmt.Fprintf(&b, "  -- part %d (token %d) --\n", i, sub.Shard)
			for _, line := range strings.Split(strings.TrimRight(sub.Explain(), "\n"), "\n") {
				fmt.Fprintf(&b, "  %s\n", line)
			}
		}
		fmt.Fprintf(&b, "  estimated cost: ~%v simulated I/O on the critical path (tokens run in parallel)\n",
			p.EstCost.Round(10*time.Microsecond))
		return b.String()
	}
	fmt.Fprintf(&b, "  token: %d\n", p.Shard)
	fmt.Fprintf(&b, "  anchor: %s", p.Anchor)
	if p.FastPath {
		b.WriteString("  (visible-only fast path: Untrusted answers, Secure relays)\n")
	} else {
		b.WriteString("\n")
	}
	if len(p.Tables) > 0 {
		b.WriteString("  visible selections:\n")
		for _, tp := range p.Tables {
			if tp.Direct {
				fmt.Fprintf(&b, "    %-12s direct anchor merge  sV=%.3f (%d of %d rows)\n",
					tp.Table, tp.SV, tp.VisCount, tp.Rows)
				continue
			}
			cross := ""
			if tp.Cross {
				cross = "  [cross available]"
			}
			fmt.Fprintf(&b, "    %-12s %-18v sV=%.3f (%d of %d rows)%s\n",
				tp.Table, tp.Strategy, tp.SV, tp.VisCount, tp.Rows, cross)
		}
	}
	if len(p.HiddenSel) > 0 {
		b.WriteString("  hidden selectivity estimates (token-side index stats; raw stats never leave the token):\n")
		for _, h := range p.HiddenSel {
			src := "index stats"
			if !h.FromIndex {
				src = "fixed 10% fallback"
			}
			fmt.Fprintf(&b, "    %s.%-10s ~%.3f  [%s]\n", h.Table, h.Col, h.Sel, src)
		}
	}
	if !p.FastPath {
		fmt.Fprintf(&b, "  projector: %v\n", p.Projector)
		fp := p.Footprint
		fmt.Fprintf(&b, "  footprint (buffers): QEPSJ %d (%d writers + %d SKT + %d merge)",
			fp.QEPSJ, fp.StoreWriters, fp.SKTReader, fp.Merge)
		if fp.Distribute > 0 && fp.QEPSJShared < fp.QEPSJ {
			fmt.Fprintf(&b, " [shared-stage floor %d + distribute %d]", fp.QEPSJShared, fp.Distribute)
		}
		if fp.Cross > 0 {
			fmt.Fprintf(&b, " · cross %d", fp.Cross)
		}
		if fp.PostSelect > 0 {
			fmt.Fprintf(&b, " · post-select %d", fp.PostSelect)
		}
		fmt.Fprintf(&b, " · projection %d", fp.Projection)
		if fp.MJoin > 0 || fp.FinalJoin > 0 {
			fmt.Fprintf(&b, " (mjoin %d, final join %d)", fp.MJoin, fp.FinalJoin)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "  admission: min %d of %d buffers (%d B each), want %d\n",
		p.MinBuffers, p.TotalBuffers, p.BufferBytes, p.WantBuffers)
	if p.MinBuffers > p.TotalBuffers {
		b.WriteString("  !! floor exceeds the configured budget: the query will be rejected at admission\n")
	}
	fmt.Fprintf(&b, "  estimated cost: ~%v simulated I/O (≈%d page reads, %d writes)\n",
		p.EstCost.Round(10*time.Microsecond), p.EstPageReads, p.EstPageWrites)
	return b.String()
}
