package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ghostdb/internal/bus"
	"ghostdb/internal/cache"
	"ghostdb/internal/delta"
	"ghostdb/internal/flash"
	"ghostdb/internal/index"
	"ghostdb/internal/metrics"
	"ghostdb/internal/obs"
	"ghostdb/internal/pagecache"
	"ghostdb/internal/query"
	"ghostdb/internal/ram"
	"ghostdb/internal/sched"
	"ghostdb/internal/schema"
	"ghostdb/internal/shard"
	"ghostdb/internal/sqlparse"
	"ghostdb/internal/store"
	"ghostdb/internal/untrusted"
)

// Strategy selects how a Visible selection is combined with Hidden
// computation (§3.3). StratAuto lets the planner decide per predicate.
type Strategy int

const (
	StratAuto Strategy = iota
	// StratPre climbs from the Visible ID list to the anchor through the
	// table's id index, one lookup per id, before any join.
	StratPre
	// StratCrossPre intersects the Visible list with the Hidden
	// selections available at the same level first, then climbs.
	StratCrossPre
	// StratPost builds a Bloom filter over the Visible list and probes
	// the join results; false positives are discarded at projection time.
	StratPost
	// StratCrossPost is StratPost with the Visible list pre-reduced by
	// same-level Hidden selections (smaller, more accurate filter).
	StratCrossPost
	// StratPostSelect performs an exact (chunked in-RAM) selection on the
	// join result instead of a Bloom filter — the strawman of Figure 11.
	StratPostSelect
	// StratCrossPostSelect is StratPostSelect on the cross-reduced list.
	StratCrossPostSelect
	// StratNoFilter postpones the Visible selection entirely to
	// projection time (the fallback when a Bloom filter would admit more
	// false positives than it eliminates, sV > 0.5).
	StratNoFilter
)

func (s Strategy) String() string {
	switch s {
	case StratAuto:
		return "Auto"
	case StratPre:
		return "Pre-Filter"
	case StratCrossPre:
		return "Cross-Pre-Filter"
	case StratPost:
		return "Post-Filter"
	case StratCrossPost:
		return "Cross-Post-Filter"
	case StratPostSelect:
		return "Post-Select"
	case StratCrossPostSelect:
		return "Cross-Post-Select"
	case StratNoFilter:
		return "No-Filter"
	}
	return "?"
}

// Projector selects the projection algorithm (§4, Figures 12–13).
type Projector int

const (
	// ProjectBloom is the paper's Project algorithm: Bloom-filtered
	// σVH lists and batched MJoin passes.
	ProjectBloom Projector = iota
	// ProjectNoBF is Project without the Bloom optimization: irrelevant
	// Visible values are not pre-filtered, inflating MJoin passes.
	ProjectNoBF
	// ProjectBruteForce loads the QEPSJ result in RAM chunks and fetches
	// every attribute value with random flash accesses.
	ProjectBruteForce
)

func (p Projector) String() string {
	switch p {
	case ProjectBloom:
		return "Project"
	case ProjectNoBF:
		return "Project-NoBF"
	case ProjectBruteForce:
		return "Brute-Force"
	}
	return "?"
}

// Version identifies this engine build; it is surfaced as the
// ghostdb_build_info metric, the server's STATS output and the shell
// banner, so a scrape or a session transcript always names the code it
// measured.
const Version = "0.9.0"

// DefaultMaxConcurrentQueries bounds in-flight query sessions when
// Options.MaxConcurrentQueries is unset.
const DefaultMaxConcurrentQueries = 4

// DefaultSLOTarget is the latency objective the rolling SLO window
// scores client-level wall-clock latency against when Options.SLOTarget
// is unset. 25ms of wall time covers the paced bench configurations and
// any unpaced deployment by a wide margin while still catching
// queueing collapse.
const DefaultSLOTarget = 25 * time.Millisecond

// DefaultCompactThreshold is the delta-log page depth that triggers a
// background compaction (Options.CompactThreshold).
const DefaultCompactThreshold = 64

// DefaultSessionMinBuffers was the blind admission floor used before the
// grant-aware planner: every session requested 8 buffers regardless of
// its real footprint, so wide queries could still die mid-run and narrow
// ones were denied overlap they could safely have had.
//
// Deprecated: admission is now sized from Plan.MinBuffers, the true
// per-plan minimum derived by PlanQuery before admission. The constant
// remains only as a reference point for experiments comparing the two
// admission policies.
const DefaultSessionMinBuffers = 8

// Options configures a DB.
type Options struct {
	FlashParams    flash.Params
	RAMBudget      int     // secure chip RAM in bytes (default 64KB)
	ThroughputMBps float64 // USB link speed (default 1.5)
	Model          metrics.Model
	Variant        index.Variant
	ForceStrategy  Strategy  // default forced strategy for queries that do not override it
	Projector      Projector // default projection algorithm
	// MaxConcurrentQueries bounds the query sessions admitted at once
	// (default DefaultMaxConcurrentQueries; values below 1 mean 1).
	MaxConcurrentQueries int
	// ResultCacheBytes bounds the untrusted-side result cache (0 disables
	// it). Cache memory is host RAM: it is NOT charged against the secure
	// RAMBudget — the cache trades plentiful untrusted memory for scarce
	// secure-token round-trips, and a hit performs zero token work.
	ResultCacheBytes int
	// PageCacheBytes bounds the untrusted-side page cache (0 disables
	// it): a buffer pool one level below the result cache holding encoded
	// Vis runs keyed on canonical per-table predicate text, paired with
	// token-retained spools so a repeated run ships a fixed header
	// instead of its full payload. Like the result cache it is host RAM,
	// never charged against the secure budget, and leak-free by
	// construction (see internal/pagecache).
	PageCacheBytes int
	// PageCachePolicy selects the page-cache eviction policy: "lru" (the
	// default) or "clock".
	PageCachePolicy string
	// BusAuditEntries bounds each token bus's payload audit trail: 0 (the
	// default) keeps the full unbounded trail byte-parity tests rely on,
	// n > 0 keeps a ring of the most recent n records, and negative
	// disables payload auditing entirely for long-lived servers and
	// benches (byte counters always keep working).
	BusAuditEntries int
	// Shards is the number of simulated secure tokens (default 1). Each
	// token gets its own flash device, RAM budget, bus and admission
	// scheduler; tables are placed across tokens at schema-tree
	// granularity by internal/shard, so joins never cross tokens and only
	// forest queries (cross products of independent trees) fan out.
	Shards int
	// PaceSimulation > 0 makes every query session sleep
	// SimTime/PaceSimulation of real time while it holds its token's
	// execution slot. The simulation itself is pure host CPU, so an
	// unpaced engine's wall-clock throughput measures the host, not the
	// modeled hardware; pacing restores the defining property of the
	// real deployment — each token is a physical device whose I/O takes
	// real time, and independent tokens genuinely overlap it. The
	// sharding benchmark uses this; answers and all simulated counters
	// are unaffected. 0 disables pacing (the default).
	PaceSimulation float64
	// SlowQueryThreshold enables the slow-query log: completed SELECTs
	// whose simulated time reaches the threshold are recorded in a ring
	// buffer of canonical query text plus declassified cost scalars
	// (see obs.SlowQuery). 0 disables the log (the default).
	SlowQueryThreshold time.Duration
	// SlowLogEntries caps the slow-query ring buffer (default
	// obs.DefaultSlowLogEntries).
	SlowLogEntries int
	// CompactThreshold is the delta-log depth, in flash pages summed
	// over a token's tables, at which a background compaction of that
	// token starts (default DefaultCompactThreshold). Negative disables
	// automatic compaction; DB.Compact still works.
	CompactThreshold int
	// MaxQueueWait enables load shedding: a statement arriving when its
	// token's predicted admission-queue wait exceeds the bound is
	// rejected immediately with ErrOverloaded instead of queueing, so
	// open-loop overload yields bounded latency for admitted queries and
	// an explicit, countable shed signal (ghostdb_shed_total) instead of
	// an unbounded queue. 0 disables shedding (the default). Background
	// compaction is never shed.
	MaxQueueWait time.Duration
	// SLOTarget is the wall-clock latency objective the rolling SLO
	// window scores completed statements against (the /slo endpoint and
	// the ghostdb_slo_attainment gauge). Default DefaultSLOTarget.
	SLOTarget time.Duration
}

// withDefaults fills unset options with Table 1 values.
func (o Options) withDefaults() Options {
	if o.FlashParams.PageSize == 0 {
		o.FlashParams = flash.DefaultParams()
	}
	if o.RAMBudget == 0 {
		o.RAMBudget = ram.DefaultBudget
	}
	if o.ThroughputMBps == 0 {
		o.ThroughputMBps = bus.DefaultThroughputMBps
	}
	if o.Model == (metrics.Model{}) {
		o.Model = metrics.DefaultModel()
	}
	if o.MaxConcurrentQueries == 0 {
		o.MaxConcurrentQueries = DefaultMaxConcurrentQueries
	}
	if o.MaxConcurrentQueries < 1 {
		o.MaxConcurrentQueries = 1
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.CompactThreshold == 0 {
		o.CompactThreshold = DefaultCompactThreshold
	}
	if o.SLOTarget == 0 {
		o.SLOTarget = DefaultSLOTarget
	}
	return o
}

// QueryConfig is one query's immutable execution configuration. These
// used to be mutable DB-level knobs read mid-query; threading them per
// query is what makes concurrent sessions safe. The zero value lets the
// planner decide the strategy, uses the Bloom projector and the default
// RAM admission request.
type QueryConfig struct {
	// Strategy forces the visible/hidden combination strategy for every
	// non-anchor visible table (StratAuto = planner decides).
	Strategy Strategy
	// Projector selects the projection algorithm.
	Projector Projector
	// MinBuffers raises the session's admission floor in whole buffers
	// above the plan's derived minimum (it can never lower it: a grant
	// below the plan floor could die mid-run). 0 means the plan floor
	// alone decides.
	MinBuffers int
	// WantBuffers is the elastic admission target: the session takes up
	// to this many buffers when free. 0 means the plan's want (the whole
	// budget for regular queries, so a lone query behaves exactly like
	// the mono-user engine); cap it to let several sessions hold RAM
	// simultaneously. Values below the plan floor are raised to it.
	WantBuffers int
	// Trace, when non-nil, collects this query's span tree: parse,
	// resolve, plan, admission wait, slot occupancy, per-operator costs,
	// cache lookups and scatter legs (EXPLAIN ANALYZE, /trace). The
	// untraced hot path pays a single nil check and zero allocations.
	Trace *obs.Trace
	// span redirects a fan-out sub-session's spans under its scatter
	// leg instead of the trace root (set by runScatter only).
	span *obs.Span
}

// HiddenImage is the flash-resident image of a table's hidden non-key
// attributes, in ID order ("TiH, the Hidden image of Ti", §4).
//
// The type is hidden data: nothing derived from it — not even its
// cardinality — may reach the untrusted side or an error/log string
// (ghostdb-lint trustboundary).
//
//ghostdb:hidden
type HiddenImage struct {
	Codec  *store.Codec
	File   *store.RowFile
	ColPos map[int]int // table column index -> position within the image
}

// DB is a complete GhostDB instance: one or more secure tokens (each a
// flash device + RAM budget + bus + index catalog + hidden images + an
// admission scheduler), the table→token placement, and the untrusted-
// side layers (result cache, aggregate totals) that sit above sharding.
//
// The exported Dev/RAM/Bus/Cat/Untr/Hidden fields alias token 0's
// components: for the default single-token configuration they ARE the
// token, which keeps the mono-token call sites (tests, experiments, the
// shell's audit view) unchanged. Multi-token callers go through Tokens /
// TokenOf instead.
type DB struct {
	Sch  *schema.Schema
	Dev  *flash.Device
	RAM  *ram.Manager
	Bus  *bus.Channel
	Cat  *index.Catalog
	Untr *untrusted.Engine

	Hidden map[int]*HiddenImage
	opts   Options

	tokens []*Token
	place  *shard.Map
	loaded bool

	// cache is the untrusted-side result cache (nil when disabled). It
	// lives outside the secure perimeter: its memory is host RAM, its
	// keys are normalized query text and its values are results the
	// untrusted side has already seen — see internal/cache for the
	// leak-freedom argument. It sits above sharding: invalidation is the
	// per-shard version vector fed by each token's committed updates.
	cache *cache.Cache

	// pages is the untrusted-side page cache (nil when disabled): the
	// buffer pool under the result cache, shared by every token's
	// untrusted engine and invalidated by the same per-shard committed-
	// write bumps as the result cache.
	pages *pagecache.Cache

	// reg/inst/slow are the telemetry layer (internal/obs): the metric
	// registry and its engine instruments always exist and collect
	// (cheap atomics — exposure is opt-in per process), the slow-query
	// log only when Options.SlowQueryThreshold is set.
	reg  *obs.Registry
	inst *instruments
	slow *obs.SlowLog

	// start stamps engine construction, for the process-uptime gauge.
	start time.Time

	// prefetchInflight gauges flash pages staged by read-ahead windows
	// but not yet consumed, summed over every live scan (the
	// ghostdb_prefetch_inflight metric).
	prefetchInflight atomic.Int64

	// mu guards the mutable engine state that outlives a single query:
	// the default QueryConfig and the client-level cumulative totals
	// (per-token totals live on each Token).
	mu     sync.Mutex
	defCfg QueryConfig
	totals Totals
}

// ColData is one encoded column for loading (Width bytes per row).
type ColData struct {
	Width int
	Data  []byte
}

// TableLoad is the bulk-load image of one table.
type TableLoad struct {
	Rows int
	Cols []ColData        // aligned with the table's Columns
	FKs  map[int][]uint32 // child table index -> referenced id per row
}

// NewDB creates a DB for the schema with the given options: Shards
// simulated secure tokens, with the schema's trees placed across them by
// the planner-floor-weighted policy of internal/shard.
//
//ghostdb:load-phase
func NewDB(sch *schema.Schema, opts Options) (*DB, error) {
	opts = opts.withDefaults()
	db := &DB{
		Sch:    sch,
		opts:   opts,
		defCfg: QueryConfig{Strategy: opts.ForceStrategy, Projector: opts.Projector},
		start:  time.Now(),
	}
	var trees []shard.Tree
	for _, r := range sch.Roots() {
		trees = append(trees, shard.Tree{
			Root:   r,
			Tables: sch.TreeTables(r),
			Weight: treeFloorWeight(sch, r),
		})
	}
	place, err := shard.Place(sch, opts.Shards, trees)
	if err != nil {
		return nil, err
	}
	db.place = place
	for i := 0; i < opts.Shards; i++ {
		dev, err := flash.NewDevice(opts.FlashParams)
		if err != nil {
			return nil, err
		}
		ch := bus.NewChannel(opts.ThroughputMBps)
		tok := &Token{
			id:       i,
			Dev:      dev,
			RAM:      ram.NewManager(opts.RAMBudget, opts.FlashParams.PageSize),
			Bus:      ch,
			Untr:     untrusted.NewEngine(sch, ch),
			Hidden:   make(map[int]*HiddenImage),
			deltas:   make(map[int]*delta.Table),
			insBytes: make(map[int]int),
			rows:     make(map[int]int),
		}
		tok.sched = sched.New(tok.RAM, opts.MaxConcurrentQueries)
		if opts.MaxQueueWait > 0 {
			tok.sched.SetShedPolicy(opts.MaxQueueWait)
		}
		db.tokens = append(db.tokens, tok)
	}
	// Token 0 aliases (see the DB doc comment).
	t0 := db.tokens[0]
	db.Dev, db.RAM, db.Bus, db.Untr, db.Hidden = t0.Dev, t0.RAM, t0.Bus, t0.Untr, t0.Hidden
	if opts.ResultCacheBytes > 0 {
		db.cache = cache.New(int64(opts.ResultCacheBytes))
	}
	if opts.PageCacheBytes > 0 {
		var pol pagecache.Policy
		if opts.PageCachePolicy == "clock" {
			pol = pagecache.NewClock()
		}
		db.pages = pagecache.New(int64(opts.PageCacheBytes), pol)
		for _, tok := range db.tokens {
			tok.Untr.SetPageCache(db.pages, tok.id)
		}
	}
	if opts.BusAuditEntries != 0 {
		for _, tok := range db.tokens {
			tok.Bus.SetAuditLimit(opts.BusAuditEntries)
		}
	}
	db.reg = obs.NewRegistry()
	if opts.SlowQueryThreshold > 0 {
		db.slow = obs.NewSlowLog(opts.SlowQueryThreshold, opts.SlowLogEntries)
	}
	db.inst = newInstruments(db)
	return db, nil
}

// treeFloorWeight is the placement weight of one schema tree: the
// planner's QEPSJ footprint formula applied to the tree's widest plan
// shape (every table projected, every hidden attribute selected). It is
// a pure function of the schema — placement must never depend on data.
func treeFloorWeight(sch *schema.Schema, root int) int {
	tables := sch.TreeTables(root)
	writers := len(tables) // (len-1) column writers + 1 anchor writer
	skt := 0
	if len(tables) > 1 {
		skt = 1
	}
	hidden := 0
	for _, ti := range tables {
		hidden += len(sch.Tables[ti].HiddenColumns())
	}
	return writers + skt + maxInt(hidden, 3)
}

// Tokens returns every secure token as a read-only Unit, shard order.
func (db *DB) Tokens() []Unit {
	out := make([]Unit, len(db.tokens))
	for i, t := range db.tokens {
		out[i] = t
	}
	return out
}

// TokenOf returns the token holding a table.
func (db *DB) TokenOf(table int) *Token { return db.tokens[db.place.Of(table)] }

// Placement exposes the table→token map.
func (db *DB) Placement() *shard.Map { return db.place }

// TokenTotals snapshots every token's cumulative session costs, shard
// order. Summed across tokens, the flash and bus counters equal what an
// unsharded engine reports for the same executed work.
func (db *DB) TokenTotals() []Totals {
	out := make([]Totals, len(db.tokens))
	for i, t := range db.tokens {
		out[i] = t.Totals()
	}
	return out
}

// tokenForTables returns the single token holding every listed table, or
// an error naming the split (callers decide whether to fan out instead).
func (db *DB) tokenForTables(tables []int) (*Token, error) {
	tok, ok := db.place.TokenOfAll(tables)
	if !ok {
		return nil, fmt.Errorf("exec: tables span several tokens")
	}
	return db.tokens[tok], nil
}

// Options returns the effective options.
func (db *DB) Options() Options { return db.opts }

// DefaultConfig returns the configuration applied to queries that do not
// carry their own (a snapshot; later Set* calls do not affect it).
func (db *DB) DefaultConfig() QueryConfig {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.defCfg
}

// SetForceStrategy overrides the planner for subsequent queries that use
// the default configuration. Queries already running are unaffected:
// they snapshotted their config at submission.
func (db *DB) SetForceStrategy(s Strategy) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.defCfg.Strategy = s
}

// SetProjector selects the projection algorithm for subsequent queries
// that use the default configuration.
func (db *DB) SetProjector(p Projector) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.defCfg.Projector = p
}

// SetThroughput adjusts the modeled link speed of every token's bus
// (Figure 14). Safe under concurrent sessions: the channel knob is
// synchronized, and every query session snapshots the link speed when it
// starts executing, so a running query's reported CommTime never mixes
// two speeds — the new speed applies to sessions that start after the
// call. Prefer setting Options.ThroughputMBps up front when the speed is
// fixed for the run.
func (db *DB) SetThroughput(mbps float64) {
	for _, t := range db.tokens {
		t.Bus.SetThroughput(mbps)
	}
}

// Sched exposes token 0's admission scheduler (diagnostics and tests;
// multi-token callers reach each token's scheduler via TokenOf/Tokens).
func (db *DB) Sched() *sched.Scheduler { return db.tokens[0].sched }

// Rows returns the cardinality of a table (routed to its token).
func (db *DB) Rows(table int) int { return db.TokenOf(table).Rows(table) }

// Load bulk-loads every table onto its placed token: visible columns go
// to the token's untrusted store, hidden columns to hidden images on the
// token's flash, and each token builds the index catalog (SKTs +
// climbing indexes) for the trees it owns. Load runs single-threaded
// before the database accepts queries, outside session admission.
//
//ghostdb:load-phase
func (db *DB) Load(data map[int]*TableLoad) error {
	if db.loaded {
		return errors.New("exec: database already loaded")
	}
	perTok := make([]map[int]*index.TableInput, len(db.tokens))
	for i := range perTok {
		perTok[i] = make(map[int]*index.TableInput)
	}
	for _, t := range db.Sch.Tables {
		ld := data[t.Index]
		if ld == nil {
			return fmt.Errorf("exec: no load data for table %q", t.Name)
		}
		if len(ld.Cols) != len(t.Columns) {
			return fmt.Errorf("exec: table %q: %d columns loaded, schema has %d",
				t.Name, len(ld.Cols), len(t.Columns))
		}
		tok := db.TokenOf(t.Index)
		tok.setRows(t.Index, ld.Rows)
		in := &index.TableInput{Rows: ld.Rows, FKs: ld.FKs}

		// Visible columns -> the token's untrusted store (zero copy).
		for ci, col := range t.Columns {
			c := ld.Cols[ci]
			if col.EncodedWidth() != c.Width {
				return fmt.Errorf("exec: %s.%s width %d != %d", t.Name, col.Name, c.Width, col.EncodedWidth())
			}
			if len(c.Data) != c.Width*ld.Rows {
				return fmt.Errorf("exec: %s.%s has %d bytes, want %d", t.Name, col.Name, len(c.Data), c.Width*ld.Rows)
			}
			if col.Hidden {
				in.Attrs = append(in.Attrs, index.AttrData{ColIdx: ci, Width: c.Width, Data: c.Data})
				continue
			}
			if err := tok.Untr.LoadColumn(t.Index, ci, c.Width, c.Data); err != nil {
				return err
			}
		}
		if err := tok.Untr.SetRows(t.Index, ld.Rows); err != nil {
			return err
		}

		// Hidden image on the token's flash.
		hidden := t.HiddenColumns()
		if len(hidden) > 0 {
			img := &HiddenImage{Codec: store.NewCodec(hidden), ColPos: map[int]int{}}
			pos := 0
			for ci, col := range t.Columns {
				if col.Hidden {
					img.ColPos[ci] = pos
					pos++
				}
			}
			f, err := store.NewRowFile(tok.Dev, img.Codec.Width())
			if err != nil {
				return err
			}
			rec := make([]byte, img.Codec.Width())
			for r := 0; r < ld.Rows; r++ {
				off := 0
				for ci, col := range t.Columns {
					if !col.Hidden {
						continue
					}
					w := col.EncodedWidth()
					copy(rec[off:off+w], ld.Cols[ci].Data[r*w:(r+1)*w])
					off += w
				}
				if err := f.Append(rec); err != nil {
					return err
				}
			}
			if err := f.Seal(); err != nil {
				return err
			}
			img.File = f
			tok.Hidden[t.Index] = img
		}
		perTok[tok.id][t.Index] = in
	}
	for _, tok := range db.tokens {
		if len(perTok[tok.id]) == 0 {
			continue // token with no trees placed on it
		}
		cat, err := index.Build(tok.Dev, db.Sch, perTok[tok.id], db.opts.Variant)
		if err != nil {
			return err
		}
		tok.Cat = cat
		// Precompute per-table insert footprints (hidden record + SKT
		// row) while we still legitimately hold the structures: the
		// planner sizes INSERT admission from these without touching
		// hidden images outside the token slot.
		for ti := range perTok[tok.id] {
			bytes := 0
			if img := tok.Hidden[ti]; img != nil {
				bytes += img.Codec.Width()
			}
			if skt, ok := cat.SKTOf(ti); ok {
				bytes += len(skt.Descendants()) * store.IDBytes
			}
			tok.insBytes[ti] = bytes
		}
		// Exclude load/build I/O from query measurements.
		tok.Dev.ResetCounters()
		tok.Bus.ResetCounters()
	}
	db.Cat = db.tokens[0].Cat
	db.loaded = true
	return nil
}

// Stats summarizes the cost of one query under the paper's cost model.
type Stats struct {
	SimTime   time.Duration // IOTime + CommTime
	IOTime    time.Duration
	CommTime  time.Duration
	Breakdown map[string]time.Duration // per-operator I/O time (Figs 15-16)
	Flash     flash.Counters
	BusDown   uint64
	BusUp     uint64
	RAMHigh   int // high water of the query session's private RAM budget
	// PlanMinBuffers / GrantBuffers record the admission request's floor
	// (the plan-derived minimum, possibly raised by the caller) and the
	// elastic grant the session actually held.
	PlanMinBuffers int
	GrantBuffers   int
	// QueueWait is the wall-clock time the session spent in the FIFO
	// admission queue (a scatter query reports its slowest leg's wait).
	// Wall-clock, not simulated: it measures engine load, not the cost
	// model.
	QueueWait time.Duration
	// Shard is the token the session ran on. For a fan-out query the
	// top-level Stats report Shard -1 and Scatter counts the per-token
	// sub-sessions (each of which merged into its own token's totals).
	Shard     int
	Scatter   int
	Strategy  map[string]Strategy // per visible table
	Projector Projector
	// CacheHit marks an answer served from the untrusted result cache,
	// CacheShared one shared from a concurrent identical query's single
	// admitted session (singleflight). Either way no session ran for this
	// call: every cost field above is zero — a hit performs no flash I/O
	// and moves zero bytes across the secure-token bus.
	CacheHit    bool
	CacheShared bool

	// opSims holds each cost span's full simulated duration (I/O plus
	// communication), feeding the slow-query log's span summary.
	// Breakdown above stays the exported I/O-only decomposition of
	// Figures 15–16.
	opSims map[string]time.Duration
}

// Result is a query answer plus its cost statistics. A Result is
// immutable once returned: the engine never touches it again, and
// callers must not modify Columns or Rows in place — the result cache
// shares one materialized Result (shallow copies via Shared) among every
// caller that hits on it.
type Result struct {
	Columns []string
	Rows    []schema.Row
	Stats   Stats
}

// Totals accumulates the simulated cost of every completed query; one
// query's Stats are merged in when it finishes, so the aggregate view
// stays consistent under concurrency.
type Totals struct {
	Queries  uint64
	SimTime  time.Duration
	IOTime   time.Duration
	CommTime time.Duration
	Flash    flash.Counters
	BusDown  uint64
	BusUp    uint64
	// CacheHits / CacheShared count queries answered without any secure
	// execution (result-cache hit, or a result shared by singleflight
	// from a concurrent identical query). They are included in Queries
	// but contribute zero to every cost counter — the difference is the
	// saving the cache benchmarks attribute.
	CacheHits   uint64
	CacheShared uint64
}

// Totals returns a snapshot of the cumulative query costs.
func (db *DB) Totals() Totals {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.totals
}

func (db *DB) mergeTotals(st Stats) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.totals.Queries++
	db.totals.SimTime += st.SimTime
	db.totals.IOTime += st.IOTime
	db.totals.CommTime += st.CommTime
	db.totals.Flash = db.totals.Flash.Add(st.Flash)
	db.totals.BusDown += st.BusDown
	db.totals.BusUp += st.BusUp
}

// Run parses and executes one SQL statement under the default
// configuration (the mono-user entry point; safe to call concurrently).
func (db *DB) Run(sql string) (*Result, error) {
	return db.RunCtx(context.Background(), sql, db.DefaultConfig())
}

// Stmt is a prepared statement: the parsed, resolved and planned form of
// one SQL statement. Prepare is the single planning path — Run, RunCtx
// and SelectCtx all go through it — so the plan a caller inspects is
// exactly the plan admission will use. A Stmt is safe for concurrent
// RunCtx calls with the configuration it was prepared under.
type Stmt struct {
	db   *DB
	sel  *query.Query // nil for INSERT/UPDATE/DELETE
	ins  *sqlparse.Insert
	dml  *query.DML // resolved UPDATE/DELETE
	cfg  QueryConfig
	plan *Plan
	key  string // result-cache key ("" when the cache is disabled)
}

// Prepare parses, resolves and plans one SQL statement without admitting
// or executing anything: per-table strategies are chosen from plan-time
// selectivity counts, and the plan's true minimum RAM footprint is
// derived so admission can be sized from it.
func (db *DB) Prepare(sql string, cfg QueryConfig) (*Stmt, error) {
	if !db.loaded {
		return nil, errors.New("exec: database not loaded")
	}
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.prepareParsed(stmt, sql, cfg)
}

// prepareParsed is Prepare after parsing, so callers that already hold
// the AST (RunCtx) do not parse twice.
func (db *DB) prepareParsed(stmt sqlparse.Statement, sql string, cfg QueryConfig) (*Stmt, error) {
	switch st := stmt.(type) {
	case *sqlparse.Select:
		resolveSp := cfg.Trace.Root().Start("resolve")
		q, err := query.Resolve(db.Sch, st, sql)
		resolveSp.End()
		if err != nil {
			return nil, err
		}
		planSp := cfg.Trace.Root().Start("plan")
		p, err := db.PlanQuery(q, cfg)
		planSp.End()
		if err != nil {
			return nil, err
		}
		ps := &Stmt{db: db, sel: q, cfg: cfg, plan: p}
		if db.cache != nil {
			ps.key = cacheKey(q, cfg)
		}
		return ps, nil
	case sqlparse.Insert:
		p, err := db.planInsert(st)
		if err != nil {
			return nil, err
		}
		ins := st
		return &Stmt{db: db, ins: &ins, cfg: cfg, plan: p}, nil
	case *sqlparse.Update:
		resolveSp := cfg.Trace.Root().Start("resolve")
		d, err := query.ResolveUpdate(db.Sch, st, sql)
		resolveSp.End()
		if err != nil {
			return nil, err
		}
		p, err := db.planDML(d)
		if err != nil {
			return nil, err
		}
		return &Stmt{db: db, dml: d, cfg: cfg, plan: p}, nil
	case *sqlparse.Delete:
		resolveSp := cfg.Trace.Root().Start("resolve")
		d, err := query.ResolveDelete(db.Sch, st, sql)
		resolveSp.End()
		if err != nil {
			return nil, err
		}
		p, err := db.planDML(d)
		if err != nil {
			return nil, err
		}
		return &Stmt{db: db, dml: d, cfg: cfg, plan: p}, nil
	case sqlparse.CreateTable:
		return nil, errors.New("exec: schema is fixed at load time; CREATE TABLE goes through ghostdb.Create")
	}
	return nil, fmt.Errorf("exec: unsupported statement %T", stmt)
}

// Plan returns the statement's execution plan.
func (s *Stmt) Plan() *Plan { return s.plan }

// RunCtx executes the prepared statement. Admission is sized from the
// plan's derived floor (raised, never lowered, by cfg.MinBuffers); a
// configuration whose strategy or projector differs from the prepared
// one replans first, since those knobs change the plan itself.
func (s *Stmt) RunCtx(ctx context.Context, cfg QueryConfig) (*Result, error) {
	if s.ins != nil {
		return s.db.runInsert(ctx, *s.ins, s.plan, cfg)
	}
	if s.dml != nil {
		return s.db.runDML(ctx, s.dml, s.plan, cfg)
	}
	plan, key := s.plan, s.key
	if cfg.Strategy != s.cfg.Strategy || cfg.Projector != s.cfg.Projector {
		p, err := s.db.PlanQuery(s.sel, cfg)
		if err != nil {
			return nil, err
		}
		plan = p
		if s.db.cache != nil {
			key = cacheKey(s.sel, cfg)
		}
	}
	if s.db.cache != nil {
		return s.db.runSelectCached(ctx, s.sel, plan, cfg, key)
	}
	return s.db.runSelect(ctx, s.sel, plan, cfg)
}

// RunCtx parses, plans and executes one SQL statement with a per-query
// configuration (prepare-then-run). The call blocks in the FIFO
// admission queue until the plan's RAM floor and a concurrency slot are
// free; cancelling ctx while queued abandons the request without having
// reserved anything. Once execution has started it runs to completion
// (the simulated hardware is synchronous).
//
// With the result cache enabled, SELECTs consult it before planning:
// a hit pays only parse+resolve (the key derivation) — no plan-time
// selectivity scans and no token work.
func (db *DB) RunCtx(ctx context.Context, sql string, cfg QueryConfig) (*Result, error) {
	if !db.loaded {
		return nil, errors.New("exec: database not loaded")
	}
	// Client-level SLO bookkeeping: every statement entering here counts
	// as in flight, and every success lands its wall-clock latency —
	// queue wait, slot time and pacing included — in the rolling window
	// behind /slo and ghostdb_slo_attainment.
	db.inst.inFlight.Add(1)
	start := time.Now()
	res, err := db.runStatement(ctx, sql, cfg)
	db.inst.inFlight.Add(-1)
	if err == nil {
		db.inst.wallWin.Observe(time.Since(start).Seconds())
	}
	return res, err
}

// runStatement is RunCtx minus the client-level instrumentation.
func (db *DB) runStatement(ctx context.Context, sql string, cfg QueryConfig) (*Result, error) {
	parseSp := cfg.Trace.Root().Start("parse")
	stmt, err := sqlparse.Parse(sql)
	parseSp.End()
	if err != nil {
		return nil, err
	}
	if sel, ok := stmt.(*sqlparse.Select); ok && db.cache != nil {
		return db.runCachedSelect(ctx, sel, sql, cfg)
	}
	ps, err := db.prepareParsed(stmt, sql, cfg)
	if err != nil {
		return nil, err
	}
	return ps.RunCtx(ctx, cfg)
}

// runInsert executes an INSERT as a minimal session on the token owning
// the target table, sized from the insert's planned footprint. Updates
// mutate shared structures (hidden images, indexes, row counts), so they
// hold that token's slot — inserts into tables on *different* tokens
// proceed in parallel (the write-through fan-out of a sharded load).
func (db *DB) runInsert(ctx context.Context, ins sqlparse.Insert, plan *Plan, cfg QueryConfig) (*Result, error) {
	tok := plan.tok
	parent := cfg.traceParent()
	admSp := parent.Start("admission")
	sess, err := tok.sched.Acquire(ctx, sched.Request{
		MinBuffers: plan.MinBuffers, WantBuffers: plan.WantBuffers})
	admSp.End()
	if err != nil {
		db.noteAdmissionErr(tok, err)
		db.inst.queryErrs.Inc()
		return nil, wrapAdmission(err)
	}
	defer sess.Release()
	execSp := parent.Start("exec")
	execSp.SetNote(fmt.Sprintf("token %d, grant %d buffers", tok.id, sess.Buffers()))
	defer execSp.End()
	err = sess.Exclusive(ctx, func() error {
		slotStart := time.Now()
		defer func() {
			db.inst.slotOcc[tok.id].Observe(time.Since(slotStart).Seconds())
		}()
		// Stage the insert's working set (hidden record + SKT row) in the
		// session's private budget, so the accounting matches the plan.
		g, err := sess.RAM().AllocBuffers(plan.MinBuffers)
		if err != nil {
			return err
		}
		defer g.Release()
		return db.insertOn(tok, ins)
	})
	if err != nil {
		db.inst.queryErrs.Inc()
		return nil, err
	}
	return &Result{}, nil
}

// sessionRequest derives the admission request from the plan floor and
// the per-query configuration. cfg can raise the floor or cap the want,
// but never push the grant below what the plan needs to finish.
func (db *DB) sessionRequest(plan *Plan, cfg QueryConfig) sched.Request {
	min := plan.MinBuffers
	if cfg.MinBuffers > min {
		min = cfg.MinBuffers
	}
	want := cfg.WantBuffers
	if want <= 0 {
		want = plan.WantBuffers
	}
	if want < min {
		want = min
	}
	return sched.Request{MinBuffers: min, WantBuffers: want}
}

// wrapAdmission tags never-admissible scheduler rejections with
// ErrBudgetTooSmall so callers can tell a clean up-front denial from a
// mid-run exhaustion.
func wrapAdmission(err error) error {
	if errors.Is(err, sched.ErrNeverAdmissible) {
		return fmt.Errorf("%w: %w", ErrBudgetTooSmall, err)
	}
	return err
}

// Select executes a resolved query under the default configuration.
func (db *DB) Select(q *query.Query) (*Result, error) {
	return db.SelectCtx(context.Background(), q, db.DefaultConfig())
}

// SelectCtx plans and executes a resolved query (prepare-then-run for
// callers that resolved the SQL themselves).
func (db *DB) SelectCtx(ctx context.Context, q *query.Query, cfg QueryConfig) (*Result, error) {
	plan, err := db.PlanQuery(q, cfg)
	if err != nil {
		return nil, err
	}
	return db.runSelect(ctx, q, plan, cfg)
}

// runSelect executes a planned query. Single-token plans run as one
// scheduled session on their token: FIFO RAM admission sized from the
// plan's floor, operator variants bound from the actual grant, then
// exclusive use of that token while the query runs, so per-query
// counters and simulated timings are deterministic. Cross-token plans
// fan out (runScatter).
func (db *DB) runSelect(ctx context.Context, q *query.Query, plan *Plan, cfg QueryConfig) (*Result, error) {
	if len(plan.Parts) > 0 {
		return db.runScatter(ctx, q, plan, cfg)
	}
	res, err := db.runSelectOn(ctx, q, plan, cfg)
	if err != nil {
		db.inst.queryErrs.Inc()
		return nil, err
	}
	db.mergeTotals(res.Stats)
	db.observeSelect(q, res.Stats)
	return res, nil
}

// runSelectOn runs one single-token plan as a session on its token and
// merges the session's cost into that token's totals (but not into the
// DB-level client totals — the caller does that once per client query).
func (db *DB) runSelectOn(ctx context.Context, q *query.Query, plan *Plan, cfg QueryConfig) (*Result, error) {
	tok := plan.tok
	req := db.sessionRequest(plan, cfg)
	parent := cfg.traceParent()
	admSp := parent.Start("admission")
	queued := time.Now()
	sess, err := tok.sched.Acquire(ctx, req)
	admSp.End()
	if err != nil {
		db.noteAdmissionErr(tok, err)
		return nil, wrapAdmission(err)
	}
	wait := time.Since(queued)
	defer sess.Release()
	execSp := parent.Start("exec")
	execSp.SetNote(fmt.Sprintf("token %d, grant %d buffers", tok.id, sess.Buffers()))
	defer execSp.End()
	var res *Result
	err = sess.Exclusive(ctx, func() error {
		slotStart := time.Now()
		defer func() {
			db.inst.slotOcc[tok.id].Observe(time.Since(slotStart).Seconds())
		}()
		r := &queryRun{
			db:         db,
			tok:        tok,
			q:          q,
			cfg:        cfg,
			plan:       plan,
			bind:       plan.Bind(sess.Buffers()),
			planMin:    req.MinBuffers,
			strategies: plan.Strategies(),
			ram:        sess.RAM(),
			// The collector snapshots the link speed at construction:
			// SetThroughput calls during the run apply to later sessions
			// only, so this query's CommTime is computed against one
			// consistent speed.
			col: metrics.NewCollector(tok.Dev, tok.Bus, db.opts.Model),
		}
		// The token is exclusively ours: zero the device/bus counters so
		// the collector's spans see only this query's I/O.
		r.col.Reset()
		// The query text is the only thing that ever leaves the secure
		// perimeter (§1: "the only information revealed to a potential
		// spy is which queries you pose"). Its upload is metered under
		// its own cost span so the trace decomposition covers it.
		if err := r.col.Span(spanBus, func() error {
			return tok.Bus.Transfer(bus.Up, "query", len(q.SQL), q.SQL)
		}); err != nil {
			return err
		}
		out, err := r.execute()
		if err != nil {
			return err
		}
		if q.CountOnly {
			out = &Result{
				Columns: []string{"count(*)"},
				Rows:    []schema.Row{{schema.IntVal(int64(len(out.Rows)))}},
			}
		}
		out.Stats = r.collectStats()
		out.Stats.QueueWait = wait
		attachOperatorSpans(execSp, r.col, out.Stats.SimTime)
		res = out
		// Paced mode: hold the token slot for a real-time shadow of the
		// simulated cost, so wall-clock measurements see device-bound
		// (not host-CPU-bound) behavior. See Options.PaceSimulation.
		if pace := db.opts.PaceSimulation; pace > 0 {
			paceSp := execSp.Start("pace")
			time.Sleep(time.Duration(float64(out.Stats.SimTime) / pace))
			paceSp.End()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	tok.mergeTotals(res.Stats)
	return res, nil
}

// collectStats summarizes this query's cost from the counters the run
// observed while it held its token.
func (r *queryRun) collectStats() Stats {
	db, tok := r.db, r.tok
	down, up := tok.Bus.Counters()
	total := metrics.Sample{Flash: tok.Dev.Counters(), BusDown: down, BusUp: up}
	st := Stats{
		IOTime:         db.opts.Model.IOTime(total),
		CommTime:       db.opts.Model.CommTime(total, r.col.ThroughputMBps()),
		Breakdown:      r.col.Breakdown(),
		Flash:          tok.Dev.Counters(),
		BusDown:        down,
		BusUp:          up,
		RAMHigh:        r.ram.HighWater(),
		PlanMinBuffers: r.planMin,
		GrantBuffers:   r.bind.GrantBuffers,
		Shard:          tok.id,
		Strategy:       map[string]Strategy{},
		Projector:      r.cfg.Projector,
	}
	st.SimTime = st.IOTime + st.CommTime
	st.opSims = make(map[string]time.Duration)
	for _, name := range r.col.Names() {
		st.opSims[name] = r.col.SimTimeOf(name)
	}
	for ti, s := range r.strategies {
		st.Strategy[db.Sch.Tables[ti].Name] = s
	}
	return st
}

// columnLabel renders a projection header.
func (db *DB) columnLabel(p query.Proj) string {
	t := db.Sch.Tables[p.Table]
	if p.ColIdx == query.IDCol {
		return t.Name + ".id"
	}
	return t.Name + "." + t.Columns[p.ColIdx].Name
}
