package exec

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"ghostdb/internal/metrics"
	"ghostdb/internal/obs"
	"ghostdb/internal/query"
	"ghostdb/internal/sched"
)

// This file threads the leak-aware telemetry layer (internal/obs)
// through the engine. Everything exported here is declassified by
// construction — obs is registered untrusted-side in the analyzer
// config, so the trustboundary rule proves no hidden-derived value can
// cross into it:
//
//   - Durations are functions of the metered flash/bus counters (the
//     cost model) or of wall-clock scheduling, never of hidden tuples.
//   - Grant sizes, queue depths and admission counts are RAM-admission
//     bookkeeping over plan-derived floors (pure functions of query
//     text + schema).
//   - The slow log's query text is the canonical resolved form — the
//     one thing the security model reveals to the untrusted side anyway.

// spanBus names the cost span covering the query-text upload — the bus
// transfer that, per §1, is the only data ever revealed to a spy.
const spanBus = "Bus"

// sloWindow / sloSlots shape the rolling wall-latency window behind the
// SLO gauges and the /slo endpoint: one minute of history in 5-second
// slots, so attainment reacts within seconds and forgets within the
// minute.
const (
	sloWindow = time.Minute
	sloSlots  = 12
)

// instruments holds the engine's always-on metric handles. Collection
// is a few atomic adds per query; exposure (the /metrics endpoint, the
// REPL command) is what processes opt into.
type instruments struct {
	queryErrs *obs.Counter
	simHist   *obs.Histogram
	grantHist *obs.Histogram

	// inFlight counts client-level statements between RunCtx entry and
	// return (queued included); wallWin is the rolling wall-clock
	// latency window the SLO gauges and /slo read.
	inFlight atomic.Int64
	wallWin  *obs.WindowedHistogram

	// Per-token (shard-labeled) instruments, indexed by token ordinal.
	queueWait   []*obs.Histogram
	slotOcc     []*obs.Histogram
	rejections  []*obs.Counter
	sheds       []*obs.Counter
	compactSecs []*obs.Histogram

	compactErrs *obs.Counter
}

// newInstruments registers the engine's metric families on db's
// registry and wires each token's admission scheduler to its queue-wait
// histogram. Called once from NewDB, before any traffic.
func newInstruments(db *DB) *instruments {
	r := db.reg
	inst := &instruments{
		queryErrs: r.Counter("ghostdb_query_errors_total", "queries that failed during execution"),
		simHist: r.Histogram("ghostdb_query_sim_seconds",
			"per-query simulated time under the paper's cost model (cache hits observe 0)", obs.TimeBuckets()),
		grantHist: r.Histogram("ghostdb_session_grant_buffers",
			"elastic RAM grant per admitted session, in whole buffers", obs.GrantBuckets()),
	}
	inst.compactErrs = r.Counter("ghostdb_compaction_errors_total",
		"background delta compactions that failed")
	r.CounterFunc("ghostdb_queries_total", "completed queries, cache hits included",
		func() float64 { return float64(db.Totals().Queries) })
	r.CounterFunc("ghostdb_slowlog_entries_total", "queries recorded by the slow-query log",
		func() float64 { return float64(db.slow.Total()) })

	// Build metadata and liveness: the constant-1 info gauge names the
	// code and topology a scrape measured; uptime dates the process.
	r.GaugeFunc("ghostdb_build_info", "build metadata carried in labels; the value is always 1",
		func() float64 { return 1 },
		obs.L("version", Version),
		obs.L("shards", fmt.Sprintf("%d", db.opts.Shards)),
		obs.L("tokens", fmt.Sprintf("%d", db.opts.Shards)))
	r.GaugeFunc("ghostdb_process_uptime_seconds", "seconds since engine construction",
		func() float64 { return time.Since(db.start).Seconds() })

	// The live SLO observatory: client-level wall latency in a rolling
	// window, scored against Options.SLOTarget. These are the same
	// obs.TimeBuckets the bench harness reads, so offline sweeps and
	// live scrapes compute identical quantiles from identical data.
	inst.wallWin = obs.NewWindowedHistogram(obs.TimeBuckets(), sloWindow, sloSlots)
	target := db.opts.SLOTarget.Seconds()
	r.GaugeFunc("ghostdb_queries_in_flight", "client-level statements currently queued or executing",
		func() float64 { return float64(inst.inFlight.Load()) })
	r.GaugeFunc("ghostdb_slo_target_seconds", "the wall-clock latency objective of the SLO window",
		func() float64 { return target })
	r.GaugeFunc("ghostdb_slo_attainment",
		"fraction of windowed statements completing within the SLO target (1 when idle)",
		func() float64 { return inst.wallWin.Attainment(target) })
	r.GaugeFunc("ghostdb_slo_window_p50_seconds", "rolling p50 of client-level wall latency",
		func() float64 { return inst.wallWin.Quantile(0.50) })
	r.GaugeFunc("ghostdb_slo_window_p95_seconds", "rolling p95 of client-level wall latency",
		func() float64 { return inst.wallWin.Quantile(0.95) })
	r.GaugeFunc("ghostdb_slo_window_p99_seconds", "rolling p99 of client-level wall latency",
		func() float64 { return inst.wallWin.Quantile(0.99) })

	for i, t := range db.tokens {
		tok := t
		shard := obs.L("shard", fmt.Sprintf("%d", i))
		qw := r.Histogram("ghostdb_sched_queue_wait_seconds",
			"wall-clock wait in the FIFO admission queue", obs.TimeBuckets(), shard)
		inst.queueWait = append(inst.queueWait, qw)
		inst.slotOcc = append(inst.slotOcc, r.Histogram("ghostdb_slot_occupancy_seconds",
			"wall-clock time sessions hold the token's serial execution slot", obs.TimeBuckets(), shard))
		inst.rejections = append(inst.rejections, r.Counter("ghostdb_sched_rejections_total",
			"admission requests rejected up front (plan floor exceeds the budget)", shard))
		inst.sheds = append(inst.sheds, r.Counter("ghostdb_shed_total",
			"statements shed at arrival with ErrOverloaded (predicted queue wait over Options.MaxQueueWait)", shard))
		admissions := r.Counter("ghostdb_sched_admissions_total", "sessions admitted", shard)
		tok.sched.SetAdmitObserver(func(wait time.Duration, grantBuffers int) {
			qw.Observe(wait.Seconds())
			inst.grantHist.Observe(float64(grantBuffers))
			admissions.Inc()
		})
		r.GaugeFunc("ghostdb_sched_queue_depth", "admission requests waiting",
			func() float64 { return float64(tok.QueueLen()) }, shard)
		r.GaugeFunc("ghostdb_sched_running", "admitted, unreleased sessions",
			func() float64 { return float64(tok.Running()) }, shard)
		r.GaugeFunc("ghostdb_token_ram_buffers", "secure RAM budget in whole buffers",
			func() float64 { return float64(tok.RAMBuffers()) }, shard)
		r.CounterFunc("ghostdb_token_sessions_total", "query sessions completed on this token",
			func() float64 { return float64(tok.Totals().Queries) }, shard)
		r.CounterFunc("ghostdb_token_sim_seconds_total", "simulated seconds of completed sessions",
			func() float64 { return tok.Totals().SimTime.Seconds() }, shard)
		r.CounterFunc("ghostdb_token_flash_reads_total", "flash page reads",
			func() float64 { return float64(tok.Totals().Flash.PageReads) }, shard)
		r.CounterFunc("ghostdb_token_flash_writes_total", "flash page writes",
			func() float64 { return float64(tok.Totals().Flash.PageWrites) }, shard)
		r.CounterFunc("ghostdb_token_bus_down_bytes_total", "bytes moved untrusted→token",
			func() float64 { return float64(tok.Totals().BusDown) }, shard)
		r.CounterFunc("ghostdb_token_bus_up_bytes_total", "bytes moved token→untrusted",
			func() float64 { return float64(tok.Totals().BusUp) }, shard)
		// Write-path families: everything here reads the token's
		// declassified mirrors (statement counts and page depths —
		// derivable from statement text plus commit volume, which the
		// model already reveals), never live delta state.
		inst.compactSecs = append(inst.compactSecs, r.Histogram("ghostdb_compaction_seconds",
			"wall-clock duration of delta compactions", obs.TimeBuckets(), shard))
		r.GaugeFunc("ghostdb_delta_pages", "live delta-log depth in flash pages",
			func() float64 { return float64(tok.DeltaPages()) }, shard)
		r.CounterFunc("ghostdb_dml_statements_total", "committed UPDATE/DELETE statements",
			func() float64 { return float64(tok.DMLStatements()) }, shard)
		r.CounterFunc("ghostdb_compactions_total", "delta compactions completed",
			func() float64 { return float64(tok.Compactions()) }, shard)
	}

	r.CounterFunc("ghostdb_cache_hits_total", "result-cache hits (zero token work)",
		func() float64 { return float64(db.CacheStats().Hits) })
	r.CounterFunc("ghostdb_cache_shared_total", "results shared via singleflight",
		func() float64 { return float64(db.CacheStats().SharedHits) })
	r.CounterFunc("ghostdb_cache_misses_total", "result-cache misses",
		func() float64 { return float64(db.CacheStats().Misses) })
	r.CounterFunc("ghostdb_cache_evictions_total", "LRU evictions",
		func() float64 { return float64(db.CacheStats().Evictions) })
	r.CounterFunc("ghostdb_cache_invalidations_total", "entries invalidated by committed inserts",
		func() float64 { return float64(db.CacheStats().Invalidations) })
	r.GaugeFunc("ghostdb_cache_entries", "live result-cache entries",
		func() float64 { return float64(db.CacheStats().Entries) })
	r.GaugeFunc("ghostdb_cache_bytes", "result-cache occupancy in bytes",
		func() float64 { return float64(db.CacheStats().Bytes) })

	// Page-cache / bus-batching families (PR 10). Everything here reads
	// untrusted-side counters or declassified link totals — never hidden
	// state.
	r.CounterFunc("ghostdb_pagecache_hits_total", "page-cache hits (visible runs served from host RAM)",
		func() float64 { return float64(db.PageCacheStats().Hits) })
	r.CounterFunc("ghostdb_pagecache_misses_total", "page-cache misses",
		func() float64 { return float64(db.PageCacheStats().Misses) })
	r.CounterFunc("ghostdb_pagecache_evictions_total", "page-cache frame evictions",
		func() float64 { return float64(db.PageCacheStats().Evictions) })
	r.CounterFunc("ghostdb_pagecache_invalidations_total", "page-cache frames dropped by committed writes",
		func() float64 { return float64(db.PageCacheStats().Invalidations) })
	r.GaugeFunc("ghostdb_pagecache_entries", "live page-cache frames",
		func() float64 { return float64(db.PageCacheStats().Entries) })
	r.GaugeFunc("ghostdb_pagecache_bytes", "page-cache occupancy in bytes",
		func() float64 { return float64(db.PageCacheStats().Bytes) })
	r.CounterFunc("ghostdb_bus_coalesced_total", "link round-trips saved by batched transfers",
		func() float64 { return float64(db.BusCoalesced()) })
	r.GaugeFunc("ghostdb_prefetch_inflight", "flash pages staged by read-ahead but not yet consumed",
		func() float64 { return float64(db.PrefetchInflight()) })
	return inst
}

// Metrics returns the engine's metric registry. It always exists and is
// always collecting (a few atomic adds per query); whether anything is
// exposed — /metrics, the REPL command — is the caller's choice.
func (db *DB) Metrics() *obs.Registry { return db.reg }

// SlowLog returns the slow-query log, nil when disabled
// (Options.SlowQueryThreshold == 0).
func (db *DB) SlowLog() *obs.SlowLog { return db.slow }

// traceParent returns the span new session work should nest under: the
// scatter leg's span for fan-out sub-sessions, else the trace root —
// nil (a no-op) for the untraced hot path.
func (cfg *QueryConfig) traceParent() *obs.Span {
	if cfg.span != nil {
		return cfg.span
	}
	return cfg.Trace.Root()
}

// attachOperatorSpans converts the collector's per-operator cost spans
// into sim-only children of the session's exec span, in first-seen
// order, then adds the unattributed remainder as "other" — so the
// children's simulated durations always sum to exactly the session's
// SimTime (the EXPLAIN ANALYZE contract).
func attachOperatorSpans(sp *obs.Span, col *metrics.Collector, simTime time.Duration) {
	if sp == nil {
		return
	}
	var sum time.Duration
	for _, name := range col.Names() {
		d := col.SimTimeOf(name)
		sp.Add(name, d)
		sum += d
	}
	if rest := simTime - sum; rest > 0 {
		sp.Add("other", rest)
	}
	sp.SetSim(simTime)
}

// noteAdmissionErr classifies a failed Acquire into the per-shard
// admission counters: clean up-front denials (plan floor over budget)
// versus load sheds (predicted wait over the bound).
func (db *DB) noteAdmissionErr(tok *Token, err error) {
	switch {
	case errors.Is(err, sched.ErrNeverAdmissible):
		db.inst.rejections[tok.id].Inc()
	case errors.Is(err, sched.ErrOverloaded):
		db.inst.sheds[tok.id].Inc()
	}
}

// observeStatement records one completed statement — kind-tagged
// SELECT/UPDATE/DELETE/COMPACT — into the simulated-latency histogram
// and, when it clears the threshold, the slow log.
func (db *DB) observeStatement(kind, canonical string, st Stats) {
	db.inst.simHist.Observe(st.SimTime.Seconds())
	if db.slow == nil || st.SimTime < db.slow.Threshold() {
		return
	}
	db.slow.Record(obs.SlowQuery{
		Time:           time.Now(),
		Query:          canonical,
		Kind:           kind,
		Shard:          st.Shard,
		Scatter:        st.Scatter,
		SimUs:          st.SimTime.Microseconds(),
		QueueWaitUs:    st.QueueWait.Microseconds(),
		PlanMinBuffers: st.PlanMinBuffers,
		GrantBuffers:   st.GrantBuffers,
		Spans:          topSpanCosts(st.opSims, 8),
	})
}

// observeSelect records one completed client-level SELECT.
func (db *DB) observeSelect(q *query.Query, st Stats) {
	db.observeStatement("SELECT", q.Canonical(), st)
}

// observeDML records one committed UPDATE or DELETE.
func (db *DB) observeDML(d *query.DML, st Stats) {
	kind := "UPDATE"
	if d.Delete {
		kind = "DELETE"
	}
	db.observeStatement(kind, d.Canonical(), st)
}

// SLOShard is one token's admission-side state in an SLO snapshot.
type SLOShard struct {
	Shard      int    `json:"shard"`
	QueueDepth int    `json:"queue_depth"`
	Running    int    `json:"running"`
	ShedTotal  uint64 `json:"shed_total"`
}

// SLOSnapshot is the live SLO observatory's view — the /slo endpoint
// payload: rolling attainment and quantiles over the last sloWindow of
// client-level wall latency, plus the per-shard admission state behind
// them. Every field is declassified scheduling bookkeeping.
type SLOSnapshot struct {
	Version       string     `json:"version"`
	TargetMs      float64    `json:"target_ms"`
	WindowSeconds float64    `json:"window_seconds"`
	Count         uint64     `json:"count"`
	Attainment    float64    `json:"attainment"`
	P50Ms         float64    `json:"p50_ms"`
	P95Ms         float64    `json:"p95_ms"`
	P99Ms         float64    `json:"p99_ms"`
	InFlight      int64      `json:"in_flight"`
	ShedTotal     uint64     `json:"shed_total"`
	UptimeSeconds float64    `json:"uptime_seconds"`
	Shards        []SLOShard `json:"shards"`
}

// SLO merges the rolling latency window and the per-token admission
// gauges into one snapshot. The quantile and attainment math is the
// plain-Histogram math over obs.TimeBuckets — identical to what a
// Prometheus scrape of the ghostdb_slo_* gauges reports.
func (db *DB) SLO() SLOSnapshot {
	h := db.inst.wallWin.Snapshot()
	target := db.opts.SLOTarget
	s := SLOSnapshot{
		Version:       Version,
		TargetMs:      float64(target.Microseconds()) / 1000,
		WindowSeconds: db.inst.wallWin.Window().Seconds(),
		Count:         h.Count(),
		Attainment:    h.FractionBelow(target.Seconds()),
		P50Ms:         h.Quantile(0.50) * 1000,
		P95Ms:         h.Quantile(0.95) * 1000,
		P99Ms:         h.Quantile(0.99) * 1000,
		InFlight:      db.inst.inFlight.Load(),
		UptimeSeconds: time.Since(db.start).Seconds(),
	}
	for i, tok := range db.tokens {
		shed := db.inst.sheds[i].Value()
		s.ShedTotal += shed
		s.Shards = append(s.Shards, SLOShard{
			Shard:      i,
			QueueDepth: tok.QueueLen(),
			Running:    tok.Running(),
			ShedTotal:  shed,
		})
	}
	return s
}

// topSpanCosts renders the per-operator simulated costs as a span
// summary, slowest first, capped at n entries.
func topSpanCosts(sims map[string]time.Duration, n int) []obs.SpanCost {
	out := make([]obs.SpanCost, 0, len(sims))
	for name, d := range sims {
		out = append(out, obs.SpanCost{Name: name, SimUs: d.Microseconds()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SimUs != out[j].SimUs {
			return out[i].SimUs > out[j].SimUs
		}
		return out[i].Name < out[j].Name
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
