package exec

import (
	"fmt"
	"sort"
	"time"

	"ghostdb/internal/metrics"
	"ghostdb/internal/obs"
	"ghostdb/internal/query"
)

// This file threads the leak-aware telemetry layer (internal/obs)
// through the engine. Everything exported here is declassified by
// construction — obs is registered untrusted-side in the analyzer
// config, so the trustboundary rule proves no hidden-derived value can
// cross into it:
//
//   - Durations are functions of the metered flash/bus counters (the
//     cost model) or of wall-clock scheduling, never of hidden tuples.
//   - Grant sizes, queue depths and admission counts are RAM-admission
//     bookkeeping over plan-derived floors (pure functions of query
//     text + schema).
//   - The slow log's query text is the canonical resolved form — the
//     one thing the security model reveals to the untrusted side anyway.

// spanBus names the cost span covering the query-text upload — the bus
// transfer that, per §1, is the only data ever revealed to a spy.
const spanBus = "Bus"

// instruments holds the engine's always-on metric handles. Collection
// is a few atomic adds per query; exposure (the /metrics endpoint, the
// REPL command) is what processes opt into.
type instruments struct {
	queryErrs *obs.Counter
	simHist   *obs.Histogram
	grantHist *obs.Histogram

	// Per-token (shard-labeled) instruments, indexed by token ordinal.
	queueWait   []*obs.Histogram
	slotOcc     []*obs.Histogram
	rejections  []*obs.Counter
	compactSecs []*obs.Histogram

	compactErrs *obs.Counter
}

// newInstruments registers the engine's metric families on db's
// registry and wires each token's admission scheduler to its queue-wait
// histogram. Called once from NewDB, before any traffic.
func newInstruments(db *DB) *instruments {
	r := db.reg
	inst := &instruments{
		queryErrs: r.Counter("ghostdb_query_errors_total", "queries that failed during execution"),
		simHist: r.Histogram("ghostdb_query_sim_seconds",
			"per-query simulated time under the paper's cost model (cache hits observe 0)", obs.TimeBuckets()),
		grantHist: r.Histogram("ghostdb_session_grant_buffers",
			"elastic RAM grant per admitted session, in whole buffers", obs.GrantBuckets()),
	}
	inst.compactErrs = r.Counter("ghostdb_compaction_errors_total",
		"background delta compactions that failed")
	r.CounterFunc("ghostdb_queries_total", "completed queries, cache hits included",
		func() float64 { return float64(db.Totals().Queries) })
	r.CounterFunc("ghostdb_slowlog_entries_total", "queries recorded by the slow-query log",
		func() float64 { return float64(db.slow.Total()) })

	for i, t := range db.tokens {
		tok := t
		shard := obs.L("shard", fmt.Sprintf("%d", i))
		qw := r.Histogram("ghostdb_sched_queue_wait_seconds",
			"wall-clock wait in the FIFO admission queue", obs.TimeBuckets(), shard)
		inst.queueWait = append(inst.queueWait, qw)
		inst.slotOcc = append(inst.slotOcc, r.Histogram("ghostdb_slot_occupancy_seconds",
			"wall-clock time sessions hold the token's serial execution slot", obs.TimeBuckets(), shard))
		inst.rejections = append(inst.rejections, r.Counter("ghostdb_sched_rejections_total",
			"admission requests rejected up front (plan floor exceeds the budget)", shard))
		admissions := r.Counter("ghostdb_sched_admissions_total", "sessions admitted", shard)
		tok.sched.SetAdmitObserver(func(wait time.Duration, grantBuffers int) {
			qw.Observe(wait.Seconds())
			inst.grantHist.Observe(float64(grantBuffers))
			admissions.Inc()
		})
		r.GaugeFunc("ghostdb_sched_queue_depth", "admission requests waiting",
			func() float64 { return float64(tok.QueueLen()) }, shard)
		r.GaugeFunc("ghostdb_sched_running", "admitted, unreleased sessions",
			func() float64 { return float64(tok.Running()) }, shard)
		r.GaugeFunc("ghostdb_token_ram_buffers", "secure RAM budget in whole buffers",
			func() float64 { return float64(tok.RAMBuffers()) }, shard)
		r.CounterFunc("ghostdb_token_sessions_total", "query sessions completed on this token",
			func() float64 { return float64(tok.Totals().Queries) }, shard)
		r.CounterFunc("ghostdb_token_sim_seconds_total", "simulated seconds of completed sessions",
			func() float64 { return tok.Totals().SimTime.Seconds() }, shard)
		r.CounterFunc("ghostdb_token_flash_reads_total", "flash page reads",
			func() float64 { return float64(tok.Totals().Flash.PageReads) }, shard)
		r.CounterFunc("ghostdb_token_flash_writes_total", "flash page writes",
			func() float64 { return float64(tok.Totals().Flash.PageWrites) }, shard)
		r.CounterFunc("ghostdb_token_bus_down_bytes_total", "bytes moved untrusted→token",
			func() float64 { return float64(tok.Totals().BusDown) }, shard)
		r.CounterFunc("ghostdb_token_bus_up_bytes_total", "bytes moved token→untrusted",
			func() float64 { return float64(tok.Totals().BusUp) }, shard)
		// Write-path families: everything here reads the token's
		// declassified mirrors (statement counts and page depths —
		// derivable from statement text plus commit volume, which the
		// model already reveals), never live delta state.
		inst.compactSecs = append(inst.compactSecs, r.Histogram("ghostdb_compaction_seconds",
			"wall-clock duration of delta compactions", obs.TimeBuckets(), shard))
		r.GaugeFunc("ghostdb_delta_pages", "live delta-log depth in flash pages",
			func() float64 { return float64(tok.DeltaPages()) }, shard)
		r.CounterFunc("ghostdb_dml_statements_total", "committed UPDATE/DELETE statements",
			func() float64 { return float64(tok.DMLStatements()) }, shard)
		r.CounterFunc("ghostdb_compactions_total", "delta compactions completed",
			func() float64 { return float64(tok.Compactions()) }, shard)
	}

	r.CounterFunc("ghostdb_cache_hits_total", "result-cache hits (zero token work)",
		func() float64 { return float64(db.CacheStats().Hits) })
	r.CounterFunc("ghostdb_cache_shared_total", "results shared via singleflight",
		func() float64 { return float64(db.CacheStats().SharedHits) })
	r.CounterFunc("ghostdb_cache_misses_total", "result-cache misses",
		func() float64 { return float64(db.CacheStats().Misses) })
	r.CounterFunc("ghostdb_cache_evictions_total", "LRU evictions",
		func() float64 { return float64(db.CacheStats().Evictions) })
	r.CounterFunc("ghostdb_cache_invalidations_total", "entries invalidated by committed inserts",
		func() float64 { return float64(db.CacheStats().Invalidations) })
	r.GaugeFunc("ghostdb_cache_entries", "live result-cache entries",
		func() float64 { return float64(db.CacheStats().Entries) })
	r.GaugeFunc("ghostdb_cache_bytes", "result-cache occupancy in bytes",
		func() float64 { return float64(db.CacheStats().Bytes) })
	return inst
}

// Metrics returns the engine's metric registry. It always exists and is
// always collecting (a few atomic adds per query); whether anything is
// exposed — /metrics, the REPL command — is the caller's choice.
func (db *DB) Metrics() *obs.Registry { return db.reg }

// SlowLog returns the slow-query log, nil when disabled
// (Options.SlowQueryThreshold == 0).
func (db *DB) SlowLog() *obs.SlowLog { return db.slow }

// traceParent returns the span new session work should nest under: the
// scatter leg's span for fan-out sub-sessions, else the trace root —
// nil (a no-op) for the untraced hot path.
func (cfg *QueryConfig) traceParent() *obs.Span {
	if cfg.span != nil {
		return cfg.span
	}
	return cfg.Trace.Root()
}

// attachOperatorSpans converts the collector's per-operator cost spans
// into sim-only children of the session's exec span, in first-seen
// order, then adds the unattributed remainder as "other" — so the
// children's simulated durations always sum to exactly the session's
// SimTime (the EXPLAIN ANALYZE contract).
func attachOperatorSpans(sp *obs.Span, col *metrics.Collector, simTime time.Duration) {
	if sp == nil {
		return
	}
	var sum time.Duration
	for _, name := range col.Names() {
		d := col.SimTimeOf(name)
		sp.Add(name, d)
		sum += d
	}
	if rest := simTime - sum; rest > 0 {
		sp.Add("other", rest)
	}
	sp.SetSim(simTime)
}

// observeSelect records one completed client-level SELECT into the
// latency histogram and, when it clears the threshold, the slow log.
func (db *DB) observeSelect(q *query.Query, st Stats) {
	db.inst.simHist.Observe(st.SimTime.Seconds())
	if db.slow == nil || st.SimTime < db.slow.Threshold() {
		return
	}
	db.slow.Record(obs.SlowQuery{
		Time:           time.Now(),
		Query:          q.Canonical(),
		Shard:          st.Shard,
		Scatter:        st.Scatter,
		SimUs:          st.SimTime.Microseconds(),
		QueueWaitUs:    st.QueueWait.Microseconds(),
		PlanMinBuffers: st.PlanMinBuffers,
		GrantBuffers:   st.GrantBuffers,
		Spans:          topSpanCosts(st.opSims, 8),
	})
}

// topSpanCosts renders the per-operator simulated costs as a span
// summary, slowest first, capped at n entries.
func topSpanCosts(sims map[string]time.Duration, n int) []obs.SpanCost {
	out := make([]obs.SpanCost, 0, len(sims))
	for name, d := range sims {
		out = append(out, obs.SpanCost{Name: name, SimUs: d.Microseconds()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SimUs != out[j].SimUs {
			return out[i].SimUs > out[j].SimUs
		}
		return out[i].Name < out[j].Name
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
