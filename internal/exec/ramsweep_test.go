package exec

import (
	"errors"
	"testing"

	"ghostdb/internal/flash"
	"ghostdb/internal/ram"
)

// minViableBuffers is the smallest whole-buffer budget at which every
// query in the representative mix below is guaranteed to complete: the
// 5-table QEPSJ pipeline reserves up to 6 buffers (anchor writer + 4
// column writers + SKT reader) and the merge reduction needs 1 more to
// make progress on what remains. Below it, operators may fail — but only
// with errors wrapping ram.ErrExhausted, never with a wrong answer or a
// leaked grant.
const minViableBuffers = 7

// sweepFixture builds the sweep fixture at one budget.
func sweepFixture(t testing.TB, buffers int) *fixture {
	return newFixtureOpts(t, 77, map[string]int{"T0": 1200, "T1": 150, "T2": 120, "T11": 40, "T12": 40},
		Options{
			RAMBudget:   buffers * 2048,
			FlashParams: flash.Params{PageSize: 2048, PagesPerBlock: 16, Blocks: 8192, ReserveBlocks: 4},
		})
}

// TestRAMBudgetSweep runs the representative query mix at every
// whole-buffer budget from the paper's default (32 buffers) down to the
// minimum viable count, asserting the answer matches the reference
// engine at every step and that no grant leaks — graceful multi-pass
// degradation, not failure, is the contract (§3.4, Figure 11).
func TestRAMBudgetSweep(t *testing.T) {
	defaultBuffers := ram.DefaultBudget / 2048
	for buffers := defaultBuffers; buffers >= minViableBuffers; buffers-- {
		f := sweepFixture(t, buffers)
		for _, sql := range testQueries {
			want := f.refAnswer(t, sql)
			res, err := f.db.Run(sql)
			if err != nil {
				t.Fatalf("%d buffers: %s: %v", buffers, sql, err)
			}
			if !rowsEqual(res.Rows, want) {
				t.Fatalf("%d buffers: %s: %d rows, want %d", buffers, sql, len(res.Rows), len(want))
			}
			if f.db.RAM.Leaked() {
				t.Fatalf("%d buffers: %s: grants leaked", buffers, sql)
			}
			if f.db.RAM.HighWater() > f.db.RAM.Budget() {
				t.Fatalf("%d buffers: %s: budget exceeded (high water %d)", buffers, sql, f.db.RAM.HighWater())
			}
		}
	}
}

// TestRAMBudgetSweepForcedStrategies repeats the sweep at a tight budget
// with every strategy/projector combination forced: no operator may
// return a RAM-exhaustion error while its documented minimum is free,
// and Post-Select in particular must degrade to more re-scan passes.
func TestRAMBudgetSweepForcedStrategies(t *testing.T) {
	strategies := []Strategy{StratAuto, StratPre, StratCrossPre, StratPost,
		StratCrossPost, StratPostSelect, StratCrossPostSelect, StratNoFilter}
	projectors := []Projector{ProjectBloom, ProjectNoBF, ProjectBruteForce}
	for _, buffers := range []int{32, 16, 10, minViableBuffers} {
		f := sweepFixture(t, buffers)
		for _, sql := range testQueries {
			want := f.refAnswer(t, sql)
			for _, s := range strategies {
				for _, pj := range projectors {
					f.db.SetForceStrategy(s)
					f.db.SetProjector(pj)
					res, err := f.db.Run(sql)
					if err != nil {
						if errors.Is(err, ErrBloomInfeasible) {
							continue // the paper stops Post curves there too
						}
						t.Fatalf("%d buffers [%v/%v] %s: %v", buffers, s, pj, sql, err)
					}
					if !rowsEqual(res.Rows, want) {
						t.Fatalf("%d buffers [%v/%v] %s: %d rows, want %d",
							buffers, s, pj, sql, len(res.Rows), len(want))
					}
					if f.db.RAM.Leaked() {
						t.Fatalf("%d buffers [%v/%v] %s: grants leaked", buffers, s, pj, sql)
					}
				}
			}
		}
	}
}

// TestRAMBudgetBelowMinimumFailsCleanly drives the mix at budgets below
// the viable minimum: queries are allowed to fail, but only with an
// error wrapping ram.ErrExhausted (or ErrBloomInfeasible), never with a
// wrong answer, a leaked grant, or a budget overrun. This is the test
// that catches grant leaks on operator error paths.
func TestRAMBudgetBelowMinimumFailsCleanly(t *testing.T) {
	for buffers := minViableBuffers - 1; buffers >= 2; buffers-- {
		f := sweepFixture(t, buffers)
		answered := 0
		for _, sql := range testQueries {
			want := f.refAnswer(t, sql)
			res, err := f.db.Run(sql)
			if err != nil {
				if !errors.Is(err, ram.ErrExhausted) && !errors.Is(err, ErrBloomInfeasible) {
					t.Fatalf("%d buffers: %s: unexpected failure kind: %v", buffers, sql, err)
				}
			} else {
				answered++
				if !rowsEqual(res.Rows, want) {
					t.Fatalf("%d buffers: %s: wrong answer under pressure", buffers, sql)
				}
			}
			if f.db.RAM.Leaked() {
				t.Fatalf("%d buffers: %s: grants leaked (err=%v)", buffers, sql, err)
			}
			if f.db.RAM.HighWater() > f.db.RAM.Budget() {
				t.Fatalf("%d buffers: %s: budget exceeded", buffers, sql)
			}
		}
		// Even at 2 buffers the visible-only fast path must still answer.
		if answered == 0 {
			t.Fatalf("%d buffers: nothing answered at all", buffers)
		}
	}
}
