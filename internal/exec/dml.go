package exec

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ghostdb/internal/bus"
	"ghostdb/internal/delta"
	"ghostdb/internal/index"
	"ghostdb/internal/metrics"
	"ghostdb/internal/obs"
	"ghostdb/internal/query"
	"ghostdb/internal/sched"
	"ghostdb/internal/schema"
	"ghostdb/internal/store"
)

// This file is the DML write path: UPDATE and DELETE run as minimal
// sessions on the token owning the target table, stage their secure-side
// effects in the table's delta log (internal/delta) and, when the log
// grows past the threshold, hand the accumulated deltas to a background
// compaction that rebuilds the token's base images and indexes.
//
// The division of labor mirrors the read path's trust boundary:
//
//   - DELETE never touches the untrusted store. Deleted rows become
//     tombstones on the token; the visible partition keeps the stale
//     rows (ids are positional and never reclaimed), and every read
//     excludes tombstoned ids on the secure side.
//   - UPDATE of hidden columns stages whole-row upserts in the delta
//     log; the untrusted side sees only the statement text and the
//     page-aligned log append volume.
//   - UPDATE of visible columns is applied in place by the untrusted
//     engine — legal only because the resolver guarantees the matched
//     set derives from public data (visible or id predicates).

// compactFloor is the RAM floor of a compaction session: one buffer for
// the sequential base-image/SKT reads, one for the row being folded, one
// for the rebuild append path. Like every admission floor it is a
// constant — never a function of hidden state.
const compactFloor = 3

// planDML sizes the admission request of an UPDATE/DELETE. The floor is
// derived from the statement's public shape only: a statement with
// secure-side work (a delete, a hidden SET or a hidden predicate scan)
// needs the scan + staging + delta-append buffers; a visible-only UPDATE
// runs entirely in the untrusted store and needs a single buffer.
func (db *DB) planDML(d *query.DML) (*Plan, error) {
	if !db.loaded {
		return nil, errors.New("exec: database not loaded")
	}
	tok := db.TokenOf(d.Table)
	min := 1
	if d.Delete || d.HiddenSets() || d.HiddenAttrPreds() {
		min = 3
	}
	return &Plan{
		SQL:          d.Canonical(),
		DML:          true,
		MinBuffers:   min,
		WantBuffers:  min,
		TotalBuffers: tok.RAM.Buffers(),
		BufferBytes:  tok.RAM.BufferSize(),
		Shard:        tok.id,
		tok:          tok,
	}, nil
}

// spanDML / spanCompact name the cost spans covering the write path's
// secure-side work, mirroring the read path's per-operator spans.
const (
	spanDML     = "DML"
	spanCompact = "Compact"
)

// sessionStats summarizes a write-path session's cost from the counters
// it observed while holding its token — the DML/compaction counterpart
// of queryRun.collectStats.
//
//ghostdb:requires-slot
func (db *DB) sessionStats(tok *Token, col *metrics.Collector, planMin, grant int) Stats {
	down, up := tok.Bus.Counters()
	total := metrics.Sample{Flash: tok.Dev.Counters(), BusDown: down, BusUp: up}
	st := Stats{
		IOTime:         db.opts.Model.IOTime(total),
		CommTime:       db.opts.Model.CommTime(total, col.ThroughputMBps()),
		Breakdown:      col.Breakdown(),
		Flash:          tok.Dev.Counters(),
		BusDown:        down,
		BusUp:          up,
		PlanMinBuffers: planMin,
		GrantBuffers:   grant,
		Shard:          tok.id,
	}
	st.SimTime = st.IOTime + st.CommTime
	st.opSims = make(map[string]time.Duration)
	for _, name := range col.Names() {
		st.opSims[name] = col.SimTimeOf(name)
	}
	return st
}

// runDML executes an UPDATE/DELETE as a session on the token owning the
// target table, exactly like runInsert: FIFO admission sized from the
// plan floor, then exclusive use of the token while the statement stages
// and commits. The result carries the affected-row count plus the
// statement's Stats, and the session gets the same trace spans, slow-log
// entry (kind-tagged UPDATE/DELETE) and pacing a SELECT gets.
func (db *DB) runDML(ctx context.Context, d *query.DML, plan *Plan, cfg QueryConfig) (*Result, error) {
	tok := plan.tok
	parent := cfg.traceParent()
	admSp := parent.Start("admission")
	queued := time.Now()
	sess, err := tok.sched.Acquire(ctx, sched.Request{
		MinBuffers: plan.MinBuffers, WantBuffers: plan.WantBuffers})
	admSp.End()
	if err != nil {
		db.noteAdmissionErr(tok, err)
		db.inst.queryErrs.Inc()
		return nil, wrapAdmission(err)
	}
	wait := time.Since(queued)
	defer sess.Release()
	execSp := parent.Start("exec")
	execSp.SetNote(fmt.Sprintf("token %d, grant %d buffers", tok.id, sess.Buffers()))
	defer execSp.End()
	var affected int
	var st Stats
	err = sess.Exclusive(ctx, func() error {
		slotStart := time.Now()
		defer func() {
			db.inst.slotOcc[tok.id].Observe(time.Since(slotStart).Seconds())
		}()
		g, err := sess.RAM().AllocBuffers(plan.MinBuffers)
		if err != nil {
			return err
		}
		defer g.Release()
		// The token is exclusively ours: zero the device/bus counters so
		// the collector's spans see only this statement's I/O.
		col := metrics.NewCollector(tok.Dev, tok.Bus, db.opts.Model)
		col.Reset()
		// Meter the statement-text upload like the read path does: the
		// canonical text is the one thing the model reveals anyway.
		if err := col.Span(spanBus, func() error {
			sql := d.Canonical()
			return tok.Bus.Transfer(bus.Up, "query", len(sql), sql)
		}); err != nil {
			return err
		}
		if err := col.Span(spanDML, func() error {
			n, err := db.dmlOn(tok, d)
			affected = n
			return err
		}); err != nil {
			return err
		}
		st = db.sessionStats(tok, col, plan.MinBuffers, sess.Buffers())
		attachOperatorSpans(execSp, col, st.SimTime)
		// Paced mode: hold the slot for a real-time shadow of the
		// simulated cost, so paced wall-clock benches see writes occupy
		// the token like the modeled hardware would.
		if pace := db.opts.PaceSimulation; pace > 0 {
			paceSp := execSp.Start("pace")
			time.Sleep(time.Duration(float64(st.SimTime) / pace))
			paceSp.End()
		}
		return nil
	})
	if err != nil {
		db.inst.queryErrs.Inc()
		return nil, err
	}
	st.QueueWait = wait
	db.observeDML(d, st)
	db.maybeCompact(tok)
	return &Result{
		Columns: []string{"affected"},
		Rows:    []schema.Row{{schema.IntVal(int64(affected))}},
		Stats:   st,
	}, nil
}

// dmlOn stages and commits one UPDATE/DELETE against its token. The
// matched set is the intersection of three independently-derived id
// sets — the untrusted engine's visible selection (metered over the
// bus), an overlay-corrected sequential scan of the hidden image for
// hidden attribute predicates, and pure id arithmetic — minus the
// tombstoned ids.
//
//ghostdb:requires-slot
func (db *DB) dmlOn(tok *Token, d *query.DML) (int, error) {
	t := db.Sch.Tables[d.Table]
	rows := tok.rows[d.Table]

	// DELETEs and hidden SETs stage secure-side work; a visible-only
	// UPDATE must not touch the token's flash (it would charge secure
	// write cost for untrusted-side work).
	secure := d.Delete || d.HiddenSets()
	var dl *delta.Table
	var err error
	if secure {
		dl, err = tok.deltaFor(d.Table)
		if err != nil {
			return 0, err
		}
	} else {
		dl = tok.deltaOf(d.Table)
	}
	// Rebuild the merge view by replaying the existing log — the read
	// amplification every delta-touching statement pays (a sequential,
	// data-independent scan charged to this session).
	if dl != nil && dl.Depth() > 0 {
		if err := dl.Refresh(); err != nil {
			return 0, err
		}
	}

	var visPreds, hidPreds []query.Pred
	var idFilters []func(uint32) bool
	for _, p := range d.Preds {
		switch {
		case p.ColIdx == query.IDCol:
			idFilters = append(idFilters, idPredFilter(p))
		case p.Hidden:
			hidPreds = append(hidPreds, p)
		default:
			visPreds = append(visPreds, p)
		}
	}

	var visSet map[uint32]bool
	if len(visPreds) > 0 {
		vr, err := tok.Untr.Vis(d.Table, visPreds, nil)
		if err != nil {
			return 0, err
		}
		visSet = make(map[uint32]bool, len(vr.IDs))
		for _, id := range vr.IDs {
			visSet[id] = true
		}
	}

	img := tok.Hidden[d.Table]
	var hidSet map[uint32]bool
	if len(hidPreds) > 0 {
		if img == nil {
			return 0, fmt.Errorf("exec: hidden predicate on %s without a hidden image", t.Name)
		}
		// Full overlay-corrected scan: climbing indexes are not usable
		// here — their entries go stale the moment an upsert changes a
		// key, and the scan's cost is data-independent anyway.
		hidSet = make(map[uint32]bool)
		rd := img.File.NewSeqReader()
		for {
			rec, id, ok, err := rd.Next()
			if err != nil {
				return 0, err
			}
			if !ok {
				break
			}
			if dl != nil {
				if ov, ok := dl.Lookup(id); ok {
					rec = ov
				}
			}
			all := true
			for _, p := range hidPreds {
				v, err := img.Codec.DecodeColumn(rec, img.ColPos[p.ColIdx])
				if err != nil {
					return 0, err
				}
				if !matchValue(p, v) {
					all = false
					break
				}
			}
			if all {
				hidSet[id] = true
			}
		}
	}

	var matched []uint32
	for id := uint32(0); int(id) < rows; id++ {
		if dl != nil && dl.Dead(id) {
			continue
		}
		if visSet != nil && !visSet[id] {
			continue
		}
		if hidSet != nil && !hidSet[id] {
			continue
		}
		keep := true
		for _, f := range idFilters {
			if !f(id) {
				keep = false
				break
			}
		}
		if keep {
			matched = append(matched, id)
		}
	}

	if d.Delete {
		for _, id := range matched {
			if err := dl.StageTombstone(id); err != nil {
				return 0, err
			}
		}
	} else {
		if d.HiddenSets() {
			if img == nil {
				return 0, fmt.Errorf("exec: hidden SET on %s without a hidden image", t.Name)
			}
			srd := img.File.NewSortedReader()
			rec := make([]byte, img.Codec.Width())
			for _, id := range matched { // ascending, as SortedReader requires
				if ov, ok := dl.Lookup(id); ok {
					copy(rec, ov)
				} else if err := srd.Read(id, rec); err != nil {
					return 0, err
				}
				for _, s := range d.Sets {
					if !s.Hidden {
						continue
					}
					o, w := img.Codec.ColumnRange(img.ColPos[s.ColIdx])
					if err := schema.EncodeValue(rec[o:o+w], s.Val); err != nil {
						return 0, err
					}
				}
				if err := dl.StageUpsert(id, rec); err != nil {
					return 0, err
				}
			}
		}
		// Visible SETs go to the untrusted store in place. The resolver
		// guarantees the matched set derives from visible or id
		// predicates only, so handing it over reveals nothing the spy
		// could not compute from the statement text; no bus transfer is
		// charged for the same reason.
		for _, s := range d.Sets {
			if s.Hidden {
				continue
			}
			if err := tok.Untr.UpdateRows(d.Table, s.ColIdx, matched, s.Val); err != nil {
				return 0, err
			}
		}
	}
	if secure {
		// Page-aligned commit: the statement's flash write volume is a
		// whole number of pages, at least one, even when nothing matched.
		if err := dl.Commit(); err != nil {
			return 0, err
		}
	}

	tok.mu.Lock()
	tok.dmlCount++
	tok.mu.Unlock()
	tok.syncDeltaMirror()
	// The statement is committed: no later query touching this shard may
	// be answered from a pre-DML cache entry.
	tok.bumpVersion()
	if db.cache != nil {
		db.cache.BumpShard(tok.id)
	}
	if db.pages != nil {
		db.pages.BumpShard(tok.id)
	}
	return len(matched), nil
}

// maybeCompact starts a background compaction of the token when its
// delta depth has crossed the threshold and none is already running. The
// compaction acquires a *normal* scheduled session: on the bus and in
// the admission queue it is indistinguishable from query work.
func (db *DB) maybeCompact(tok *Token) {
	if db.opts.CompactThreshold < 0 {
		return
	}
	tok.mu.Lock()
	trigger := !tok.compacting && tok.deltaPages >= db.opts.CompactThreshold
	if trigger {
		tok.compacting = true
	}
	tok.mu.Unlock()
	if !trigger {
		return
	}
	go func() {
		defer func() {
			tok.mu.Lock()
			tok.compacting = false
			tok.mu.Unlock()
		}()
		if err := db.compactOn(context.Background(), tok); err != nil {
			db.inst.compactErrs.Inc()
		}
	}()
}

// WaitCompactions blocks until no token has a background compaction in
// flight (or ctx expires). A compaction triggered by a just-returned
// statement is already marked running when that statement's result is
// delivered, so a caller that quiesces its own statements first cannot
// race the trigger. Benches use this to read settled delta counters;
// it does not prevent new DML from triggering further compactions.
func (db *DB) WaitCompactions(ctx context.Context) error {
	for {
		busy := false
		for _, tok := range db.tokens {
			tok.mu.Lock()
			if tok.compacting {
				busy = true
			}
			tok.mu.Unlock()
		}
		if !busy {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// DeltaStats is one token's declassified write-path counters: the delta
// log depth in flash pages, the DML statements committed, and the
// compactions completed. All three are mirrors maintained at commit and
// compaction time — reading them never touches hidden state.
type DeltaStats struct {
	// Pages is the current delta-log depth across the token's tables.
	Pages int
	// DMLStatements counts committed UPDATE/DELETE statements.
	DMLStatements uint64
	// Compactions counts completed delta compactions.
	Compactions uint64
}

// TokenDeltaStats reports each token's write-path counters, in shard
// order.
func (db *DB) TokenDeltaStats() []DeltaStats {
	out := make([]DeltaStats, len(db.tokens))
	for i, t := range db.tokens {
		out[i] = DeltaStats{
			Pages:         t.DeltaPages(),
			DMLStatements: t.DMLStatements(),
			Compactions:   t.Compactions(),
		}
	}
	return out
}

// Compact synchronously compacts every token carrying live delta state:
// each rewrites its base images and index catalog with the accumulated
// upserts folded in and resets its delta logs. Queries keep their
// answers across the swap (tombstones persist; upserts were already
// visible through the overlay), so the result cache is left untouched.
func (db *DB) Compact(ctx context.Context) error {
	for _, tok := range db.tokens {
		if err := db.compactOn(ctx, tok); err != nil {
			return err
		}
	}
	return nil
}

// compactOn runs one token's compaction under a scheduled session. The
// session is unsheddable (maintenance must run precisely when the
// engine is busiest) but otherwise indistinguishable from query work in
// the admission queue; it carries its own span tree and, past the slow
// threshold, a COMPACT-kind slow-log entry, so background compactions
// are as visible as the statements that triggered them.
func (db *DB) compactOn(ctx context.Context, tok *Token) error {
	if tok.DeltaPages() == 0 {
		return nil
	}
	min := compactFloor
	if b := tok.RAM.Buffers(); b < min {
		min = b
	}
	name := fmt.Sprintf("COMPACT(token %d)", tok.id)
	tr := obs.NewTrace(name)
	admSp := tr.Root().Start("admission")
	queued := time.Now()
	sess, err := tok.sched.Acquire(ctx, sched.Request{
		MinBuffers: min, WantBuffers: min, Unsheddable: true})
	admSp.End()
	if err != nil {
		return wrapAdmission(err)
	}
	wait := time.Since(queued)
	defer sess.Release()
	execSp := tr.Root().Start("exec")
	execSp.SetNote(fmt.Sprintf("token %d, grant %d buffers", tok.id, sess.Buffers()))
	start := time.Now()
	var st Stats
	err = sess.Exclusive(ctx, func() error {
		g, err := sess.RAM().AllocBuffers(min)
		if err != nil {
			return err
		}
		defer g.Release()
		col := metrics.NewCollector(tok.Dev, tok.Bus, db.opts.Model)
		col.Reset()
		if err := col.Span(spanCompact, func() error {
			return db.compactToken(tok)
		}); err != nil {
			return err
		}
		st = db.sessionStats(tok, col, min, sess.Buffers())
		attachOperatorSpans(execSp, col, st.SimTime)
		if pace := db.opts.PaceSimulation; pace > 0 {
			paceSp := execSp.Start("pace")
			time.Sleep(time.Duration(float64(st.SimTime) / pace))
			paceSp.End()
		}
		return nil
	})
	execSp.End()
	if err != nil {
		return err
	}
	tr.Finish()
	st.QueueWait = wait
	db.inst.compactSecs[tok.id].Observe(time.Since(start).Seconds())
	db.observeStatement("COMPACT", name, st)
	return nil
}

// compactToken rewrites the token's base state with its deltas folded
// in: fresh hidden images for tables with live upserts, a fresh index
// catalog built from the folded attribute values and the fk edges
// recovered from the old SKTs, then a delta reset (the tombstone set
// survives — ids never revive — checkpointed to flash by the reset).
// Tombstoned rows keep their positional slots in the rebuilt images and
// indexes; the persistent tombstone set keeps excluding them at read
// time, exactly as before the compaction, which is why answers are
// unchanged and the result cache needs no invalidation.
//
// Only the FullIndex variant can compact: reduced variants keep no
// per-table SKT, so the fk edges of inner tables cannot be recovered
// for a rebuild. Under those variants the delta log simply accumulates
// (the overlay-corrected read path stays correct, just slower).
//
//ghostdb:requires-slot
func (db *DB) compactToken(tok *Token) error {
	tok.mu.Lock()
	cat := tok.Cat
	deltas := make(map[int]*delta.Table, len(tok.deltas))
	for ti, dl := range tok.deltas {
		deltas[ti] = dl
	}
	tok.mu.Unlock()
	work := false
	for _, dl := range deltas {
		if dl.Depth() > 0 || dl.DirtyCount() > 0 {
			work = true
			break
		}
	}
	if !work || cat == nil {
		return nil
	}
	if cat.Variant != index.VariantFull {
		return nil
	}

	inputs := make(map[int]*index.TableInput)
	newImgs := make(map[int]*store.RowFile)
	for _, t := range db.Sch.Tables {
		if db.TokenOf(t.Index) != tok {
			continue
		}
		rows := tok.rows[t.Index]
		in := &index.TableInput{Rows: rows}

		// Recover the fk edges from the SKT's direct-child columns; Build
		// re-derives the transitive descendants itself.
		if len(t.Children()) > 0 {
			skt, ok := cat.SKTOf(t.Index)
			if !ok {
				return fmt.Errorf("exec: compaction: no SKT for %s", t.Name)
			}
			in.FKs = make(map[int][]uint32, len(t.Children()))
			childPos := make(map[int]int, len(t.Children()))
			for _, c := range t.Children() {
				pos, ok := skt.ColumnOf(c)
				if !ok {
					return fmt.Errorf("exec: compaction: SKT of %s lacks child %s",
						t.Name, db.Sch.Tables[c].Name)
				}
				childPos[c] = pos
				in.FKs[c] = make([]uint32, 0, rows)
			}
			rd := skt.File().NewSeqReader()
			row := make([]uint32, len(skt.Descendants()))
			for {
				rec, _, ok, err := rd.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				skt.DecodeRow(rec, row)
				for _, c := range t.Children() {
					in.FKs[c] = append(in.FKs[c], row[childPos[c]])
				}
			}
		}

		// One sequential pass over the hidden image folds the overlay
		// into the per-column index inputs and, when the table carries
		// live upserts, a fresh base image.
		img := tok.Hidden[t.Index]
		dl := deltas[t.Index]
		if img != nil {
			var attrs []index.AttrData
			type colFill struct{ off, w, ai int }
			var fills []colFill
			for ci, col := range t.Columns {
				if !col.Hidden {
					continue
				}
				o, w := img.Codec.ColumnRange(img.ColPos[ci])
				attrs = append(attrs, index.AttrData{
					ColIdx: ci, Width: w, Data: make([]byte, 0, w*rows)})
				fills = append(fills, colFill{off: o, w: w, ai: len(attrs) - 1})
			}
			rebuild := dl != nil && dl.DirtyCount() > 0
			var nf *store.RowFile
			if rebuild {
				var err error
				nf, err = store.NewRowFile(tok.Dev, img.Codec.Width())
				if err != nil {
					return err
				}
			}
			rd := img.File.NewSeqReader()
			for {
				rec, id, ok, err := rd.Next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				if dl != nil {
					if ov, ok := dl.Lookup(id); ok {
						rec = ov
					}
				}
				for _, f := range fills {
					attrs[f.ai].Data = append(attrs[f.ai].Data, rec[f.off:f.off+f.w]...)
				}
				if rebuild {
					if err := nf.Append(rec); err != nil {
						return err
					}
				}
			}
			if rebuild {
				if err := nf.Seal(); err != nil {
					return err
				}
				newImgs[t.Index] = nf
			}
			in.Attrs = attrs
		}
		inputs[t.Index] = in
	}
	if len(inputs) == 0 {
		return nil
	}
	newCat, err := index.Build(tok.Dev, db.Sch, inputs, cat.Variant)
	if err != nil {
		return err
	}

	// Retire the replaced structures: old SKT files, the climbing
	// indexes' sublist segments, and the base images of rebuilt tables.
	// The climbing indexes' btree nodes have no free path — those pages
	// stay with the FTL until device reset, a documented trade-off of
	// the prototype's write-once page model.
	for _, t := range db.Sch.Tables {
		if db.TokenOf(t.Index) != tok {
			continue
		}
		if skt, ok := cat.SKTOf(t.Index); ok {
			if err := skt.File().Free(); err != nil {
				return err
			}
		}
		if ci, ok := cat.IDIndex(t.Index); ok {
			if err := ci.Lists().Free(); err != nil {
				return err
			}
		}
		for colIdx := range t.Columns {
			if ci, ok := cat.AttrIndex(t.Index, colIdx); ok {
				if err := ci.Lists().Free(); err != nil {
					return err
				}
			}
		}
		if nf, ok := newImgs[t.Index]; ok {
			old := tok.Hidden[t.Index]
			if err := old.File.Free(); err != nil {
				return err
			}
			// In-place swap: db.Hidden aliases the same *HiddenImage, so
			// the mono-token views see the fresh file immediately.
			old.File = nf
		}
		if dl := deltas[t.Index]; dl != nil {
			if err := dl.Reset(); err != nil {
				return err
			}
		}
	}

	tok.mu.Lock()
	tok.Cat = newCat
	tok.compactions++
	pages := 0
	for _, dl := range tok.deltas {
		pages += dl.Depth()
	}
	tok.deltaPages = pages
	tok.mu.Unlock()
	if tok.id == 0 {
		db.Cat = newCat
	}
	return nil
}
