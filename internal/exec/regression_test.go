package exec

import (
	"math/rand"
	"testing"
)

// TestPostSelectSeedRegression pins the quick.Check seed that broke the
// seed repository: seed -7675354091881124866 generates a Post-Select
// query whose staging phase ran while the QEPSJ pipeline still held its
// writer and Bloom-filter grants, so the old `Available() - k*BufferSize`
// admission arithmetic concluded there was "not enough RAM for
// post-select" and failed the query outright. With reservation-based
// admission the operator takes a smaller staging grant and re-scans the
// result column more times instead.
func TestPostSelectSeedRegression(t *testing.T) {
	f := newFixture(t, 77, map[string]int{"T0": 1200, "T1": 150, "T2": 120, "T11": 40, "T12": 40})
	strategies := []Strategy{StratAuto, StratPre, StratCrossPre, StratPost,
		StratCrossPost, StratPostSelect, StratNoFilter}
	projectors := []Projector{ProjectBloom, ProjectNoBF, ProjectBruteForce}

	// Replay exactly what TestRandomQueriesMatchReferenceProperty does
	// with the recorded seed, so the regression stays pinned even if the
	// random query generator evolves around it.
	const seed = int64(-7675354091881124866)
	rng := rand.New(rand.NewSource(seed))
	sql := randomQuery(rng)
	s := strategies[rng.Intn(len(strategies))]
	pj := projectors[rng.Intn(len(projectors))]
	if s != StratPostSelect {
		t.Logf("note: seed no longer forces Post-Select (got %v); still checking", s)
	}
	want := f.refAnswer(t, sql)
	f.db.SetForceStrategy(s)
	f.db.SetProjector(pj)
	res, err := f.db.Run(sql)
	if err != nil {
		t.Fatalf("seed %d [%v/%v] %s: %v", seed, s, pj, sql, err)
	}
	if !rowsEqual(res.Rows, want) {
		t.Fatalf("seed %d [%v/%v]: %d rows vs %d\nsql: %s", seed, s, pj, len(res.Rows), len(want), sql)
	}
	if f.db.RAM.Leaked() {
		t.Fatalf("seed %d: RAM grants leaked", seed)
	}
	checkNoLeak(t, f.db, sql)

	// The same query must also survive with every strategy/projector
	// combination forced, not just the recorded one.
	for _, fs := range strategies {
		for _, fp := range projectors {
			f.db.SetForceStrategy(fs)
			f.db.SetProjector(fp)
			res, err := f.db.Run(sql)
			if err != nil {
				t.Fatalf("[%v/%v] %s: %v", fs, fp, sql, err)
			}
			if !rowsEqual(res.Rows, want) {
				t.Fatalf("[%v/%v]: %d rows vs %d", fs, fp, len(res.Rows), len(want))
			}
			if f.db.RAM.Leaked() {
				t.Fatalf("[%v/%v]: RAM grants leaked", fs, fp)
			}
		}
	}
}
