package exec

import (
	"sync"

	"ghostdb/internal/bus"
	"ghostdb/internal/delta"
	"ghostdb/internal/flash"
	"ghostdb/internal/index"
	"ghostdb/internal/ram"
	"ghostdb/internal/sched"
	"ghostdb/internal/store"
	"ghostdb/internal/untrusted"
)

// Token is one simulated secure token: a NAND flash device with its FTL,
// a tiny RAM budget, a throughput-limited USB link, the index catalog
// and hidden images of the tables placed on it, and its own FIFO-fair
// admission scheduler. It is the unit cross-token sharding multiplies:
// everything that used to be "the token" inside DB is one of these, and
// every query session runs against exactly one of them — so each token's
// leak surface is precisely the mono-token engine's, composed per shard
// (the ObliDB-style up-front session grant is what makes the composition
// safe).
//
// The Untr engine is the untrusted-side mirror of the same placement:
// visible columns travel over their own token's bus, so per-token byte
// counters stay exact.
type Token struct {
	id   int
	Dev  *flash.Device
	RAM  *ram.Manager
	Bus  *bus.Channel
	Untr *untrusted.Engine
	Cat  *index.Catalog
	// Hidden maps table index -> the flash-resident image of its hidden
	// non-key attributes (only tables placed on this token appear).
	Hidden map[int]*HiddenImage

	// deltas maps table index -> the table's live delta state (created
	// lazily by the first DML touching the table, always in-slot). The
	// map itself is populated under mu; the *delta.Table values are only
	// touched with the execution slot held.
	deltas map[int]*delta.Table

	// insBytes maps table index -> the staged working-set bytes of one
	// INSERT (hidden record + SKT row). It is derived once at load time
	// so the planner can size insert admission without touching the
	// hidden images outside the token slot; immutable after Load.
	insBytes map[int]int

	// spools maps a canonical Vis key (plus spool shape) to the
	// flash-resident spool retained from an earlier query, so a repeat of
	// the same visible selection at the same data version ships a fixed
	// header instead of the full run (the token side of the page cache).
	// Like Hidden, the map and its files are only touched with the
	// execution slot held; spoolLRU orders keys for in-slot eviction.
	spools   map[string]*retainedSpool
	spoolLRU []string

	sched *sched.Scheduler

	// mu guards rows (against the public Rows accessor; in-query reads
	// are serialized by the token's execution slot), the per-token totals,
	// the data version, the catalog pointer (swapped by compaction) and
	// the declassified delta telemetry mirrors below.
	mu      sync.Mutex
	rows    map[int]int
	totals  Totals
	version uint64

	// Declassified telemetry mirrors: public counts updated at DML
	// commit and compaction so observability code never reads hidden
	// delta state. What they reveal — statement counts and delta page
	// depth — is derivable from statement text plus commit volume, both
	// already visible to the untrusted observer.
	deltaPages  int
	dmlCount    uint64
	compactions uint64
	compacting  bool
}

// Unit is the narrow, read-only view of a secure token that the
// untrusted-side composition layers — placement diagnostics, per-shard
// STATS aggregation, the server frontend — operate through. *Token is
// the (only) simulated implementation; a hardware-backed token would
// satisfy the same interface.
type Unit interface {
	// TokenID is the token's shard ordinal.
	TokenID() int
	// Totals is the cumulative simulated cost of the query sessions this
	// token has completed.
	Totals() Totals
	// DataVersion counts the committed updates this token has applied
	// (the per-shard entry of the result cache's version vector).
	DataVersion() uint64
	// Running and QueueLen expose the admission scheduler's state.
	Running() int
	QueueLen() int
	// RAMBuffers is the token's secure RAM budget in whole buffers.
	RAMBuffers() int
}

var _ Unit = (*Token)(nil)

// TokenID returns the token's shard ordinal.
func (t *Token) TokenID() int { return t.id }

// Sched exposes the token's admission scheduler (diagnostics and tests).
func (t *Token) Sched() *sched.Scheduler { return t.sched }

// Running returns the token's admitted, unreleased session count.
func (t *Token) Running() int { return t.sched.Running() }

// QueueLen returns the token's admission queue length.
func (t *Token) QueueLen() int { return t.sched.QueueLen() }

// RAMBuffers returns the token's secure RAM budget in whole buffers.
func (t *Token) RAMBuffers() int { return t.RAM.Buffers() }

// insertFootprint returns the bytes one INSERT into table stages on the
// secure side (precomputed at load time, see insBytes).
func (t *Token) insertFootprint(table int) int { return t.insBytes[table] }

// Rows returns the cardinality of a table placed on this token.
func (t *Token) Rows(table int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rows[table]
}

func (t *Token) setRows(table, n int) {
	t.mu.Lock()
	t.rows[table] = n
	t.mu.Unlock()
}

// Totals returns a snapshot of this token's cumulative session costs.
func (t *Token) Totals() Totals {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.totals
}

// mergeTotals folds one completed session's Stats into the token's
// totals. Fan-out queries merge once per per-token sub-session, so the
// per-shard byte counters always sum to exactly what an unsharded run
// of the same work would report.
func (t *Token) mergeTotals(st Stats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.totals.Queries++
	t.totals.SimTime += st.SimTime
	t.totals.IOTime += st.IOTime
	t.totals.CommTime += st.CommTime
	t.totals.Flash = t.totals.Flash.Add(st.Flash)
	t.totals.BusDown += st.BusDown
	t.totals.BusUp += st.BusUp
}

// DataVersion counts the committed updates applied to this token.
func (t *Token) DataVersion() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

func (t *Token) bumpVersion() {
	t.mu.Lock()
	t.version++
	t.mu.Unlock()
}

// catalog returns the token's index catalog under mu: compaction swaps
// the pointer (inside its execution slot), and plan-time readers run
// outside any slot, so the accessor is what keeps them racefree. A plan
// only derives scalar selectivities from the catalog; execution re-reads
// it in-slot, where the swap cannot interleave.
func (t *Token) catalog() *index.Catalog {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.Cat
}

// deltaOf returns the table's delta state, or nil when the table has
// never been touched by DML. Callers must hold the execution slot to
// dereference the result.
func (t *Token) deltaOf(table int) *delta.Table {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deltas[table]
}

// deltaFor returns the table's delta state, creating it on first use.
// Must run with the execution slot held (it sizes the log off the
// hidden image).
//
//ghostdb:requires-slot
func (t *Token) deltaFor(table int) (*delta.Table, error) {
	t.mu.Lock()
	d := t.deltas[table]
	t.mu.Unlock()
	if d != nil {
		return d, nil
	}
	rowW := 0
	if img := t.Hidden[table]; img != nil {
		rowW = img.Codec.Width()
	}
	d, err := delta.NewTable(t.Dev, rowW)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.deltas[table] = d
	t.mu.Unlock()
	return d, nil
}

// retainedSpool is one table's flash-resident Vis spool kept across
// queries, stamped with the token data version it was built under.
//
//ghostdb:requires-slot
type retainedSpool struct {
	file    *store.RowFile
	cols    []int
	width   int
	version uint64
}

// maxRetainedSpools bounds the flash pages parked in retained Vis
// spools per token. The bound is a constant of the engine — spool
// residency is a function of the public query history, never of hidden
// match counts.
const maxRetainedSpools = 32

// retainedSpoolFor returns the still-valid retained spool for key, or
// nil. A spool built under an older data version is freed on sight —
// any committed write on this token may have changed the visible rows
// it encodes. Must run with the execution slot held.
//
//ghostdb:requires-slot
func (t *Token) retainedSpoolFor(key string) *retainedSpool {
	sp := t.spools[key]
	if sp == nil {
		return nil
	}
	if sp.version != t.DataVersion() {
		t.dropSpool(key, sp)
		return nil
	}
	t.touchSpool(key)
	return sp
}

// retainSpool parks a sealed spool under key, evicting the least
// recently used spools beyond the bound. Must run with the execution
// slot held (eviction frees flash pages).
//
//ghostdb:requires-slot
func (t *Token) retainSpool(key string, sp *retainedSpool) {
	if t.spools == nil {
		t.spools = make(map[string]*retainedSpool)
	}
	if old := t.spools[key]; old != nil {
		t.dropSpool(key, old)
	}
	t.spools[key] = sp
	t.spoolLRU = append(t.spoolLRU, key)
	for len(t.spoolLRU) > maxRetainedSpools {
		victim := t.spoolLRU[0]
		t.dropSpool(victim, t.spools[victim])
	}
}

// dropSpool frees one retained spool's pages and forgets its key.
//
//ghostdb:requires-slot
func (t *Token) dropSpool(key string, sp *retainedSpool) {
	delete(t.spools, key)
	for i, k := range t.spoolLRU {
		if k == key {
			t.spoolLRU = append(t.spoolLRU[:i], t.spoolLRU[i+1:]...)
			break
		}
	}
	if sp != nil {
		_ = sp.file.Free()
	}
}

// touchSpool moves key to the most-recently-used end.
func (t *Token) touchSpool(key string) {
	for i, k := range t.spoolLRU {
		if k == key {
			t.spoolLRU = append(append(t.spoolLRU[:i], t.spoolLRU[i+1:]...), key)
			return
		}
	}
}

// syncDeltaMirror refreshes the declassified delta-depth mirror from
// the live delta logs. Must run with the execution slot held.
//
//ghostdb:requires-slot
func (t *Token) syncDeltaMirror() {
	pages := 0
	t.mu.Lock()
	for _, d := range t.deltas {
		pages += d.Depth()
	}
	t.deltaPages = pages
	t.mu.Unlock()
}

// DeltaPages reports the token's live delta log depth in flash pages
// (declassified mirror; see the field comment).
func (t *Token) DeltaPages() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deltaPages
}

// DMLStatements reports how many UPDATE/DELETE statements this token
// has committed.
func (t *Token) DMLStatements() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dmlCount
}

// Compactions reports how many delta compactions this token has run.
func (t *Token) Compactions() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.compactions
}

// Leaked reports whether any token's shared RAM budget was released
// with outstanding grants (an operator bookkeeping bug, surfaced for
// the benchmark sweeps and tests).
func (db *DB) Leaked() bool {
	for _, t := range db.tokens {
		if t.RAM.Leaked() {
			return true
		}
	}
	return false
}
