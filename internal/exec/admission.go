package exec

import (
	"fmt"
	"sort"

	"ghostdb/internal/ram"
	"ghostdb/internal/store"
)

// This file holds the RAM-admission fallbacks shared by the operators:
// when a stage receives fewer buffers than it has sorted sublists to
// open, the sublists are consolidated by multi-pass unions (the sublist
// reduction of §3.4) until they fit, instead of failing the query.

// unionFanIn sizes one reduction pass over nRuns sublists: as many
// streams as the session's bound fan-in cap and the free buffers allow
// (one is kept back for the spill writer inside unionSmallest), but no
// more than the deficit requires — merging k runs reduces the count by
// k-1, and rewriting extra sublists costs flash I/O without buying
// anything. The cap comes from the admission-time Binding (MergeFanIn
// inside the QEPSJ pipeline, CrossFanIn when the whole grant is free),
// so the pass structure is fixed by the grant, not by what happens to be
// momentarily unallocated. Fails wrapping ram.ErrExhausted when not even
// a 2-way union fits.
func (r *queryRun) unionFanIn(nRuns, deficit, fanCap int) (int, error) {
	k := r.ram.AvailableBuffers() - 1
	if k > fanCap {
		k = fanCap
	}
	if k > nRuns {
		k = nRuns
	}
	if k < 2 {
		return 0, fmt.Errorf("exec: cannot union %d sublists with %d buffers free: %w",
			nRuns, r.ram.AvailableBuffers(), ram.ErrExhausted)
	}
	if need := deficit + 1; k > need {
		k = need
	}
	return k, nil
}

// unionSmallest merges the k smallest of the given runs into one new run
// on a fresh temp segment, holding one stream buffer per input plus one
// spill-writer buffer for the duration of the pass. The parallel
// segs/runs slices are returned with the k inputs replaced by the union.
func (r *queryRun) unionSmallest(segs []*store.ListSegment, runs []store.Run, k int, span string) ([]*store.ListSegment, []store.Run, error) {
	if k < 2 || k > len(runs) {
		return nil, nil, fmt.Errorf("exec: bad union fan-in %d of %d", k, len(runs))
	}
	order := make([]int, len(runs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return runs[order[a]].Count < runs[order[b]].Count })
	pick := order[:k]
	sort.Ints(pick)

	wg, err := r.ram.ReserveBuffers(1, 1) // spill writer
	if err != nil {
		return nil, nil, err
	}
	defer wg.Release()

	srcs := make([]idStream, 0, k)
	for _, i := range pick {
		s, err := newRunStream(segs[i], runs[i], r.ram)
		if err != nil {
			for _, s2 := range srcs {
				s2.close()
			}
			return nil, nil, err
		}
		srcs = append(srcs, s)
	}
	u, err := newUnionStream(srcs)
	if err != nil {
		return nil, nil, err
	}
	out := r.newTemp()
	err = r.col.Span(span, func() error {
		if err := out.BeginRun(); err != nil {
			return err
		}
		for {
			v, ok, err := u.next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if err := out.Add(v); err != nil {
				return err
			}
		}
	})
	u.close()
	if err != nil {
		return nil, nil, err
	}
	run, err := out.EndRun()
	if err != nil {
		return nil, nil, err
	}
	if err := out.Seal(); err != nil {
		return nil, nil, err
	}

	picked := make(map[int]bool, k)
	for _, i := range pick {
		picked[i] = true
	}
	nsegs := make([]*store.ListSegment, 0, len(runs)-k+1)
	nruns := make([]store.Run, 0, len(runs)-k+1)
	for i := range runs {
		if !picked[i] {
			nsegs = append(nsegs, segs[i])
			nruns = append(nruns, runs[i])
		}
	}
	return append(nsegs, out), append(nruns, run), nil
}

// consolidateRuns unions sorted id runs in as many passes as needed until
// at most maxRuns remain, so a downstream stage can open them with the
// stream buffers it actually has. It runs outside the QEPSJ pipeline
// (nothing else held), so passes use the full-grant CrossFanIn binding.
// Needs 3 free buffers (2 streams + 1 writer) to make progress; fails
// wrapping ram.ErrExhausted below that.
func (r *queryRun) consolidateRuns(segs []*store.ListSegment, runs []store.Run, maxRuns int, span string) ([]*store.ListSegment, []store.Run, error) {
	if maxRuns < 1 {
		maxRuns = 1
	}
	for len(runs) > maxRuns {
		k, err := r.unionFanIn(len(runs), len(runs)-maxRuns, r.bind.CrossFanIn)
		if err != nil {
			return nil, nil, err
		}
		segs, runs, err = r.unionSmallest(segs, runs, k, span)
		if err != nil {
			return nil, nil, err
		}
	}
	return segs, runs, nil
}

// sameSegs builds the parallel segment slice for runs that all live in
// one list segment.
func sameSegs(seg *store.ListSegment, n int) []*store.ListSegment {
	segs := make([]*store.ListSegment, n)
	for i := range segs {
		segs[i] = seg
	}
	return segs
}

// consolidateTupleRuns merges a table's pos-sorted MJoin batch runs until
// at most maxRuns remain, so the final join can cursor over them with the
// buffers its reservation granted. Runs hold disjoint position sets, so a
// min-head merge is exact. Each pass reserves one buffer per input reader
// plus one writer.
func (r *queryRun) consolidateTupleRuns(tp *tableProj, maxRuns int) error {
	if maxRuns < 1 {
		maxRuns = 1
	}
	for len(tp.outRuns) > maxRuns {
		g, err := r.ram.ReserveBuffers(3, len(tp.outRuns)+1)
		if err != nil {
			return fmt.Errorf("exec: final join consolidation: %w", err)
		}
		k := g.Buffers() - 1
		if k > len(tp.outRuns) {
			k = len(tp.outRuns)
		}
		if need := len(tp.outRuns) - maxRuns + 1; k > need {
			k = need
		}
		err = r.mergeTupleRuns(tp, k)
		g.Release()
		if err != nil {
			return err
		}
	}
	return nil
}

// mergeTupleRuns replaces the k smallest batch runs of tp with their
// position-ordered merge, spilled to a fresh tuple segment.
func (r *queryRun) mergeTupleRuns(tp *tableProj, k int) error {
	order := make([]int, len(tp.outRuns))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return tp.outRuns[order[a]].count < tp.outRuns[order[b]].count })
	pick := order[:k]
	sort.Ints(pick)

	out := store.NewSegment(r.tok.Dev)
	r.tempSegs = append(r.tempSegs, out)
	sub := &tableProj{table: tp.table, tupleW: tp.tupleW}
	for _, i := range pick {
		sub.outRuns = append(sub.outRuns, tp.outRuns[i])
	}
	cur, err := newTupleCursor(sub)
	if err != nil {
		return err
	}
	count := 0
	err = r.col.Span(spanProject, func() error {
		for {
			t, ok, err := cur.takeMin()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if err := out.Append(t); err != nil {
				return err
			}
			count++
		}
	})
	if err != nil {
		return err
	}
	if err := out.Seal(); err != nil {
		return err
	}

	picked := make(map[int]bool, k)
	for _, i := range pick {
		picked[i] = true
	}
	var nruns []segRun
	for i, run := range tp.outRuns {
		if !picked[i] {
			nruns = append(nruns, run)
		}
	}
	tp.outRuns = append(nruns, segRun{seg: out, off: 0, count: count})
	return nil
}
