package exec

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ghostdb/internal/store"
)

// reduceGroups implements the sublist reduction phase of §3.4: when the
// total number of sublists exceeds the RAM buffers available for the
// Merge, the smallest sublists of the largest group are pre-unioned into
// a single sublist spilled to flash, repeatedly, until everything fits.
// reserved buffers are kept back for the downstream pipeline (SKT reader,
// column writers).
func (r *queryRun) reduceGroups(groups []*mergeGroup, reserved int) error {
	totalRuns := 0
	for _, g := range groups {
		totalRuns += len(g.runs)
	}
	avail := r.db.RAM.AvailableBuffers() - reserved - 1 // -1: reduction output buffer
	if avail < 2 {
		return fmt.Errorf("exec: RAM budget too small for merge (have %d buffers)", r.db.RAM.AvailableBuffers())
	}
	for totalRuns > avail {
		// Largest group first.
		g := groups[0]
		for _, cand := range groups[1:] {
			if len(cand.runs) > len(g.runs) {
				g = cand
			}
		}
		if len(g.runs) < 2 {
			return fmt.Errorf("exec: cannot reduce below %d sublists with %d buffers", totalRuns, avail)
		}
		// Union the k smallest sublists ("the smallest sublists of each
		// list are the best candidates for reduction").
		k := avail
		if k > len(g.runs) {
			k = len(g.runs)
		}
		order := make([]int, len(g.runs))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return g.runs[order[a]].Count < g.runs[order[b]].Count })
		pick := order[:k]
		sort.Ints(pick)

		srcs := make([]idStream, 0, k)
		for _, i := range pick {
			s, err := newRunStream(g.runSegs[i], g.runs[i], r.db.RAM)
			if err != nil {
				for _, s2 := range srcs {
					s2.close()
				}
				return err
			}
			srcs = append(srcs, s)
		}
		u, err := newUnionStream(srcs)
		if err != nil {
			return err
		}
		out := r.newTemp()
		err = r.db.Col.Span(spanMerge, func() error {
			if err := out.BeginRun(); err != nil {
				return err
			}
			for {
				v, ok, err := u.next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				if err := out.Add(v); err != nil {
					return err
				}
			}
			return nil
		})
		u.close()
		if err != nil {
			return err
		}
		run, err := out.EndRun()
		if err != nil {
			return err
		}
		if err := out.Seal(); err != nil {
			return err
		}
		// Replace the k reduced sublists with the single union.
		keep := make(map[int]bool, k)
		for _, i := range pick {
			keep[i] = true
		}
		var nruns []store.Run
		var nsegs []*store.ListSegment
		for i := range g.runs {
			if !keep[i] {
				nruns = append(nruns, g.runs[i])
				nsegs = append(nsegs, g.runSegs[i])
			}
		}
		g.runs = append(nruns, run)
		g.runSegs = append(nsegs, out)
		totalRuns -= k - 1
	}
	return nil
}

// openGroup opens the union stream of one merge group (one RAM buffer per
// flash sublist; direct streams ride the communication buffer).
func (r *queryRun) openGroup(g *mergeGroup) (idStream, error) {
	srcs := make([]idStream, 0, len(g.runs)+len(g.streams))
	for i := range g.runs {
		s, err := newRunStream(g.runSegs[i], g.runs[i], r.db.RAM)
		if err != nil {
			for _, s2 := range srcs {
				s2.close()
			}
			return nil, err
		}
		srcs = append(srcs, s)
	}
	srcs = append(srcs, g.streams...)
	if len(srcs) == 0 {
		return emptyStream{}, nil
	}
	if len(srcs) == 1 {
		return srcs[0], nil
	}
	return newUnionStream(srcs)
}

// openMerged opens the full Merge: the intersection of all groups. With
// no groups at all, every anchor tuple qualifies so far (a sequential id
// stream over the anchor table).
func (r *queryRun) openMerged(groups []*mergeGroup) (idStream, error) {
	if len(groups) == 0 {
		return &seqStream{n: uint32(r.db.rows[r.q.Anchor])}, nil
	}
	srcs := make([]idStream, 0, len(groups))
	for _, g := range groups {
		s, err := r.openGroup(g)
		if err != nil {
			for _, s2 := range srcs {
				s2.close()
			}
			return nil, err
		}
		srcs = append(srcs, s)
	}
	if len(srcs) == 1 {
		return srcs[0], nil
	}
	return newIntersectStream(srcs), nil
}

// joinAndStore drives the pipelined batch loop: pull anchor ids from the
// Merge, semi-join them with the anchor's SKT to recover the descendant
// ids the projection needs, probe the Bloom filters, and materialize the
// survivors column by column (the Store cost of Figure 15).
func (r *queryRun) joinAndStore(merged idStream, needed []int, bfs []*bfFilter) error {
	db := r.db
	anchor := r.q.Anchor

	anchorSeg := r.newTemp()
	if err := anchorSeg.BeginRun(); err != nil {
		return err
	}
	colSegs := make(map[int]*store.ListSegment, len(needed))
	for _, ti := range needed {
		colSegs[ti] = r.newTemp()
		if err := colSegs[ti].BeginRun(); err != nil {
			return err
		}
	}

	// RAM for the writers (one page each) and, if joining, the SKT reader.
	writers := len(needed) + 1
	grant, err := db.RAM.AllocBuffers(writers)
	if err != nil {
		return err
	}
	defer grant.Release()

	var skt *sktAccess
	if len(needed) > 0 {
		s, ok := db.Cat.SKTOf(anchor)
		if !ok {
			return fmt.Errorf("exec: no SKT on anchor %s", db.Sch.Tables[anchor].Name)
		}
		g, err := db.RAM.AllocBuffers(1)
		if err != nil {
			return err
		}
		defer g.Release()
		cols := make([]int, len(needed))
		for i, ti := range needed {
			c, ok := s.ColumnOf(ti)
			if !ok {
				return fmt.Errorf("exec: SKT of %s has no column for %s",
					db.Sch.Tables[anchor].Name, db.Sch.Tables[ti].Name)
			}
			cols[i] = c
		}
		skt = &sktAccess{skt: s, reader: s.File().NewSortedReader(), cols: cols,
			rec: make([]byte, s.File().RowWidth())}
	}

	const batchSize = 512
	ids := make([]uint32, 0, batchSize)
	tuple := make([]uint32, len(needed))
	n := 0
	for {
		// Merge: fill a batch of anchor ids.
		ids = ids[:0]
		err := db.Col.Span(spanMerge, func() error {
			for len(ids) < batchSize {
				v, ok, err := merged.next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				ids = append(ids, v)
			}
			return nil
		})
		if err != nil {
			return err
		}
		if len(ids) == 0 {
			break
		}
		for _, id := range ids {
			// SJoin: fetch the descendant ids from the SKT.
			if skt != nil {
				err := db.Col.Span(spanSJoin, func() error {
					return skt.read(id, tuple)
				})
				if err != nil {
					return err
				}
			}
			// ProbeBF: approximate visible filtering.
			if len(bfs) > 0 {
				drop := false
				err := db.Col.Span(spanBF, func() error {
					for _, f := range bfs {
						v := tupleValue(anchor, id, needed, tuple, f.table)
						if !f.filter.MayContain(v) {
							drop = true
							return nil
						}
					}
					return nil
				})
				if err != nil {
					return err
				}
				if drop {
					continue
				}
			}
			// Store: materialize the survivor.
			err = db.Col.Span(spanStore, func() error {
				if err := anchorSeg.Add(id); err != nil {
					return err
				}
				for i, ti := range needed {
					if err := colSegs[ti].Add(tuple[i]); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			n++
		}
	}

	r.resN = n
	r.resCols = map[int]resCol{}
	finish := func(ti int, seg *store.ListSegment) error {
		return db.Col.Span(spanStore, func() error {
			run, err := seg.EndRun()
			if err != nil {
				return err
			}
			if err := seg.Seal(); err != nil {
				return err
			}
			r.resCols[ti] = resCol{seg: seg, run: run}
			return nil
		})
	}
	if err := finish(anchor, anchorSeg); err != nil {
		return err
	}
	for _, ti := range needed {
		if err := finish(ti, colSegs[ti]); err != nil {
			return err
		}
	}

	// Exact Post-Select passes, if any.
	for ti, ids := range r.postSelect {
		if err := r.applyPostSelect(ti, ids); err != nil {
			return err
		}
	}
	return nil
}

// sktAccess wraps sorted SKT row access with column projection.
type sktAccess struct {
	skt    interface{ File() *store.RowFile }
	reader *store.SortedReader
	cols   []int
	rec    []byte
}

func (s *sktAccess) read(id uint32, dst []uint32) error {
	if err := s.reader.Read(id, s.rec); err != nil {
		return err
	}
	for i, c := range s.cols {
		dst[i] = binary.BigEndian.Uint32(s.rec[c*store.IDBytes:])
	}
	return nil
}

// tupleValue extracts the id of table `want` from the current tuple.
func tupleValue(anchor int, anchorID uint32, needed []int, tuple []uint32, want int) uint32 {
	if want == anchor {
		return anchorID
	}
	for i, ti := range needed {
		if ti == want {
			return tuple[i]
		}
	}
	return anchorID
}
