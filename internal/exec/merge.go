package exec

import (
	"encoding/binary"
	"fmt"

	"ghostdb/internal/delta"
	"ghostdb/internal/ram"
	"ghostdb/internal/store"
)

// reduceGroups implements the sublist reduction phase of §3.4: when the
// total number of sublists exceeds the stream buffers the Merge could
// open, the smallest sublists of the largest group are pre-unioned into
// a single sublist spilled to flash, repeatedly, until everything fits.
// Downstream pipeline stages (SKT reader, column writers) hold their own
// reservations, so whatever AvailableBuffers reports really is the
// Merge's to spend; fanCap is the admission-time fan-in binding for this
// context. Needs 3 free buffers (2 streams + 1 spill writer) to make
// progress when reduction is required.
func (r *queryRun) reduceGroups(groups []*mergeGroup, fanCap int) error {
	totalRuns := 0
	for _, g := range groups {
		totalRuns += len(g.runs)
	}
	for totalRuns > r.ram.AvailableBuffers() {
		// Largest group first.
		g := groups[0]
		for _, cand := range groups[1:] {
			if len(cand.runs) > len(g.runs) {
				g = cand
			}
		}
		if len(g.runs) < 2 {
			return fmt.Errorf("exec: cannot reduce %d merge sublists (largest group has %d): %w",
				totalRuns, len(g.runs), ram.ErrExhausted)
		}
		// Union the k smallest sublists ("the smallest sublists of each
		// list are the best candidates for reduction").
		k, err := r.unionFanIn(len(g.runs), totalRuns-r.ram.AvailableBuffers(), fanCap)
		if err != nil {
			return err
		}
		g.runSegs, g.runs, err = r.unionSmallest(g.runSegs, g.runs, k, spanMerge)
		if err != nil {
			return err
		}
		totalRuns -= k - 1
	}
	return nil
}

// openGroup opens the union stream of one merge group (one RAM buffer per
// flash sublist; direct streams ride the communication buffer).
func (r *queryRun) openGroup(g *mergeGroup) (idStream, error) {
	srcs := make([]idStream, 0, len(g.runs)+len(g.streams))
	for i := range g.runs {
		s, err := newRunStream(g.runSegs[i], g.runs[i], r.ram)
		if err != nil {
			for _, s2 := range srcs {
				s2.close()
			}
			return nil, err
		}
		srcs = append(srcs, s)
	}
	srcs = append(srcs, g.streams...)
	if len(srcs) == 0 {
		return emptyStream{}, nil
	}
	if len(srcs) == 1 {
		return srcs[0], nil
	}
	return newUnionStream(srcs)
}

// openMerged opens the full Merge: the intersection of all groups. With
// no groups at all, every anchor tuple qualifies so far (a sequential id
// stream over the anchor table).
func (r *queryRun) openMerged(groups []*mergeGroup) (idStream, error) {
	if len(groups) == 0 {
		return &seqStream{n: uint32(r.tok.rows[r.q.Anchor])}, nil
	}
	srcs := make([]idStream, 0, len(groups))
	for _, g := range groups {
		s, err := r.openGroup(g)
		if err != nil {
			for _, s2 := range srcs {
				s2.close()
			}
			return nil, err
		}
		srcs = append(srcs, s)
	}
	if len(srcs) == 1 {
		return srcs[0], nil
	}
	return newIntersectStream(srcs), nil
}

// storeSpill is the shared-stage store output: survivor tuples written
// row-major (anchor id, then one id per needed table) into one segment
// through a single staged buffer, awaiting the distribution pass.
type storeSpill struct {
	seg    *store.Segment
	needed []int
	n      int
}

// joinAndStore drives the pipelined batch loop: pull anchor ids from the
// Merge, semi-join them with the anchor's SKT to recover the descendant
// ids the projection needs, probe the Bloom filters, and materialize the
// survivors (the Store cost of Figure 15). The RAM for the writers and
// the SKT reader is reserved up front by the caller's pipeline plan
// (qepsj), so this stage never races the Merge for buffers. The writer
// variant was bound at admission: direct per-column writers when the
// grant holds them, otherwise one shared staged spill buffer whose
// contents distributeSpill rewrites column by column afterwards.
// tombChecks lists joined non-anchor tables with live tombstones: each
// anchor tuple is chased to them through the SKT and dropped when any
// referenced row is deleted (SQL join semantics over tombstones).
func (r *queryRun) joinAndStore(merged idStream, needed, tombChecks []int, bfs []*bfFilter) error {
	db := r.db
	anchor := r.q.Anchor
	direct := r.bind.StoreDirect || len(needed) == 0

	// The SKT lookup set is the projection's needed tables plus any
	// tomb-checked tables not already among them.
	lookup := append([]int(nil), needed...)
	lookupPos := make(map[int]int, len(lookup))
	for i, ti := range lookup {
		lookupPos[ti] = i
	}
	type tombCheck struct {
		pos int
		dl  *delta.Table
	}
	var tombs []tombCheck
	for _, ti := range tombChecks {
		pos, ok := lookupPos[ti]
		if !ok {
			pos = len(lookup)
			lookupPos[ti] = pos
			lookup = append(lookup, ti)
		}
		tombs = append(tombs, tombCheck{pos: pos, dl: r.tok.deltaOf(ti)})
	}

	var anchorSeg *store.ListSegment
	var colSegs map[int]*store.ListSegment
	var spillSeg *store.Segment
	var spillRec []byte
	if direct {
		anchorSeg = r.newTemp()
		if err := anchorSeg.BeginRun(); err != nil {
			return err
		}
		colSegs = make(map[int]*store.ListSegment, len(needed))
		for _, ti := range needed {
			colSegs[ti] = r.newTemp()
			if err := colSegs[ti].BeginRun(); err != nil {
				return err
			}
		}
	} else {
		spillSeg = store.NewSegment(r.tok.Dev)
		r.tempSegs = append(r.tempSegs, spillSeg)
		spillRec = make([]byte, (1+len(needed))*store.IDBytes)
	}

	var skt *sktAccess
	if len(lookup) > 0 {
		s, ok := r.tok.catalog().SKTOf(anchor)
		if !ok {
			return fmt.Errorf("exec: no SKT on anchor %s", db.Sch.Tables[anchor].Name)
		}
		cols := make([]int, len(lookup))
		for i, ti := range lookup {
			c, ok := s.ColumnOf(ti)
			if !ok {
				return fmt.Errorf("exec: SKT of %s has no column for %s",
					db.Sch.Tables[anchor].Name, db.Sch.Tables[ti].Name)
			}
			cols[i] = c
		}
		skt = &sktAccess{skt: s, reader: s.File().NewSortedReader(), cols: cols,
			rec: make([]byte, s.File().RowWidth())}
	}

	batchSize := r.bind.StoreBatch
	ids := make([]uint32, 0, batchSize)
	tuple := make([]uint32, len(lookup))
	n := 0
	for {
		// Merge: fill a batch of anchor ids.
		ids = ids[:0]
		err := r.col.Span(spanMerge, func() error {
			for len(ids) < batchSize {
				v, ok, err := merged.next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				ids = append(ids, v)
			}
			return nil
		})
		if err != nil {
			return err
		}
		if len(ids) == 0 {
			break
		}
		for _, id := range ids {
			// SJoin: fetch the descendant ids from the SKT.
			if skt != nil {
				err := r.col.Span(spanSJoin, func() error {
					return skt.read(id, tuple)
				})
				if err != nil {
					return err
				}
			}
			// Tombstones: drop the tuple if any chased row is deleted.
			if len(tombs) > 0 {
				dead := false
				for _, tc := range tombs {
					if tc.dl.Dead(tuple[tc.pos]) {
						dead = true
						break
					}
				}
				if dead {
					continue
				}
			}
			// ProbeBF: approximate visible filtering.
			if len(bfs) > 0 {
				drop := false
				err := r.col.Span(spanBF, func() error {
					for _, f := range bfs {
						v := tupleValue(anchor, id, needed, tuple, f.table)
						if !f.filter.MayContain(v) {
							drop = true
							return nil
						}
					}
					return nil
				})
				if err != nil {
					return err
				}
				if drop {
					continue
				}
			}
			// Store: materialize the survivor.
			err = r.col.Span(spanStore, func() error {
				if direct {
					if err := anchorSeg.Add(id); err != nil {
						return err
					}
					for i, ti := range needed {
						if err := colSegs[ti].Add(tuple[i]); err != nil {
							return err
						}
					}
					return nil
				}
				binary.BigEndian.PutUint32(spillRec, id)
				for i := range needed {
					binary.BigEndian.PutUint32(spillRec[(i+1)*store.IDBytes:], tuple[i])
				}
				return spillSeg.Append(spillRec)
			})
			if err != nil {
				return err
			}
			n++
		}
	}

	r.resN = n
	r.resCols = map[int]resCol{}
	if !direct {
		err := r.col.Span(spanStore, func() error { return spillSeg.Seal() })
		if err != nil {
			return err
		}
		r.spill = &storeSpill{seg: spillSeg, needed: needed, n: n}
		return nil
	}
	finish := func(ti int, seg *store.ListSegment) error {
		return r.col.Span(spanStore, func() error {
			run, err := seg.EndRun()
			if err != nil {
				return err
			}
			if err := seg.Seal(); err != nil {
				return err
			}
			r.resCols[ti] = resCol{seg: seg, run: run}
			return nil
		})
	}
	if err := finish(anchor, anchorSeg); err != nil {
		return err
	}
	for _, ti := range needed {
		if err := finish(ti, colSegs[ti]); err != nil {
			return err
		}
	}
	return nil
}

// distributeSpill is the shared-stage mode's second half: re-read the
// spilled row-major survivor tuples once per column (a sequential scan
// each) and write that column's ids into its own list segment — exactly
// the layout the projection operators expect from the direct writers.
// Holds 3 buffers: a 2-buffer spill reader (tuples may straddle a page
// boundary) plus the one open column writer. The extra flash traffic
// (one spill write + k+1 sequential re-reads) is the price of the lower
// floor; the simulated counters record it under Store.
func (r *queryRun) distributeSpill() error {
	sp := r.spill
	r.spill = nil
	tupleW := (1 + len(sp.needed)) * store.IDBytes
	resv, err := r.ram.Plan(
		ram.Claim{Name: "spill-reader", Min: 2, Want: 2},
		ram.Claim{Name: "column-writer", Min: 1, Want: 1},
	)
	if err != nil {
		return fmt.Errorf("exec: store distribution: %w", err)
	}
	defer resv.Release()
	return r.col.Span(spanStore, func() error {
		order := append([]int{r.q.Anchor}, sp.needed...)
		for pos, ti := range order {
			seg := r.newTemp()
			if err := seg.BeginRun(); err != nil {
				return err
			}
			rd := newSegReader(sp.seg, segRun{seg: sp.seg, off: 0, count: sp.n}, tupleW)
			for {
				rec, ok, err := rd.next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				if err := seg.Add(binary.BigEndian.Uint32(rec[pos*store.IDBytes:])); err != nil {
					return err
				}
			}
			run, err := seg.EndRun()
			if err != nil {
				return err
			}
			if err := seg.Seal(); err != nil {
				return err
			}
			r.resCols[ti] = resCol{seg: seg, run: run}
		}
		return sp.seg.Free()
	})
}

// sktAccess wraps sorted SKT row access with column projection.
type sktAccess struct {
	skt    interface{ File() *store.RowFile }
	reader *store.SortedReader
	cols   []int
	rec    []byte
}

func (s *sktAccess) read(id uint32, dst []uint32) error {
	if err := s.reader.Read(id, s.rec); err != nil {
		return err
	}
	for i, c := range s.cols {
		dst[i] = binary.BigEndian.Uint32(s.rec[c*store.IDBytes:])
	}
	return nil
}

// tupleValue extracts the id of table `want` from the current tuple.
func tupleValue(anchor int, anchorID uint32, needed []int, tuple []uint32, want int) uint32 {
	if want == anchor {
		return anchorID
	}
	for i, ti := range needed {
		if ti == want {
			return tuple[i]
		}
	}
	return anchorID
}
