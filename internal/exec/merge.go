package exec

import (
	"encoding/binary"
	"fmt"

	"ghostdb/internal/ram"
	"ghostdb/internal/store"
)

// reduceGroups implements the sublist reduction phase of §3.4: when the
// total number of sublists exceeds the stream buffers the Merge could
// open, the smallest sublists of the largest group are pre-unioned into
// a single sublist spilled to flash, repeatedly, until everything fits.
// Downstream pipeline stages (SKT reader, column writers) hold their own
// reservations, so whatever AvailableBuffers reports really is the
// Merge's to spend; fanCap is the admission-time fan-in binding for this
// context. Needs 3 free buffers (2 streams + 1 spill writer) to make
// progress when reduction is required.
func (r *queryRun) reduceGroups(groups []*mergeGroup, fanCap int) error {
	totalRuns := 0
	for _, g := range groups {
		totalRuns += len(g.runs)
	}
	for totalRuns > r.ram.AvailableBuffers() {
		// Largest group first.
		g := groups[0]
		for _, cand := range groups[1:] {
			if len(cand.runs) > len(g.runs) {
				g = cand
			}
		}
		if len(g.runs) < 2 {
			return fmt.Errorf("exec: cannot reduce %d merge sublists (largest group has %d): %w",
				totalRuns, len(g.runs), ram.ErrExhausted)
		}
		// Union the k smallest sublists ("the smallest sublists of each
		// list are the best candidates for reduction").
		k, err := r.unionFanIn(len(g.runs), totalRuns-r.ram.AvailableBuffers(), fanCap)
		if err != nil {
			return err
		}
		g.runSegs, g.runs, err = r.unionSmallest(g.runSegs, g.runs, k, spanMerge)
		if err != nil {
			return err
		}
		totalRuns -= k - 1
	}
	return nil
}

// openGroup opens the union stream of one merge group (one RAM buffer per
// flash sublist; direct streams ride the communication buffer).
func (r *queryRun) openGroup(g *mergeGroup) (idStream, error) {
	srcs := make([]idStream, 0, len(g.runs)+len(g.streams))
	for i := range g.runs {
		s, err := newRunStream(g.runSegs[i], g.runs[i], r.ram)
		if err != nil {
			for _, s2 := range srcs {
				s2.close()
			}
			return nil, err
		}
		srcs = append(srcs, s)
	}
	srcs = append(srcs, g.streams...)
	if len(srcs) == 0 {
		return emptyStream{}, nil
	}
	if len(srcs) == 1 {
		return srcs[0], nil
	}
	return newUnionStream(srcs)
}

// openMerged opens the full Merge: the intersection of all groups. With
// no groups at all, every anchor tuple qualifies so far (a sequential id
// stream over the anchor table).
func (r *queryRun) openMerged(groups []*mergeGroup) (idStream, error) {
	if len(groups) == 0 {
		return &seqStream{n: uint32(r.db.rows[r.q.Anchor])}, nil
	}
	srcs := make([]idStream, 0, len(groups))
	for _, g := range groups {
		s, err := r.openGroup(g)
		if err != nil {
			for _, s2 := range srcs {
				s2.close()
			}
			return nil, err
		}
		srcs = append(srcs, s)
	}
	if len(srcs) == 1 {
		return srcs[0], nil
	}
	return newIntersectStream(srcs), nil
}

// joinAndStore drives the pipelined batch loop: pull anchor ids from the
// Merge, semi-join them with the anchor's SKT to recover the descendant
// ids the projection needs, probe the Bloom filters, and materialize the
// survivors column by column (the Store cost of Figure 15). The RAM for
// the column writers and the SKT reader is reserved up front by the
// caller's pipeline plan (qepsj), so this stage never races the Merge
// for buffers.
func (r *queryRun) joinAndStore(merged idStream, needed []int, bfs []*bfFilter) error {
	db := r.db
	anchor := r.q.Anchor

	anchorSeg := r.newTemp()
	if err := anchorSeg.BeginRun(); err != nil {
		return err
	}
	colSegs := make(map[int]*store.ListSegment, len(needed))
	for _, ti := range needed {
		colSegs[ti] = r.newTemp()
		if err := colSegs[ti].BeginRun(); err != nil {
			return err
		}
	}

	var skt *sktAccess
	if len(needed) > 0 {
		s, ok := db.Cat.SKTOf(anchor)
		if !ok {
			return fmt.Errorf("exec: no SKT on anchor %s", db.Sch.Tables[anchor].Name)
		}
		cols := make([]int, len(needed))
		for i, ti := range needed {
			c, ok := s.ColumnOf(ti)
			if !ok {
				return fmt.Errorf("exec: SKT of %s has no column for %s",
					db.Sch.Tables[anchor].Name, db.Sch.Tables[ti].Name)
			}
			cols[i] = c
		}
		skt = &sktAccess{skt: s, reader: s.File().NewSortedReader(), cols: cols,
			rec: make([]byte, s.File().RowWidth())}
	}

	const batchSize = 512
	ids := make([]uint32, 0, batchSize)
	tuple := make([]uint32, len(needed))
	n := 0
	for {
		// Merge: fill a batch of anchor ids.
		ids = ids[:0]
		err := r.col.Span(spanMerge, func() error {
			for len(ids) < batchSize {
				v, ok, err := merged.next()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				ids = append(ids, v)
			}
			return nil
		})
		if err != nil {
			return err
		}
		if len(ids) == 0 {
			break
		}
		for _, id := range ids {
			// SJoin: fetch the descendant ids from the SKT.
			if skt != nil {
				err := r.col.Span(spanSJoin, func() error {
					return skt.read(id, tuple)
				})
				if err != nil {
					return err
				}
			}
			// ProbeBF: approximate visible filtering.
			if len(bfs) > 0 {
				drop := false
				err := r.col.Span(spanBF, func() error {
					for _, f := range bfs {
						v := tupleValue(anchor, id, needed, tuple, f.table)
						if !f.filter.MayContain(v) {
							drop = true
							return nil
						}
					}
					return nil
				})
				if err != nil {
					return err
				}
				if drop {
					continue
				}
			}
			// Store: materialize the survivor.
			err = r.col.Span(spanStore, func() error {
				if err := anchorSeg.Add(id); err != nil {
					return err
				}
				for i, ti := range needed {
					if err := colSegs[ti].Add(tuple[i]); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			n++
		}
	}

	r.resN = n
	r.resCols = map[int]resCol{}
	finish := func(ti int, seg *store.ListSegment) error {
		return r.col.Span(spanStore, func() error {
			run, err := seg.EndRun()
			if err != nil {
				return err
			}
			if err := seg.Seal(); err != nil {
				return err
			}
			r.resCols[ti] = resCol{seg: seg, run: run}
			return nil
		})
	}
	if err := finish(anchor, anchorSeg); err != nil {
		return err
	}
	for _, ti := range needed {
		if err := finish(ti, colSegs[ti]); err != nil {
			return err
		}
	}
	return nil
}

// sktAccess wraps sorted SKT row access with column projection.
type sktAccess struct {
	skt    interface{ File() *store.RowFile }
	reader *store.SortedReader
	cols   []int
	rec    []byte
}

func (s *sktAccess) read(id uint32, dst []uint32) error {
	if err := s.reader.Read(id, s.rec); err != nil {
		return err
	}
	for i, c := range s.cols {
		dst[i] = binary.BigEndian.Uint32(s.rec[c*store.IDBytes:])
	}
	return nil
}

// tupleValue extracts the id of table `want` from the current tuple.
func tupleValue(anchor int, anchorID uint32, needed []int, tuple []uint32, want int) uint32 {
	if want == anchor {
		return anchorID
	}
	for i, ti := range needed {
		if ti == want {
			return tuple[i]
		}
	}
	return anchorID
}
