package exec

import (
	"context"
	"fmt"

	"ghostdb/internal/cache"
	"ghostdb/internal/obs"
	"ghostdb/internal/pagecache"
	"ghostdb/internal/query"
	"ghostdb/internal/sqlparse"
)

// This file wires the untrusted-side result cache (internal/cache) into
// the executor. The design constraints, in the paper's terms:
//
//   - The cache key is the *normalized query text* (query.Canonical plus
//     the forced strategy/projector knobs, which change measured costs).
//     Query text is the one thing GhostDB's security model already
//     reveals to the untrusted side, so the key leaks nothing new.
//   - Cached values are materialized Results — data the untrusted side
//     has already been handed once. A hit replays a (query, result)
//     pair the observer has already seen; it adds no new volume signal.
//   - Cache memory is untrusted host RAM and is therefore NOT charged
//     against the secure chip's RAM budget (ram.Manager): the cache
//     exists precisely to trade plentiful untrusted memory for scarce
//     secure-token round-trips.
//   - A hit performs zero secure-token work: no session is admitted, no
//     flash I/O happens, and not a single byte crosses the bus in either
//     direction (the query text itself never travels). Stats of a hit
//     are all-zero except the CacheHit/CacheShared markers.
//   - Invalidation is wholesale: every committed INSERT bumps the global
//     data version, so a post-update query can never observe a
//     pre-update answer. Concurrent identical queries collapse onto one
//     admitted session (singleflight) and share its materialized result.

// cacheKey derives the result-cache key for a resolved query under a
// given configuration. Strategy and projector are part of the key so a
// forced-strategy run (experiments measuring that strategy's cost) never
// aliases with the planner's default choice. The RAM-admission knobs are
// deliberately excluded: they change costs, never answers, and a hit
// reports no execution cost at all.
func cacheKey(q *query.Query, cfg QueryConfig) string {
	return fmt.Sprintf("s%d|p%d|%s", cfg.Strategy, cfg.Projector, q.Canonical())
}

// Shared returns a shallow copy of the result for handing to another
// caller: Columns, Rows and the Breakdown map are shared with the
// original. Both copies must be treated as immutable — the engine never
// mutates a Result after returning it, and callers (including everything
// behind the result cache) must not either.
func (r *Result) Shared() *Result {
	cp := *r
	return &cp
}

// SizeBytes estimates the heap footprint of a materialized result for
// the cache's byte accounting: value headers plus char payloads, row
// slice headers, column labels and a fixed allowance for Stats.
func (r *Result) SizeBytes() int64 {
	n := int64(256)
	for _, c := range r.Columns {
		n += int64(len(c)) + 16
	}
	for _, row := range r.Rows {
		n += 24
		for _, v := range row {
			n += 40 + int64(len(v.S))
		}
	}
	return n
}

// ResultCache exposes the cache (nil when Options.ResultCacheBytes <= 0)
// for tests and tools inside this module.
func (db *DB) ResultCache() *cache.Cache { return db.cache }

// CacheStats snapshots the result cache's counters (zero value when the
// cache is disabled).
func (db *DB) CacheStats() cache.Stats {
	if db.cache == nil {
		return cache.Stats{}
	}
	return db.cache.Stats()
}

// PageCache exposes the untrusted-side page cache (nil when
// Options.PageCacheBytes <= 0) for tests and tools inside this module.
func (db *DB) PageCache() *pagecache.Cache { return db.pages }

// PageCacheStats snapshots the page cache's counters (zero value when
// the cache is disabled).
func (db *DB) PageCacheStats() pagecache.Stats {
	if db.pages == nil {
		return pagecache.Stats{}
	}
	return db.pages.Stats()
}

// BusCoalesced sums the batched-transfer round-trips saved across every
// token's link (the ghostdb_bus_coalesced_total counter).
func (db *DB) BusCoalesced() uint64 {
	var n uint64
	for _, tok := range db.tokens {
		n += tok.Bus.Coalesced()
	}
	return n
}

// PrefetchInflight gauges flash pages staged by read-ahead windows but
// not yet consumed, summed over every live scan.
func (db *DB) PrefetchInflight() int64 { return db.prefetchInflight.Load() }

// runCachedSelect is the cache fast path for one-shot SELECTs (RunCtx):
// it resolves just far enough to derive the cache key, then defers
// *planning as well as execution* into the singleflight compute — a hit
// pays neither the plan-time selectivity scans nor any token work.
func (db *DB) runCachedSelect(ctx context.Context, sel *sqlparse.Select, sql string, cfg QueryConfig) (*Result, error) {
	resolveSp := cfg.Trace.Root().Start("resolve")
	q, err := query.Resolve(db.Sch, sel, sql)
	resolveSp.End()
	if err != nil {
		return nil, err
	}
	return db.cachedSelect(ctx, cfg.Trace, cacheKey(q, cfg), db.shardsOf(q), func() (*Result, error) {
		planSp := cfg.Trace.Root().Start("plan")
		plan, err := db.PlanQuery(q, cfg)
		planSp.End()
		if err != nil {
			return nil, err
		}
		return db.runSelect(ctx, q, plan, cfg)
	})
}

// runSelectCached answers an already-planned SELECT (a prepared Stmt)
// through the result cache.
func (db *DB) runSelectCached(ctx context.Context, q *query.Query, plan *Plan, cfg QueryConfig, key string) (*Result, error) {
	return db.cachedSelect(ctx, cfg.Trace, key, db.shardsOf(q), func() (*Result, error) {
		return db.runSelect(ctx, q, plan, cfg)
	})
}

// cachedSelect routes one SELECT through the cache: hit → the
// materialized result is shared with zero secure-token work; concurrent
// identical queries → one computation (singleflight), shared result;
// miss → compute runs (plan and/or execute) and its result is stored,
// stamped with the versions of the shards the query touches (a pure
// function of query text + schema placement) as observed before it
// started, so a racing INSERT can never leave a stale entry behind —
// and an INSERT to an untouched shard never evicts it at all.
func (db *DB) cachedSelect(ctx context.Context, tr *obs.Trace, key string, shards []int, compute func() (*Result, error)) (*Result, error) {
	// The cache span wraps the whole Do call; on a miss the compute's
	// own plan/exec spans appear as siblings under the trace root (the
	// lookup span's note records the outcome either way).
	cacheSp := tr.Root().Start("cache")
	v, outcome, err := db.cache.Do(ctx, key, shards, func() (any, int64, error) {
		res, err := compute()
		if err != nil {
			return nil, 0, err
		}
		return res, res.SizeBytes(), nil
	})
	if err != nil {
		cacheSp.End()
		return nil, err
	}
	res := v.(*Result)
	if outcome == cache.Miss {
		cacheSp.SetNote("miss")
		cacheSp.End()
		// The leader executed for real; runSelect already merged totals.
		return res, nil
	}
	out := res.Shared()
	out.Stats = Stats{
		CacheHit:    outcome == cache.Hit,
		CacheShared: outcome == cache.Shared,
	}
	if out.Stats.CacheHit {
		cacheSp.SetNote("hit")
	} else {
		cacheSp.SetNote("shared")
	}
	cacheSp.End()
	db.mergeCacheTotals(outcome == cache.Shared)
	// A hit is a served query with zero simulated cost: it belongs in
	// the latency distribution exactly as the bench harness counts it.
	db.inst.simHist.Observe(0)
	return out, nil
}

// mergeCacheTotals accounts a query answered without execution: it
// counts as a completed query, under its own hit/shared bucket, and
// contributes zero simulated cost — that is the saving the benchmarks
// attribute.
func (db *DB) mergeCacheTotals(shared bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.totals.Queries++
	if shared {
		db.totals.CacheShared++
	} else {
		db.totals.CacheHits++
	}
}
