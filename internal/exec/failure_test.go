package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ghostdb/internal/flash"
	"ghostdb/internal/ram"
	"ghostdb/internal/ref"
	"ghostdb/internal/schema"
)

// newFixtureOpts is newFixture with custom engine options.
func newFixtureOpts(t testing.TB, seed uint64, cards map[string]int, opts Options) *fixture {
	t.Helper()
	sch, err := schema.New(synthDefs())
	if err != nil {
		t.Fatal(err)
	}
	rng := &lcg{s: seed}
	load := map[int]*TableLoad{}
	re := ref.New(sch)
	for _, tb := range sch.Tables {
		n := cards[tb.Name]
		ld := &TableLoad{Rows: n, FKs: map[int][]uint32{}}
		rows := make([]schema.Row, n)
		for ci, col := range tb.Columns {
			w := col.EncodedWidth()
			data := make([]byte, n*w)
			for i := 0; i < n; i++ {
				v := schema.CharVal(pad(rng.next(testDomain)))
				if rows[i] == nil {
					rows[i] = make(schema.Row, len(tb.Columns))
				}
				rows[i][ci] = v
				if err := schema.EncodeValue(data[i*w:(i+1)*w], v); err != nil {
					t.Fatal(err)
				}
			}
			ld.Cols = append(ld.Cols, ColData{Width: w, Data: data})
		}
		for _, ci := range tb.Children() {
			cn := cards[sch.Tables[ci].Name]
			fk := make([]uint32, n)
			for i := range fk {
				fk[i] = uint32(rng.next(cn))
			}
			ld.FKs[ci] = fk
		}
		load[tb.Index] = ld
		re.Load(tb.Index, rows, ld.FKs)
	}
	db, err := NewDB(sch, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Load(load); err != nil {
		t.Fatal(err)
	}
	return &fixture{db: db, ref: re, sch: sch}
}

// TestTinyRAMStaysCorrect: under severely constrained RAM the engine must
// either answer exactly or fail loudly — never return wrong rows. 16KB
// (8 buffers) forces heavy merge reduction and tiny MJoin batches.
func TestTinyRAMStaysCorrect(t *testing.T) {
	for _, budget := range []int{16 << 10, 24 << 10, 32 << 10} {
		f := newFixtureOpts(t, 21, map[string]int{"T0": 1500, "T1": 200, "T2": 150, "T11": 50, "T12": 50},
			Options{
				RAMBudget:   budget,
				FlashParams: flash.Params{PageSize: 2048, PagesPerBlock: 16, Blocks: 8192, ReserveBlocks: 4},
			})
		rng := rand.New(rand.NewSource(3))
		answered := 0
		for i := 0; i < 25; i++ {
			sql := randomQuery(rng)
			want := f.refAnswer(t, sql)
			res, err := f.db.Run(sql)
			if err != nil {
				// Allowed: explicit resource exhaustion only.
				if errors.Is(err, ram.ErrExhausted) ||
					errors.Is(err, ErrBloomInfeasible) ||
					containsRAMComplaint(err) {
					continue
				}
				t.Fatalf("budget %d: %s: unexpected error %v", budget, sql, err)
			}
			answered++
			if !rowsEqual(res.Rows, want) {
				t.Fatalf("budget %d: %s: wrong answer under RAM pressure (%d vs %d rows)",
					budget, sql, len(res.Rows), len(want))
			}
			if f.db.RAM.HighWater() > budget {
				t.Fatalf("budget %d exceeded: high water %d", budget, f.db.RAM.HighWater())
			}
		}
		if answered == 0 {
			t.Fatalf("budget %d: no query could be answered at all", budget)
		}
	}
}

func containsRAMComplaint(err error) bool {
	s := err.Error()
	for _, frag := range []string{"RAM", "not enough"} {
		if contains(s, frag) {
			return true
		}
	}
	return false
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestDeviceFullDuringQuery: a flash device with almost no free space
// must fail temp-segment allocation cleanly, not corrupt anything.
func TestDeviceFullDuringQuery(t *testing.T) {
	// Device sized so the load fits but leaves almost no headroom for
	// intermediate results.
	cards := map[string]int{"T0": 1500, "T1": 200, "T2": 150, "T11": 50, "T12": 50}
	var f *fixture
	blocks := 0
	for try := 40; try < 200; try += 4 {
		func() {
			defer func() { recover() }()
			g := newFixtureOptsMaybe(t, 21, cards, Options{
				FlashParams: flash.Params{PageSize: 2048, PagesPerBlock: 16, Blocks: try, ReserveBlocks: 2},
			})
			if g != nil {
				f = g
				blocks = try
			}
		}()
		if f != nil {
			break
		}
	}
	if f == nil {
		t.Skip("could not find a barely-fitting device size")
	}
	t.Logf("loaded at %d blocks", blocks)
	// Fill the remaining space so intermediates cannot be materialized.
	for {
		pg, err := f.db.Dev.Alloc()
		if err != nil {
			break
		}
		if err := f.db.Dev.Write(pg, []byte{1}); err != nil {
			break
		}
	}
	_, err := f.db.Run(`SELECT T0.id, T1.v1 FROM T0, T1 WHERE T0.fk1 = T1.id AND T1.v1 < '0000000300' AND T1.h1 < '0000000300'`)
	if err == nil {
		t.Fatal("query succeeded on a full device")
	}
	if !errors.Is(err, flash.ErrDeviceFull) {
		t.Fatalf("error should wrap ErrDeviceFull: %v", err)
	}
	// The engine must remain usable for queries that need no temp space.
	if f.db.RAM.InUse() != 0 {
		t.Fatalf("RAM leak after device-full failure: %d", f.db.RAM.InUse())
	}
}

// newFixtureOptsMaybe is newFixtureOpts but returns nil on load failure
// instead of failing the test.
func newFixtureOptsMaybe(t testing.TB, seed uint64, cards map[string]int, opts Options) *fixture {
	t.Helper()
	sch, err := schema.New(synthDefs())
	if err != nil {
		t.Fatal(err)
	}
	rng := &lcg{s: seed}
	load := map[int]*TableLoad{}
	for _, tb := range sch.Tables {
		n := cards[tb.Name]
		ld := &TableLoad{Rows: n, FKs: map[int][]uint32{}}
		for _, col := range tb.Columns {
			w := col.EncodedWidth()
			data := make([]byte, n*w)
			for i := 0; i < n; i++ {
				if err := schema.EncodeValue(data[i*w:(i+1)*w], schema.CharVal(pad(rng.next(testDomain)))); err != nil {
					t.Fatal(err)
				}
			}
			ld.Cols = append(ld.Cols, ColData{Width: w, Data: data})
		}
		for _, ci := range tb.Children() {
			cn := cards[sch.Tables[ci].Name]
			fk := make([]uint32, n)
			for i := range fk {
				fk[i] = uint32(rng.next(cn))
			}
			ld.FKs[ci] = fk
		}
		load[tb.Index] = ld
	}
	db, err := NewDB(sch, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Load(load); err != nil {
		return nil
	}
	return &fixture{db: db, sch: sch}
}

// TestHugeRAMAlsoCorrect: a generous budget must not change answers (it
// only removes reduction passes and enlarges batches).
func TestHugeRAMAlsoCorrect(t *testing.T) {
	f := newFixtureOpts(t, 13, map[string]int{"T0": 800, "T1": 100, "T2": 80, "T11": 30, "T12": 30},
		Options{
			RAMBudget:   1 << 20,
			FlashParams: flash.Params{PageSize: 2048, PagesPerBlock: 16, Blocks: 8192, ReserveBlocks: 4},
		})
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 20; i++ {
		sql := randomQuery(rng)
		want := f.refAnswer(t, sql)
		res, err := f.db.Run(sql)
		if err != nil {
			if errors.Is(err, ErrBloomInfeasible) {
				continue
			}
			t.Fatalf("%s: %v", sql, err)
		}
		if !rowsEqual(res.Rows, want) {
			t.Fatalf("%s: wrong answer with huge RAM", sql)
		}
	}
}

var _ = fmt.Sprintf
