package exec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ghostdb/internal/bloom"
	"ghostdb/internal/bus"
	"ghostdb/internal/delta"
	"ghostdb/internal/index"
	"ghostdb/internal/metrics"
	"ghostdb/internal/query"
	"ghostdb/internal/ram"
	"ghostdb/internal/schema"
	"ghostdb/internal/sqlparse"
	"ghostdb/internal/store"
	"ghostdb/internal/untrusted"
)

// ErrBloomInfeasible is returned when a forced Post-Filter strategy cannot
// build a useful Bloom filter (the paper stops the Post-Filter curve at
// sV = 0.5 for exactly this reason).
var ErrBloomInfeasible = errors.New("exec: bloom filter would admit more false positives than it eliminates")

// Span names for the per-operator cost decomposition (Figures 15–16).
const (
	spanVis        = "Vis"
	spanCI         = "CI"
	spanMerge      = "Merge"
	spanSJoin      = "SJoin"
	spanBF         = "BF"
	spanStore      = "Store"
	spanProject    = "Project"
	spanPostSelect = "PostSelect"
	spanScan       = "Scan"
	spanDelta      = "Delta"
)

// visSpool is the flash-resident copy of one table's Vis result: rows of
// (id, projected visible values), in id order.
type visSpool struct {
	file  *store.RowFile
	cols  []int // visible column positions carried per row
	width int   // row width: 4 + Σ widths
}

// resCol is one column of the materialized QEPSJ result.
type resCol struct {
	seg *store.ListSegment
	run store.Run
}

// queryRun is the per-query execution state. Everything a query needs
// that used to be mutable DB-level state is threaded here instead: the
// immutable QueryConfig snapshot, the bound plan, the session's private
// RAM budget and a per-query metrics collector, so concurrent sessions
// never read each other's knobs or counters.
//
// A queryRun only ever exists inside its session's Exclusive closure,
// so every method may touch the token's flash device and hidden images.
//
//ghostdb:requires-slot
type queryRun struct {
	db      *DB
	tok     *Token // the secure token this session runs on
	q       *query.Query
	cfg     QueryConfig
	plan    *Plan              // the prepared plan driving this run
	bind    *Binding           // operator variants bound from the actual grant
	planMin int                // the admission request's floor, for Stats
	ram     *ram.Manager       // session-private budget, sized at admission
	col     *metrics.Collector // per-query span collector (snapshots link speed)

	vis     map[int]*untrusted.VisResult
	visKeys map[int]string // canonical Vis key per table (spool retention)
	spool   map[int]*visSpool
	// retain maps table -> retention key for spools built this query;
	// after a successful run their files move from r.files to the
	// token's retained set. reused marks tables whose spool came from
	// that set (header-only shipment, file owned by the token).
	retain map[int]string
	reused map[int]bool
	// strategies starts as the plan's per-table choice and is mutated
	// only when an operator degrades (e.g. an infeasible Bloom filter
	// falling back to No-Filter).
	strategies map[int]Strategy
	// exact verification needed at projection time (Post / Cross-Post /
	// NoFilter tables).
	exactAtProject map[int]bool
	// exact in-RAM selection after materialization (Post-Select).
	postSelect map[int][]uint32
	anchorPred []query.Pred // id predicates on the anchor (free filters)

	// QEPSJ output.
	resN    int
	resCols map[int]resCol
	// spill is set when the store pipeline ran in shared-stage mode: the
	// survivor tuples sit row-major in one spilled segment awaiting the
	// distribution pass (distributeSpill).
	spill *storeSpill

	temps    []*store.ListSegment
	tempSegs []*store.Segment
	files    []*store.RowFile
}

func (r *queryRun) newTemp() *store.ListSegment {
	t := store.NewListSegment(r.tok.Dev)
	r.temps = append(r.temps, t)
	return t
}

func (r *queryRun) cleanup() {
	for _, t := range r.temps {
		_ = t.Free()
	}
	for _, s := range r.tempSegs {
		_ = s.Free()
	}
	for _, f := range r.files {
		_ = f.Free()
	}
}

// execute runs the execute phase of a prepared plan: Vis, QEPSJ,
// projection. Strategies were chosen at plan time; this side only binds
// them to data.
func (r *queryRun) execute() (*Result, error) {
	defer r.cleanup()
	q := r.q

	if err := r.refreshDeltas(); err != nil {
		return nil, err
	}

	if res, done, err := r.visibleOnlyFastPath(); done {
		return res, err
	}

	// ---- Vis: visible selections and projected visible values. The
	// compute side is untrusted (free, page-cached); shipping happens in
	// spoolVis, which knows which tables can reuse a retained spool and
	// coalesces the remaining payloads into one batched round-trip.
	visPreds := q.VisiblePreds()
	projVis := r.projectedVisibleCols()
	r.vis = map[int]*untrusted.VisResult{}
	r.visKeys = map[int]string{}
	err := r.col.Span(spanVis, func() error {
		for _, ti := range q.Tables {
			preds, hasPreds := visPreds[ti]
			cols := projVis[ti]
			if !hasPreds && len(cols) == 0 {
				continue
			}
			vr, err := r.tok.Untr.ComputeVis(ti, preds, cols)
			if err != nil {
				return err
			}
			r.vis[ti] = vr
			r.visKeys[ti] = r.tok.Untr.VisKey(ti, preds, cols)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// ---- Per-query working sets for the planned strategies.
	r.exactAtProject = map[int]bool{}
	r.postSelect = map[int][]uint32{}

	// ---- Ship Vis results and spool the rows needed at projection time.
	if err := r.spoolVis(); err != nil {
		return nil, err
	}

	// ---- QEPSJ: selections, climbs, merge, semi-join, filters.
	if err := r.qepsj(); err != nil {
		return nil, err
	}

	// ---- QEPP: projection.
	res, err := r.project()
	if err != nil {
		return nil, err
	}
	r.retainSpools()
	return res, nil
}

// refreshDeltas replays the delta log of every dirty table the query
// touches — the per-query read amplification of the LSM write path. The
// replay is a sequential, data-independent scan of each log (its length
// depends only on committed statement volume, which the untrusted side
// already observes); it borrows a single buffer from the session's
// grant, released before any operator runs, so plan floors are
// unchanged.
func (r *queryRun) refreshDeltas() error {
	var touched []*delta.Table
	for _, ti := range r.q.Tables {
		if dl := r.tok.deltaOf(ti); dl != nil && dl.Depth() > 0 {
			touched = append(touched, dl)
		}
	}
	if len(touched) == 0 {
		return nil
	}
	g, err := r.ram.AllocBuffers(1)
	if err != nil {
		return err
	}
	defer g.Release()
	return r.col.Span(spanDelta, func() error {
		for _, dl := range touched {
			if err := dl.Refresh(); err != nil {
				return err
			}
		}
		return nil
	})
}

// projectedVisibleCols returns, per table, the visible column positions in
// the projection list (sorted, deduplicated). Shared with the planner so
// the footprint derivation and the executor can never disagree.
func (r *queryRun) projectedVisibleCols() map[int][]int {
	return projectedVisibleColsOf(r.db.Sch, r.q)
}

// visibleOnlyFastPath executes single-table all-visible queries entirely
// on Untrusted: no hidden data is involved, so Secure only relays.
func (r *queryRun) visibleOnlyFastPath() (*Result, bool, error) {
	q, db := r.q, r.db
	if len(q.Tables) != 1 {
		return nil, false, nil
	}
	ti := q.Tables[0]
	t := db.Sch.Tables[ti]
	for _, p := range q.Preds {
		if p.ColIdx == query.IDCol {
			continue // id is known on both sides
		}
		if t.Columns[p.ColIdx].Hidden {
			return nil, false, nil
		}
	}
	for _, p := range q.Projections {
		if p.ColIdx != query.IDCol && t.Columns[p.ColIdx].Hidden {
			return nil, false, nil
		}
	}
	// All visible: evaluate on the PC.
	var preds []query.Pred
	preds = append(preds, q.Preds...)
	cols := r.projectedVisibleCols()[ti]
	var vr *untrusted.VisResult
	err := r.col.Span(spanVis, func() error {
		var err error
		vr, err = r.tok.Untr.Vis(ti, preds, cols)
		return err
	})
	if err != nil {
		return nil, true, err
	}
	res := &Result{}
	for _, p := range q.Projections {
		res.Columns = append(res.Columns, db.columnLabel(p))
	}
	colPos := map[int]int{}
	for i, c := range cols {
		colPos[c] = i
	}
	// Decode shipped rows.
	offsets := make([]int, len(cols)+1)
	offsets[0] = store.IDBytes
	for i, c := range cols {
		offsets[i+1] = offsets[i] + t.Columns[c].EncodedWidth()
	}
	dl := r.tok.deltaOf(ti)
	for i, id := range vr.IDs {
		// Tombstone exclusion happens here, on the secure side: the
		// untrusted store still holds (and returned) the deleted rows.
		if dl != nil && dl.Dead(id) {
			continue
		}
		var raw []byte
		if len(cols) > 0 {
			raw = vr.Rows[i*vr.RowWidth : (i+1)*vr.RowWidth]
		}
		row := make(schema.Row, 0, len(q.Projections))
		for _, p := range q.Projections {
			if p.ColIdx == query.IDCol {
				row = append(row, schema.IntVal(int64(id)))
				continue
			}
			ci := colPos[p.ColIdx]
			w := t.Columns[p.ColIdx].EncodedWidth()
			v, err := schema.DecodeValue(raw[offsets[ci]:offsets[ci]+w], t.Columns[p.ColIdx].Kind)
			if err != nil {
				return nil, true, err
			}
			row = append(row, v)
		}
		res.Rows = append(res.Rows, row)
	}
	// Stats are attached once by SelectCtx after execute returns.
	return res, true, nil
}

// indexFor returns the climbing index evaluating a hidden predicate.
func (r *queryRun) indexFor(p query.Pred) *index.Climbing {
	return r.tok.indexForPred(p)
}

// spoolVis ships every Vis result down the link and writes the rows
// needed at projection time to flash. Two optimizations live here, both
// gated on the page cache being enabled:
//
//   - Spool reuse: when the token still retains the identical spool
//     (same canonical Vis key, same shape, same data version) only a
//     fixed VisHeaderBytes header crosses the link, and the token
//     replays its flash-resident copy — a sequential re-read at 25µs a
//     page instead of per-byte link time plus 200µs-a-page spool
//     writes. Reuse is a pure function of the public query history and
//     committed-write versions, so it leaks nothing.
//
//   - Bus coalescing: all per-table shipments of the query merge into
//     one batched Down round-trip (bus.TransferBatch).
func (r *queryRun) spoolVis() error {
	r.spool = map[int]*visSpool{}
	r.retain = map[int]string{}
	r.reused = map[int]bool{}
	type pending struct {
		ti         int
		vr         *untrusted.VisResult
		needValues bool
	}
	var reqs []bus.Req
	var builds []pending
	var replays []*store.RowFile
	for _, ti := range r.q.Tables {
		vr := r.vis[ti]
		if vr == nil {
			continue
		}
		needValues := len(vr.ProjCols) > 0
		needIDs := r.needsExact(ti) || ti == r.q.Anchor && needValues
		if !needValues && !needIDs {
			// Streamed only: the ids feed the merge directly and no
			// flash copy exists to reuse, so the full run always ships.
			reqs = append(reqs, r.tok.Untr.ShipVisReq(vr))
			continue
		}
		key := fmt.Sprintf("%s|vals=%t", r.visKeys[ti], needValues)
		if r.db.pages != nil {
			if sp := r.tok.retainedSpoolFor(key); sp != nil {
				r.spool[ti] = &visSpool{file: sp.file, cols: sp.cols, width: sp.width}
				r.reused[ti] = true
				reqs = append(reqs, r.tok.Untr.ShipVisHeader(ti))
				replays = append(replays, sp.file)
				continue
			}
		}
		reqs = append(reqs, r.tok.Untr.ShipVisReq(vr))
		builds = append(builds, pending{ti, vr, needValues})
	}
	return r.col.Span(spanVis, func() error {
		if len(reqs) > 1 {
			if err := r.tok.Untr.ShipBatch(reqs); err != nil {
				return err
			}
		} else if len(reqs) == 1 {
			if err := r.tok.Untr.Ship(reqs[0]); err != nil {
				return err
			}
		}
		if err := r.replaySpools(replays); err != nil {
			return err
		}
		for _, b := range builds {
			vr := b.vr
			sp := &visSpool{cols: vr.ProjCols, width: vr.RowWidth}
			if !b.needValues {
				sp.width = store.IDBytes
			}
			f, err := store.NewRowFile(r.tok.Dev, sp.width)
			if err != nil {
				return err
			}
			r.files = append(r.files, f)
			if b.needValues {
				for i := range vr.IDs {
					if err := f.Append(vr.Rows[i*vr.RowWidth : (i+1)*vr.RowWidth]); err != nil {
						return err
					}
				}
			} else {
				var idb [store.IDBytes]byte
				for _, id := range vr.IDs {
					binary.BigEndian.PutUint32(idb[:], id)
					if err := f.Append(idb[:]); err != nil {
						return err
					}
				}
			}
			if err := f.Seal(); err != nil {
				return err
			}
			sp.file = f
			r.spool[b.ti] = sp
			if r.db.pages != nil {
				r.retain[b.ti] = fmt.Sprintf("%s|vals=%t", r.visKeys[b.ti], b.needValues)
			}
		}
		return nil
	})
}

// replaySpools charges the token-side sequential re-read of each reused
// spool: with a header-only shipment the ids stream from the retained
// flash copy instead of the link. One grant buffer is borrowed for the
// duration, as refreshDeltas does.
func (r *queryRun) replaySpools(files []*store.RowFile) error {
	if len(files) == 0 {
		return nil
	}
	g, err := r.ram.AllocBuffers(1)
	if err != nil {
		return err
	}
	defer g.Release()
	for _, f := range files {
		rd := f.NewSeqReader()
		for {
			_, _, ok, err := rd.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
		}
	}
	return nil
}

// retainSpools parks this query's freshly built spools on the token for
// later header-only reuse, moving ownership of their files out of
// r.files so cleanup leaves them resident. Runs only after a fully
// successful execution, with the slot still held.
//
//ghostdb:requires-slot
func (r *queryRun) retainSpools() {
	if len(r.retain) == 0 {
		return
	}
	ver := r.tok.DataVersion()
	for ti, key := range r.retain {
		sp := r.spool[ti]
		if sp == nil || sp.file == nil {
			continue
		}
		for i, f := range r.files {
			if f == sp.file {
				r.files = append(r.files[:i], r.files[i+1:]...)
				break
			}
		}
		r.tok.retainSpool(key, &retainedSpool{file: sp.file, cols: sp.cols, width: sp.width, version: ver})
	}
}

// needsExact reports whether a table's visible selection must be verified
// exactly at projection time.
func (r *queryRun) needsExact(ti int) bool {
	switch r.strategies[ti] {
	case StratPost, StratCrossPost, StratNoFilter:
		return true
	}
	return false
}

// mergeGroup is one conjunct of the anchor-level Merge: the union of its
// sorted sublists (flash runs and/or direct streams).
type mergeGroup struct {
	label   string
	runs    []store.Run
	seg     *store.ListSegment // segment holding runs (one per group source)
	runSegs []*store.ListSegment
	streams []idStream
}

func (g *mergeGroup) addRun(seg *store.ListSegment, run store.Run) {
	if run.Count == 0 {
		return
	}
	g.runs = append(g.runs, run)
	g.runSegs = append(g.runSegs, seg)
}

// encodePredKey encodes a predicate literal for the index key space.
func encodePredKey(width int, v schema.Value) ([]byte, error) {
	k := make([]byte, width)
	if err := schema.EncodeValue(k, v); err != nil {
		return nil, err
	}
	return k, nil
}

// runsForHiddenPred evaluates one hidden predicate through an index at
// the given level slot, returning the matching sublists.
func (r *queryRun) runsForHiddenPred(p query.Pred, ci *index.Climbing, slot int) ([]store.Run, error) {
	if p.ColIdx == query.IDCol {
		// Identifier predicates use the id index key space directly.
		mk := func(i int64) []byte {
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], uint32(i))
			return b[:]
		}
		clamp := func(i int64) int64 {
			if i < 0 {
				return 0
			}
			if i > int64(^uint32(0)) {
				return int64(^uint32(0))
			}
			return i
		}
		switch p.Op {
		case sqlparse.OpEq:
			if p.Lo.I < 0 || p.Lo.I > int64(^uint32(0)) {
				return nil, nil
			}
			return ci.RunsEq(mk(p.Lo.I), slot)
		case sqlparse.OpNe:
			if p.Lo.I < 0 || p.Lo.I > int64(^uint32(0)) {
				return ci.RunsRange(nil, nil, true, true, slot)
			}
			a, err := ci.RunsRange(nil, mk(p.Lo.I), true, false, slot)
			if err != nil {
				return nil, err
			}
			b, err := ci.RunsRange(mk(p.Lo.I), nil, false, true, slot)
			if err != nil {
				return nil, err
			}
			return append(a, b...), nil
		case sqlparse.OpLt:
			return ci.RunsRange(nil, mk(clamp(p.Lo.I)), true, p.Lo.I > int64(^uint32(0)), slot)
		case sqlparse.OpLe:
			return ci.RunsRange(nil, mk(clamp(p.Lo.I)), true, p.Lo.I >= 0, slot)
		case sqlparse.OpGt:
			return ci.RunsRange(mk(clamp(p.Lo.I)), nil, p.Lo.I < 0, true, slot)
		case sqlparse.OpGe:
			return ci.RunsRange(mk(clamp(p.Lo.I)), nil, p.Lo.I <= int64(^uint32(0)), true, slot)
		case sqlparse.OpBetween:
			if p.Hi.I < 0 || p.Lo.I > int64(^uint32(0)) {
				return nil, nil
			}
			return ci.RunsRange(mk(clamp(p.Lo.I)), mk(clamp(p.Hi.I)), true, true, slot)
		}
		return nil, fmt.Errorf("exec: unsupported id predicate op %v", p.Op)
	}
	col := r.db.Sch.Tables[p.Table].Columns[p.ColIdx]
	w := col.EncodedWidth()
	lo, err := encodePredKey(w, p.Lo)
	if err != nil {
		return nil, err
	}
	switch p.Op {
	case sqlparse.OpEq:
		return ci.RunsEq(lo, slot)
	case sqlparse.OpNe:
		a, err := ci.RunsRange(nil, lo, true, false, slot)
		if err != nil {
			return nil, err
		}
		b, err := ci.RunsRange(lo, nil, false, true, slot)
		if err != nil {
			return nil, err
		}
		return append(a, b...), nil
	case sqlparse.OpLt:
		return ci.RunsRange(nil, lo, true, false, slot)
	case sqlparse.OpLe:
		return ci.RunsRange(nil, lo, true, true, slot)
	case sqlparse.OpGt:
		return ci.RunsRange(lo, nil, false, true, slot)
	case sqlparse.OpGe:
		return ci.RunsRange(lo, nil, true, true, slot)
	case sqlparse.OpBetween:
		hi, err := encodePredKey(w, p.Hi)
		if err != nil {
			return nil, err
		}
		return ci.RunsRange(lo, hi, true, true, slot)
	}
	return nil, fmt.Errorf("exec: unsupported predicate op %v", p.Op)
}

// bfFilter is a live Bloom filter over one table's (possibly crossed)
// visible id list, probed against QEPSJ tuples.
type bfFilter struct {
	table  int
	filter *bloom.Filter
	grant  interface{ Release() }
}
