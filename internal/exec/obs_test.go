package exec

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"ghostdb/internal/obs"
)

// threeTableJoin is the paper's query Q (§6.4): a 3-table join with
// visible and hidden selections — the EXPLAIN ANALYZE acceptance shape.
const threeTableJoin = `SELECT T0.id, T1.id, T12.id, T1.v1 FROM T0, T1, T12 WHERE T0.fk1 = T1.id AND T1.fk12 = T12.id AND T1.v1 < '0000000300' AND T12.h2 < '0000000100'`

// TestTraceSpansSumToSimTime is the EXPLAIN ANALYZE contract: the exec
// span's children (per-operator simulated costs plus the residual
// "other") sum to the query's Stats.SimTime within 1%.
func TestTraceSpansSumToSimTime(t *testing.T) {
	f := newFixture(t, 42, defaultCards())
	tr := obs.NewTrace(threeTableJoin)
	cfg := f.db.DefaultConfig()
	cfg.Trace = tr
	res, err := f.db.RunCtx(context.Background(), threeTableJoin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	root := tr.Snapshot()
	for _, name := range []string{"parse", "resolve", "plan", "admission", "exec"} {
		if _, ok := root.Find(name); !ok {
			t.Errorf("trace is missing a %q span", name)
		}
	}
	execSp, ok := root.Find("exec")
	if !ok {
		t.Fatal("no exec span")
	}
	var sum int64
	for _, c := range execSp.Children {
		sum += c.SimUs
	}
	simUs := res.Stats.SimTime.Microseconds()
	if simUs <= 0 {
		t.Fatalf("SimTime = %v, want > 0", res.Stats.SimTime)
	}
	diff := sum - simUs
	if diff < 0 {
		diff = -diff
	}
	if diff*100 > simUs {
		t.Fatalf("operator spans sum to %dµs, SimTime is %dµs (off by more than 1%%)", sum, simUs)
	}
	if execSp.SimUs != simUs {
		t.Errorf("exec span SimUs = %d, want %d", execSp.SimUs, simUs)
	}

	// The tree must round-trip as JSON (the /trace and EXPLAIN ANALYZE
	// wire format).
	blob, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back obs.SpanJSON
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
}

// TestScatterTraceHasLegSpans checks that a cross-token query's trace
// shows one scatter leg per part plus the merge step.
func TestScatterTraceHasLegSpans(t *testing.T) {
	f := newForestFixture(t, 11, map[string]int{
		"T0": 120, "T1": 40, "T2": 30, "T11": 12, "T12": 12,
		"U0": 60, "U1": 10,
	}, 2)
	sql := `SELECT T12.id, U1.v1 FROM T12, U1 WHERE T12.h1 < '0000000200' AND U1.h2 < '0000000300'`
	tr := obs.NewTrace(sql)
	cfg := f.db.DefaultConfig()
	cfg.Trace = tr
	res, err := f.db.RunCtx(context.Background(), sql, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Scatter != 2 {
		t.Fatalf("Scatter = %d, want 2", res.Stats.Scatter)
	}
	tr.Finish()
	root := tr.Snapshot()
	legs := 0
	for _, c := range root.Children {
		if c.Name == "scatter" {
			legs++
		}
	}
	if legs != 2 {
		t.Fatalf("trace has %d scatter legs, want 2", legs)
	}
	if _, ok := root.Find("merge"); !ok {
		t.Error("trace is missing the merge span")
	}
}

// TestQueueWaitAndSlotOccupancyObserved checks the admission-side
// instruments: after real traffic, the per-shard queue-wait and
// slot-occupancy histograms hold samples, Stats.QueueWait is populated,
// and the grant histogram saw the session's buffers.
func TestQueueWaitAndSlotOccupancyObserved(t *testing.T) {
	f := newFixture(t, 42, defaultCards())
	cfg := f.db.DefaultConfig()
	res, err := f.db.RunCtx(context.Background(), threeTableJoin, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.QueueWait < 0 {
		t.Errorf("QueueWait = %v, want >= 0", res.Stats.QueueWait)
	}
	reg := f.db.Metrics()
	qw := reg.FindHistogram("ghostdb_sched_queue_wait_seconds", obs.L("shard", "0"))
	if qw == nil {
		t.Fatal("queue-wait histogram not registered")
	}
	if qw.Count() == 0 {
		t.Error("queue-wait histogram saw no admissions")
	}
	so := reg.FindHistogram("ghostdb_slot_occupancy_seconds", obs.L("shard", "0"))
	if so == nil {
		t.Fatal("slot-occupancy histogram not registered")
	}
	if so.Count() == 0 {
		t.Error("slot-occupancy histogram saw no sessions")
	}
	if g := reg.FindHistogram("ghostdb_session_grant_buffers"); g == nil || g.Count() == 0 {
		t.Error("grant histogram saw no sessions")
	}
	if h := reg.FindHistogram("ghostdb_query_sim_seconds"); h == nil || h.Count() == 0 {
		t.Error("sim-time histogram saw no queries")
	}
}

// TestSlowLogRecordsQuery checks the end-to-end slow-log path with a
// threshold every simulated query clears.
func TestSlowLogRecordsQuery(t *testing.T) {
	f := newFixture(t, 42, defaultCards())
	f.db.slow = obs.NewSlowLog(time.Nanosecond, 16)
	if _, err := f.db.RunCtx(context.Background(), threeTableJoin, f.db.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	entries := f.db.SlowLog().Entries()
	if len(entries) != 1 {
		t.Fatalf("slow log has %d entries, want 1", len(entries))
	}
	e := entries[0]
	if !strings.Contains(e.Query, "select") {
		t.Errorf("slow-log query text = %q", e.Query)
	}
	if e.SimUs <= 0 {
		t.Errorf("SimUs = %d, want > 0", e.SimUs)
	}
	if len(e.Spans) == 0 {
		t.Error("slow-log entry has no span summary")
	}
	if e.GrantBuffers <= 0 {
		t.Errorf("GrantBuffers = %d, want > 0", e.GrantBuffers)
	}
}

// TestMetricsRenderAfterTraffic renders the registry after real queries
// and checks the acceptance families are present.
func TestMetricsRenderAfterTraffic(t *testing.T) {
	f := newFixture(t, 42, defaultCards())
	if _, err := f.db.RunCtx(context.Background(), threeTableJoin, f.db.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := f.db.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, fam := range []string{
		"ghostdb_queries_total",
		"ghostdb_query_sim_seconds_bucket",
		"ghostdb_sched_queue_wait_seconds_bucket",
		"ghostdb_slot_occupancy_seconds_bucket",
		"ghostdb_session_grant_buffers_bucket",
		"ghostdb_sched_admissions_total",
		"ghostdb_token_flash_reads_total",
		"ghostdb_token_bus_up_bytes_total",
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("rendered metrics are missing %s", fam)
		}
	}
}

// TestConcurrentTracedSessions runs 16 concurrent traced queries on one
// engine — the -race CI job turns this into the span-emission data-race
// check the telemetry layer must pass.
func TestConcurrentTracedSessions(t *testing.T) {
	f := newFixture(t, 42, defaultCards())
	f.db.slow = obs.NewSlowLog(time.Nanosecond, 8)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	traces := make([]*obs.Trace, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sql := testQueries[i%len(testQueries)]
			tr := obs.NewTrace(sql)
			traces[i] = tr
			cfg := f.db.DefaultConfig()
			cfg.Trace = tr
			_, errs[i] = f.db.RunCtx(context.Background(), sql, cfg)
			tr.Finish()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
	}
	for i, tr := range traces {
		if _, err := tr.JSON(); err != nil {
			t.Errorf("trace %d does not marshal: %v", i, err)
		}
	}
	var sb strings.Builder
	if err := f.db.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
}
