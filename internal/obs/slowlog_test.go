package obs

import (
	"fmt"
	"testing"
	"time"
)

func TestSlowLogThresholdAndWraparound(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, 4)
	if l.Record(SlowQuery{Query: "fast", SimUs: 9_000}) {
		t.Fatal("entry below threshold must be dropped")
	}
	// 10 entries through a 4-slot ring: the last 4 survive, in order.
	for i := 0; i < 10; i++ {
		kept := l.Record(SlowQuery{
			Query: fmt.Sprintf("q%d", i),
			SimUs: int64(10_000 + i),
		})
		if !kept {
			t.Fatalf("entry %d at threshold must be kept", i)
		}
	}
	got := l.Entries()
	if len(got) != 4 {
		t.Fatalf("%d entries retained, want 4", len(got))
	}
	for i, e := range got {
		if want := fmt.Sprintf("q%d", 6+i); e.Query != want {
			t.Errorf("entry %d = %q, want %q (oldest-first after wraparound)", i, e.Query, want)
		}
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d, want 10 (overwritten entries still count)", l.Total())
	}
}

func TestSlowLogPartialRing(t *testing.T) {
	l := NewSlowLog(0, 8)
	l.Record(SlowQuery{Query: "a"})
	l.Record(SlowQuery{Query: "b"})
	got := l.Entries()
	if len(got) != 2 || got[0].Query != "a" || got[1].Query != "b" {
		t.Fatalf("partial ring entries = %v", got)
	}
}

func TestSlowLogNilSafety(t *testing.T) {
	var l *SlowLog
	if l.Record(SlowQuery{}) {
		t.Fatal("nil log must drop entries")
	}
	if l.Entries() != nil || l.Total() != 0 || l.Threshold() != 0 {
		t.Fatal("nil log must read as empty")
	}
}

func TestSlowLogDefaultCapacity(t *testing.T) {
	l := NewSlowLog(time.Second, 0)
	for i := 0; i < DefaultSlowLogEntries+5; i++ {
		l.Record(SlowQuery{SimUs: time.Second.Microseconds()})
	}
	if n := len(l.Entries()); n != DefaultSlowLogEntries {
		t.Fatalf("default capacity kept %d, want %d", n, DefaultSlowLogEntries)
	}
}
