package obs

import (
	"sync"
	"time"
)

// DefaultSlowLogEntries is the ring capacity when the caller does not
// choose one.
const DefaultSlowLogEntries = 128

// SpanCost is one per-operator line of a slow-query entry's span
// summary: the operator's simulated cost, nothing else.
type SpanCost struct {
	// Name is the operator cost-span name (Vis, CI, Merge, SJoin, ...).
	Name string `json:"name"`
	// SimUs is the operator's simulated duration in microseconds.
	SimUs int64 `json:"sim_us"`
}

// SlowQuery is one slow-query log entry. Every field is declassified by
// construction: the query text is the canonical resolved form (the one
// thing the security model reveals anyway), and the rest are scalars of
// the simulated cost model and the RAM-admission bookkeeping — functions
// of metered counters and grant arithmetic, never of hidden tuples.
type SlowQuery struct {
	// Time is when the query finished.
	Time time.Time `json:"time"`
	// Query is the canonical (normalized, resolved) statement text.
	Query string `json:"query"`
	// Kind tags what produced the entry: SELECT, UPDATE, DELETE, INSERT
	// or COMPACT (empty in logs recorded before kinds existed).
	Kind string `json:"kind,omitempty"`
	// Shard is the token the session ran on (-1 for a scatter fan-out).
	Shard int `json:"shard"`
	// Scatter is the fan-out width of a cross-token query (0 otherwise).
	Scatter int `json:"scatter,omitempty"`
	// SimUs is the query's simulated duration in microseconds.
	SimUs int64 `json:"sim_us"`
	// QueueWaitUs is the wall-clock admission-queue wait in microseconds.
	QueueWaitUs int64 `json:"queue_wait_us"`
	// PlanMinBuffers is the plan-derived admission floor.
	PlanMinBuffers int `json:"plan_min_buffers"`
	// GrantBuffers is the elastic RAM grant the session held.
	GrantBuffers int `json:"grant_buffers"`
	// Spans summarizes the per-operator simulated costs, slowest first.
	Spans []SpanCost `json:"spans,omitempty"`
}

// SlowLog is a fixed-capacity ring buffer of the slowest recent queries:
// entries at or above the threshold overwrite the oldest once full. All
// methods are safe for concurrent use and nil-safe (a nil SlowLog is a
// disabled one).
type SlowLog struct {
	threshold time.Duration
	mu        sync.Mutex
	buf       []SlowQuery
	next      int
	filled    bool
	total     uint64
}

// NewSlowLog creates a slow-query log keeping the last capacity entries
// whose simulated time is at least threshold (capacity <= 0 uses
// DefaultSlowLogEntries).
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogEntries
	}
	return &SlowLog{threshold: threshold, buf: make([]SlowQuery, capacity)}
}

// Threshold returns the minimum simulated duration an entry must reach
// (0 for a nil log).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Record appends an entry if it meets the threshold, overwriting the
// oldest entry once the ring is full. It reports whether the entry was
// kept.
func (l *SlowLog) Record(e SlowQuery) bool {
	if l == nil {
		return false
	}
	if time.Duration(e.SimUs)*time.Microsecond < l.threshold {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.filled = true
	}
	l.total++
	return true
}

// Entries returns the retained entries, oldest first.
func (l *SlowLog) Entries() []SlowQuery {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.filled {
		return append([]SlowQuery(nil), l.buf[:l.next]...)
	}
	out := make([]SlowQuery, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// Total counts every entry ever recorded, including those the ring has
// since overwritten.
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
