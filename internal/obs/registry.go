// Package obs is GhostDB's leak-aware telemetry layer: per-query trace
// spans (trace.go), a dependency-free counter/gauge/histogram registry
// rendered in Prometheus text format (this file), and a ring-buffered
// slow-query log (slowlog.go).
//
// The package is untrusted-side by construction and is registered in the
// analyzer Config's untrusted set, so ghostdb-lint's trustboundary rule
// proves no hidden-derived value can ever be exported through it: obs
// must never mention a //ghostdb:hidden type, and no caller may pass a
// hidden-derived expression into an obs function. Every signal that
// flows in here is therefore a function of data the security model
// already reveals — query text, simulated durations derived from metered
// counters, RAM-grant sizes, queue depths — never of hidden tuples.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (e.g. {shard="0"}). Labels are sparse:
// most metrics carry none, per-token metrics carry exactly one.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric. All methods are
// atomic and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. All methods are atomic.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative-style buckets and
// keeps a running sum, the exact shape Prometheus exposes: per-bucket
// counts for every finite upper bound plus an implicit +Inf bucket.
// Observe is atomic and allocation-free; percentiles are derived from
// the buckets by Quantile, so an offline harness and a live scrape
// compute identical numbers from identical data.
type Histogram struct {
	bounds []float64 // ascending finite upper bounds
	counts []atomic.Uint64
	inf    atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram creates a histogram over the given ascending finite
// bucket upper bounds. It is usable standalone (the bench harness) or
// through Registry.Histogram (the live engine).
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	if idx < len(h.bounds) {
		h.counts[idx].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) from the buckets with
// linear interpolation inside the bucket holding the rank — the same
// estimate Prometheus's histogram_quantile computes from a scrape of
// this histogram, which is the point: the bench harness and the live
// server report the same p50/p95/p99 for the same observations. Values
// landing in the +Inf bucket clamp to the highest finite bound. Returns
// 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := float64(h.count.Load())
	if total == 0 {
		return 0
	}
	rank := q * total
	cum, lower := 0.0, 0.0
	for i, upper := range h.bounds {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			frac := (rank - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum += c
		lower = upper
	}
	return lower
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start, each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, 0, n)
	v := start
	for i := 0; i < n; i++ {
		out = append(out, v)
		v *= factor
	}
	return out
}

// TimeBuckets are the default bucket bounds for duration-valued
// histograms, in seconds: 100µs to ~1.7 minutes, doubling. They cover
// the paper's cost model from a one-page read (25µs rounds into the
// first bucket) to multi-pass scans over the full medical dataset.
func TimeBuckets() []float64 { return ExpBuckets(100e-6, 2, 20) }

// GrantBuckets are the default bucket bounds for RAM-grant histograms,
// in whole buffers (the 64KB budget holds 32 two-KB buffers).
func GrantBuckets() []float64 {
	return []float64{1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 28, 32}
}

// metric is one label-set instance inside a family: exactly one of the
// value fields is set, matching the family's kind.
type metric struct {
	labels []Label
	key    string
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// family is all metrics sharing one name (and therefore one HELP/TYPE
// header in the exposition).
type family struct {
	name    string
	help    string
	kind    metricKind
	metrics []*metric
	index   map[string]*metric
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. Registration is idempotent — asking for an already
// registered (name, labels) pair returns the existing metric (callback
// variants replace the callback) — so several frontends over one engine
// can each declare the instruments they need. All methods are safe for
// concurrent use.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// metricFor finds or creates the (family, label set) slot. Callers hold
// r.mu.
func (r *Registry) metricFor(name, help string, kind metricKind, labels []Label) *metric {
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, index: make(map[string]*metric)}
		r.fams[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: %s registered twice with different kinds (%v vs %v)", name, f.kind, kind))
	}
	key := renderLabels(labels, "")
	m := f.index[key]
	if m == nil {
		m = &metric{labels: append([]Label(nil), labels...), key: key}
		f.index[key] = m
		f.metrics = append(f.metrics, m)
	}
	return m
}

// Counter registers (or returns the existing) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.metricFor(name, help, kindCounter, labels)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for monotonic totals another subsystem already maintains
// (token Totals, cache counters). Re-registering replaces the callback.
// fn must be safe for concurrent calls and must not use the registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.metricFor(name, help, kindCounter, labels)
	m.fn = fn
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.metricFor(name, help, kindGauge, labels)
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// GaugeFunc registers a gauge read from fn at scrape time (queue
// depths, cache occupancy). Re-registering replaces the callback. fn
// must be safe for concurrent calls and must not use the registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.metricFor(name, help, kindGauge, labels)
	m.fn = fn
}

// Histogram registers (or returns the existing) histogram with the
// given bucket bounds (bounds are fixed by the first registration).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.metricFor(name, help, kindHistogram, labels)
	if m.h == nil {
		m.h = NewHistogram(bounds)
	}
	return m.h
}

// FindHistogram returns a registered histogram by name and labels, or
// nil — tests and the REPL use it to compute quantiles from the same
// buckets a scrape would see.
func (r *Registry) FindHistogram(name string, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		return nil
	}
	m := f.index[renderLabels(labels, "")]
	if m == nil {
		return nil
	}
	return m.h
}

// WritePrometheus renders every family in Prometheus text exposition
// format (HELP/TYPE headers, one line per sample, histograms as
// cumulative _bucket/_sum/_count series), families in registration
// order, label sets in registration order within a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// One lock around the whole render: registrations are rare (engine
	// construction) and callbacks read other subsystems, never the
	// registry, so holding r.mu across fn() calls cannot deadlock.
	r.mu.Lock()
	defer r.mu.Unlock()

	var b strings.Builder
	for _, name := range r.order {
		f := r.fams[name]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, m := range f.metrics {
			switch {
			case f.kind == kindHistogram:
				writeHistogram(&b, f.name, m)
			case m.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(m.labels, ""), fmtFloat(m.fn()))
			case m.c != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(m.labels, ""), m.c.Value())
			case m.g != nil:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(m.labels, ""), m.g.Value())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, name string, m *metric) {
	h := m.h
	if h == nil {
		return
	}
	cum := uint64(0)
	for i, upper := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(m.labels, `le="`+fmtFloat(upper)+`"`), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(m.labels, `le="+Inf"`), h.Count())
	fmt.Fprintf(b, "%s_sum%s %s\n", name, renderLabels(m.labels, ""), fmtFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(m.labels, ""), h.Count())
}

// renderLabels renders a label set as {k="v",...}, with extra (already
// rendered, e.g. the le bound) appended; "" for the empty set.
func renderLabels(labels []Label, extra string) string {
	if len(labels) == 0 && extra == "" {
		return ""
	}
	parts := make([]string, 0, len(labels)+1)
	for _, l := range labels {
		parts = append(parts, l.Key+`=`+strconv.Quote(l.Value))
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
