package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock lets a test step the windowed histogram's notion of time.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestWindow(window time.Duration, slots int) (*WindowedHistogram, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	w := NewWindowedHistogram(TimeBuckets(), window, slots)
	w.now = clk.now
	return w, clk
}

func TestWindowedHistogramExpiresOldEpochs(t *testing.T) {
	w, clk := newTestWindow(time.Minute, 6) // 10s slots

	w.Observe(0.001)
	w.Observe(0.002)
	if got := w.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}

	// Half a window later the old slot still counts...
	clk.advance(30 * time.Second)
	w.Observe(0.004)
	if got := w.Count(); got != 3 {
		t.Fatalf("count after 30s = %d, want 3", got)
	}

	// ...but a full window past the first observations, only the newer
	// one remains.
	clk.advance(31 * time.Second)
	if got := w.Count(); got != 1 {
		t.Fatalf("count after window rolled = %d, want 1 (old epoch expired)", got)
	}

	// And once everything ages out, the window is empty and the SLO is
	// trivially attained.
	clk.advance(2 * time.Minute)
	if got := w.Count(); got != 0 {
		t.Fatalf("count after full expiry = %d, want 0", got)
	}
	if got := w.Attainment(0.025); got != 1 {
		t.Fatalf("attainment of empty window = %v, want 1", got)
	}
}

func TestWindowedHistogramSlotReuseResets(t *testing.T) {
	w, clk := newTestWindow(time.Minute, 6)
	w.Observe(0.001)

	// Advance exactly one full ring revolution: the same slot index is
	// reused for a new epoch and must not resurrect the old counts.
	clk.advance(time.Minute)
	w.Observe(0.002)
	if got := w.Count(); got != 1 {
		t.Fatalf("count after ring wrap = %d, want 1", got)
	}
}

func TestWindowedHistogramQuantileMatchesPlain(t *testing.T) {
	w, _ := newTestWindow(time.Minute, 12)
	plain := NewHistogram(TimeBuckets())
	for i := 1; i <= 100; i++ {
		v := float64(i) * 0.0005
		w.Observe(v)
		plain.Observe(v)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := w.Quantile(q), plain.Quantile(q); got != want {
			t.Fatalf("q%.0f = %v, want the plain histogram's %v", q*100, got, want)
		}
	}
	if got, want := w.Snapshot().Sum(), plain.Sum(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestFractionBelow(t *testing.T) {
	h := NewHistogram([]float64{0.010, 0.020, 0.040})
	if got := h.FractionBelow(0.020); got != 1 {
		t.Fatalf("empty histogram = %v, want 1", got)
	}
	// 2 obs in (0,10ms], 2 in (10,20ms], 1 in (20,40ms], 1 beyond.
	for _, v := range []float64{0.004, 0.008, 0.012, 0.018, 0.030, 0.100} {
		h.Observe(v)
	}
	cases := []struct {
		le, want float64
	}{
		{0.020, 4.0 / 6},         // exact bucket boundary: no interpolation
		{0.040, 5.0 / 6},         // top finite bound: all but +Inf
		{0.100, 5.0 / 6},         // beyond top bound: same
		{0.030, (4.0 + 0.5) / 6}, // halfway through the (20,40] bucket
		{0.005, (2.0 * 0.5) / 6}, // halfway through the first bucket
	}
	for _, c := range cases {
		if got := h.FractionBelow(c.le); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("FractionBelow(%v) = %v, want %v", c.le, got, c.want)
		}
	}
}

// TestWindowedHistogramConcurrent hammers one windowed histogram from 16
// goroutines — writers observing, readers snapshotting quantiles and
// attainment — the shape `go test -race` needs to certify the lock
// discipline.
func TestWindowedHistogramConcurrent(t *testing.T) {
	w := NewWindowedHistogram(TimeBuckets(), 100*time.Millisecond, 4)
	const goroutines = 16
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if g%2 == 0 {
					w.Observe(float64(i%50) * 0.0004)
				} else {
					_ = w.Quantile(0.99)
					_ = w.Attainment(0.025)
					_ = w.Count()
				}
			}
		}()
	}
	wg.Wait()
	if w.Snapshot() == nil {
		t.Fatal("nil snapshot")
	}
}
