package obs

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestHistogramQuantilesKnownDistribution checks the bucket-based
// percentile estimate against a distribution whose quantiles are exact
// under linear interpolation: 1000 observations evenly filling ten
// equal-width buckets.
func TestHistogramQuantilesKnownDistribution(t *testing.T) {
	bounds := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	h := NewHistogram(bounds)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	wantSum := 500.5 // sum of i/1000 for i=1..1000
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("sum = %g, want %g", h.Sum(), wantSum)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 0.50},
		{0.95, 0.95},
		{0.99, 0.99},
		{0.10, 0.10},
		{1.00, 1.00},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Fatal("nil histogram must read as empty")
	}
	h := NewHistogram([]float64{1, 10})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// Values beyond the last bound land in +Inf and clamp to the highest
	// finite bound.
	h.Observe(1e9)
	if got := h.Quantile(0.99); got != 10 {
		t.Fatalf("overflow quantile = %g, want clamp to 10", got)
	}
}

// TestWritePrometheusParses validates the exposition against the text
// format's grammar line by line, and checks the histogram invariants a
// real scraper relies on: cumulative buckets, a +Inf bucket equal to
// _count, HELP/TYPE exactly once per family.
func TestWritePrometheusParses(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ghostdb_queries_total", "completed queries")
	c.Add(7)
	g := r.Gauge("ghostdb_conns", "open connections")
	g.Set(3)
	r.GaugeFunc("ghostdb_queue_depth", "admission queue depth", func() float64 { return 2 }, L("shard", "0"))
	r.CounterFunc("ghostdb_flash_reads_total", "flash page reads", func() float64 { return 41 }, L("shard", "0"))
	h := r.Histogram("ghostdb_queue_wait_seconds", "admission wait", TimeBuckets(), L("shard", "0"))
	for i := 0; i < 50; i++ {
		h.Observe(0.001 * float64(i))
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	helpRe := regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	typeRe := regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	sampleRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? [-+]?([0-9]*\.)?[0-9]+([eE][-+]?[0-9]+)?$`)
	helpSeen := map[string]int{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP"):
			if !helpRe.MatchString(line) {
				t.Errorf("malformed HELP line: %q", line)
			}
			helpSeen[strings.Fields(line)[2]]++
		case strings.HasPrefix(line, "# TYPE"):
			if !typeRe.MatchString(line) {
				t.Errorf("malformed TYPE line: %q", line)
			}
		default:
			if !sampleRe.MatchString(line) {
				t.Errorf("malformed sample line: %q", line)
			}
		}
	}
	for name, n := range helpSeen {
		if n != 1 {
			t.Errorf("family %s has %d HELP lines, want 1", name, n)
		}
	}

	for _, want := range []string{
		"ghostdb_queries_total 7",
		"ghostdb_conns 3",
		`ghostdb_queue_depth{shard="0"} 2`,
		`ghostdb_flash_reads_total{shard="0"} 41`,
		`ghostdb_queue_wait_seconds_count{shard="0"} 50`,
		`ghostdb_queue_wait_seconds_bucket{shard="0",le="+Inf"} 50`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Bucket counts must be cumulative (non-decreasing in le order).
	bucketRe := regexp.MustCompile(`ghostdb_queue_wait_seconds_bucket\{shard="0",le="([^"]+)"\} (\d+)`)
	prev := int64(-1)
	matches := bucketRe.FindAllStringSubmatch(text, -1)
	if len(matches) < 2 {
		t.Fatal("no histogram buckets rendered")
	}
	for _, m := range matches {
		n, _ := strconv.ParseInt(m[2], 10, 64)
		if n < prev {
			t.Fatalf("bucket le=%s count %d < previous %d: not cumulative", m[1], n, prev)
		}
		prev = n
	}
	if prev != 50 {
		t.Fatalf("+Inf bucket = %d, want 50", prev)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("re-registering a counter must return the same instance")
	}
	h1 := r.Histogram("h_seconds", "h", TimeBuckets())
	h2 := r.Histogram("h_seconds", "h", GrantBuckets())
	if h1 != h2 {
		t.Fatal("re-registering a histogram must return the same instance")
	}
	la := r.Counter("y_total", "y", L("shard", "0"))
	lb := r.Counter("y_total", "y", L("shard", "1"))
	if la == lb {
		t.Fatal("distinct label sets must get distinct counters")
	}
	if got := r.FindHistogram("h_seconds"); got != h1 {
		t.Fatal("FindHistogram must return the registered instance")
	}
	if got := r.FindHistogram("absent"); got != nil {
		t.Fatal("FindHistogram on an absent family must return nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("x_total", "x")
}
