package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// Trace is one query's span tree: parse, resolve, plan, admission-queue
// wait, token-slot occupancy, per-operator execution, cache lookup and
// per-shard scatter legs, each with its wall-clock duration and (where
// the cost model applies) its simulated duration.
//
// Every method on Trace and Span is nil-safe: a nil receiver is a
// complete no-op, so the hot path carries a single nil check and zero
// allocations for the overwhelmingly common untraced query. Span
// creation from concurrent goroutines (scatter legs) is serialized by
// the trace's mutex.
type Trace struct {
	mu    sync.Mutex
	start time.Time
	root  *Span
}

// Span is one node of a trace: a named interval with wall-clock timing,
// an optional simulated duration from the cost model, an optional note,
// and child spans.
type Span struct {
	tr       *Trace
	name     string
	note     string
	startUs  int64 // offset from the trace start
	wallUs   int64
	simUs    int64
	children []*Span
	began    time.Time
	open     bool
}

// NewTrace starts a trace whose root span has the given name (the
// canonical place for it is the query's statement kind, e.g. "query").
func NewTrace(name string) *Trace {
	t := &Trace{start: time.Now()}
	t.root = &Span{tr: t, name: name, began: t.start, open: true}
	return t
}

// Root returns the root span (nil for a nil trace, so a chained
// t.Root().Start(...) stays a no-op when tracing is off).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish closes the root span. Idempotent.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.root.End()
}

// Start opens a child span. Safe from any goroutine; returns nil (still
// usable) when the receiver is nil.
func (sp *Span) Start(name string) *Span {
	if sp == nil {
		return nil
	}
	t := sp.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	child := &Span{tr: t, name: name, began: now, startUs: now.Sub(t.start).Microseconds(), open: true}
	sp.children = append(sp.children, child)
	return child
}

// End closes the span, fixing its wall-clock duration. Idempotent.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	t := sp.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if sp.open {
		sp.open = false
		sp.wallUs = time.Since(sp.began).Microseconds()
	}
}

// SetSim records the span's simulated duration under the cost model.
func (sp *Span) SetSim(d time.Duration) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.simUs = d.Microseconds()
	sp.tr.mu.Unlock()
}

// SetNote attaches a short annotation (e.g. "token 2" or "cache hit").
// Notes must be declassified scalars — the trustboundary analyzer
// rejects hidden-derived arguments at every call site.
func (sp *Span) SetNote(note string) {
	if sp == nil {
		return
	}
	sp.tr.mu.Lock()
	sp.note = note
	sp.tr.mu.Unlock()
}

// Add appends an already-completed child carrying only a simulated
// duration — how per-operator costs, measured by the metrics collector
// rather than wall-clocked inline, enter the tree.
func (sp *Span) Add(name string, sim time.Duration) *Span {
	if sp == nil {
		return nil
	}
	t := sp.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	child := &Span{tr: t, name: name, startUs: sp.startUs, simUs: sim.Microseconds()}
	sp.children = append(sp.children, child)
	return child
}

// SpanJSON is the exported form of one span, the shape EXPLAIN ANALYZE
// and /trace marshal.
type SpanJSON struct {
	// Name identifies the span (parse, admission, exec, an operator
	// cost-span name, scatter, ...).
	Name string `json:"name"`
	// StartUs is the span's start offset from the trace start, in
	// wall-clock microseconds.
	StartUs int64 `json:"start_us"`
	// WallUs is the span's wall-clock duration in microseconds.
	WallUs int64 `json:"wall_us"`
	// SimUs is the span's simulated duration under the cost model, in
	// microseconds (0 when the span is wall-clock only).
	SimUs int64 `json:"sim_us,omitempty"`
	// Note is an optional annotation ("token 2", "hit", ...).
	Note string `json:"note,omitempty"`
	// Children are the nested spans.
	Children []SpanJSON `json:"children,omitempty"`
}

// Snapshot renders the trace as its exported JSON structure. Open spans
// appear with their duration so far.
func (t *Trace) Snapshot() SpanJSON {
	if t == nil {
		return SpanJSON{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return snapshotSpan(t.root)
}

func snapshotSpan(sp *Span) SpanJSON {
	out := SpanJSON{Name: sp.name, StartUs: sp.startUs, WallUs: sp.wallUs, SimUs: sp.simUs, Note: sp.note}
	if sp.open {
		out.WallUs = time.Since(sp.began).Microseconds()
	}
	for _, c := range sp.children {
		out.Children = append(out.Children, snapshotSpan(c))
	}
	return out
}

// JSON marshals the snapshot, indented for human consumption.
func (t *Trace) JSON() ([]byte, error) {
	return json.MarshalIndent(t.Snapshot(), "", "  ")
}

// SimSum returns the sum of the direct children's simulated durations
// for the first span named name in the tree — what the EXPLAIN ANALYZE
// contract checks against Stats.SimTime.
func (s SpanJSON) SimSum(name string) time.Duration {
	if sp, ok := s.find(name); ok {
		var sum int64
		for _, c := range sp.Children {
			sum += c.SimUs
		}
		return time.Duration(sum) * time.Microsecond
	}
	return 0
}

func (s SpanJSON) find(name string) (SpanJSON, bool) {
	if s.Name == name {
		return s, true
	}
	for _, c := range s.Children {
		if found, ok := c.find(name); ok {
			return found, true
		}
	}
	return SpanJSON{}, false
}

// Find returns the first span with the given name in depth-first order.
func (s SpanJSON) Find(name string) (SpanJSON, bool) { return s.find(name) }
