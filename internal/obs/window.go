package obs

import (
	"math"
	"sync"
	"time"
)

// WindowedHistogram is a rolling-window histogram: observations land in
// the bucket layout of a plain Histogram (so offline benches and live
// scrapes agree on quantile math), but only the last `window` of wall
// time counts. The window is a ring of slot sub-histograms stamped with
// their epoch; a slot is lazily reset the first time an observation
// lands in a new epoch, so idle instruments cost nothing. This is the
// primitive behind rolling SLO attainment: the /slo endpoint and the
// ghostdb_slo_attainment gauge both read a merged snapshot of the live
// slots.
//
// Like the rest of obs, a WindowedHistogram only ever sees values the
// security model already reveals (wall-clock latencies, metered
// durations) — never hidden tuple data.
type WindowedHistogram struct {
	mu     sync.Mutex
	bounds []float64
	slotD  time.Duration
	slots  []windowSlot
	// now is the clock; tests swap it for a deterministic one.
	now func() time.Time
}

// windowSlot is one ring entry: the epoch it was last reset for, and
// the observations of that epoch.
type windowSlot struct {
	epoch int64
	h     *Histogram
}

// NewWindowedHistogram creates a rolling histogram over the given
// ascending finite bucket bounds, covering `window` of wall time split
// into `slots` ring entries (more slots = smoother expiry). window
// defaults to one minute, slots to 12, when non-positive.
func NewWindowedHistogram(bounds []float64, window time.Duration, slots int) *WindowedHistogram {
	if window <= 0 {
		window = time.Minute
	}
	if slots < 1 {
		slots = 12
	}
	w := &WindowedHistogram{
		bounds: append([]float64(nil), bounds...),
		slotD:  window / time.Duration(slots),
		slots:  make([]windowSlot, slots),
		now:    time.Now,
	}
	for i := range w.slots {
		w.slots[i].epoch = -1
	}
	return w
}

// Window returns the span of wall time the histogram covers.
func (w *WindowedHistogram) Window() time.Duration {
	return w.slotD * time.Duration(len(w.slots))
}

// epochAt maps a wall-clock instant to a slot epoch.
func (w *WindowedHistogram) epochAt(t time.Time) int64 {
	return t.UnixNano() / int64(w.slotD)
}

// Observe records one value into the current epoch's slot.
func (w *WindowedHistogram) Observe(v float64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	epoch := w.epochAt(w.now())
	s := &w.slots[int(epoch%int64(len(w.slots)))]
	if s.epoch != epoch {
		s.epoch = epoch
		s.h = NewHistogram(w.bounds)
	}
	s.h.Observe(v)
	w.mu.Unlock()
}

// Snapshot merges the slots still inside the window into one plain
// Histogram, so quantiles and attainment are computed by exactly the
// same bucket math a Prometheus scrape would use.
func (w *WindowedHistogram) Snapshot() *Histogram {
	out := NewHistogram(w.bounds)
	if w == nil {
		return out
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	cur := w.epochAt(w.now())
	min := cur - int64(len(w.slots)) + 1
	var sum float64
	for i := range w.slots {
		s := &w.slots[i]
		if s.h == nil || s.epoch < min || s.epoch > cur {
			continue
		}
		for j := range s.h.counts {
			out.counts[j].Add(s.h.counts[j].Load())
		}
		out.inf.Add(s.h.inf.Load())
		out.count.Add(s.h.count.Load())
		sum += s.h.Sum()
	}
	out.sum.Store(math.Float64bits(sum))
	return out
}

// Count returns the number of observations inside the window.
func (w *WindowedHistogram) Count() uint64 {
	if w == nil {
		return 0
	}
	return w.Snapshot().Count()
}

// Quantile estimates the q-quantile over the window (see
// Histogram.Quantile for the interpolation rule).
func (w *WindowedHistogram) Quantile(q float64) float64 {
	if w == nil {
		return 0
	}
	return w.Snapshot().Quantile(q)
}

// Attainment returns the fraction of windowed observations at or below
// le — the SLO attainment against a latency objective. An empty window
// attains trivially (returns 1).
func (w *WindowedHistogram) Attainment(le float64) float64 {
	if w == nil {
		return 1
	}
	return w.Snapshot().FractionBelow(le)
}

// FractionBelow estimates the fraction of observations at or below le,
// with linear interpolation inside the bucket containing le — the
// cumulative counterpart of Quantile, and the estimate a recording rule
// over this histogram's _bucket series would produce. Returns 1 when
// empty (an SLO with no traffic is attained).
func (h *Histogram) FractionBelow(le float64) float64 {
	if h == nil {
		return 1
	}
	total := float64(h.count.Load())
	if total == 0 {
		return 1
	}
	cum, lower := 0.0, 0.0
	for i, upper := range h.bounds {
		c := float64(h.counts[i].Load())
		if le < upper {
			frac := 0.0
			if upper > lower {
				frac = (le - lower) / (upper - lower)
			}
			if frac < 0 {
				frac = 0
			}
			return (cum + c*frac) / total
		}
		cum += c
		lower = upper
	}
	// le at or beyond the top finite bound: everything but the +Inf
	// bucket qualifies.
	return cum / total
}
