package obs

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTraceTreeAndJSON(t *testing.T) {
	tr := NewTrace("query")
	parse := tr.Root().Start("parse")
	parse.End()
	ex := tr.Root().Start("exec")
	ex.SetNote("token 0")
	ex.Add("Vis", 3*time.Millisecond)
	ex.Add("CI", 2*time.Millisecond)
	ex.SetSim(5 * time.Millisecond)
	ex.End()
	tr.Finish()

	snap := tr.Snapshot()
	if snap.Name != "query" || len(snap.Children) != 2 {
		t.Fatalf("root = %q with %d children, want query with 2", snap.Name, len(snap.Children))
	}
	execSpan, ok := snap.Find("exec")
	if !ok {
		t.Fatal("exec span missing")
	}
	if execSpan.Note != "token 0" || execSpan.SimUs != 5000 {
		t.Fatalf("exec span = %+v", execSpan)
	}
	if got := snap.SimSum("exec"); got != 5*time.Millisecond {
		t.Fatalf("SimSum(exec) = %v, want 5ms", got)
	}

	raw, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back SpanJSON
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if _, ok := back.Find("Vis"); !ok {
		t.Fatal("operator span lost in JSON round-trip")
	}
}

// TestTraceNilSafety pins the hot-path contract: with tracing off every
// call chain is a no-op, never a panic.
func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Root().Start("x")
	sp.SetSim(time.Second)
	sp.SetNote("n")
	sp.Add("y", time.Second).End()
	sp.End()
	tr.Finish()
	if snap := tr.Snapshot(); snap.Name != "" {
		t.Fatal("nil trace snapshot must be zero")
	}
}

// TestTraceConcurrentSpans emits spans from 16 goroutines into one
// trace — the scatter fan-out shape — and is exercised under -race by
// the CI race job.
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("query")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			leg := tr.Root().Start("scatter")
			leg.SetNote(fmt.Sprintf("part %d", i))
			for j := 0; j < 8; j++ {
				op := leg.Start("op")
				op.SetSim(time.Duration(j) * time.Microsecond)
				op.End()
			}
			leg.End()
		}(i)
	}
	// Concurrent snapshot while spans are still being emitted must be
	// safe too (the /trace endpoint can race a scatter leg).
	for i := 0; i < 4; i++ {
		tr.Snapshot()
	}
	wg.Wait()
	tr.Finish()
	snap := tr.Snapshot()
	if len(snap.Children) != 16 {
		t.Fatalf("%d scatter legs, want 16", len(snap.Children))
	}
	for _, leg := range snap.Children {
		if len(leg.Children) != 8 {
			t.Fatalf("leg %q has %d ops, want 8", leg.Note, len(leg.Children))
		}
	}
}
