package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"ghostdb"
	"ghostdb/internal/schema"
)

// HTTPHandler returns a JSON facade over the same DB, for clients that
// prefer HTTP to the line protocol:
//
//	GET/POST /query?q=SELECT...   -> {columns, rows, stats}
//	POST     /exec?q=INSERT...    -> {ok}
//	GET      /explain?q=SELECT... -> {plan}
//	GET      /stats               -> {totals & cache counters}
//	GET      /healthz             -> 200 {"status":"ok"} | 503 "draining"
//	GET      /metrics             -> Prometheus text exposition
//	GET/POST /trace?q=SELECT...   -> execute with a span tree attached
//	GET      /slowlog             -> slow-query ring, oldest first
//	GET      /slo                 -> rolling SLO attainment snapshot
//
// Statements rejected by the load shedder (ghostdb.ErrOverloaded)
// return 429 Too Many Requests rather than 400, so clients and load
// balancers can distinguish "back off" from "your query is wrong".
//
// The observability trio (/metrics, /trace, /slowlog) is gated by
// SetTelemetry and exports only declassified values: simulated costs
// from the metered model, scheduling bookkeeping, and canonical query
// text — the one thing the security model reveals anyway.
//
// Each request's context flows into QueryCtx/ExecCtx, so a client that
// disconnects mid-request abandons its queued admission slot — the same
// per-client cancellation contract as the TCP protocol.
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		sql := r.FormValue("q")
		if sql == "" {
			httpErr(w, http.StatusBadRequest, "missing q parameter")
			return
		}
		res, err := s.db.QueryCtx(r.Context(), sql)
		if err != nil {
			httpErr(w, statusFor(err), err.Error())
			return
		}
		rows := make([][]any, len(res.Rows))
		for ri, row := range res.Rows {
			out := make([]any, len(row))
			for ci, v := range row {
				out[ci] = jsonValue(v)
			}
			rows[ri] = out
		}
		writeJSON(w, map[string]any{
			"columns": res.Columns,
			"rows":    rows,
			"stats": map[string]any{
				"sim_us":   res.Stats.SimTime.Microseconds(),
				"bus_down": res.Stats.BusDown,
				"bus_up":   res.Stats.BusUp,
				"cache":    cacheLabel(res.Stats),
			},
		})
	})
	mux.HandleFunc("/exec", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "EXEC requires POST")
			return
		}
		sql := r.FormValue("q")
		if sql == "" {
			httpErr(w, http.StatusBadRequest, "missing q parameter")
			return
		}
		if err := s.db.ExecCtx(r.Context(), sql); err != nil {
			httpErr(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, map[string]any{"ok": true})
	})
	mux.HandleFunc("/explain", func(w http.ResponseWriter, r *http.Request) {
		sql := r.FormValue("q")
		if sql == "" {
			httpErr(w, http.StatusBadRequest, "missing q parameter")
			return
		}
		plan, err := s.db.Explain(sql)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, map[string]any{"plan": plan})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		out := make(map[string]any)
		for _, p := range statsPairs(s.db) {
			out[p.k] = p.v
		}
		writeJSON(w, out)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{"status": "draining"})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"status": "ok"})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if !s.telemetry.Load() {
			httpErr(w, http.StatusNotFound, "telemetry disabled")
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.db.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if !s.telemetry.Load() {
			httpErr(w, http.StatusNotFound, "telemetry disabled")
			return
		}
		sql := r.FormValue("q")
		if sql == "" {
			httpErr(w, http.StatusBadRequest, "missing q parameter")
			return
		}
		tr := ghostdb.NewTrace(sql)
		res, err := s.db.QueryCtx(r.Context(), sql, ghostdb.WithTrace(tr))
		if err != nil {
			httpErr(w, statusFor(err), err.Error())
			return
		}
		tr.Finish()
		writeJSON(w, map[string]any{
			"trace": tr.Snapshot(),
			"stats": map[string]any{
				"rows":          len(res.Rows),
				"sim_us":        res.Stats.SimTime.Microseconds(),
				"queue_wait_us": res.Stats.QueueWait.Microseconds(),
				"cache":         cacheLabel(res.Stats),
			},
		})
	})
	mux.HandleFunc("/slo", func(w http.ResponseWriter, r *http.Request) {
		if !s.telemetry.Load() {
			httpErr(w, http.StatusNotFound, "telemetry disabled")
			return
		}
		writeJSON(w, s.db.SLO())
	})
	mux.HandleFunc("/slowlog", func(w http.ResponseWriter, r *http.Request) {
		if !s.telemetry.Load() {
			httpErr(w, http.StatusNotFound, "telemetry disabled")
			return
		}
		sl := s.db.SlowLog()
		if sl == nil {
			writeJSON(w, map[string]any{"enabled": false, "entries": []ghostdb.SlowQuery{}})
			return
		}
		entries := sl.Entries()
		if entries == nil {
			entries = []ghostdb.SlowQuery{}
		}
		writeJSON(w, map[string]any{
			"enabled":      true,
			"threshold_us": sl.Threshold().Microseconds(),
			"total":        sl.Total(),
			"entries":      entries,
		})
	})
	// The wrapper meters every request: in-flight gauge around the
	// handler, status-class counter after it.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.httpInFlight.Add(1)
		defer s.httpInFlight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		mux.ServeHTTP(rec, r)
		if i := rec.code/100 - 2; i >= 0 && i < len(s.httpCodes) {
			s.httpCodes[i].Inc()
		}
	})
}

// statusRecorder captures the response status for the per-class
// response counters (an unwritten header counts as the implicit 200).
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func jsonValue(v ghostdb.Value) any {
	switch v.Kind {
	case schema.KindInt:
		return v.I
	case schema.KindFloat:
		return v.F
	default:
		return v.S
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// statusFor maps an engine error to an HTTP status: shed statements are
// a load condition (429), everything else is a client error (400).
func statusFor(err error) int {
	if errors.Is(err, ghostdb.ErrOverloaded) {
		return http.StatusTooManyRequests
	}
	return http.StatusBadRequest
}

func httpErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{"error": msg})
}
