package server

import (
	"encoding/json"
	"net/http"

	"ghostdb"
	"ghostdb/internal/schema"
)

// HTTPHandler returns a JSON facade over the same DB, for clients that
// prefer HTTP to the line protocol:
//
//	GET/POST /query?q=SELECT...   -> {columns, rows, stats}
//	POST     /exec?q=INSERT...    -> {ok}
//	GET      /explain?q=SELECT... -> {plan}
//	GET      /stats               -> {totals & cache counters}
//
// Each request's context flows into QueryCtx/ExecCtx, so a client that
// disconnects mid-request abandons its queued admission slot — the same
// per-client cancellation contract as the TCP protocol.
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		sql := r.FormValue("q")
		if sql == "" {
			httpErr(w, http.StatusBadRequest, "missing q parameter")
			return
		}
		res, err := s.db.QueryCtx(r.Context(), sql)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err.Error())
			return
		}
		rows := make([][]any, len(res.Rows))
		for ri, row := range res.Rows {
			out := make([]any, len(row))
			for ci, v := range row {
				out[ci] = jsonValue(v)
			}
			rows[ri] = out
		}
		writeJSON(w, map[string]any{
			"columns": res.Columns,
			"rows":    rows,
			"stats": map[string]any{
				"sim_us":   res.Stats.SimTime.Microseconds(),
				"bus_down": res.Stats.BusDown,
				"bus_up":   res.Stats.BusUp,
				"cache":    cacheLabel(res.Stats),
			},
		})
	})
	mux.HandleFunc("/exec", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			httpErr(w, http.StatusMethodNotAllowed, "EXEC requires POST")
			return
		}
		sql := r.FormValue("q")
		if sql == "" {
			httpErr(w, http.StatusBadRequest, "missing q parameter")
			return
		}
		if err := s.db.ExecCtx(r.Context(), sql); err != nil {
			httpErr(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, map[string]any{"ok": true})
	})
	mux.HandleFunc("/explain", func(w http.ResponseWriter, r *http.Request) {
		sql := r.FormValue("q")
		if sql == "" {
			httpErr(w, http.StatusBadRequest, "missing q parameter")
			return
		}
		plan, err := s.db.Explain(sql)
		if err != nil {
			httpErr(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, map[string]any{"plan": plan})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		out := make(map[string]any)
		for _, p := range statsPairs(s.db) {
			out[p.k] = p.v
		}
		writeJSON(w, out)
	})
	return mux
}

func jsonValue(v ghostdb.Value) any {
	switch v.Kind {
	case schema.KindInt:
		return v.I
	case schema.KindFloat:
		return v.F
	default:
		return v.S
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{"error": msg})
}
