// Package server is the multi-client frontend over one GhostDB instance:
// many clients, one secure token. It speaks a line protocol over TCP
// (and JSON over HTTP, see http.go), multiplexing every client onto the
// one *ghostdb.DB — whose admission scheduler FIFO-fairly interleaves
// their query sessions on the single simulated secure key, and whose
// result cache lets repeated queries from *any* client skip the token
// entirely.
//
// This is the deployment shape the paper implies but never builds: the
// secure USB key is plugged into one machine, and that machine serves a
// crowd. Nothing in the security model changes — each client's SQL text
// was already the one thing the untrusted side sees, and the server is
// untrusted-side code.
//
// # Wire protocol
//
// Requests are single lines, terminated by '\n' (CRLF tolerated):
//
//	QUERY <sql>     execute a SELECT
//	EXEC <sql>      execute an INSERT, UPDATE or DELETE
//	EXPLAIN <sql>   plan a statement without executing it
//	STATS           engine totals + result-cache + delta/compaction counters
//	PING            liveness check
//	QUIT            close the connection
//
// Responses are one or more lines, always terminated by exactly one
// "OK ..." or "ERR <message>" line:
//
//	COLS <n>\t<label>...     result header (QUERY)
//	ROW <field>\t<field>...  one result row (QUERY); char fields are
//	                         Go-quoted, numeric fields are plain
//	INFO <text>              EXPLAIN plan lines and STATS key=value lines
//	OK [key=value ...]       success; QUERY reports rows=, sim_us=, cache=
//	ERR <message>            failure (the connection stays usable)
//
// Each connection runs its commands sequentially under a per-client
// context that is cancelled when the client disconnects or the server
// shuts down, and that context flows into QueryCtx/ExecCtx — a queued
// query whose client went away abandons its admission slot without ever
// having held secure RAM. Shutdown drains gracefully: new connections
// are refused, idle clients are closed, in-flight commands finish (until
// the caller's deadline forces cancellation).
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ghostdb"
	"ghostdb/internal/obs"
	"ghostdb/internal/schema"
)

// maxLine bounds one request line (SQL statements are small).
const maxLine = 1 << 20

// Server multiplexes line-protocol clients onto one DB.
type Server struct {
	db   *ghostdb.DB
	logf func(format string, args ...any)

	baseCtx context.Context
	cancel  context.CancelFunc

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]*connState
	closed    bool

	wg sync.WaitGroup // live connection handlers

	// telemetry gates the observability endpoints (/metrics, /trace,
	// /slowlog). Collection in the engine is always on; this only
	// controls whether this process *exposes* it.
	telemetry atomic.Bool
	// httpInFlight counts HTTP requests currently being served.
	httpInFlight atomic.Int64
	// httpCodes counts responses by status class (2xx/3xx/4xx/5xx).
	httpCodes [4]*obs.Counter
}

type connState struct {
	busy bool // a command is executing; don't hard-close mid-response
}

// New creates a server over db. logf may be nil (silent).
func New(db *ghostdb.DB, logf func(string, ...any)) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		db:        db,
		logf:      logf,
		baseCtx:   ctx,
		cancel:    cancel,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]*connState),
	}
	s.telemetry.Store(true)
	reg := db.Metrics()
	reg.GaugeFunc("ghostdb_server_connections", "live line-protocol client connections",
		func() float64 { return float64(s.ConnCount()) })
	reg.GaugeFunc("ghostdb_server_http_in_flight", "HTTP requests currently being served",
		func() float64 { return float64(s.httpInFlight.Load()) })
	for i, class := range []string{"2xx", "3xx", "4xx", "5xx"} {
		s.httpCodes[i] = reg.Counter("ghostdb_server_http_responses_total",
			"HTTP responses by status class", obs.L("code", class))
	}
	return s
}

// SetTelemetry enables or disables the observability endpoints
// (/metrics, /trace, /slowlog, the \metrics surface). Exposure is what
// is gated — the engine keeps collecting either way. Enabled by default.
func (s *Server) SetTelemetry(on bool) { s.telemetry.Store(on) }

// Draining reports whether Shutdown has begun: new connections are
// refused and /healthz answers 503, so load balancers stop routing here
// while in-flight commands finish.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// ConnCount returns the number of live line-protocol connections.
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Serve accepts connections on ln until Shutdown (returns nil) or an
// accept error (returned). It may be called on several listeners.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.listeners, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		st := &connState{}
		s.conns[conn] = st
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn, st)
	}
}

// Shutdown stops accepting, closes idle clients, and waits for in-flight
// commands to finish. If ctx expires first, the per-client contexts are
// cancelled (aborting queued and running queries) and every connection
// is closed; Shutdown then returns ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	// Idle clients would block the drain forever; close them now. Busy
	// ones get to finish their current command (the handler notices
	// closed and exits after responding).
	for conn, st := range s.conns {
		if !st.busy {
			conn.Close()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel() // aborts in-flight QueryCtx/ExecCtx calls
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// handle runs one client's command loop.
func (s *Server) handle(conn net.Conn, st *connState) {
	defer s.wg.Done()
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 64<<10), maxLine)
	out := bufio.NewWriter(conn)
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line == "" {
			continue
		}
		// Claiming busy and checking closed must be one atomic step:
		// otherwise Shutdown could observe this connection as idle and
		// close it between Scan returning and the command executing —
		// and an EXEC would then commit with its response lost.
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		st.busy = true
		s.mu.Unlock()
		quit := s.dispatch(ctx, out, line)
		err := out.Flush()
		s.mu.Lock()
		st.busy = false
		closed := s.closed
		s.mu.Unlock()
		if quit || err != nil || closed {
			return
		}
	}
	// A scanner failure (oversized line, read error) is not a clean EOF:
	// tell the client why before closing, so a bare disconnect always
	// means the client's own hangup or a server shutdown. A conn closed
	// by Shutdown's idle drain is exactly that shutdown case — skip it.
	if err := in.Err(); err != nil && !errors.Is(err, net.ErrClosed) {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if !closed {
			fmt.Fprintf(out, "ERR read: %s\n", strings.ReplaceAll(err.Error(), "\n", " "))
			out.Flush()
			s.logf("server: %v: %v", conn.RemoteAddr(), err)
		}
	}
}

// dispatch executes one command line, writing the response to out. It
// returns true when the connection should close (QUIT).
func (s *Server) dispatch(ctx context.Context, out *bufio.Writer, line string) bool {
	cmd, rest := line, ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		cmd, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	switch strings.ToUpper(cmd) {
	case "PING":
		fmt.Fprintf(out, "OK pong\n")
	case "QUIT":
		fmt.Fprintf(out, "OK bye\n")
		return true
	case "QUERY":
		s.doQuery(ctx, out, rest)
	case "EXEC":
		s.doExec(ctx, out, rest)
	case "EXPLAIN":
		s.doExplain(out, rest)
	case "STATS":
		s.doStats(out)
	default:
		fmt.Fprintf(out, "ERR unknown command %q (QUERY, EXEC, EXPLAIN, STATS, PING, QUIT)\n", cmd)
	}
	return false
}

func (s *Server) doQuery(ctx context.Context, out *bufio.Writer, sql string) {
	if sql == "" {
		fmt.Fprintf(out, "ERR QUERY needs a statement\n")
		return
	}
	res, err := s.db.QueryCtx(ctx, sql)
	if err != nil {
		writeErr(out, err)
		return
	}
	fmt.Fprintf(out, "COLS %d", len(res.Columns))
	for _, c := range res.Columns {
		fmt.Fprintf(out, "\t%s", c)
	}
	fmt.Fprintln(out)
	for _, row := range res.Rows {
		out.WriteString("ROW")
		for _, v := range row {
			out.WriteByte('\t')
			out.WriteString(renderValue(v))
		}
		out.WriteByte('\n')
	}
	fmt.Fprintf(out, "OK rows=%d sim_us=%d cache=%s\n",
		len(res.Rows), res.Stats.SimTime.Microseconds(), cacheLabel(res.Stats))
}

func (s *Server) doExec(ctx context.Context, out *bufio.Writer, sql string) {
	if sql == "" {
		fmt.Fprintf(out, "ERR EXEC needs a statement\n")
		return
	}
	if err := s.db.ExecCtx(ctx, sql); err != nil {
		writeErr(out, err)
		return
	}
	fmt.Fprintf(out, "OK\n")
}

func (s *Server) doExplain(out *bufio.Writer, sql string) {
	if sql == "" {
		fmt.Fprintf(out, "ERR EXPLAIN needs a statement\n")
		return
	}
	plan, err := s.db.Explain(sql)
	if err != nil {
		writeErr(out, err)
		return
	}
	for _, l := range strings.Split(strings.TrimRight(plan, "\n"), "\n") {
		fmt.Fprintf(out, "INFO %s\n", l)
	}
	fmt.Fprintf(out, "OK\n")
}

func (s *Server) doStats(out *bufio.Writer) {
	for _, kv := range statsPairs(s.db) {
		fmt.Fprintf(out, "INFO %s=%v\n", kv.k, kv.v)
	}
	fmt.Fprintf(out, "OK\n")
}

type kv struct {
	k string
	v any
}

// statsPairs renders engine totals, per-shard totals and cache counters;
// shared between the line protocol and the HTTP endpoint so both report
// identically.
func statsPairs(db *ghostdb.DB) []kv {
	tot := db.Totals()
	cs := db.CacheStats()
	out := []kv{
		{"version", ghostdb.Version},
		{"queries", tot.Queries},
		{"sim_us", tot.SimTime.Microseconds()},
		{"io_us", tot.IOTime.Microseconds()},
		{"comm_us", tot.CommTime.Microseconds()},
		{"flash_reads", tot.Flash.PageReads},
		{"flash_writes", tot.Flash.PageWrites},
		{"bus_down_bytes", tot.BusDown},
		{"bus_up_bytes", tot.BusUp},
		{"cache_hits", tot.CacheHits},
		{"cache_shared", tot.CacheShared},
		{"cache_entries", cs.Entries},
		{"cache_bytes", cs.Bytes},
		{"cache_capacity_bytes", cs.CapacityBytes},
		{"cache_evictions", cs.Evictions},
		{"cache_invalidations", cs.Invalidations},
	}
	out = append(out, kv{"shards", db.Shards()})
	ds := db.ShardDeltaStats()
	for i, st := range db.ShardTotals() {
		p := fmt.Sprintf("shard%d_", i)
		out = append(out,
			kv{p + "sessions", st.Queries},
			kv{p + "sim_us", st.SimTime.Microseconds()},
			kv{p + "flash_reads", st.Flash.PageReads},
			kv{p + "flash_writes", st.Flash.PageWrites},
			kv{p + "bus_down_bytes", st.BusDown},
			kv{p + "bus_up_bytes", st.BusUp},
			kv{p + "delta_pages", ds[i].Pages},
			kv{p + "dml_statements", ds[i].DMLStatements},
			kv{p + "compactions", ds[i].Compactions},
		)
	}
	return out
}

func cacheLabel(st ghostdb.Stats) string {
	switch {
	case st.CacheHit:
		return "hit"
	case st.CacheShared:
		return "shared"
	}
	return "miss"
}

// renderValue encodes one result field: numeric values print plainly,
// char values are Go-quoted so tabs and newlines cannot corrupt framing.
func renderValue(v ghostdb.Value) string {
	if v.Kind == schema.KindChar {
		return strconv.Quote(v.S)
	}
	return v.String()
}

func writeErr(out *bufio.Writer, err error) {
	msg := strings.ReplaceAll(err.Error(), "\n", " ")
	fmt.Fprintf(out, "ERR %s\n", msg)
}
