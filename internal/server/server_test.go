package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ghostdb"
)

// testDB builds a small two-level database with the result cache on.
func testDB(t testing.TB) *ghostdb.DB {
	t.Helper()
	db, err := ghostdb.Create([]string{
		`CREATE TABLE Orders (id int, customer_id int REFERENCES Customers HIDDEN,
		   quarter char(7), amount float HIDDEN)`,
		`CREATE TABLE Customers (id int, company char(30) HIDDEN, region char(20))`,
	}, ghostdb.Options{FlashBlocks: 4096, MaxConcurrentQueries: 8, ResultCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ld := db.Loader()
	regions := []string{"north", "south", "east", "west"}
	for i := 0; i < 30; i++ {
		if err := ld.Append("Customers", ghostdb.R{"company": fmt.Sprintf("corp-%02d", i), "region": regions[i%4]}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		if err := ld.Append("Orders", ghostdb.R{"customer_id": i % 30, "quarter": fmt.Sprintf("2006-Q%d", i%4+1), "amount": float64(i % 250)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ld.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

// startServer serves testDB on a loopback listener.
func startServer(t *testing.T) (*Server, string) {
	t.Helper()
	s := New(testDB(t), t.Logf)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return s, ln.Addr().String()
}

type client struct {
	conn net.Conn
	in   *bufio.Scanner
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	in := bufio.NewScanner(conn)
	in.Buffer(make([]byte, 64<<10), maxLine)
	return &client{conn: conn, in: in}
}

// roundtrip sends one command and reads lines through the OK/ERR
// terminator.
func (c *client) roundtrip(t *testing.T, cmd string) []string {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\n", cmd); err != nil {
		t.Fatalf("send %q: %v", cmd, err)
	}
	var lines []string
	for c.in.Scan() {
		line := c.in.Text()
		lines = append(lines, line)
		if strings.HasPrefix(line, "OK") || strings.HasPrefix(line, "ERR") {
			return lines
		}
	}
	t.Fatalf("connection closed mid-response to %q (got %q)", cmd, lines)
	return nil
}

const testQ = `QUERY SELECT Orders.id, Customers.company FROM Orders, Customers WHERE Orders.customer_id = Customers.id AND Customers.region = 'north' AND Orders.amount >= 200.0`

func TestProtocolQueryExplainStats(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)

	if got := c.roundtrip(t, "PING"); !strings.HasPrefix(got[len(got)-1], "OK") {
		t.Fatalf("PING: %v", got)
	}

	lines := c.roundtrip(t, testQ)
	if !strings.HasPrefix(lines[0], "COLS 2\t") {
		t.Fatalf("header: %q", lines[0])
	}
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "OK rows=") || !strings.Contains(last, "cache=miss") {
		t.Fatalf("terminator: %q", last)
	}
	nrows := len(lines) - 2
	if nrows == 0 {
		t.Fatal("expected some rows from the test query")
	}
	if !strings.HasPrefix(lines[1], "ROW ") && !strings.HasPrefix(lines[1], "ROW\t") {
		t.Fatalf("row line: %q", lines[1])
	}

	// Same query again: served from the cache, same row count.
	again := c.roundtrip(t, testQ)
	if len(again) != len(lines) {
		t.Fatalf("cached response has %d lines, want %d", len(again), len(lines))
	}
	if last := again[len(again)-1]; !strings.Contains(last, "cache=hit") || !strings.Contains(last, "sim_us=0") {
		t.Fatalf("cached terminator: %q", last)
	}

	ex := c.roundtrip(t, strings.Replace(testQ, "QUERY ", "EXPLAIN ", 1))
	if !strings.HasPrefix(ex[0], "INFO plan:") || ex[len(ex)-1] != "OK" {
		t.Fatalf("EXPLAIN: %v", ex)
	}

	st := c.roundtrip(t, "STATS")
	joined := strings.Join(st, "\n")
	for _, want := range []string{"INFO version=" + ghostdb.Version, "INFO queries=", "INFO cache_hits=1", "INFO cache_entries=1",
		"INFO shards=1", "INFO shard0_sessions=", "INFO shard0_flash_reads="} {
		if !strings.Contains(joined, want) {
			t.Fatalf("STATS missing %q:\n%s", want, joined)
		}
	}

	if got := c.roundtrip(t, "BOGUS x"); !strings.HasPrefix(got[0], "ERR unknown command") {
		t.Fatalf("BOGUS: %v", got)
	}
	// Errors keep the connection usable.
	if got := c.roundtrip(t, "QUERY SELECT nope FROM nowhere"); !strings.HasPrefix(got[0], "ERR ") {
		t.Fatalf("bad SQL: %v", got)
	}
	if got := c.roundtrip(t, "PING"); !strings.HasPrefix(got[len(got)-1], "OK") {
		t.Fatalf("PING after error: %v", got)
	}
}

// TestExecInvalidatesAcrossClients: one client's INSERT must invalidate
// the answer every other client sees.
func TestExecInvalidatesAcrossClients(t *testing.T) {
	_, addr := startServer(t)
	a, b := dial(t, addr), dial(t, addr)

	q := `QUERY SELECT COUNT(*) FROM Customers WHERE region = 'north'`
	first := a.roundtrip(t, q)
	countLine := func(lines []string) string {
		for _, l := range lines {
			if strings.HasPrefix(l, "ROW") {
				return strings.TrimSpace(strings.TrimPrefix(l, "ROW"))
			}
		}
		return ""
	}
	before := countLine(first)

	ins := b.roundtrip(t, `EXEC INSERT INTO Customers (company, region) VALUES ('corp-new', 'north')`)
	if ins[len(ins)-1] != "OK" {
		t.Fatalf("EXEC: %v", ins)
	}

	second := a.roundtrip(t, q)
	if last := second[len(second)-1]; strings.Contains(last, "cache=hit") {
		t.Fatalf("post-insert query served from stale cache: %q", last)
	}
	after := countLine(second)
	if before == after {
		t.Fatalf("count unchanged after insert: %s", after)
	}
}

// TestManyConcurrentClients: N clients hammer the same and different
// queries; every response is well-formed and the engine leaks nothing.
func TestManyConcurrentClients(t *testing.T) {
	s, addr := startServer(t)
	const clients = 8
	var wg sync.WaitGroup
	queries := []string{
		testQ,
		`QUERY SELECT id, region FROM Customers WHERE region = 'south'`,
		`QUERY SELECT COUNT(*) FROM Orders, Customers WHERE Orders.customer_id = Customers.id AND Orders.amount < 50.0 AND Customers.region = 'east'`,
	}
	for g := 0; g < clients; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := dial(t, addr)
			for k := 0; k < 6; k++ {
				lines := c.roundtrip(t, queries[(g+k)%len(queries)])
				if last := lines[len(lines)-1]; !strings.HasPrefix(last, "OK rows=") {
					t.Errorf("client %d: %q", g, last)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := s.db.Internal().RAM.InUse(); got != 0 {
		t.Fatalf("secure RAM still in use after drain: %d", got)
	}
	cs := s.db.CacheStats()
	if cs.Hits+cs.SharedHits == 0 {
		t.Fatal("concurrent identical queries produced no cache sharing at all")
	}
}

// TestGracefulShutdownDrains: Shutdown with a generous deadline lets an
// in-flight command finish and closes idle clients.
func TestGracefulShutdownDrains(t *testing.T) {
	db := testDB(t)
	s := New(db, t.Logf)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	idle := dial(t, ln.Addr().String())
	busy := dial(t, ln.Addr().String())
	if got := busy.roundtrip(t, "PING"); !strings.HasPrefix(got[0], "OK") {
		t.Fatal("warmup failed")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve after shutdown: %v", err)
	}
	// The idle connection was closed by the drain.
	idle.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if idle.in.Scan() {
		t.Fatal("idle connection still delivering data after shutdown")
	}
	// New connections are refused.
	if conn, err := net.Dial("tcp", ln.Addr().String()); err == nil {
		conn.Close()
		t.Fatal("listener still accepting after shutdown")
	}
}

func TestHTTPFacade(t *testing.T) {
	s, _ := startServer(t)
	ts := httptest.NewServer(s.HTTPHandler())
	defer ts.Close()

	get := func(path string) string {
		t.Helper()
		res, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		body, err := io.ReadAll(res.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	q := "/query?q=" + strings.ReplaceAll("SELECT id, region FROM Customers WHERE region = 'north'", " ", "+")
	body := get(q)
	if !strings.Contains(body, `"columns"`) || !strings.Contains(body, `"cache":"miss"`) {
		t.Fatalf("query body: %s", body)
	}
	if body = get(q); !strings.Contains(body, `"cache":"hit"`) {
		t.Fatalf("second query body: %s", body)
	}
	if body = get("/stats"); !strings.Contains(body, `"cache_hits":1`) {
		t.Fatalf("stats body: %s", body)
	}
	if body = get("/explain?q=SELECT+id+FROM+Customers+WHERE+region+=+'north'"); !strings.Contains(body, `"plan"`) {
		t.Fatalf("explain body: %s", body)
	}
}

// obsDB builds the test database with telemetry instruments armed: a
// 1ns slow threshold (every statement logs) and no result cache, so
// every request does real engine work.
func obsDB(t testing.TB, opts ghostdb.Options) *ghostdb.DB {
	t.Helper()
	opts.FlashBlocks = 4096
	opts.SlowQueryThreshold = time.Nanosecond
	db, err := ghostdb.Create([]string{
		`CREATE TABLE Orders (id int, customer_id int REFERENCES Customers HIDDEN,
		   quarter char(7), amount float HIDDEN)`,
		`CREATE TABLE Customers (id int, company char(30) HIDDEN, region char(20))`,
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	ld := db.Loader()
	regions := []string{"north", "south", "east", "west"}
	for i := 0; i < 30; i++ {
		if err := ld.Append("Customers", ghostdb.R{"company": fmt.Sprintf("corp-%02d", i), "region": regions[i%4]}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ {
		if err := ld.Append("Orders", ghostdb.R{"customer_id": i % 30, "quarter": fmt.Sprintf("2006-Q%d", i%4+1), "amount": float64(i % 250)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ld.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestTraceAndSlowlogCoverDML: UPDATE and DELETE through /trace carry
// the write path's span tree, and the slow log tags their entries with
// the statement kind — the same observability SELECTs get.
func TestTraceAndSlowlogCoverDML(t *testing.T) {
	s := New(obsDB(t, ghostdb.Options{MaxConcurrentQueries: 4}), t.Logf)
	s.SetTelemetry(true)
	ts := httptest.NewServer(s.HTTPHandler())
	defer ts.Close()

	get := func(path, q string) (int, string) {
		t.Helper()
		res, err := ts.Client().Get(ts.URL + path + "?q=" + strings.ReplaceAll(q, " ", "+"))
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		body, err := io.ReadAll(res.Body)
		if err != nil {
			t.Fatal(err)
		}
		return res.StatusCode, string(body)
	}

	code, body := get("/trace", `UPDATE Orders SET amount = 999.0 WHERE Orders.quarter = '2006-Q1'`)
	if code != 200 {
		t.Fatalf("trace UPDATE: status %d, body %s", code, body)
	}
	for _, want := range []string{`"admission"`, `"exec"`, `"DML"`, `"queue_wait_us"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("trace UPDATE body missing %s:\n%s", want, body)
		}
	}
	if code, body = get("/trace", `DELETE FROM Orders WHERE Orders.id >= 1000000`); code != 200 {
		t.Fatalf("trace DELETE: status %d, body %s", code, body)
	}
	if !strings.Contains(body, `"DML"`) {
		t.Fatalf("trace DELETE body missing DML span:\n%s", body)
	}

	code, body = get("/slowlog", "")
	if code != 200 {
		t.Fatalf("slowlog: status %d", code)
	}
	for _, want := range []string{`"kind":"UPDATE"`, `"kind":"DELETE"`, `"queue_wait_us"`, `"grant_buffers"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("slowlog missing %s:\n%s", want, body)
		}
	}
}

// TestHTTPOverloadSheds429: with a 1ns queue-wait bound and one
// admission slot, concurrent clients force the shedder to reject
// statements; the HTTP facade must answer those with 429 (not 400),
// keep serving afterwards, and surface the sheds in /slo and /metrics.
func TestHTTPOverloadSheds429(t *testing.T) {
	s := New(obsDB(t, ghostdb.Options{
		MaxConcurrentQueries: 1,
		MaxQueueWait:         time.Nanosecond,
		PaceSimulation:       1,
	}), t.Logf)
	s.SetTelemetry(true)
	ts := httptest.NewServer(s.HTTPHandler())
	defer ts.Close()

	q := ts.URL + "/query?q=" + strings.ReplaceAll(
		"SELECT Orders.id FROM Orders, Customers WHERE Orders.customer_id = Customers.id AND Customers.company < 'corp-20'", " ", "+")
	var shed, served atomic.Int64
	for round := 0; round < 10 && shed.Load() == 0; round++ {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := ts.Client().Get(q)
				if err != nil {
					t.Errorf("GET: %v", err)
					return
				}
				defer res.Body.Close()
				body, _ := io.ReadAll(res.Body)
				switch res.StatusCode {
				case 200:
					served.Add(1)
				case 429:
					if !strings.Contains(string(body), "overloaded") {
						t.Errorf("429 body: %s", body)
					}
					shed.Add(1)
				default:
					t.Errorf("status %d, body %s", res.StatusCode, body)
				}
			}()
		}
		wg.Wait()
	}
	if shed.Load() == 0 {
		t.Fatal("8 concurrent clients x 10 rounds against one paced slot never shed")
	}
	if served.Load() == 0 {
		t.Fatal("overload shed everything; admitted traffic expected too")
	}

	// The server still serves, and the sheds are visible downstream.
	res, err := ts.Client().Get(ts.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(body), `"shed_total"`) {
		t.Fatalf("/slo body missing shed_total: %s", body)
	}
	var slo ghostdb.SLOSnapshot
	if err := json.Unmarshal(body, &slo); err != nil {
		t.Fatalf("/slo decode: %v", err)
	}
	if slo.ShedTotal != uint64(shed.Load()) {
		t.Fatalf("/slo shed_total = %d, clients saw %d rejections", slo.ShedTotal, shed.Load())
	}
	res, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(body), "ghostdb_shed_total") {
		t.Fatal("/metrics missing ghostdb_shed_total")
	}
}
