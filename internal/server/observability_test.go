package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ghostdb"
)

// slowTestDB is testDB with the slow-query log catching everything.
func slowTestDB(t testing.TB) *ghostdb.DB {
	t.Helper()
	db, err := ghostdb.Create([]string{
		`CREATE TABLE Orders (id int, customer_id int REFERENCES Customers HIDDEN,
		   quarter char(7), amount float HIDDEN)`,
		`CREATE TABLE Customers (id int, company char(30) HIDDEN, region char(20))`,
	}, ghostdb.Options{
		FlashBlocks:          4096,
		MaxConcurrentQueries: 8,
		ResultCacheBytes:     1 << 20,
		SlowQueryThreshold:   time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ld := db.Loader()
	for i := 0; i < 20; i++ {
		if err := ld.Append("Customers", ghostdb.R{"company": fmt.Sprintf("corp-%02d", i), "region": "north"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if err := ld.Append("Orders", ghostdb.R{"customer_id": i % 20, "quarter": "2006-Q1", "amount": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ld.Commit(); err != nil {
		t.Fatal(err)
	}
	return db
}

func httpGet(t *testing.T, ts *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	res, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, string(body), res.Header
}

func TestHTTPObservabilityEndpoints(t *testing.T) {
	s := New(slowTestDB(t), t.Logf)
	ts := httptest.NewServer(s.HTTPHandler())
	defer ts.Close()

	// Healthy until shutdown begins.
	code, body, hdr := httpGet(t, ts, "/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("/healthz = %d %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/healthz Content-Type = %q", ct)
	}

	// A traced query returns the span tree alongside its stats.
	q := strings.ReplaceAll("SELECT Orders.id FROM Orders, Customers WHERE Orders.customer_id = Customers.id AND Orders.amount >= 50.0", " ", "+")
	code, body, _ = httpGet(t, ts, "/trace?q="+q)
	if code != http.StatusOK {
		t.Fatalf("/trace = %d %s", code, body)
	}
	var traced struct {
		Trace ghostdb.TraceSpan `json:"trace"`
		Stats struct {
			SimUs int64 `json:"sim_us"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(body), &traced); err != nil {
		t.Fatalf("/trace body does not parse: %v\n%s", err, body)
	}
	execSp, ok := traced.Trace.Find("exec")
	if !ok {
		t.Fatalf("/trace has no exec span: %s", body)
	}
	var sum int64
	for _, c := range execSp.Children {
		sum += c.SimUs
	}
	if traced.Stats.SimUs <= 0 || sum != execSp.SimUs {
		t.Errorf("exec children sum %dµs, span %dµs, stats %dµs", sum, execSp.SimUs, traced.Stats.SimUs)
	}

	// The slow log caught the query (threshold 1ns).
	code, body, _ = httpGet(t, ts, "/slowlog")
	if code != http.StatusOK || !strings.Contains(body, `"enabled":true`) {
		t.Fatalf("/slowlog = %d %s", code, body)
	}
	var slow struct {
		Entries []ghostdb.SlowQuery `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &slow); err != nil {
		t.Fatal(err)
	}
	if len(slow.Entries) == 0 {
		t.Fatalf("/slowlog has no entries: %s", body)
	}
	if !strings.Contains(slow.Entries[0].Query, "select") {
		t.Errorf("slow entry query = %q", slow.Entries[0].Query)
	}

	// /metrics speaks Prometheus text format and includes the engine,
	// scheduler and server families.
	code, body, hdr = httpGet(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, fam := range []string{
		"ghostdb_queries_total",
		"ghostdb_sched_queue_wait_seconds_bucket",
		"ghostdb_slot_occupancy_seconds_bucket",
		"ghostdb_server_connections",
		"ghostdb_server_http_responses_total",
		"ghostdb_slowlog_entries_total",
	} {
		if !strings.Contains(body, fam) {
			t.Errorf("/metrics is missing %s", fam)
		}
	}

	// Telemetry off: the trio disappears, the core API stays.
	s.SetTelemetry(false)
	if code, _, _ = httpGet(t, ts, "/metrics"); code != http.StatusNotFound {
		t.Errorf("/metrics with telemetry off = %d, want 404", code)
	}
	if code, _, _ = httpGet(t, ts, "/slowlog"); code != http.StatusNotFound {
		t.Errorf("/slowlog with telemetry off = %d, want 404", code)
	}
	if code, _, _ = httpGet(t, ts, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz with telemetry off = %d, want 200", code)
	}
}

func TestHealthzReportsDraining(t *testing.T) {
	s := New(testDB(t), t.Logf)
	ts := httptest.NewServer(s.HTTPHandler())
	defer ts.Close()

	if code, _, _ := httpGet(t, ts, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz before shutdown = %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	code, body, _ := httpGet(t, ts, "/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/healthz during drain = %d %s, want 503 draining", code, body)
	}
	if !s.Draining() {
		t.Error("Draining() = false after Shutdown")
	}
}

func TestHTTPErrorsAreJSON(t *testing.T) {
	s := New(testDB(t), t.Logf)
	ts := httptest.NewServer(s.HTTPHandler())
	defer ts.Close()

	for _, path := range []string{"/query", "/explain?q=SELEC+nonsense", "/trace"} {
		code, body, hdr := httpGet(t, ts, path)
		if code != http.StatusBadRequest {
			t.Errorf("%s = %d, want 400", path, code)
		}
		if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("%s Content-Type = %q", path, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
			t.Errorf("%s body is not a JSON error: %s", path, body)
		}
	}
}
