package bus

import "testing"

func TestCountersAndAudit(t *testing.T) {
	c := NewChannel(1.5)
	if err := c.Transfer(Up, "query", 120, "SELECT ..."); err != nil {
		t.Fatal(err)
	}
	if err := c.Transfer(Down, "vis-ids", 4000, ""); err != nil {
		t.Fatal(err)
	}
	down, up := c.Counters()
	if down != 4000 || up != 120 {
		t.Fatalf("counters = %d/%d", down, up)
	}
	ups := c.UplinkRecords()
	if len(ups) != 1 || ups[0].Kind != "query" || ups[0].Payload != "SELECT ..." {
		t.Fatalf("uplink audit = %+v", ups)
	}
	if len(c.Records()) != 2 {
		t.Fatalf("records = %d", len(c.Records()))
	}
	c.ResetCounters()
	down, up = c.Counters()
	if down != 0 || up != 0 || len(c.Records()) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestDownPayloadNotRetained(t *testing.T) {
	c := NewChannel(0) // 0 -> default throughput
	if c.ThroughputMBps() != DefaultThroughputMBps {
		t.Fatalf("default throughput = %v", c.ThroughputMBps())
	}
	_ = c.Transfer(Down, "vis-values", 10, "should-be-dropped")
	if c.Records()[0].Payload != "" {
		t.Fatal("down payload retained")
	}
}

func TestNegativeTransferRejected(t *testing.T) {
	c := NewChannel(1)
	if err := c.Transfer(Down, "x", -1, ""); err == nil {
		t.Fatal("negative transfer accepted")
	}
}
