package bus

import "testing"

func TestCountersAndAudit(t *testing.T) {
	c := NewChannel(1.5)
	if err := c.Transfer(Up, "query", 120, "SELECT ..."); err != nil {
		t.Fatal(err)
	}
	if err := c.Transfer(Down, "vis-ids", 4000, ""); err != nil {
		t.Fatal(err)
	}
	down, up := c.Counters()
	if down != 4000 || up != 120 {
		t.Fatalf("counters = %d/%d", down, up)
	}
	ups := c.UplinkRecords()
	if len(ups) != 1 || ups[0].Kind != "query" || ups[0].Payload != "SELECT ..." {
		t.Fatalf("uplink audit = %+v", ups)
	}
	if len(c.Records()) != 2 {
		t.Fatalf("records = %d", len(c.Records()))
	}
	c.ResetCounters()
	down, up = c.Counters()
	if down != 0 || up != 0 || len(c.Records()) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestDownPayloadNotRetained(t *testing.T) {
	c := NewChannel(0) // 0 -> default throughput
	if c.ThroughputMBps() != DefaultThroughputMBps {
		t.Fatalf("default throughput = %v", c.ThroughputMBps())
	}
	_ = c.Transfer(Down, "vis-values", 10, "should-be-dropped")
	if c.Records()[0].Payload != "" {
		t.Fatal("down payload retained")
	}
}

func TestNegativeTransferRejected(t *testing.T) {
	c := NewChannel(1)
	if err := c.Transfer(Down, "x", -1, ""); err == nil {
		t.Fatal("negative transfer accepted")
	}
	if err := c.TransferBatch(Down, []Req{{Kind: "x", Bytes: -1}}); err == nil {
		t.Fatal("negative batched transfer accepted")
	}
}

func TestTransferBatchCoalesces(t *testing.T) {
	c := NewChannel(1.5)
	err := c.TransferBatch(Down, []Req{
		{Kind: "vis:A", Bytes: 1000},
		{Kind: "vis:B", Bytes: 500},
		{Kind: "vis-hdr:C", Bytes: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	down, up := c.Counters()
	if down != 1516 || up != 0 {
		t.Fatalf("counters = %d/%d", down, up)
	}
	recs := c.Records()
	if len(recs) != 1 {
		t.Fatalf("batch should produce one audit record, got %d", len(recs))
	}
	if recs[0].Kind != "vis:A+vis:B+vis-hdr:C" || recs[0].Bytes != 1516 {
		t.Fatalf("batch record = %+v", recs[0])
	}
	if c.Coalesced() != 2 {
		t.Fatalf("coalesced = %d", c.Coalesced())
	}
	if err := c.TransferBatch(Up, nil); err != nil || c.Coalesced() != 2 {
		t.Fatal("empty batch must be a free no-op")
	}
}

func TestTransferBatchUpKeepsPayloads(t *testing.T) {
	c := NewChannel(1.5)
	_ = c.TransferBatch(Up, []Req{
		{Kind: "query", Bytes: 8, Payload: "SELECT 1"},
		{Kind: "query", Bytes: 8, Payload: "SELECT 2"},
	})
	ups := c.UplinkRecords()
	if len(ups) != 1 || ups[0].Payload != "SELECT 1SELECT 2" || ups[0].Bytes != 16 {
		t.Fatalf("uplink batch audit = %+v", ups)
	}
}

func TestAuditRing(t *testing.T) {
	c := NewChannel(1.5)
	c.SetAuditLimit(3)
	for i := 0; i < 5; i++ {
		_ = c.Transfer(Down, string(rune('a'+i)), i, "")
	}
	recs := c.Records()
	if len(recs) != 3 {
		t.Fatalf("ring should hold 3 records, got %d", len(recs))
	}
	// Oldest-first unrolling: records a and b were dropped.
	if recs[0].Kind != "c" || recs[1].Kind != "d" || recs[2].Kind != "e" {
		t.Fatalf("ring order = %v %v %v", recs[0].Kind, recs[1].Kind, recs[2].Kind)
	}
	if c.AuditDropped() != 2 {
		t.Fatalf("dropped = %d", c.AuditDropped())
	}
	down, _ := c.Counters()
	if down != 0+1+2+3+4 {
		t.Fatalf("byte counters must not be affected by the ring, got %d", down)
	}
	c.ResetCounters()
	if c.AuditDropped() != 0 || len(c.Records()) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestAuditOptOut(t *testing.T) {
	c := NewChannel(1.5)
	c.SetAuditLimit(-1)
	_ = c.Transfer(Up, "query", 10, "SELECT 1")
	_ = c.TransferBatch(Down, []Req{{Kind: "vis:A", Bytes: 100}})
	if len(c.Records()) != 0 {
		t.Fatal("opt-out must record nothing")
	}
	down, up := c.Counters()
	if down != 100 || up != 10 {
		t.Fatalf("counters must keep working, got %d/%d", down, up)
	}
	c.SetAuditLimit(0)
	_ = c.Transfer(Up, "query", 10, "SELECT 1")
	if len(c.Records()) != 1 {
		t.Fatal("limit 0 must restore the full trail")
	}
}
