// Package bus models the USB link between the Untrusted computer and the
// Secure USB key. It counts every byte in each direction so the cost model
// can charge communication time (Figure 14 of the paper varies the link
// throughput from 0.3 to 10 MBps), and it records an audit trail of all
// Secure→Untrusted traffic: GhostDB's security argument is that the only
// information ever leaving the secure token is the query text itself, and
// the auditor lets tests prove that invariant for every execution strategy.
package bus

import (
	"fmt"
	"sync"
)

// Direction of a transfer across the link.
type Direction int

const (
	// Down is Untrusted -> Secure (visible data entering the token).
	Down Direction = iota
	// Up is Secure -> Untrusted (must only ever carry query text).
	Up
)

func (d Direction) String() string {
	if d == Down {
		return "down"
	}
	return "up"
}

// DefaultThroughputMBps is USB 2.0 full speed (12 Mb/s ≈ 1.5 MB/s), the
// platform assumed in §2.2.
const DefaultThroughputMBps = 1.5

// Record is one audited transfer.
type Record struct {
	Dir     Direction
	Kind    string // e.g. "query", "vis-ids", "vis-values"
	Bytes   int
	Payload string // kept only for Up records (they must be tiny)
}

// Req is one message in a coalesced TransferBatch.
type Req struct {
	Kind    string
	Bytes   int
	Payload string // retained for Up messages only, as in Transfer
}

// Channel is the simulated link. Counter and throughput accesses are
// mutex-protected so sessions and control knobs may touch the channel
// concurrently; transfers themselves are still serialized by the
// scheduler's secure-token lock (the link is a serial resource).
type Channel struct {
	mu             sync.Mutex
	throughputMBps float64
	downBytes      uint64
	upBytes        uint64
	coalesced      uint64
	records        []Record
	auditPayloads  bool
	// auditCap > 0 bounds the audit trail to a ring of that many records
	// (ringStart marks the oldest slot once the ring has wrapped);
	// 0 keeps the full unbounded trail, the historical behavior tests
	// rely on for byte-parity proofs.
	auditCap  int
	ringStart int
	dropped   uint64
}

// NewChannel creates a link with the given throughput in MB/s.
func NewChannel(throughputMBps float64) *Channel {
	if throughputMBps <= 0 {
		throughputMBps = DefaultThroughputMBps
	}
	return &Channel{throughputMBps: throughputMBps, auditPayloads: true}
}

// SetAuditLimit bounds the audit trail. n > 0 keeps only the most
// recent n records in a ring buffer (older records are dropped and
// counted); n < 0 disables payload auditing entirely (byte counters
// keep working — benches and long-lived servers use this so records
// cannot grow without limit); n == 0 restores the full unbounded trail
// that parity tests require. Changing the limit resets the trail.
func (c *Channel) SetAuditLimit(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.records = nil
	c.ringStart = 0
	switch {
	case n < 0:
		c.auditPayloads, c.auditCap = false, 0
	case n == 0:
		c.auditPayloads, c.auditCap = true, 0
	default:
		c.auditPayloads, c.auditCap = true, n
	}
}

// AuditDropped reports how many records the ring bound has discarded.
func (c *Channel) AuditDropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// recordLocked appends one audit record, honoring the ring bound.
func (c *Channel) recordLocked(r Record) {
	if !c.auditPayloads {
		return
	}
	if c.auditCap > 0 && len(c.records) >= c.auditCap {
		c.records[c.ringStart] = r
		c.ringStart = (c.ringStart + 1) % c.auditCap
		c.dropped++
		return
	}
	c.records = append(c.records, r)
}

// SetThroughput changes the modeled link speed (MB/s).
func (c *Channel) SetThroughput(mbps float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if mbps > 0 {
		c.throughputMBps = mbps
	}
}

// ThroughputMBps returns the modeled link speed.
func (c *Channel) ThroughputMBps() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.throughputMBps
}

// Transfer accounts for n bytes moving in direction dir. kind labels the
// message for the audit trail. For Up transfers, payload should be the
// full content (queries are small); it is retained for auditing.
func (c *Channel) Transfer(dir Direction, kind string, n int, payload string) error {
	if n < 0 {
		return fmt.Errorf("bus: negative transfer %d", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch dir {
	case Down:
		c.downBytes += uint64(n)
		payload = "" // visible data content is not interesting to audit
	case Up:
		c.upBytes += uint64(n)
	default:
		return fmt.Errorf("bus: unknown direction %d", dir)
	}
	c.recordLocked(Record{Dir: dir, Kind: kind, Bytes: n, Payload: payload})
	return nil
}

// TransferBatch coalesces several same-direction messages into one
// accounted round-trip: the byte counters advance by the sum, a single
// audit record is written (kinds joined, payloads of Up messages
// concatenated so parity proofs still see every uplink byte), and the
// coalesced counter grows by the number of round-trips saved. The cost
// model is purely per-byte, so batching never changes simulated time —
// it exists to cut per-message bookkeeping and to model the real win of
// issuing one bulk USB request instead of many small ones.
func (c *Channel) TransferBatch(dir Direction, reqs []Req) error {
	if len(reqs) == 0 {
		return nil
	}
	total := 0
	for _, r := range reqs {
		if r.Bytes < 0 {
			return fmt.Errorf("bus: negative transfer %d", r.Bytes)
		}
		total += r.Bytes
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var payload string
	switch dir {
	case Down:
		c.downBytes += uint64(total)
	case Up:
		c.upBytes += uint64(total)
		for _, r := range reqs {
			payload += r.Payload
		}
	default:
		return fmt.Errorf("bus: unknown direction %d", dir)
	}
	c.coalesced += uint64(len(reqs) - 1)
	kind := reqs[0].Kind
	for _, r := range reqs[1:] {
		kind += "+" + r.Kind
	}
	c.recordLocked(Record{Dir: dir, Kind: kind, Bytes: total, Payload: payload})
	return nil
}

// Coalesced reports the cumulative number of bus round-trips saved by
// TransferBatch (messages merged beyond the first of each batch).
func (c *Channel) Coalesced() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coalesced
}

// Counters reports cumulative bytes in each direction.
func (c *Channel) Counters() (down, up uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.downBytes, c.upBytes
}

// ResetCounters zeroes the byte counters and the audit trail.
func (c *Channel) ResetCounters() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.downBytes, c.upBytes = 0, 0
	c.records = c.records[:0]
	c.ringStart = 0
	c.dropped = 0
}

// Records returns the audit trail (a copy, oldest first — ring-bounded
// trails are unrolled).
func (c *Channel) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Record, 0, len(c.records))
	out = append(out, c.records[c.ringStart:]...)
	out = append(out, c.records[:c.ringStart]...)
	return out
}

// UplinkRecords returns only Secure->Untrusted transfers. A leak-free
// execution has exactly the query-text records here and nothing else.
func (c *Channel) UplinkRecords() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Record
	for i := range c.records {
		r := c.records[(c.ringStart+i)%len(c.records)]
		if r.Dir == Up {
			out = append(out, r)
		}
	}
	return out
}
