// Package bus models the USB link between the Untrusted computer and the
// Secure USB key. It counts every byte in each direction so the cost model
// can charge communication time (Figure 14 of the paper varies the link
// throughput from 0.3 to 10 MBps), and it records an audit trail of all
// Secure→Untrusted traffic: GhostDB's security argument is that the only
// information ever leaving the secure token is the query text itself, and
// the auditor lets tests prove that invariant for every execution strategy.
package bus

import (
	"fmt"
	"sync"
)

// Direction of a transfer across the link.
type Direction int

const (
	// Down is Untrusted -> Secure (visible data entering the token).
	Down Direction = iota
	// Up is Secure -> Untrusted (must only ever carry query text).
	Up
)

func (d Direction) String() string {
	if d == Down {
		return "down"
	}
	return "up"
}

// DefaultThroughputMBps is USB 2.0 full speed (12 Mb/s ≈ 1.5 MB/s), the
// platform assumed in §2.2.
const DefaultThroughputMBps = 1.5

// Record is one audited transfer.
type Record struct {
	Dir     Direction
	Kind    string // e.g. "query", "vis-ids", "vis-values"
	Bytes   int
	Payload string // kept only for Up records (they must be tiny)
}

// Channel is the simulated link. Counter and throughput accesses are
// mutex-protected so sessions and control knobs may touch the channel
// concurrently; transfers themselves are still serialized by the
// scheduler's secure-token lock (the link is a serial resource).
type Channel struct {
	mu             sync.Mutex
	throughputMBps float64
	downBytes      uint64
	upBytes        uint64
	records        []Record
	auditPayloads  bool
}

// NewChannel creates a link with the given throughput in MB/s.
func NewChannel(throughputMBps float64) *Channel {
	if throughputMBps <= 0 {
		throughputMBps = DefaultThroughputMBps
	}
	return &Channel{throughputMBps: throughputMBps, auditPayloads: true}
}

// SetThroughput changes the modeled link speed (MB/s).
func (c *Channel) SetThroughput(mbps float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if mbps > 0 {
		c.throughputMBps = mbps
	}
}

// ThroughputMBps returns the modeled link speed.
func (c *Channel) ThroughputMBps() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.throughputMBps
}

// Transfer accounts for n bytes moving in direction dir. kind labels the
// message for the audit trail. For Up transfers, payload should be the
// full content (queries are small); it is retained for auditing.
func (c *Channel) Transfer(dir Direction, kind string, n int, payload string) error {
	if n < 0 {
		return fmt.Errorf("bus: negative transfer %d", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch dir {
	case Down:
		c.downBytes += uint64(n)
		payload = "" // visible data content is not interesting to audit
	case Up:
		c.upBytes += uint64(n)
	default:
		return fmt.Errorf("bus: unknown direction %d", dir)
	}
	if c.auditPayloads {
		c.records = append(c.records, Record{Dir: dir, Kind: kind, Bytes: n, Payload: payload})
	}
	return nil
}

// Counters reports cumulative bytes in each direction.
func (c *Channel) Counters() (down, up uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.downBytes, c.upBytes
}

// ResetCounters zeroes the byte counters and the audit trail.
func (c *Channel) ResetCounters() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.downBytes, c.upBytes = 0, 0
	c.records = c.records[:0]
}

// Records returns the audit trail (a copy).
func (c *Channel) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Record, len(c.records))
	copy(out, c.records)
	return out
}

// UplinkRecords returns only Secure->Untrusted transfers. A leak-free
// execution has exactly the query-text records here and nothing else.
func (c *Channel) UplinkRecords() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Record
	for _, r := range c.records {
		if r.Dir == Up {
			out = append(out, r)
		}
	}
	return out
}
