package metrics

import (
	"sync"
	"testing"
	"time"
)

// A span that performs no I/O at all (a zero-duration session in the
// simulated cost model) must still be recorded: zero sample, zero
// times, name present, and a stable breakdown entry.
func TestZeroActivitySpan(t *testing.T) {
	_, _, col := testRig(t)
	if err := col.Span("idle", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	s := col.SampleOf("idle")
	if s != (Sample{}) {
		t.Fatalf("idle sample = %+v, want zero", s)
	}
	if got := col.TimeOf("idle"); got != 0 {
		t.Fatalf("idle IO time = %v", got)
	}
	if got := col.CommTimeOf("idle"); got != 0 {
		t.Fatalf("idle comm time = %v", got)
	}
	names := col.Names()
	if len(names) != 1 || names[0] != "idle" {
		t.Fatalf("names = %v", names)
	}
	if bd := col.Breakdown(); bd["idle"] != 0 {
		t.Fatalf("breakdown = %v", bd)
	}
	if out := col.FormatBreakdown(); !containsStr(out, "idle") {
		t.Fatalf("breakdown output missing idle span:\n%s", out)
	}
}

// Nested zero-activity spans must not leak phantom costs into their
// parents: the parent's own sample stays zero too.
func TestZeroActivityNestedSpans(t *testing.T) {
	_, _, col := testRig(t)
	err := col.Span("outer", func() error {
		return col.Span("inner", func() error { return nil })
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := col.SampleOf("outer"); s != (Sample{}) {
		t.Fatalf("outer = %+v, want zero", s)
	}
	if s := col.SampleOf("inner"); s != (Sample{}) {
		t.Fatalf("inner = %+v, want zero", s)
	}
}

// An unknown span name reads back as zero rather than panicking.
func TestUnknownSpanIsZero(t *testing.T) {
	_, _, col := testRig(t)
	if col.SampleOf("never-opened") != (Sample{}) || col.TimeOf("never-opened") != 0 {
		t.Fatal("unknown span should read as zero")
	}
}

// CommTime must treat non-positive throughput as free rather than
// dividing by zero or producing negative durations.
func TestCommTimeDegenerateThroughput(t *testing.T) {
	m := DefaultModel()
	s := Sample{BusDown: 1 << 20, BusUp: 1 << 20}
	for _, mbps := range []float64{0, -1, -0.001} {
		if got := m.CommTime(s, mbps); got != 0 {
			t.Fatalf("CommTime at %v MB/s = %v, want 0", mbps, got)
		}
	}
}

// Sample arithmetic round-trips: (a+b)-b == a, including at zero.
func TestSampleAddSubRoundTrip(t *testing.T) {
	a := Sample{BusDown: 7, BusUp: 3}
	a.Flash.PageReads = 11
	b := Sample{BusDown: 2, BusUp: 1}
	b.Flash.PageWrites = 5
	if got := a.Add(b).Sub(b); got != a {
		t.Fatalf("(a+b)-b = %+v, want %+v", got, a)
	}
	var zero Sample
	if zero.Add(zero) != zero || zero.Sub(zero) != zero {
		t.Fatal("zero sample arithmetic must stay zero")
	}
}

// Once collection has quiesced, every snapshot accessor is read-only
// and may be hit from many goroutines at once; this test exists to run
// under -race.
func TestConcurrentSnapshots(t *testing.T) {
	dev, _, col := testRig(t)
	pg, _ := dev.Alloc()
	buf := make([]byte, 2048)
	for _, name := range []string{"Merge", "SJoin", "Project"} {
		if err := col.Span(name, func() error { return dev.Write(pg, buf) }); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if col.SampleOf("Merge").Flash.PageWrites != 1 {
					t.Error("Merge sample changed under read-only access")
					return
				}
				if n := col.Names(); len(n) != 3 {
					t.Errorf("names = %v", n)
					return
				}
				if col.TimeOf("SJoin") != 200*time.Microsecond {
					t.Error("SJoin time changed under read-only access")
					return
				}
				_ = col.Breakdown()
				_ = col.FormatBreakdown()
				_ = col.CommTimeOf("Project")
				_ = col.Model()
				_ = col.ThroughputMBps()
			}
		}()
	}
	wg.Wait()
}
