package metrics

import (
	"testing"
	"time"

	"ghostdb/internal/bus"
	"ghostdb/internal/flash"
)

func testRig(t *testing.T) (*flash.Device, *bus.Channel, *Collector) {
	t.Helper()
	dev := flash.MustDevice(flash.Params{PageSize: 2048, PagesPerBlock: 4, Blocks: 16, ReserveBlocks: 2})
	ch := bus.NewChannel(1.0)
	return dev, ch, NewCollector(dev, ch, DefaultModel())
}

func TestIOTimeMath(t *testing.T) {
	m := DefaultModel()
	s := Sample{Flash: flash.Counters{PageReads: 4, PageWrites: 2, BytesToRAM: 1000}}
	want := 4*25*time.Microsecond + 2*200*time.Microsecond + 1000*50*time.Nanosecond
	if got := m.IOTime(s); got != want {
		t.Fatalf("IOTime = %v, want %v", got, want)
	}
}

func TestCommTimeMath(t *testing.T) {
	m := DefaultModel()
	s := Sample{BusDown: 1_000_000, BusUp: 500_000}
	// 1.5MB at 1.5 MB/s = 1s.
	if got := m.CommTime(s, 1.5); got != time.Second {
		t.Fatalf("CommTime = %v, want 1s", got)
	}
	if m.CommTime(s, 0) != 0 {
		t.Fatal("zero throughput should cost nothing")
	}
}

func TestSpanAttribution(t *testing.T) {
	dev, ch, col := testRig(t)
	pg, _ := dev.Alloc()
	buf := make([]byte, 2048)
	err := col.Span("outer", func() error {
		if err := dev.Write(pg, buf); err != nil { // outer's own write
			return err
		}
		return col.Span("inner", func() error {
			return dev.ReadFull(pg, buf) // inner's read
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = ch
	in := col.SampleOf("inner")
	out := col.SampleOf("outer")
	if in.Flash.PageReads != 1 || in.Flash.PageWrites != 0 {
		t.Fatalf("inner = %+v", in.Flash)
	}
	if out.Flash.PageWrites != 1 || out.Flash.PageReads != 0 {
		t.Fatalf("outer = %+v (must exclude inner)", out.Flash)
	}
	if got := col.TimeOf("outer"); got != 200*time.Microsecond {
		t.Fatalf("outer time = %v", got)
	}
}

func TestSpanAccumulatesAcrossCalls(t *testing.T) {
	dev, _, col := testRig(t)
	pg, _ := dev.Alloc()
	buf := make([]byte, 2048)
	for i := 0; i < 3; i++ {
		_ = col.Span("w", func() error { return dev.Write(pg, buf) })
	}
	if col.SampleOf("w").Flash.PageWrites != 3 {
		t.Fatalf("accumulated = %+v", col.SampleOf("w").Flash)
	}
	names := col.Names()
	if len(names) != 1 || names[0] != "w" {
		t.Fatalf("names = %v", names)
	}
}

func TestResetPanicsWithOpenSpans(t *testing.T) {
	_, _, col := testRig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	col.begin("open")
	col.Reset()
}

func TestFormatBreakdown(t *testing.T) {
	dev, _, col := testRig(t)
	pg, _ := dev.Alloc()
	buf := make([]byte, 2048)
	_ = col.Span("Merge", func() error { return dev.Write(pg, buf) })
	_ = col.Span("SJoin", func() error { return dev.ReadFull(pg, buf) })
	out := col.FormatBreakdown()
	for _, want := range []string{"Merge", "SJoin", "writes=1", "reads=1"} {
		if !containsStr(out, want) {
			t.Fatalf("breakdown missing %q:\n%s", want, out)
		}
	}
	bd := col.Breakdown()
	if bd["Merge"] != 200*time.Microsecond {
		t.Fatalf("merge = %v", bd["Merge"])
	}
	if col.CommTimeOf("Merge") != 0 {
		t.Fatal("no comm expected")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
