// Package metrics turns the raw I/O counters of the flash simulator and
// the USB channel into simulated execution time, following the cost model
// of Table 1 in the paper: 25µs to load a page from flash into the data
// register, 200µs to program a page, 50ns per byte transferred between the
// data register and RAM, plus communication time at the configured link
// throughput. It also provides named cost spans so experiments can break a
// query's cost down per operator (Figures 15 and 16).
package metrics

import (
	"fmt"
	"sort"
	"time"

	"ghostdb/internal/bus"
	"ghostdb/internal/flash"
)

// Model holds the cost parameters.
type Model struct {
	ReadPage   time.Duration // flash -> data register latency per page
	WritePage  time.Duration // data register -> flash program time per page
	EraseBlock time.Duration // block erase time (0 in the paper's model)
	PerByte    time.Duration // data register -> RAM per byte
}

// DefaultModel returns the Table 1 parameters.
func DefaultModel() Model {
	return Model{
		ReadPage:  25 * time.Microsecond,
		WritePage: 200 * time.Microsecond,
		PerByte:   50 * time.Nanosecond,
	}
}

// Sample is a combined snapshot of flash and bus activity.
type Sample struct {
	Flash   flash.Counters
	BusDown uint64
	BusUp   uint64
}

// Sub returns s - o component-wise.
func (s Sample) Sub(o Sample) Sample {
	return Sample{
		Flash:   s.Flash.Sub(o.Flash),
		BusDown: s.BusDown - o.BusDown,
		BusUp:   s.BusUp - o.BusUp,
	}
}

// Add returns s + o component-wise.
func (s Sample) Add(o Sample) Sample {
	return Sample{
		Flash:   s.Flash.Add(o.Flash),
		BusDown: s.BusDown + o.BusDown,
		BusUp:   s.BusUp + o.BusUp,
	}
}

// IOTime converts the flash component of a sample to simulated time.
func (m Model) IOTime(s Sample) time.Duration {
	t := time.Duration(s.Flash.PageReads)*m.ReadPage +
		time.Duration(s.Flash.PageWrites)*m.WritePage +
		time.Duration(s.Flash.BlockErases)*m.EraseBlock +
		time.Duration(s.Flash.BytesToRAM)*m.PerByte
	return t
}

// CommTime converts the bus component of a sample to simulated time at the
// given link throughput (MB/s).
func (m Model) CommTime(s Sample, throughputMBps float64) time.Duration {
	if throughputMBps <= 0 {
		return 0
	}
	bytes := float64(s.BusDown + s.BusUp)
	secs := bytes / (throughputMBps * 1e6)
	return time.Duration(secs * float64(time.Second))
}

// Time is IOTime + CommTime.
func (m Model) Time(s Sample, throughputMBps float64) time.Duration {
	return m.IOTime(s) + m.CommTime(s, throughputMBps)
}

// Collector attributes I/O activity to named spans. Spans may nest;
// activity is attributed to the innermost open span, and enclosing spans
// see only their own direct activity (so the per-operator decomposition of
// Figure 15 sums to the total).
//
// A Collector is single-writer: Span/Reset must not be called
// concurrently. Once collection quiesces, the snapshot accessors
// (SampleOf, Names, Breakdown, TimeOf, CommTimeOf, FormatBreakdown) are
// read-only and safe to call from any number of goroutines.
type Collector struct {
	dev   *flash.Device
	ch    *bus.Channel
	model Model
	// mbps is the link speed snapshotted at construction, so a
	// collector's communication timings are computed against one
	// consistent speed even if the knob changes mid-collection.
	mbps float64

	spans map[string]Sample
	order []string
	stack []frame
}

type frame struct {
	name  string
	start Sample
	child Sample
}

// NewCollector creates a collector over the given device and channel.
func NewCollector(dev *flash.Device, ch *bus.Channel, model Model) *Collector {
	return &Collector{dev: dev, ch: ch, model: model, mbps: ch.ThroughputMBps(), spans: make(map[string]Sample)}
}

// Model returns the collector's cost model.
func (c *Collector) Model() Model { return c.model }

// ThroughputMBps returns the link speed snapshotted at construction —
// the single source of truth for this collection's communication
// timings.
func (c *Collector) ThroughputMBps() float64 { return c.mbps }

func (c *Collector) now() Sample {
	s := Sample{Flash: c.dev.Counters()}
	s.BusDown, s.BusUp = c.ch.Counters()
	return s
}

// Reset clears all recorded spans and the underlying counters.
func (c *Collector) Reset() {
	if len(c.stack) != 0 {
		panic("metrics: reset with open spans")
	}
	c.spans = make(map[string]Sample)
	c.order = c.order[:0]
	c.dev.ResetCounters()
	c.ch.ResetCounters()
}

// Span runs f, attributing its direct I/O activity to name.
func (c *Collector) Span(name string, f func() error) error {
	c.begin(name)
	err := f()
	c.end(name)
	return err
}

func (c *Collector) begin(name string) {
	c.stack = append(c.stack, frame{name: name, start: c.now()})
}

func (c *Collector) end(name string) {
	n := len(c.stack)
	if n == 0 || c.stack[n-1].name != name {
		panic(fmt.Sprintf("metrics: unbalanced span %q", name))
	}
	fr := c.stack[n-1]
	c.stack = c.stack[:n-1]
	total := c.now().Sub(fr.start)
	own := total.Sub(fr.child)
	if _, seen := c.spans[name]; !seen {
		c.order = append(c.order, name)
	}
	c.spans[name] = c.spans[name].Add(own)
	if n > 1 {
		c.stack[n-2].child = c.stack[n-2].child.Add(total)
	}
}

// SampleOf returns the accumulated activity of a span.
func (c *Collector) SampleOf(name string) Sample { return c.spans[name] }

// TimeOf returns the simulated I/O time of a span (no communication).
func (c *Collector) TimeOf(name string) time.Duration {
	return c.model.IOTime(c.spans[name])
}

// CommTimeOf returns the simulated communication time of a span, at the
// link speed snapshotted when the collector was created.
func (c *Collector) CommTimeOf(name string) time.Duration {
	return c.model.CommTime(c.spans[name], c.mbps)
}

// SimTimeOf returns a span's full simulated duration — I/O plus
// communication at the snapshotted link speed. Because activity is
// attributed to the innermost open span only, summing SimTimeOf over
// Names() decomposes the session's attributed cost without double
// counting; the trace layer builds its per-operator spans from this.
func (c *Collector) SimTimeOf(name string) time.Duration {
	return c.model.Time(c.spans[name], c.mbps)
}

// Names returns the span names in first-seen order.
func (c *Collector) Names() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// Total returns the sum over all spans plus unattributed activity is NOT
// included; use Device counters for grand totals. Breakdown returns the
// per-span I/O times sorted by name for stable output.
func (c *Collector) Breakdown() map[string]time.Duration {
	out := make(map[string]time.Duration, len(c.spans))
	for n, s := range c.spans {
		out[n] = c.model.IOTime(s)
	}
	return out
}

// FormatBreakdown renders the per-span costs for human consumption.
func (c *Collector) FormatBreakdown() string {
	names := c.Names()
	sort.Strings(names)
	out := ""
	for _, n := range names {
		out += fmt.Sprintf("%-10s %12v  (reads=%d writes=%d bytes=%d)\n",
			n, c.TimeOf(n), c.spans[n].Flash.PageReads, c.spans[n].Flash.PageWrites, c.spans[n].Flash.BytesToRAM)
	}
	return out
}
