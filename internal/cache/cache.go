// Package cache is the untrusted-side result cache: materialized query
// answers keyed on the *normalized query text*, bounded in bytes by an
// LRU policy, invalidated wholesale by a global data-version stamp that
// every committed update bumps, and fronted by a singleflight layer that
// collapses concurrent identical lookups into one computation.
//
// Security invariant (why this cache is leak-free by construction):
// GhostDB's guarantee is that the only information that ever leaves the
// secure perimeter is the query text itself (§1 of the paper). The cache
// key is a normalization of exactly that text, and the cached values are
// query results — data the untrusted side has, by definition, already
// seen once. A cache hit therefore reveals nothing an observer of the
// query stream did not already know; it only *removes* secure-token
// round-trips. In the volume-leakage sense of Poddar et al., hits repeat
// a (query, result-volume) pair the adversary has already observed —
// the cache never creates a new observable pair.
//
// RAM invariant: cache memory is untrusted host RAM. It is *not* charged
// against the secure chip's 64KB budget (ram.Manager) — the whole point
// is to spend plentiful untrusted memory to save the scarce secure
// resources (token RAM, flash I/O and the USB link).
//
// The cache is value-agnostic: it stores opaque values with a caller-
// provided byte size, so it does not depend on the executor's types.
// Cached values are shared between all readers and MUST be treated as
// immutable by every holder.
package cache

import (
	"container/list"
	"context"
	"sync"
)

// Outcome classifies how a Do call was answered.
type Outcome int

const (
	// Miss: this call computed the value itself (it was the singleflight
	// leader, or it fell back to computing after a leader failed).
	Miss Outcome = iota
	// Hit: the value was served from the cache; nothing was computed.
	Hit
	// Shared: the value was computed once by a concurrent identical call
	// and shared with this one (singleflight collapse).
	Shared
)

func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	}
	return "?"
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Entries       int    `json:"entries"`
	Bytes         int64  `json:"bytes"`
	CapacityBytes int64  `json:"capacity_bytes"`
	Version       uint64 `json:"version"`
	Hits          uint64 `json:"hits"`
	SharedHits    uint64 `json:"shared_hits"`
	Misses        uint64 `json:"misses"`
	Stores        uint64 `json:"stores"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
}

type entry struct {
	key     string
	val     any
	size    int64
	version uint64
}

// flight is one in-progress computation that concurrent identical calls
// can attach to.
type flight struct {
	version uint64
	done    chan struct{} // closed when val/err are set
	val     any
	err     error
}

// Cache is a byte-bounded LRU with version invalidation and singleflight
// collapsing. All methods are safe for concurrent use; computations
// passed to Do run outside the cache lock.
type Cache struct {
	mu      sync.Mutex
	cap     int64
	bytes   int64
	ll      *list.List // front = most recently used; values are *entry
	entries map[string]*list.Element
	flights map[string]*flight
	version uint64

	hits, shared, misses, stores, evictions, invalidations uint64
}

// New creates a cache bounded to capBytes of cached values (sizes are
// caller-reported). capBytes <= 0 yields a cache that never stores — Do
// still collapses concurrent identical calls.
func New(capBytes int64) *Cache {
	return &Cache{
		cap:     capBytes,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// Version returns the current data-version stamp.
func (c *Cache) Version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Bump invalidates every cached entry: committed updates call it after
// their mutations are visible. In-progress computations that started
// before the bump are prevented from storing their (possibly stale)
// results, and later Do calls will not join their flights.
func (c *Cache) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.version++
	c.invalidations++
	c.ll.Init()
	clear(c.entries)
	c.bytes = 0
}

// Get returns the cached value for key, if fresh.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.getLocked(key)
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

func (c *Cache) getLocked(key string) (any, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if e.version != c.version {
		// Stale under a racing Bump; Bump clears the map, so this is
		// only a belt-and-suspenders check.
		c.removeLocked(el)
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e.val, true
}

// Put stores val under key, stamped with the version the caller observed
// *before* computing it: if updates committed since, the value may be
// stale and is dropped. Returns whether the value was stored.
func (c *Cache) Put(key string, val any, size int64, version uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.putLocked(key, val, size, version)
}

func (c *Cache) putLocked(key string, val any, size int64, version uint64) bool {
	if version != c.version || size > c.cap || size < 0 {
		return false
	}
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el) // replacement, not counted as an eviction
	}
	for c.bytes+size > c.cap {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
	el := c.ll.PushFront(&entry{key: key, val: val, size: size, version: version})
	c.entries[key] = el
	c.bytes += size
	c.stores++
	return true
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
}

// Do answers key from the cache, or computes it — collapsing concurrent
// identical calls so only one compute runs and the rest share its value.
// compute returns the value and its byte size; it runs outside the cache
// lock. The returned Outcome says how the call was answered. A follower
// whose leader failed computes independently (errors are never cached or
// shared); a follower whose ctx is cancelled while waiting returns the
// ctx error without having computed anything.
func (c *Cache) Do(ctx context.Context, key string, compute func() (any, int64, error)) (any, Outcome, error) {
	c.mu.Lock()
	v := c.version
	if val, ok := c.getLocked(key); ok {
		c.hits++
		c.mu.Unlock()
		return val, Hit, nil
	}
	if f, ok := c.flights[key]; ok && f.version == v {
		c.mu.Unlock()
		select {
		case <-f.done:
			if f.err == nil {
				c.mu.Lock()
				c.shared++
				c.mu.Unlock()
				return f.val, Shared, nil
			}
			// The leader failed; compute independently rather than
			// propagating its (possibly context-specific) error.
			return c.lead(key, v, nil, compute)
		case <-ctx.Done():
			return nil, Miss, ctx.Err()
		}
	}
	f := &flight{version: v, done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	return c.lead(key, v, f, compute)
}

// lead runs compute as the flight's leader (f may be nil for a follower
// retrying after a failed leader) and publishes the result.
func (c *Cache) lead(key string, version uint64, f *flight, compute func() (any, int64, error)) (any, Outcome, error) {
	val, size, err := compute()
	c.mu.Lock()
	c.misses++
	if f != nil && c.flights[key] == f {
		delete(c.flights, key)
	}
	if err == nil {
		c.putLocked(key, val, size, version)
	}
	c.mu.Unlock()
	if f != nil {
		f.val, f.err = val, err
		close(f.done)
	}
	if err != nil {
		return nil, Miss, err
	}
	return val, Miss, nil
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:       len(c.entries),
		Bytes:         c.bytes,
		CapacityBytes: c.cap,
		Version:       c.version,
		Hits:          c.hits,
		SharedHits:    c.shared,
		Misses:        c.misses,
		Stores:        c.stores,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}
