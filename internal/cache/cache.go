// Package cache is the untrusted-side result cache: materialized query
// answers keyed on the *normalized query text*, bounded in bytes by an
// LRU policy, invalidated by a per-shard data-version vector that every
// committed update bumps for the one shard it touched, and fronted by a
// singleflight layer that collapses concurrent identical lookups into
// one computation.
//
// Security invariant (why this cache is leak-free by construction):
// GhostDB's guarantee is that the only information that ever leaves the
// secure perimeter is the query text itself (§1 of the paper). The cache
// key is a normalization of exactly that text, and the cached values are
// query results — data the untrusted side has, by definition, already
// seen once. A cache hit therefore reveals nothing an observer of the
// query stream did not already know; it only *removes* secure-token
// round-trips. In the volume-leakage sense of Poddar et al., hits repeat
// a (query, result-volume) pair the adversary has already observed —
// the cache never creates a new observable pair.
//
// The same argument covers the per-shard version vector: an entry is
// stamped with the versions of exactly the shards its query touches,
// and the shard set is a pure function of the query text and the schema
// (which tables the query names, and which token each table was placed
// on). Versions advance on committed INSERTs — statements the untrusted
// side itself submitted — so neither the stamps nor the invalidations
// depend on hidden data.
//
// RAM invariant: cache memory is untrusted host RAM. It is *not* charged
// against the secure chip's 64KB budget (ram.Manager) — the whole point
// is to spend plentiful untrusted memory to save the scarce secure
// resources (token RAM, flash I/O and the USB link).
//
// The cache is value-agnostic: it stores opaque values with a caller-
// provided byte size, so it does not depend on the executor's types.
// Cached values are shared between all readers and MUST be treated as
// immutable by every holder.
package cache

import (
	"container/list"
	"context"
	"sync"
)

// Outcome classifies how a Do call was answered.
type Outcome int

const (
	// Miss: this call computed the value itself (it was the singleflight
	// leader, or it fell back to computing after a leader failed).
	Miss Outcome = iota
	// Hit: the value was served from the cache; nothing was computed.
	Hit
	// Shared: the value was computed once by a concurrent identical call
	// and shared with this one (singleflight collapse).
	Shared
)

func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	}
	return "?"
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	CapacityBytes int64 `json:"capacity_bytes"`
	// Version is a monotone global stamp: the sum of every shard's
	// version plus the wholesale-invalidation epoch.
	Version uint64 `json:"version"`
	// ShardVersions is the per-shard data-version vector (index = shard).
	ShardVersions []uint64 `json:"shard_versions,omitempty"`
	Hits          uint64   `json:"hits"`
	SharedHits    uint64   `json:"shared_hits"`
	Misses        uint64   `json:"misses"`
	Stores        uint64   `json:"stores"`
	Evictions     uint64   `json:"evictions"`
	Invalidations uint64   `json:"invalidations"`
}

// entry is one cached value, stamped with the versions of the shards its
// query touches (parallel slices shards/stamp) plus the global epoch.
type entry struct {
	key    string
	val    any
	size   int64
	shards []int
	stamp  []uint64 // stamp[0] = epoch, stamp[i+1] = version of shards[i]
}

// flight is one in-progress computation that concurrent identical calls
// can attach to.
type flight struct {
	shards []int
	stamp  []uint64      // as in entry: epoch first, then per-shard versions
	done   chan struct{} // closed when val/err are set
	val    any
	err    error
}

// Cache is a byte-bounded LRU with per-shard version invalidation and
// singleflight collapsing. All methods are safe for concurrent use;
// computations passed to Do run outside the cache lock.
type Cache struct {
	mu       sync.Mutex
	cap      int64
	bytes    int64
	ll       *list.List // front = most recently used; values are *entry
	entries  map[string]*list.Element
	flights  map[string]*flight
	versions []uint64 // per-shard data versions, grown on demand
	epoch    uint64   // wholesale-invalidation epoch (Bump)

	hits, shared, misses, stores, evictions, invalidations uint64
}

// New creates a cache bounded to capBytes of cached values (sizes are
// caller-reported). capBytes <= 0 yields a cache that never stores — Do
// still collapses concurrent identical calls.
func New(capBytes int64) *Cache {
	return &Cache{
		cap:     capBytes,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// normShards defaults a nil/empty shard set to shard 0 (the unsharded
// engine's single token).
func normShards(shards []int) []int {
	if len(shards) == 0 {
		return []int{0}
	}
	return shards
}

func (c *Cache) verLocked(shard int) uint64 {
	if shard < len(c.versions) {
		return c.versions[shard]
	}
	return 0
}

// stampLocked snapshots the invalidation epoch followed by the current
// versions of the given shards.
func (c *Cache) stampLocked(shards []int) []uint64 {
	out := make([]uint64, len(shards)+1)
	out[0] = c.epoch
	for i, s := range shards {
		out[i+1] = c.verLocked(s)
	}
	return out
}

// Stamp snapshots the version vector restricted to the given shards;
// pass the result to Put so a value computed before a racing update can
// never be stored.
func (c *Cache) Stamp(shards []int) []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stampLocked(normShards(shards))
}

func (c *Cache) freshLocked(shards []int, stamp []uint64) bool {
	if len(stamp) != len(shards)+1 || stamp[0] != c.epoch {
		return false
	}
	for i, s := range shards {
		if stamp[i+1] != c.verLocked(s) {
			return false
		}
	}
	return true
}

// versionLocked is the monotone global stamp: the sum of the per-shard
// versions plus the wholesale-invalidation epoch.
func (c *Cache) versionLocked() uint64 {
	v := c.epoch
	for _, s := range c.versions {
		v += s
	}
	return v
}

// Version returns the monotone global stamp.
func (c *Cache) Version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.versionLocked()
}

// Bump invalidates every cached entry regardless of shard (wholesale).
// In-progress computations that started before the bump are prevented
// from storing their (possibly stale) results, and later Do calls will
// not join their flights.
func (c *Cache) Bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	c.invalidations++
	c.ll.Init()
	clear(c.entries)
	c.bytes = 0
}

// BumpShard advances one shard's data version: committed updates call it
// for the shard that owns the inserted table, after their mutations are
// visible. Only entries whose query touches that shard are dropped —
// cached results over other shards survive, which is what makes INSERT
// fan-out cheap in a sharded deployment. In-flight computations touching
// the shard are prevented from storing their results.
func (c *Cache) BumpShard(shard int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if shard < 0 {
		shard = 0
	}
	for shard >= len(c.versions) {
		c.versions = append(c.versions, 0)
	}
	c.versions[shard]++
	c.invalidations++
	// Eager sweep: entries touching the shard are dead now; dropping them
	// immediately keeps the byte accounting and the LRU capacity honest.
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*entry)
		for _, s := range e.shards {
			if s == shard {
				c.removeLocked(el)
				break
			}
		}
	}
}

// Get returns the cached value for key, if still fresh (each entry
// carries the shard set and version stamp it was computed under).
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.getLocked(key)
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return v, ok
}

func (c *Cache) getLocked(key string) (any, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if !c.freshLocked(e.shards, e.stamp) {
		// Stale under a racing bump; bumps drop affected entries eagerly,
		// so this is only a belt-and-suspenders check.
		c.removeLocked(el)
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e.val, true
}

// Put stores val under key, stamped with the version vector the caller
// observed (via Stamp) *before* computing it: if updates committed on
// any touched shard since, the value may be stale and is dropped.
// Returns whether the value was stored.
func (c *Cache) Put(key string, val any, size int64, shards []int, stamp []uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.putLocked(key, val, size, normShards(shards), stamp)
}

func (c *Cache) putLocked(key string, val any, size int64, shards []int, stamp []uint64) bool {
	if !c.freshLocked(shards, stamp) || size > c.cap || size < 0 {
		return false
	}
	if el, ok := c.entries[key]; ok {
		c.removeLocked(el) // replacement, not counted as an eviction
	}
	for c.bytes+size > c.cap {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
	el := c.ll.PushFront(&entry{key: key, val: val, size: size,
		shards: append([]int(nil), shards...), stamp: append([]uint64(nil), stamp...)})
	c.entries[key] = el
	c.bytes += size
	c.stores++
	return true
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.size
}

// Do answers key from the cache, or computes it — collapsing concurrent
// identical calls so only one compute runs and the rest share its value.
// shards is the set of shards the keyed query touches (nil means shard
// 0); the computed value is stamped with their versions as observed
// before the computation started. compute returns the value and its byte
// size; it runs outside the cache lock. The returned Outcome says how
// the call was answered. A follower whose leader failed computes
// independently (errors are never cached or shared); a follower whose
// ctx is cancelled while waiting returns the ctx error without having
// computed anything.
func (c *Cache) Do(ctx context.Context, key string, shards []int, compute func() (any, int64, error)) (any, Outcome, error) {
	shards = normShards(shards)
	c.mu.Lock()
	stamp := c.stampLocked(shards)
	if val, ok := c.getLocked(key); ok {
		c.hits++
		c.mu.Unlock()
		return val, Hit, nil
	}
	if f, ok := c.flights[key]; ok && c.freshLocked(f.shards, f.stamp) {
		c.mu.Unlock()
		select {
		case <-f.done:
			if f.err == nil {
				c.mu.Lock()
				c.shared++
				c.mu.Unlock()
				return f.val, Shared, nil
			}
			// The leader failed; compute independently rather than
			// propagating its (possibly context-specific) error.
			return c.lead(key, shards, stamp, nil, compute)
		case <-ctx.Done():
			return nil, Miss, ctx.Err()
		}
	}
	f := &flight{shards: shards, stamp: stamp, done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	return c.lead(key, shards, stamp, f, compute)
}

// lead runs compute as the flight's leader (f may be nil for a follower
// retrying after a failed leader) and publishes the result.
func (c *Cache) lead(key string, shards []int, stamp []uint64, f *flight, compute func() (any, int64, error)) (any, Outcome, error) {
	val, size, err := compute()
	c.mu.Lock()
	c.misses++
	if f != nil && c.flights[key] == f {
		delete(c.flights, key)
	}
	if err == nil {
		c.putLocked(key, val, size, shards, stamp)
	}
	c.mu.Unlock()
	if f != nil {
		f.val, f.err = val, err
		close(f.done)
	}
	if err != nil {
		return nil, Miss, err
	}
	return val, Miss, nil
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:       len(c.entries),
		Bytes:         c.bytes,
		CapacityBytes: c.cap,
		Version:       c.versionLocked(),
		ShardVersions: append([]uint64(nil), c.versions...),
		Hits:          c.hits,
		SharedHits:    c.shared,
		Misses:        c.misses,
		Stores:        c.stores,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
}
