package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func mustDo(t *testing.T, c *Cache, key string, val any, size int64) Outcome {
	t.Helper()
	got, out, err := c.Do(context.Background(), key, nil, func() (any, int64, error) {
		return val, size, nil
	})
	if err != nil {
		t.Fatalf("Do(%q): %v", key, err)
	}
	if out == Miss && got != val {
		t.Fatalf("Do(%q) computed %v, want %v", key, got, val)
	}
	return out
}

func TestHitMissAndLRUByteBound(t *testing.T) {
	c := New(100)
	if out := mustDo(t, c, "a", "A", 40); out != Miss {
		t.Fatalf("first a: %v, want miss", out)
	}
	if out := mustDo(t, c, "a", "ignored", 40); out != Hit {
		t.Fatalf("second a: %v, want hit", out)
	}
	mustDo(t, c, "b", "B", 40)
	// Touch a so b is the LRU victim.
	if out := mustDo(t, c, "a", nil, 0); out != Hit {
		t.Fatal("a should still be cached")
	}
	mustDo(t, c, "c", "C", 40) // 120 > 100: evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if v, ok := c.Get("a"); !ok || v != "A" {
		t.Fatal("a should have survived eviction")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 80 {
		t.Fatalf("entries=%d bytes=%d, want 2/80", st.Entries, st.Bytes)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestOversizedValueNotStored(t *testing.T) {
	c := New(10)
	mustDo(t, c, "big", "BIG", 11)
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized value must not be cached")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("stats after oversized store: %+v", st)
	}
}

func TestBumpInvalidatesEverything(t *testing.T) {
	c := New(1000)
	mustDo(t, c, "a", "A", 10)
	mustDo(t, c, "b", "B", 10)
	c.Bump()
	if _, ok := c.Get("a"); ok {
		t.Fatal("a survived Bump")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 || st.Version != 1 || st.Invalidations != 1 {
		t.Fatalf("post-Bump stats: %+v", st)
	}
	// The same key recomputes and is cached again under the new version.
	if out := mustDo(t, c, "a", "A2", 10); out != Miss {
		t.Fatal("post-Bump a should recompute")
	}
	if v, ok := c.Get("a"); !ok || v != "A2" {
		t.Fatal("post-Bump a should be cached fresh")
	}
}

func TestStaleVersionNotStored(t *testing.T) {
	c := New(1000)
	s0 := c.Stamp(nil)
	c.Bump()
	if c.Put("k", "V", 10, nil, s0) {
		t.Fatal("Put with a pre-Bump stamp must be rejected")
	}
	if !c.Put("k", "V", 10, nil, c.Stamp(nil)) {
		t.Fatal("Put with the current stamp must succeed")
	}
}

// TestBumpShardIsSelective: advancing one shard's version drops exactly
// the entries whose queries touch that shard; results over other shards
// survive — the property sharded INSERT fan-out depends on.
func TestBumpShardIsSelective(t *testing.T) {
	c := New(1000)
	do := func(key string, shards []int, val string) {
		t.Helper()
		if _, out, err := c.Do(context.Background(), key, shards, func() (any, int64, error) {
			return val, 10, nil
		}); err != nil || out != Miss {
			t.Fatalf("Do(%q): out=%v err=%v", key, out, err)
		}
	}
	do("q0", []int{0}, "A")
	do("q1", []int{1}, "B")
	do("q01", []int{0, 1}, "C")
	c.BumpShard(1)
	if _, ok := c.Get("q0"); !ok {
		t.Fatal("shard-0 entry dropped by a shard-1 bump")
	}
	if _, ok := c.Get("q1"); ok {
		t.Fatal("shard-1 entry survived its shard's bump")
	}
	if _, ok := c.Get("q01"); ok {
		t.Fatal("cross-shard entry survived a touched shard's bump")
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("post-bump accounting: %+v", st)
	}
}

// TestBumpShardDuringFlightDropsResult: a flight touching the bumped
// shard must not store; a flight on another shard is untouched.
func TestBumpShardDuringFlightDropsResult(t *testing.T) {
	c := New(1000)
	inCompute := make(chan struct{})
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do(context.Background(), "q1", []int{1}, func() (any, int64, error) {
			close(inCompute)
			<-gate
			return "stale", 8, nil
		})
	}()
	<-inCompute
	c.BumpShard(1)
	close(gate)
	<-done
	if _, ok := c.Get("q1"); ok {
		t.Fatal("stale flight result cached across its shard's bump")
	}
	// An unrelated shard's value stores normally afterwards.
	if _, out, _ := c.Do(context.Background(), "q0", []int{0}, func() (any, int64, error) {
		return "ok", 8, nil
	}); out != Miss {
		t.Fatalf("q0 outcome %v", out)
	}
	if _, ok := c.Get("q0"); !ok {
		t.Fatal("shard-0 value should be cached")
	}
}

// TestSingleflightCollapse: N concurrent identical calls run exactly one
// compute; the rest share its value.
func TestSingleflightCollapse(t *testing.T) {
	c := New(1000)
	const n = 16
	var computes atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, out, err := c.Do(context.Background(), "q", nil, func() (any, int64, error) {
				computes.Add(1)
				close(started) // exactly one compute may run, or this panics
				<-gate
				return "R", 8, nil
			})
			if err != nil || v != "R" {
				t.Errorf("worker %d: v=%v err=%v", i, v, err)
			}
			outcomes[i] = out
		}()
	}
	<-started // the leader is inside compute; now release it
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("%d computes ran, want 1", got)
	}
	var miss, shared, hit int
	for _, o := range outcomes {
		switch o {
		case Miss:
			miss++
		case Shared:
			shared++
		case Hit:
			hit++
		}
	}
	if miss != 1 {
		t.Fatalf("%d leaders, want 1 (shared=%d hit=%d)", miss, shared, hit)
	}
	// Everyone else either joined the flight or hit the cache afterwards.
	if shared+hit != n-1 {
		t.Fatalf("shared=%d hit=%d, want %d combined", shared, hit, n-1)
	}
	if st := c.Stats(); st.SharedHits != uint64(shared) {
		t.Fatalf("stats shared=%d, want %d", st.SharedHits, shared)
	}
}

// TestBumpDuringFlightDropsResult: a flight that started before an
// update commits must not populate the cache.
func TestBumpDuringFlightDropsResult(t *testing.T) {
	c := New(1000)
	inCompute := make(chan struct{})
	gate := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, out, err := c.Do(context.Background(), "q", nil, func() (any, int64, error) {
			close(inCompute)
			<-gate
			return "stale", 8, nil
		})
		if err != nil || out != Miss {
			t.Errorf("leader: out=%v err=%v", out, err)
		}
	}()
	<-inCompute
	c.Bump() // the update commits mid-flight
	close(gate)
	<-done
	if _, ok := c.Get("q"); ok {
		t.Fatal("stale flight result was cached across a Bump")
	}
}

// TestFollowerAfterBumpDoesNotJoinStaleFlight: a call that starts after
// the update must not share a pre-update flight's result.
func TestFollowerAfterBumpDoesNotJoinStaleFlight(t *testing.T) {
	c := New(1000)
	inCompute := make(chan struct{})
	gate := make(chan struct{})
	go c.Do(context.Background(), "q", nil, func() (any, int64, error) {
		close(inCompute)
		<-gate
		return "stale", 8, nil
	})
	<-inCompute
	c.Bump()

	// This call starts after the bump: it must compute its own answer,
	// not wait on (or share) the stale flight.
	fresh := make(chan Outcome, 1)
	go func() {
		_, out, err := c.Do(context.Background(), "q", nil, func() (any, int64, error) {
			return "fresh", 8, nil
		})
		if err != nil {
			t.Errorf("fresh call: %v", err)
		}
		fresh <- out
	}()
	out := <-fresh // completes without the stale leader ever finishing
	if out != Miss {
		t.Fatalf("post-Bump call outcome %v, want miss (own compute)", out)
	}
	if v, ok := c.Get("q"); !ok || v != "fresh" {
		t.Fatalf("cached value %v, want fresh", v)
	}
	close(gate)
}

// TestFollowerFallbackOnLeaderError: errors are not shared or cached.
func TestFollowerFallbackOnLeaderError(t *testing.T) {
	c := New(1000)
	boom := errors.New("boom")
	inCompute := make(chan struct{})
	gate := make(chan struct{})
	go c.Do(context.Background(), "q", nil, func() (any, int64, error) {
		close(inCompute)
		<-gate
		return nil, 0, boom
	})
	<-inCompute

	follower := make(chan error, 1)
	var followerComputed atomic.Bool
	go func() {
		v, _, err := c.Do(context.Background(), "q", nil, func() (any, int64, error) {
			followerComputed.Store(true)
			return "ok", 2, nil
		})
		if err == nil && v != "ok" {
			t.Errorf("follower got %v", v)
		}
		follower <- err
	}()
	close(gate)
	if err := <-follower; err != nil {
		t.Fatalf("follower inherited the leader's error: %v", err)
	}
	if !followerComputed.Load() {
		t.Fatal("follower should have computed independently")
	}
	if v, ok := c.Get("q"); !ok || v != "ok" {
		t.Fatal("follower's own result should be cached")
	}
}

// TestFollowerCancellation: a waiting follower honors its context.
func TestFollowerCancellation(t *testing.T) {
	c := New(1000)
	inCompute := make(chan struct{})
	gate := make(chan struct{})
	defer close(gate)
	go c.Do(context.Background(), "q", nil, func() (any, int64, error) {
		close(inCompute)
		<-gate
		return "R", 2, nil
	})
	<-inCompute
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Do(ctx, "q", nil, func() (any, int64, error) {
		t.Error("cancelled follower must not compute")
		return nil, 0, nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestConcurrentChurn hammers Do/Bump/Get from many goroutines; run
// under -race this is the memory-safety check for the whole package.
func TestConcurrentChurn(t *testing.T) {
	c := New(1 << 12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				key := fmt.Sprintf("k%d", (g+i)%7)
				switch i % 13 {
				case 5:
					c.Bump()
				case 7:
					c.BumpShard(i % 3)
				case 9:
					c.Get(key)
				default:
					c.Do(context.Background(), key, []int{i % 3}, func() (any, int64, error) {
						return i, 64, nil
					})
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes < 0 || st.Bytes > 1<<12 {
		t.Fatalf("byte accounting off: %+v", st)
	}
}
