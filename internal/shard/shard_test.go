package shard

import (
	"reflect"
	"testing"

	"ghostdb/internal/schema"
)

// forest builds k two-table trees R0/C0, R1/C1, ...
func forest(t *testing.T, k int) *schema.Schema {
	t.Helper()
	var defs []schema.TableDef
	for i := 0; i < k; i++ {
		r := schema.TableDef{
			Name: "R" + string(rune('0'+i)),
			Refs: []schema.Ref{{FKColumn: "fc", Child: "C" + string(rune('0'+i))}},
		}
		defs = append(defs, r, schema.TableDef{Name: "C" + string(rune('0'+i))})
	}
	sch, err := schema.New(defs)
	if err != nil {
		t.Fatal(err)
	}
	return sch
}

func treesOf(sch *schema.Schema, weights []int) []Tree {
	var out []Tree
	for i, r := range sch.Roots() {
		out = append(out, Tree{Root: r, Tables: sch.TreeTables(r), Weight: weights[i]})
	}
	return out
}

func TestPlaceBalancesByWeight(t *testing.T) {
	sch := forest(t, 4)
	m, err := Place(sch, 2, treesOf(sch, []int{10, 1, 9, 2}))
	if err != nil {
		t.Fatal(err)
	}
	// LPT: 10 -> tok0, 9 -> tok1, 2 -> tok1 (load 9 vs 10... 9+2=11), 1 -> tok0.
	load := map[int]int{}
	w := map[int]int{0: 10, 2: 1, 4: 9, 6: 2}
	for _, r := range sch.Roots() {
		load[m.Of(r)] += w[r]
	}
	if load[0]+load[1] != 22 || load[0] == 0 || load[1] == 0 {
		t.Fatalf("unbalanced placement: %v", load)
	}
	// Trees stay whole: a child is always with its root.
	for _, r := range sch.Roots() {
		for _, ti := range sch.TreeTables(r) {
			if m.Of(ti) != m.Of(r) {
				t.Fatalf("table %d split from its root %d", ti, r)
			}
		}
	}
}

func TestPlaceDeterministic(t *testing.T) {
	sch := forest(t, 4)
	w := []int{5, 5, 5, 5}
	a, err := Place(sch, 3, treesOf(sch, w))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(sch, 3, treesOf(sch, w))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.byTable, b.byTable) {
		t.Fatalf("placement not deterministic: %v vs %v", a.byTable, b.byTable)
	}
}

func TestTokenOfAll(t *testing.T) {
	sch := forest(t, 2)
	m, err := Place(sch, 2, treesOf(sch, []int{3, 3}))
	if err != nil {
		t.Fatal(err)
	}
	r0 := sch.Roots()[0]
	if tok, ok := m.TokenOfAll(sch.TreeTables(r0)); !ok || tok != m.Of(r0) {
		t.Fatalf("TokenOfAll in-tree: tok=%d ok=%v", tok, ok)
	}
	if _, ok := m.TokenOfAll([]int{sch.Roots()[0], sch.Roots()[1]}); ok {
		t.Fatal("TokenOfAll accepted a cross-token set")
	}
}

func TestPlaceMoreTokensThanTrees(t *testing.T) {
	sch := forest(t, 2)
	m, err := Place(sch, 4, treesOf(sch, []int{1, 1}))
	if err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 4 {
		t.Fatalf("Shards() = %d", m.Shards())
	}
	if len(m.Tables(2))+len(m.Tables(3)) != 0 {
		t.Fatalf("extra tokens should be empty: %v %v", m.Tables(2), m.Tables(3))
	}
}

func TestPlaceRejectsPartialCover(t *testing.T) {
	sch := forest(t, 2)
	trees := treesOf(sch, []int{1, 1})[:1]
	if _, err := Place(sch, 2, trees); err == nil {
		t.Fatal("partial cover accepted")
	}
}
