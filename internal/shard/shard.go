// Package shard places a GhostDB schema across several simulated secure
// tokens. Placement is at *tree* granularity: joins follow the schema's
// fk edges and therefore never cross trees, so co-locating each tree on
// one token keeps every select-project-join query single-token — only
// forest queries (cross products of independent trees) span tokens, and
// those decompose into per-tree sub-plans merged on the untrusted side.
//
// Security invariant: the placement is a pure function of the schema and
// of the planner's *derived* per-tree RAM floors — both already known to
// the untrusted side (the schema is public, the floors are functions of
// the schema alone). It never consults data, visible or hidden, so the
// mapping itself reveals nothing an observer of the DDL did not already
// have (the volume-leakage concern of Poddar et al. is why cardinalities
// must stay out of it).
package shard

import (
	"fmt"
	"sort"
	"strings"

	"ghostdb/internal/schema"
)

// Tree is one placement unit: a schema tree and its weight — the
// planner's RAM floor for the widest plan shape over the tree, so heavy
// trees (many tables, wide footprints) spread across tokens first.
type Tree struct {
	Root   int
	Tables []int
	Weight int
}

// Map is an immutable table→token assignment.
type Map struct {
	n       int
	byTable []int // table index -> token ordinal (-1 impossible: every table is in a tree)
	byToken [][]int
	roots   [][]int // per token, the tree roots placed on it
}

// Place assigns each tree to one of n tokens by longest-processing-time
// greedy: trees in decreasing weight order, each to the least-loaded
// token. Deterministic — ties break on lower root index, then lower
// token ordinal — so every replica of the schema derives the same map.
func Place(sch *schema.Schema, n int, trees []Tree) (*Map, error) {
	if n < 1 {
		n = 1
	}
	m := &Map{
		n:       n,
		byTable: make([]int, len(sch.Tables)),
		byToken: make([][]int, n),
		roots:   make([][]int, n),
	}
	seen := make(map[int]bool, len(trees))
	covered := 0
	for _, t := range trees {
		if seen[t.Root] {
			return nil, fmt.Errorf("shard: tree %d listed twice", t.Root)
		}
		seen[t.Root] = true
		covered += len(t.Tables)
	}
	if covered != len(sch.Tables) {
		return nil, fmt.Errorf("shard: trees cover %d of %d tables", covered, len(sch.Tables))
	}
	order := append([]Tree(nil), trees...)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Weight != order[j].Weight {
			return order[i].Weight > order[j].Weight
		}
		return order[i].Root < order[j].Root
	})
	load := make([]int, n)
	for _, t := range order {
		tok := 0
		for i := 1; i < n; i++ {
			if load[i] < load[tok] {
				tok = i
			}
		}
		load[tok] += t.Weight
		m.roots[tok] = append(m.roots[tok], t.Root)
		for _, ti := range t.Tables {
			m.byTable[ti] = tok
			m.byToken[tok] = append(m.byToken[tok], ti)
		}
	}
	for tok := range m.byToken {
		sort.Ints(m.byToken[tok])
		sort.Ints(m.roots[tok])
	}
	return m, nil
}

// Shards returns the number of tokens placed over.
func (m *Map) Shards() int { return m.n }

// Of returns the token ordinal holding table ti.
func (m *Map) Of(ti int) int { return m.byTable[ti] }

// Tables returns the table indexes placed on token tok (sorted).
func (m *Map) Tables(tok int) []int { return m.byToken[tok] }

// Roots returns the tree roots placed on token tok (sorted).
func (m *Map) Roots(tok int) []int { return m.roots[tok] }

// Single reports whether every table sits on one token (the mono-token
// degenerate case: no fan-out ever happens).
func (m *Map) Single() bool { return m.n == 1 }

// TokenOfAll returns the single token holding every listed table, or
// ok=false when the set spans tokens.
func (m *Map) TokenOfAll(tables []int) (int, bool) {
	if len(tables) == 0 {
		return 0, true
	}
	tok := m.byTable[tables[0]]
	for _, ti := range tables[1:] {
		if m.byTable[ti] != tok {
			return 0, false
		}
	}
	return tok, true
}

// Describe renders the placement for humans (the shell's \shards).
func (m *Map) Describe(sch *schema.Schema) string {
	var b strings.Builder
	for tok := 0; tok < m.n; tok++ {
		fmt.Fprintf(&b, "token %d:", tok)
		if len(m.byToken[tok]) == 0 {
			b.WriteString(" (empty)")
		}
		for _, ti := range m.byToken[tok] {
			fmt.Fprintf(&b, " %s", sch.Tables[ti].Name)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
