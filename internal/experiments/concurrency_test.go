package experiments

import "testing"

// TestConcurrencySweepShape runs the scheduler sweep at a tiny scale and
// asserts the report's invariants: every query answered, nothing leaked,
// simulated latencies present, and real session overlap at level > 1.
func TestConcurrencySweepShape(t *testing.T) {
	l := testLab(t)
	rep, err := l.ConcurrencySweep([]int{1, 4}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Levels) != 2 {
		t.Fatalf("levels = %d", len(rep.Levels))
	}
	for _, p := range rep.Levels {
		if p.AnswerErrors != 0 || p.LeakedGrants || p.PrivateLeaks != 0 {
			t.Fatalf("level %d unhealthy: %+v", p.Concurrency, p)
		}
		if p.Queries != 16 || p.EngineQueries != 16 {
			t.Fatalf("level %d: %d/%d queries recorded", p.Concurrency, p.Queries, p.EngineQueries)
		}
		if p.SimP50Ms <= 0 || p.SimP95Ms < p.SimP50Ms {
			t.Fatalf("level %d: implausible latencies %+v", p.Concurrency, p)
		}
		if p.WallQPS <= 0 {
			t.Fatalf("level %d: no throughput", p.Concurrency)
		}
	}
	// Level 1 sessions get the whole budget; level 4 splits it.
	if rep.Levels[0].GrantBuffers <= rep.Levels[1].GrantBuffers {
		t.Fatalf("grants not split: %d vs %d", rep.Levels[0].GrantBuffers, rep.Levels[1].GrantBuffers)
	}
	// The smaller grant can only cost more simulated passes, never
	// (meaningfully) fewer; allow 2% for FTL state differing with the
	// completion order of concurrent sessions.
	if rep.Levels[1].SimTotalMs < rep.Levels[0].SimTotalMs*0.98 {
		t.Fatalf("smaller grants got cheaper: %v vs %v", rep.Levels[1].SimTotalMs, rep.Levels[0].SimTotalMs)
	}
}
