package experiments

import (
	"fmt"
	"math/rand"

	"ghostdb/internal/bus"
	"ghostdb/internal/datagen"
	"ghostdb/internal/exec"
)

// The pagecache sweep measures what PR 10's untrusted-side page cache
// (plus the token's retained vis spools and bus coalescing) buys on
// repeated traffic, and verifies that it buys it without widening the
// leak surface:
//
//   - both arms run the identical Zipf mixed workload (the cache.go
//     pool: visible-value and hidden-value projection shapes) with the
//     result cache OFF, so every repeat re-executes and the only
//     savings mechanism in play is the page cache;
//   - the "off" arm is the seed engine (PageCacheBytes = 0), the "on"
//     arm adds the cache and nothing else;
//   - both arms run single-worker so the uplink audit trails are
//     directly comparable record by record: the cache must add no Up
//     traffic at all — byte-for-byte, the query text stays the only
//     thing that ever crosses the boundary upward.
//
// The contract asserted by the bench runner (and CI): the cache-on arm
// moves at least MinBusDownDropPct fewer Down bytes, its simulated p50
// is no worse (and total simulated time strictly lower), the uplink
// trails are identical, and every answer matches the cache-off arm's.

// DefaultPageCacheBytes is the sweep's page-cache bound: comfortably
// larger than the working set of the Zipf pool's visible runs, so the
// "on" arm measures reuse, not eviction churn.
const DefaultPageCacheBytes = 8 << 20

// MinBusDownDropPct is the acceptance floor: the cache-on arm must cut
// total Down bus bytes by at least this percentage on the Zipf mixed
// workload.
const MinBusDownDropPct = 20.0

// PagecachePoint is one arm ("off" or "on") of the comparison.
type PagecachePoint struct {
	Mode         string  `json:"mode"` // "off" or "on"
	Queries      int     `json:"queries"`
	WallSeconds  float64 `json:"wall_seconds"`
	WallQPS      float64 `json:"wall_qps"`
	SimP50Ms     float64 `json:"sim_p50_ms"`
	SimP95Ms     float64 `json:"sim_p95_ms"`
	SimTotalMs   float64 `json:"sim_total_ms"`
	BusDownBytes uint64  `json:"bus_down_bytes"`
	BusUpBytes   uint64  `json:"bus_up_bytes"`
	FlashReads   uint64  `json:"flash_reads"`
	// PagecacheHits / PagecacheMisses are the untrusted frame pool's
	// counters (zero on the "off" arm); BusCoalesced counts Down
	// payloads that rode a batched transfer instead of their own — the
	// batching is unconditional (and sim-time-neutral), so both arms
	// report it.
	PagecacheHits   uint64 `json:"pagecache_hits"`
	PagecacheMisses uint64 `json:"pagecache_misses"`
	BusCoalesced    uint64 `json:"bus_coalesced"`
	UplinkRecords   int    `json:"uplink_records"`
	AnswerErrors    int    `json:"answer_errors"` // row-count mismatches vs the other arm's baseline
	LeakedGrants    bool   `json:"leaked_grants"`
}

// PagecacheReport is the machine-readable output (BENCH_pagecache.json).
type PagecacheReport struct {
	Scale          float64        `json:"scale"`
	Seed           int64          `json:"seed"`
	RAMBudgetBytes int            `json:"ram_budget_bytes"`
	PageCacheBytes int            `json:"page_cache_bytes"`
	Off            PagecachePoint `json:"off"`
	On             PagecachePoint `json:"on"`
	// BusDownDropPct is the measured Down-byte saving of the cache-on
	// arm, as a percentage of the cache-off arm's total.
	BusDownDropPct float64 `json:"bus_down_drop_pct"`
	// BusSavingsOK records the first acceptance check: the drop met
	// MinBusDownDropPct.
	BusSavingsOK bool `json:"bus_savings_ok"`
	// LatencyOK records the second: simulated p50 no worse than the
	// cache-off arm's (p50 is read off shared histogram buckets, so a
	// same-bucket tie is tolerated) and total simulated time strictly
	// lower.
	LatencyOK bool `json:"latency_ok"`
	// UplinkParityOK records the leak check: both arms produced
	// byte-for-byte identical uplink audit trails.
	UplinkParityOK bool `json:"uplink_parity_ok"`
	// PrefetchQuiesced records that the read-ahead in-flight gauge
	// returned to zero on both arms after the workload drained.
	PrefetchQuiesced bool `json:"prefetch_quiesced"`
}

// pagecachePool extends the result-cache sweep's Zipf pool with
// two-visible-table shapes (visible predicates on both T1 and T2):
// those ship more than one Vis run per query, which is what exercises
// the Down-side TransferBatch coalescing.
func pagecachePool() []string {
	pool := zipfPool()
	for _, sv := range SVGrid[2:4] {
		pool = append(pool, fmt.Sprintf(`SELECT T0.id, T1.v1, T2.v1 FROM T0, T1, T2 `+
			`WHERE T0.fk1 = T1.id AND T0.fk2 = T2.id AND T1.v1 < '%s' AND T2.v2 < '%s'`,
			datagen.SelValue(sv), datagen.SelValue(0.05)))
	}
	return pool
}

// pagecacheWorkload draws n queries from pagecachePool with the same
// Zipf-skewed popularity as zipfWorkload.
func pagecacheWorkload(n int, seed int64) []string {
	pool := pagecachePool()
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.3, 1, uint64(len(pool)-1))
	out := make([]string, n)
	for i := range out {
		out[i] = pool[z.Uint64()]
	}
	return out
}

// PagecacheSweep runs the identical Zipf mixed workload through a
// cache-off and a cache-on engine over the same dataset (result cache
// disabled on both) and reports byte totals, latency percentiles, and
// the contract checks described above.
func (l *Lab) PagecacheSweep(queries int) (*PagecacheReport, error) {
	ds, err := l.SynthDataset()
	if err != nil {
		return nil, err
	}
	rep := &PagecacheReport{
		Scale:          l.SF,
		Seed:           l.Seed,
		PageCacheBytes: DefaultPageCacheBytes,
	}
	workload := pagecacheWorkload(queries, l.Seed)

	// Expected row counts from the cache-off arm's first pass are not
	// enough (it could be wrong the same way twice), so verify both
	// arms against a fresh per-query baseline engine instead.
	baseline := map[string]int{}
	baseDB, err := ds.NewDB(exec.Options{FlashParams: flashFor(l.SF)})
	if err != nil {
		return nil, err
	}
	for _, sql := range pagecachePool() {
		res, err := baseDB.Run(sql)
		if err != nil {
			return nil, fmt.Errorf("pagecache baseline %q: %w", sql, err)
		}
		baseline[sql] = len(res.Rows)
	}

	runArm := func(mode string, pageCacheBytes int) (PagecachePoint, []bus.Record, *exec.DB, error) {
		db, err := ds.NewDB(exec.Options{
			FlashParams:    flashFor(l.SF),
			PageCacheBytes: pageCacheBytes,
		})
		if err != nil {
			return PagecachePoint{}, nil, nil, err
		}
		rep.RAMBudgetBytes = db.RAM.Budget()
		answerErrs := 0
		// Single worker: a deterministic execution order makes the two
		// uplink audit trails comparable record by record. The per-query
		// cost collector resets the channel trail at each query start,
		// so the arm's full trail is stitched together query by query
		// from the onResult hook.
		var uplink []bus.Record
		rs := runWorkload(db, 1, workload, exec.QueryConfig{}, func(sql string, res *exec.Result) {
			uplink = append(uplink, db.Bus.UplinkRecords()...)
			if want, ok := baseline[sql]; ok && len(res.Rows) != want {
				answerErrs++
			}
		})
		if rs.firstErr != nil {
			return PagecachePoint{}, nil, nil, fmt.Errorf("pagecache sweep %s: %w", mode, rs.firstErr)
		}
		tot := db.Totals()
		pcs := db.PageCacheStats()
		return PagecachePoint{
			Mode:            mode,
			Queries:         len(workload),
			WallSeconds:     rs.wall.Seconds(),
			WallQPS:         rs.qps(),
			SimP50Ms:        rs.p50ms(),
			SimP95Ms:        rs.p95ms(),
			SimTotalMs:      float64(rs.simTotal.Microseconds()) / 1000,
			BusDownBytes:    tot.BusDown,
			BusUpBytes:      tot.BusUp,
			FlashReads:      tot.Flash.PageReads,
			PagecacheHits:   pcs.Hits,
			PagecacheMisses: pcs.Misses,
			BusCoalesced:    db.BusCoalesced(),
			UplinkRecords:   len(uplink),
			AnswerErrors:    answerErrs,
			LeakedGrants:    db.RAM.Leaked(),
		}, uplink, db, nil
	}

	offPt, uplinkOff, offDB, err := runArm("off", 0)
	if err != nil {
		return nil, err
	}
	onPt, uplinkOn, onDB, err := runArm("on", DefaultPageCacheBytes)
	if err != nil {
		return nil, err
	}
	rep.Off, rep.On = offPt, onPt

	// Leak check: identical uplink audit trails, byte for byte.
	rep.UplinkParityOK = len(uplinkOff) == len(uplinkOn)
	if rep.UplinkParityOK {
		for i := range uplinkOff {
			a, b := uplinkOff[i], uplinkOn[i]
			if a.Kind != b.Kind || a.Bytes != b.Bytes || a.Payload != b.Payload {
				rep.UplinkParityOK = false
				break
			}
		}
	}

	if offPt.BusDownBytes > 0 {
		rep.BusDownDropPct = 100 * (float64(offPt.BusDownBytes) - float64(onPt.BusDownBytes)) /
			float64(offPt.BusDownBytes)
	}
	rep.BusSavingsOK = rep.BusDownDropPct >= MinBusDownDropPct
	rep.LatencyOK = onPt.SimP50Ms <= offPt.SimP50Ms && onPt.SimTotalMs < offPt.SimTotalMs
	rep.PrefetchQuiesced = offDB.PrefetchInflight() == 0 && onDB.PrefetchInflight() == 0
	return rep, nil
}
