package experiments

import "testing"

// TestShardingSweepContract runs a small sweep and checks sharding's
// hard contract points: per-shard Totals sum to the unsharded engine's
// exact byte counts for the same serial query set, every answer matches
// the single-token baseline, placement balances the shard-local load
// evenly, and no grants leak. (The wall-clock scaling flag is measured
// and reported but not asserted here — single-core test runners make it
// a statement about the host, not the engine; the bench binary enforces
// it.)
func TestShardingSweepContract(t *testing.T) {
	lab := NewLab(0.002, 7)
	rep, err := lab.ShardingSweep([]int{1, 2}, []int{1, 4}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Levels) != 4 {
		t.Fatalf("%d cells, want 4", len(rep.Levels))
	}
	if !rep.ParityOK {
		t.Fatalf("per-shard totals diverge from the unsharded run: flash %v bus %v",
			rep.ParityFlashOps, rep.ParityBusBytes)
	}
	for _, p := range rep.Levels {
		if p.AnswerErrors != 0 {
			t.Fatalf("%d tokens / %d sessions: %d answers diverged from the single-token baseline",
				p.Tokens, p.Concurrency, p.AnswerErrors)
		}
		if p.LeakedGrants {
			t.Fatalf("%d tokens / %d sessions: leaked RAM grants", p.Tokens, p.Concurrency)
		}
		if len(p.PerShardQueries) != p.Tokens {
			t.Fatalf("%d tokens: %d per-shard counters", p.Tokens, len(p.PerShardQueries))
		}
		for _, n := range p.PerShardQueries {
			if n != p.PerShardQueries[0] {
				t.Fatalf("%d tokens / %d sessions: unbalanced shard load %v",
					p.Tokens, p.Concurrency, p.PerShardQueries)
			}
		}
	}
}
