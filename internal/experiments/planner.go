package experiments

import (
	"fmt"
	"runtime"

	"ghostdb/internal/exec"
)

// PlannerPoint is one measured cell of the planner sweep: a mixed
// narrow/wide workload pushed through one DB by `Concurrency` client
// goroutines under one admission policy. Latencies are simulated (so
// machine-independent); WallQPS is host throughput of the engine itself.
type PlannerPoint struct {
	Mode          string  `json:"mode"` // "plan-floor" or "fixed-floor"
	Concurrency   int     `json:"concurrency"`
	Queries       int     `json:"queries"`
	WallSeconds   float64 `json:"wall_seconds"`
	WallQPS       float64 `json:"wall_qps"`
	SimP50Ms      float64 `json:"sim_p50_ms"`
	SimP95Ms      float64 `json:"sim_p95_ms"`
	SimP99Ms      float64 `json:"sim_p99_ms"`
	MaxRunning    int     `json:"max_running_observed"`
	MinFloorSeen  int     `json:"min_floor_seen"`
	MaxFloorSeen  int     `json:"max_floor_seen"`
	AnswerErrors  int     `json:"answer_errors"`
	LeakedGrants  bool    `json:"leaked_grants"`
	EngineQueries uint64  `json:"engine_total_queries"`
}

// PlannerReport is the machine-readable output of the planner sweep
// (cmd/ghostdb-bench writes it as BENCH_planner.json so the effect of
// plan-sized admission on throughput is recorded PR over PR).
type PlannerReport struct {
	Scale          float64        `json:"scale"`
	Seed           int64          `json:"seed"`
	RAMBudgetBytes int            `json:"ram_budget_bytes"`
	Levels         []PlannerPoint `json:"levels"`
}

// sampleMaxRunning watches the scheduler's admitted-session count from a
// sampling goroutine and returns a stop function yielding the observed
// peak. It spin-samples (yielding only occasionally): admitted sessions
// can be far shorter than a sleep tick, so a sleeping sampler reads a
// dead queue. Burning one core is acceptable inside a benchmark sweep.
func sampleMaxRunning(db *exec.DB) (stop func() int) {
	maxRunning := 0
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-quit:
				return
			default:
				if running := db.Sched().Running(); running > maxRunning {
					maxRunning = running
				}
				if i%1024 == 0 {
					runtime.Gosched()
				}
			}
		}
	}()
	return func() int {
		close(quit)
		<-done
		return maxRunning
	}
}

// plannerWorkload mixes wide 3-table joins (plan floors around 7
// buffers) with narrow single- and two-table queries (floors of 4-6),
// the shapes whose overlap the fixed 8-buffer floor used to forfeit.
func plannerWorkload(n int) []string {
	var base []string
	for _, sv := range SVGrid[:4] {
		base = append(base, SynthQ(sv, 1, false))
		base = append(base,
			`SELECT id, v1, h1 FROM T11 WHERE h2 >= '0000000800'`,
			`SELECT T1.id FROM T1, T12 WHERE T1.fk12 = T12.id AND T12.h1 < '0000000200'`,
			`SELECT id, v2 FROM T12 WHERE h3 < '0000000300'`,
		)
	}
	out := make([]string, 0, n)
	for len(out) < n {
		out = append(out, base[len(out)%len(base)])
	}
	return out
}

// PlannerSweep runs the mixed workload at each concurrency level twice:
// once with admission sized from each plan's derived floor and once with
// the fixed pre-planner floor (8 buffers, the old
// DefaultSessionMinBuffers). The difference is pure admission policy —
// same queries, same budget, same engine.
func (l *Lab) PlannerSweep(levels []int, queriesPerLevel int) (*PlannerReport, error) {
	ds, err := l.SynthDataset()
	if err != nil {
		return nil, err
	}
	rep := &PlannerReport{Scale: l.SF, Seed: l.Seed}
	queries := plannerWorkload(queriesPerLevel)

	for _, level := range levels {
		for _, mode := range []string{"fixed-floor", "plan-floor"} {
			db, err := ds.NewDB(exec.Options{
				FlashParams:          flashFor(l.SF),
				MaxConcurrentQueries: level,
			})
			if err != nil {
				return nil, err
			}
			rep.RAMBudgetBytes = db.RAM.Budget()

			// Sessions target an equal share of the budget (as in the
			// concurrency sweep); only the admission floor differs.
			// fixed-floor is the pre-planner policy: the share never drops
			// below the blind 8-buffer minimum, so at 16 sessions over a
			// 32-buffer budget at most 4 ever hold RAM. plan-floor lets
			// each query's own derived minimum decide: narrow queries
			// (floors of 4-6) fit into the crowded budget's gaps, raising
			// admitted overlap; their tighter grants cost extra operator
			// passes, which the simulated percentiles record.
			share := db.RAM.Buffers() / level
			if share < 1 {
				share = 1
			}
			var cfg exec.QueryConfig
			if mode == "fixed-floor" {
				g := share
				if g < exec.DefaultSessionMinBuffers {
					g = exec.DefaultSessionMinBuffers
				}
				cfg = exec.QueryConfig{MinBuffers: g, WantBuffers: g}
			} else {
				cfg = exec.QueryConfig{WantBuffers: share}
			}

			minFloor, maxFloor := 1<<30, 0
			stopSampler := sampleMaxRunning(db)
			rs := runWorkload(db, level, queries, cfg, func(_ string, res *exec.Result) {
				if f := res.Stats.PlanMinBuffers; f > 0 {
					if f < minFloor {
						minFloor = f
					}
					if f > maxFloor {
						maxFloor = f
					}
				}
			})
			maxRunning := stopSampler()

			if rs.errs > 0 {
				return nil, fmt.Errorf("planner sweep: %d queries failed at level %d (%s): %w",
					rs.errs, level, mode, rs.firstErr)
			}
			pt := PlannerPoint{
				Mode:          mode,
				Concurrency:   level,
				Queries:       len(queries),
				WallSeconds:   rs.wall.Seconds(),
				WallQPS:       rs.qps(),
				SimP50Ms:      rs.p50ms(),
				SimP95Ms:      rs.p95ms(),
				SimP99Ms:      rs.p99ms(),
				MaxRunning:    maxRunning,
				MinFloorSeen:  minFloor,
				MaxFloorSeen:  maxFloor,
				AnswerErrors:  rs.errs,
				LeakedGrants:  db.RAM.Leaked(),
				EngineQueries: db.Totals().Queries,
			}
			rep.Levels = append(rep.Levels, pt)
		}
	}
	return rep, nil
}
