package experiments

import (
	"context"
	"fmt"
	"time"

	"ghostdb/internal/datagen"
	"ghostdb/internal/exec"
)

// The DML sweep replays the paper's write-window methodology on the
// delta store: a mixed OLTP window (4 reads per write) pushed through
// the engine at increasing session counts, against a write-free
// baseline of the same reads on identical hardware. Writes commit
// through the hidden delta log, mark their tables dirty (read sessions
// fall back to overlay-corrected scans until the next compaction), and
// drive the delta depth across the compaction threshold mid-window —
// so the mixed cells measure exactly what the write path costs live
// readers, with background compaction competing for the same admission
// queue and token slot.
//
// The mixed window's writes are chosen answer-invariant: hidden UPDATEs
// on columns no read touches, plus zero-match DELETEs (which still
// append their one pad page — write volume is data-independent). Every
// read's row count is therefore checked against the write-free
// baseline while the deltas churn underneath; destructive deletes are
// covered by the engine's reference-equality tests, where an oracle can
// track them.

// DMLPoint is one (sessions, mode) cell of the write-window sweep.
type DMLPoint struct {
	Concurrency int     `json:"concurrency"`
	Mode        string  `json:"mode"` // "read-only" or "mixed"
	Statements  int     `json:"statements"`
	Reads       int     `json:"reads"`
	Writes      int     `json:"writes"`
	WallSeconds float64 `json:"wall_seconds"`
	WallQPS     float64 `json:"wall_qps"`
	SimP50Ms    float64 `json:"sim_p50_ms"`
	SimP95Ms    float64 `json:"sim_p95_ms"`
	// AnswerErrors counts reads whose row count diverged from the
	// write-free baseline (the window's writes are answer-invariant, so
	// any divergence is a bug surfacing under concurrent writers).
	AnswerErrors int `json:"answer_errors"`
	// PeakDeltaPages is the deepest the delta log got mid-window;
	// FinalDeltaPages is what the last compaction left behind.
	PeakDeltaPages  int    `json:"peak_delta_pages"`
	FinalDeltaPages int    `json:"final_delta_pages"`
	Compactions     uint64 `json:"compactions"`
	DMLStatements   uint64 `json:"dml_statements"`
	LeakedGrants    bool   `json:"leaked_grants"`
}

// DMLReport is the machine-readable output (BENCH_dml.json).
type DMLReport struct {
	Scale            float64    `json:"scale"`
	Seed             int64      `json:"seed"`
	RAMBudgetBytes   int        `json:"ram_budget_bytes"`
	CompactThreshold int        `json:"compact_threshold_pages"`
	Levels           []DMLPoint `json:"levels"`
	// MixedOK records the acceptance check: at the highest session
	// count, the mixed window's throughput held at least 85% of the
	// write-free baseline while compaction ran concurrently.
	MixedOK bool `json:"mixed_ok"`
	// StarvationOK records that every statement of every cell was
	// admitted and completed: background compaction sessions never
	// starved query admission.
	StarvationOK bool `json:"starvation_ok"`
	// CompactionRan records that at least one mixed cell actually
	// crossed the threshold and compacted mid-window (otherwise the
	// MixedOK comparison would be vacuous).
	CompactionRan bool `json:"compaction_ran"`
}

// dmlReadWorkload renders n reads over the two-tree forest: a join with
// visible and hidden selections, touching only v1/h1/h2 — disjoint from
// the columns the window's writes set.
func dmlReadWorkload(n int) []string {
	svs := []float64{0.05, 0.1, 0.2, 0.5}
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		k := i % 2
		sv := svs[i/2%len(svs)]
		out = append(out, fmt.Sprintf(
			`SELECT S%d.id, S%d.v1, S%d.h1, C%d.v1 FROM S%d, C%d `+
				`WHERE S%d.fkc%d = C%d.id AND S%d.v1 < '%s' AND C%d.h2 < '%s'`,
			k, k, k, k, k, k, k, k, k, k, datagen.SelValue(sv), k, datagen.SelValue(SH)))
	}
	return out
}

// dmlWriteWorkload renders n answer-invariant writes: hidden UPDATEs on
// h4 (driven by h5 ranges, so the match scan and upsert staging are
// real) alternating with zero-match DELETEs (one pad page each — the
// write volume a tombstone append would cost, with nothing deleted).
func dmlWriteWorkload(n int) []string {
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		k := i % 2
		if i%3 == 2 {
			out = append(out, fmt.Sprintf("DELETE FROM C%d WHERE C%d.id >= 1000000000", k, k))
			continue
		}
		lo := (i * 7) % 80
		out = append(out, fmt.Sprintf(
			"UPDATE S%d SET h4 = '%s' WHERE S%d.h5 BETWEEN '%s' AND '%s'",
			k, datagen.PadValue((i*131)%datagen.Domain), k,
			datagen.SelValue(float64(lo)/100), datagen.SelValue(float64(lo+5)/100)))
	}
	return out
}

// dmlCompactThreshold keeps background compaction firing several times
// inside one mixed window at the default bench scale.
const dmlCompactThreshold = 16

// dmlDB builds a fresh single-token engine over the two-tree forest
// with the write window's compaction threshold and concurrency bound.
func (l *Lab) dmlDB(maxConcurrent int) (*exec.DB, error) {
	ds, err := l.ForestDataset(2)
	if err != nil {
		return nil, err
	}
	return ds.NewDB(exec.Options{
		FlashParams:          flashFor(l.SF),
		MaxConcurrentQueries: maxConcurrent,
		PaceSimulation:       shardingPace,
		CompactThreshold:     dmlCompactThreshold,
	})
}

// DMLSweep measures the mixed write window against the write-free
// baseline at each session count. readsPerCell is the read count of
// one cell; the mixed cells interleave one write after every fourth
// read on top of the same read list.
func (l *Lab) DMLSweep(sessionCounts []int, readsPerCell int) (*DMLReport, error) {
	rep := &DMLReport{Scale: l.SF, Seed: l.Seed,
		CompactThreshold: dmlCompactThreshold, MixedOK: true, StarvationOK: true}
	reads := dmlReadWorkload(readsPerCell)
	writes := dmlWriteWorkload((readsPerCell + 3) / 4)
	mixed := make([]string, 0, len(reads)+len(writes))
	w := 0
	for i, sql := range reads {
		mixed = append(mixed, sql)
		if i%4 == 3 && w < len(writes) {
			mixed = append(mixed, writes[w])
			w++
		}
	}
	mixed = append(mixed, writes[w:]...)
	isRead := make(map[string]bool, len(reads))
	for _, sql := range reads {
		isRead[sql] = true
	}

	// Row-count baseline from a serial read-only run.
	baseline := map[string]int{}
	{
		db, err := l.dmlDB(1)
		if err != nil {
			return nil, err
		}
		for _, sql := range reads {
			res, err := db.Run(sql)
			if err != nil {
				return nil, fmt.Errorf("dml baseline %q: %w", sql, err)
			}
			baseline[sql] = len(res.Rows)
		}
	}

	qpsAt := map[[2]int]float64{} // {sessions, mixed?} -> wall qps
	for _, sessions := range sessionCounts {
		for _, mode := range []string{"read-only", "mixed"} {
			stmts := reads
			if mode == "mixed" {
				stmts = mixed
			}
			db, err := l.dmlDB(sessions)
			if err != nil {
				return nil, err
			}
			rep.RAMBudgetBytes = db.RAM.Budget()
			share := db.RAM.Buffers() / sessions
			if share < 1 {
				share = 1
			}
			cfg := exec.QueryConfig{WantBuffers: share}

			answerErrs, peak := 0, 0
			rs := runWorkload(db, sessions, stmts, cfg, func(sql string, res *exec.Result) {
				if want, ok := baseline[sql]; ok && isRead[sql] && len(res.Rows) != want {
					answerErrs++
				}
				for _, d := range db.TokenDeltaStats() {
					if d.Pages > peak {
						peak = d.Pages
					}
				}
			})
			if rs.firstErr != nil {
				return nil, fmt.Errorf("dml sweep %d sessions (%s): %w", sessions, mode, rs.firstErr)
			}
			if rs.served != len(stmts) {
				rep.StarvationOK = false
			}
			// A compaction triggered by the window's last writes may still
			// be queued or pacing; let it settle so the cell's compaction
			// and delta counters describe the whole window's work.
			waitCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			err = db.WaitCompactions(waitCtx)
			cancel()
			if err != nil {
				return nil, fmt.Errorf("dml sweep %d sessions (%s): compaction never settled: %w", sessions, mode, err)
			}
			var finalPages int
			var compactions, dmlCount uint64
			for _, d := range db.TokenDeltaStats() {
				finalPages += d.Pages
				compactions += d.Compactions
				dmlCount += d.DMLStatements
			}
			if compactions > 0 {
				rep.CompactionRan = true
			}
			nWrites := 0
			if mode == "mixed" {
				nWrites = len(writes)
			}
			pt := DMLPoint{
				Concurrency:     sessions,
				Mode:            mode,
				Statements:      len(stmts),
				Reads:           len(reads),
				Writes:          nWrites,
				WallSeconds:     rs.wall.Seconds(),
				WallQPS:         rs.qps(),
				SimP50Ms:        rs.p50ms(),
				SimP95Ms:        rs.p95ms(),
				AnswerErrors:    answerErrs,
				PeakDeltaPages:  peak,
				FinalDeltaPages: finalPages,
				Compactions:     compactions,
				DMLStatements:   dmlCount,
				LeakedGrants:    db.Leaked(),
			}
			rep.Levels = append(rep.Levels, pt)
			key := [2]int{sessions, 0}
			if mode == "mixed" {
				key[1] = 1
			}
			qpsAt[key] = pt.WallQPS
			if answerErrs > 0 {
				rep.MixedOK = false
			}
		}
	}
	maxSess := sessionCounts[len(sessionCounts)-1]
	if base := qpsAt[[2]int{maxSess, 0}]; base > 0 {
		if qpsAt[[2]int{maxSess, 1}] < 0.85*base {
			rep.MixedOK = false
		}
	}
	return rep, nil
}
