package experiments

import (
	"fmt"

	"ghostdb/internal/exec"
)

// ConcurrencyPoint is one measured level of the concurrency sweep: a
// mixed query workload pushed through one DB by `Concurrency` client
// goroutines. Latencies are *simulated* (flash I/O + link transfer under
// the Table 1 cost model), so they are machine-independent; WallQPS is
// host throughput of the engine itself (admission, scheduling and
// simulation overhead included) and does vary by machine.
type ConcurrencyPoint struct {
	Concurrency   int     `json:"concurrency"`
	Queries       int     `json:"queries"`
	GrantBuffers  int     `json:"grant_buffers"`
	WallSeconds   float64 `json:"wall_seconds"`
	WallQPS       float64 `json:"wall_qps"`
	SimP50Ms      float64 `json:"sim_p50_ms"`
	SimP95Ms      float64 `json:"sim_p95_ms"`
	SimP99Ms      float64 `json:"sim_p99_ms"`
	SimTotalMs    float64 `json:"sim_total_ms"`
	MaxRunning    int     `json:"max_running_observed"`
	LeakedGrants  bool    `json:"leaked_grants"`
	PrivateLeaks  int     `json:"private_leaks"`
	AnswerErrors  int     `json:"answer_errors"`
	EngineQueries uint64  `json:"engine_total_queries"`
}

// ConcurrencyReport is the machine-readable output of the sweep
// (cmd/ghostdb-bench writes it as BENCH_concurrency.json so the perf
// trajectory of the scheduler is recorded PR over PR).
type ConcurrencyReport struct {
	Scale          float64            `json:"scale"`
	Seed           int64              `json:"seed"`
	RAMBudgetBytes int                `json:"ram_budget_bytes"`
	Levels         []ConcurrencyPoint `json:"levels"`
}

// concurrencyWorkload renders the mixed query set for the sweep: query Q
// across the lower visible-selectivity grid, with and without a hidden
// projection — shapes the RAM sweep proves viable at 8-buffer session
// grants.
func concurrencyWorkload(n int) []string {
	var base []string
	for _, sv := range SVGrid[:6] {
		base = append(base, SynthQ(sv, 1, false))
		base = append(base, SynthQ(sv, 2, true))
	}
	out := make([]string, 0, n)
	for len(out) < n {
		out = append(out, base[len(out)%len(base)])
	}
	return out
}

// ConcurrencySweep runs the mixed workload at each concurrency level on
// a fresh synthetic DB and reports throughput and simulated latency
// percentiles. Sessions cap their RAM want at budget/level (floored at
// the 8-buffer default minimum), so higher levels genuinely hold
// several grants on the one Manager at once.
func (l *Lab) ConcurrencySweep(levels []int, queriesPerLevel int) (*ConcurrencyReport, error) {
	ds, err := l.SynthDataset()
	if err != nil {
		return nil, err
	}
	rep := &ConcurrencyReport{Scale: l.SF, Seed: l.Seed}
	queries := concurrencyWorkload(queriesPerLevel)

	for _, level := range levels {
		db, err := ds.NewDB(exec.Options{
			FlashParams:          flashFor(l.SF),
			MaxConcurrentQueries: level,
		})
		if err != nil {
			return nil, err
		}
		rep.RAMBudgetBytes = db.RAM.Budget()

		grant := db.RAM.Buffers() / level
		if grant < exec.DefaultSessionMinBuffers {
			grant = exec.DefaultSessionMinBuffers
		}
		cfg := exec.QueryConfig{MinBuffers: grant, WantBuffers: grant}

		// A sampler observes how many sessions genuinely overlap.
		stopSampler := sampleMaxRunning(db)
		rs := runWorkload(db, level, queries, cfg, nil)
		maxRunning := stopSampler()

		pt := ConcurrencyPoint{
			Concurrency:   level,
			Queries:       len(queries),
			GrantBuffers:  grant,
			WallSeconds:   rs.wall.Seconds(),
			WallQPS:       rs.qps(),
			SimTotalMs:    float64(rs.simTotal.Microseconds()) / 1000,
			SimP50Ms:      rs.p50ms(),
			SimP95Ms:      rs.p95ms(),
			SimP99Ms:      rs.p99ms(),
			MaxRunning:    maxRunning,
			LeakedGrants:  db.RAM.Leaked(),
			PrivateLeaks:  db.Sched().Leaks(),
			AnswerErrors:  rs.errs,
			EngineQueries: db.Totals().Queries,
		}
		if rs.errs > 0 {
			return nil, fmt.Errorf("concurrency sweep: %d queries failed at level %d: %w", rs.errs, level, rs.firstErr)
		}
		rep.Levels = append(rep.Levels, pt)
	}
	return rep, nil
}
