package experiments

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"ghostdb/internal/datagen"
	"ghostdb/internal/exec"
	"ghostdb/internal/obs"
)

// The SLO sweep is an *open-loop* load test: arrivals follow a Poisson
// process at a swept target rate, launched on schedule whether or not
// earlier statements have finished. Closed-loop harnesses (a fixed
// worker pool, like runWorkload) hide overload by construction — a
// slow server throttles its own clients, so queues never build and the
// measured latency stays flattering. Open-loop arrival keeps offering
// load while the queue grows, which is what a real client population
// does, and measuring each statement from its *scheduled* arrival time
// (not from when a worker got around to sending it) avoids coordinated
// omission.
//
// The workload is the mixed OLTP/OLAP matrix of the rest of the bench
// suite: Zipf-skewed point lookups, hidden-attribute scans, cross-tree
// scatter joins and answer-invariant UPDATE/DELETE statements, over the
// two-tree forest on a two-token engine with the load shedder armed
// (Options.MaxQueueWait). A rate is *sustainable* when admitted p99
// wall latency meets the SLO, the shed fraction stays under the bound,
// and nothing hard-errors; the sweep doubles the offered rate until a
// probe fails, then bisects geometrically to the boundary. A final
// probe at 2x the sustainable rate verifies graceful overload: the
// engine sheds (ErrOverloaded) rather than letting admitted latency
// blow through the SLO.

const (
	// sloTargetWall is the bench's end-to-end latency SLO (queue wait +
	// paced execution), and sloMaxQueueWait the shed bound handed to the
	// engine. The SLO must cover the worst admitted case, which is a
	// cross-tree scatter join that queues at *both* tokens (2x the
	// bound), plus ~10ms of paced execution for the matrix's heaviest
	// statements and a few milliseconds of EWMA prediction undershoot
	// near saturation.
	sloTargetWall   = 60 * time.Millisecond
	sloMaxQueueWait = 15 * time.Millisecond
	// sloMaxShedFraction is the sustainability bound on shed arrivals:
	// occasional shedding near the knee is the shedder doing its job, a
	// rate shedding more than this is over capacity.
	sloMaxShedFraction = 0.05
	// sloProbeWindow / sloMinArrivals size one probe: rate*window
	// arrivals, floored so low rates still yield a usable p99.
	sloProbeWindow = 1500 * time.Millisecond
	sloMinArrivals = 200
	// sloStartRate seeds the doubling search; sloMaxRate caps it so a
	// pathologically fast engine terminates; sloBisections bounds the
	// refinement (geometric, so ~2^(1/2^n) precision per step).
	sloStartRate  = 50.0
	sloMaxRate    = 25600.0
	sloBisections = 4
	// sloSessions is the multiprogramming level the engine is configured
	// for: admitted sessions and the per-session RAM share divisor.
	sloSessions = 8
)

// SLOPoint is one open-loop probe at a fixed target arrival rate.
type SLOPoint struct {
	TargetQPS     float64 `json:"target_qps"`
	Arrivals      int     `json:"arrivals"`
	WindowSeconds float64 `json:"window_seconds"`
	Admitted      int     `json:"admitted"`
	Shed          int     `json:"shed"`
	Errors        int     `json:"errors"`
	// AchievedQPS is admitted completions over the true window (first
	// arrival to last completion).
	AchievedQPS  float64 `json:"achieved_qps"`
	ShedFraction float64 `json:"shed_fraction"`
	// Wall quantiles are end-to-end from *scheduled* arrival; Queue
	// quantiles are the admission-wait component reported by the
	// engine's Stats.QueueWait — together the breakdown of where an
	// admitted statement's time went.
	WallP50Ms   float64 `json:"wall_p50_ms"`
	WallP95Ms   float64 `json:"wall_p95_ms"`
	WallP99Ms   float64 `json:"wall_p99_ms"`
	QueueP50Ms  float64 `json:"queue_p50_ms"`
	QueueP95Ms  float64 `json:"queue_p95_ms"`
	QueueP99Ms  float64 `json:"queue_p99_ms"`
	SimP95Ms    float64 `json:"sim_p95_ms"`
	Sustainable bool    `json:"sustainable"`
}

// SLOReport is the machine-readable output (BENCH_slo.json); the CI
// perf gate compares MaxSustainableQPS against the committed baseline.
type SLOReport struct {
	Scale           float64    `json:"scale"`
	Seed            int64      `json:"seed"`
	Shards          int        `json:"shards"`
	RAMBudgetBytes  int        `json:"ram_budget_bytes"`
	SLOTargetMs     float64    `json:"slo_target_ms"`
	MaxQueueWaitMs  float64    `json:"max_queue_wait_ms"`
	MaxShedFraction float64    `json:"max_shed_fraction"`
	Levels          []SLOPoint `json:"levels"`
	// MaxSustainableQPS is the highest probed rate that met the SLO —
	// the single number the CI gate regresses on.
	MaxSustainableQPS float64 `json:"max_sustainable_qps"`
	// Overload is the 2x-sustainable probe; OverloadOK records the
	// graceful-degradation check: it shed (rather than hard-erroring)
	// while the statements it *did* admit still met the SLO.
	Overload   *SLOPoint `json:"overload,omitempty"`
	OverloadOK bool      `json:"overload_ok"`
}

// sloWorkload renders n statements of the mixed matrix from a seeded
// rng: ~50% Zipf-skewed point lookups, ~20% hidden-attribute scans,
// ~15% cross-tree scatter joins, ~15% answer-invariant DML.
func sloWorkload(rng *rand.Rand, n, sRows int) []string {
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(sRows-1))
	svs := []float64{0.05, 0.1, 0.2}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		k := i % 2
		switch u := rng.Float64(); {
		case u < 0.50:
			out = append(out, fmt.Sprintf(
				"SELECT S%d.id, S%d.v1 FROM S%d WHERE S%d.id = %d",
				k, k, k, k, zipf.Uint64()))
		case u < 0.70:
			out = append(out, fmt.Sprintf(
				"SELECT C%d.id, C%d.v1 FROM C%d WHERE C%d.h2 < '%s'",
				k, k, k, k, datagen.SelValue(svs[rng.Intn(len(svs))])))
		case u < 0.85:
			out = append(out, fmt.Sprintf(
				"SELECT COUNT(*) FROM S0, S1 WHERE S0.v1 < '%s' AND S1.h2 < '%s'",
				datagen.SelValue(0.02), datagen.SelValue(0.05)))
		case u < 0.95:
			lo := rng.Intn(80)
			out = append(out, fmt.Sprintf(
				"UPDATE S%d SET h4 = '%s' WHERE S%d.h5 BETWEEN '%s' AND '%s'",
				k, datagen.PadValue(rng.Intn(datagen.Domain)), k,
				datagen.SelValue(float64(lo)/100), datagen.SelValue(float64(lo+2)/100)))
		default:
			out = append(out, fmt.Sprintf(
				"DELETE FROM C%d WHERE C%d.id >= 1000000000", k, k))
		}
	}
	return out
}

// sloDB builds a fresh two-token engine over the two-tree forest with
// the shedder armed — fresh per probe, so scheduler EWMA state and
// accumulated deltas from one rate never color the next.
func (l *Lab) sloDB() (*exec.DB, error) {
	ds, err := l.ForestDataset(2)
	if err != nil {
		return nil, err
	}
	return ds.NewDB(exec.Options{
		FlashParams:          flashFor(l.SF),
		Shards:               2,
		MaxConcurrentQueries: sloSessions,
		PaceSimulation:       shardingPace,
		CompactThreshold:     dmlCompactThreshold,
		MaxQueueWait:         sloMaxQueueWait,
		SLOTarget:            sloTargetWall,
	})
}

// runOpenLoop offers the statements at the target Poisson rate and
// measures each from its scheduled arrival. The dispatcher sleeps to
// each arrival time and fires a goroutine per statement; if the
// dispatcher itself falls behind (it shouldn't — launching is cheap),
// the lateness still counts against the statement's wall latency, so
// coordination cannot hide queueing.
func (l *Lab) runOpenLoop(rate float64, rng *rand.Rand) (SLOPoint, error) {
	n := int(rate * sloProbeWindow.Seconds())
	if n < sloMinArrivals {
		n = sloMinArrivals
	}
	db, err := l.sloDB()
	if err != nil {
		return SLOPoint{}, err
	}
	sRows := datagen.ForestCardinalities(l.SF, 2)["S0"]
	stmts := sloWorkload(rng, n, sRows)
	offsets := make([]time.Duration, n)
	var t float64
	for i := range offsets {
		t += rng.ExpFloat64() / rate
		offsets[i] = time.Duration(t * float64(time.Second))
	}
	share := db.RAM.Buffers() / sloSessions
	if share < 1 {
		share = 1
	}
	cfg := exec.QueryConfig{WantBuffers: share}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		pt       = SLOPoint{TargetQPS: rate, Arrivals: n}
		firstErr error
		wallH    = obs.NewHistogram(obs.TimeBuckets())
		queueH   = obs.NewHistogram(obs.TimeBuckets())
		simH     = obs.NewHistogram(obs.TimeBuckets())
		lastDone time.Time
	)
	start := time.Now()
	for i := range stmts {
		due := start.Add(offsets[i])
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(sql string, due time.Time) {
			defer wg.Done()
			res, err := db.RunCtx(context.Background(), sql, cfg)
			wall := time.Since(due)
			mu.Lock()
			defer mu.Unlock()
			if done := due.Add(wall); done.After(lastDone) {
				lastDone = done
			}
			if err != nil {
				if errors.Is(err, exec.ErrOverloaded) {
					pt.Shed++
				} else {
					pt.Errors++
					if firstErr == nil {
						firstErr = err
					}
				}
				return
			}
			pt.Admitted++
			wallH.Observe(wall.Seconds())
			queueH.Observe(res.Stats.QueueWait.Seconds())
			simH.Observe(res.Stats.SimTime.Seconds())
		}(stmts[i], due)
	}
	wg.Wait()
	if firstErr != nil {
		return pt, fmt.Errorf("slo probe at %.0f qps: %w", rate, firstErr)
	}
	window := lastDone.Sub(start)
	pt.WindowSeconds = window.Seconds()
	if window > 0 {
		pt.AchievedQPS = float64(pt.Admitted) / window.Seconds()
	}
	pt.ShedFraction = float64(pt.Shed) / float64(n)
	pt.WallP50Ms = wallH.Quantile(0.50) * 1000
	pt.WallP95Ms = wallH.Quantile(0.95) * 1000
	pt.WallP99Ms = wallH.Quantile(0.99) * 1000
	pt.QueueP50Ms = queueH.Quantile(0.50) * 1000
	pt.QueueP95Ms = queueH.Quantile(0.95) * 1000
	pt.QueueP99Ms = queueH.Quantile(0.99) * 1000
	pt.SimP95Ms = simH.Quantile(0.95) * 1000
	pt.Sustainable = pt.Errors == 0 &&
		pt.ShedFraction <= sloMaxShedFraction &&
		pt.WallP99Ms <= float64(sloTargetWall.Milliseconds())
	return pt, nil
}

// probeRate runs one rate with a deterministic per-rate rng (so the
// same rate always offers the same statement sequence, across the
// search and across bench runs) and appends the point to the report.
func (l *Lab) probeRate(rep *SLOReport, rate float64) (SLOPoint, error) {
	rng := rand.New(rand.NewSource(l.Seed*1000 + int64(rate)))
	pt, err := l.runOpenLoop(rate, rng)
	if err != nil {
		return pt, err
	}
	rep.Levels = append(rep.Levels, pt)
	return pt, nil
}

// SLOSweep finds the maximum sustainable arrival rate under the SLO by
// doubling then geometric bisection, then probes 2x that rate to
// verify graceful overload.
func (l *Lab) SLOSweep() (*SLOReport, error) {
	rep := &SLOReport{
		Scale:           l.SF,
		Seed:            l.Seed,
		Shards:          2,
		SLOTargetMs:     float64(sloTargetWall.Milliseconds()),
		MaxQueueWaitMs:  float64(sloMaxQueueWait.Milliseconds()),
		MaxShedFraction: sloMaxShedFraction,
	}
	if db, err := l.sloDB(); err == nil {
		rep.RAMBudgetBytes = db.RAM.Budget()
	}

	// Doubling phase: climb until a probe misses the SLO.
	var lo, hi float64
	for rate := sloStartRate; rate <= sloMaxRate; rate *= 2 {
		pt, err := l.probeRate(rep, rate)
		if err != nil {
			return nil, err
		}
		if pt.Sustainable {
			lo = rate
		} else {
			hi = rate
			break
		}
	}
	if lo == 0 {
		return nil, fmt.Errorf("slo sweep: start rate %.0f qps already unsustainable", sloStartRate)
	}
	// Geometric bisection between the last good and first bad rate.
	if hi > 0 {
		for i := 0; i < sloBisections; i++ {
			mid := math.Sqrt(lo * hi)
			pt, err := l.probeRate(rep, mid)
			if err != nil {
				return nil, err
			}
			if pt.Sustainable {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	rep.MaxSustainableQPS = lo

	// Overload probe: 2x sustainable must shed, not collapse.
	over, err := l.probeRate(rep, 2*lo)
	if err != nil {
		return nil, err
	}
	rep.Overload = &over
	rep.OverloadOK = over.Errors == 0 && over.Shed > 0 &&
		over.WallP99Ms <= float64(sloTargetWall.Milliseconds())
	return rep, nil
}
