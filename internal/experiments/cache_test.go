package experiments

import "testing"

// TestCacheSweepContract runs a small sweep and checks the cache's two
// contract points: repeated (Zipf) traffic beats the all-distinct cold
// workload, and no hit anywhere performed secure-token traffic. Answers
// are verified against the uncached baseline row counts inside the
// sweep itself.
func TestCacheSweepContract(t *testing.T) {
	lab := NewLab(0.002, 7)
	rep, err := lab.CacheSweep([]int{1, 4}, 24)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Levels) != 4 {
		t.Fatalf("%d cells, want 4", len(rep.Levels))
	}
	if !rep.HitTrafficZero {
		t.Fatal("some cache hit performed secure-token bus/flash traffic")
	}
	if !rep.ZipfSpeedupOK {
		t.Fatal("zipf workload was not strictly faster than cold")
	}
	for _, p := range rep.Levels {
		if p.AnswerErrors != 0 {
			t.Fatalf("%s/%d: %d answers diverged from the uncached baseline", p.Mode, p.Concurrency, p.AnswerErrors)
		}
		if p.LeakedGrants {
			t.Fatalf("%s/%d: leaked RAM grants", p.Mode, p.Concurrency)
		}
		switch p.Mode {
		case "cold":
			if p.CacheHits != 0 {
				t.Fatalf("cold/%d: %d hits on an all-distinct workload", p.Concurrency, p.CacheHits)
			}
			if p.DistinctQueries != p.Queries {
				t.Fatalf("cold/%d: workload not all-distinct (%d of %d)", p.Concurrency, p.DistinctQueries, p.Queries)
			}
		case "zipf":
			if p.CacheHits+p.CacheShared == 0 {
				t.Fatalf("zipf/%d: no hits at all", p.Concurrency)
			}
			if p.Executed == 0 || p.Executed > uint64(p.DistinctQueries) {
				t.Fatalf("zipf/%d: executed %d with %d distinct queries", p.Concurrency, p.Executed, p.DistinctQueries)
			}
		}
	}
}
