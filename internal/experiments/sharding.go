package experiments

import (
	"fmt"

	"ghostdb/internal/datagen"
	"ghostdb/internal/exec"
)

// The sharding sweep measures what multiplying the secure token buys: a
// shard-local workload (every query confined to one schema tree, each
// tree placed on its own token) pushed through 1/2/4-token engines at
// 1/4/16 client sessions. One token serializes everything behind its
// single execution slot; k tokens genuinely overlap k sessions' flash
// and bus pipelines, so wall-clock throughput should grow with the
// token count while per-query simulated cost stays identical.
//
// The sweep also *verifies* the accounting invariant sharding promises:
// summed across tokens, the per-shard Totals of a sharded run report
// exactly the flash and bus byte counts an unsharded run reports for
// the same serial query set — spreading work across tokens never adds
// (or hides) secure-side work.

// ShardingPoint is one (tokens, sessions) cell.
type ShardingPoint struct {
	Tokens       int     `json:"tokens"`
	Concurrency  int     `json:"concurrency"`
	Queries      int     `json:"queries"`
	WallSeconds  float64 `json:"wall_seconds"`
	WallQPS      float64 `json:"wall_qps"`
	SimP50Ms     float64 `json:"sim_p50_ms"`
	SimP95Ms     float64 `json:"sim_p95_ms"`
	SimP99Ms     float64 `json:"sim_p99_ms"`
	SimTotalMs   float64 `json:"sim_total_ms"`
	AnswerErrors int     `json:"answer_errors"`
	// PerShardQueries is how many sessions each token completed — the
	// placement balance check.
	PerShardQueries []uint64 `json:"per_shard_queries"`
	LeakedGrants    bool     `json:"leaked_grants"`
}

// ShardingReport is the machine-readable output (BENCH_sharding.json).
type ShardingReport struct {
	Scale          float64         `json:"scale"`
	Seed           int64           `json:"seed"`
	Trees          int             `json:"trees"`
	RAMBudgetBytes int             `json:"ram_budget_bytes"`
	Levels         []ShardingPoint `json:"levels"`
	// ScalingOK records the acceptance check: at the 16-session
	// shard-local workload, 4 tokens achieved strictly higher wall QPS
	// than 1 token.
	ScalingOK bool `json:"scaling_ok"`
	// ParityOK records the byte-parity check: per-shard Totals of the
	// sharded engines sum to exactly the unsharded engine's flash ops
	// and bus bytes for the same serial query set.
	ParityOK        bool     `json:"parity_ok"`
	ParityFlashOps  []uint64 `json:"parity_flash_ops"`  // per token count, same order as tokenCounts
	ParityBusBytes  []uint64 `json:"parity_bus_bytes"`  //
	ParityTokenList []int    `json:"parity_token_list"` // the token counts compared
}

// shardLocalWorkload renders n queries, each confined to one of the
// trees (round-robin), with a visible selection, a hidden selection,
// the tree's join and a value-heavy projection (visible + hidden
// attributes, so the MJoin and final join do real work) — substantial
// per-token work, zero cross-tree traffic.
func shardLocalWorkload(n, trees int) []string {
	// Moderate-to-loose selectivities: enough surviving tuples that each
	// query's session does meaningful simulated (and host) work.
	svs := []float64{0.05, 0.1, 0.2, 0.5}
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		k := i % trees
		sv := svs[i/trees%len(svs)]
		out = append(out, fmt.Sprintf(
			`SELECT S%d.id, S%d.v1, S%d.v2, S%d.h1, C%d.v1 FROM S%d, C%d `+
				`WHERE S%d.fkc%d = C%d.id AND S%d.v1 < '%s' AND C%d.h2 < '%s'`,
			k, k, k, k, k, k, k, k, k, k, k, datagen.SelValue(sv), k, datagen.SelValue(SH)))
	}
	return out
}

// shardingPace is the sweep's real-time pacing divisor: sessions hold
// their token for SimTime/shardingPace of wall time, so the throughput
// cells measure the modeled hardware's parallelism (independent tokens
// overlap their I/O) instead of the host CPU that happens to run the
// simulation. ~8ms of simulated work becomes ~1ms of held slot.
const shardingPace = 8

// forestDB builds a fresh engine over the lab's forest dataset with the
// given token count and concurrency bound.
func (l *Lab) forestDB(trees, tokens, maxConcurrent int) (*exec.DB, error) {
	ds, err := l.ForestDataset(trees)
	if err != nil {
		return nil, err
	}
	return ds.NewDB(exec.Options{
		FlashParams:          flashFor(l.SF),
		Shards:               tokens,
		MaxConcurrentQueries: maxConcurrent,
		PaceSimulation:       shardingPace,
	})
}

// ShardingSweep measures the shard-local workload at every (tokens,
// sessions) cell, verifies answers against the single-token engine, and
// runs the serial byte-parity check across token counts.
func (l *Lab) ShardingSweep(tokenCounts, sessionCounts []int, queriesPerCell int) (*ShardingReport, error) {
	const trees = 4
	rep := &ShardingReport{Scale: l.SF, Seed: l.Seed, Trees: trees, ScalingOK: true, ParityOK: true}
	// queriesPerCell is per tree, so every token count pushes the same
	// per-token load and the cells are long enough to out-measure
	// worker-pool startup noise.
	queries := shardLocalWorkload(queriesPerCell*trees, trees)

	// Answer baseline: row counts from a single-token serial run.
	baseline := map[string]int{}
	{
		db, err := l.forestDB(trees, 1, 1)
		if err != nil {
			return nil, err
		}
		for _, sql := range queries {
			res, err := db.Run(sql)
			if err != nil {
				return nil, fmt.Errorf("sharding baseline %q: %w", sql, err)
			}
			baseline[sql] = len(res.Rows)
		}
	}

	// ---- Byte-parity check: the same serial query set, per token count.
	rep.ParityTokenList = tokenCounts
	for _, tokens := range tokenCounts {
		db, err := l.forestDB(trees, tokens, 1)
		if err != nil {
			return nil, err
		}
		for _, sql := range queries {
			if _, err := db.Run(sql); err != nil {
				return nil, fmt.Errorf("sharding parity %d tokens %q: %w", tokens, sql, err)
			}
		}
		var flashOps, busBytes uint64
		for _, tot := range db.TokenTotals() {
			flashOps += tot.Flash.PageReads + tot.Flash.PageWrites
			busBytes += tot.BusDown + tot.BusUp
		}
		rep.ParityFlashOps = append(rep.ParityFlashOps, flashOps)
		rep.ParityBusBytes = append(rep.ParityBusBytes, busBytes)
	}
	for i := 1; i < len(rep.ParityFlashOps); i++ {
		if rep.ParityFlashOps[i] != rep.ParityFlashOps[0] || rep.ParityBusBytes[i] != rep.ParityBusBytes[0] {
			rep.ParityOK = false
		}
	}

	// ---- Throughput cells.
	qpsAt := map[[2]int]float64{}
	for _, tokens := range tokenCounts {
		for _, sessions := range sessionCounts {
			db, err := l.forestDB(trees, tokens, sessions)
			if err != nil {
				return nil, err
			}
			rep.RAMBudgetBytes = db.RAM.Budget()
			// Sessions split each token's budget as in the other sweeps,
			// identically across token counts so the comparison isolates
			// the token count itself.
			share := db.RAM.Buffers() / sessions
			if share < 1 {
				share = 1
			}
			cfg := exec.QueryConfig{WantBuffers: share}

			// Best of two runs per cell: the first warms allocator and
			// scheduler state, so the kept run measures steady state. The
			// answer-error count follows the kept run.
			answerErrs := 0
			var rs runStats
			for attempt := 0; attempt < 2; attempt++ {
				curErrs := 0
				cur := runWorkload(db, sessions, queries, cfg, func(sql string, res *exec.Result) {
					if want, ok := baseline[sql]; ok && len(res.Rows) != want {
						curErrs++
					}
				})
				if cur.firstErr != nil {
					return nil, fmt.Errorf("sharding sweep %d tokens / %d sessions: %w",
						tokens, sessions, cur.firstErr)
				}
				if attempt == 0 || cur.wall < rs.wall {
					rs, answerErrs = cur, curErrs
				}
			}
			var perShard []uint64
			for _, u := range db.Tokens() {
				perShard = append(perShard, u.Totals().Queries)
			}
			pt := ShardingPoint{
				Tokens:          tokens,
				Concurrency:     sessions,
				Queries:         len(queries),
				WallSeconds:     rs.wall.Seconds(),
				WallQPS:         rs.qps(),
				SimP50Ms:        rs.p50ms(),
				SimP95Ms:        rs.p95ms(),
				SimP99Ms:        rs.p99ms(),
				SimTotalMs:      float64(rs.simTotal.Microseconds()) / 1000,
				AnswerErrors:    answerErrs,
				PerShardQueries: perShard,
				LeakedGrants:    db.Leaked(),
			}
			rep.Levels = append(rep.Levels, pt)
			qpsAt[[2]int{tokens, sessions}] = pt.WallQPS
		}
	}
	maxTok, maxSess := tokenCounts[len(tokenCounts)-1], sessionCounts[len(sessionCounts)-1]
	if len(tokenCounts) > 1 {
		if !(qpsAt[[2]int{maxTok, maxSess}] > qpsAt[[2]int{tokenCounts[0], maxSess}]) {
			rep.ScalingOK = false
		}
	}
	return rep, nil
}
